package mpstream_test

import (
	"context"
	"fmt"
	"testing"

	"mpstream"
)

func TestFacadeRun(t *testing.T) {
	dev, err := mpstream.TargetByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpstream.DefaultConfig()
	cfg.ArrayBytes = 1 << 20
	res, err := mpstream.Run(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel(mpstream.Triad).GBps <= 0 {
		t.Error("no triad bandwidth")
	}
}

func TestFacadeTargets(t *testing.T) {
	devs := mpstream.Targets()
	if len(devs) != 4 {
		t.Fatalf("got %d targets", len(devs))
	}
	if len(mpstream.TargetIDs()) != 4 {
		t.Fatal("TargetIDs wrong")
	}
}

func TestFacadeExplore(t *testing.T) {
	dev, err := mpstream.TargetByID("aocl")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpstream.DefaultConfig()
	cfg.ArrayBytes = 1 << 20
	cfg.NTimes = 1
	ex := mpstream.Explore(dev, cfg, mpstream.Space{VecWidths: []int{1, 8}}, mpstream.Copy)
	best, ok := ex.Best()
	if !ok {
		t.Fatal("no feasible point")
	}
	if best.Config.VecWidth != 8 {
		t.Errorf("best vec width = %d, want 8", best.Config.VecWidth)
	}
}

func TestFacadeExperiment(t *testing.T) {
	e, err := mpstream.RunExperiment("targets")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "targets" {
		t.Errorf("experiment id = %s", e.ID)
	}
	if _, err := mpstream.RunExperiment("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeHostStream(t *testing.T) {
	res, err := mpstream.RunHost(mpstream.HostConfig{Elems: 1 << 14, NTimes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel(mpstream.Copy).GBps <= 0 {
		t.Error("host stream produced no bandwidth")
	}
}

// ExampleRun demonstrates the quickstart flow.
func ExampleRun() {
	dev, _ := mpstream.TargetByID("aocl")
	cfg := mpstream.DefaultConfig()
	cfg.ArrayBytes = 1 << 20
	cfg.Ops = []mpstream.Op{mpstream.Copy}
	res, _ := mpstream.Run(dev, cfg)
	kr := res.Kernel(mpstream.Copy)
	fmt.Println(kr.Verified, kr.GBps > 0.5)
	// Output: true true
}

func TestFacadeExploreParallel(t *testing.T) {
	base := mpstream.DefaultConfig()
	base.ArrayBytes = 1 << 18
	base.NTimes = 2
	space := mpstream.Space{VecWidths: []int{1, 4}}
	newDev := func() (mpstream.Device, error) { return mpstream.TargetByID("aocl") }
	par := mpstream.ExploreParallel(newDev, base, space, mpstream.Copy)
	dev, err := mpstream.TargetByID("aocl")
	if err != nil {
		t.Fatal(err)
	}
	seq := mpstream.Explore(dev, base, space, mpstream.Copy)
	if len(par.Ranked) != len(seq.Ranked) {
		t.Fatalf("parallel ranked %d, sequential %d", len(par.Ranked), len(seq.Ranked))
	}
	pb, _ := par.Best()
	sb, _ := seq.Best()
	if pb.Label != sb.Label {
		t.Errorf("parallel best %q, sequential best %q", pb.Label, sb.Label)
	}
}

func TestFacadeService(t *testing.T) {
	svc := mpstream.NewService(mpstream.ServiceOptions{Workers: 2})
	defer svc.Close()
	cfg := mpstream.DefaultConfig()
	cfg.ArrayBytes = 1 << 16
	cfg.Ops = []mpstream.Op{mpstream.Copy}
	job, err := svc.SubmitRun(context.Background(), "cpu", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	v := job.Snapshot()
	if v.Result == nil || v.Result.Kernels[0].GBps <= 0 {
		t.Fatalf("service run failed: %+v", v)
	}
	// Second submission of the same work is served from the cache.
	job2, err := svc.SubmitRun(context.Background(), "cpu", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-job2.Done()
	if !job2.Snapshot().Cached {
		t.Error("repeated service run must be cached")
	}
}
