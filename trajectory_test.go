package mpstream_test

// The recorded bench trajectory: committed BENCH_<N>.json artifacts
// are data, so a test keeps them parseable and keeps the recorded
// headline improvements at or above their floors — the trajectory
// cannot silently rot or be overwritten with regressed numbers.

import (
	"encoding/json"
	"os"
	"testing"
)

type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func loadBenchArtifact(t *testing.T, path string) map[string]benchRow {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trajectory artifact missing: %v", err)
	}
	var rows []benchRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("%s does not parse: %v", path, err)
	}
	m := make(map[string]benchRow, len(rows))
	for _, r := range rows {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("%s has a malformed row: %+v", path, r)
		}
		m[r.Name] = r
	}
	return m
}

func TestBenchTrajectory(t *testing.T) {
	seed := loadBenchArtifact(t, "BENCH_0.json")
	cur := loadBenchArtifact(t, "BENCH_1.json")
	// The watched headline pair and the improvement floors the
	// optimization wave recorded: ns/op at least 5x down, allocs/op at
	// least 10x down from the seed.
	for _, name := range []string{"BenchmarkFig2", "BenchmarkSurface"} {
		was, ok := seed[name]
		if !ok {
			t.Errorf("BENCH_0.json lost its %s row", name)
			continue
		}
		now, ok := cur[name]
		if !ok {
			t.Errorf("BENCH_1.json lost its %s row", name)
			continue
		}
		if now.NsPerOp*5 > was.NsPerOp {
			t.Errorf("%s trajectory regressed: %.0f ns/op recorded, need <= %.0f (5x under seed %.0f)",
				name, now.NsPerOp, was.NsPerOp/5, was.NsPerOp)
		}
		if now.AllocsPerOp*10 > was.AllocsPerOp {
			t.Errorf("%s trajectory regressed: %d allocs/op recorded, need <= %d (10x under seed %d)",
				name, now.AllocsPerOp, was.AllocsPerOp/10, was.AllocsPerOp)
		}
	}

	// BENCH_2 records the elastic-scheduler point: the same 3-worker
	// fleet with one 4x straggler, swept once with static one-shard-per-
	// worker partitioning and once with the pull queue + speculation.
	// Both rows live in the same artifact (same run, same machine), so
	// the pinned improvement is self-normalizing — wall-clock noise
	// moves both rows together.
	fleet := loadBenchArtifact(t, "BENCH_2.json")
	static, ok := fleet["BenchmarkFleetSweepStatic"]
	if !ok {
		t.Fatal("BENCH_2.json lost its BenchmarkFleetSweepStatic row")
	}
	elastic, ok := fleet["BenchmarkFleetSweep"]
	if !ok {
		t.Fatal("BENCH_2.json lost its BenchmarkFleetSweep row")
	}
	if elastic.NsPerOp*2 > static.NsPerOp {
		t.Errorf("elastic scheduler trajectory regressed: %.0f ns/op recorded, need <= %.0f (2x under static %.0f)",
			elastic.NsPerOp, static.NsPerOp/2, static.NsPerOp)
	}
	// BENCH_1's headline rows must survive into BENCH_2 — a trajectory
	// point extends the record, it does not drop history.
	for _, name := range []string{"BenchmarkFig2", "BenchmarkSurface"} {
		if _, ok := fleet[name]; !ok {
			t.Errorf("BENCH_2.json lost its %s row", name)
		}
	}
}
