package mpstream_test

// The recorded bench trajectory: committed BENCH_<N>.json artifacts
// are data, so a test keeps them parseable and keeps the recorded
// headline improvements at or above their floors — the trajectory
// cannot silently rot or be overwritten with regressed numbers.

import (
	"encoding/json"
	"os"
	"testing"
)

type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func loadBenchArtifact(t *testing.T, path string) map[string]benchRow {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trajectory artifact missing: %v", err)
	}
	var rows []benchRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("%s does not parse: %v", path, err)
	}
	m := make(map[string]benchRow, len(rows))
	for _, r := range rows {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("%s has a malformed row: %+v", path, r)
		}
		m[r.Name] = r
	}
	return m
}

func TestBenchTrajectory(t *testing.T) {
	seed := loadBenchArtifact(t, "BENCH_0.json")
	cur := loadBenchArtifact(t, "BENCH_1.json")
	// The watched headline pair and the improvement floors the
	// optimization wave recorded: ns/op at least 5x down, allocs/op at
	// least 10x down from the seed.
	for _, name := range []string{"BenchmarkFig2", "BenchmarkSurface"} {
		was, ok := seed[name]
		if !ok {
			t.Errorf("BENCH_0.json lost its %s row", name)
			continue
		}
		now, ok := cur[name]
		if !ok {
			t.Errorf("BENCH_1.json lost its %s row", name)
			continue
		}
		if now.NsPerOp*5 > was.NsPerOp {
			t.Errorf("%s trajectory regressed: %.0f ns/op recorded, need <= %.0f (5x under seed %.0f)",
				name, now.NsPerOp, was.NsPerOp/5, was.NsPerOp)
		}
		if now.AllocsPerOp*10 > was.AllocsPerOp {
			t.Errorf("%s trajectory regressed: %d allocs/op recorded, need <= %d (10x under seed %d)",
				name, now.AllocsPerOp, was.AllocsPerOp/10, was.AllocsPerOp)
		}
	}
}
