// Package mpstream is the public API of the MP-STREAM reproduction: a
// memory-performance benchmark for design-space exploration on
// heterogeneous HPC devices (Nabi & Vanderbauwhede, RAW@IPDPS 2018),
// implemented in pure Go over simulated CPU, GPU and FPGA targets.
//
// The essential loop mirrors the paper's workflow:
//
//	dev, _ := mpstream.TargetByID("aocl")
//	cfg := mpstream.DefaultConfig()
//	cfg.VecWidth = 16
//	res, _ := mpstream.Run(dev, cfg)
//	fmt.Println(res.Kernel(mpstream.Copy).GBps)
//
// Deeper layers are exported through aliases: kernels and their tuning
// attributes (kernel IR), access patterns, design-space sweeps (dse) and
// the per-figure experiment drivers.
package mpstream

import (
	"context"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/experiments"
	"mpstream/internal/hoststream"
	"mpstream/internal/kernel"
	"mpstream/internal/runstate"
	"mpstream/internal/service"
	"mpstream/internal/sim/mem"
	"mpstream/internal/surface"
)

// Core benchmark types.
type (
	// Config is a full MP-STREAM configuration (all paper tuning knobs).
	Config = core.Config
	// Result is one benchmark run on one device.
	Result = core.Result
	// KernelResult is the measurement for one STREAM kernel.
	KernelResult = core.KernelResult
	// Device is a benchmark target.
	Device = device.Device
	// DeviceInfo describes a target.
	DeviceInfo = device.Info
)

// Kernel IR types.
type (
	// Op is one of the four STREAM operations.
	Op = kernel.Op
	// DataType is the array element type.
	DataType = kernel.DataType
	// LoopMode is the kernel loop-management parameter.
	LoopMode = kernel.LoopMode
	// Attrs carries optional kernel attributes (unroll, vendor knobs).
	Attrs = kernel.Attrs
	// Kernel is a fully parameterized kernel.
	Kernel = kernel.Kernel
	// Pattern is a data access pattern.
	Pattern = mem.Pattern
)

// The four STREAM operations, plus the pointer-chase latency probe of
// the surface subsystem (not part of default benchmark runs).
const (
	Copy  = kernel.Copy
	Scale = kernel.Scale
	Add   = kernel.Add
	Triad = kernel.Triad
	Chase = kernel.Chase
)

// Element types.
const (
	Int32   = kernel.Int32
	Float64 = kernel.Float64
)

// Loop-management modes.
const (
	NDRange    = kernel.NDRange
	FlatLoop   = kernel.FlatLoop
	NestedLoop = kernel.NestedLoop
)

// DefaultConfig returns the paper's baseline configuration: all four
// kernels over 4 MB int arrays, contiguous, optimal loop management,
// verified results.
func DefaultConfig() Config { return core.DefaultConfig() }

// Run executes a configuration on a device.
func Run(dev Device, cfg Config) (*Result, error) { return core.Run(dev, cfg) }

// RunContext is Run under a context: cancellation is checked between
// kernels and repetitions, and a canceled or deadline-expired run
// returns the context's error.
func RunContext(ctx context.Context, dev Device, cfg Config) (*Result, error) {
	return core.RunContext(ctx, dev, cfg)
}

// Canonical partial-result states: multi-point operations stopped by a
// context tag what they collected with one of these (see the Stopped
// fields of SearchResult and Surface).
const (
	StopCanceled = runstate.Canceled
	StopDeadline = runstate.Deadline
)

// Targets returns fresh instances of the paper's four devices in figure
// order: aocl, sdaccel, cpu, gpu.
func Targets() []Device { return targets.All() }

// TargetIDs lists the target ids in figure order.
func TargetIDs() []string { return targets.IDs() }

// TargetByID returns a fresh instance of one target.
func TargetByID(id string) (Device, error) { return targets.ByID(id) }

// Access patterns.
var (
	// Contiguous walks the arrays in address order.
	Contiguous = mem.ContiguousPattern
	// Strided walks with a fixed element stride.
	Strided = mem.StridedPattern
	// ColMajor walks a row-major 2D view column-major (the paper's
	// strided experiments; the stride grows with the array).
	ColMajor = mem.ColMajorPattern
)

// Design-space exploration.
type (
	// SweepPoint is one evaluated configuration of a sweep.
	SweepPoint = dse.Point
	// Space is a parameter grid for exhaustive exploration.
	Space = dse.Space
	// Exploration ranks the feasible points of a Space.
	Exploration = dse.Exploration
)

// Explore searches a parameter grid for the best configuration of op on
// a device.
func Explore(dev Device, base Config, space Space, op Op) Exploration {
	return dse.Explore(dev, base, space, op)
}

// ExploreParallel is Explore fanned out over GOMAXPROCS goroutines.
// newDev must return a fresh device per call (e.g. a TargetByID
// closure): devices carry simulator state and are not shared across
// workers. Results are byte-identical to Explore over the same grid.
func ExploreParallel(newDev func() (Device, error), base Config, space Space, op Op) Exploration {
	return dse.ExploreParallel(dse.DeviceFactory(newDev), base, space, op)
}

// Adaptive search (the budgeted optimizer strategies of dse/search).
type (
	// SearchOptions selects a strategy, budget and seed for Optimize.
	SearchOptions = search.Options
	// SearchResult is the outcome of one Optimize run: best point,
	// Pareto front, ranked exploration and evaluation trace.
	SearchResult = search.Result
	// ParetoPoint is one non-dominated bandwidth/resource trade-off.
	ParetoPoint = search.ParetoPoint
)

// Optimize searches a parameter grid with a budgeted strategy
// (exhaustive, random, hillclimb, anneal) instead of enumerating it.
// Unique simulations are bounded by the budget and deduplicated by
// configuration fingerprint; seeded stochastic runs reproduce exactly.
func Optimize(dev Device, base Config, space Space, op Op, opts SearchOptions) (*SearchResult, error) {
	return search.Run(dev, base, space, op, opts)
}

// OptimizeContext is Optimize under a context: the search stops between
// evaluations when ctx ends and returns its partial result — best point
// so far, ranking and trace — tagged via SearchResult.Stopped.
func OptimizeContext(ctx context.Context, dev Device, base Config, space Space, op Op, opts SearchOptions) (*SearchResult, error) {
	return search.RunContext(ctx, dev, base, space, op, opts)
}

// SearchStrategies lists the registered optimizer strategy names.
func SearchStrategies() []string { return search.Strategies() }

// SearchObjectives lists the optimizer ranking metrics ("gbps" ranks by
// raw sustained bandwidth, "knee" by the bandwidth–latency-surface
// knee).
func SearchObjectives() []string { return search.Objectives() }

// Bandwidth–latency surface (loaded latency across patterns, read/write
// ratios and an injection-rate ladder, with knee detection).
type (
	// SurfaceConfig parameterizes a surface measurement; the zero value
	// measures a sensible default surface.
	SurfaceConfig = surface.Config
	// Surface is a device's full bandwidth–latency characterization.
	Surface = surface.Surface
	// SurfaceCurve is the ladder for one (pattern, read-fraction) pair.
	SurfaceCurve = surface.Curve
	// SurfaceKnee is the highest bandwidth at acceptable loaded latency.
	SurfaceKnee = surface.Knee
)

// RunSurface measures a device's bandwidth–latency surface.
func RunSurface(dev Device, cfg SurfaceConfig) (*Surface, error) {
	return core.RunSurface(dev, cfg)
}

// RunSurfaceContext is RunSurface under a context: the injection-rate
// ladder stops between rungs when ctx ends and the partial surface is
// returned tagged via Surface.Stopped.
func RunSurfaceContext(ctx context.Context, dev Device, cfg SurfaceConfig) (*Surface, error) {
	return core.RunSurfaceContext(ctx, dev, cfg)
}

// Benchmark-as-a-service layer (cmd/mpserved): a job queue, bounded
// worker pool and LRU result cache behind an HTTP JSON API.
type (
	// ServiceOptions configures a benchmark service; the zero value is a
	// production-shaped default.
	ServiceOptions = service.Options
	// Service schedules runs and sweeps onto workers and caches results
	// by canonical configuration fingerprint.
	Service = service.Server
	// ServiceJob is one queued benchmark job.
	ServiceJob = service.Job
)

// NewService builds a benchmark service and starts its worker pool.
// Serve its Handler() over HTTP and Close() it when done.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// Experiment reproduction (the paper's figures and tables).
type Experiment = experiments.Experiment

// RunExperiment regenerates one figure/table by id (fig1a, fig1b, fig2,
// fig3, fig4a, fig4b, targets, pcie, resources, unroll, preshape, dtype).
func RunExperiment(id string) (*Experiment, error) {
	return RunExperimentContext(context.Background(), id)
}

// RunExperimentContext is RunExperiment under a context: a canceled or
// deadline-expired run returns the partially collected experiment,
// annotated with a canonical stop note, not an error.
func RunExperimentContext(ctx context.Context, id string) (*Experiment, error) {
	run, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return run(ctx)
}

// Host STREAM baseline (real measurement on the machine running this
// process).
type (
	// HostConfig sizes the host STREAM baseline.
	HostConfig = hoststream.Config
	// HostResult is a host STREAM run.
	HostResult = hoststream.Result
)

// RunHost executes the pure-Go STREAM baseline with wall-clock timing.
func RunHost(cfg HostConfig) (*HostResult, error) { return hoststream.Run(cfg) }
