// Command mphost runs the real pure-Go STREAM baseline on the host
// machine — the reality anchor next to the simulated targets.
//
// Example:
//
//	mphost -n 16777216 -ntimes 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"mpstream/internal/hoststream"
	"mpstream/internal/report"
)

func main() {
	var (
		n      = flag.Int("n", 1<<24, "elements per array (float64)")
		ntimes = flag.Int("ntimes", 5, "repetitions")
		procs  = flag.Int("workers", 0, "worker goroutines (default GOMAXPROCS)")
	)
	flag.Parse()

	if err := run(*n, *ntimes, *procs, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mphost:", err)
		os.Exit(1)
	}
}

func run(n, ntimes, workers int, out io.Writer) error {
	res, err := hoststream.Run(hoststream.Config{Elems: n, NTimes: ntimes, Workers: workers})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "host STREAM: %d elements/array (%s/array), %d workers, GOMAXPROCS=%d\n",
		n, report.HumanBytes(int64(n)*8), res.Workers, runtime.GOMAXPROCS(0))
	tb := report.NewTable("function", "best GB/s", "avg time (s)", "min time (s)")
	for _, kr := range res.Kernels {
		tb.AddRowf(kr.Op.String(), kr.GBps, kr.AvgSeconds, kr.BestSeconds)
	}
	return tb.WriteText(out)
}
