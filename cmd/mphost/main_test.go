package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var sb strings.Builder
	if err := run(1<<14, 2, 0, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"host STREAM", "copy", "triad", "best GB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunError(t *testing.T) {
	var sb strings.Builder
	if err := run(0, 1, 0, &sb); err == nil {
		t.Error("zero elements must error")
	}
}
