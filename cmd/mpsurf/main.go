// Command mpsurf measures a device's bandwidth–latency surface: loaded
// latency across background access patterns, read/write ratios and an
// injection-rate ladder, with knee detection — the terminal-side
// counterpart of the service's POST /v1/surface.
//
// Examples:
//
//	mpsurf -target gpu
//	mpsurf -target cpu -patterns contiguous,strided:128 -ratios 1,0.5
//	mpsurf -target aocl -rates 0.25,0.5,0.75,1 -chart
//	mpsurf -target sdaccel -csv > surface.csv
//	mpsurf -target gpu -json | jq '.curves[].knee'
//
// Baseline drift monitoring (requires -server): -record-baseline
// measures the configured surface and stores it as a named reference;
// -check re-measures a stored baseline and exits nonzero when the
// surface drifts out of tolerance (knee bandwidth, per-rung deltas,
// knee shifts):
//
//	mpsurf -server http://127.0.0.1:8774 -target gpu -record-baseline gpu-surface
//	mpsurf -server http://127.0.0.1:8774 -check gpu-surface
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mpstream/internal/baseline"
	"mpstream/internal/cluster"
	"mpstream/internal/core"
	"mpstream/internal/device/targets"
	"mpstream/internal/obs"
	"mpstream/internal/report"
	"mpstream/internal/sim/mem"
	"mpstream/internal/surface"
)

func main() {
	var (
		target     = flag.String("target", "gpu", "target device: aocl|sdaccel|cpu|gpu")
		patterns   = flag.String("patterns", "", "background patterns, e.g. contiguous,strided:16,colmajor (empty = default)")
		ratios     = flag.String("ratios", "", "read fractions, e.g. 1,0.67,0.5 (empty = default)")
		rates      = flag.String("rates", "", "injection ladder as fractions of peak, e.g. 0.1,0.5,1,1.2 (empty = default)")
		size       = flag.String("size", "", "per-stream footprint, e.g. 32MB (empty = default)")
		window     = flag.Int("window", 0, "transactions simulated per ladder point (0 = default)")
		probe      = flag.Int("probe", 0, "chase hops of the idle-latency measurement (0 = default)")
		kneeFactor = flag.Float64("knee-factor", 0, "acceptable-latency multiple of idle (0 = default)")
		server     = flag.String("server", "", "submit against a running mpserved (or fleet coordinator) at this base URL instead of measuring locally")
		markdown   = flag.Bool("markdown", false, "emit Markdown tables instead of text")
		asCSV      = flag.Bool("csv", false, "emit the ladder as CSV")
		asJSON     = flag.Bool("json", false, "emit the full surface as JSON")
		chart      = flag.Bool("chart", false, "append an ASCII latency chart per curve (text mode)")
		trace      = flag.Bool("trace", false, "after a -server run, fetch the job's span timeline and print it to stderr")

		check    = flag.String("check", "", "re-measure the named baseline on the server and verdict the drift (requires -server); exits nonzero on a fail verdict")
		recordBL = flag.String("record-baseline", "", "measure the configured surface on the server and store it under this baseline name (requires -server)")
	)
	flag.Parse()

	// Ctrl-C cancels the measurement between ladder rungs; the curves
	// collected so far still render, tagged with a canceled note.
	// Restoring the default handler on the first signal makes a second
	// Ctrl-C kill the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	var err error
	switch {
	case *check != "":
		err = runCheck(ctx, os.Stdout, *server, *check, *asJSON)
	case *recordBL != "":
		err = runRecordBaseline(ctx, os.Stdout, *server, *recordBL, *target,
			*patterns, *ratios, *rates, *size, *window, *probe, *kneeFactor)
	default:
		err = run(ctx, os.Stdout, *target, *patterns, *ratios, *rates, *size,
			*window, *probe, *kneeFactor, *server, *markdown, *asCSV, *asJSON, *chart, *trace)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsurf:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w io.Writer, target, patterns, ratios, rates, size string,
	window, probe int, kneeFactor float64, server string, markdown, asCSV, asJSON, chart, trace bool) error {
	exclusive := 0
	for _, f := range []bool{markdown, asCSV, asJSON} {
		if f {
			exclusive++
		}
	}
	if exclusive > 1 {
		return fmt.Errorf("-markdown, -csv and -json are mutually exclusive")
	}
	if chart && exclusive > 0 {
		return fmt.Errorf("-chart only applies to the text output")
	}
	cfg, err := buildConfig(patterns, ratios, rates, size, window, probe, kneeFactor)
	if err != nil {
		return err
	}
	var s *surface.Surface
	if server != "" {
		// Remote mode: the server (or fleet, curve-sharded across its
		// workers) measures; Ctrl-C cancels the job server-side and the
		// partial surface it hands back still renders.
		client := cluster.NewClient()
		req := cluster.SurfaceRequest{Target: target, Config: &cfg, Async: true}
		view, err := client.SubmitAndWait(ctx, strings.TrimRight(server, "/"), "/v1/surface", req, nil)
		if err != nil {
			return err
		}
		if trace {
			printTrace(client, strings.TrimRight(server, "/"), view.ID, "mpsurf")
		}
		if view.Status == "failed" {
			return fmt.Errorf("server: %s", view.Error)
		}
		if view.Surface == nil {
			return fmt.Errorf("server returned no surface (job %s %s)", view.ID, view.Status)
		}
		s = view.Surface
	} else {
		dev, err := targets.ByID(target)
		if err != nil {
			return err
		}
		if s, err = core.RunSurfaceContext(ctx, dev, cfg); err != nil {
			return err
		}
	}
	if s.Stopped != "" {
		fmt.Fprintf(os.Stderr, "mpsurf: %s — partial surface (%d curves)\n", s.Stopped, len(s.Curves))
	}
	switch {
	case asJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	case asCSV:
		return s.Table().WriteCSV(w)
	case markdown:
		if _, err := fmt.Fprintf(w, "### Bandwidth–latency surface of `%s`\n\n", s.Device.ID); err != nil {
			return err
		}
		if err := s.KneeTable().WriteMarkdown(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		return s.Table().WriteMarkdown(w)
	}
	fmt.Fprintf(w, "bandwidth–latency surface — %s (%s)\n\n", s.Device.ID, s.Device.Description)
	if err := s.KneeTable().WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := s.Table().WriteText(w); err != nil {
		return err
	}
	if chart {
		for _, c := range s.Curves {
			fmt.Fprintln(w)
			if err := c.Chart().Write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// runCheck asks the server to re-measure the named baseline and
// renders the drift report; a fail verdict exits nonzero.
func runCheck(ctx context.Context, w io.Writer, server, name string, asJSON bool) error {
	if server == "" {
		return fmt.Errorf("-check requires -server")
	}
	client := cluster.NewClient()
	req := cluster.CheckRequest{Name: name, Async: true}
	view, err := client.SubmitAndWait(ctx, strings.TrimRight(server, "/"), "/v1/check", req, nil)
	if err != nil {
		return err
	}
	if view.Status == "failed" {
		return fmt.Errorf("server: %s", view.Error)
	}
	if view.Check == nil {
		return fmt.Errorf("server returned no check report (job %s %s)", view.ID, view.Status)
	}
	rep := view.Check
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else if err := rep.WriteText(w); err != nil {
		return err
	}
	if rep.Verdict == baseline.VerdictFail {
		return fmt.Errorf("baseline %q drifted out of tolerance (%d violations)", name, len(rep.Violations))
	}
	return nil
}

// runRecordBaseline measures the configured surface on the server (on
// a fleet coordinator the ladder is curve-sharded across workers) and
// stores it as a named surface baseline for later -check runs.
func runRecordBaseline(ctx context.Context, w io.Writer, server, name, target,
	patterns, ratios, rates, size string, window, probe int, kneeFactor float64) error {
	if server == "" {
		return fmt.Errorf("-record-baseline requires -server")
	}
	cfg, err := buildConfig(patterns, ratios, rates, size, window, probe, kneeFactor)
	if err != nil {
		return err
	}
	client := cluster.NewClient()
	srv := strings.TrimRight(server, "/")
	view, err := client.SubmitAndWait(ctx, srv, "/v1/surface",
		cluster.SurfaceRequest{Target: target, Config: &cfg, Async: true}, nil)
	if err != nil {
		return err
	}
	if view.Status == "failed" {
		return fmt.Errorf("server: %s", view.Error)
	}
	if view.Status != "done" {
		return fmt.Errorf("measurement job %s ended %s; baseline not recorded", view.ID, view.Status)
	}
	e, err := client.RecordBaseline(ctx, srv, cluster.BaselineRequest{Name: name, Target: target, FromJob: view.ID})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "mpsurf: baseline %q recorded (%s on %s, %d curves, fingerprint %s)\n",
		e.Name, e.Kind, e.Target, len(e.Reference.Curves), e.Fingerprint)
	return nil
}

// buildConfig assembles the surface configuration from flag values;
// empty values leave the corresponding axis at its default.
func buildConfig(patterns, ratios, rates, size string, window, probe int, kneeFactor float64) (surface.Config, error) {
	var cfg surface.Config
	var err error
	for _, f := range splitList(patterns) {
		p, err := parsePattern(f)
		if err != nil {
			return cfg, err
		}
		cfg.Patterns = append(cfg.Patterns, p)
	}
	if cfg.RWRatios, err = parseFloats("ratios", ratios); err != nil {
		return cfg, err
	}
	if cfg.Rates, err = parseFloats("rates", rates); err != nil {
		return cfg, err
	}
	if size != "" {
		if cfg.ArrayBytes, err = report.ParseBytes(size); err != nil {
			return cfg, err
		}
	}
	cfg.WindowTxns = window
	cfg.ProbeHops = probe
	cfg.KneeFactor = kneeFactor
	return cfg, nil
}

// parsePattern resolves "contiguous", "strided:N" or "colmajor".
func parsePattern(s string) (mem.Pattern, error) {
	name, arg, hasArg := strings.Cut(s, ":")
	kind, err := mem.ParsePatternKind(name)
	if err != nil {
		return mem.Pattern{}, err
	}
	p := mem.Pattern{Kind: kind}
	if kind == mem.Strided {
		p.StrideElems = 1
		if hasArg {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return mem.Pattern{}, fmt.Errorf("bad stride in pattern %q", s)
			}
			p.StrideElems = n
		}
	} else if hasArg {
		return mem.Pattern{}, fmt.Errorf("pattern %q takes no argument", s)
	}
	return p, nil
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(axis, s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -%s value %q", axis, f)
		}
		out = append(out, v)
	}
	return out, nil
}

// printTrace fetches a finished job's span timeline and renders it to
// stderr, under its own deadline so it still works after Ctrl-C killed
// the main context.
func printTrace(client *cluster.Client, server, id, prog string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tv, err := client.JobTrace(ctx, server, id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: trace: %v\n", prog, err)
		return
	}
	obs.WriteTimeline(os.Stderr, tv)
}
