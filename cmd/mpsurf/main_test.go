package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"mpstream/internal/sim/mem"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := f()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

const (
	testPatterns = "contiguous"
	testRatios   = "1"
	testRates    = "0.25,1"
	testSize     = "4MB"
)

func runSmall(markdown, asCSV, asJSON, chart bool) func() error {
	return func() error {
		return run(context.Background(), os.Stdout, "gpu", testPatterns, testRatios, testRates, testSize,
			2048, 128, 0, "", markdown, asCSV, asJSON, chart, false)
	}
}

func TestRunText(t *testing.T) {
	out := captureStdout(t, runSmall(false, false, false, true))
	for _, want := range []string{"bandwidth–latency surface", "knee GB/s", "achieved GB/s", "contiguous", "loaded latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMarkdown(t *testing.T) {
	out := captureStdout(t, runSmall(true, false, false, false))
	if !strings.Contains(out, "| pattern |") && !strings.Contains(out, "| pattern ") {
		t.Errorf("markdown output missing table header:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	out := captureStdout(t, runSmall(false, false, true, false))
	var s struct {
		Device struct {
			ID string `json:"id"`
		} `json:"device"`
		Curves []struct {
			Knee struct {
				GBps float64 `json:"gbps"`
			} `json:"knee"`
			Points []struct {
				LatencyNs float64 `json:"latency_ns"`
			} `json:"points"`
		} `json:"curves"`
	}
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if s.Device.ID != "gpu" || len(s.Curves) != 1 || len(s.Curves[0].Points) != 2 {
		t.Errorf("unexpected shape: %+v", s)
	}
	if s.Curves[0].Knee.GBps <= 0 {
		t.Error("knee missing from JSON output")
	}
}

func TestRunCSVRoundTrip(t *testing.T) {
	out := captureStdout(t, runSmall(false, true, false, false))
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%s", err, out)
	}
	// Header plus one row per ladder point.
	if len(rows) != 3 {
		t.Fatalf("CSV has %d rows, want 3:\n%s", len(rows), out)
	}
	if rows[0][0] != "pattern" || rows[1][0] != "contiguous" {
		t.Errorf("unexpected CSV cells: %v", rows[:2])
	}
	for _, row := range rows {
		if len(row) != len(rows[0]) {
			t.Errorf("ragged CSV row: %v", row)
		}
	}
}

func TestRunErrors(t *testing.T) {
	sink := os.Stdout
	if err := run(context.Background(), sink, "tpu", "", "", "", "", 0, 0, 0, "", false, false, false, false, false); err == nil {
		t.Error("unknown target must error")
	}
	if err := run(context.Background(), sink, "gpu", "zigzag", "", "", "", 0, 0, 0, "", false, false, false, false, false); err == nil {
		t.Error("unknown pattern must error")
	}
	if err := run(context.Background(), sink, "gpu", "", "2", "", "", 0, 0, 0, "", false, false, false, false, false); err == nil {
		t.Error("read fraction above 1 must error")
	}
	if err := run(context.Background(), sink, "gpu", "", "", "abc", "", 0, 0, 0, "", false, false, false, false, false); err == nil {
		t.Error("unparsable rate must error")
	}
	if err := run(context.Background(), sink, "gpu", "", "", "", "nonsense", 0, 0, 0, "", false, false, false, false, false); err == nil {
		t.Error("unparsable size must error")
	}
	if err := run(context.Background(), sink, "gpu", "", "", "", "", 0, 0, 0, "", false, true, true, false, false); err == nil {
		t.Error("-csv with -json must error")
	}
	if err := run(context.Background(), sink, "gpu", "", "", "", "", 0, 0, 0, "", false, false, true, true, false); err == nil {
		t.Error("-chart with -json must error")
	}
}

func TestParsePattern(t *testing.T) {
	p, err := parsePattern("strided:32")
	if err != nil || p.Kind != mem.Strided || p.StrideElems != 32 {
		t.Errorf("parsePattern(strided:32) = %+v, %v", p, err)
	}
	p, err = parsePattern("strided")
	if err != nil || p.StrideElems != 1 {
		t.Errorf("parsePattern(strided) = %+v, %v", p, err)
	}
	if _, err := parsePattern("contiguous:4"); err == nil {
		t.Error("argument on contiguous must error")
	}
	if _, err := parsePattern("strided:zero"); err == nil {
		t.Error("bad stride must error")
	}
}
