package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"mpstream/internal/service"
)

// TestRunServerMode: -server submits the surface to a live service;
// the rendered ladder matches a local measurement of the same
// (deterministic) configuration.
func TestRunServerMode(t *testing.T) {
	srv := service.New(service.Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	render := func(server string) string {
		var sb strings.Builder
		if err := run(context.Background(), &sb, "gpu", "contiguous", "1", "0.25,0.9", "4MB",
			1024, 64, 0, server, false, true, false, false, false); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	local := render("")
	remote := render(ts.URL)
	if local != remote {
		t.Errorf("-server surface diverges from local:\n local %s\nremote %s", local, remote)
	}

	// Server-side rejections surface as errors.
	var sb strings.Builder
	if err := run(context.Background(), &sb, "tpu", "", "", "", "",
		0, 0, 0, ts.URL, false, false, false, false, false); err == nil {
		t.Error("unknown target accepted through -server")
	}
}
