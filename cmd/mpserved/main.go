// Command mpserved serves the MP-STREAM benchmark as a long-lived HTTP
// JSON service: runs, design-space sweeps, optimizer searches and
// bandwidth–latency surfaces are scheduled onto a bounded worker pool
// and cached by canonical request fingerprint. Repeated requests are
// answered from the cache, and concurrently submitted identical
// requests are simulated only once.
//
// Examples:
//
//	mpserved -addr :8774
//	curl -s localhost:8774/v1/targets
//	curl -s localhost:8774/v1/version
//	curl -s localhost:8774/v1/run -d '{"target":"aocl","config":{"array_bytes":4194304,"vec_width":16,"optimal_loop":true,"verify":true}}'
//	curl -s localhost:8774/v1/sweep -d '{"target":"aocl","op":"triad","space":{"vec_widths":[1,4,16]}}'
//	curl -s localhost:8774/v1/optimize -d '{"target":"gpu","op":"copy","space":{"vec_widths":[1,4,16]},"objective":"knee"}'
//	curl -s localhost:8774/v1/surface -d '{"target":"gpu"}'
//	curl -s localhost:8774/v1/sweep -d '{"target":"cpu","space":{"vec_widths":[1,2,4]},"async":true,"timeout_ms":60000}'
//	curl -s localhost:8774/v1/jobs?state=running
//	curl -sN localhost:8774/v1/jobs/j000001/events
//	curl -s -X DELETE localhost:8774/v1/jobs/j000001
//	curl -s localhost:8774/v1/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpstream/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8774", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "job queue depth (0 = default)")
		cacheEntries = flag.Int("cache", 0, "result cache entries (0 = default, negative disables)")
		sweepWorkers = flag.Int("sweep-workers", 0, "per-sweep grid fan-out (0 = GOMAXPROCS divided across the worker pool)")
		maxTimeout   = flag.Duration("max-timeout", 0, "ceiling for per-job timeout_ms deadlines (0 = default 15m)")
	)
	flag.Parse()

	opts := service.Options{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		SweepWorkers: *sweepWorkers,
		MaxTimeout:   *maxTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpserved:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mpserved: listening on %s\n", ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := serve(ln, opts, stop); err != nil {
		fmt.Fprintln(os.Stderr, "mpserved:", err)
		os.Exit(1)
	}
}

// serve runs the service on ln until a signal arrives on stop or the
// listener fails, then shuts down gracefully: in-flight HTTP requests
// get 10 seconds to drain and running jobs finish.
func serve(ln net.Listener, opts service.Options, stop <-chan os.Signal) error {
	svc := service.New(opts)
	defer svc.Close()

	httpSrv := &http.Server{
		Handler: svc.Handler(),
		// Bound slow clients: a stalled header or a parked idle
		// connection must not pin a goroutine forever.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "mpserved: %v, shutting down\n", sig)
		// A second signal skips the graceful drain entirely.
		go func() {
			if s, ok := <-stop; ok {
				fmt.Fprintf(os.Stderr, "mpserved: %v again, exiting immediately\n", s)
				os.Exit(1)
			}
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}
