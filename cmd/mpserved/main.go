// Command mpserved serves the MP-STREAM benchmark as a long-lived HTTP
// JSON service: runs, design-space sweeps, optimizer searches and
// bandwidth–latency surfaces are scheduled onto a bounded worker pool
// and cached by canonical request fingerprint. Repeated requests are
// answered from the cache, and concurrently submitted identical
// requests are simulated only once.
//
// Fleet mode scales the service out: a coordinator (-coordinator, or
// any server given -peers) shards sweep grids and surface ladders
// across registered workers, retries shards lost to dead workers, and
// merges the results — byte-identical to a single node. A worker is
// just another mpserved pointed at the coordinator with
// -worker -join; it registers its targets and capacity, heartbeats,
// and executes shard jobs through its ordinary /v1/* endpoints.
//
// Examples:
//
//	mpserved -addr :8774
//	mpserved -version
//	mpserved -addr :8774 -coordinator
//	mpserved -addr :8775 -worker -join http://127.0.0.1:8774
//	mpserved -addr :8774 -peers http://10.0.0.7:8774,http://10.0.0.8:8774
//	curl -s localhost:8774/v1/targets
//	curl -s localhost:8774/v1/version
//	curl -s localhost:8774/v1/cluster/workers
//	curl -s -H 'Content-Type: application/json' localhost:8774/v1/run -d '{"target":"aocl","config":{"array_bytes":4194304,"vec_width":16,"optimal_loop":true,"verify":true}}'
//	curl -s -H 'Content-Type: application/json' localhost:8774/v1/sweep -d '{"target":"aocl","op":"triad","space":{"vec_widths":[1,4,16]}}'
//	curl -s -H 'Content-Type: application/json' localhost:8774/v1/optimize -d '{"target":"gpu","op":"copy","space":{"vec_widths":[1,4,16]},"objective":"knee"}'
//	curl -s -H 'Content-Type: application/json' localhost:8774/v1/surface -d '{"target":"gpu"}'
//	curl -s localhost:8774/v1/jobs?state=running
//	curl -sN localhost:8774/v1/jobs/j000001/events
//	curl -s -X DELETE localhost:8774/v1/jobs/j000001
//	curl -s localhost:8774/v1/healthz
//	curl -s localhost:8774/v1/metrics
//
// Baseline drift monitoring: -data-dir persists named performance
// baselines across restarts, POST /v1/check re-measures a baseline's
// config and verdicts the drift, and -check-interval runs every
// registered baseline on a schedule (the sentinel), feeding
// /v1/baselines/alerts and the mpstream_baseline_* metric families:
//
//	mpserved -addr :8774 -data-dir /var/lib/mpstream -check-interval 10m
//	curl -s -H 'Content-Type: application/json' localhost:8774/v1/baselines -d '{"name":"aocl-nightly","from_job":"j000001"}'
//	curl -s localhost:8774/v1/baselines
//	curl -s -H 'Content-Type: application/json' localhost:8774/v1/check -d '{"name":"aocl-nightly"}'
//	curl -sN localhost:8774/v1/baselines/alerts?follow=1
//
// Observability: every request carries an X-Mpstream-Trace ID (minted
// when absent, propagated coordinator→worker), /v1/metrics serves the
// Prometheus text exposition, -log-level/-log-format shape the
// structured logs on stderr, and -debug-addr exposes net/http/pprof
// on a separate listener.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mpstream/internal/baseline"
	"mpstream/internal/cluster"
	"mpstream/internal/device/targets"
	"mpstream/internal/obs"
	"mpstream/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8774", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "job queue depth (0 = default)")
		cacheEntries = flag.Int("cache", 0, "result cache entries (0 = default, negative disables)")
		sweepWorkers = flag.Int("sweep-workers", 0, "per-sweep grid fan-out (0 = GOMAXPROCS divided across the worker pool)")
		maxTimeout   = flag.Duration("max-timeout", 0, "ceiling for per-job timeout_ms deadlines (0 = default 15m)")
		version      = flag.Bool("version", false, "print build and capability info (the GET /v1/version body) and exit")

		dataDir       = flag.String("data-dir", "", "directory for durable state (baseline entries); empty keeps baselines in memory only")
		checkInterval = flag.Duration("check-interval", 0, "re-check every registered baseline on this period (0 disables the drift sentinel)")
		checkPerturb  = flag.Float64("check-perturb", 0, "drift-injection drill: scale check measurements by this factor (bandwidths x f, latencies / f; 0 or 1 = off)")

		coordinator = flag.Bool("coordinator", false, "accept worker registrations and shard sweeps/surfaces across the fleet")
		peers       = flag.String("peers", "", "comma-separated static worker base URLs to probe and shard onto (implies -coordinator)")
		worker      = flag.Bool("worker", false, "join a coordinator as a fleet worker (requires -join)")
		join        = flag.String("join", "", "coordinator base URL to register with, e.g. http://10.0.0.1:8774")
		advertise   = flag.String("advertise", "", "base URL other nodes reach this server at (default: derived from -addr)")
		workerID    = flag.String("worker-id", "", "stable fleet identity (default: the advertised address)")
		shardUnit   = flag.Int("shard-unit", 0, "fleet scheduler: minimum work units (grid points, curves) per shard (0 = default 4)")
		speculation = flag.Bool("speculation", true, "fleet scheduler: speculatively re-execute straggling tail shards on idle workers")

		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		debugAddr = flag.String("debug-addr", "", "listen address for net/http/pprof (empty disables)")
	)
	flag.Parse()

	if *version {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(service.Version(nil)); err != nil {
			fmt.Fprintln(os.Stderr, "mpserved:", err)
			os.Exit(1)
		}
		return
	}
	if *worker && *join == "" {
		fmt.Fprintln(os.Stderr, "mpserved: -worker requires -join <coordinator URL>")
		os.Exit(1)
	}

	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpserved:", err)
		os.Exit(1)
	}

	opts := service.Options{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheEntries:  *cacheEntries,
		SweepWorkers:  *sweepWorkers,
		MaxTimeout:    *maxTimeout,
		CheckInterval: *checkInterval,
		CheckPerturb:  *checkPerturb,
		Logger:        log,
	}
	if *dataDir != "" {
		store, warns, err := baseline.OpenDirStore(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpserved:", err)
			os.Exit(1)
		}
		for _, w := range warns {
			log.Warn("mpserved: baseline store", "err", w)
		}
		opts.Baselines = store
		log.Info("mpserved: baseline store open", "dir", *dataDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpserved:", err)
		os.Exit(1)
	}
	log.Info("mpserved: listening", "addr", ln.Addr().String())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpserved:", err)
			os.Exit(1)
		}
		log.Info("mpserved: pprof debug endpoint up", "addr", dln.Addr().String())
		go func() {
			// A dedicated mux: pprof must not ride on the service handler
			// where it would be exposed to API clients.
			dmux := http.NewServeMux()
			dmux.HandleFunc("/debug/pprof/", pprof.Index)
			dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			dsrv := &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.Serve(dln); err != nil {
				log.Warn("mpserved: pprof server exited", "err", err)
			}
		}()
	}

	fleet := fleetConfig{
		coordinator: *coordinator || *peers != "",
		peers:       splitPeers(*peers),
		worker:      *worker,
		join:        strings.TrimRight(*join, "/"),
		advertise:   *advertise,
		workerID:    *workerID,
		capacity:    *workers,
		shardUnit:   *shardUnit,
		speculation: *speculation,
		log:         log,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := serve(ln, opts, fleet, stop); err != nil {
		fmt.Fprintln(os.Stderr, "mpserved:", err)
		os.Exit(1)
	}
}

// fleetConfig carries the cluster-mode flags into serve.
type fleetConfig struct {
	coordinator bool
	peers       []string
	worker      bool
	join        string
	advertise   string
	workerID    string
	capacity    int
	shardUnit   int
	speculation bool
	// log receives fleet diagnostics; nil discards them.
	log *slog.Logger
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// advertiseURL derives the base URL other fleet nodes reach this
// server at when -advertise is not given: the listener's port behind
// the -addr host, falling back to 127.0.0.1 for wildcard binds (a
// single-host fleet; multi-host fleets pass -advertise).
func advertiseURL(explicit string, ln net.Listener) string {
	if explicit != "" {
		return strings.TrimRight(explicit, "/")
	}
	host := "127.0.0.1"
	port := ""
	if ta, ok := ln.Addr().(*net.TCPAddr); ok {
		port = fmt.Sprintf("%d", ta.Port)
		if ip := ta.IP; ip != nil && !ip.IsUnspecified() {
			host = ip.String()
			if ip.To4() == nil {
				host = "[" + host + "]"
			}
		}
	}
	return "http://" + host + ":" + port
}

// serve runs the service on ln until a signal arrives on stop or the
// listener fails, then shuts down gracefully: in-flight HTTP requests
// get 10 seconds to drain and running jobs finish.
func serve(ln net.Listener, opts service.Options, fleet fleetConfig, stop <-chan os.Signal) error {
	log := fleet.log
	if log == nil {
		log = obs.NopLogger()
	}
	if fleet.coordinator {
		coord := cluster.New(cluster.Options{
			Logger:             log,
			ShardUnit:          fleet.shardUnit,
			DisableSpeculation: !fleet.speculation,
		})
		defer coord.Close()
		coord.WatchPeers(fleet.peers)
		opts.Cluster = coord
		// Origin tags this process's spans in merged fleet traces and
		// its own samples in the federated exposition.
		opts.Origin = "coordinator"
		log.Info("mpserved: coordinating", "static_peers", len(fleet.peers))
	}

	var self cluster.WorkerInfo
	if fleet.worker {
		self = cluster.WorkerInfo{
			ID:       fleet.workerID,
			Addr:     advertiseURL(fleet.advertise, ln),
			Capacity: fleet.capacity,
		}
		if self.ID == "" {
			self.ID = self.Addr
		}
		if self.Capacity <= 0 {
			self.Capacity = runtime.GOMAXPROCS(0)
		}
		for _, dev := range targets.All() {
			self.Targets = append(self.Targets, dev.Info().ID)
		}
		// A worker's spans carry its fleet identity, so the coordinator's
		// assembled trace names which worker ran each shard.
		opts.Origin = self.ID
	}

	svc := service.New(opts)
	defer svc.Close()

	if fleet.worker {
		joinCtx, joinCancel := context.WithCancel(context.Background())
		defer joinCancel()
		go cluster.Join(joinCtx, cluster.JoinOptions{
			Coordinator: fleet.join,
			Self:        self,
			Logger:      log,
		})
	}

	httpSrv := &http.Server{
		Handler: svc.Handler(),
		// Bound slow clients: a stalled header or a parked idle
		// connection must not pin a goroutine forever.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Info("mpserved: shutting down", "signal", sig.String())
		// A second signal skips the graceful drain entirely.
		go func() {
			if s, ok := <-stop; ok {
				log.Warn("mpserved: exiting immediately", "signal", s.String())
				os.Exit(1)
			}
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}
