package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"mpstream/internal/service"
)

// TestServeEndToEnd boots the daemon on an ephemeral port, drives the
// API over real TCP, and shuts it down via the signal channel.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ln, service.Options{Workers: 2}, stop) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz %d: %s", resp.StatusCode, body)
	}

	run := `{"target":"cpu","config":{"ops":["copy"],"array_bytes":65536,"vec_width":1,"optimal_loop":true,"ntimes":2,"scalar":3,"verify":true,"pattern":{"kind":"contiguous"}}}`
	resp, err = http.Post(base+"/v1/run", "application/json", strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run %d: %s", resp.StatusCode, body)
	}
	var jr service.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Job.Status != service.StatusDone || jr.Job.Result == nil {
		t.Fatalf("job = %+v", jr.Job)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down")
	}
}
