package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mpstream/internal/service"
)

// TestServeEndToEnd boots the daemon on an ephemeral port, drives the
// API over real TCP, and shuts it down via the signal channel.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ln, service.Options{Workers: 2}, fleetConfig{}, stop) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz %d: %s", resp.StatusCode, body)
	}

	run := `{"target":"cpu","config":{"ops":["copy"],"array_bytes":65536,"vec_width":1,"optimal_loop":true,"ntimes":2,"scalar":3,"verify":true,"pattern":{"kind":"contiguous"}}}`
	resp, err = http.Post(base+"/v1/run", "application/json", strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run %d: %s", resp.StatusCode, body)
	}
	var jr service.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Job.Status != service.StatusDone || jr.Job.Result == nil {
		t.Fatalf("job = %+v", jr.Job)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

// startNode boots one mpserved node (serve() on an ephemeral port) and
// returns its base URL and a shutdown func.
func startNode(t *testing.T, opts service.Options, fleet fleetConfig) (base string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ln, opts, fleet, stop) }()
	var once sync.Once
	shutdown = func() {
		once.Do(func() {
			stop <- syscall.SIGTERM
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				t.Error("node did not shut down")
			}
		})
	}
	return "http://" + ln.Addr().String(), shutdown
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestFleetEndToEnd boots a coordinator and two joining workers over
// real TCP, waits for registration, runs a sharded sweep through the
// coordinator, and checks it matches the same sweep on a lone worker.
func TestFleetEndToEnd(t *testing.T) {
	coordBase, stopCoord := startNode(t, service.Options{Workers: 2}, fleetConfig{coordinator: true})
	defer stopCoord()
	worker := func() func() {
		_, stop := startNode(t, service.Options{Workers: 2}, fleetConfig{
			worker:   true,
			join:     coordBase,
			capacity: 2,
		})
		return stop
	}
	stopW1 := worker()
	defer stopW1()
	stopW2 := worker()
	defer stopW2()

	// Wait until both workers registered and count as alive.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var h struct {
			Cluster *struct {
				WorkersAlive int `json:"workers_alive"`
			} `json:"cluster"`
		}
		getJSON(t, coordBase+"/v1/healthz", &h)
		if h.Cluster != nil && h.Cluster.WorkersAlive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached 2 alive workers (have %+v)", h.Cluster)
		}
		time.Sleep(20 * time.Millisecond)
	}

	sweep := `{"target":"cpu","op":"copy","base":{"ops":["copy"],"array_bytes":65536,"vec_width":1,"optimal_loop":true,"ntimes":2,"scalar":3,"verify":true,"pattern":{"kind":"contiguous"}},"space":{"vec_widths":[1,2,4,8],"unrolls":[1,2]}}`
	post := func(base string) service.View {
		resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(sweep))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep on %s: %d %s", base, resp.StatusCode, body)
		}
		var jr service.JobResponse
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Job.Status != service.StatusDone || jr.Job.Sweep == nil {
			t.Fatalf("sweep job on %s = %+v", base, jr.Job)
		}
		return jr.Job
	}

	fleetJob := post(coordBase)
	soloBase, stopSolo := startNode(t, service.Options{Workers: 2}, fleetConfig{})
	defer stopSolo()
	soloJob := post(soloBase)

	got, _ := json.Marshal(fleetJob.Sweep)
	want, _ := json.Marshal(soloJob.Sweep)
	if string(got) != string(want) {
		t.Fatalf("fleet sweep diverges from solo sweep:\n got %s\nwant %s", got, want)
	}

	// The registry saw both workers take work.
	var wr struct {
		Workers []struct {
			ID         string `json:"id"`
			ShardsDone uint64 `json:"shards_done"`
		} `json:"workers"`
	}
	getJSON(t, coordBase+"/v1/cluster/workers", &wr)
	if len(wr.Workers) != 2 {
		t.Fatalf("registry has %d workers, want 2", len(wr.Workers))
	}
	var shards uint64
	for _, w := range wr.Workers {
		shards += w.ShardsDone
	}
	if shards == 0 {
		t.Error("no shards recorded against the fleet")
	}
}

// TestAdvertiseURL pins the derivation of the worker's advertised base
// URL from its listener.
func TestAdvertiseURL(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	port := ln.Addr().(*net.TCPAddr).Port
	if got, want := advertiseURL("", ln), fmt.Sprintf("http://127.0.0.1:%d", port); got != want {
		t.Errorf("advertiseURL = %q, want %q", got, want)
	}
	if got := advertiseURL("http://10.0.0.9:9999/", ln); got != "http://10.0.0.9:9999" {
		t.Errorf("explicit advertiseURL = %q", got)
	}

	wild, err := net.Listen("tcp", ":0")
	if err != nil {
		t.Skip("wildcard bind unavailable:", err)
	}
	defer wild.Close()
	wildPort := wild.Addr().(*net.TCPAddr).Port
	if got, want := advertiseURL("", wild), fmt.Sprintf("http://127.0.0.1:%d", wildPort); got != want {
		t.Errorf("wildcard advertiseURL = %q, want %q", got, want)
	}
}

// TestVersionMatchesEndpoint: the -version flag and GET /v1/version
// report the same content.
func TestVersionMatchesEndpoint(t *testing.T) {
	base, stop := startNode(t, service.Options{Workers: 1}, fleetConfig{})
	defer stop()
	var fromHTTP service.VersionResponse
	getJSON(t, base+"/v1/version", &fromHTTP)
	fromFlag := service.Version(nil)
	a, _ := json.Marshal(fromFlag)
	b, _ := json.Marshal(fromHTTP)
	if string(a) != string(b) {
		t.Errorf("-version diverges from GET /v1/version:\n flag %s\n http %s", a, b)
	}
}
