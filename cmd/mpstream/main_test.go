package main

import "testing"

func ok(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDefaults(t *testing.T) {
	ok(t, run("aocl", "1MB", "int", 1, "auto", "contig", 2, 0, 0, 0, 0,
		false, false, false, false))
}

func TestRunVariants(t *testing.T) {
	// Explicit loop mode + strided pattern + CSV + source emission.
	ok(t, run("sdaccel", "256KB", "double", 2, "nested", "colmajor", 1, 0, 0, 0, 0,
		false, false, true, true))
	// Fixed-stride pattern.
	ok(t, run("gpu", "1MB", "int", 1, "ndrange", "stride:4", 1, 0, 0, 0, 0,
		false, true, false, false))
	// AOCL SIMD attributes.
	ok(t, run("aocl", "1MB", "int", 1, "ndrange", "contig", 1, 0, 4, 0, 256,
		false, false, false, false))
	// Host-IO mode.
	ok(t, run("gpu", "1MB", "int", 1, "auto", "contig", 1, 0, 0, 0, 0,
		true, false, false, false))
	// Flat loop with unroll.
	ok(t, run("cpu", "1MB", "int", 1, "flat", "contig", 1, 4, 0, 0, 0,
		false, false, false, false))
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"bad target", func() error {
			return run("tpu", "1MB", "int", 1, "auto", "contig", 1, 0, 0, 0, 0, false, false, false, false)
		}},
		{"bad size", func() error {
			return run("cpu", "huge", "int", 1, "auto", "contig", 1, 0, 0, 0, 0, false, false, false, false)
		}},
		{"bad dtype", func() error {
			return run("cpu", "1MB", "float16", 1, "auto", "contig", 1, 0, 0, 0, 0, false, false, false, false)
		}},
		{"bad loop", func() error {
			return run("cpu", "1MB", "int", 1, "spiral", "contig", 1, 0, 0, 0, 0, false, false, false, false)
		}},
		{"bad pattern", func() error {
			return run("cpu", "1MB", "int", 1, "auto", "zigzag", 1, 0, 0, 0, 0, false, false, false, false)
		}},
		{"bad stride", func() error {
			return run("cpu", "1MB", "int", 1, "auto", "stride:x", 1, 0, 0, 0, 0, false, false, false, false)
		}},
		{"bad vec", func() error {
			return run("cpu", "1MB", "int", 3, "auto", "contig", 1, 0, 0, 0, 0, false, false, false, false)
		}},
		{"simd without wg", func() error {
			return run("aocl", "1MB", "int", 1, "ndrange", "contig", 1, 0, 4, 0, 0, false, false, false, false)
		}},
	}
	for _, c := range cases {
		if err := c.f(); err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}
