// Command mpstream runs one MP-STREAM configuration on one simulated
// target and prints a STREAM-style report — the reproduction of the
// paper's benchmark binary.
//
// Examples:
//
//	mpstream -target aocl -size 4MB -vec 16
//	mpstream -target sdaccel -loop nested -pattern colmajor
//	mpstream -target gpu -size 64MB -dtype double -ntimes 5
//	mpstream -target aocl -simd 8 -wg 256 -loop ndrange -source
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpstream/internal/core"
	"mpstream/internal/device/targets"
	"mpstream/internal/kernel"
	"mpstream/internal/report"
	"mpstream/internal/sim/mem"
)

func main() {
	var (
		target   = flag.String("target", "aocl", "target device: aocl|sdaccel|cpu|gpu")
		size     = flag.String("size", "4MB", "per-array size, e.g. 256KB, 4MB, 1GB")
		dtype    = flag.String("dtype", "int", "element type: int|double")
		vec      = flag.Int("vec", 1, "vector width: 1|2|4|8|16")
		loop     = flag.String("loop", "auto", "loop management: auto|ndrange|flat|nested")
		pattern  = flag.String("pattern", "contig", "access pattern: contig|colmajor|stride:N")
		ntimes   = flag.Int("ntimes", core.DefaultNTimes, "repetitions (best time excludes the first)")
		unroll   = flag.Int("unroll", 0, "loop unroll factor (loop kernels)")
		simd     = flag.Int("simd", 0, "AOCL num_simd_work_items")
		cu       = flag.Int("cu", 0, "AOCL num_compute_units")
		wg       = flag.Int("wg", 0, "reqd_work_group_size")
		hostIO   = flag.Bool("hostio", false, "stream to/from host memory (PCIe in the timed path)")
		noVerify = flag.Bool("noverify", false, "skip functional execution and validation")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of a table")
		source   = flag.Bool("source", false, "print the equivalent OpenCL C before running")
	)
	flag.Parse()

	if err := run(*target, *size, *dtype, *vec, *loop, *pattern, *ntimes,
		*unroll, *simd, *cu, *wg, *hostIO, *noVerify, *asCSV, *source); err != nil {
		fmt.Fprintln(os.Stderr, "mpstream:", err)
		os.Exit(1)
	}
}

func run(target, size, dtype string, vec int, loop, pattern string, ntimes,
	unroll, simd, cu, wg int, hostIO, noVerify, asCSV, source bool) error {
	dev, err := targets.ByID(target)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.NTimes = ntimes
	cfg.Verify = !noVerify
	cfg.HostIO = hostIO
	cfg.VecWidth = vec
	cfg.Attrs = kernel.Attrs{
		Unroll:            unroll,
		NumSIMDWorkItems:  simd,
		NumComputeUnits:   cu,
		ReqdWorkGroupSize: wg,
	}

	if cfg.ArrayBytes, err = report.ParseBytes(size); err != nil {
		return err
	}
	switch dtype {
	case "int":
		cfg.Type = kernel.Int32
	case "double":
		cfg.Type = kernel.Float64
	default:
		return fmt.Errorf("unknown dtype %q", dtype)
	}
	switch loop {
	case "auto":
		cfg.OptimalLoop = true
	case "ndrange":
		cfg.OptimalLoop, cfg.Loop = false, kernel.NDRange
	case "flat":
		cfg.OptimalLoop, cfg.Loop = false, kernel.FlatLoop
	case "nested":
		cfg.OptimalLoop, cfg.Loop = false, kernel.NestedLoop
	default:
		return fmt.Errorf("unknown loop mode %q", loop)
	}
	switch {
	case pattern == "contig":
		cfg.Pattern = mem.ContiguousPattern()
	case pattern == "colmajor":
		cfg.Pattern = mem.ColMajorPattern()
	case strings.HasPrefix(pattern, "stride:"):
		n, err := strconv.Atoi(strings.TrimPrefix(pattern, "stride:"))
		if err != nil {
			return fmt.Errorf("bad stride in %q", pattern)
		}
		cfg.Pattern = mem.StridedPattern(n)
	default:
		return fmt.Errorf("unknown pattern %q", pattern)
	}

	if source {
		loopMode := cfg.Loop
		if cfg.OptimalLoop {
			loopMode = dev.Info().OptimalLoop
		}
		for _, op := range kernel.Ops() {
			k := kernel.Kernel{Op: op, Type: cfg.Type, VecWidth: cfg.VecWidth, Loop: loopMode, Attrs: cfg.Attrs}
			fmt.Println("//", k.Name())
			fmt.Println(k.OpenCLSource())
		}
	}

	res, err := core.Run(dev, cfg)
	if err != nil {
		return err
	}

	info := res.Device
	fmt.Printf("MP-STREAM (simulated) -- %s\n", info.Description)
	fmt.Printf("target=%s peak=%.1f GB/s arrays=%s x3 type=%s vec=%d pattern=%s ntimes=%d\n",
		info.ID, info.PeakMemGBps, report.HumanBytes(cfg.ArrayBytes), cfg.Type, cfg.VecWidth,
		cfg.Pattern.Kind, cfg.NTimes)
	if res.HasResources {
		fmt.Printf("fpga: fmax=%.0f MHz logic=%d regs=%d bram=%d dsp=%d\n",
			res.FmaxMHz, res.Resources.Logic, res.Resources.Registers,
			res.Resources.BRAM, res.Resources.DSP)
	}

	tb := report.NewTable("function", "best GB/s", "best MB/s", "avg time (s)", "min time (s)", "verified")
	for _, kr := range res.Kernels {
		tb.AddRowf(kr.Op.String(), kr.GBps, kr.MBps(), kr.AvgSeconds, kr.BestSeconds,
			fmt.Sprintf("%v", kr.Verified))
	}
	if asCSV {
		return tb.WriteCSV(os.Stdout)
	}
	return tb.WriteText(os.Stdout)
}
