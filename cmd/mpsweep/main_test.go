package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run("targets", false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("targets", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", false, false); err == nil {
		t.Error("missing -exp/-all must error")
	}
	if err := run("bogus", false, false); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestIDsListsAll(t *testing.T) {
	s := ids()
	for _, want := range []string{"fig1a", "fig4b", "hmc", "efficiency"} {
		if !strings.Contains(s, want) {
			t.Errorf("ids() missing %q: %s", want, s)
		}
	}
}
