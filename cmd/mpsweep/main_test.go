package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"mpstream/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run(context.Background(), "targets", false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "targets", false, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", false, false, false, false); err == nil {
		t.Error("missing -exp/-all must error")
	}
	if err := run(context.Background(), "bogus", false, false, false, false); err == nil {
		t.Error("unknown experiment must error")
	}
	if err := run(context.Background(), "targets", false, true, true, false); err == nil {
		t.Error("-markdown with -json must error")
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it
// wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := f()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

func TestRunJSONSeries(t *testing.T) {
	out := captureStdout(t, func() error { return run(context.Background(), "dtype", false, false, true, false) })
	var e struct {
		ID     string `json:"id"`
		Series []struct {
			Name string    `json:"name"`
			GBps []float64 `json:"gbps"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(out), &e); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if e.ID != "dtype" || len(e.Series) == 0 {
		t.Fatalf("experiment = %+v", e)
	}
	for _, s := range e.Series {
		if len(s.GBps) == 0 {
			t.Errorf("series %s has no data", s.Name)
		}
	}
}

func TestRunJSONTable(t *testing.T) {
	out := captureStdout(t, func() error { return run(context.Background(), "targets", false, false, true, false) })
	var e struct {
		Extra struct {
			Headers []string   `json:"headers"`
			Rows    [][]string `json:"rows"`
		} `json:"extra"`
	}
	if err := json.Unmarshal([]byte(out), &e); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(e.Extra.Headers) == 0 || len(e.Extra.Rows) != 4 {
		t.Errorf("table = %+v", e.Extra)
	}
}

func TestIDsListsAll(t *testing.T) {
	s := ids()
	for _, want := range []string{"fig1a", "fig4b", "hmc", "efficiency"} {
		if !strings.Contains(s, want) {
			t.Errorf("ids() missing %q: %s", want, s)
		}
	}
}

// TestRunCSVRoundTrip: -csv output parses as CSV and reproduces the
// experiment's table cell for cell.
func TestRunCSVRoundTrip(t *testing.T) {
	out := captureStdout(t, func() error { return run(context.Background(), "targets", false, false, false, true) })
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%s", err, out)
	}
	runExp, err := experiments.ByID("targets")
	if err != nil {
		t.Fatal(err)
	}
	e, err := runExp(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := json.Marshal(e.Table())
	if err != nil {
		t.Fatal(err)
	}
	var want struct {
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(tb, &want); err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want.Rows)+1 {
		t.Fatalf("CSV has %d rows, want %d", len(rows), len(want.Rows)+1)
	}
	for i, h := range want.Headers {
		if rows[0][i] != h {
			t.Errorf("CSV header %d = %q, want %q", i, rows[0][i], h)
		}
	}
	for r, wantRow := range want.Rows {
		for c, cell := range wantRow {
			if rows[r+1][c] != cell {
				t.Errorf("CSV cell [%d][%d] = %q, want %q", r, c, rows[r+1][c], cell)
			}
		}
	}
}

func TestRunCSVExclusive(t *testing.T) {
	if err := run(context.Background(), "targets", false, false, true, true); err == nil {
		t.Error("-csv with -json must error")
	}
	if err := run(context.Background(), "targets", false, true, false, true); err == nil {
		t.Error("-csv with -markdown must error")
	}
}
