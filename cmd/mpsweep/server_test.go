package main

import (
	"context"
	"encoding/csv"
	"net/http/httptest"
	"strings"
	"testing"

	"mpstream/internal/service"
)

// TestRunServerSweep: -server submits a grid sweep and renders the
// ranked exploration; the CSV carries one row per feasible point.
func TestRunServerSweep(t *testing.T) {
	srv := service.New(service.Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var sb strings.Builder
	err := runServer(context.Background(), &sb, ts.URL, "cpu", "copy", "64KB", 2,
		"1,2,4", "", "", "", "", "int", false, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%s", err, sb.String())
	}
	if len(rows) != 4 { // header + 3 vector widths
		t.Fatalf("CSV rows = %d, want 4:\n%s", len(rows), sb.String())
	}
	if rows[0][0] != "rank" || rows[0][1] != "label" {
		t.Errorf("CSV header = %v", rows[0])
	}

	// Text mode names the best point.
	sb.Reset()
	err = runServer(context.Background(), &sb, ts.URL, "cpu", "copy", "64KB", 2,
		"1,2", "", "", "", "", "int", false, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "best:") {
		t.Errorf("text output missing best line:\n%s", sb.String())
	}

	// Server-side rejections surface as errors.
	if err := runServer(context.Background(), &sb, ts.URL, "tpu", "copy", "64KB", 2,
		"1", "", "", "", "", "int", false, false, false, false); err == nil {
		t.Error("unknown target accepted through -server")
	}
}
