// Command mpsweep regenerates the paper's figures and tables (and this
// reproduction's ablation experiments) as text tables, ASCII charts and
// paper-deviation summaries.
//
// Examples:
//
//	mpsweep -exp fig1a
//	mpsweep -exp fig4b
//	mpsweep -all
//	mpsweep -all -markdown > results.md
package main

import (
	"flag"
	"fmt"
	"os"

	"mpstream/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig1a|fig1b|fig2|fig3|fig4a|fig4b|targets|pcie|resources|unroll|preshape|dtype)")
		all      = flag.Bool("all", false, "run every experiment")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of text")
	)
	flag.Parse()

	if err := run(*exp, *all, *markdown); err != nil {
		fmt.Fprintln(os.Stderr, "mpsweep:", err)
		os.Exit(1)
	}
}

func run(exp string, all, markdown bool) error {
	if !all && exp == "" {
		return fmt.Errorf("pass -exp <id> or -all (ids: %s)", ids())
	}
	emit := func(e *experiments.Experiment) error {
		if markdown {
			return e.WriteMarkdown(os.Stdout)
		}
		return e.WriteText(os.Stdout)
	}
	if all {
		for _, ent := range experiments.Registry() {
			fmt.Fprintf(os.Stderr, "running %s...\n", ent.ID)
			e, err := ent.Run()
			if err != nil {
				return fmt.Errorf("%s: %w", ent.ID, err)
			}
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	}
	run, err := experiments.ByID(exp)
	if err != nil {
		return err
	}
	e, err := run()
	if err != nil {
		return err
	}
	return emit(e)
}

func ids() string {
	s := ""
	for i, ent := range experiments.Registry() {
		if i > 0 {
			s += " "
		}
		s += ent.ID
	}
	return s
}
