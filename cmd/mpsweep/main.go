// Command mpsweep regenerates the paper's figures and tables (and this
// reproduction's ablation experiments) as text tables, ASCII charts,
// paper-deviation summaries, or machine-readable JSON.
//
// Ctrl-C cancels the run gracefully: whatever points and experiments
// were collected before the interrupt are still rendered, annotated
// with a "canceled — partial results" note.
//
// Examples:
//
//	mpsweep -exp fig1a
//	mpsweep -exp fig4b
//	mpsweep -all
//	mpsweep -all -markdown > results.md
//	mpsweep -exp fig2 -json | jq '.series[].gbps'
//	mpsweep -exp targets -csv > targets.csv
//
// With -server, mpsweep instead submits a grid sweep against a running
// mpserved — on a fleet coordinator the grid is sharded across the
// registered workers and the merged ranking comes back byte-identical
// to a single-node sweep:
//
//	mpsweep -server http://127.0.0.1:8774 -target cpu -op triad -vec 1,2,4,8 -types int,double
//
// Baseline drift monitoring (requires -server): -record-baseline runs
// the base config and stores the result as a named reference;
// -check re-measures a stored baseline and exits nonzero when the
// fresh measurement drifts out of tolerance:
//
//	mpsweep -server http://127.0.0.1:8774 -target cpu -record-baseline cpu-nightly
//	mpsweep -server http://127.0.0.1:8774 -check cpu-nightly
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpstream/internal/baseline"
	"mpstream/internal/cluster"
	"mpstream/internal/core"
	"mpstream/internal/dse"
	"mpstream/internal/experiments"
	"mpstream/internal/kernel"
	"mpstream/internal/obs"
	"mpstream/internal/report"
	"mpstream/internal/runstate"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig1a|fig1b|fig2|fig3|fig4a|fig4b|targets|pcie|resources|unroll|preshape|dtype)")
		all      = flag.Bool("all", false, "run every experiment")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of text")
		asJSON   = flag.Bool("json", false, "emit JSON instead of text (-all yields a JSON array)")
		asCSV    = flag.Bool("csv", false, "emit each experiment's table as CSV")

		server  = flag.String("server", "", "submit a grid sweep against a running mpserved (or fleet coordinator) at this base URL")
		target  = flag.String("target", "cpu", "sweep target device (with -server): aocl|sdaccel|cpu|gpu")
		op      = flag.String("op", "triad", "sweep kernel (with -server): copy|scale|add|triad")
		size    = flag.String("size", "4MB", "per-array size for the sweep base (with -server)")
		ntimes  = flag.Int("ntimes", core.DefaultNTimes, "repetitions per point (with -server)")
		vecs    = flag.String("vec", "1,2,4,8,16", "vector-width axis (with -server; empty omits)")
		loops   = flag.String("loops", "", "loop-mode axis (with -server; empty omits)")
		unrolls = flag.String("unrolls", "", "unroll-factor axis (with -server; empty omits)")
		simds   = flag.String("simds", "", "num_simd_work_items axis (with -server; empty omits)")
		cus     = flag.String("cus", "", "num_compute_units axis (with -server; empty omits)")
		dtypes  = flag.String("types", "int,double", "data-type axis (with -server; empty omits)")
		trace   = flag.Bool("trace", false, "after the sweep, fetch the job's span timeline and print it to stderr (with -server)")

		check    = flag.String("check", "", "re-measure the named baseline on the server and verdict the drift (requires -server); exits nonzero on a fail verdict")
		recordBL = flag.String("record-baseline", "", "run the base config (-target/-size/-ntimes) on the server and store the result under this baseline name (requires -server)")
	)
	flag.Parse()

	// Ctrl-C cancels the run between measurement units; partial results
	// still render below. Restoring the default handler as soon as the
	// first signal lands makes a second Ctrl-C kill the process outright
	// — NotifyContext alone would keep swallowing signals until stop().
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	var err error
	switch {
	case *check != "":
		err = runCheck(ctx, os.Stdout, *server, *check, *asJSON)
	case *recordBL != "":
		err = runRecordBaseline(ctx, os.Stdout, *server, *recordBL, *target, *size, *ntimes)
	case *server != "":
		err = runServer(ctx, os.Stdout, *server, *target, *op, *size, *ntimes,
			*vecs, *loops, *unrolls, *simds, *cus, *dtypes, *markdown, *asJSON, *asCSV, *trace)
	default:
		err = run(ctx, *exp, *all, *markdown, *asJSON, *asCSV)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsweep:", err)
		os.Exit(1)
	}
	if st := runstate.FromContext(ctx); st != "" {
		fmt.Fprintf(os.Stderr, "mpsweep: %s — partial results rendered\n", st)
	}
}

// runServer submits a grid sweep to a server (or fleet) and renders
// the ranked exploration it returns. Ctrl-C cancels the job
// server-side; the partial ranking still renders.
func runServer(ctx context.Context, w io.Writer, server, target, opName, size string, ntimes int,
	vecs, loops, unrolls, simds, cus, dtypes string, markdown, asJSON, asCSV, trace bool) error {
	exclusive := 0
	for _, f := range []bool{markdown, asJSON, asCSV} {
		if f {
			exclusive++
		}
	}
	if exclusive > 1 {
		return fmt.Errorf("-markdown, -json and -csv are mutually exclusive")
	}
	op, err := kernel.ParseOp(opName)
	if err != nil {
		return err
	}
	base := core.DefaultConfig()
	base.NTimes = ntimes
	if base.ArrayBytes, err = report.ParseBytes(size); err != nil {
		return err
	}
	space, err := dse.ParseSpace(vecs, loops, unrolls, simds, cus, dtypes)
	if err != nil {
		return err
	}
	client := cluster.NewClient()
	req := cluster.SweepRequest{Target: target, Base: &base, Space: space, Op: &op, Async: true}
	view, err := client.SubmitAndWait(ctx, strings.TrimRight(server, "/"), "/v1/sweep", req, nil)
	if err != nil {
		return err
	}
	if trace {
		printTrace(client, strings.TrimRight(server, "/"), view.ID, "mpsweep")
	}
	if view.Status == "failed" {
		return fmt.Errorf("server: %s", view.Error)
	}
	if view.Sweep == nil {
		return fmt.Errorf("server returned no sweep result (job %s %s)", view.ID, view.Status)
	}
	ex := view.Sweep
	if view.StopReason != "" {
		fmt.Fprintf(os.Stderr, "mpsweep: %s — partial ranking (%d points)\n", view.StopReason, len(ex.Ranked))
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(ex)
	}
	tb := report.NewTable("rank", "label", "GB/s")
	for i, p := range ex.Ranked {
		tb.AddRowf(i+1, p.Label, p.GBps(op))
	}
	switch {
	case asCSV:
		return tb.WriteCSV(w)
	case markdown:
		if _, err := fmt.Fprintf(w, "### Sweep of `%s` on `%s` (%d points, %d infeasible, %d cached)\n\n",
			op, target, space.Size(), ex.Infeasible, view.CachedPoints); err != nil {
			return err
		}
		return tb.WriteMarkdown(w)
	}
	fmt.Fprintf(w, "mpsweep -- %s on %s via %s: %d points, %d infeasible, %d cached\n",
		op, target, server, space.Size(), ex.Infeasible, view.CachedPoints)
	if best, ok := ex.Best(); ok {
		fmt.Fprintf(w, "best: %s at %.3f GB/s\n\n", best.Label, best.GBps(op))
	}
	return tb.WriteText(w)
}

// runCheck asks the server to re-measure the named baseline and
// renders the drift report. A fail verdict is an error — the process
// exits nonzero — so the command slots into CI and cron.
func runCheck(ctx context.Context, w io.Writer, server, name string, asJSON bool) error {
	if server == "" {
		return fmt.Errorf("-check requires -server")
	}
	client := cluster.NewClient()
	req := cluster.CheckRequest{Name: name, Async: true}
	view, err := client.SubmitAndWait(ctx, strings.TrimRight(server, "/"), "/v1/check", req, nil)
	if err != nil {
		return err
	}
	if view.Status == "failed" {
		return fmt.Errorf("server: %s", view.Error)
	}
	if view.Check == nil {
		return fmt.Errorf("server returned no check report (job %s %s)", view.ID, view.Status)
	}
	rep := view.Check
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else if err := rep.WriteText(w); err != nil {
		return err
	}
	if rep.Verdict == baseline.VerdictFail {
		return fmt.Errorf("baseline %q drifted out of tolerance (%d violations)", name, len(rep.Violations))
	}
	return nil
}

// runRecordBaseline measures the base configuration on the server (a
// plain run job: all four kernels plus the pointer chase) and stores
// the result as a named baseline for later -check runs.
func runRecordBaseline(ctx context.Context, w io.Writer, server, name, target, size string, ntimes int) error {
	if server == "" {
		return fmt.Errorf("-record-baseline requires -server")
	}
	base := core.DefaultConfig()
	base.NTimes = ntimes
	var err error
	if base.ArrayBytes, err = report.ParseBytes(size); err != nil {
		return err
	}
	client := cluster.NewClient()
	srv := strings.TrimRight(server, "/")
	view, err := client.SubmitAndWait(ctx, srv, "/v1/run",
		cluster.RunRequest{Target: target, Config: &base}, nil)
	if err != nil {
		return err
	}
	if view.Status == "failed" {
		return fmt.Errorf("server: %s", view.Error)
	}
	if view.Status != "done" {
		return fmt.Errorf("measurement job %s ended %s; baseline not recorded", view.ID, view.Status)
	}
	e, err := client.RecordBaseline(ctx, srv, cluster.BaselineRequest{Name: name, Target: target, FromJob: view.ID})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "mpsweep: baseline %q recorded (%s on %s, fingerprint %s)\n",
		e.Name, e.Kind, e.Target, e.Fingerprint)
	return nil
}

// printTrace fetches a finished job's span timeline and renders it to
// stderr (stderr so -json/-csv stdout stays machine-parseable). It runs
// under its own deadline: the job is already terminal, and the fetch
// must still work after a Ctrl-C canceled the main context.
func printTrace(client *cluster.Client, server, id, prog string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tv, err := client.JobTrace(ctx, server, id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: trace: %v\n", prog, err)
		return
	}
	obs.WriteTimeline(os.Stderr, tv)
}

func run(ctx context.Context, exp string, all, markdown, asJSON, asCSV bool) error {
	if !all && exp == "" {
		return fmt.Errorf("pass -exp <id> or -all (ids: %s)", ids())
	}
	exclusive := 0
	for _, f := range []bool{markdown, asJSON, asCSV} {
		if f {
			exclusive++
		}
	}
	if exclusive > 1 {
		return fmt.Errorf("-markdown, -json and -csv are mutually exclusive")
	}
	emit := func(e *experiments.Experiment) error {
		switch {
		case markdown:
			return e.WriteMarkdown(os.Stdout)
		case asCSV:
			return e.WriteCSV(os.Stdout)
		}
		return e.WriteText(os.Stdout)
	}
	emitJSON := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	if all {
		var collected []*experiments.Experiment
		for _, ent := range experiments.Registry() {
			if ctx.Err() != nil {
				// Canceled between experiments: render what we have.
				break
			}
			fmt.Fprintf(os.Stderr, "running %s...\n", ent.ID)
			e, err := ent.Run(ctx)
			if err != nil {
				return fmt.Errorf("%s: %w", ent.ID, err)
			}
			if asJSON {
				collected = append(collected, e)
				continue
			}
			if err := emit(e); err != nil {
				return err
			}
		}
		if asJSON {
			return emitJSON(collected)
		}
		return nil
	}
	runExp, err := experiments.ByID(exp)
	if err != nil {
		return err
	}
	e, err := runExp(ctx)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(e)
	}
	return emit(e)
}

func ids() string {
	s := ""
	for i, ent := range experiments.Registry() {
		if i > 0 {
			s += " "
		}
		s += ent.ID
	}
	return s
}
