// Command mpsweep regenerates the paper's figures and tables (and this
// reproduction's ablation experiments) as text tables, ASCII charts,
// paper-deviation summaries, or machine-readable JSON.
//
// Ctrl-C cancels the run gracefully: whatever points and experiments
// were collected before the interrupt are still rendered, annotated
// with a "canceled — partial results" note.
//
// Examples:
//
//	mpsweep -exp fig1a
//	mpsweep -exp fig4b
//	mpsweep -all
//	mpsweep -all -markdown > results.md
//	mpsweep -exp fig2 -json | jq '.series[].gbps'
//	mpsweep -exp targets -csv > targets.csv
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mpstream/internal/experiments"
	"mpstream/internal/runstate"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig1a|fig1b|fig2|fig3|fig4a|fig4b|targets|pcie|resources|unroll|preshape|dtype)")
		all      = flag.Bool("all", false, "run every experiment")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of text")
		asJSON   = flag.Bool("json", false, "emit JSON instead of text (-all yields a JSON array)")
		asCSV    = flag.Bool("csv", false, "emit each experiment's table as CSV")
	)
	flag.Parse()

	// Ctrl-C cancels the run between measurement units; partial results
	// still render below. Restoring the default handler as soon as the
	// first signal lands makes a second Ctrl-C kill the process outright
	// — NotifyContext alone would keep swallowing signals until stop().
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	if err := run(ctx, *exp, *all, *markdown, *asJSON, *asCSV); err != nil {
		fmt.Fprintln(os.Stderr, "mpsweep:", err)
		os.Exit(1)
	}
	if st := runstate.FromContext(ctx); st != "" {
		fmt.Fprintf(os.Stderr, "mpsweep: %s — partial results rendered\n", st)
	}
}

func run(ctx context.Context, exp string, all, markdown, asJSON, asCSV bool) error {
	if !all && exp == "" {
		return fmt.Errorf("pass -exp <id> or -all (ids: %s)", ids())
	}
	exclusive := 0
	for _, f := range []bool{markdown, asJSON, asCSV} {
		if f {
			exclusive++
		}
	}
	if exclusive > 1 {
		return fmt.Errorf("-markdown, -json and -csv are mutually exclusive")
	}
	emit := func(e *experiments.Experiment) error {
		switch {
		case markdown:
			return e.WriteMarkdown(os.Stdout)
		case asCSV:
			return e.WriteCSV(os.Stdout)
		}
		return e.WriteText(os.Stdout)
	}
	emitJSON := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	if all {
		var collected []*experiments.Experiment
		for _, ent := range experiments.Registry() {
			if ctx.Err() != nil {
				// Canceled between experiments: render what we have.
				break
			}
			fmt.Fprintf(os.Stderr, "running %s...\n", ent.ID)
			e, err := ent.Run(ctx)
			if err != nil {
				return fmt.Errorf("%s: %w", ent.ID, err)
			}
			if asJSON {
				collected = append(collected, e)
				continue
			}
			if err := emit(e); err != nil {
				return err
			}
		}
		if asJSON {
			return emitJSON(collected)
		}
		return nil
	}
	runExp, err := experiments.ByID(exp)
	if err != nil {
		return err
	}
	e, err := runExp(ctx)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(e)
	}
	return emit(e)
}

func ids() string {
	s := ""
	for i, ent := range experiments.Registry() {
		if i > 0 {
			s += " "
		}
		s += ent.ID
	}
	return s
}
