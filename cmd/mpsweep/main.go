// Command mpsweep regenerates the paper's figures and tables (and this
// reproduction's ablation experiments) as text tables, ASCII charts,
// paper-deviation summaries, or machine-readable JSON.
//
// Examples:
//
//	mpsweep -exp fig1a
//	mpsweep -exp fig4b
//	mpsweep -all
//	mpsweep -all -markdown > results.md
//	mpsweep -exp fig2 -json | jq '.series[].gbps'
//	mpsweep -exp targets -csv > targets.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mpstream/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig1a|fig1b|fig2|fig3|fig4a|fig4b|targets|pcie|resources|unroll|preshape|dtype)")
		all      = flag.Bool("all", false, "run every experiment")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of text")
		asJSON   = flag.Bool("json", false, "emit JSON instead of text (-all yields a JSON array)")
		asCSV    = flag.Bool("csv", false, "emit each experiment's table as CSV")
	)
	flag.Parse()

	if err := run(*exp, *all, *markdown, *asJSON, *asCSV); err != nil {
		fmt.Fprintln(os.Stderr, "mpsweep:", err)
		os.Exit(1)
	}
}

func run(exp string, all, markdown, asJSON, asCSV bool) error {
	if !all && exp == "" {
		return fmt.Errorf("pass -exp <id> or -all (ids: %s)", ids())
	}
	exclusive := 0
	for _, f := range []bool{markdown, asJSON, asCSV} {
		if f {
			exclusive++
		}
	}
	if exclusive > 1 {
		return fmt.Errorf("-markdown, -json and -csv are mutually exclusive")
	}
	emit := func(e *experiments.Experiment) error {
		switch {
		case markdown:
			return e.WriteMarkdown(os.Stdout)
		case asCSV:
			return e.WriteCSV(os.Stdout)
		}
		return e.WriteText(os.Stdout)
	}
	emitJSON := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	if all {
		var collected []*experiments.Experiment
		for _, ent := range experiments.Registry() {
			fmt.Fprintf(os.Stderr, "running %s...\n", ent.ID)
			e, err := ent.Run()
			if err != nil {
				return fmt.Errorf("%s: %w", ent.ID, err)
			}
			if asJSON {
				collected = append(collected, e)
				continue
			}
			if err := emit(e); err != nil {
				return err
			}
		}
		if asJSON {
			return emitJSON(collected)
		}
		return nil
	}
	run, err := experiments.ByID(exp)
	if err != nil {
		return err
	}
	e, err := run()
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(e)
	}
	return emit(e)
}

func ids() string {
	s := ""
	for i, ent := range experiments.Registry() {
		if i > 0 {
			s += " "
		}
		s += ent.ID
	}
	return s
}
