package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := f()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

func TestRunText(t *testing.T) {
	out := captureStdout(t, func() error {
		return run("aocl", "triad", "hillclimb", 10, 1, "64KB", 2,
			"1,2,4", "", "1,2", "", "", "int,double", false, true)
	})
	for _, want := range []string{"strategy=hillclimb", "best:", "pareto point", "step"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return run("cpu", "copy", "random", 4, 2, "64KB", 2,
			"1,2,4,8", "", "", "", "", "", true, false)
	})
	var res struct {
		Strategy    string `json:"strategy"`
		Evaluations int    `json:"evaluations"`
		Best        *struct {
			Label string `json:"label"`
		} `json:"best"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if res.Strategy != "random" || res.Evaluations == 0 || res.Best == nil || res.Best.Label == "" {
		t.Errorf("result = %+v", res)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"unknown target", func() error {
			return run("tpu", "copy", "random", 1, 0, "64KB", 2, "1", "", "", "", "", "", false, false)
		}},
		{"unknown op", func() error {
			return run("cpu", "transpose", "random", 1, 0, "64KB", 2, "1", "", "", "", "", "", false, false)
		}},
		{"unknown strategy", func() error {
			return run("cpu", "copy", "bogo", 1, 0, "64KB", 2, "1", "", "", "", "", "", false, false)
		}},
		{"bad size", func() error {
			return run("cpu", "copy", "random", 1, 0, "nope", 2, "1", "", "", "", "", "", false, false)
		}},
		{"bad axis value", func() error {
			return run("cpu", "copy", "random", 1, 0, "64KB", 2, "one", "", "", "", "", "", false, false)
		}},
		{"bad loop mode", func() error {
			return run("cpu", "copy", "random", 1, 0, "64KB", 2, "1", "spiral", "", "", "", "", false, false)
		}},
	}
	for _, tc := range cases {
		if err := tc.f(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
