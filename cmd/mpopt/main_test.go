package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := f()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

func TestRunText(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(context.Background(), "aocl", "triad", "hillclimb", 10, 1, "64KB", 2, "1, 2, 4", "", "1, 2", "", "", "int, double", "", "", false, false, true, false)
	})
	for _, want := range []string{"strategy=hillclimb", "best:", "pareto point", "step"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(context.Background(), "cpu", "copy", "random", 4, 2, "64KB", 2, "1, 2, 4, 8", "", "", "", "", "", "", "", true, false, false, false)
	})
	var res struct {
		Strategy    string `json:"strategy"`
		Evaluations int    `json:"evaluations"`
		Best        *struct {
			Label string `json:"label"`
		} `json:"best"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if res.Strategy != "random" || res.Evaluations == 0 || res.Best == nil || res.Best.Label == "" {
		t.Errorf("result = %+v", res)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"unknown target", func() error {
			return run(context.Background(), "tpu", "copy", "random", 1, 0, "64KB", 2, "1", "", "", "", "", "", "", "", false, false, false, false)
		}},
		{"unknown op", func() error {
			return run(context.Background(), "cpu", "transpose", "random", 1, 0, "64KB", 2, "1", "", "", "", "", "", "", "", false, false, false, false)
		}},
		{"unknown strategy", func() error {
			return run(context.Background(), "cpu", "copy", "bogo", 1, 0, "64KB", 2, "1", "", "", "", "", "", "", "", false, false, false, false)
		}},
		{"bad size", func() error {
			return run(context.Background(), "cpu", "copy", "random", 1, 0, "nope", 2, "1", "", "", "", "", "", "", "", false, false, false, false)
		}},
		{"bad axis value", func() error {
			return run(context.Background(), "cpu", "copy", "random", 1, 0, "64KB", 2, "one", "", "", "", "", "", "", "", false, false, false, false)
		}},
		{"bad loop mode", func() error {
			return run(context.Background(), "cpu", "copy", "random", 1, 0, "64KB", 2, "1", "spiral", "", "", "", "", "", "", false, false, false, false)
		}},
	}
	for _, tc := range cases {
		if err := tc.f(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

// TestRunCSVRoundTrip: -csv output parses as CSV and matches the
// ranking the same (seeded, deterministic) search reports via JSON.
func TestRunCSVRoundTrip(t *testing.T) {
	args := func(asJSON, asCSV bool) func() error {
		return func() error {
			return run(context.Background(), "aocl", "triad", "exhaustive", 0, 0, "64KB", 2,
				"1,2,4", "", "", "", "", "int", "", "", asJSON, asCSV, false, false)
		}
	}
	csvOut := captureStdout(t, args(false, true))
	rows, err := csv.NewReader(strings.NewReader(csvOut)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%s", err, csvOut)
	}
	jsonOut := captureStdout(t, args(true, false))
	var res struct {
		Exploration struct {
			Ranked []struct {
				Label string `json:"label"`
			} `json:"ranked"`
		} `json:"exploration"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &res); err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Exploration.Ranked)+1 {
		t.Fatalf("CSV has %d rows, want %d ranked points + header",
			len(rows), len(res.Exploration.Ranked))
	}
	if got := rows[0]; got[0] != "rank" || got[1] != "label" {
		t.Errorf("CSV header = %v", got)
	}
	for i, p := range res.Exploration.Ranked {
		if rows[i+1][1] != p.Label {
			t.Errorf("CSV rank %d label = %q, want %q", i+1, rows[i+1][1], p.Label)
		}
	}
}

func TestRunCSVExclusive(t *testing.T) {
	err := run(context.Background(), "aocl", "copy", "exhaustive", 0, 0, "64KB", 2,
		"1", "", "", "", "", "int", "", "", true, true, false, false)
	if err == nil {
		t.Error("-json with -csv must error")
	}
}

// TestRunKneeObjective: the knee metric is selectable from the CLI and
// surfaces per-point knee bandwidths in the CSV ranking.
func TestRunKneeObjective(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(context.Background(), "gpu", "copy", "exhaustive", 0, 0, "64KB", 2,
			"1,4", "", "", "", "", "int", "knee", "", false, true, false, false)
	})
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("CSV rows = %d, want 3:\n%s", len(rows), out)
	}
	for _, row := range rows[1:] {
		if row[3] == "0" || row[3] == "" {
			t.Errorf("knee column empty in %v", row)
		}
	}
}
