package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"mpstream/internal/service"
)

// TestRunServerMode: -server submits the search to a live service and
// renders the identical (deterministic) result a local search
// produces.
func TestRunServerMode(t *testing.T) {
	srv := service.New(service.Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	args := func(server string) func() error {
		return func() error {
			return run(context.Background(), "cpu", "copy", "exhaustive", 0, 0, "64KB", 2,
				"1,2,4", "", "", "", "", "int", "", server, true, false, false, false)
		}
	}
	local := captureStdout(t, args(""))
	remote := captureStdout(t, args(ts.URL))

	var a, b map[string]any
	if err := json.Unmarshal([]byte(local), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(remote), &b); err != nil {
		t.Fatal(err)
	}
	la, _ := json.Marshal(a)
	lb, _ := json.Marshal(b)
	if string(la) != string(lb) {
		t.Errorf("-server result diverges from local:\n local %s\nremote %s", la, lb)
	}
}

// TestRunServerModeErrors: server-side failures surface as CLI errors.
func TestRunServerModeErrors(t *testing.T) {
	srv := service.New(service.Options{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	err := run(context.Background(), "tpu", "copy", "exhaustive", 0, 0, "64KB", 2,
		"1", "", "", "", "", "int", "", ts.URL, false, false, false, false)
	if err == nil {
		t.Error("unknown target accepted through -server")
	}
}
