// Command mpopt searches a design space for the configuration that
// maximizes sustained bandwidth on one simulated target, using the
// budgeted optimizer strategies of internal/dse/search instead of
// exhaustive enumeration — the terminal-side counterpart of the
// service's POST /v1/optimize.
//
// Examples:
//
//	mpopt -target aocl -op triad -strategy hillclimb -budget 20
//	mpopt -target cpu -strategy anneal -seed 7 -vec 1,2,4,8,16 -unrolls 1,2,4
//	mpopt -target sdaccel -strategy random -budget 16 -json | jq '.best.label'
//	mpopt -target aocl -strategy exhaustive -trace
//	mpopt -target gpu -objective knee -vec 1,4,16
//	mpopt -target aocl -strategy exhaustive -csv > ranking.csv
//	mpopt -server http://127.0.0.1:8774 -target cpu -strategy anneal -budget 32
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpstream/internal/cluster"
	"mpstream/internal/core"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
	"mpstream/internal/obs"
	"mpstream/internal/report"
)

func main() {
	var (
		target    = flag.String("target", "aocl", "target device: aocl|sdaccel|cpu|gpu")
		op        = flag.String("op", "triad", "kernel to optimize: copy|scale|add|triad")
		strategy  = flag.String("strategy", "hillclimb", "search strategy: "+strings.Join(search.Strategies(), "|"))
		budget    = flag.Int("budget", 0, "max unique simulations (0 = the full grid)")
		seed      = flag.Int64("seed", 0, "RNG seed for stochastic strategies")
		size      = flag.String("size", "4MB", "per-array size, e.g. 256KB, 4MB")
		ntimes    = flag.Int("ntimes", core.DefaultNTimes, "repetitions per evaluation")
		vecs      = flag.String("vec", "1,2,4,8,16", "vector-width axis (comma-separated; empty omits the axis)")
		loops     = flag.String("loops", "", "loop-mode axis, e.g. ndrange,flat,nested (empty omits)")
		unrolls   = flag.String("unrolls", "1,2,4", "unroll-factor axis (empty omits)")
		simds     = flag.String("simds", "", "num_simd_work_items axis (empty omits)")
		cus       = flag.String("cus", "", "num_compute_units axis (empty omits)")
		dtypes    = flag.String("types", "int,double", "data-type axis (empty omits)")
		objective = flag.String("objective", "", "ranking metric: gbps (default) or knee (surface-knee bandwidth)")
		server    = flag.String("server", "", "submit against a running mpserved (or fleet coordinator) at this base URL instead of searching locally")
		asJSON    = flag.Bool("json", false, "emit the full search result as JSON")
		asCSV     = flag.Bool("csv", false, "emit the ranked points as CSV")
		trace     = flag.Bool("trace", false, "print the evaluation trace")
		timeline  = flag.Bool("timeline", false, "after a -server search, fetch the job's span timeline and print it to stderr")
	)
	flag.Parse()

	// Ctrl-C cancels the search between evaluations; the partial result
	// (best point so far, ranking, trace) still renders, tagged with a
	// canceled note. Restoring the default handler on the first signal
	// makes a second Ctrl-C kill the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	if err := run(ctx, *target, *op, *strategy, *budget, *seed, *size, *ntimes,
		*vecs, *loops, *unrolls, *simds, *cus, *dtypes, *objective, *server, *asJSON, *asCSV, *trace, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "mpopt:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, target, opName, strategy string, budget int, seed int64, size string, ntimes int,
	vecs, loops, unrolls, simds, cus, dtypes, objective, server string, asJSON, asCSV, trace, timeline bool) error {
	if asJSON && asCSV {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}
	op, err := kernel.ParseOp(opName)
	if err != nil {
		return err
	}
	base := core.DefaultConfig()
	base.NTimes = ntimes
	if base.ArrayBytes, err = report.ParseBytes(size); err != nil {
		return err
	}
	space, err := dse.ParseSpace(vecs, loops, unrolls, simds, cus, dtypes)
	if err != nil {
		return err
	}

	var res *search.Result
	if server != "" {
		// Remote mode: the server (a standalone mpserved or a fleet
		// coordinator farming evaluations out to its workers) runs the
		// search; Ctrl-C cancels the job server-side and renders the
		// partial result it hands back.
		opts := search.Options{Strategy: strategy, Budget: budget, Seed: seed, Objective: objective}
		view, err := submitRemote(ctx, server, target, base, space, op, opts)
		if err != nil {
			return err
		}
		if timeline {
			printTimeline(strings.TrimRight(server, "/"), view.ID, "mpopt")
		}
		if view.Status == "failed" {
			return fmt.Errorf("server: %s", view.Error)
		}
		if view.Optimize == nil {
			return fmt.Errorf("server returned no optimize result (job %s %s)", view.ID, view.Status)
		}
		res = view.Optimize
	} else {
		dev, err := targets.ByID(target)
		if err != nil {
			return err
		}
		res, err = search.RunContext(ctx, dev, base, space, op, search.Options{
			Strategy:  strategy,
			Budget:    budget,
			Seed:      seed,
			Objective: objective,
		})
		if err != nil {
			return err
		}
	}
	if res.Stopped != "" {
		fmt.Fprintf(os.Stderr, "mpopt: %s — partial results after %d of %d evaluations\n",
			res.Stopped, res.Evaluations, res.Budget)
	}

	switch {
	case asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	case asCSV:
		return rankingTable(op, res).WriteCSV(os.Stdout)
	}
	return writeText(os.Stdout, target, op, res, trace)
}

// submitRemote posts the search as an async /v1/optimize job and waits
// on its event stream.
func submitRemote(ctx context.Context, server, target string, base core.Config, space dse.Space, op kernel.Op, opts search.Options) (cluster.JobView, error) {
	client := cluster.NewClient()
	req := cluster.OptimizeRequest{
		Target:    target,
		Base:      &base,
		Space:     space,
		Op:        &op,
		Strategy:  opts.Strategy,
		Budget:    opts.Budget,
		Seed:      opts.Seed,
		Objective: opts.Objective,
		Async:     true,
	}
	return client.SubmitAndWait(ctx, strings.TrimRight(server, "/"), "/v1/optimize", req, nil)
}

// printTimeline fetches a finished job's span timeline and renders it
// to stderr, under its own deadline so it still works after Ctrl-C
// killed the main context.
func printTimeline(server, id, prog string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tv, err := cluster.NewClient().JobTrace(ctx, server, id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: timeline: %v\n", prog, err)
		return
	}
	obs.WriteTimeline(os.Stderr, tv)
}

// rankingTable renders the ranked exploration, one row per feasible
// point in objective order.
func rankingTable(op kernel.Op, res *search.Result) *report.Table {
	tb := report.NewTable("rank", "label", "GB/s", "knee GB/s")
	for i, p := range res.Exploration.Ranked {
		tb.AddRowf(i+1, p.Label, p.GBps(op), p.KneeGBps)
	}
	return tb
}

// writeText renders the human-readable report: the summary line, the
// best point, the Pareto front, and optionally the trace.
func writeText(w *os.File, target string, op kernel.Op, res *search.Result, trace bool) error {
	fmt.Fprintf(w, "mpopt -- %s on %s, strategy=%s seed=%d\n", op, target, res.Strategy, res.Seed)
	fmt.Fprintf(w, "space=%d points, budget=%d, simulated=%d (revisits deduplicated: %d), infeasible=%d\n",
		res.SpaceSize, res.Budget, res.Evaluations, res.Revisits, res.Exploration.Infeasible)
	if res.Stopped != "" {
		fmt.Fprintf(w, "search %s — partial results\n", res.Stopped)
	}
	if res.Best == nil {
		fmt.Fprintln(w, "no feasible configuration found")
		return nil
	}
	fmt.Fprintf(w, "best: %s at %.3f GB/s\n\n", res.Best.Label, res.BestGBps)

	tb := report.NewTable("pareto point", "GB/s", "logic", "regs", "bram", "dsp")
	for _, p := range res.Pareto {
		tb.AddRowf(p.Label, p.GBps, p.Resources.Logic, p.Resources.Registers, p.Resources.BRAM, p.Resources.DSP)
	}
	if err := tb.WriteText(w); err != nil {
		return err
	}

	if trace {
		fmt.Fprintln(w)
		tt := report.NewTable("step", "label", "GB/s", "feasible", "best")
		for _, t := range res.Trace {
			tt.AddRowf(t.Step, t.Label, t.GBps, fmt.Sprintf("%v", t.Feasible), fmt.Sprintf("%v", t.Best))
		}
		return tt.WriteText(w)
	}
	return nil
}
