// Benchmark harness: one benchmark per paper table/figure (regenerating
// the experiment and reporting its headline numbers and deviation from
// the paper as custom metrics), per-target microbenchmarks, and
// throughput benchmarks of the simulator substrate itself.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics:
//
//	sim-GB/s          simulated bandwidth of the headline configuration
//	x-paper           geometric-mean multiplicative deviation from the
//	                  paper's digitized series (1.0 = exact)
package mpstream_test

import (
	"context"
	"testing"

	"mpstream"
	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/experiments"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/cache"
	"mpstream/internal/sim/dram"
	"mpstream/internal/sim/mem"
	"mpstream/internal/surface"
)

// benchExperiment runs one figure reproduction per iteration and reports
// its deviation from the paper.
func benchExperiment(b *testing.B, run experiments.Runner) {
	b.Helper()
	var last *experiments.Experiment
	for i := 0; i < b.N; i++ {
		e, err := run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = e
	}
	if last != nil {
		b.ReportMetric(last.GeoMeanDeviation(), "x-paper")
	}
}

// BenchmarkFig1a regenerates Figure 1(a): copy bandwidth vs array size on
// all four targets.
func BenchmarkFig1a(b *testing.B) { benchExperiment(b, experiments.Fig1a) }

// BenchmarkFig1b regenerates Figure 1(b): copy bandwidth vs vector width.
func BenchmarkFig1b(b *testing.B) { benchExperiment(b, experiments.Fig1b) }

// BenchmarkFig2 regenerates Figure 2: contiguous vs strided across sizes
// up to 1 GB.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, experiments.Fig2) }

// BenchmarkFig3 regenerates Figure 3: loop management on all targets.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, experiments.Fig3) }

// BenchmarkFig4a regenerates Figure 4(a): all four kernels on all targets.
func BenchmarkFig4a(b *testing.B) { benchExperiment(b, experiments.Fig4a) }

// BenchmarkFig4b regenerates Figure 4(b): AOCL vectorization vs SIMD vs
// compute units.
func BenchmarkFig4b(b *testing.B) { benchExperiment(b, experiments.Fig4b) }

// BenchmarkTargetsTable regenerates the Section IV device table.
func BenchmarkTargetsTable(b *testing.B) { benchExperiment(b, experiments.Targets) }

// BenchmarkPCIe regenerates EXP-X1: host<->device stream bandwidth.
func BenchmarkPCIe(b *testing.B) { benchExperiment(b, experiments.PCIe) }

// BenchmarkResources regenerates EXP-X2: FPGA resource usage by
// optimization route.
func BenchmarkResources(b *testing.B) { benchExperiment(b, experiments.Resources) }

// BenchmarkUnroll regenerates EXP-X3: the unroll-factor ablation.
func BenchmarkUnroll(b *testing.B) { benchExperiment(b, experiments.Unroll) }

// BenchmarkPreshape regenerates EXP-X4: strided vs pre-shaped access.
func BenchmarkPreshape(b *testing.B) { benchExperiment(b, experiments.Preshape) }

// BenchmarkDtype regenerates EXP-X5: int vs double elements.
func BenchmarkDtype(b *testing.B) { benchExperiment(b, experiments.Dtype) }

// BenchmarkEfficiency regenerates EXP-X7: energy efficiency at tuned
// configurations (the paper's future-work item).
func BenchmarkEfficiency(b *testing.B) { benchExperiment(b, experiments.Efficiency) }

// BenchmarkHMC regenerates EXP-X8: the Hybrid Memory Cube variant (the
// paper's closing remark).
func BenchmarkHMC(b *testing.B) { benchExperiment(b, experiments.HMC) }

// BenchmarkStrideSweep regenerates EXP-X9: fixed-stride access.
func BenchmarkStrideSweep(b *testing.B) { benchExperiment(b, experiments.StrideSweep) }

// BenchmarkCopy4MB measures the baseline 4 MB copy per target and reports
// the simulated bandwidth.
func BenchmarkCopy4MB(b *testing.B) {
	for _, id := range targets.IDs() {
		id := id
		b.Run(id, func(b *testing.B) {
			dev, err := targets.ByID(id)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultConfig()
			cfg.Ops = []kernel.Op{kernel.Copy}
			var bw float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(dev, cfg)
				if err != nil {
					b.Fatal(err)
				}
				bw = res.Kernel(kernel.Copy).GBps
			}
			b.ReportMetric(bw, "sim-GB/s")
		})
	}
}

// BenchmarkTriadVec16FPGA measures the tuned FPGA headline: vec16 triad.
func BenchmarkTriadVec16FPGA(b *testing.B) {
	dev, err := targets.ByID("aocl")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Triad}
	cfg.VecWidth = 16
	var bw float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(dev, cfg)
		if err != nil {
			b.Fatal(err)
		}
		bw = res.Kernel(kernel.Triad).GBps
	}
	b.ReportMetric(bw, "sim-GB/s")
}

// BenchmarkHostStream runs the real pure-Go STREAM baseline (EXP-X6) and
// reports the host's actual copy bandwidth.
func BenchmarkHostStream(b *testing.B) {
	var bw float64
	for i := 0; i < b.N; i++ {
		res, err := mpstream.RunHost(mpstream.HostConfig{Elems: 1 << 22, NTimes: 2})
		if err != nil {
			b.Fatal(err)
		}
		bw = res.Kernel(mpstream.Copy).GBps
	}
	b.ReportMetric(bw, "host-GB/s")
}

// --- design-space exploration: sequential vs parallel ---

// dseGrid is the multi-knob grid the Explore benchmarks walk: 3 vector
// widths x 2 loop modes x 2 unroll factors = 12 configurations.
func dseGrid() (core.Config, dse.Space) {
	base := core.DefaultConfig()
	base.ArrayBytes = 1 << 20
	base.NTimes = 2
	space := dse.Space{
		VecWidths: []int{1, 4, 16},
		Loops:     []kernel.LoopMode{kernel.NDRange, kernel.FlatLoop},
		Unrolls:   []int{1, 4},
	}
	return base, space
}

// BenchmarkExplore measures the sequential explorer over the grid; its
// parallel counterpart below documents the speedup from fanning grid
// points out over GOMAXPROCS workers.
func BenchmarkExplore(b *testing.B) {
	base, space := dseGrid()
	dev, err := targets.ByID("aocl")
	if err != nil {
		b.Fatal(err)
	}
	var ranked int
	for i := 0; i < b.N; i++ {
		ex := dse.Explore(dev, base, space, kernel.Copy)
		ranked = len(ex.Ranked)
	}
	b.ReportMetric(float64(ranked), "points")
}

// BenchmarkExploreParallel is the same grid through dse.ExploreParallel.
func BenchmarkExploreParallel(b *testing.B) {
	base, space := dseGrid()
	newDev := func() (device.Device, error) { return targets.ByID("aocl") }
	var ranked int
	for i := 0; i < b.N; i++ {
		ex := dse.ExploreParallel(newDev, base, space, kernel.Copy)
		ranked = len(ex.Ranked)
	}
	b.ReportMetric(float64(ranked), "points")
}

// --- simulator substrate throughput ---

// BenchmarkDRAMServiceContiguous measures the DRAM model's transaction
// throughput on a streaming workload (simulator speed, not simulated
// bandwidth).
func BenchmarkDRAMServiceContiguous(b *testing.B) {
	m := dram.New(dram.Config{
		Name: "bench", Channels: 2, BanksPerChannel: 8, RowBytes: 8192,
		BurstBytes: 64, BusGBps: 12.8, RowMissNs: 45, TurnaroundNs: 7.5,
		ActWindowNs: 40, InterleaveBytes: 1024,
	})
	const txns = 1 << 16
	b.SetBytes(txns * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := mem.NewIter(mem.ContiguousPattern(), 0, txns, 64, mem.Read, 0)
		if err != nil {
			b.Fatal(err)
		}
		m.Service(it)
	}
}

// BenchmarkDRAMServiceStrided measures the DRAM model on a row-thrashing
// workload.
func BenchmarkDRAMServiceStrided(b *testing.B) {
	m := dram.New(dram.Config{
		Name: "bench", Channels: 2, BanksPerChannel: 8, RowBytes: 8192,
		BurstBytes: 64, BusGBps: 12.8, RowMissNs: 45, TurnaroundNs: 7.5,
		ActWindowNs: 40, InterleaveBytes: 1024,
	})
	const txns = 1 << 16
	b.SetBytes(txns * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := mem.NewIter(mem.ColMajorPattern(), 0, txns, 64, mem.Read, 0)
		if err != nil {
			b.Fatal(err)
		}
		m.Service(it)
	}
}

// BenchmarkCacheAccess measures the LLC model's per-access cost.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{
		Name: "bench-llc", CapacityBytes: 1 << 20, LineBytes: 64, Ways: 16,
	})
	var out []mem.Request
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = c.Access(mem.Request{Addr: uint64(i*64) % (8 << 20), Size: 64, Op: mem.Read}, out[:0])
	}
	_ = out
}

// BenchmarkPatternIter measures the request-generator throughput.
func BenchmarkPatternIter(b *testing.B) {
	it, err := mem.NewIter(mem.ColMajorPattern(), 0, 1<<20, 4, mem.Read, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := it.Next()
		if !ok {
			it.Reset()
			continue
		}
		_ = r
	}
}

// BenchmarkSurface measures a full bandwidth-latency surface on the GPU
// target — the simulator hot path behind a /v1/surface cache miss, and
// (with BenchmarkFig2) one of the two recorded trajectory benchmarks the
// CI regression gate watches.
func BenchmarkSurface(b *testing.B) {
	dev, err := targets.ByID("gpu")
	if err != nil {
		b.Fatal(err)
	}
	cfg := surface.Config{}.WithDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := surface.Generate(dev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelApplyTriad measures the functional-execution path.
func BenchmarkKernelApplyTriad(b *testing.B) {
	n := 1 << 20
	dst := make([]float64, n)
	src1 := make([]float64, n)
	src2 := make([]float64, n)
	b.SetBytes(int64(n) * 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kernel.Apply(kernel.Triad, 3, dst, src1, src2); err != nil {
			b.Fatal(err)
		}
	}
}
