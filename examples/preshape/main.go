// Data pre-shaping: the paper's closing insight. A weather-model-style
// workload re-reads the same field every time step; if the field is laid
// out so that accesses are strided (column-major over a row-major grid),
// it pays to re-arrange it once on the host so every subsequent pass is
// contiguous.
//
// This example measures both strategies on the GPU and CPU targets and
// finds the break-even reuse count.
package main

import (
	"fmt"
	"log"
	"os"

	"mpstream"
	"mpstream/internal/report"
)

func main() {
	const arrayBytes = 16 << 20
	tb := report.NewTable("target", "strided GB/s", "contiguous GB/s", "pre-shape cost (ms)", "break-even passes")

	for _, id := range []string{"cpu", "gpu"} {
		dev, err := mpstream.TargetByID(id)
		if err != nil {
			log.Fatal(err)
		}
		cfg := mpstream.DefaultConfig()
		cfg.Ops = []mpstream.Op{mpstream.Copy}
		cfg.ArrayBytes = arrayBytes
		cfg.NTimes = 2

		cfg.Pattern = mpstream.ColMajor()
		strided, err := mpstream.Run(dev, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Pattern = mpstream.Contiguous()
		contig, err := mpstream.Run(dev, cfg)
		if err != nil {
			log.Fatal(err)
		}

		tStr := strided.Kernel(mpstream.Copy).BestSeconds
		tCon := contig.Kernel(mpstream.Copy).BestSeconds
		// Re-arranging is one strided pass (gather into a new layout).
		// After k passes: strided strategy costs k*tStr, pre-shaped costs
		// tStr + k*tCon. Break-even: k > tStr / (tStr - tCon).
		breakEven := tStr / (tStr - tCon)

		tb.AddRowf(id,
			strided.Kernel(mpstream.Copy).GBps,
			contig.Kernel(mpstream.Copy).GBps,
			tStr*1e3,
			fmt.Sprintf("%.1f", breakEven),
		)
	}
	fmt.Println("pre-shaping strided data (16 MB field, copy kernel)")
	if err := tb.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIf the field is re-read more often than the break-even count (a time")
	fmt.Println("loop over space easily is), host-side re-arrangement wins — the")
	fmt.Println("paper's recommendation for scientific applications.")
}
