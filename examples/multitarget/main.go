// Multi-target comparison: all four STREAM kernels on all four simulated
// targets (the paper's Figure 4(a)), anchored by a real host STREAM run
// on the machine executing this example.
package main

import (
	"fmt"
	"log"
	"os"

	"mpstream"
	"mpstream/internal/report"
)

func main() {
	cfg := mpstream.DefaultConfig()
	cfg.ArrayBytes = 4 << 20

	tb := report.NewTable("target", "copy KB/s", "scale KB/s", "add KB/s", "triad KB/s")
	for _, dev := range mpstream.Targets() {
		res, err := mpstream.Run(dev, cfg)
		if err != nil {
			log.Fatalf("%s: %v", dev.Info().ID, err)
		}
		tb.AddRowf(dev.Info().ID,
			fmt.Sprintf("%.3g", res.Kernel(mpstream.Copy).KBps()),
			fmt.Sprintf("%.3g", res.Kernel(mpstream.Scale).KBps()),
			fmt.Sprintf("%.3g", res.Kernel(mpstream.Add).KBps()),
			fmt.Sprintf("%.3g", res.Kernel(mpstream.Triad).KBps()),
		)
	}
	fmt.Println("Figure 4(a) reproduction: all four kernels, 4 MB arrays (KB/s, the figure's unit)")
	if err := tb.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreality anchor — STREAM on THIS machine (pure Go, wall clock):")
	host, err := mpstream.RunHost(mpstream.HostConfig{Elems: 1 << 22, NTimes: 3})
	if err != nil {
		log.Fatal(err)
	}
	htb := report.NewTable("function", "GB/s")
	for _, kr := range host.Kernels {
		htb.AddRowf(kr.Op.String(), kr.GBps)
	}
	if err := htb.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
