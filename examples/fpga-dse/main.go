// FPGA design-space exploration: search the AOCL tuning space for the
// best TRIAD configuration, the automated route the paper argues for.
// The explorer weighs vectorization against SIMD work-items and compute
// units, skipping designs that do not fit the Stratix V.
package main

import (
	"fmt"
	"log"
	"os"

	"mpstream"
	"mpstream/internal/report"
)

func main() {
	dev, err := mpstream.TargetByID("aocl")
	if err != nil {
		log.Fatal(err)
	}

	base := mpstream.DefaultConfig()
	base.ArrayBytes = 4 << 20
	base.NTimes = 2

	space := mpstream.Space{
		VecWidths: []int{1, 2, 4, 8, 16},
		Loops:     []mpstream.LoopMode{mpstream.NDRange, mpstream.FlatLoop, mpstream.NestedLoop},
		SIMDs:     []int{1, 4, 8},
		CUs:       []int{1, 2, 4},
	}
	fmt.Printf("exploring %d AOCL configurations for TRIAD...\n\n", space.Size())
	ex := mpstream.Explore(dev, base, space, mpstream.Triad)

	tb := report.NewTable("rank", "configuration", "triad GB/s", "fmax MHz", "logic (ALM)")
	top := ex.Ranked
	if len(top) > 8 {
		top = top[:8]
	}
	for i, p := range top {
		fmax := 0.0
		logic := 0
		if p.Result != nil && p.Result.HasResources {
			fmax = p.Result.FmaxMHz
			logic = p.Result.Resources.Logic
		}
		tb.AddRowf(i+1, p.Label, p.GBps(mpstream.Triad), fmax, logic)
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d configurations were infeasible (invalid or did not fit the part)\n", ex.Infeasible)

	if best, ok := ex.Best(); ok {
		fmt.Printf("\nwinner: %s — native vectorization beats the vendor-specific\n", best.Label)
		fmt.Println("replication knobs, the paper's Figure 4(b) conclusion.")
	}
}
