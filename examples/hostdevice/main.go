// Host-device streams: the paper's "source/destination of streams"
// parameter. When arrays live in host memory, every iteration pays PCIe
// transfers, and the effective bandwidth collapses to the link — the
// reason accelerator workloads keep data device-resident.
package main

import (
	"fmt"
	"log"
	"os"

	"mpstream"
	"mpstream/internal/report"
)

func main() {
	sizes := []int64{64 << 10, 1 << 20, 16 << 20, 64 << 20}
	tb := report.NewTable("target", "64KB GB/s", "1MB GB/s", "16MB GB/s", "64MB GB/s", "device-only 64MB GB/s")

	for _, dev := range mpstream.Targets() {
		cfg := mpstream.DefaultConfig()
		cfg.Ops = []mpstream.Op{mpstream.Copy}
		cfg.NTimes = 2
		cfg.HostIO = true

		row := []any{dev.Info().ID}
		for _, s := range sizes {
			cfg.ArrayBytes = s
			res, err := mpstream.Run(dev, cfg)
			if err != nil {
				log.Fatalf("%s: %v", dev.Info().ID, err)
			}
			row = append(row, res.Kernel(mpstream.Copy).GBps)
		}
		cfg.HostIO = false
		cfg.ArrayBytes = sizes[len(sizes)-1]
		res, err := mpstream.Run(dev, cfg)
		if err != nil {
			log.Fatal(err)
		}
		row = append(row, res.Kernel(mpstream.Copy).GBps)
		tb.AddRowf(row...)
	}
	fmt.Println("host<->device streams: copy bandwidth with PCIe transfers in the timed path")
	if err := tb.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe cpu row is loopback (host == device); accelerators collapse to their link.")
}
