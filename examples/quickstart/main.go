// Quickstart: run the MP-STREAM baseline configuration on all four
// simulated targets and print the comparative picture the paper opens
// with — GPUs far ahead, FPGAs starved without tuning.
package main

import (
	"fmt"
	"log"
	"os"

	"mpstream"
	"mpstream/internal/report"
)

func main() {
	cfg := mpstream.DefaultConfig() // 4 MB int arrays, contiguous, optimal loop mode
	tb := report.NewTable("target", "copy GB/s", "scale GB/s", "add GB/s", "triad GB/s", "peak GB/s", "sustained/peak")

	for _, dev := range mpstream.Targets() {
		res, err := mpstream.Run(dev, cfg)
		if err != nil {
			log.Fatalf("%s: %v", dev.Info().ID, err)
		}
		copyBW := res.Kernel(mpstream.Copy).GBps
		tb.AddRowf(
			dev.Info().ID,
			copyBW,
			res.Kernel(mpstream.Scale).GBps,
			res.Kernel(mpstream.Add).GBps,
			res.Kernel(mpstream.Triad).GBps,
			dev.Info().PeakMemGBps,
			fmt.Sprintf("%.0f%%", 100*copyBW/dev.Info().PeakMemGBps),
		)
	}
	fmt.Println("MP-STREAM quickstart: 4 MB arrays, int words, contiguous, optimal loop management")
	if err := tb.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNote the FPGA targets' sustained/peak ratio without vectorization —")
	fmt.Println("the paper's motivation for exploring the memory-access design space.")
}
