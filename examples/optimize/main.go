// Budgeted design-space optimization: find a near-best TRIAD
// configuration on the AOCL FPGA with simulated annealing, spending a
// fraction of the simulations exhaustive exploration would, and print
// the bandwidth-versus-resources Pareto front the search uncovered
// along the way.
package main

import (
	"fmt"
	"log"

	"mpstream"
)

func main() {
	dev, err := mpstream.TargetByID("aocl")
	if err != nil {
		log.Fatal(err)
	}

	base := mpstream.DefaultConfig()
	base.ArrayBytes = 4 << 20
	base.NTimes = 2

	// 270 grid points; the budget pays for 40 simulations.
	space := mpstream.Space{
		VecWidths: []int{1, 2, 4, 8, 16},
		Loops:     []mpstream.LoopMode{mpstream.NDRange, mpstream.FlatLoop, mpstream.NestedLoop},
		Unrolls:   []int{1, 2, 4},
		SIMDs:     []int{1, 4, 8},
		Types:     []mpstream.DataType{mpstream.Int32, mpstream.Float64},
	}

	res, err := mpstream.Optimize(dev, base, space, mpstream.Triad, mpstream.SearchOptions{
		Strategy: "anneal",
		Budget:   40,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d of %d points (%d revisits were free)\n",
		res.Evaluations, res.SpaceSize, res.Revisits)
	if res.Best != nil {
		fmt.Printf("best: %s at %.2f GB/s\n", res.Best.Label, res.BestGBps)
	}
	fmt.Println("pareto front (bandwidth vs. FPGA resources):")
	for _, p := range res.Pareto {
		fmt.Printf("  %-24s %7.2f GB/s  logic=%d bram=%d dsp=%d\n",
			p.Label, p.GBps, p.Resources.Logic, p.Resources.BRAM, p.Resources.DSP)
	}
}
