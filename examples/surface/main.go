// Command surface measures a bandwidth–latency surface on one simulated
// target and prints the knee summary, the full ladder and one curve's
// ASCII chart — the smallest end-to-end tour of the surface subsystem.
package main

import (
	"fmt"
	"os"

	"mpstream/internal/core"
	"mpstream/internal/device/targets"
	"mpstream/internal/surface"
)

func main() {
	target := "gpu"
	if len(os.Args) > 1 {
		target = os.Args[1]
	}
	dev, err := targets.ByID(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s, err := core.RunSurface(dev, surface.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("bandwidth–latency surface of %s (%s)\n\n", s.Device.ID, s.Device.Description)
	if err := s.KneeTable().WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if err := s.Table().WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if err := s.Curves[0].Chart().Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
