package kernel

import (
	"fmt"
	"strings"
)

// The kernel enums marshal as their figure-label strings ("copy",
// "double", "ndrange", ...) so configurations and results round-trip
// through JSON — the wire format of the service layer and of the CLIs'
// -json output.

// ParseOp resolves an operation name (case-insensitive). "sum" is
// accepted as the paper's alias for add; "chase" is the latency probe
// of the surface subsystem.
func ParseOp(s string) (Op, error) {
	switch strings.ToLower(s) {
	case "copy":
		return Copy, nil
	case "scale":
		return Scale, nil
	case "add", "sum":
		return Add, nil
	case "triad":
		return Triad, nil
	case "chase":
		return Chase, nil
	default:
		return 0, fmt.Errorf("kernel: unknown op %q (want copy|scale|add|triad|chase)", s)
	}
}

// MarshalText encodes the operation as its name.
func (o Op) MarshalText() ([]byte, error) {
	if o > Chase {
		return nil, fmt.Errorf("kernel: unknown op %d", uint8(o))
	}
	return []byte(o.String()), nil
}

// UnmarshalText decodes an operation name.
func (o *Op) UnmarshalText(b []byte) error {
	v, err := ParseOp(string(b))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// ParseDataType resolves an element-type name (case-insensitive).
func ParseDataType(s string) (DataType, error) {
	switch strings.ToLower(s) {
	case "int", "int32":
		return Int32, nil
	case "double", "float64":
		return Float64, nil
	default:
		return 0, fmt.Errorf("kernel: unknown data type %q (want int|double)", s)
	}
}

// MarshalText encodes the data type as its OpenCL spelling.
func (t DataType) MarshalText() ([]byte, error) {
	if t > Float64 {
		return nil, fmt.Errorf("kernel: unknown data type %d", uint8(t))
	}
	return []byte(t.String()), nil
}

// UnmarshalText decodes a data-type name.
func (t *DataType) UnmarshalText(b []byte) error {
	v, err := ParseDataType(string(b))
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// ParseLoopMode resolves a loop-management name (case-insensitive).
func ParseLoopMode(s string) (LoopMode, error) {
	switch strings.ToLower(s) {
	case "ndrange":
		return NDRange, nil
	case "flat", "flatloop":
		return FlatLoop, nil
	case "nested", "nestedloop":
		return NestedLoop, nil
	default:
		return 0, fmt.Errorf("kernel: unknown loop mode %q (want ndrange|flat|nested)", s)
	}
}

// MarshalText encodes the loop mode as its figure label.
func (m LoopMode) MarshalText() ([]byte, error) {
	if m > NestedLoop {
		return nil, fmt.Errorf("kernel: unknown loop mode %d", uint8(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText decodes a loop-mode name.
func (m *LoopMode) UnmarshalText(b []byte) error {
	v, err := ParseLoopMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}
