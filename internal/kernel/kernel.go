// Package kernel defines the MP-STREAM kernel IR: the four STREAM
// operations plus every tuning parameter the paper exposes — data type,
// degree of vectorization, kernel loop management, loop unrolling,
// required work-group size, and the vendor-specific attributes (AOCL
// num_simd_work_items / num_compute_units; SDAccel pipelining and memory
// port controls).
//
// A Kernel value is what device back-ends compile into an execution plan,
// what the cl runtime executes functionally, and what OpenCLSource renders
// as the equivalent OpenCL C — the same role the paper's build scripts
// play when they generate custom kernel code from command-line flags.
package kernel

import (
	"fmt"
	"strings"
)

// Op is one of the four STREAM kernels.
type Op uint8

// The four STREAM operations, as defined in the paper:
//
//	COPY:  a(i) = b(i)
//	SCALE: a(i) = q*b(i)
//	ADD:   a(i) = b(i) + c(i)      (called SUM in the paper's list)
//	TRIAD: a(i) = b(i) + q*c(i)
//
// CHASE is not a STREAM kernel: it is the serial pointer-chase latency
// probe of the bandwidth–latency surface subsystem (internal/surface).
// Each iteration reads b at the index the previous read produced, so
// exactly one memory access is in flight at a time — the kernel measures
// round-trip latency, not bandwidth. Throughput back-ends reject it at
// compile time; the surface generator drives it against the memory
// model directly.
const (
	Copy Op = iota
	Scale
	Add
	Triad
	Chase
)

// Ops lists the four STREAM operations in paper order. Chase is
// deliberately excluded: it is the latency probe, not a bandwidth
// kernel, and never part of a default benchmark run.
func Ops() []Op { return []Op{Copy, Scale, Add, Triad} }

// String names the operation.
func (o Op) String() string {
	switch o {
	case Copy:
		return "copy"
	case Scale:
		return "scale"
	case Add:
		return "add"
	case Triad:
		return "triad"
	case Chase:
		return "chase"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// InputStreams returns how many arrays the operation reads.
func (o Op) InputStreams() int {
	if o == Add || o == Triad {
		return 2
	}
	return 1
}

// Streams returns the total array streams touched (reads + the one write).
func (o Op) Streams() int { return o.InputStreams() + 1 }

// BytesMoved returns the STREAM-convention byte count for one invocation
// over arrays of arrayBytes each: (streams touched) x arrayBytes, i.e. 2x
// for copy/scale and 3x for add/triad.
func (o Op) BytesMoved(arrayBytes int64) int64 {
	return int64(o.Streams()) * arrayBytes
}

// NeedsScalar reports whether the operation uses the scalar q.
func (o Op) NeedsScalar() bool { return o == Scale || o == Triad }

// DataType is the element type of the arrays.
type DataType uint8

// Supported element types (the paper supports integer and double).
const (
	Int32 DataType = iota
	Float64
)

// DataTypes lists the supported element types.
func DataTypes() []DataType { return []DataType{Int32, Float64} }

// String names the data type with its OpenCL spelling.
func (t DataType) String() string {
	switch t {
	case Int32:
		return "int"
	case Float64:
		return "double"
	default:
		return fmt.Sprintf("DataType(%d)", uint8(t))
	}
}

// Bytes returns the element size.
func (t DataType) Bytes() uint32 {
	switch t {
	case Float64:
		return 8
	default:
		return 4
	}
}

// LoopMode is the paper's "kernel loop management" parameter.
type LoopMode uint8

// Loop management variants.
const (
	// NDRange launches one work-item per element; the loop is implicit.
	NDRange LoopMode = iota
	// FlatLoop launches a single work-item containing one flat loop.
	FlatLoop
	// NestedLoop launches a single work-item looping over the array as a
	// 2D matrix in a nested fashion.
	NestedLoop
)

// LoopModes lists the three loop-management variants.
func LoopModes() []LoopMode { return []LoopMode{NDRange, FlatLoop, NestedLoop} }

// String names the loop mode as the figures do.
func (m LoopMode) String() string {
	switch m {
	case NDRange:
		return "ndrange"
	case FlatLoop:
		return "flat"
	case NestedLoop:
		return "nested"
	default:
		return fmt.Sprintf("LoopMode(%d)", uint8(m))
	}
}

// Attrs carries the optional kernel attributes: generic OpenCL ones plus
// the vendor-specific optimization knobs from the paper's Section III.
type Attrs struct {
	// Unroll is the opencl_unroll_hint factor; 0 or 1 means no unrolling.
	Unroll int `json:"unroll,omitempty"`
	// ReqdWorkGroupSize is the reqd_work_group_size(X,1,1) hint; 0 = unset.
	ReqdWorkGroupSize int `json:"reqd_work_group_size,omitempty"`

	// NumSIMDWorkItems is AOCL's num_simd_work_items attribute (NDRange
	// kernels only); 0 or 1 means none.
	NumSIMDWorkItems int `json:"num_simd_work_items,omitempty"`
	// NumComputeUnits is AOCL's num_compute_units attribute; 0 or 1 means
	// a single compute unit.
	NumComputeUnits int `json:"num_compute_units,omitempty"`

	// PipelineLoop is SDAccel's xcl_pipeline_loop attribute.
	PipelineLoop bool `json:"pipeline_loop,omitempty"`
	// PipelineWorkItems is SDAccel's xcl_pipeline_workitems attribute.
	PipelineWorkItems bool `json:"pipeline_workitems,omitempty"`
	// MaxMemoryPorts is SDAccel's max_memory_ports attribute: one memory
	// port per kernel argument instead of a shared port.
	MaxMemoryPorts bool `json:"max_memory_ports,omitempty"`
	// MemoryPortWidthBits is SDAccel's memory port data width; 0 = default.
	MemoryPortWidthBits int `json:"memory_port_width_bits,omitempty"`
}

// Kernel is one fully parameterized MP-STREAM kernel.
type Kernel struct {
	Op       Op
	Type     DataType
	VecWidth int // OpenCL vector width: 1, 2, 4, 8 or 16 words
	Loop     LoopMode
	Attrs    Attrs
}

// VecWidths lists the vector widths the benchmark sweeps.
func VecWidths() []int { return []int{1, 2, 4, 8, 16} }

// New returns a scalar contiguous kernel for op with sensible defaults
// (int words, vector width 1, NDRange).
func New(op Op) Kernel {
	return Kernel{Op: op, Type: Int32, VecWidth: 1, Loop: NDRange}
}

// ElemBytes is the access granularity: word size times vector width.
func (k Kernel) ElemBytes() uint32 {
	return k.Type.Bytes() * uint32(k.VecWidth)
}

// Name returns a compact identifier, e.g. "triad-double-v8-flat-u4".
func (k Kernel) Name() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s-%s-v%d-%s", k.Op, k.Type, k.VecWidth, k.Loop)
	if k.Attrs.Unroll > 1 {
		fmt.Fprintf(&b, "-u%d", k.Attrs.Unroll)
	}
	if k.Attrs.NumSIMDWorkItems > 1 {
		fmt.Fprintf(&b, "-simd%d", k.Attrs.NumSIMDWorkItems)
	}
	if k.Attrs.NumComputeUnits > 1 {
		fmt.Fprintf(&b, "-cu%d", k.Attrs.NumComputeUnits)
	}
	return b.String()
}

// Validate checks structural constraints that hold for every device;
// device back-ends impose further target-specific rules at compile time.
func (k Kernel) Validate() error {
	switch k.Op {
	case Copy, Scale, Add, Triad, Chase:
	default:
		return fmt.Errorf("kernel: unknown op %d", uint8(k.Op))
	}
	if k.Op == Chase {
		if k.VecWidth != 1 {
			return fmt.Errorf("kernel: chase is a scalar serial probe; vector width %d is meaningless", k.VecWidth)
		}
		if k.Type != Int32 {
			return fmt.Errorf("kernel: chase chains array indices and requires the int type")
		}
	}
	switch k.Type {
	case Int32, Float64:
	default:
		return fmt.Errorf("kernel: unknown data type %d", uint8(k.Type))
	}
	switch k.VecWidth {
	case 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("kernel: vector width %d not in {1,2,4,8,16}", k.VecWidth)
	}
	switch k.Loop {
	case NDRange, FlatLoop, NestedLoop:
	default:
		return fmt.Errorf("kernel: unknown loop mode %d", uint8(k.Loop))
	}
	a := k.Attrs
	if a.Unroll < 0 || a.Unroll > 64 {
		return fmt.Errorf("kernel: unroll %d out of [0,64]", a.Unroll)
	}
	if a.Unroll > 1 && k.Loop == NDRange {
		return fmt.Errorf("kernel: unroll applies to loop kernels, not ndrange")
	}
	if a.ReqdWorkGroupSize < 0 {
		return fmt.Errorf("kernel: reqd_work_group_size %d negative", a.ReqdWorkGroupSize)
	}
	if a.NumSIMDWorkItems < 0 || a.NumSIMDWorkItems > 16 {
		return fmt.Errorf("kernel: num_simd_work_items %d out of [0,16]", a.NumSIMDWorkItems)
	}
	if a.NumSIMDWorkItems > 1 && !isPow2(a.NumSIMDWorkItems) {
		return fmt.Errorf("kernel: num_simd_work_items %d must be a power of two", a.NumSIMDWorkItems)
	}
	if a.NumSIMDWorkItems > 1 && k.Loop != NDRange {
		return fmt.Errorf("kernel: num_simd_work_items requires an ndrange kernel")
	}
	if a.NumComputeUnits < 0 || a.NumComputeUnits > 16 {
		return fmt.Errorf("kernel: num_compute_units %d out of [0,16]", a.NumComputeUnits)
	}
	if w := a.MemoryPortWidthBits; w != 0 {
		switch w {
		case 32, 64, 128, 256, 512:
		default:
			return fmt.Errorf("kernel: memory port width %d not in {32,64,128,256,512}", w)
		}
	}
	return nil
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// expr renders the right-hand side of the operation for source emission.
func (k Kernel) expr(b, c string) string {
	switch k.Op {
	case Copy:
		return b
	case Scale:
		return "q * " + b
	case Add:
		return b + " + " + c
	default:
		return b + " + q * " + c
	}
}

// typeName returns the OpenCL type with vector suffix.
func (k Kernel) typeName() string {
	if k.VecWidth == 1 {
		return k.Type.String()
	}
	return fmt.Sprintf("%s%d", k.Type, k.VecWidth)
}

// OpenCLSource renders the OpenCL C a vendor toolchain would be given for
// this configuration. It exists for documentation, logging and tests: the
// simulator consumes the Kernel value itself.
func (k Kernel) OpenCLSource() string {
	if k.Op == Chase {
		// The latency probe is a single serial work-item regardless of
		// the loop-management knob: the data dependency IS the kernel.
		// The index normalization mirrors Apply exactly (idx stays in
		// [0, n), C's % can go negative), so this source is a faithful
		// reference for the functional model.
		return `__kernel void chase(__global int * restrict a, __global const int * restrict b, const int n)
{
    int idx = 0;
    for (int i = 0; i < n; i++) {
        idx = b[idx] % n;
        if (idx < 0)
            idx += n;
        a[i] = idx;
    }
}
`
	}
	var sb strings.Builder
	ty := k.typeName()

	var attrs []string
	if k.Attrs.ReqdWorkGroupSize > 0 {
		attrs = append(attrs, fmt.Sprintf("__attribute__((reqd_work_group_size(%d, 1, 1)))", k.Attrs.ReqdWorkGroupSize))
	}
	if k.Attrs.NumSIMDWorkItems > 1 {
		attrs = append(attrs, fmt.Sprintf("__attribute__((num_simd_work_items(%d)))", k.Attrs.NumSIMDWorkItems))
	}
	if k.Attrs.NumComputeUnits > 1 {
		attrs = append(attrs, fmt.Sprintf("__attribute__((num_compute_units(%d)))", k.Attrs.NumComputeUnits))
	}
	for _, a := range attrs {
		sb.WriteString(a)
		sb.WriteByte('\n')
	}

	params := []string{fmt.Sprintf("__global %s * restrict a", ty), fmt.Sprintf("__global const %s * restrict b", ty)}
	if k.Op.InputStreams() == 2 {
		params = append(params, fmt.Sprintf("__global const %s * restrict c", ty))
	}
	if k.Op.NeedsScalar() {
		params = append(params, fmt.Sprintf("const %s q", k.Type))
	}
	switch k.Loop {
	case FlatLoop, NestedLoop:
		params = append(params, "const int n")
		if k.Loop == NestedLoop {
			params = append(params, "const int nj")
		}
	}

	fmt.Fprintf(&sb, "__kernel void %s(%s)\n{\n", k.Op, strings.Join(params, ", "))
	unroll := ""
	if k.Attrs.Unroll > 1 {
		unroll = fmt.Sprintf("    __attribute__((opencl_unroll_hint(%d)))\n", k.Attrs.Unroll)
	}
	pipeline := ""
	if k.Attrs.PipelineLoop {
		pipeline = "    __attribute__((xcl_pipeline_loop))\n"
	}
	switch k.Loop {
	case NDRange:
		if k.Attrs.PipelineWorkItems {
			sb.WriteString("    __attribute__((xcl_pipeline_workitems))\n")
		}
		sb.WriteString("    int i = get_global_id(0);\n")
		fmt.Fprintf(&sb, "    a[i] = %s;\n", k.expr("b[i]", "c[i]"))
	case FlatLoop:
		sb.WriteString(pipeline)
		sb.WriteString(unroll)
		sb.WriteString("    for (int i = 0; i < n; i++)\n")
		fmt.Fprintf(&sb, "        a[i] = %s;\n", k.expr("b[i]", "c[i]"))
	case NestedLoop:
		sb.WriteString("    for (int i = 0; i < n / nj; i++)\n")
		sb.WriteString(pipeline)
		sb.WriteString(unroll)
		sb.WriteString("        for (int j = 0; j < nj; j++)\n")
		fmt.Fprintf(&sb, "            a[i*nj + j] = %s;\n", k.expr("b[i*nj + j]", "c[i*nj + j]"))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Apply executes the operation functionally: dst = op(b, c, q) elementwise.
// Slices must be typed alike and equally long; c may be nil for one-input
// ops. This is the execution the cl runtime performs so results are
// verifiable, independent of the timing models.
//
// Apply resolves the `any`-typed arguments once and delegates to the
// monomorphic ApplyInt32/ApplyFloat64 loops; callers already holding
// typed slices should call those directly.
func Apply(op Op, q float64, dst, b, c any) error {
	switch d := dst.(type) {
	case []int32:
		bb, ok := b.([]int32)
		if !ok {
			return fmt.Errorf("kernel: input b type %T does not match dst []int32", b)
		}
		var cc []int32
		if op.InputStreams() == 2 {
			cc, ok = c.([]int32)
			if !ok {
				return fmt.Errorf("kernel: input c type %T does not match dst []int32", c)
			}
		}
		return ApplyInt32(op, q, d, bb, cc)
	case []float64:
		bb, ok := b.([]float64)
		if !ok {
			return fmt.Errorf("kernel: input b type %T does not match dst []float64", b)
		}
		var cc []float64
		if op.InputStreams() == 2 {
			cc, ok = c.([]float64)
			if !ok {
				return fmt.Errorf("kernel: input c type %T does not match dst []float64", c)
			}
		}
		return ApplyFloat64(op, q, d, bb, cc)
	default:
		return fmt.Errorf("kernel: unsupported element type %T", dst)
	}
}

// ApplyInt32 is the int path of Apply over concrete slices: no interface
// boxing, one op dispatch, then a monomorphic elementwise loop. c is
// ignored for one-input ops.
func ApplyInt32(op Op, q float64, dst, b, c []int32) error {
	if op.InputStreams() == 2 && len(c) != len(dst) {
		return fmt.Errorf("kernel: length mismatch c=%d dst=%d", len(c), len(dst))
	}
	if len(b) != len(dst) {
		return fmt.Errorf("kernel: length mismatch b=%d dst=%d", len(b), len(dst))
	}
	qi := int32(q)
	switch op {
	case Copy:
		copy(dst, b)
	case Scale:
		for i := range dst {
			dst[i] = qi * b[i]
		}
	case Add:
		for i := range dst {
			dst[i] = b[i] + c[i]
		}
	case Triad:
		for i := range dst {
			dst[i] = b[i] + qi*c[i]
		}
	case Chase:
		n := int32(len(dst))
		var idx int32
		for i := range dst {
			idx = b[idx%n] % n
			if idx < 0 {
				idx += n
			}
			dst[i] = idx
		}
	default:
		return fmt.Errorf("kernel: unknown op %d", uint8(op))
	}
	return nil
}

// ApplyFloat64 is the double path of Apply over concrete slices (see
// ApplyInt32). Chase is int-only and rejected here.
func ApplyFloat64(op Op, q float64, dst, b, c []float64) error {
	if op.InputStreams() == 2 && len(c) != len(dst) {
		return fmt.Errorf("kernel: length mismatch c=%d dst=%d", len(c), len(dst))
	}
	if len(b) != len(dst) {
		return fmt.Errorf("kernel: length mismatch b=%d dst=%d", len(b), len(dst))
	}
	switch op {
	case Copy:
		copy(dst, b)
	case Scale:
		for i := range dst {
			dst[i] = q * b[i]
		}
	case Add:
		for i := range dst {
			dst[i] = b[i] + c[i]
		}
	case Triad:
		for i := range dst {
			dst[i] = b[i] + q*c[i]
		}
	case Chase:
		return fmt.Errorf("kernel: chase chains array indices and requires the int type")
	default:
		return fmt.Errorf("kernel: unknown op %d", uint8(op))
	}
	return nil
}

// Expected returns the value every element of the destination should hold
// after applying op to arrays initialized with constants bInit and cInit.
// For Chase a constant chain array makes every hop land on index bInit,
// so the destination fills with bInit — the same fixed point STREAM-style
// constant initialization gives the other kernels.
func Expected(op Op, q, bInit, cInit float64) float64 {
	switch op {
	case Copy, Chase:
		return bInit
	case Scale:
		return q * bInit
	case Add:
		return bInit + cInit
	default:
		return bInit + q*cInit
	}
}
