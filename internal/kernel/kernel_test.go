package kernel

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	want := map[Op]string{Copy: "copy", Scale: "scale", Add: "add", Triad: "triad"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(op), op.String(), s)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Error("unknown op formatting wrong")
	}
}

func TestOpStreams(t *testing.T) {
	cases := []struct {
		op      Op
		in, tot int
	}{
		{Copy, 1, 2}, {Scale, 1, 2}, {Add, 2, 3}, {Triad, 2, 3},
	}
	for _, c := range cases {
		if c.op.InputStreams() != c.in || c.op.Streams() != c.tot {
			t.Errorf("%v: streams = %d/%d, want %d/%d",
				c.op, c.op.InputStreams(), c.op.Streams(), c.in, c.tot)
		}
	}
}

func TestBytesMoved(t *testing.T) {
	// STREAM convention: copy/scale 2x, add/triad 3x.
	if Copy.BytesMoved(100) != 200 || Scale.BytesMoved(100) != 200 {
		t.Error("copy/scale must move 2x array bytes")
	}
	if Add.BytesMoved(100) != 300 || Triad.BytesMoved(100) != 300 {
		t.Error("add/triad must move 3x array bytes")
	}
}

func TestNeedsScalar(t *testing.T) {
	if Copy.NeedsScalar() || Add.NeedsScalar() {
		t.Error("copy/add take no scalar")
	}
	if !Scale.NeedsScalar() || !Triad.NeedsScalar() {
		t.Error("scale/triad need the scalar")
	}
}

func TestDataType(t *testing.T) {
	if Int32.Bytes() != 4 || Float64.Bytes() != 8 {
		t.Error("data type sizes wrong")
	}
	if Int32.String() != "int" || Float64.String() != "double" {
		t.Error("data type names must use OpenCL spelling")
	}
}

func TestLoopModeString(t *testing.T) {
	if NDRange.String() != "ndrange" || FlatLoop.String() != "flat" || NestedLoop.String() != "nested" {
		t.Error("loop mode names wrong")
	}
}

func TestEnumerators(t *testing.T) {
	if len(Ops()) != 4 || len(DataTypes()) != 2 || len(LoopModes()) != 3 || len(VecWidths()) != 5 {
		t.Error("enumerator lengths wrong")
	}
}

func TestElemBytes(t *testing.T) {
	k := New(Copy)
	if k.ElemBytes() != 4 {
		t.Errorf("default elem bytes = %d, want 4", k.ElemBytes())
	}
	k.Type, k.VecWidth = Float64, 16
	if k.ElemBytes() != 128 {
		t.Errorf("double16 elem bytes = %d, want 128", k.ElemBytes())
	}
}

func TestName(t *testing.T) {
	k := Kernel{Op: Triad, Type: Float64, VecWidth: 8, Loop: FlatLoop,
		Attrs: Attrs{Unroll: 4, NumSIMDWorkItems: 1, NumComputeUnits: 2}}
	want := "triad-double-v8-flat-u4-cu2"
	if got := k.Name(); got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
}

func TestValidateDefaults(t *testing.T) {
	for _, op := range Ops() {
		if err := New(op).Validate(); err != nil {
			t.Errorf("default kernel for %v invalid: %v", op, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := New(Copy)
	cases := []struct {
		name   string
		mutate func(*Kernel)
	}{
		{"bad op", func(k *Kernel) { k.Op = Op(9) }},
		{"bad type", func(k *Kernel) { k.Type = DataType(9) }},
		{"bad vec", func(k *Kernel) { k.VecWidth = 3 }},
		{"vec zero", func(k *Kernel) { k.VecWidth = 0 }},
		{"bad loop", func(k *Kernel) { k.Loop = LoopMode(9) }},
		{"unroll range", func(k *Kernel) { k.Loop = FlatLoop; k.Attrs.Unroll = 128 }},
		{"unroll ndrange", func(k *Kernel) { k.Attrs.Unroll = 4 }},
		{"neg wg", func(k *Kernel) { k.Attrs.ReqdWorkGroupSize = -1 }},
		{"simd range", func(k *Kernel) { k.Attrs.NumSIMDWorkItems = 32 }},
		{"simd pow2", func(k *Kernel) { k.Attrs.NumSIMDWorkItems = 6 }},
		{"simd loop", func(k *Kernel) { k.Loop = FlatLoop; k.Attrs.NumSIMDWorkItems = 4 }},
		{"cu range", func(k *Kernel) { k.Attrs.NumComputeUnits = 99 }},
		{"port width", func(k *Kernel) { k.Attrs.MemoryPortWidthBits = 100 }},
	}
	for _, c := range cases {
		k := base
		c.mutate(&k)
		if err := k.Validate(); err == nil {
			t.Errorf("%s: invalid kernel accepted: %+v", c.name, k)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := []Kernel{
		{Op: Copy, Type: Int32, VecWidth: 16, Loop: FlatLoop, Attrs: Attrs{Unroll: 16}},
		{Op: Triad, Type: Float64, VecWidth: 4, Loop: NDRange,
			Attrs: Attrs{NumSIMDWorkItems: 8, NumComputeUnits: 4, ReqdWorkGroupSize: 256}},
		{Op: Add, Type: Int32, VecWidth: 2, Loop: NestedLoop,
			Attrs: Attrs{PipelineLoop: true, MaxMemoryPorts: true, MemoryPortWidthBits: 512}},
	}
	for _, k := range cases {
		if err := k.Validate(); err != nil {
			t.Errorf("valid kernel %s rejected: %v", k.Name(), err)
		}
	}
}

func TestOpenCLSourceNDRange(t *testing.T) {
	k := New(Copy)
	src := k.OpenCLSource()
	for _, want := range []string{
		"__kernel void copy",
		"get_global_id(0)",
		"a[i] = b[i];",
		"__global int * restrict a",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("ndrange source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "for (") {
		t.Error("ndrange source must not contain a loop")
	}
}

func TestOpenCLSourceFlat(t *testing.T) {
	k := Kernel{Op: Triad, Type: Float64, VecWidth: 4, Loop: FlatLoop, Attrs: Attrs{Unroll: 8}}
	src := k.OpenCLSource()
	for _, want := range []string{
		"__kernel void triad",
		"double4",
		"opencl_unroll_hint(8)",
		"for (int i = 0; i < n; i++)",
		"a[i] = b[i] + q * c[i];",
		"const double q",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("flat source missing %q:\n%s", want, src)
		}
	}
}

func TestOpenCLSourceNested(t *testing.T) {
	k := Kernel{Op: Copy, Type: Int32, VecWidth: 1, Loop: NestedLoop, Attrs: Attrs{PipelineLoop: true}}
	src := k.OpenCLSource()
	for _, want := range []string{
		"for (int i = 0; i < n / nj; i++)",
		"for (int j = 0; j < nj; j++)",
		"a[i*nj + j] = b[i*nj + j];",
		"xcl_pipeline_loop",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("nested source missing %q:\n%s", want, src)
		}
	}
}

func TestOpenCLSourceAttributes(t *testing.T) {
	k := Kernel{Op: Scale, Type: Int32, VecWidth: 1, Loop: NDRange,
		Attrs: Attrs{ReqdWorkGroupSize: 64, NumSIMDWorkItems: 4, NumComputeUnits: 2}}
	src := k.OpenCLSource()
	for _, want := range []string{
		"reqd_work_group_size(64, 1, 1)",
		"num_simd_work_items(4)",
		"num_compute_units(2)",
		"a[i] = q * b[i];",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("attributed source missing %q:\n%s", want, src)
		}
	}
}

func TestApplyInt32(t *testing.T) {
	b := []int32{1, 2, 3, 4}
	c := []int32{10, 20, 30, 40}
	dst := make([]int32, 4)

	if err := Apply(Copy, 0, dst, b, nil); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 3 {
		t.Errorf("copy wrong: %v", dst)
	}
	if err := Apply(Scale, 3, dst, b, nil); err != nil {
		t.Fatal(err)
	}
	if dst[3] != 12 {
		t.Errorf("scale wrong: %v", dst)
	}
	if err := Apply(Add, 0, dst, b, c); err != nil {
		t.Fatal(err)
	}
	if dst[1] != 22 {
		t.Errorf("add wrong: %v", dst)
	}
	if err := Apply(Triad, 3, dst, b, c); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 31 {
		t.Errorf("triad wrong: %v", dst)
	}
}

func TestApplyFloat64(t *testing.T) {
	b := []float64{1, 2}
	c := []float64{0.5, 0.25}
	dst := make([]float64, 2)
	if err := Apply(Triad, 3, dst, b, c); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 2.5 || dst[1] != 2.75 {
		t.Errorf("triad wrong: %v", dst)
	}
}

func TestApplyErrors(t *testing.T) {
	if err := Apply(Copy, 0, make([]int32, 2), []float64{1, 2}, nil); err == nil {
		t.Error("type mismatch must error")
	}
	if err := Apply(Copy, 0, make([]int32, 2), []int32{1}, nil); err == nil {
		t.Error("length mismatch must error")
	}
	if err := Apply(Add, 0, make([]int32, 2), []int32{1, 2}, nil); err == nil {
		t.Error("missing c for add must error")
	}
	if err := Apply(Add, 0, make([]int32, 2), []int32{1, 2}, []int32{1}); err == nil {
		t.Error("short c must error")
	}
	if err := Apply(Copy, 0, "nope", nil, nil); err == nil {
		t.Error("unsupported type must error")
	}
	if err := Apply(Op(9), 0, make([]int32, 1), make([]int32, 1), nil); err == nil {
		t.Error("unknown op must error")
	}
	if err := Apply(Add, 0, make([]float64, 2), []float64{1, 2}, []int32{1, 2}); err == nil {
		t.Error("mismatched c type must error")
	}
}

func TestExpected(t *testing.T) {
	const q, b, c = 3.0, 2.0, 5.0
	if Expected(Copy, q, b, c) != b {
		t.Error("copy expectation wrong")
	}
	if Expected(Scale, q, b, c) != q*b {
		t.Error("scale expectation wrong")
	}
	if Expected(Add, q, b, c) != b+c {
		t.Error("add expectation wrong")
	}
	if Expected(Triad, q, b, c) != b+q*c {
		t.Error("triad expectation wrong")
	}
}

// Property: Apply matches Expected when arrays hold constants.
func TestQuickApplyMatchesExpected(t *testing.T) {
	f := func(opSel uint8, rawQ, rawB, rawC int8) bool {
		op := Ops()[int(opSel)%4]
		q, bv, cv := float64(rawQ), float64(rawB), float64(rawC)
		n := 17
		b := make([]float64, n)
		c := make([]float64, n)
		dst := make([]float64, n)
		for i := range b {
			b[i], c[i] = bv, cv
		}
		if err := Apply(op, q, dst, b, c); err != nil {
			return false
		}
		want := Expected(op, q, bv, cv)
		for _, v := range dst {
			if v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every valid parameter combination renders compilable-looking
// source containing its op name and validates.
func TestQuickKernelMatrix(t *testing.T) {
	for _, op := range Ops() {
		for _, dt := range DataTypes() {
			for _, vw := range VecWidths() {
				for _, lm := range LoopModes() {
					k := Kernel{Op: op, Type: dt, VecWidth: vw, Loop: lm}
					if err := k.Validate(); err != nil {
						t.Fatalf("matrix kernel %s invalid: %v", k.Name(), err)
					}
					src := k.OpenCLSource()
					if !strings.Contains(src, "__kernel void "+op.String()) {
						t.Fatalf("source for %s lacks kernel decl", k.Name())
					}
				}
			}
		}
	}
}

func TestChaseOp(t *testing.T) {
	if Chase.String() != "chase" {
		t.Errorf("String = %q", Chase.String())
	}
	if got, err := ParseOp("chase"); err != nil || got != Chase {
		t.Errorf("ParseOp(chase) = %v, %v", got, err)
	}
	if Chase.InputStreams() != 1 || Chase.Streams() != 2 {
		t.Errorf("chase streams = %d/%d, want 1/2", Chase.InputStreams(), Chase.Streams())
	}
	if Chase.NeedsScalar() {
		t.Error("chase must not need the scalar")
	}
	for _, op := range Ops() {
		if op == Chase {
			t.Error("Ops() must list only the four STREAM kernels")
		}
	}
	b, err := Chase.MarshalText()
	if err != nil || string(b) != "chase" {
		t.Errorf("MarshalText = %q, %v", b, err)
	}
}

func TestChaseValidate(t *testing.T) {
	k := Kernel{Op: Chase, Type: Int32, VecWidth: 1, Loop: FlatLoop}
	if err := k.Validate(); err != nil {
		t.Errorf("scalar int chase must validate: %v", err)
	}
	k.VecWidth = 4
	if err := k.Validate(); err == nil {
		t.Error("vectorized chase must be rejected")
	}
	k.VecWidth = 1
	k.Type = Float64
	if err := k.Validate(); err == nil {
		t.Error("double chase must be rejected")
	}
}

func TestChaseApply(t *testing.T) {
	// A constant chain array is a fixed point: every hop lands on index
	// bInit, so the destination fills with bInit — matching Expected.
	n := 16
	dst := make([]int32, n)
	chain := make([]int32, n)
	for i := range chain {
		chain[i] = 2
	}
	if err := Apply(Chase, 0, dst, chain, nil); err != nil {
		t.Fatal(err)
	}
	want := Expected(Chase, 3, 2, 5)
	for i, v := range dst {
		if float64(v) != want {
			t.Fatalf("dst[%d] = %d, want %g", i, v, want)
		}
	}
	// A genuine permutation is followed index by index.
	perm := []int32{3, 0, 1, 2}
	dst4 := make([]int32, 4)
	if err := Apply(Chase, 0, dst4, perm, nil); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int32{3, 2, 1, 0} {
		if dst4[i] != want {
			t.Errorf("perm hop %d = %d, want %d", i, dst4[i], want)
		}
	}
	// Doubles cannot hold chain indices.
	if err := Apply(Chase, 0, make([]float64, 4), make([]float64, 4), nil); err == nil {
		t.Error("chase over doubles must error")
	}
}

func TestChaseOpenCLSource(t *testing.T) {
	k := Kernel{Op: Chase, Type: Int32, VecWidth: 1}
	src := k.OpenCLSource()
	for _, want := range []string{"__kernel void chase", "idx = b[idx] % n", "idx += n", "for (int i = 0"} {
		if !strings.Contains(src, want) {
			t.Errorf("chase source missing %q:\n%s", want, src)
		}
	}
}
