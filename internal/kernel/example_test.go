package kernel_test

import (
	"fmt"

	"mpstream/internal/kernel"
)

// The kernel IR renders the OpenCL C a vendor toolchain would be given,
// exactly as the paper's build scripts generate custom kernel code.
func ExampleKernel_OpenCLSource() {
	k := kernel.Kernel{
		Op:       kernel.Triad,
		Type:     kernel.Float64,
		VecWidth: 4,
		Loop:     kernel.FlatLoop,
		Attrs:    kernel.Attrs{Unroll: 8},
	}
	fmt.Print(k.OpenCLSource())
	// Output:
	// __kernel void triad(__global double4 * restrict a, __global const double4 * restrict b, __global const double4 * restrict c, const double q, const int n)
	// {
	//     __attribute__((opencl_unroll_hint(8)))
	//     for (int i = 0; i < n; i++)
	//         a[i] = b[i] + q * c[i];
	// }
}

// STREAM byte accounting: copy and scale move two arrays, add and triad
// three.
func ExampleOp_BytesMoved() {
	for _, op := range kernel.Ops() {
		fmt.Printf("%s: %d\n", op, op.BytesMoved(1000))
	}
	// Output:
	// copy: 2000
	// scale: 2000
	// add: 3000
	// triad: 3000
}
