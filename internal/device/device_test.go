package device

import (
	"testing"

	"mpstream/internal/kernel"
	"mpstream/internal/sim/link"
	"mpstream/internal/sim/mem"
)

func TestKindString(t *testing.T) {
	if CPU.String() != "cpu" || GPU.String() != "gpu" || FPGA.String() != "fpga" {
		t.Error("Kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestExecValidate(t *testing.T) {
	k := kernel.New(kernel.Copy) // elem 4 bytes
	if err := (Exec{ArrayBytes: 4096, Pattern: mem.ContiguousPattern()}).Validate(k); err != nil {
		t.Errorf("valid exec rejected: %v", err)
	}
	if err := (Exec{ArrayBytes: 0, Pattern: mem.ContiguousPattern()}).Validate(k); err == nil {
		t.Error("zero bytes accepted")
	}
	if err := (Exec{ArrayBytes: 4095, Pattern: mem.ContiguousPattern()}).Validate(k); err == nil {
		t.Error("non-multiple of element size accepted")
	}
	if err := (Exec{ArrayBytes: 4096, Pattern: mem.StridedPattern(0)}).Validate(k); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestExecElems(t *testing.T) {
	k := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 4, Loop: kernel.FlatLoop}
	e := Exec{ArrayBytes: 4096}
	if got := e.Elems(k); got != 256 {
		t.Errorf("Elems = %d, want 256 (4096 / 16B)", got)
	}
}

func TestStreamBases(t *testing.T) {
	bases := StreamBases(3)
	if len(bases) != 3 {
		t.Fatalf("got %d bases", len(bases))
	}
	for i := 1; i < len(bases); i++ {
		if bases[i]-bases[i-1] != 1<<31 {
			t.Errorf("bases not 2 GiB apart: %v", bases)
		}
	}
}

func TestKernelSourceCopy(t *testing.T) {
	src, err := KernelSource(kernel.Copy, 16, 4, mem.ContiguousPattern(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes int
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		switch r.Op {
		case mem.Read:
			reads++
			if r.Stream != 1 {
				t.Errorf("read from stream %d, want 1", r.Stream)
			}
		case mem.Write:
			writes++
			if r.Stream != 0 {
				t.Errorf("write to stream %d, want 0", r.Stream)
			}
		}
	}
	if reads != 16 || writes != 16 {
		t.Errorf("reads/writes = %d/%d, want 16/16", reads, writes)
	}
}

func TestKernelSourceTriadStreams(t *testing.T) {
	src, err := KernelSource(kernel.Triad, 8, 4, mem.ContiguousPattern(), 4)
	if err != nil {
		t.Fatal(err)
	}
	perStream := map[uint8]int{}
	n := 0
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		perStream[r.Stream]++
		n++
	}
	if n != 24 {
		t.Fatalf("total requests = %d, want 24 (3 streams x 8)", n)
	}
	for s := uint8(0); s < 3; s++ {
		if perStream[s] != 8 {
			t.Errorf("stream %d count = %d, want 8", s, perStream[s])
		}
	}
}

func TestKernelSourceCoalesces(t *testing.T) {
	src, err := KernelSource(kernel.Copy, 256, 4, mem.ContiguousPattern(), 64)
	if err != nil {
		t.Fatal(err)
	}
	n, bytes := mem.TotalBytes(src)
	if n != 32 { // 2 streams x 1 KB / 64 B
		t.Errorf("coalesced txns = %d, want 32", n)
	}
	if bytes != 2048 {
		t.Errorf("bytes = %d, want 2048", bytes)
	}
}

func TestKernelSourceInvalidPattern(t *testing.T) {
	if _, err := KernelSource(kernel.Copy, 16, 4, mem.StridedPattern(-1), 4); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestTxnCount(t *testing.T) {
	cases := []struct {
		name   string
		op     kernel.Op
		elems  int
		elemB  uint32
		p      mem.Pattern
		window uint32
		want   uint64
	}{
		{"contig merge", kernel.Copy, 256, 4, mem.ContiguousPattern(), 64, 32},
		{"no window", kernel.Copy, 256, 4, mem.ContiguousPattern(), 4, 512},
		{"strided", kernel.Copy, 256, 4, mem.StridedPattern(16), 512, 512},
		{"colmajor", kernel.Triad, 1 << 12, 4, mem.ColMajorPattern(), 512, 3 << 12},
		{"stride1 merges", kernel.Copy, 256, 4, mem.StridedPattern(1), 64, 32},
		{"partial tail", kernel.Copy, 17, 4, mem.ContiguousPattern(), 64, 4},
	}
	for _, c := range cases {
		got := TxnCount(c.op, c.elems, c.elemB, c.p, c.window)
		if got != c.want {
			t.Errorf("%s: TxnCount = %d, want %d", c.name, got, c.want)
		}
	}
}

// TxnCount must agree exactly with what KernelSource actually yields.
func TestTxnCountMatchesSource(t *testing.T) {
	patterns := []mem.Pattern{
		mem.ContiguousPattern(),
		mem.StridedPattern(2),
		mem.StridedPattern(7),
		mem.ColMajorPattern(),
	}
	for _, op := range kernel.Ops() {
		for _, p := range patterns {
			for _, window := range []uint32{4, 64, 512} {
				src, err := KernelSource(op, 1024, 4, p, window)
				if err != nil {
					t.Fatal(err)
				}
				n, _ := mem.TotalBytes(src)
				want := TxnCount(op, 1024, 4, p, window)
				if uint64(n) != want {
					t.Errorf("op %v pattern %v window %d: source yields %d, TxnCount says %d",
						op, p.Kind, window, n, want)
				}
			}
		}
	}
}

type fakeDevice struct{ id string }

func (f fakeDevice) Info() Info                              { return Info{ID: f.id} }
func (f fakeDevice) Compile(kernel.Kernel) (Compiled, error) { return nil, nil }
func (f fakeDevice) LaunchOverheadSeconds() float64          { return 0 }
func (f fakeDevice) Link() *link.Link                        { return nil }
func (f fakeDevice) Reset()                                  {}

func TestByID(t *testing.T) {
	devs := []Device{fakeDevice{id: "cpu"}, fakeDevice{id: "gpu"}}
	d, err := ByID(devs, "gpu")
	if err != nil {
		t.Fatal(err)
	}
	if d.Info().ID != "gpu" {
		t.Errorf("ByID returned %q", d.Info().ID)
	}
	if _, err := ByID(devs, "tpu"); err == nil {
		t.Error("unknown id must error")
	}
	if _, err := ByID(nil, "cpu"); err == nil {
		t.Error("empty registry must error")
	}
}

func TestWattsAt(t *testing.T) {
	info := Info{PeakMemGBps: 100, IdleWatts: 20, PeakWatts: 120}
	if got := info.WattsAt(0); got != 20 {
		t.Errorf("idle watts = %v", got)
	}
	if got := info.WattsAt(50); got != 70 {
		t.Errorf("half-load watts = %v, want 70", got)
	}
	if got := info.WattsAt(100); got != 120 {
		t.Errorf("full-load watts = %v, want 120", got)
	}
	if got := info.WattsAt(500); got != 120 {
		t.Errorf("overload must clamp: %v", got)
	}
	if got := info.WattsAt(-5); got != 20 {
		t.Errorf("negative bandwidth must clamp to idle: %v", got)
	}
	zero := Info{}
	if zero.WattsAt(10) != 0 {
		t.Error("zero-peak info must return idle watts (0)")
	}
}

func TestMBPerJoule(t *testing.T) {
	info := Info{PeakMemGBps: 100, IdleWatts: 20, PeakWatts: 120}
	// 50 GB/s at 70 W = 714 MB/J.
	got := info.MBPerJoule(50)
	if got < 714 || got > 715 {
		t.Errorf("MBPerJoule = %v, want ~714.3", got)
	}
	if (Info{}).MBPerJoule(10) != 0 {
		t.Error("zero watts must yield 0 efficiency")
	}
}
