// Package device defines the abstraction the MP-STREAM benchmark runs
// against: a heterogeneous compute device that compiles a kernel
// configuration into an execution plan and predicts how long one
// invocation takes on its simulated memory system.
//
// Four back-ends implement Device, mirroring the paper's experimental
// setup: cpusim (Intel Xeon E5-2609 v2), gpusim (NVIDIA GTX Titan Black),
// aocl (Altera Stratix V under AOCL 15.1) and sdaccel (Xilinx Virtex-7
// under SDAccel 2015.1).
package device

import (
	"fmt"
	"strings"

	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/dram"
	"mpstream/internal/sim/link"
	"mpstream/internal/sim/mem"
)

// Kind classifies a device.
type Kind uint8

// Device kinds.
const (
	CPU Kind = iota
	GPU
	FPGA
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	case FPGA:
		return "fpga"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MarshalText encodes the kind as its name, for the service wire format.
func (k Kind) MarshalText() ([]byte, error) {
	if k > FPGA {
		return nil, fmt.Errorf("device: unknown kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// ParseKind resolves a kind name (case-insensitive).
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "cpu":
		return CPU, nil
	case "gpu":
		return GPU, nil
	case "fpga":
		return FPGA, nil
	default:
		return 0, fmt.Errorf("device: unknown kind %q (want cpu|gpu|fpga)", s)
	}
}

// UnmarshalText decodes a kind name.
func (k *Kind) UnmarshalText(b []byte) error {
	v, err := ParseKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Info describes a device the way the paper's Section IV table does.
type Info struct {
	// ID is the short name used throughout figures: "cpu", "gpu", "aocl",
	// "sdaccel".
	ID string `json:"id"`
	// Description is the full hardware/toolchain identification.
	Description string `json:"description"`
	Kind        Kind   `json:"kind"`
	// PeakMemGBps is the peak global-memory bandwidth (the dotted lines
	// in Figure 1).
	PeakMemGBps float64 `json:"peak_mem_gbps"`
	// MemBytes is the usable global memory.
	MemBytes int64 `json:"mem_bytes"`
	// OptimalLoop is the loop-management mode this target prefers
	// (Figure 3): NDRange for CPU/GPU, flat for AOCL, nested for SDAccel.
	OptimalLoop kernel.LoopMode `json:"optimal_loop"`
	// IdleWatts and PeakWatts bound the board power draw: idle and at
	// full memory-bandwidth load. They drive the energy-efficiency
	// extension (the paper's future-work item).
	IdleWatts float64 `json:"idle_watts"`
	PeakWatts float64 `json:"peak_watts"`
}

// WattsAt estimates draw at a sustained bandwidth: idle power plus the
// dynamic share scaled by memory utilization.
func (i Info) WattsAt(gbps float64) float64 {
	if i.PeakMemGBps <= 0 {
		return i.IdleWatts
	}
	u := gbps / i.PeakMemGBps
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return i.IdleWatts + (i.PeakWatts-i.IdleWatts)*u
}

// MBPerJoule is the energy-efficiency figure of merit: sustained MB moved
// per joule at the given bandwidth.
func (i Info) MBPerJoule(gbps float64) float64 {
	w := i.WattsAt(gbps)
	if w <= 0 {
		return 0
	}
	return gbps * 1000 / w
}

// Exec carries the per-invocation run parameters: the benchmark's
// remaining tuning knobs that are not part of the kernel itself.
type Exec struct {
	// ArrayBytes is the size of each array operand.
	ArrayBytes int64
	// Pattern is the data access pattern (contiguous / strided /
	// column-major 2D).
	Pattern mem.Pattern
}

// Validate checks exec parameters against a kernel.
func (e Exec) Validate(k kernel.Kernel) error {
	if e.ArrayBytes <= 0 {
		return fmt.Errorf("device: array bytes %d must be positive", e.ArrayBytes)
	}
	eb := int64(k.ElemBytes())
	if e.ArrayBytes%eb != 0 {
		return fmt.Errorf("device: array bytes %d not a multiple of element size %d", e.ArrayBytes, eb)
	}
	return e.Pattern.Validate(int(e.ArrayBytes / eb))
}

// Elems returns the number of kernel elements (vector-width granules).
func (e Exec) Elems(k kernel.Kernel) int {
	return int(e.ArrayBytes / int64(k.ElemBytes()))
}

// Compiled is a kernel lowered for one device.
type Compiled interface {
	// Kernel returns the configuration this plan was compiled from.
	Kernel() kernel.Kernel
	// Seconds predicts the simulated duration of one kernel invocation
	// over device-resident arrays.
	Seconds(e Exec) (float64, error)
	// Resources reports the FPGA resource usage; ok is false for
	// non-FPGA devices.
	Resources() (res fabric.Resources, ok bool)
	// FmaxMHz reports the synthesized clock; ok is false for non-FPGA
	// devices.
	FmaxMHz() (mhz float64, ok bool)
}

// Device is one benchmark target.
type Device interface {
	Info() Info
	// Compile lowers a kernel, rejecting configurations the target's
	// toolchain cannot build (e.g. an FPGA design that does not fit).
	Compile(k kernel.Kernel) (Compiled, error)
	// LaunchOverheadSeconds is the fixed host-side cost of one kernel
	// enqueue + completion (driver, doorbell, reorder). It dominates
	// small-array bandwidth in Figure 1(a).
	LaunchOverheadSeconds() float64
	// Link is the host-device interconnect used for buffer transfers.
	Link() *link.Link
	// Reset restores cold state (caches, open rows) between experiments.
	Reset()
}

// MemorySystem is the optional interface of back-ends whose global
// memory is a dram.Model. The bandwidth–latency surface subsystem
// (internal/surface) asserts it to drive the memory controller directly
// with loaded-latency probe traffic; every simulated target implements
// it. It is deliberately not part of Device so injected test doubles
// stay trivial.
type MemorySystem interface {
	// MemModel returns the device's global-memory timing model.
	MemModel() *dram.Model
}

// StreamBases returns non-overlapping base addresses for the benchmark
// arrays: stream 0 is the destination a, streams 1..n the sources b, c.
// Arrays are spaced 2 GiB apart, far beyond any modelled array size.
func StreamBases(streams int) []uint64 {
	bases := make([]uint64, streams)
	for i := range bases {
		bases[i] = uint64(i) << 31
	}
	return bases
}

// KernelSource builds the interleaved request stream one kernel invocation
// presents to the memory system: for each loop trip, one read per input
// array then one write to the destination, each stream walked with the
// given pattern at elemBytes granularity and coalesced up to coalesceBytes
// (the device's LSU/coalescer window; pass elemBytes to disable merging).
func KernelSource(op kernel.Op, elems int, elemBytes uint32, p mem.Pattern, coalesceBytes uint32) (mem.Source, error) {
	bases := StreamBases(op.Streams())
	srcs := make([]mem.Source, 0, op.Streams())
	// Reads first (b, then c), then the write to a: stream tags match
	// array identity (0=a, 1=b, 2=c).
	for i := 1; i <= op.InputStreams(); i++ {
		it, err := mem.NewIter(p, bases[i], elems, elemBytes, mem.Read, uint8(i))
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, wrapCoalesce(it, elemBytes, coalesceBytes))
	}
	wr, err := mem.NewIter(p, bases[0], elems, elemBytes, mem.Write, 0)
	if err != nil {
		return nil, err
	}
	srcs = append(srcs, wrapCoalesce(wr, elemBytes, coalesceBytes))
	if len(srcs) == 1 {
		return srcs[0], nil
	}
	return mem.NewInterleave(srcs...), nil
}

func wrapCoalesce(s mem.Source, elemBytes, coalesceBytes uint32) mem.Source {
	if coalesceBytes <= elemBytes {
		return s
	}
	return mem.NewCoalescer(s, coalesceBytes)
}

// TxnCount predicts exactly how many transactions KernelSource yields
// after coalescing: address-adjacent walks (effective stride 1) merge up
// to the window, any larger stride defeats merging entirely.
func TxnCount(op kernel.Op, elems int, elemBytes uint32, p mem.Pattern, coalesceBytes uint32) uint64 {
	perStream := uint64(elems)
	if coalesceBytes > elemBytes && p.EffectiveStrideElems(elems) == 1 {
		bytes := uint64(elems) * uint64(elemBytes)
		perStream = (bytes + uint64(coalesceBytes) - 1) / uint64(coalesceBytes)
	}
	return perStream * uint64(op.Streams())
}

// ByID returns the device with the given Info.ID from devs.
func ByID(devs []Device, id string) (Device, error) {
	for _, d := range devs {
		if d.Info().ID == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("device: unknown target %q", id)
}
