// Package aocl models the paper's FPGA-AOCL target: an Altera Stratix V
// GS D5 (Nallatech PCIe-385) compiled with AOCL 15.1.
//
// The model captures the mechanisms that shape AOCL's MP-STREAM curves:
//
//   - single work-item loops lower to an II=1 pipeline whose load/store
//     units burst-coalesce contiguous streams (512-byte bursts on the
//     Avalon interconnect), so bandwidth = datapath width x fmax until
//     the interconnect or DRAM saturates;
//   - the global-memory interconnect is one 512-bit bus clocked at the
//     kernel's fmax — the hard ceiling that makes vec8/vec16 saturate
//     near 15 GB/s rather than the 25.6 GB/s DRAM peak;
//   - fmax degrades as the datapath widens or is replicated (fabric
//     cost model), so each doubling of vector width yields slightly
//     less than 2x;
//   - plain NDRange kernels schedule work-items through the pipeline
//     with dispatch bubbles and element-granularity (uncoalesced)
//     accesses; num_simd_work_items restores static coalescing at the
//     cost of replicated control and LSU arbitration;
//   - num_compute_units clones the whole pipeline; the clones contend
//     for the interconnect, so scaling falls off beyond a few units —
//     the paper's Figure 4(b) observation that native vectorization is
//     the more reliable optimization;
//   - a nested (2D) loop drains the pipeline once per outer iteration,
//     which is why it trails the flat loop slightly on this target.
package aocl

import (
	"fmt"
	"math"

	"mpstream/internal/device"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/dram"
	"mpstream/internal/sim/link"
	"mpstream/internal/sim/mem"
	"mpstream/internal/sim/sample"
)

// Config collects every tunable of the AOCL device model. Defaults are
// calibrated to the paper's board (Section IV: 25 GB/s peak).
type Config struct {
	// ID and Description override the device identity; empty means the
	// default Stratix V / AOCL 15.1 identity. Variants (e.g. HMC) set
	// their own so platforms can host both side by side.
	ID          string
	Description string

	DRAM dram.Config
	Cost fabric.CostModel
	Part fabric.Part
	PCIe link.Config

	// MemBytes is the board DRAM capacity.
	MemBytes int64
	// LaunchOverheadSec is the fixed enqueue-to-start plus completion
	// cost of one kernel invocation.
	LaunchOverheadSec float64
	// InterconnectBytes is the width of the single global-memory
	// interconnect in bytes per kernel-clock cycle (512-bit Avalon).
	InterconnectBytes int
	// LSUBurstBytes is the burst-coalescing window of single work-item
	// LSUs.
	LSUBurstBytes uint32
	// NDRangeBurstBytes is the dynamic burst-buffer window of NDRange
	// work-item LSUs (smaller than the static single work-item bursts).
	NDRangeBurstBytes uint32
	// NDRangeDispatchII is the average cycles per work-item for plain
	// NDRange kernels (scheduling bubbles). WGDispatchII applies instead
	// when reqd_work_group_size is given: a known work-group shape lets
	// the compiler build a tighter dispatcher — the paper's rationale for
	// recommending the attribute on OpenCL-FPGA compilers.
	NDRangeDispatchII float64
	WGDispatchII      float64
	// SIMDArbLin/Quad and CUArbLin/Quad are the arbitration-contention
	// coefficients: efficiency = 1/(1 + lin*(n-1) + quad*(n-1)^2).
	SIMDArbLin, SIMDArbQuad float64
	CUArbLin, CUArbQuad     float64
	// SampleWindowTxns bounds exact DRAM simulation; larger runs are
	// extrapolated from two windows.
	SampleWindowTxns uint64
}

// DefaultConfig returns the calibrated Stratix V / AOCL 15.1 model.
func DefaultConfig() Config {
	return Config{
		DRAM: dram.Config{
			Name:            "aocl-ddr3",
			Channels:        2,
			BanksPerChannel: 8,
			RowBytes:        8192,
			BurstBytes:      64,
			BusGBps:         12.8, // DDR3-1600 x 64-bit per bank
			RowMissNs:       45,
			TurnaroundNs:    7.5,
			BatchSize:       16,
			MaxOutstanding:  16,
			ActWindowNs:     40,
			ActsPerWindow:   4,
			RefreshLoss:     0.03,
			InterleaveBytes: 1024, // AOCL default burst interleaving
			HashChannels:    false,
		},
		Cost: fabric.CostModel{
			BaseFmaxMHz:       316,
			MinFmaxMHz:        150,
			WidthPenalty:      0.06,
			ReplPenalty:       0.08,
			BasePipelineDepth: 120,
			DepthPerLaneLog2:  15,
			BaseUnit:          fabric.Resources{Logic: 3000, Registers: 7000, BRAM: 10},
			PerLane:           fabric.Resources{Logic: 450, Registers: 1000, BRAM: 1},
			PerReplLane:       fabric.Resources{Logic: 900, Registers: 2000, BRAM: 2},
			PerStream:         fabric.Resources{Logic: 1800, Registers: 3800, BRAM: 8},
			MultiplierDSP:     1,
		},
		Part: fabric.StratixVD5,
		PCIe: link.Config{
			Name:            "aocl-pcie",
			GBps:            3.2, // Gen2 x8 era BSP
			LatencyUs:       2,
			SetupUs:         15,
			MaxPayloadBytes: 4 << 20,
		},
		MemBytes:          8 << 30,
		LaunchOverheadSec: 48e-6,
		InterconnectBytes: 64,
		LSUBurstBytes:     512,
		NDRangeBurstBytes: 64,
		NDRangeDispatchII: 1.3,
		WGDispatchII:      1.15,
		SIMDArbLin:        0.05,
		SIMDArbQuad:       0.008,
		CUArbLin:          0.12,
		CUArbQuad:         0.02,
		SampleWindowTxns:  1 << 18,
	}
}

// HMCConfig is the future-work variant the paper closes with: the same
// Stratix-V-class fabric attached to a Hybrid Memory Cube instead of two
// DDR3 DIMMs. HMC brings many short-row vaults with fast activation (no
// practical tFAW) and a far higher aggregate peak; to exploit it the
// shell widens the kernel-side interconnect to 1024 bits. The kernel
// clock then becomes the new bandwidth wall — which is exactly the
// "picture changes considerably" experiment (EXP-X8).
func HMCConfig() Config {
	cfg := DefaultConfig()
	cfg.DRAM = dram.Config{
		Name:            "aocl-hmc",
		Channels:        8, // vault groups behind the serial links
		BanksPerChannel: 16,
		RowBytes:        256, // short HMC pages
		BurstBytes:      32,
		BusGBps:         20, // 160 GB/s aggregate
		RowMissNs:       15,
		TurnaroundNs:    3,
		BatchSize:       16,
		MaxOutstanding:  64,
		RefreshLoss:     0.02,
		InterleaveBytes: 256,
		HashChannels:    true,
		HashBanks:       true,
	}
	cfg.InterconnectBytes = 128 // 1024-bit kernel-side interconnect
	cfg.MemBytes = 4 << 30
	cfg.ID = "aocl-hmc"
	cfg.Description = "Stratix-V-class fabric with Hybrid Memory Cube (future-work variant) [simulated]"
	return cfg
}

// Device is the AOCL target.
type Device struct {
	cfg  Config
	mem  *dram.Model
	pcie *link.Link
}

// New builds the device with the default configuration.
func New() *Device { return NewWithConfig(DefaultConfig()) }

// NewWithConfig builds the device with an explicit configuration
// (ablation studies tweak individual mechanisms).
func NewWithConfig(cfg Config) *Device {
	return &Device{cfg: cfg, mem: dram.New(cfg.DRAM), pcie: link.New(cfg.PCIe)}
}

// Info implements device.Device.
func (d *Device) Info() device.Info {
	id, desc := d.cfg.ID, d.cfg.Description
	if id == "" {
		id = "aocl"
	}
	if desc == "" {
		desc = "Altera Stratix V GS D5 (Nallatech PCIe-385), AOCL 15.1 [simulated]"
	}
	return device.Info{
		ID:          id,
		Description: desc,
		Kind:        device.FPGA,
		PeakMemGBps: d.cfg.DRAM.PeakGBps(),
		MemBytes:    d.cfg.MemBytes,
		OptimalLoop: kernel.FlatLoop,
		IdleWatts:   21,
		PeakWatts:   30, // Nallatech 385 board power envelope
	}
}

// LaunchOverheadSeconds implements device.Device.
func (d *Device) LaunchOverheadSeconds() float64 { return d.cfg.LaunchOverheadSec }

// Link implements device.Device.
func (d *Device) Link() *link.Link { return d.pcie }

// Reset implements device.Device. The AOCL model holds no cross-run state.
func (d *Device) Reset() {}

// MemModel implements device.MemorySystem: the board DDR3 subsystem the
// surface layer probes for loaded latency.
func (d *Device) MemModel() *dram.Model { return d.mem }

// arbEff is the shared arbitration-efficiency polynomial.
func arbEff(n int, lin, quad float64) float64 {
	if n <= 1 {
		return 1
	}
	x := float64(n - 1)
	return 1 / (1 + lin*x + quad*x*x)
}

// plan is a compiled AOCL kernel.
type plan struct {
	dev   *Device
	k     kernel.Kernel
	shape fabric.Shape
	synth fabric.Synthesis

	issueGBps     float64 // sustained pipeline issue, after all efficiencies
	coalesceBytes uint32
}

// Compile implements device.Device.
func (d *Device) Compile(k kernel.Kernel) (device.Compiled, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if k.Op == kernel.Chase {
		return nil, fmt.Errorf("aocl: chase is a latency probe, not a throughput kernel; run it through the surface subsystem")
	}
	// AOCL 15.1 requires a fixed work-group size to vectorize work-items.
	if k.Attrs.NumSIMDWorkItems > 1 && k.Attrs.ReqdWorkGroupSize == 0 {
		return nil, fmt.Errorf("aocl: num_simd_work_items(%d) requires reqd_work_group_size",
			k.Attrs.NumSIMDWorkItems)
	}

	simd := maxInt(1, k.Attrs.NumSIMDWorkItems)
	units := maxInt(1, k.Attrs.NumComputeUnits)
	unroll := 1
	if k.Loop != kernel.NDRange && k.Attrs.Unroll > 1 {
		unroll = k.Attrs.Unroll
	}
	lanes := k.VecWidth * simd * unroll
	repl := 0
	if simd > 1 {
		repl = simd
	}
	shape := fabric.Shape{
		LanesPerUnit:    lanes,
		Units:           units,
		Streams:         k.Op.Streams(),
		WordBytes:       int(k.Type.Bytes()),
		UsesMultiplier:  k.Op.NeedsScalar(),
		ReplicatedLanes: repl,
	}
	synth, err := d.cfg.Cost.Synthesize(shape)
	if err != nil {
		return nil, err
	}
	if err := d.cfg.Part.Fit(synth.Res); err != nil {
		return nil, fmt.Errorf("aocl: %s: %w", k.Name(), err)
	}

	// Pipeline issue bandwidth. The single global interconnect caps raw
	// traffic at its width times the kernel clock; dispatch bubbles and
	// arbitration stalls then throttle whatever survives the cap (a
	// stalled pipeline leaves interconnect slots empty too).
	issue := synth.IssueGBps(shape)
	interconnect := float64(d.cfg.InterconnectBytes) * synth.FmaxMHz * 1e6 / 1e9
	if issue > interconnect {
		issue = interconnect
	}
	if k.Loop == kernel.NDRange {
		// Plain NDRange pays work-item dispatch bubbles; a declared
		// work-group size tightens the dispatcher, and SIMD vectorization
		// pipelines whole sub-groups and removes the bubbles entirely.
		if simd <= 1 {
			ii := d.cfg.NDRangeDispatchII
			if k.Attrs.ReqdWorkGroupSize > 0 && d.cfg.WGDispatchII > 0 {
				ii = d.cfg.WGDispatchII
			}
			issue /= ii
		}
		issue *= arbEff(simd, d.cfg.SIMDArbLin, d.cfg.SIMDArbQuad)
	}
	issue *= arbEff(units, d.cfg.CUArbLin, d.cfg.CUArbQuad)

	// LSU coalescing: single work-item LSUs statically infer wide bursts;
	// NDRange work-item LSUs dynamically buffer one memory burst (wider
	// when SIMD statically coalesces adjacent work-items).
	var window uint32
	switch {
	case k.Loop != kernel.NDRange:
		window = d.cfg.LSUBurstBytes
	default:
		window = d.cfg.NDRangeBurstBytes
		if w := k.ElemBytes() * uint32(simd); w > window {
			window = w
		}
	}

	return &plan{dev: d, k: k, shape: shape, synth: synth,
		issueGBps: issue, coalesceBytes: window}, nil
}

// Kernel implements device.Compiled.
func (p *plan) Kernel() kernel.Kernel { return p.k }

// Resources implements device.Compiled.
func (p *plan) Resources() (fabric.Resources, bool) { return p.synth.Res, true }

// FmaxMHz implements device.Compiled.
func (p *plan) FmaxMHz() (float64, bool) { return p.synth.FmaxMHz, true }

// Seconds implements device.Compiled.
func (p *plan) Seconds(e device.Exec) (float64, error) {
	k := p.k
	if err := e.Validate(k); err != nil {
		return 0, err
	}
	if need := int64(k.Op.Streams()) * e.ArrayBytes; need > p.dev.cfg.MemBytes {
		return 0, fmt.Errorf("aocl: %d bytes exceed device memory %d", need, p.dev.cfg.MemBytes)
	}
	elems := e.Elems(k)
	elemB := k.ElemBytes()
	totalBytes := float64(k.Op.Streams()) * float64(e.ArrayBytes)

	issueSec := totalBytes / (p.issueGBps * 1e9)

	totalTxns := device.TxnCount(k.Op, elems, elemB, e.Pattern, p.coalesceBytes)
	runner := func(maxTxns uint64) sample.Measurement {
		src, err := device.KernelSource(k.Op, elems, elemB, e.Pattern, p.coalesceBytes)
		if err != nil {
			return sample.Measurement{}
		}
		res := p.dev.mem.ServiceBounded(src, maxTxns)
		return sample.Measurement{Txns: res.Txns, Seconds: res.Seconds}
	}
	est, err := sample.Run(runner, totalTxns, p.dev.cfg.SampleWindowTxns)
	if err != nil {
		return 0, fmt.Errorf("aocl: %s: %w", k.Name(), err)
	}

	sec := math.Max(issueSec, est.Seconds)
	sec += p.synth.DrainSeconds(p.drainSegments(elems))
	return sec, nil
}

// drainSegments counts how many times the pipeline drains per invocation.
func (p *plan) drainSegments(elems int) int64 {
	switch p.k.Loop {
	case kernel.NestedLoop:
		rows, _ := mem.Shape2D(elems)
		return int64(rows)
	default:
		return 1
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
