package aocl

import (
	"errors"
	"testing"

	"mpstream/internal/device"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
	"mpstream/internal/stats"
)

// measure runs one invocation and returns STREAM-convention bandwidth in
// GB/s including launch overhead, matching how the paper reports points.
func measure(t *testing.T, d *Device, k kernel.Kernel, arrayBytes int64, p mem.Pattern) float64 {
	t.Helper()
	c, err := d.Compile(k)
	if err != nil {
		t.Fatalf("compile %s: %v", k.Name(), err)
	}
	sec, err := c.Seconds(device.Exec{ArrayBytes: arrayBytes, Pattern: p})
	if err != nil {
		t.Fatalf("seconds %s: %v", k.Name(), err)
	}
	sec += d.LaunchOverheadSeconds()
	return float64(k.Op.BytesMoved(arrayBytes)) / sec / 1e9
}

func flatCopy(v int) kernel.Kernel {
	return kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: v, Loop: kernel.FlatLoop}
}

func TestInfo(t *testing.T) {
	d := New()
	info := d.Info()
	if info.ID != "aocl" || info.Kind != device.FPGA {
		t.Errorf("info = %+v", info)
	}
	if info.PeakMemGBps < 25 || info.PeakMemGBps > 26 {
		t.Errorf("peak = %v, want ~25.6 (paper: 25 GB/s)", info.PeakMemGBps)
	}
	if info.OptimalLoop != kernel.FlatLoop {
		t.Error("AOCL optimal loop management is the flat single work-item loop")
	}
	if d.Link() == nil {
		t.Error("missing PCIe link")
	}
}

// Figure 1(b), AOCL series: copy at 4 MB, vector width sweep.
// Paper: 2.53, 4.61, 8.97, 14.85, 15.26 GB/s.
func TestFig1bVectorSweep(t *testing.T) {
	d := New()
	paper := map[int]float64{1: 2.53, 2: 4.61, 4: 8.97, 8: 14.85, 16: 15.26}
	got := map[int]float64{}
	for _, v := range kernel.VecWidths() {
		got[v] = measure(t, d, flatCopy(v), 4<<20, mem.ContiguousPattern())
		if !stats.WithinFactor(got[v], paper[v], 1.25) {
			t.Errorf("vec %d: %.2f GB/s, paper %.2f (factor 1.25 band)", v, got[v], paper[v])
		}
	}
	// Monotone up to v8, then saturation near the interconnect limit.
	if !(got[1] < got[2] && got[2] < got[4] && got[4] < got[8]) {
		t.Errorf("vector scaling not monotone to v8: %v", got)
	}
	if rel := stats.RelErr(got[16], got[8]); rel > 0.15 {
		t.Errorf("v16 (%.2f) must saturate near v8 (%.2f), rel diff %.2f", got[16], got[8], rel)
	}
}

// Figure 1(a), AOCL series: copy, vec 1, sizes 1 KB..64 MB.
// Paper: 0.04, 0.14, 0.63, 1.14, 2.03, 2.23, 2.38, 2.53, 2.45.
func TestFig1aSizeSweep(t *testing.T) {
	d := New()
	paper := []float64{0.04, 0.14, 0.63, 1.14, 2.03, 2.23, 2.38, 2.53, 2.45}
	var got []float64
	for i := 0; i < 9; i++ {
		bw := measure(t, d, flatCopy(1), int64(1024)<<(2*i), mem.ContiguousPattern())
		got = append(got, bw)
		if !stats.WithinFactor(bw, paper[i], 1.6) {
			t.Errorf("size %d KB: %.3f GB/s, paper %.2f (factor 1.6 band)", 1<<(10+2*i)/1024, bw, paper[i])
		}
	}
	// Rising to a plateau: strictly increasing through 1 MB, then flat
	// within 10%.
	if !stats.IsNondecreasing(got[:6]) {
		t.Errorf("small sizes must rise monotonically: %v", got[:6])
	}
	plateau := got[6:]
	if s, _ := stats.Summarize(plateau); s.Max/s.Min > 1.10 {
		t.Errorf("plateau not flat within 10%%: %v", plateau)
	}
}

// Figure 3, AOCL bars: single work-item beats NDRange; nested trails flat
// slightly (pipeline drain per row).
func TestFig3LoopManagement(t *testing.T) {
	d := New()
	bw := map[kernel.LoopMode]float64{}
	for _, lm := range kernel.LoopModes() {
		k := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: lm}
		bw[lm] = measure(t, d, k, 4<<20, mem.ContiguousPattern())
	}
	if !(bw[kernel.FlatLoop] > bw[kernel.NestedLoop]) {
		t.Errorf("flat (%.2f) must beat nested (%.2f) on AOCL", bw[kernel.FlatLoop], bw[kernel.NestedLoop])
	}
	if !(bw[kernel.NestedLoop] > bw[kernel.NDRange]) {
		t.Errorf("nested (%.2f) must beat ndrange (%.2f) on AOCL", bw[kernel.NestedLoop], bw[kernel.NDRange])
	}
	if bw[kernel.NestedLoop] < 0.8*bw[kernel.FlatLoop] {
		t.Errorf("nested (%.2f) should trail flat (%.2f) only slightly", bw[kernel.NestedLoop], bw[kernel.FlatLoop])
	}
}

// Figure 2, AOCL strided series: rise to an interior peak then fall as the
// growing stride (row length) defeats bursts and thrashes DRAM rows.
// Paper: 0.1, 0.2, 0.4, 0.7, 0.8, 1.7, 0.5, 0.4, 0.3.
func TestFig2StridedRiseFall(t *testing.T) {
	d := New()
	var got []float64
	for i := 0; i < 9; i++ {
		got = append(got, measure(t, d, flatCopy(1), int64(1024)<<(2*i), mem.ColMajorPattern()))
	}
	peak := stats.ArgMax(got)
	if peak < 3 || peak > 6 {
		t.Errorf("strided peak at index %d (%v), want interior (3..6)", peak, got)
	}
	if got[8] > 0.75*got[peak] {
		t.Errorf("largest size (%.2f) must fall well below peak (%.2f)", got[8], got[peak])
	}
	contig := measure(t, d, flatCopy(1), 64<<20, mem.ContiguousPattern())
	if contig < 3*got[8] {
		t.Errorf("contiguous (%.2f) must beat strided (%.2f) by >= 3x at 64 MB", contig, got[8])
	}
}

// Figure 4(b): the three AOCL optimization routes at N = 1..16.
func TestFig4bOptimizationRoutes(t *testing.T) {
	d := New()
	ns := []int{1, 2, 4, 8, 16}

	vec := map[int]float64{}
	simd := map[int]float64{}
	cu := map[int]float64{}
	for _, n := range ns {
		vec[n] = measure(t, d, flatCopy(n), 4<<20, mem.ContiguousPattern())
		simd[n] = measure(t, d, kernel.Kernel{
			Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange,
			Attrs: kernel.Attrs{NumSIMDWorkItems: n, ReqdWorkGroupSize: 256},
		}, 4<<20, mem.ContiguousPattern())
		cu[n] = measure(t, d, kernel.Kernel{
			Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange,
			Attrs: kernel.Attrs{NumComputeUnits: n},
		}, 4<<20, mem.ContiguousPattern())
	}

	// Native vectorization scales reliably (monotone to v8).
	if !(vec[1] < vec[2] && vec[2] < vec[4] && vec[4] < vec[8]) {
		t.Errorf("vectorization must scale monotonically to v8: %v", vec)
	}
	// SIMD and CU peak at an interior N and then degrade — the paper's
	// "less consistent results, eventually giving poorer performance".
	if !(simd[16] < simd[8] || simd[16] < simd[4]) {
		t.Errorf("SIMD must degrade at N=16: %v", simd)
	}
	if !(cu[16] < cu[4]) {
		t.Errorf("CU must degrade at N=16: %v", cu)
	}
	// At full scale, vectorization wins clearly.
	if !(vec[16] > 1.5*simd[16] && vec[16] > 1.5*cu[16]) {
		t.Errorf("vec16 (%.2f) must beat simd16 (%.2f) and cu16 (%.2f) clearly",
			vec[16], simd[16], cu[16])
	}
}

// Section IV: AOCL-specific optimizations consume more resources than the
// equivalent native vectorization.
func TestResourceUsageVecVsSimdVsCU(t *testing.T) {
	d := New()
	for _, n := range []int{2, 4, 8, 16} {
		rVec := compileRes(t, d, flatCopy(n))
		rSimd := compileRes(t, d, kernel.Kernel{
			Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange,
			Attrs: kernel.Attrs{NumSIMDWorkItems: n, ReqdWorkGroupSize: 256}})
		rCU := compileRes(t, d, kernel.Kernel{
			Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange,
			Attrs: kernel.Attrs{NumComputeUnits: n}})
		if !(rVec.Logic < rSimd.Logic && rSimd.Logic < rCU.Logic) {
			t.Errorf("N=%d: logic vec=%d simd=%d cu=%d, want vec < simd < cu",
				n, rVec.Logic, rSimd.Logic, rCU.Logic)
		}
	}
}

func compileRes(t *testing.T, d *Device, k kernel.Kernel) fabric.Resources {
	t.Helper()
	c, err := d.Compile(k)
	if err != nil {
		t.Fatalf("compile %s: %v", k.Name(), err)
	}
	r, ok := c.Resources()
	if !ok {
		t.Fatal("FPGA plan must report resources")
	}
	return r
}

func TestDoubleTypeDoublesIssue(t *testing.T) {
	d := New()
	i32 := measure(t, d, flatCopy(1), 4<<20, mem.ContiguousPattern())
	f64 := measure(t, d, kernel.Kernel{Op: kernel.Copy, Type: kernel.Float64, VecWidth: 1, Loop: kernel.FlatLoop},
		4<<20, mem.ContiguousPattern())
	ratio := f64 / i32
	if ratio < 1.7 || ratio > 2.2 {
		t.Errorf("double/int copy ratio = %.2f, want ~2 (64-bit coalesced access)", ratio)
	}
}

func TestUnrollActsLikeVectorization(t *testing.T) {
	d := New()
	u8 := measure(t, d, kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1,
		Loop: kernel.FlatLoop, Attrs: kernel.Attrs{Unroll: 8}}, 4<<20, mem.ContiguousPattern())
	v8 := measure(t, d, flatCopy(8), 4<<20, mem.ContiguousPattern())
	if !stats.WithinFactor(u8, v8, 1.2) {
		t.Errorf("unroll 8 (%.2f) should track vec 8 (%.2f)", u8, v8)
	}
}

func TestAllKernelsMemoryBound(t *testing.T) {
	d := New()
	bws := map[kernel.Op]float64{}
	for _, op := range kernel.Ops() {
		k := kernel.Kernel{Op: op, Type: kernel.Int32, VecWidth: 1, Loop: kernel.FlatLoop}
		bws[op] = measure(t, d, k, 4<<20, mem.ContiguousPattern())
	}
	// Copy and scale move 2 streams, add and triad 3: with per-stream
	// issue-limited pipelines the 3-stream kernels report more GB/s.
	if !(bws[kernel.Add] > bws[kernel.Copy]) {
		t.Errorf("add (%.2f) must report more than copy (%.2f): 3 concurrent streams", bws[kernel.Add], bws[kernel.Copy])
	}
	if !stats.WithinFactor(bws[kernel.Scale], bws[kernel.Copy], 1.1) {
		t.Errorf("scale (%.2f) must track copy (%.2f)", bws[kernel.Scale], bws[kernel.Copy])
	}
	if !stats.WithinFactor(bws[kernel.Triad], bws[kernel.Add], 1.1) {
		t.Errorf("triad (%.2f) must track add (%.2f)", bws[kernel.Triad], bws[kernel.Add])
	}
}

func TestCompileRejects(t *testing.T) {
	d := New()
	// Invalid kernel.
	if _, err := d.Compile(kernel.Kernel{Op: kernel.Copy, VecWidth: 3, Loop: kernel.FlatLoop}); err == nil {
		t.Error("invalid vector width accepted")
	}
	// SIMD without reqd_work_group_size (AOCL requirement).
	if _, err := d.Compile(kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1,
		Loop: kernel.NDRange, Attrs: kernel.Attrs{NumSIMDWorkItems: 4}}); err == nil {
		t.Error("SIMD without reqd_work_group_size accepted")
	}
	// A design too large for the part.
	huge := kernel.Kernel{Op: kernel.Triad, Type: kernel.Float64, VecWidth: 16,
		Loop: kernel.FlatLoop, Attrs: kernel.Attrs{Unroll: 64, NumComputeUnits: 16}}
	_, err := d.Compile(huge)
	if err == nil {
		t.Fatal("oversized design accepted")
	}
	if !errors.Is(err, fabric.ErrDoesNotFit) {
		t.Errorf("error %v must wrap ErrDoesNotFit", err)
	}
}

func TestSecondsErrors(t *testing.T) {
	d := New()
	c, err := d.Compile(flatCopy(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Seconds(device.Exec{ArrayBytes: 1023, Pattern: mem.ContiguousPattern()}); err == nil {
		t.Error("non-multiple array bytes accepted")
	}
	if _, err := c.Seconds(device.Exec{ArrayBytes: 6 << 30, Pattern: mem.ContiguousPattern()}); err == nil {
		t.Error("arrays exceeding device memory accepted")
	}
}

func TestPlanMetadata(t *testing.T) {
	d := New()
	k := flatCopy(4)
	c, err := d.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kernel().Name() != k.Name() {
		t.Error("plan must report its kernel")
	}
	if mhz, ok := c.FmaxMHz(); !ok || mhz <= 0 || mhz > 316 {
		t.Errorf("fmax = %v ok=%v", mhz, ok)
	}
	res, ok := c.Resources()
	if !ok || res.Logic <= 0 {
		t.Errorf("resources = %+v ok=%v", res, ok)
	}
	if err := DefaultConfig().Part.Fit(res); err != nil {
		t.Errorf("vec4 copy must fit: %v", err)
	}
}

func TestSampledLargeRunConsistent(t *testing.T) {
	// Bandwidth at 64 MB and 256 MB must be nearly identical (both deep
	// in the plateau), confirming sampled extrapolation stays sane.
	d := New()
	a := measure(t, d, flatCopy(1), 64<<20, mem.ContiguousPattern())
	b := measure(t, d, flatCopy(1), 256<<20, mem.ContiguousPattern())
	if !stats.WithinFactor(a, b, 1.05) {
		t.Errorf("plateau bandwidths diverge: 64MB %.3f vs 256MB %.3f", a, b)
	}
}

func TestLaunchOverheadDominatesSmallArrays(t *testing.T) {
	d := New()
	bw := measure(t, d, flatCopy(1), 1024, mem.ContiguousPattern())
	// 2 KB moved over ~48 us: about 0.04 GB/s.
	if bw > 0.1 {
		t.Errorf("1 KB bandwidth = %.3f GB/s, must be launch-overhead bound (<0.1)", bw)
	}
}

func TestHMCConfigIdentity(t *testing.T) {
	d := NewWithConfig(HMCConfig())
	info := d.Info()
	if info.ID != "aocl-hmc" {
		t.Errorf("HMC id = %q", info.ID)
	}
	if info.PeakMemGBps != 160 {
		t.Errorf("HMC peak = %v, want 160", info.PeakMemGBps)
	}
	// Default identity is unchanged.
	if New().Info().ID != "aocl" {
		t.Error("default identity broken")
	}
}

func TestHMCWideVectorCeiling(t *testing.T) {
	ddr3 := measure(t, New(), flatCopy(16), 4<<20, mem.ContiguousPattern())
	hmc := measure(t, NewWithConfig(HMCConfig()), flatCopy(16), 4<<20, mem.ContiguousPattern())
	if hmc < 1.6*ddr3 {
		t.Errorf("HMC vec16 (%.1f) must clearly beat DDR3 vec16 (%.1f)", hmc, ddr3)
	}
	// The new ceiling is the 1024-bit interconnect at the kernel clock,
	// well under the 160 GB/s memory peak.
	if hmc > 40 {
		t.Errorf("HMC vec16 = %.1f, should be interconnect-bound (<40)", hmc)
	}
}

func TestReqdWorkGroupSizeHelpsNDRange(t *testing.T) {
	d := New()
	plain := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange}
	without := measure(t, d, plain, 4<<20, mem.ContiguousPattern())
	plain.Attrs.ReqdWorkGroupSize = 256
	with := measure(t, d, plain, 4<<20, mem.ContiguousPattern())
	if with <= without {
		t.Errorf("reqd_work_group_size (%.3f) must beat the plain dispatcher (%.3f)", with, without)
	}
	// It tightens dispatch, it does not remove it: still below the flat loop.
	flat := measure(t, d, flatCopy(1), 4<<20, mem.ContiguousPattern())
	if with >= flat {
		t.Errorf("wg-attributed ndrange (%.3f) must still trail the flat loop (%.3f)", with, flat)
	}
}
