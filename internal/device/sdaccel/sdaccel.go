// Package sdaccel models the paper's FPGA-SDACCEL target: a Xilinx
// Virtex-7 XC7VX690T (Alpha-Data ADM-PCIE-7V3) compiled with SDAccel
// 2015.1.
//
// SDAccel 2015-era lowering differs from AOCL in ways the paper measures
// directly, and the model reproduces each mechanism:
//
//   - a flat single work-item loop is NOT pipelined by default: every
//     iteration performs sequential memory round trips over the AXI
//     shell (~hundreds of ns each), which is why the flat-loop bar in
//     Figure 3 sits orders of magnitude below the rest; the
//     xcl_pipeline_loop attribute pipelines it but still without burst
//     inference;
//   - a nested (2D) loop triggers burst inference on the inner loop:
//     512-byte AXI bursts and an II=1 pipeline — "the memory-access
//     logic is synthesized differently, even if the eventual underlying
//     access pattern is exactly the same" (paper, Section IV);
//   - burst inference requires a compile-time unit-stride inner loop, so
//     strided/column-major runs fall back to latency-bound accesses —
//     the near-constant 0.01 GB/s strided series in Figure 2;
//   - kernel ports are AXI masters of fixed width shared by all arrays
//     unless max_memory_ports gives each argument its own port, and
//     memory port width is configurable (the paper's two
//     SDAccel-specific knobs);
//   - the single DDR3 channel behind a 2015-era MIG controller has poor
//     read/write turnaround behaviour, capping streaming efficiency
//     around 60%.
package sdaccel

import (
	"fmt"
	"math"

	"mpstream/internal/device"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/dram"
	"mpstream/internal/sim/link"
	"mpstream/internal/sim/mem"
	"mpstream/internal/sim/sample"
)

// Config collects the SDAccel device model tunables.
type Config struct {
	DRAM dram.Config
	Cost fabric.CostModel
	Part fabric.Part
	PCIe link.Config

	MemBytes          int64
	LaunchOverheadSec float64

	// MemLatencyNs is the full kernel-to-DRAM round trip over the AXI
	// shell, paid per access by unpipelined or non-burst code.
	MemLatencyNs float64
	// BurstBytes is the inferred AXI burst length for nested loops.
	BurstBytes uint32
	// DefaultPortBytes is the AXI port data width without the
	// memory-port-width attribute.
	DefaultPortBytes uint32
	// NDRangeII / NDRangePipelinedII are cycles per work-item without and
	// with xcl_pipeline_workitems.
	NDRangeII, NDRangePipelinedII float64
	// SampleWindowTxns bounds exact DRAM simulation.
	SampleWindowTxns uint64
	// LatencyOverlap is the number of outstanding accesses unpipelined
	// code keeps in flight (1 = fully serial).
	LatencyOverlap float64
}

// DefaultConfig returns the calibrated Virtex-7 / SDAccel 2015.1 model.
func DefaultConfig() Config {
	return Config{
		DRAM: dram.Config{
			Name:            "sdaccel-ddr3",
			Channels:        1,
			BanksPerChannel: 8,
			RowBytes:        8192,
			BurstBytes:      64,
			BusGBps:         10.7, // DDR3-1333 x 64-bit
			RowMissNs:       48,
			TurnaroundNs:    25, // 2015-era MIG scheduling
			BatchSize:       3,
			MaxOutstanding:  8,
			ActWindowNs:     40,
			ActsPerWindow:   4,
			RefreshLoss:     0.05,
			InterleaveBytes: 1024,
		},
		Cost: fabric.CostModel{
			BaseFmaxMHz:       95,
			MinFmaxMHz:        40,
			WidthPenalty:      0.08,
			ReplPenalty:       0.10,
			BasePipelineDepth: 48,
			DepthPerLaneLog2:  6,
			BaseUnit:          fabric.Resources{Logic: 8000, Registers: 16000, BRAM: 20},
			PerLane:           fabric.Resources{Logic: 900, Registers: 2000, BRAM: 2},
			PerReplLane:       fabric.Resources{Logic: 1800, Registers: 4000, BRAM: 4},
			PerStream:         fabric.Resources{Logic: 5000, Registers: 10000, BRAM: 16},
			MultiplierDSP:     2,
		},
		Part: fabric.Virtex7690T,
		PCIe: link.Config{
			Name:            "sdaccel-pcie",
			GBps:            6.0, // Gen3 x8
			LatencyUs:       2,
			SetupUs:         20,
			MaxPayloadBytes: 4 << 20,
		},
		MemBytes:           16 << 30,
		LaunchOverheadSec:  65e-6,
		MemLatencyNs:       350,
		BurstBytes:         512,
		DefaultPortBytes:   128,
		NDRangeII:          4,
		NDRangePipelinedII: 2,
		SampleWindowTxns:   1 << 18,
		LatencyOverlap:     1,
	}
}

// Device is the SDAccel target.
type Device struct {
	cfg  Config
	mem  *dram.Model
	pcie *link.Link
}

// New builds the device with the default configuration.
func New() *Device { return NewWithConfig(DefaultConfig()) }

// NewWithConfig builds the device with an explicit configuration.
func NewWithConfig(cfg Config) *Device {
	return &Device{cfg: cfg, mem: dram.New(cfg.DRAM), pcie: link.New(cfg.PCIe)}
}

// Info implements device.Device.
func (d *Device) Info() device.Info {
	return device.Info{
		ID:          "sdaccel",
		Description: "Xilinx Virtex-7 XC7VX690T (Alpha-Data ADM-PCIE-7V3), SDAccel 2015.1 [simulated]",
		Kind:        device.FPGA,
		PeakMemGBps: d.cfg.DRAM.PeakGBps(),
		MemBytes:    d.cfg.MemBytes,
		OptimalLoop: kernel.NestedLoop,
		IdleWatts:   19,
		PeakWatts:   28, // ADM-PCIE-7V3 board power envelope
	}
}

// LaunchOverheadSeconds implements device.Device.
func (d *Device) LaunchOverheadSeconds() float64 { return d.cfg.LaunchOverheadSec }

// Link implements device.Device.
func (d *Device) Link() *link.Link { return d.pcie }

// Reset implements device.Device. The model holds no cross-run state.
func (d *Device) Reset() {}

// MemModel implements device.MemorySystem: the board DDR3 subsystem the
// surface layer probes for loaded latency.
func (d *Device) MemModel() *dram.Model { return d.mem }

// plan is a compiled SDAccel kernel.
type plan struct {
	dev   *Device
	k     kernel.Kernel
	shape fabric.Shape
	synth fabric.Synthesis

	pipelined  bool    // II=1 (or II=n) pipeline vs sequential iteration
	burstable  bool    // burst inference available for unit-stride data
	ii         float64 // cycles per element when pipelined
	portGBps   float64 // AXI port ceiling
	portBytes  uint32
	perPortLSU bool // max_memory_ports: one port per array argument
}

// Compile implements device.Device.
func (d *Device) Compile(k kernel.Kernel) (device.Compiled, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if k.Op == kernel.Chase {
		return nil, fmt.Errorf("sdaccel: chase is a latency probe, not a throughput kernel; run it through the surface subsystem")
	}
	// AOCL-only attributes are rejected rather than silently dropped.
	if k.Attrs.NumSIMDWorkItems > 1 || k.Attrs.NumComputeUnits > 1 {
		return nil, fmt.Errorf("sdaccel: num_simd_work_items/num_compute_units are AOCL attributes")
	}

	unroll := 1
	if k.Loop != kernel.NDRange && k.Attrs.Unroll > 1 {
		unroll = k.Attrs.Unroll
	}
	shape := fabric.Shape{
		LanesPerUnit:   k.VecWidth * unroll,
		Units:          1,
		Streams:        k.Op.Streams(),
		WordBytes:      int(k.Type.Bytes()),
		UsesMultiplier: k.Op.NeedsScalar(),
	}
	synth, err := d.cfg.Cost.Synthesize(shape)
	if err != nil {
		return nil, err
	}
	if err := d.cfg.Part.Fit(synth.Res); err != nil {
		return nil, fmt.Errorf("sdaccel: %s: %w", k.Name(), err)
	}

	p := &plan{dev: d, k: k, shape: shape, synth: synth}
	switch k.Loop {
	case kernel.NestedLoop:
		// Burst inference on the unit-stride inner loop.
		p.pipelined, p.burstable, p.ii = true, true, 1
	case kernel.FlatLoop:
		// Not pipelined unless asked; never burst-inferred in this
		// toolchain generation.
		p.pipelined = k.Attrs.PipelineLoop
		p.ii = 1
	case kernel.NDRange:
		p.pipelined = true
		p.ii = d.cfg.NDRangeII
		if k.Attrs.PipelineWorkItems {
			p.ii = d.cfg.NDRangePipelinedII
		}
	}

	p.portBytes = d.cfg.DefaultPortBytes
	if k.Attrs.MemoryPortWidthBits > 0 {
		p.portBytes = uint32(k.Attrs.MemoryPortWidthBits / 8)
	}
	p.perPortLSU = k.Attrs.MaxMemoryPorts
	ports := 1
	if p.perPortLSU {
		ports = k.Op.Streams()
	}
	p.portGBps = float64(ports) * float64(p.portBytes) * synth.FmaxMHz * 1e6 / 1e9
	return p, nil
}

// Kernel implements device.Compiled.
func (p *plan) Kernel() kernel.Kernel { return p.k }

// Resources implements device.Compiled.
func (p *plan) Resources() (fabric.Resources, bool) { return p.synth.Res, true }

// FmaxMHz implements device.Compiled.
func (p *plan) FmaxMHz() (float64, bool) { return p.synth.FmaxMHz, true }

// Seconds implements device.Compiled.
func (p *plan) Seconds(e device.Exec) (float64, error) {
	k := p.k
	if err := e.Validate(k); err != nil {
		return 0, err
	}
	if need := int64(k.Op.Streams()) * e.ArrayBytes; need > p.dev.cfg.MemBytes {
		return 0, fmt.Errorf("sdaccel: %d bytes exceed device memory %d", need, p.dev.cfg.MemBytes)
	}
	elems := e.Elems(k)
	elemB := k.ElemBytes()
	unitStride := e.Pattern.EffectiveStrideElems(elems) == 1

	// Latency-bound regimes: unpipelined loops, and single work-item
	// pipelines whose data is not unit-stride (burst inference fails at
	// compile time; each access is an AXI round trip).
	latencyBound := !p.pipelined ||
		(k.Loop != kernel.NDRange && p.burstable && !unitStride) ||
		(k.Loop == kernel.FlatLoop && !unitStride)
	if latencyBound {
		overlap := math.Max(1, p.dev.cfg.LatencyOverlap)
		accesses := float64(elems) * float64(k.Op.Streams())
		sec := accesses * p.dev.cfg.MemLatencyNs * 1e-9 / overlap
		sec += p.synth.DrainSeconds(p.drainSegments(elems))
		return sec, nil
	}

	// Pipelined regime: issue rate vs AXI port ceiling vs DRAM.
	totalBytes := float64(k.Op.Streams()) * float64(e.ArrayBytes)
	issue := p.synth.IssueGBps(p.shape) / p.ii
	if issue > p.portGBps {
		issue = p.portGBps
	}
	issueSec := totalBytes / (issue * 1e9)

	window := elemB // no burst inference outside nested loops
	if p.burstable && unitStride {
		window = p.dev.cfg.BurstBytes
	}
	totalTxns := device.TxnCount(k.Op, elems, elemB, e.Pattern, window)
	runner := func(maxTxns uint64) sample.Measurement {
		src, err := device.KernelSource(k.Op, elems, elemB, e.Pattern, window)
		if err != nil {
			return sample.Measurement{}
		}
		res := p.dev.mem.ServiceBounded(src, maxTxns)
		return sample.Measurement{Txns: res.Txns, Seconds: res.Seconds}
	}
	est, err := sample.Run(runner, totalTxns, p.dev.cfg.SampleWindowTxns)
	if err != nil {
		return 0, fmt.Errorf("sdaccel: %s: %w", k.Name(), err)
	}

	sec := math.Max(issueSec, est.Seconds)
	sec += p.synth.DrainSeconds(p.drainSegments(elems))
	return sec, nil
}

// drainSegments counts pipeline drains per invocation.
func (p *plan) drainSegments(elems int) int64 {
	switch p.k.Loop {
	case kernel.NestedLoop:
		rows, _ := mem.Shape2D(elems)
		return int64(rows)
	default:
		return 1
	}
}
