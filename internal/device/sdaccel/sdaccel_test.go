package sdaccel

import (
	"errors"
	"testing"

	"mpstream/internal/device"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
	"mpstream/internal/stats"
)

func measure(t *testing.T, d *Device, k kernel.Kernel, arrayBytes int64, p mem.Pattern) float64 {
	t.Helper()
	c, err := d.Compile(k)
	if err != nil {
		t.Fatalf("compile %s: %v", k.Name(), err)
	}
	sec, err := c.Seconds(device.Exec{ArrayBytes: arrayBytes, Pattern: p})
	if err != nil {
		t.Fatalf("seconds %s: %v", k.Name(), err)
	}
	sec += d.LaunchOverheadSeconds()
	return float64(k.Op.BytesMoved(arrayBytes)) / sec / 1e9
}

func nestedCopy(v int) kernel.Kernel {
	return kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: v, Loop: kernel.NestedLoop}
}

func TestInfo(t *testing.T) {
	d := New()
	info := d.Info()
	if info.ID != "sdaccel" || info.Kind != device.FPGA {
		t.Errorf("info = %+v", info)
	}
	if info.PeakMemGBps < 10 || info.PeakMemGBps > 11 {
		t.Errorf("peak = %v, want ~10.7 (paper: 10 GB/s)", info.PeakMemGBps)
	}
	if info.OptimalLoop != kernel.NestedLoop {
		t.Error("SDAccel optimal loop management is the nested loop")
	}
	if d.Link() == nil {
		t.Error("missing PCIe link")
	}
}

// Figure 1(b), SDAccel series: copy at 4 MB, vector width sweep (nested).
// Paper: 0.74, 1.41, 2.47, 4.14, 6.27 GB/s.
func TestFig1bVectorSweep(t *testing.T) {
	d := New()
	paper := map[int]float64{1: 0.74, 2: 1.41, 4: 2.47, 8: 4.14, 16: 6.27}
	got := map[int]float64{}
	for _, v := range kernel.VecWidths() {
		got[v] = measure(t, d, nestedCopy(v), 4<<20, mem.ContiguousPattern())
		if !stats.WithinFactor(got[v], paper[v], 1.25) {
			t.Errorf("vec %d: %.3f GB/s, paper %.2f (factor 1.25 band)", v, got[v], paper[v])
		}
	}
	// SDAccel keeps scaling through v16 (DRAM not yet saturated).
	if !(got[1] < got[2] && got[2] < got[4] && got[4] < got[8] && got[8] < got[16]) {
		t.Errorf("vector scaling must be monotone: %v", got)
	}
}

// Figure 1(a), SDAccel series: copy, vec 1, nested loop, sizes 1 KB..64 MB.
// Paper: 0.03, 0.09, 0.21, 0.35, 0.53, 0.64, 0.70, 0.74, 0.76.
func TestFig1aSizeSweep(t *testing.T) {
	d := New()
	paper := []float64{0.03, 0.09, 0.21, 0.35, 0.53, 0.64, 0.70, 0.74, 0.76}
	var got []float64
	for i := 0; i < 9; i++ {
		bw := measure(t, d, nestedCopy(1), int64(1024)<<(2*i), mem.ContiguousPattern())
		got = append(got, bw)
		if !stats.WithinFactor(bw, paper[i], 1.6) {
			t.Errorf("size index %d: %.4f GB/s, paper %.2f (factor 1.6 band)", i, bw, paper[i])
		}
	}
	if !stats.IsNondecreasing(got) {
		t.Errorf("size sweep must rise to a plateau: %v", got)
	}
}

// Figure 3, SDAccel bars: the paper's headline surprise — nested loops
// synthesize burst logic, flat loops do not, NDRange sits between.
func TestFig3LoopManagement(t *testing.T) {
	d := New()
	bw := map[kernel.LoopMode]float64{}
	for _, lm := range kernel.LoopModes() {
		k := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: lm}
		bw[lm] = measure(t, d, k, 4<<20, mem.ContiguousPattern())
	}
	if !(bw[kernel.NestedLoop] > 3*bw[kernel.NDRange]) {
		t.Errorf("nested (%.3f) must dominate ndrange (%.3f)", bw[kernel.NestedLoop], bw[kernel.NDRange])
	}
	if !(bw[kernel.NDRange] > 3*bw[kernel.FlatLoop]) {
		t.Errorf("ndrange (%.3f) must dominate unpipelined flat (%.3f)", bw[kernel.NDRange], bw[kernel.FlatLoop])
	}
	// The nested/flat gap is orders of magnitude — "the memory-access
	// logic is synthesized differently, even if the eventual underlying
	// access pattern is exactly the same".
	if bw[kernel.NestedLoop] < 20*bw[kernel.FlatLoop] {
		t.Errorf("nested (%.3f) vs flat (%.4f) gap too small", bw[kernel.NestedLoop], bw[kernel.FlatLoop])
	}
}

func TestPipelineLoopAttrHelpsFlat(t *testing.T) {
	d := New()
	plain := measure(t, d, kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.FlatLoop},
		4<<20, mem.ContiguousPattern())
	piped := measure(t, d, kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.FlatLoop,
		Attrs: kernel.Attrs{PipelineLoop: true}}, 4<<20, mem.ContiguousPattern())
	if piped < 5*plain {
		t.Errorf("xcl_pipeline_loop (%.3f) must clearly beat unpipelined flat (%.4f)", piped, plain)
	}
	nested := measure(t, d, nestedCopy(1), 4<<20, mem.ContiguousPattern())
	if piped > nested {
		t.Errorf("pipelined flat (%.3f) must still trail nested burst inference (%.3f)", piped, nested)
	}
}

func TestPipelineWorkItemsAttrHelpsNDRange(t *testing.T) {
	// At vec 16 the work-item pipeline (not DRAM waste) is the binding
	// constraint, so halving the initiation interval is visible. At vec 1
	// the uncoalesced DRAM traffic binds and the attribute cannot help —
	// also asserted, because that insensitivity is itself paper-faithful
	// ("at times in unexpected ways").
	d := New()
	wide := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 16, Loop: kernel.NDRange}
	plain := measure(t, d, wide, 4<<20, mem.ContiguousPattern())
	wide.Attrs.PipelineWorkItems = true
	piped := measure(t, d, wide, 4<<20, mem.ContiguousPattern())
	if piped <= 1.2*plain {
		t.Errorf("xcl_pipeline_workitems at vec16 (%.3f) must clearly beat plain (%.3f)", piped, plain)
	}

	narrow := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange}
	p1 := measure(t, d, narrow, 4<<20, mem.ContiguousPattern())
	narrow.Attrs.PipelineWorkItems = true
	p2 := measure(t, d, narrow, 4<<20, mem.ContiguousPattern())
	if !stats.WithinFactor(p2, p1, 1.05) {
		t.Errorf("at vec1 the attribute must be DRAM-masked: %.3f vs %.3f", p2, p1)
	}
}

// Figure 2, SDAccel strided series: near-constant ~0.01 GB/s at every
// size — burst inference fails on non-unit strides and every access pays
// the AXI round trip.
func TestFig2StridedFlatLine(t *testing.T) {
	d := New()
	var got []float64
	for i := 2; i < 9; i += 2 {
		got = append(got, measure(t, d, nestedCopy(1), int64(1024)<<(2*i), mem.ColMajorPattern()))
	}
	s, err := stats.Summarize(got)
	if err != nil {
		t.Fatal(err)
	}
	if s.Max/s.Min > 1.25 {
		t.Errorf("strided series must be nearly flat: %v", got)
	}
	if s.Mean < 0.005 || s.Mean > 0.03 {
		t.Errorf("strided level = %.4f GB/s, paper ~0.01", s.Mean)
	}
}

func TestMaxMemoryPortsHelpsWidePipelines(t *testing.T) {
	// With a narrowed port (64-bit attribute) the shared AXI master is
	// the binding constraint for a wide triad; per-argument ports lift it.
	d := New()
	base := kernel.Kernel{Op: kernel.Triad, Type: kernel.Int32, VecWidth: 16, Loop: kernel.NestedLoop,
		Attrs: kernel.Attrs{MemoryPortWidthBits: 64}}
	shared := measure(t, d, base, 4<<20, mem.ContiguousPattern())
	base.Attrs.MaxMemoryPorts = true
	perArg := measure(t, d, base, 4<<20, mem.ContiguousPattern())
	if perArg <= 1.5*shared {
		t.Errorf("max_memory_ports (%.3f) must clearly beat the shared narrow port (%.3f)", perArg, shared)
	}
}

func TestMemoryPortWidthThrottles(t *testing.T) {
	d := New()
	base := nestedCopy(16)
	wide := measure(t, d, base, 4<<20, mem.ContiguousPattern())
	base.Attrs.MemoryPortWidthBits = 64 // 8-byte port
	narrow := measure(t, d, base, 4<<20, mem.ContiguousPattern())
	if narrow >= wide {
		t.Errorf("a 64-bit port (%.3f) must throttle vec16 (%.3f)", narrow, wide)
	}
}

func TestCompileRejects(t *testing.T) {
	d := New()
	if _, err := d.Compile(kernel.Kernel{Op: kernel.Copy, VecWidth: 5, Loop: kernel.FlatLoop}); err == nil {
		t.Error("invalid kernel accepted")
	}
	// AOCL-only attributes are not silently ignored.
	if _, err := d.Compile(kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1,
		Loop: kernel.NDRange, Attrs: kernel.Attrs{NumComputeUnits: 4}}); err == nil {
		t.Error("num_compute_units accepted on sdaccel")
	}
	// Oversized designs are rejected.
	huge := kernel.Kernel{Op: kernel.Triad, Type: kernel.Float64, VecWidth: 16,
		Loop: kernel.FlatLoop, Attrs: kernel.Attrs{Unroll: 64}}
	if _, err := d.Compile(huge); !errors.Is(err, fabric.ErrDoesNotFit) {
		t.Errorf("oversized design error = %v, want ErrDoesNotFit", err)
	}
}

func TestSecondsErrors(t *testing.T) {
	d := New()
	c, err := d.Compile(nestedCopy(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Seconds(device.Exec{ArrayBytes: 1023, Pattern: mem.ContiguousPattern()}); err == nil {
		t.Error("non-multiple array bytes accepted")
	}
	if _, err := c.Seconds(device.Exec{ArrayBytes: 12 << 30, Pattern: mem.ContiguousPattern()}); err == nil {
		t.Error("arrays exceeding device memory accepted")
	}
}

func TestPlanMetadata(t *testing.T) {
	d := New()
	c, err := d.Compile(nestedCopy(4))
	if err != nil {
		t.Fatal(err)
	}
	if mhz, ok := c.FmaxMHz(); !ok || mhz <= 0 || mhz > 95 {
		t.Errorf("fmax = %v ok=%v", mhz, ok)
	}
	if res, ok := c.Resources(); !ok || res.Logic <= 0 {
		t.Errorf("resources = %+v ok=%v", res, ok)
	}
	if c.Kernel().Op != kernel.Copy {
		t.Error("plan must report its kernel")
	}
}

func TestSlowerThanAOCLShape(t *testing.T) {
	// Cross-target sanity pinned here to the sdaccel side: its best
	// no-vectorization number stays under 1 GB/s while its peak is 10 —
	// the paper's "severely under-utilizing" observation.
	d := New()
	best := measure(t, d, nestedCopy(1), 4<<20, mem.ContiguousPattern())
	if best > 1.0 {
		t.Errorf("v1 nested = %.3f GB/s, should be < 1 (paper: 0.70)", best)
	}
	if best < 0.4 {
		t.Errorf("v1 nested = %.3f GB/s, too slow (paper: 0.70)", best)
	}
}
