// Package gpusim models the paper's GPU target: an NVIDIA GeForce GTX
// Titan Black (Kepler GK110B, 15 SMX, 6 GDDR5 channels, 336 GB/s peak).
//
// The mechanisms that shape the GPU's MP-STREAM behaviour:
//
//   - NDRange kernels launch one thread per element; a warp's 32
//     contiguous word accesses coalesce into 128-byte transactions, so
//     contiguous streams run at DRAM speed;
//   - sustained/peak ratio (~62%) emerges from GDDR5 read/write bus
//     turnaround and refresh in the DRAM model, not from a fudge factor;
//   - wide vector types raise per-thread register pressure, cutting
//     resident warps; with fewer warps in flight Little's law bounds the
//     achievable bandwidth — the vec8/vec16 droop in Figure 1(b);
//   - a sectored, write-validating L2 coalesces partial-sector writes
//     and gives column-major walks their sector reuse, producing the
//     strided plateau of Figure 2;
//   - once a strided walk's page working set exceeds the TLB, address
//     translation throughput caps the run — the falloff beyond 64 MB in
//     the strided series;
//   - a single work-item kernel uses one thread on one SM: a few memory
//     round trips in flight instead of hundreds of thousands, which is
//     the Figure 3 cliff for loop kernels on GPUs.
package gpusim

import (
	"fmt"
	"math"

	"mpstream/internal/device"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/cache"
	"mpstream/internal/sim/dram"
	"mpstream/internal/sim/link"
	"mpstream/internal/sim/mem"
	"mpstream/internal/sim/sample"
)

// Config collects the GPU device model tunables.
type Config struct {
	DRAM dram.Config
	L2   cache.Config
	PCIe link.Config

	MemBytes          int64
	LaunchOverheadSec float64

	// SM/occupancy model.
	SMs               int
	CoreClockMHz      float64
	RegFilePerSM      int // 32-bit registers per SM
	ThreadsPerWarp    int
	MaxWarpsPerSM     int
	MinWarpsPerSM     int
	BaseRegsPerThread int
	RegsPerVecWord    int // extra registers per vector word per thread

	// Memory path.
	CoalesceBytes uint32  // warp coalescing window
	MemLatencyNs  float64 // average global load latency
	// UncoalescedReplayCycles is the LSU issue cost per transaction when
	// a warp's accesses do not coalesce: the instruction replays once per
	// distinct sector, costing this many cycles each. It is what makes
	// the strided plateau flat and size-independent.
	UncoalescedReplayCycles float64

	// Single work-item (loop kernel) model.
	FlatMLP, NestedMLP float64

	// TLB model: translation throughput caps strided walks whose page
	// working set exceeds the TLB reach.
	PageBytes  uint64
	TLBEntries int
	WalkRate   float64 // page walks per second the MMU sustains

	SampleWindowTxns uint64
}

// DefaultConfig returns the calibrated Titan Black model.
func DefaultConfig() Config {
	return Config{
		DRAM: dram.Config{
			Name:            "gddr5",
			Channels:        6,
			BanksPerChannel: 16,
			RowBytes:        2048,
			BurstBytes:      32,
			BusGBps:         56, // 7 GT/s x 64-bit per channel
			RowMissNs:       40,
			TurnaroundNs:    15,
			BatchSize:       64,
			MaxOutstanding:  128,
			ActWindowNs:     24,
			ActsPerWindow:   6,
			RefreshLoss:     0.03,
			InterleaveBytes: 256,
			HashChannels:    true,
			HashBanks:       true,
		},
		L2: cache.Config{
			Name:          "gpu-l2",
			CapacityBytes: 1536 << 10,
			LineBytes:     32, // sector granularity
			Ways:          24, // 2048 sets
			WriteValidate: true,
			HashSets:      true,
		},
		PCIe: link.Config{
			Name:            "gpu-pcie",
			GBps:            11.0, // Gen3 x16
			LatencyUs:       1.2,
			SetupUs:         6,
			MaxPayloadBytes: 4 << 20,
		},
		MemBytes:                6 << 30,
		LaunchOverheadSec:       11e-6,
		SMs:                     15,
		CoreClockMHz:            889,
		RegFilePerSM:            65536,
		ThreadsPerWarp:          32,
		MaxWarpsPerSM:           64,
		MinWarpsPerSM:           8,
		BaseRegsPerThread:       22,
		RegsPerVecWord:          3,
		CoalesceBytes:           128,
		MemLatencyNs:            350,
		UncoalescedReplayCycles: 2,
		FlatMLP:                 8,
		NestedMLP:               6,
		PageBytes:               128 << 10,
		TLBEntries:              1024,
		WalkRate:                1.6e9,
		SampleWindowTxns:        1 << 19,
	}
}

// Device is the GPU target.
type Device struct {
	cfg  Config
	mem  *dram.Model
	l2   *cache.Cache
	pcie *link.Link
}

// New builds the device with the default configuration.
func New() *Device { return NewWithConfig(DefaultConfig()) }

// NewWithConfig builds the device with an explicit configuration.
func NewWithConfig(cfg Config) *Device {
	return &Device{
		cfg:  cfg,
		mem:  dram.New(cfg.DRAM),
		l2:   cache.New(cfg.L2),
		pcie: link.New(cfg.PCIe),
	}
}

// Info implements device.Device.
func (d *Device) Info() device.Info {
	return device.Info{
		ID:          "gpu",
		Description: "NVIDIA GeForce GTX Titan Black (GK110B), OpenCL [simulated]",
		Kind:        device.GPU,
		PeakMemGBps: d.cfg.DRAM.PeakGBps(),
		MemBytes:    d.cfg.MemBytes,
		OptimalLoop: kernel.NDRange,
		IdleWatts:   40,
		PeakWatts:   230, // memory-bound draw, under the 250 W TDP
	}
}

// LaunchOverheadSeconds implements device.Device.
func (d *Device) LaunchOverheadSeconds() float64 { return d.cfg.LaunchOverheadSec }

// Link implements device.Device.
func (d *Device) Link() *link.Link { return d.pcie }

// Reset implements device.Device: cold L2.
func (d *Device) Reset() { d.l2.Reset() }

// MemModel implements device.MemorySystem: the GDDR5 subsystem the
// surface layer probes for loaded latency.
func (d *Device) MemModel() *dram.Model { return d.mem }

// Occupancy returns resident warps per SM for a kernel, from its register
// pressure. Exposed for tests and reports.
func (d *Device) Occupancy(k kernel.Kernel) int {
	regs := d.cfg.BaseRegsPerThread + d.cfg.RegsPerVecWord*k.VecWidth*int(k.Type.Bytes())/4
	warps := d.cfg.RegFilePerSM / (d.cfg.ThreadsPerWarp * regs)
	if warps > d.cfg.MaxWarpsPerSM {
		warps = d.cfg.MaxWarpsPerSM
	}
	if warps < d.cfg.MinWarpsPerSM {
		warps = d.cfg.MinWarpsPerSM
	}
	return warps
}

// plan is a compiled GPU kernel.
type plan struct {
	dev   *Device
	k     kernel.Kernel
	warps int
}

// Compile implements device.Device. The GPU toolchain ignores FPGA vendor
// attributes (as real OpenCL compilers ignore unknown annotations) but
// still validates the generic kernel structure.
func (d *Device) Compile(k kernel.Kernel) (device.Compiled, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if k.Op == kernel.Chase {
		return nil, fmt.Errorf("gpu: chase is a latency probe, not a throughput kernel; run it through the surface subsystem")
	}
	return &plan{dev: d, k: k, warps: d.Occupancy(k)}, nil
}

// Kernel implements device.Compiled.
func (p *plan) Kernel() kernel.Kernel { return p.k }

// Resources implements device.Compiled: not an FPGA.
func (p *plan) Resources() (fabric.Resources, bool) { return fabric.Resources{}, false }

// FmaxMHz implements device.Compiled: not an FPGA.
func (p *plan) FmaxMHz() (float64, bool) { return 0, false }

// Seconds implements device.Compiled.
func (p *plan) Seconds(e device.Exec) (float64, error) {
	k := p.k
	cfg := p.dev.cfg
	if err := e.Validate(k); err != nil {
		return 0, err
	}
	if need := int64(k.Op.Streams()) * e.ArrayBytes; need > cfg.MemBytes {
		return 0, fmt.Errorf("gpu: %d bytes exceed device memory %d", need, cfg.MemBytes)
	}
	elems := e.Elems(k)
	elemB := k.ElemBytes()
	totalBytes := float64(k.Op.Streams()) * float64(e.ArrayBytes)

	// Single work-item kernels: one thread, a handful of outstanding
	// round trips.
	if k.Loop != kernel.NDRange {
		mlp := cfg.FlatMLP
		if k.Loop == kernel.NestedLoop {
			mlp = cfg.NestedMLP
		}
		if u := float64(k.Attrs.Unroll); u > 1 {
			// Unrolling exposes a little more ILP to the single thread.
			mlp *= 1 + math.Log2(u)/4
		}
		accesses := float64(elems) * float64(k.Op.Streams())
		return accesses * cfg.MemLatencyNs * 1e-9 / mlp, nil
	}

	unitStride := e.Pattern.EffectiveStrideElems(elems) == 1
	window := elemB
	if unitStride && cfg.CoalesceBytes > window {
		window = cfg.CoalesceBytes
	}

	// Latency-hiding bound (Little's law): resident warps each keep one
	// coalesced transaction in flight.
	inflightPerWarp := float64(window)
	if !unitStride {
		// Scattered warp accesses: each lane's sector is independent and
		// the LSU keeps many in flight; DRAM/TLB bind instead.
		inflightPerWarp = float64(cfg.ThreadsPerWarp) * float64(cfg.L2.LineBytes)
	}
	bwLat := float64(cfg.SMs) * float64(p.warps) * inflightPerWarp / (cfg.MemLatencyNs * 1e-9)
	issueSec := totalBytes / bwLat
	if !unitStride {
		// Non-unit strides replay the load once per distinct sector a
		// warp touches: a short stride still packs several lanes per
		// sector, a large stride gives one sector per lane.
		strideBytes := float64(e.Pattern.EffectiveStrideElems(elems)) * float64(elemB)
		sectorsPerAccess := strideBytes / float64(cfg.L2.LineBytes)
		if sectorsPerAccess > 1 {
			sectorsPerAccess = 1
		}
		accesses := float64(elems) * float64(k.Op.Streams())
		replaySec := accesses * sectorsPerAccess * cfg.UncoalescedReplayCycles /
			(float64(cfg.SMs) * cfg.CoreClockMHz * 1e6)
		if replaySec > issueSec {
			issueSec = replaySec
		}
	}

	// Memory system: coalesced stream through the sectored L2 into GDDR5.
	totalTxns := device.TxnCount(k.Op, elems, elemB, e.Pattern, window)
	runner := func(maxTxns uint64) sample.Measurement {
		src, err := device.KernelSource(k.Op, elems, elemB, e.Pattern, window)
		if err != nil {
			return sample.Measurement{}
		}
		bounded := mem.Source(src)
		if maxTxns > 0 {
			bounded = mem.NewLimit(src, int(maxTxns))
		}
		p.dev.l2.Reset()
		res := p.dev.mem.Service(cache.NewMissFilter(p.dev.l2, bounded))
		st := p.dev.l2.Stats()
		sec := res.Seconds
		// L2-resident traffic moves at L2 speed even when DRAM is idle.
		l2Bytes := float64(st.L1Transfers) * float64(cfg.L2.LineBytes)
		l2Sec := l2Bytes / (500e9) // sectored L2 service rate
		if l2Sec > sec {
			sec = l2Sec
		}
		txns := st.Accesses
		return sample.Measurement{Txns: txns, Seconds: sec}
	}
	est, err := sample.Run(runner, totalTxns, cfg.SampleWindowTxns)
	if err != nil {
		return 0, fmt.Errorf("gpu: %s: %w", k.Name(), err)
	}
	memSec := est.Seconds

	// TLB reach: a strided walk whose per-pass page set exceeds the TLB
	// pays a page walk per access.
	stride := e.Pattern.EffectiveStrideElems(elems)
	if stride > 1 {
		passLen := elems / stride
		arrayPages := int(e.ArrayBytes/int64(cfg.PageBytes)) + 1
		pagesPerPass := passLen
		if arrayPages < pagesPerPass {
			pagesPerPass = arrayPages
		}
		if pagesPerPass > cfg.TLBEntries {
			accesses := float64(elems) * float64(k.Op.Streams())
			tlbSec := accesses / cfg.WalkRate
			if tlbSec > memSec {
				memSec = tlbSec
			}
		}
	}

	if issueSec > memSec {
		return issueSec, nil
	}
	return memSec, nil
}
