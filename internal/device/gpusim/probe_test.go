package gpusim

import (
	"strings"
	"testing"

	"mpstream/internal/device"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
)

// TestMemModel: the GPU exposes its GDDR5 subsystem to the surface
// layer, and the exposed model is the very one timing kernels.
func TestMemModel(t *testing.T) {
	d := New()
	var ms device.MemorySystem = d // compile-time assertion
	m := ms.MemModel()
	if m == nil {
		t.Fatal("MemModel returned nil")
	}
	if got := m.Config().Name; got != "gddr5" {
		t.Errorf("memory model %q, want gddr5", got)
	}
	if got, want := m.Config().PeakGBps(), d.Info().PeakMemGBps; got != want {
		t.Errorf("model peak %.1f differs from device peak %.1f", got, want)
	}
}

// TestCompileRejectsChase: the latency probe is not a throughput kernel.
func TestCompileRejectsChase(t *testing.T) {
	_, err := New().Compile(kernel.Kernel{Op: kernel.Chase, Type: kernel.Int32, VecWidth: 1})
	if err == nil || !strings.Contains(err.Error(), "surface") {
		t.Errorf("chase must be rejected with a pointer to the surface subsystem, got %v", err)
	}
}

// TestOccupancyClamps: register pressure cannot push residency outside
// the [MinWarpsPerSM, MaxWarpsPerSM] band.
func TestOccupancyClamps(t *testing.T) {
	cfg := DefaultConfig()
	d := NewWithConfig(cfg)
	scalar := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange}
	if got := d.Occupancy(scalar); got != cfg.MaxWarpsPerSM {
		t.Errorf("scalar kernel occupancy %d, want the %d cap", got, cfg.MaxWarpsPerSM)
	}
	// A pathological register file forces the lower clamp.
	tiny := cfg
	tiny.RegFilePerSM = 1024
	d2 := NewWithConfig(tiny)
	wide := kernel.Kernel{Op: kernel.Copy, Type: kernel.Float64, VecWidth: 16, Loop: kernel.NDRange}
	if got := d2.Occupancy(wide); got != cfg.MinWarpsPerSM {
		t.Errorf("starved occupancy %d, want the %d floor", got, cfg.MinWarpsPerSM)
	}
	// Monotone: wider vectors never raise residency.
	prev := 1 << 30
	for _, v := range kernel.VecWidths() {
		k := kernel.Kernel{Op: kernel.Copy, Type: kernel.Float64, VecWidth: v, Loop: kernel.NDRange}
		if got := d.Occupancy(k); got > prev {
			t.Errorf("occupancy rose from %d to %d at vec%d", prev, got, v)
		} else {
			prev = got
		}
	}
}

// TestTLBCapsLargeStrides: once a strided walk's page working set
// exceeds the TLB, translation throughput caps the bandwidth — the
// falloff beyond 64 MB in the paper's strided series.
func TestTLBCapsLargeStrides(t *testing.T) {
	d := New()
	k := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange}
	inTLB := measure(t, d, k, 16<<20, mem.ColMajorPattern())
	beyond := measure(t, d, k, 512<<20, mem.ColMajorPattern())
	if beyond > inTLB/2 {
		t.Errorf("TLB-thrashing walk at %.2f GB/s, want well below the resident %.2f", beyond, inTLB)
	}
	// The capped bandwidth approximates WalkRate page walks per access.
	cfg := DefaultConfig()
	wantGBps := cfg.WalkRate * 2 * 4 / 1e9 // 2 streams x 4-byte words
	if beyond > 2*wantGBps || beyond < wantGBps/4 {
		t.Errorf("TLB-bound bandwidth %.2f GB/s, want near %.2f", beyond, wantGBps)
	}
}

// TestNestedTrailsFlat: a nested single work-item loop has less memory
// parallelism than the flat variant.
func TestNestedTrailsFlat(t *testing.T) {
	d := New()
	flat := measure(t, d, kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.FlatLoop},
		4<<20, mem.ContiguousPattern())
	nested := measure(t, d, kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NestedLoop},
		4<<20, mem.ContiguousPattern())
	if nested >= flat {
		t.Errorf("nested loop %.3f GB/s not below flat %.3f", nested, flat)
	}
}

// TestMemoryLimit: configurations exceeding board memory are rejected
// at Seconds time with a clear message.
func TestMemoryLimit(t *testing.T) {
	d := New()
	c, err := d.Compile(ndCopy(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Seconds(device.Exec{ArrayBytes: 4 << 30, Pattern: mem.ContiguousPattern()})
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Errorf("oversized arrays must be rejected, got %v", err)
	}
}

// TestResetRestoresColdState: a Reset between identical runs makes the
// second reproduce the first exactly.
func TestResetRestoresColdState(t *testing.T) {
	d := New()
	k := ndCopy(4)
	first := measure(t, d, k, 1<<20, mem.ContiguousPattern())
	d.Reset()
	second := measure(t, d, k, 1<<20, mem.ContiguousPattern())
	if first != second {
		t.Errorf("cold-state runs differ: %.6f vs %.6f GB/s", first, second)
	}
}
