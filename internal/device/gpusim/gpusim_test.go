package gpusim

import (
	"testing"

	"mpstream/internal/device"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
	"mpstream/internal/stats"
)

func measure(t *testing.T, d *Device, k kernel.Kernel, arrayBytes int64, p mem.Pattern) float64 {
	t.Helper()
	c, err := d.Compile(k)
	if err != nil {
		t.Fatalf("compile %s: %v", k.Name(), err)
	}
	sec, err := c.Seconds(device.Exec{ArrayBytes: arrayBytes, Pattern: p})
	if err != nil {
		t.Fatalf("seconds %s: %v", k.Name(), err)
	}
	sec += d.LaunchOverheadSeconds()
	return float64(k.Op.BytesMoved(arrayBytes)) / sec / 1e9
}

func ndCopy(v int) kernel.Kernel {
	return kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: v, Loop: kernel.NDRange}
}

func TestInfo(t *testing.T) {
	d := New()
	info := d.Info()
	if info.ID != "gpu" || info.Kind != device.GPU {
		t.Errorf("info = %+v", info)
	}
	if info.PeakMemGBps != 336 {
		t.Errorf("peak = %v, want 336 (paper)", info.PeakMemGBps)
	}
	if info.OptimalLoop != kernel.NDRange {
		t.Error("GPU optimal loop management is NDRange")
	}
}

// Figure 1(b), GPU series: copy at 4 MB, vector width sweep.
// Paper: 173.72, 194.30, 201.06, 175.30, 117.37 GB/s.
func TestFig1bVectorSweep(t *testing.T) {
	d := New()
	paper := map[int]float64{1: 173.72, 2: 194.30, 4: 201.06, 8: 175.30, 16: 117.37}
	got := map[int]float64{}
	for _, v := range kernel.VecWidths() {
		got[v] = measure(t, d, ndCopy(v), 4<<20, mem.ContiguousPattern())
		if !stats.WithinFactor(got[v], paper[v], 1.25) {
			t.Errorf("vec %d: %.1f GB/s, paper %.1f (factor 1.25 band)", v, got[v], paper[v])
		}
	}
	// The signature droop: wide vectors cut occupancy.
	if !(got[16] < got[8] && got[8] <= got[4]+1) {
		t.Errorf("wide-vector droop missing: %v", got)
	}
	if got[16] > 0.8*got[4] {
		t.Errorf("v16 (%.1f) must fall well below v4 (%.1f)", got[16], got[4])
	}
}

// Figure 1(a)/2, GPU contiguous series across sizes.
// Paper: 0.14, 0.95, 3.71, 14.74, 50.13, 112.79, 173.72, 204.5, 203.87,
// 216.4, 220.1 for 1 KB..1 GB.
func TestContiguousSizeSweep(t *testing.T) {
	d := New()
	paper := []float64{0.14, 0.95, 3.71, 14.74, 50.13, 112.79, 173.72, 204.5, 203.87, 216.4, 220.1}
	var got []float64
	for i := 0; i < 11; i++ {
		bw := measure(t, d, ndCopy(1), int64(1024)<<(2*i), mem.ContiguousPattern())
		got = append(got, bw)
		if !stats.WithinFactor(bw, paper[i], 1.6) {
			t.Errorf("size index %d: %.2f GB/s, paper %.2f (factor 1.6 band)", i, bw, paper[i])
		}
	}
	if !stats.IsNondecreasing(got) {
		t.Errorf("contiguous sweep must rise to a plateau: %v", got)
	}
	// Plateau within 15% of the paper's 204-220.
	for i := 7; i < 11; i++ {
		if !stats.WithinFactor(got[i], paper[i], 1.15) {
			t.Errorf("plateau point %d: %.1f vs paper %.1f", i, got[i], paper[i])
		}
	}
}

// Figure 2, GPU strided series: rise, interior plateau in the high 20s,
// then the TLB falloff at 256 MB+.
// Paper: 0.1, 0.6, 2.5, 7.6, 18.2, 26.6, 29.4, 29.5, 27.3, 9.9, 6.7.
func TestStridedSweep(t *testing.T) {
	d := New()
	paper := []float64{0.1, 0.6, 2.5, 7.6, 18.2, 26.6, 29.4, 29.5, 27.3, 9.9, 6.7}
	var got []float64
	for i := 0; i < 11; i++ {
		bw := measure(t, d, ndCopy(1), int64(1024)<<(2*i), mem.ColMajorPattern())
		got = append(got, bw)
		if !stats.WithinFactor(bw, paper[i], 1.9) {
			t.Errorf("strided size index %d: %.2f GB/s, paper %.2f (factor 1.9 band)", i, bw, paper[i])
		}
	}
	peak := stats.ArgMax(got)
	if peak < 4 || peak > 8 {
		t.Errorf("strided peak at index %d, want interior: %v", peak, got)
	}
	// TLB falloff: the 256 MB and 1 GB points drop hard.
	if got[9] > 0.5*got[peak] || got[10] > 0.5*got[peak] {
		t.Errorf("TLB falloff missing: peak %.1f, tail %.1f/%.1f", got[peak], got[9], got[10])
	}
}

func TestStridedFarBelowContiguous(t *testing.T) {
	d := New()
	contig := measure(t, d, ndCopy(1), 64<<20, mem.ContiguousPattern())
	strided := measure(t, d, ndCopy(1), 64<<20, mem.ColMajorPattern())
	if contig < 8*strided {
		t.Errorf("contiguous (%.1f) must dominate strided (%.1f) by ~an order of magnitude",
			contig, strided)
	}
}

// Figure 3: single work-item kernels are a catastrophe on a GPU.
func TestFig3LoopManagement(t *testing.T) {
	d := New()
	bw := map[kernel.LoopMode]float64{}
	for _, lm := range kernel.LoopModes() {
		k := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: lm}
		bw[lm] = measure(t, d, k, 4<<20, mem.ContiguousPattern())
	}
	if bw[kernel.NDRange] < 500*bw[kernel.FlatLoop] {
		t.Errorf("ndrange (%.1f) must dominate flat (%.4f) by >500x", bw[kernel.NDRange], bw[kernel.FlatLoop])
	}
	if bw[kernel.FlatLoop] <= bw[kernel.NestedLoop] {
		t.Errorf("flat (%.4f) should edge out nested (%.4f) on a GPU", bw[kernel.FlatLoop], bw[kernel.NestedLoop])
	}
}

// Figure 4(a): all four kernels are memory-bound on the GPU.
func TestAllKernelsMemoryBound(t *testing.T) {
	d := New()
	bws := map[kernel.Op]float64{}
	for _, op := range kernel.Ops() {
		bws[op] = measure(t, d, kernel.New(op), 16<<20, mem.ContiguousPattern())
	}
	for _, op := range kernel.Ops() {
		if !stats.WithinFactor(bws[op], bws[kernel.Copy], 1.35) {
			t.Errorf("%v (%.1f) must track copy (%.1f) within 35%%", op, bws[op], bws[kernel.Copy])
		}
	}
}

func TestOccupancy(t *testing.T) {
	d := New()
	w1 := d.Occupancy(ndCopy(1))
	w16 := d.Occupancy(ndCopy(16))
	if w1 != 64 {
		t.Errorf("vec1 occupancy = %d warps, want 64 (register-light)", w1)
	}
	if w16 >= w1/2 {
		t.Errorf("vec16 occupancy = %d, must be less than half of vec1's %d", w16, w1)
	}
	// Doubles double the register pressure.
	kd := kernel.Kernel{Op: kernel.Copy, Type: kernel.Float64, VecWidth: 8, Loop: kernel.NDRange}
	if d.Occupancy(kd) >= d.Occupancy(ndCopy(8)) {
		t.Error("double8 must have lower occupancy than int8")
	}
}

func TestCompileTolerant(t *testing.T) {
	d := New()
	// FPGA attributes are ignored, as real GPU OpenCL ignores unknown
	// vendor annotations.
	k := ndCopy(1)
	k.Attrs.NumComputeUnits = 4
	if _, err := d.Compile(k); err != nil {
		t.Errorf("GPU must ignore AOCL attributes: %v", err)
	}
	if _, err := d.Compile(kernel.Kernel{Op: kernel.Copy, VecWidth: 7, Loop: kernel.NDRange}); err == nil {
		t.Error("invalid kernel accepted")
	}
}

func TestSecondsErrors(t *testing.T) {
	d := New()
	c, err := d.Compile(ndCopy(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Seconds(device.Exec{ArrayBytes: 1023, Pattern: mem.ContiguousPattern()}); err == nil {
		t.Error("non-multiple array bytes accepted")
	}
	if _, err := c.Seconds(device.Exec{ArrayBytes: 4 << 30, Pattern: mem.ContiguousPattern()}); err == nil {
		t.Error("arrays exceeding the 6 GB device memory accepted")
	}
}

func TestPlanMetadata(t *testing.T) {
	d := New()
	c, err := d.Compile(ndCopy(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Resources(); ok {
		t.Error("GPU must not report FPGA resources")
	}
	if _, ok := c.FmaxMHz(); ok {
		t.Error("GPU must not report fmax")
	}
	if c.Kernel().VecWidth != 4 {
		t.Error("plan must report its kernel")
	}
}

func TestGPUBeatsEverythingContiguous(t *testing.T) {
	// The paper's comparative conclusion: "GPUs remain far ahead of the
	// curve in both peak and sustained memory bandwidth."
	d := New()
	bw := measure(t, d, ndCopy(1), 64<<20, mem.ContiguousPattern())
	if bw < 150 {
		t.Errorf("GPU sustained copy = %.1f GB/s, want > 150", bw)
	}
	if bw > d.Info().PeakMemGBps {
		t.Errorf("sustained %.1f exceeds peak %.1f", bw, d.Info().PeakMemGBps)
	}
}

func TestUnrollHelpsSingleThread(t *testing.T) {
	d := New()
	base := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.FlatLoop}
	plain := measure(t, d, base, 1<<20, mem.ContiguousPattern())
	base.Attrs.Unroll = 16
	unrolled := measure(t, d, base, 1<<20, mem.ContiguousPattern())
	if unrolled <= plain {
		t.Errorf("unroll must expose ILP to the single thread: %.4f vs %.4f", unrolled, plain)
	}
}

func TestLaunchOverheadDominatesSmallArrays(t *testing.T) {
	d := New()
	bw := measure(t, d, ndCopy(1), 1024, mem.ContiguousPattern())
	// Paper: 0.14 GB/s at 1 KB.
	if !stats.WithinFactor(bw, 0.14, 1.5) {
		t.Errorf("1 KB bandwidth = %.3f GB/s, paper 0.14", bw)
	}
}
