// Package cpusim models the paper's CPU target: an Intel Xeon E5-2609 v2
// (4 cores, 2.5 GHz, 10 MB shared L3, 4x DDR3 channels, 34 GB/s peak)
// running an OpenCL CPU runtime.
//
// The mechanisms that shape the CPU's MP-STREAM behaviour:
//
//   - NDRange kernels fan out across all cores and are auto-vectorized,
//     so the OpenCL vector-width knob barely matters (the flat CPU series
//     of Figure 1(b));
//   - the shared L3 keeps 4 MB arrays resident, which is why the paper's
//     4 MB points sit above the DRAM plateau; past ~10 MB of footprint
//     the LRU stream misses everything and DDR3 sets the pace;
//   - the runtime uses non-temporal (streaming) stores, so copy moves 2x
//     bytes rather than the 3x a read-for-ownership write-allocate would
//     cost; streaming stores drain through write-combining buffers at
//     their own finite rate;
//   - per-core line-fill buffers bound memory-level parallelism: at most
//     cores x LFBs line fetches overlap, the Little's-law ceiling on
//     sustained DRAM bandwidth;
//   - a strided walk touches a full 64-byte line per word: cache-resident
//     it burns L3<->L1 line transfers (the interior strided bump of
//     Figure 2), DRAM-resident it pays burst-granularity waste plus row
//     thrash (the 0.8 GB/s tail);
//   - a single work-item kernel runs one scalar loop on one core.
package cpusim

import (
	"fmt"
	"math"

	"mpstream/internal/device"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/cache"
	"mpstream/internal/sim/dram"
	"mpstream/internal/sim/link"
	"mpstream/internal/sim/mem"
	"mpstream/internal/sim/sample"
)

// Config collects the CPU device model tunables.
type Config struct {
	DRAM dram.Config
	LLC  cache.Config
	Loop link.Config // host "link": the device is the host

	MemBytes          int64
	LaunchOverheadSec float64

	Cores                  int
	LFBsPerCore            int     // line-fill buffers (outstanding misses) per core
	DRAMLatencyNs          float64 // load-to-use latency for a DRAM miss
	LLCGBps                float64 // L3 line-transfer bandwidth to the cores
	WCWriteGBps            float64 // streaming-store drain rate through WC buffers
	SingleThreadGBps       float64 // flat single work-item loop ceiling
	SingleThreadNestedGBps float64 // nested variant (outer-loop overhead)

	SampleWindowTxns uint64
}

// DefaultConfig returns the calibrated Xeon E5-2609 v2 model.
func DefaultConfig() Config {
	return Config{
		DRAM: dram.Config{
			Name:            "cpu-ddr3",
			Channels:        4,
			BanksPerChannel: 8,
			RowBytes:        8192,
			BurstBytes:      64,
			BusGBps:         8.53, // DDR3-1066 x 64-bit per channel
			RowMissNs:       48,
			TurnaroundNs:    6,
			BatchSize:       16,
			MaxOutstanding:  10,
			ActWindowNs:     50,
			ActsPerWindow:   4,
			RefreshLoss:     0.035,
			InterleaveBytes: 256,
			HashChannels:    true,
		},
		LLC: cache.Config{
			Name:              "xeon-l3",
			CapacityBytes:     10 << 20,
			LineBytes:         64,
			Ways:              20,
			NonTemporalWrites: true,
			HashSets:          true, // sliced LLC with hashed addressing
		},
		Loop: link.Config{
			Name:      "host-loopback",
			GBps:      10,
			LatencyUs: 0.5,
			SetupUs:   1.5,
		},
		MemBytes:               64 << 30,
		LaunchOverheadSec:      38e-6,
		Cores:                  4,
		LFBsPerCore:            10,
		DRAMLatencyNs:          99,
		LLCGBps:                42,
		WCWriteGBps:            16,
		SingleThreadGBps:       3.5,
		SingleThreadNestedGBps: 3.2,
		SampleWindowTxns:       1 << 21,
	}
}

// Device is the CPU target.
type Device struct {
	cfg Config
	mem *dram.Model
	llc *cache.Cache
	lnk *link.Link
}

// New builds the device with the default configuration.
func New() *Device { return NewWithConfig(DefaultConfig()) }

// NewWithConfig builds the device with an explicit configuration.
func NewWithConfig(cfg Config) *Device {
	return &Device{
		cfg: cfg,
		mem: dram.New(cfg.DRAM),
		llc: cache.New(cfg.LLC),
		lnk: link.New(cfg.Loop),
	}
}

// Info implements device.Device.
func (d *Device) Info() device.Info {
	return device.Info{
		ID:          "cpu",
		Description: "Intel Xeon E5-2609 v2 (4C/2.5GHz, 10 MB L3), OpenCL CPU runtime [simulated]",
		Kind:        device.CPU,
		PeakMemGBps: d.cfg.DRAM.PeakGBps(),
		MemBytes:    d.cfg.MemBytes,
		OptimalLoop: kernel.NDRange,
		IdleWatts:   38,
		PeakWatts:   95, // 80 W TDP package plus DIMMs
	}
}

// LaunchOverheadSeconds implements device.Device.
func (d *Device) LaunchOverheadSeconds() float64 { return d.cfg.LaunchOverheadSec }

// Link implements device.Device. Host and device coincide, so "transfers"
// are memcpy-speed loopback.
func (d *Device) Link() *link.Link { return d.lnk }

// Reset implements device.Device: cold caches.
func (d *Device) Reset() { d.llc.Reset() }

// MemModel implements device.MemorySystem: the DDR3 subsystem the
// surface layer probes for loaded latency.
func (d *Device) MemModel() *dram.Model { return d.mem }

// coreConcurrencyGBps is the Little's-law ceiling on DRAM traffic: each
// core keeps at most LFBsPerCore line fetches in flight.
func (d *Device) coreConcurrencyGBps(cores int) float64 {
	return float64(cores) * float64(d.cfg.LFBsPerCore) * 64 / d.cfg.DRAMLatencyNs
}

// plan is a compiled CPU kernel.
type plan struct {
	dev *Device
	k   kernel.Kernel
}

// Compile implements device.Device. The CPU runtime ignores FPGA vendor
// attributes, like any OpenCL compiler faced with unknown annotations.
func (d *Device) Compile(k kernel.Kernel) (device.Compiled, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if k.Op == kernel.Chase {
		return nil, fmt.Errorf("cpu: chase is a latency probe, not a throughput kernel; run it through the surface subsystem")
	}
	return &plan{dev: d, k: k}, nil
}

// Kernel implements device.Compiled.
func (p *plan) Kernel() kernel.Kernel { return p.k }

// Resources implements device.Compiled: not an FPGA.
func (p *plan) Resources() (fabric.Resources, bool) { return fabric.Resources{}, false }

// FmaxMHz implements device.Compiled: not an FPGA.
func (p *plan) FmaxMHz() (float64, bool) { return 0, false }

// Seconds implements device.Compiled.
func (p *plan) Seconds(e device.Exec) (float64, error) {
	k := p.k
	cfg := p.dev.cfg
	if err := e.Validate(k); err != nil {
		return 0, err
	}
	if need := int64(k.Op.Streams()) * e.ArrayBytes; need > cfg.MemBytes {
		return 0, fmt.Errorf("cpu: %d bytes exceed memory %d", need, cfg.MemBytes)
	}
	elems := e.Elems(k)
	elemB := k.ElemBytes()

	cores := cfg.Cores
	var threadCap float64 // single work-item issue ceiling, 0 = none
	switch k.Loop {
	case kernel.FlatLoop:
		cores, threadCap = 1, cfg.SingleThreadGBps
	case kernel.NestedLoop:
		cores, threadCap = 1, cfg.SingleThreadNestedGBps
	}

	// Memory path: word stream, write-combining coalescer, LLC, DDR3.
	window := uint32(cfg.LLC.LineBytes)
	if elemB > window {
		window = elemB
	}
	totalTxns := device.TxnCount(k.Op, elems, elemB, e.Pattern, window)

	exact := totalTxns <= 2*cfg.SampleWindowTxns
	runner := func(maxTxns uint64) sample.Measurement {
		src, err := device.KernelSource(k.Op, elems, elemB, e.Pattern, window)
		if err != nil {
			return sample.Measurement{}
		}
		bounded := mem.Source(src)
		if maxTxns > 0 {
			bounded = mem.NewLimit(src, int(maxTxns))
			// Sampled windows start cold; they only occur for
			// footprints far beyond the LLC, where cold == steady.
			p.dev.llc.Reset()
		}
		before := p.dev.llc.Stats()
		res := p.dev.mem.Service(cache.NewMissFilter(p.dev.llc, bounded))
		st := p.dev.llc.Stats().Delta(before)

		sec := res.Seconds
		// L3->core line traffic.
		if l3 := float64(st.L1TransferBytes(cfg.LLC.LineBytes)) / (cfg.LLCGBps * 1e9); l3 > sec {
			sec = l3
		}
		// Streaming stores drain through WC buffers.
		if wc := float64(st.BypassBytes) / (cfg.WCWriteGBps * 1e9); wc > sec {
			sec = wc
		}
		// Line-fill-buffer concurrency bounds all DRAM traffic.
		if core := float64(res.Bytes) / (p.dev.coreConcurrencyGBps(cores) * 1e9); core > sec {
			sec = core
		}
		return sample.Measurement{Txns: st.Accesses, Seconds: sec}
	}

	var memSec float64
	if exact {
		memSec = runner(0).Seconds
	} else {
		est, err := sample.Run(runner, totalTxns, cfg.SampleWindowTxns)
		if err != nil {
			return 0, fmt.Errorf("cpu: %s: %w", k.Name(), err)
		}
		memSec = est.Seconds
	}

	sec := memSec
	if threadCap > 0 {
		totalBytes := float64(k.Op.Streams()) * float64(e.ArrayBytes)
		sec = math.Max(sec, totalBytes/(threadCap*1e9))
	}
	return sec, nil
}
