package cpusim

import (
	"testing"

	"mpstream/internal/device"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
	"mpstream/internal/stats"
)

// measure reports best-of-2 bandwidth (STREAM convention: the second run
// sees warm caches) including launch overhead.
func measure(t *testing.T, d *Device, k kernel.Kernel, arrayBytes int64, p mem.Pattern) float64 {
	t.Helper()
	c, err := d.Compile(k)
	if err != nil {
		t.Fatalf("compile %s: %v", k.Name(), err)
	}
	best := 0.0
	for i := 0; i < 2; i++ {
		sec, err := c.Seconds(device.Exec{ArrayBytes: arrayBytes, Pattern: p})
		if err != nil {
			t.Fatalf("seconds %s: %v", k.Name(), err)
		}
		sec += d.LaunchOverheadSeconds()
		if best == 0 || sec < best {
			best = sec
		}
	}
	return float64(k.Op.BytesMoved(arrayBytes)) / best / 1e9
}

func ndCopy(v int) kernel.Kernel {
	return kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: v, Loop: kernel.NDRange}
}

func TestInfo(t *testing.T) {
	d := New()
	info := d.Info()
	if info.ID != "cpu" || info.Kind != device.CPU {
		t.Errorf("info = %+v", info)
	}
	if info.PeakMemGBps < 33 || info.PeakMemGBps > 35 {
		t.Errorf("peak = %v, want ~34 (paper)", info.PeakMemGBps)
	}
	if info.OptimalLoop != kernel.NDRange {
		t.Error("CPU optimal loop management is NDRange")
	}
}

// Figure 1(a)/2, CPU contiguous series.
// Paper: 0.05, 0.19, 0.72, 2.52, 7.44, 18.16, 27.04, 25.24, 25.10, 26.7, 26.7.
func TestContiguousSizeSweep(t *testing.T) {
	d := New()
	paper := []float64{0.05, 0.19, 0.72, 2.52, 7.44, 18.16, 27.04, 25.24, 25.10, 26.7, 26.7}
	var got []float64
	for i := 0; i < 11; i++ {
		d.Reset()
		bw := measure(t, d, ndCopy(1), int64(1024)<<(2*i), mem.ContiguousPattern())
		got = append(got, bw)
		if !stats.WithinFactor(bw, paper[i], 1.45) {
			t.Errorf("size index %d: %.2f GB/s, paper %.2f (factor 1.45 band)", i, bw, paper[i])
		}
	}
	// The 4 MB point (index 6) rides the L3: it must exceed the 16 MB one.
	if got[6] <= got[7] {
		t.Errorf("4 MB (%.2f) must beat 16 MB (%.2f): cache residency", got[6], got[7])
	}
	// DRAM plateau well under peak.
	for i := 7; i < 11; i++ {
		if got[i] > 0.85*d.Info().PeakMemGBps {
			t.Errorf("plateau point %d (%.1f) too close to peak", i, got[i])
		}
	}
}

// Figure 1(b), CPU series: vector width barely matters on a CPU.
// Paper: 32.03, 34.58, 37.04, 34.52, 36.03 (within 15% of each other).
func TestFig1bVectorWidthFlat(t *testing.T) {
	d := New()
	var bws []float64
	for _, v := range kernel.VecWidths() {
		d.Reset()
		bws = append(bws, measure(t, d, ndCopy(v), 4<<20, mem.ContiguousPattern()))
	}
	s, err := stats.Summarize(bws)
	if err != nil {
		t.Fatal(err)
	}
	if s.Max/s.Min > 1.15 {
		t.Errorf("CPU vector sweep must be flat within 15%%: %v", bws)
	}
	// Level: paper's Figure 1(b) shows 32-37; Figure 1(a) shows 27 at the
	// same size. Accept the corridor between them.
	if s.Mean < 20 || s.Mean > 40 {
		t.Errorf("CPU 4 MB copy level = %.1f GB/s, want 20-40", s.Mean)
	}
}

// Figure 2, CPU strided series: interior bump while cache-resident, hard
// fall once the footprint leaves the L3.
// Paper: ~0.04, 0.2, 0.4, 0.8, 3.9, 5.6, 5.3, 0.8, 0.8, 0.7, 0.8.
func TestStridedSweep(t *testing.T) {
	d := New()
	var got []float64
	for i := 0; i < 11; i++ {
		d.Reset()
		got = append(got, measure(t, d, ndCopy(1), int64(1024)<<(2*i), mem.ColMajorPattern()))
	}
	peak := stats.ArgMax(got)
	if peak < 4 || peak > 7 {
		t.Errorf("strided peak at index %d, want interior (cache-resident bump): %v", peak, got)
	}
	// The tail must fall well below the peak once past the L3.
	if got[10] > 0.45*got[peak] {
		t.Errorf("strided tail (%.2f) must fall below peak (%.2f)", got[10], got[peak])
	}
	// Tail level: paper 0.7-0.8; allow a factor-2 corridor.
	if !stats.WithinFactor(got[10], 0.8, 2.0) {
		t.Errorf("1 GB strided = %.2f GB/s, paper 0.8 (factor 2 band)", got[10])
	}
	// Contiguous dominates strided massively at large sizes.
	d.Reset()
	contig := measure(t, d, ndCopy(1), 256<<20, mem.ContiguousPattern())
	if contig < 10*got[9] {
		t.Errorf("contiguous (%.1f) must dominate strided (%.2f) at 256 MB", contig, got[9])
	}
}

// Figure 3: NDRange wins on the CPU; single work-item loops use one core.
func TestFig3LoopManagement(t *testing.T) {
	d := New()
	bw := map[kernel.LoopMode]float64{}
	for _, lm := range kernel.LoopModes() {
		k := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: lm}
		d.Reset()
		bw[lm] = measure(t, d, k, 4<<20, mem.ContiguousPattern())
	}
	if bw[kernel.NDRange] < 4*bw[kernel.FlatLoop] {
		t.Errorf("ndrange (%.1f) must dominate single-core flat (%.2f)", bw[kernel.NDRange], bw[kernel.FlatLoop])
	}
	if bw[kernel.FlatLoop] <= bw[kernel.NestedLoop] {
		t.Errorf("flat (%.2f) should edge out nested (%.2f)", bw[kernel.FlatLoop], bw[kernel.NestedLoop])
	}
	if bw[kernel.FlatLoop] < 2 || bw[kernel.FlatLoop] > 5 {
		t.Errorf("single-core flat = %.2f GB/s, want a few GB/s", bw[kernel.FlatLoop])
	}
}

// Figure 4(a): all four kernels memory-bound.
func TestAllKernelsMemoryBound(t *testing.T) {
	d := New()
	bws := map[kernel.Op]float64{}
	for _, op := range kernel.Ops() {
		d.Reset()
		bws[op] = measure(t, d, kernel.New(op), 16<<20, mem.ContiguousPattern())
	}
	for _, op := range kernel.Ops() {
		if !stats.WithinFactor(bws[op], bws[kernel.Copy], 1.35) {
			t.Errorf("%v (%.1f) must track copy (%.1f)", op, bws[op], bws[kernel.Copy])
		}
	}
}

func TestWarmCacheBeatsCold(t *testing.T) {
	d := New()
	d.Reset()
	c, err := d.Compile(ndCopy(1))
	if err != nil {
		t.Fatal(err)
	}
	e := device.Exec{ArrayBytes: 2 << 20, Pattern: mem.ContiguousPattern()}
	cold, err := c.Seconds(e)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Seconds(e)
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Errorf("warm run (%.3g s) must beat cold run (%.3g s) for a cache-resident array", warm, cold)
	}
}

func TestNonTemporalStoresAvoidRFO(t *testing.T) {
	// With streaming stores, 64 MB copy must beat the 2/3 ceiling that
	// read-for-ownership traffic would impose.
	d := New()
	d.Reset()
	bw := measure(t, d, ndCopy(1), 64<<20, mem.ContiguousPattern())
	rfoCeiling := 2.0 / 3.0 * 0.8 * d.Info().PeakMemGBps
	if bw < rfoCeiling {
		t.Errorf("copy (%.1f GB/s) below the RFO ceiling (%.1f): NT stores not effective", bw, rfoCeiling)
	}
}

func TestDoubleMatchesInt(t *testing.T) {
	d := New()
	d.Reset()
	i32 := measure(t, d, ndCopy(1), 16<<20, mem.ContiguousPattern())
	d.Reset()
	f64 := measure(t, d, kernel.Kernel{Op: kernel.Copy, Type: kernel.Float64, VecWidth: 1, Loop: kernel.NDRange},
		16<<20, mem.ContiguousPattern())
	if !stats.WithinFactor(f64, i32, 1.1) {
		t.Errorf("double copy (%.1f) must match int copy (%.1f): both memory-bound", f64, i32)
	}
}

func TestCompileTolerant(t *testing.T) {
	d := New()
	k := ndCopy(1)
	k.Attrs.NumComputeUnits = 8
	if _, err := d.Compile(k); err != nil {
		t.Errorf("CPU must ignore AOCL attributes: %v", err)
	}
	if _, err := d.Compile(kernel.Kernel{Op: kernel.Copy, VecWidth: 9, Loop: kernel.NDRange}); err == nil {
		t.Error("invalid kernel accepted")
	}
}

func TestSecondsErrors(t *testing.T) {
	d := New()
	c, err := d.Compile(ndCopy(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Seconds(device.Exec{ArrayBytes: 1023, Pattern: mem.ContiguousPattern()}); err == nil {
		t.Error("non-multiple array bytes accepted")
	}
	if _, err := c.Seconds(device.Exec{ArrayBytes: 48 << 30, Pattern: mem.ContiguousPattern()}); err == nil {
		t.Error("arrays exceeding memory accepted")
	}
}

func TestPlanMetadata(t *testing.T) {
	d := New()
	c, err := d.Compile(ndCopy(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Resources(); ok {
		t.Error("CPU must not report FPGA resources")
	}
	if _, ok := c.FmaxMHz(); ok {
		t.Error("CPU must not report fmax")
	}
	if c.Kernel().VecWidth != 2 {
		t.Error("plan must report its kernel")
	}
}

func TestSampledLargeRunConsistent(t *testing.T) {
	d := New()
	d.Reset()
	a := measure(t, d, ndCopy(1), 256<<20, mem.ContiguousPattern())
	d.Reset()
	b := measure(t, d, ndCopy(1), 1<<30, mem.ContiguousPattern())
	if !stats.WithinFactor(a, b, 1.05) {
		t.Errorf("plateau bandwidths diverge: 256MB %.2f vs 1GB %.2f", a, b)
	}
}
