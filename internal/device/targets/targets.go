// Package targets assembles the paper's four benchmark devices into a
// registry, in the order the figures use: aocl, sdaccel, cpu, gpu.
package targets

import (
	"mpstream/internal/device"
	"mpstream/internal/device/aocl"
	"mpstream/internal/device/cpusim"
	"mpstream/internal/device/gpusim"
	"mpstream/internal/device/sdaccel"
)

// IDs lists the target ids in figure order.
func IDs() []string { return []string{"aocl", "sdaccel", "cpu", "gpu"} }

// All returns fresh instances of the four paper targets in figure order.
// Instances carry warm state (CPU LLC, GPU L2) across kernel invocations,
// exactly as hardware does; call Reset between unrelated experiments.
func All() []device.Device {
	return []device.Device{aocl.New(), sdaccel.New(), cpusim.New(), gpusim.New()}
}

// ByID returns a fresh instance of one target.
func ByID(id string) (device.Device, error) {
	return device.ByID(All(), id)
}
