package targets

import (
	"testing"

	"mpstream/internal/kernel"
)

func TestAllOrder(t *testing.T) {
	devs := All()
	if len(devs) != 4 {
		t.Fatalf("got %d targets, want 4", len(devs))
	}
	for i, id := range IDs() {
		if devs[i].Info().ID != id {
			t.Errorf("target %d = %q, want %q", i, devs[i].Info().ID, id)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range IDs() {
		d, err := ByID(id)
		if err != nil {
			t.Fatalf("ByID(%q): %v", id, err)
		}
		if d.Info().ID != id {
			t.Errorf("ByID(%q) returned %q", id, d.Info().ID)
		}
	}
	if _, err := ByID("tpu"); err == nil {
		t.Error("unknown id must error")
	}
}

// The paper's peak-bandwidth table (Section IV).
func TestPeakBandwidthTable(t *testing.T) {
	want := map[string][2]float64{
		"cpu":     {33, 35},   // "34 GB/s Peak BW"
		"gpu":     {336, 336}, // "336 GB/s Peak BW"
		"aocl":    {25, 26},   // "25 GB/s Peak BW"
		"sdaccel": {10, 10.7}, // "10 GB/s Peak BW"
	}
	for _, d := range All() {
		info := d.Info()
		band, ok := want[info.ID]
		if !ok {
			t.Fatalf("unexpected target %q", info.ID)
		}
		if info.PeakMemGBps < band[0] || info.PeakMemGBps > band[1] {
			t.Errorf("%s peak = %.1f, want in [%.1f, %.1f]", info.ID, info.PeakMemGBps, band[0], band[1])
		}
	}
}

// All targets compile the baseline kernels.
func TestAllTargetsCompileDefaults(t *testing.T) {
	for _, d := range All() {
		for _, op := range kernel.Ops() {
			k := kernel.New(op)
			k.Loop = d.Info().OptimalLoop
			if _, err := d.Compile(k); err != nil {
				t.Errorf("%s: compile %s: %v", d.Info().ID, k.Name(), err)
			}
		}
	}
}
