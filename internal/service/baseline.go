package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mpstream/internal/baseline"
	"mpstream/internal/cluster"
	"mpstream/internal/core"
	"mpstream/internal/obs"
	"mpstream/internal/runstate"
	"mpstream/internal/sim/mem"
	"mpstream/internal/surface"
)

// ErrNoBaseline is wrapped by baseline lookups for unknown names; the
// HTTP layer maps it to 404.
var ErrNoBaseline = errors.New("service: unknown baseline")

// BaselineRequest is the POST /v1/baselines body (the service-side
// twin of cluster.BaselineRequest): register a named reference sourced
// from a finished job (FromJob), an inline run result, or an inline
// surface — exactly one. Config/SurfaceConfig optionally override the
// configuration carried by the payload; Target defaults to the source
// job's target.
type BaselineRequest struct {
	Name          string             `json:"name"`
	Target        string             `json:"target"`
	Config        *core.Config       `json:"config,omitempty"`
	SurfaceConfig *surface.Config    `json:"surface_config,omitempty"`
	Result        *core.Result       `json:"result,omitempty"`
	Surface       *surface.Surface   `json:"surface,omitempty"`
	FromJob       string             `json:"from_job,omitempty"`
	Tolerance     baseline.Tolerance `json:"tolerance,omitzero"`
}

// CheckRequest is the POST /v1/check body: re-measure the named
// baseline's configuration and verdict the drift.
type CheckRequest struct {
	Name string `json:"name"`
	// Tolerance overrides the stored bands for this check only; zero
	// fields inherit the entry's stored values.
	Tolerance *baseline.Tolerance `json:"tolerance,omitempty"`
	Async     bool                `json:"async,omitempty"`
	TimeoutMS int64               `json:"timeout_ms,omitempty"`
}

// BaselineView pairs a stored entry with its latest check verdict (nil
// until the first check since this process started — verdicts are
// monitor state, not part of the durable entry).
type BaselineView struct {
	baseline.Entry
	LastCheck *baseline.Report `json:"last_check,omitempty"`
}

// RecordBaseline registers (or re-records, preserving Created) a named
// baseline from the request's single source and returns the stored
// entry.
func (s *Server) RecordBaseline(req BaselineRequest) (baseline.Entry, error) {
	if err := baseline.ValidateName(req.Name); err != nil {
		return baseline.Entry{}, err
	}
	res, surf, target := req.Result, req.Surface, req.Target
	if req.FromJob != "" {
		if res != nil || surf != nil {
			return baseline.Entry{}, errors.New("service: baseline needs exactly one source (from_job, result or surface)")
		}
		j, ok := s.jobs.get(req.FromJob)
		if !ok {
			return baseline.Entry{}, fmt.Errorf("service: unknown job %q", req.FromJob)
		}
		v := j.Snapshot()
		if v.Status != StatusDone {
			return baseline.Entry{}, fmt.Errorf("service: job %s is %s; baselines record done jobs only", v.ID, v.Status)
		}
		switch {
		case v.Result != nil:
			res = v.Result
		case v.Surface != nil:
			surf = v.Surface
		default:
			return baseline.Entry{}, fmt.Errorf("service: job %s (%s) carries no run result or surface", v.ID, v.Kind)
		}
		if target == "" {
			target = v.Target
		}
	}
	if (res != nil) == (surf != nil) {
		return baseline.Entry{}, errors.New("service: baseline needs exactly one source (from_job, result or surface)")
	}
	if target == "" {
		return baseline.Entry{}, errors.New("service: baseline needs a target (or a from_job to inherit it from)")
	}
	if _, err := s.checkTarget(target); err != nil {
		return baseline.Entry{}, err
	}
	if err := req.Tolerance.Validate(); err != nil {
		return baseline.Entry{}, err
	}
	now := time.Now().UTC()
	e := baseline.Entry{
		Name:      req.Name,
		Target:    target,
		Tolerance: req.Tolerance.WithDefaults(),
		Created:   now,
		Updated:   now,
	}
	if res != nil {
		cfg := res.Config
		if req.Config != nil {
			cfg = *req.Config
		}
		cfg = cfg.Canonical()
		if err := cfg.Validate(); err != nil {
			return baseline.Entry{}, err
		}
		e.Kind = baseline.KindRun
		e.Config = &cfg
		e.Fingerprint = cfg.Fingerprint(target)
		e.Reference = baseline.FromResult(res)
	} else {
		if surf.Stopped != "" {
			return baseline.Entry{}, fmt.Errorf("service: surface is partial (stopped: %s); baselines record complete measurements only", surf.Stopped)
		}
		scfg := surf.Config
		if req.SurfaceConfig != nil {
			scfg = *req.SurfaceConfig
		}
		scfg = scfg.WithDefaults()
		if err := scfg.Validate(); err != nil {
			return baseline.Entry{}, err
		}
		e.Kind = baseline.KindSurface
		e.SurfaceConfig = &scfg
		e.Fingerprint = surfaceFingerprint(target, scfg, 0, scfg.CurveCount())
		e.Reference = baseline.FromSurface(surf)
	}
	if old, ok, err := s.opts.Baselines.Get(req.Name); err == nil && ok {
		e.Created = old.Created
	}
	if err := s.opts.Baselines.Put(e); err != nil {
		return baseline.Entry{}, err
	}
	s.log.Info("baseline recorded", "baseline", e.Name, "kind", e.Kind,
		"target", e.Target, "fingerprint", e.Fingerprint)
	return e, nil
}

// Baselines lists stored entries, each with its latest check verdict.
func (s *Server) Baselines() ([]BaselineView, error) {
	entries, err := s.opts.Baselines.List()
	if err != nil {
		return nil, err
	}
	views := make([]BaselineView, len(entries))
	s.checkMu.Lock()
	for i, e := range entries {
		views[i] = BaselineView{Entry: e}
		if rep, ok := s.checkState[e.Name]; ok {
			r := rep
			views[i].LastCheck = &r
		}
	}
	s.checkMu.Unlock()
	return views, nil
}

// Baseline looks one entry up with its latest check verdict.
func (s *Server) Baseline(name string) (BaselineView, error) {
	e, ok, err := s.opts.Baselines.Get(name)
	if err != nil {
		return BaselineView{}, err
	}
	if !ok {
		return BaselineView{}, fmt.Errorf("%w %q", ErrNoBaseline, name)
	}
	v := BaselineView{Entry: e}
	s.checkMu.Lock()
	if rep, ok := s.checkState[name]; ok {
		r := rep
		v.LastCheck = &r
	}
	s.checkMu.Unlock()
	return v, nil
}

// DeleteBaseline removes a stored entry and its monitor state.
func (s *Server) DeleteBaseline(name string) error {
	ok, err := s.opts.Baselines.Delete(name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w %q", ErrNoBaseline, name)
	}
	s.checkMu.Lock()
	delete(s.checkState, name)
	s.checkMu.Unlock()
	s.log.Info("baseline deleted", "baseline", name)
	return nil
}

// mergeTolerance overlays the nonzero fields of an override onto the
// entry's stored bands (zero = inherit; negative = disable a family).
func mergeTolerance(base baseline.Tolerance, o baseline.Tolerance) baseline.Tolerance {
	if o.GBpsFrac != 0 {
		base.GBpsFrac = o.GBpsFrac
	}
	if o.NsFrac != 0 {
		base.NsFrac = o.NsFrac
	}
	if o.KneeFrac != 0 {
		base.KneeFrac = o.KneeFrac
	}
	if o.RungFrac != 0 {
		base.RungFrac = o.RungFrac
	}
	if o.WarnFrac != 0 {
		base.WarnFrac = o.WarnFrac
	}
	return base
}

// SubmitCheck validates and enqueues a re-measurement of the named
// baseline's configuration. The entry is snapshotted at submit time, so
// a concurrent re-record or delete never changes what a queued check
// compares against. Checks deliberately bypass the result and surface
// caches — the whole point of a check is a fresh measurement.
func (s *Server) SubmitCheck(ctx context.Context, name string, tol *baseline.Tolerance, timeout time.Duration) (*Job, error) {
	e, ok, err := s.opts.Baselines.Get(name)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoBaseline, name)
	}
	if _, err := s.checkTarget(e.Target); err != nil {
		return nil, err
	}
	timeout, err = s.clampTimeout(timeout)
	if err != nil {
		return nil, err
	}
	resolved := e.Tolerance
	if tol != nil {
		if err := tol.Validate(); err != nil {
			return nil, err
		}
		resolved = mergeTolerance(resolved, *tol)
	}
	j := s.jobs.add(KindCheck, e.Target, timeout, traceFor(ctx), spanParentFor(ctx))
	j.mu.Lock()
	j.bentry = e
	j.btol = resolved
	j.view.Fingerprint = e.Fingerprint
	j.mu.Unlock()
	if err := s.enqueue(j); err != nil {
		return nil, err
	}
	return j, nil
}

// executeCheck re-measures a baseline's configuration — across the
// fleet when a coordinator with alive workers is attached, locally
// otherwise — and verdicts the fresh measurement against the stored
// reference. A canceled or deadline-expired surface check still
// verdicts the rungs it measured (a Partial report); a run check is one
// evaluation unit and stops without a verdict. A fail verdict is a
// successfully *completed* check: the job lands in done and the CLI
// exit code, metrics and alert feed carry the severity.
func (s *Server) executeCheck(ctx context.Context, j *Job) {
	switch j.bentry.Kind {
	case baseline.KindRun:
		s.executeCheckRun(ctx, j)
	case baseline.KindSurface:
		s.executeCheckSurface(ctx, j)
	default:
		j.finish(StatusFailed, func(v *View) {
			v.Error = fmt.Sprintf("baseline %q has unknown kind %q", j.bentry.Name, j.bentry.Kind)
		})
	}
}

func (s *Server) executeCheckRun(ctx context.Context, j *Job) {
	snap := j.Snapshot()
	e := j.bentry
	j.prog.SetTotal(1)
	j.prog.SetPhase("check:run")
	var res *core.Result
	if fl := s.opts.Cluster; fl != nil && fl.HasWorkers(snap.Target) {
		rctx, sp := obs.StartSpan(ctx, "check.eval", "baseline", e.Name, "remote", "true")
		r, err := fl.Eval(rctx, snap.Target, *e.Config, snap.TimeoutMS)
		sp.End()
		switch {
		case err == nil:
			res = r
		case errors.Is(err, cluster.ErrUnavailable):
			// Fleet drained mid-check: fall through to local measurement.
		default:
			if st := runstate.FromErr(err); st != "" || runstate.FromContext(ctx) != "" {
				j.finishStopped(st, nil)
				return
			}
			j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
			return
		}
	}
	if res == nil {
		dev, err := s.opts.NewDevice(snap.Target)
		if err != nil {
			j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
			return
		}
		rctx, sp := obs.StartSpan(ctx, "check.eval", "baseline", e.Name)
		res, err = core.RunContext(rctx, dev, *e.Config)
		sp.End()
		if err != nil {
			// A single run is one evaluation unit: a canceled check has
			// nothing measured, so there is no partial verdict.
			if st := runstate.FromErr(err); st != "" {
				j.finishStopped(st, nil)
				return
			}
			j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
			return
		}
	}
	j.prog.Step(1)
	j.prog.Observe(maxKernelGBps(res))
	j.publishPoint(PointEvent{Label: "check:" + e.Name, GBps: maxKernelGBps(res), Feasible: true})
	rep := s.verdict(j, baseline.FromResult(res), false)
	j.finish(StatusDone, func(v *View) {
		v.Check = &rep
		v.Result = res
	})
}

func (s *Server) executeCheckSurface(ctx context.Context, j *Job) {
	snap := j.Snapshot()
	e := j.bentry
	scfg := *e.SurfaceConfig
	j.prog.SetTotal(scfg.Points())
	j.prog.SetPhase("check:surface")
	var res *surface.Surface
	if fl := s.opts.Cluster; fl != nil && fl.HasWorkers(snap.Target) {
		spec := cluster.SurfaceSpec{Target: snap.Target, Config: scfg, TimeoutMS: snap.TimeoutMS}
		fres, stopped, err := fl.Surface(ctx, spec, s.fleetHooks(j))
		switch {
		case err != nil && errors.Is(err, cluster.ErrUnavailable) && stopped == "":
			// Fall through to local measurement.
		case err != nil && stopped != "":
			// Canceled before any shard landed: nothing measured, no verdict.
			j.finishStopped(stopped, nil)
			return
		case err != nil:
			j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
			return
		default:
			res = fres
		}
	}
	if res == nil {
		dev, err := s.opts.NewDevice(snap.Target)
		if err != nil {
			j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
			return
		}
		observe := func(pat mem.Pattern, readFrac float64, p surface.Point) {
			j.prog.Step(1)
			j.prog.Observe(p.AchievedGBps)
			j.publishPoint(PointEvent{
				Label:     fmt.Sprintf("%s/r%.2g@%.2g", surface.PatternLabel(pat), readFrac, p.Rate),
				GBps:      p.AchievedGBps,
				Feasible:  true,
				LatencyNs: p.LatencyNs,
			})
		}
		res, err = core.RunSurfaceShard(ctx, dev, scfg, 0, scfg.CurveCount(), observe)
		if err != nil {
			j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
			return
		}
	}
	if res.Stopped != "" {
		// Canceled or deadlined mid-ladder: verdict the measured subset
		// as a partial report — missing reference rungs are skipped, not
		// failed — and land in canceled like every other partial job.
		rep := s.verdict(j, baseline.FromSurface(res), true)
		j.finishStopped(res.Stopped, func(v *View) {
			v.Check = &rep
			v.Surface = res
		})
		return
	}
	rep := s.verdict(j, baseline.FromSurface(res), false)
	j.finish(StatusDone, func(v *View) {
		v.Check = &rep
		v.Surface = res
	})
}

// verdict compares a check's fresh measurement against its baseline —
// applying the drift-injection perturbation first, when configured —
// and records the outcome in the monitor state, metric families, log
// and (for non-pass verdicts) the alert feed.
func (s *Server) verdict(j *Job, measured baseline.Reference, partial bool) baseline.Report {
	if f := s.opts.CheckPerturb; f > 0 && f != 1 {
		measured = measured.Scale(f)
	}
	rep := baseline.Compare(j.bentry, measured, j.btol, partial)
	s.recordCheck(j.ID(), rep)
	return rep
}

func (s *Server) recordCheck(jobID string, rep baseline.Report) {
	if s.reg != nil {
		s.reg.Counter("mpstream_baseline_checks_total",
			"Baseline drift checks completed, by verdict.",
			"verdict", rep.Verdict).Inc()
	}
	s.checkMu.Lock()
	s.checkState[rep.Baseline] = rep
	s.checkMu.Unlock()
	if rep.Verdict == baseline.VerdictPass {
		s.log.Info("baseline check passed", "baseline", rep.Baseline, "job", jobID,
			"drift_ratio", rep.DriftRatio, "partial", rep.Partial)
		return
	}
	s.log.Warn("baseline drift detected", "baseline", rep.Baseline, "job", jobID,
		"verdict", rep.Verdict, "drift_ratio", rep.DriftRatio,
		"violations", len(rep.Violations), "partial", rep.Partial)
	s.alerts.publish(Alert{Job: jobID, Report: rep})
}

// sentinel is the scheduled re-check loop: every interval it submits
// one check per registered baseline through the ordinary job queue (so
// sentinel checks share workers, events, spans and fleet distribution
// with user-submitted ones), skipping baselines whose previous
// sentinel check is still in flight.
func (s *Server) sentinel(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.sentinelTick()
		}
	}
}

func (s *Server) sentinelTick() {
	entries, err := s.opts.Baselines.List()
	if err != nil {
		s.log.Warn("sentinel: listing baselines failed", "error", err)
		return
	}
	for _, e := range entries {
		s.checkMu.Lock()
		busy := s.checkInflight[e.Name]
		if !busy {
			s.checkInflight[e.Name] = true
		}
		s.checkMu.Unlock()
		if busy {
			continue
		}
		j, err := s.SubmitCheck(context.Background(), e.Name, nil, 0)
		if err != nil {
			s.checkMu.Lock()
			delete(s.checkInflight, e.Name)
			s.checkMu.Unlock()
			s.log.Warn("sentinel: check submission failed", "baseline", e.Name, "error", err)
			continue
		}
		go func(name string, j *Job) {
			<-j.Done()
			s.checkMu.Lock()
			delete(s.checkInflight, name)
			s.checkMu.Unlock()
		}(e.Name, j)
	}
}

// Alert is one NDJSON record of GET /v1/baselines/alerts: a non-pass
// check verdict, in emission order.
type Alert struct {
	// Seq numbers alerts server-wide, starting at 1; gaps on a live
	// stream mean the bounded history dropped records.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Job is the check job that produced the verdict.
	Job    string          `json:"job,omitempty"`
	Report baseline.Report `json:"report"`
}

// maxAlertHistory bounds the replayable alert backlog.
const maxAlertHistory = 256

// alertLog is the server-wide bounded publish/subscribe feed of
// non-pass verdicts — the eventLog pattern, minus the per-job scoping.
type alertLog struct {
	mu      sync.Mutex
	seq     uint64
	history []Alert
	subs    map[chan Alert]struct{}
}

func (l *alertLog) publish(a Alert) {
	l.mu.Lock()
	l.seq++
	a.Seq = l.seq
	a.Time = time.Now().UTC()
	l.history = append(l.history, a)
	if len(l.history) > maxAlertHistory {
		l.history = l.history[len(l.history)-maxAlertHistory:]
	}
	for ch := range l.subs {
		select {
		case ch <- a:
		default: // slow subscriber: drop, the Seq gap tells the story
		}
	}
	l.mu.Unlock()
}

func (l *alertLog) subscribe() (backlog []Alert, ch <-chan Alert) {
	c := make(chan Alert, subscriberBuffer)
	l.mu.Lock()
	backlog = append([]Alert(nil), l.history...)
	if l.subs == nil {
		l.subs = make(map[chan Alert]struct{})
	}
	l.subs[c] = struct{}{}
	l.mu.Unlock()
	return backlog, c
}

func (l *alertLog) unsubscribe(ch <-chan Alert) {
	l.mu.Lock()
	for c := range l.subs {
		if c == ch {
			delete(l.subs, c)
			break
		}
	}
	l.mu.Unlock()
}

// Alerts returns the retained non-pass verdicts, oldest first.
func (s *Server) Alerts() []Alert {
	backlog, ch := s.alerts.subscribe()
	s.alerts.unsubscribe(ch)
	return backlog
}
