package service_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"mpstream/internal/baseline"
	"mpstream/internal/runstate"
	"mpstream/internal/service"
)

func recordRunBaseline(t *testing.T, e *testEnv, name, target string) baseline.Entry {
	t.Helper()
	_, data := e.post(t, "/v1/run", service.RunRequest{Target: target, Config: ptr(smallConfig())})
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("measurement job = %+v", job)
	}
	resp, data := e.post(t, "/v1/baselines", service.BaselineRequest{Name: name, FromJob: job.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("record baseline: status %d: %s", resp.StatusCode, data)
	}
	var br service.BaselineResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	return br.Baseline.Entry
}

// TestBaselineRecordAndCheckPass: record a run baseline from a finished
// job, re-check it on the same deterministic simulator, and read the
// pass verdict back through every surface: the job view, the baseline
// view, and /v1/metrics. The check must re-measure, not answer from
// the result cache.
func TestBaselineRecordAndCheckPass(t *testing.T) {
	e := newEnv(t, service.Options{})
	entry := recordRunBaseline(t, e, "cpu-run", "cpu")
	if entry.Kind != baseline.KindRun || entry.Target != "cpu" || entry.Fingerprint == "" {
		t.Fatalf("entry = %+v", entry)
	}
	if len(entry.Reference.Kernels) == 0 {
		t.Fatal("entry carries no kernel references")
	}

	before := e.compiles.Load()
	resp, data := e.post(t, "/v1/check", service.CheckRequest{Name: "cpu-run"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Kind != service.KindCheck {
		t.Fatalf("check job = %+v", job)
	}
	if job.Check == nil {
		t.Fatal("check job carries no report")
	}
	if job.Check.Verdict != baseline.VerdictPass {
		t.Errorf("verdict = %q, violations %v", job.Check.Verdict, job.Check.Violations)
	}
	if job.Check.DriftRatio != 0 {
		t.Errorf("identical re-measurement drift ratio = %g, want 0", job.Check.DriftRatio)
	}
	if job.Fingerprint != entry.Fingerprint {
		t.Errorf("check fingerprint %q != entry fingerprint %q", job.Fingerprint, entry.Fingerprint)
	}
	if e.compiles.Load() == before {
		t.Error("check answered without re-measuring (cache must be bypassed)")
	}
	names := map[string]bool{}
	for _, m := range job.Check.Metrics {
		names[m.Name] = true
	}
	if !names["gbps[copy]"] || !names["ns[copy]"] {
		t.Errorf("metrics missing kernel families: %v", names)
	}

	// The baseline view carries the latest verdict.
	resp, data = e.get(t, "/v1/baselines/cpu-run")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get baseline: status %d", resp.StatusCode)
	}
	var bv service.BaselineResponse
	if err := json.Unmarshal(data, &bv); err != nil {
		t.Fatal(err)
	}
	if bv.Baseline.LastCheck == nil || bv.Baseline.LastCheck.Verdict != baseline.VerdictPass {
		t.Errorf("baseline view last_check = %+v", bv.Baseline.LastCheck)
	}

	_, data = e.get(t, "/v1/metrics")
	if !strings.Contains(string(data), `mpstream_baseline_checks_total{verdict="pass"} 1`) {
		t.Error("pass verdict not visible in /v1/metrics")
	}
	if !strings.Contains(string(data), `mpstream_baseline_drift_ratio{baseline="cpu-run"}`) {
		t.Error("drift-ratio gauge missing from /v1/metrics")
	}

	// Delete ends the monitoring; later lookups and checks 404.
	req, _ := http.NewRequest(http.MethodDelete, e.ts.URL+"/v1/baselines/cpu-run", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	resp, _ = e.get(t, "/v1/baselines/cpu-run")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get deleted baseline: status %d, want 404", resp.StatusCode)
	}
	resp, _ = e.post(t, "/v1/check", service.CheckRequest{Name: "cpu-run"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("check deleted baseline: status %d, want 404", resp.StatusCode)
	}
}

// TestCheckDriftFailsAcrossRestart: a baseline recorded through one
// server survives in the DirStore and, re-opened by a second server
// configured with a perturbation drill, produces a fail verdict naming
// the violated metrics — visible in the report, the metrics endpoint
// and the alerts feed.
func TestCheckDriftFailsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	store1, warns, err := baseline.OpenDirStore(dir)
	if err != nil || len(warns) > 0 {
		t.Fatalf("open store: %v %v", err, warns)
	}
	e1 := newEnv(t, service.Options{Baselines: store1})
	recordRunBaseline(t, e1, "drifty", "cpu")
	e1.ts.Close()
	e1.srv.Close()

	store2, warns, err := baseline.OpenDirStore(dir)
	if err != nil || len(warns) > 0 {
		t.Fatalf("reopen store: %v %v", err, warns)
	}
	e2 := newEnv(t, service.Options{Baselines: store2, CheckPerturb: 0.8})
	resp, data := e2.get(t, "/v1/baselines")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var lr service.BaselinesResponse
	if err := json.Unmarshal(data, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Baselines) != 1 || lr.Baselines[0].Name != "drifty" {
		t.Fatalf("restarted server lost the baseline: %+v", lr.Baselines)
	}

	_, data = e2.post(t, "/v1/check", service.CheckRequest{Name: "drifty"})
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Check == nil {
		t.Fatalf("check job = %+v", job)
	}
	rep := job.Check
	if rep.Verdict != baseline.VerdictFail {
		t.Fatalf("verdict = %q, want fail", rep.Verdict)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("fail verdict carries no violations")
	}
	if !strings.Contains(rep.Violations[0], "margin") {
		t.Errorf("violation does not name its margin: %q", rep.Violations[0])
	}
	var sawGBps bool
	for _, m := range rep.Metrics {
		if m.Name == "gbps[copy]" {
			sawGBps = true
			if m.Verdict != baseline.VerdictFail || m.Margin <= 0 {
				t.Errorf("gbps[copy] = %+v, want fail with positive margin", m)
			}
		}
	}
	if !sawGBps {
		t.Error("report does not cover gbps[copy]")
	}
	if rep.DriftRatio <= 1 {
		t.Errorf("drift ratio = %g, want > 1", rep.DriftRatio)
	}

	_, data = e2.get(t, "/v1/metrics")
	if !strings.Contains(string(data), `mpstream_baseline_checks_total{verdict="fail"} 1`) {
		t.Error("fail verdict not visible in /v1/metrics")
	}

	// The alert feed replays the non-pass verdict as NDJSON.
	resp, data = e2.get(t, "/v1/baselines/alerts")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alerts: status %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 {
		t.Fatalf("alerts = %d lines, want 1: %s", len(lines), data)
	}
	var alert service.Alert
	if err := json.Unmarshal([]byte(lines[0]), &alert); err != nil {
		t.Fatal(err)
	}
	if alert.Seq != 1 || alert.Job != job.ID || alert.Report.Verdict != baseline.VerdictFail {
		t.Errorf("alert = %+v", alert)
	}

	// A tolerance override that disables every band turns the same
	// drifted measurement into a pass with no judged metrics.
	_, data = e2.post(t, "/v1/check", service.CheckRequest{
		Name:      "drifty",
		Tolerance: &baseline.Tolerance{GBpsFrac: -1, NsFrac: -1, KneeFrac: -1, RungFrac: -1},
	})
	job = decodeJob(t, data)
	if job.Check == nil || job.Check.Verdict != baseline.VerdictPass || len(job.Check.Metrics) != 0 {
		t.Errorf("band-disabled check = %+v", job.Check)
	}
}

// TestCheckSurfacePartialVerdict: a surface check that hits its
// deadline mid-ladder still verdicts the rungs it measured, tagged
// partial, and lands canceled like every other partial job.
func TestCheckSurfacePartialVerdict(t *testing.T) {
	e := surfEnv(t, service.Options{Workers: 1})
	// Record the full default gpu surface (large enough that a 40ms
	// deadline expires mid-ladder on the re-check).
	_, data := e.post(t, "/v1/surface", service.SurfaceRequest{Target: "gpu"})
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("surface job = %+v", job)
	}
	resp, data := e.post(t, "/v1/baselines", service.BaselineRequest{Name: "gpu-surface", FromJob: job.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("record: status %d: %s", resp.StatusCode, data)
	}

	_, data = e.post(t, "/v1/check", service.CheckRequest{Name: "gpu-surface", TimeoutMS: 40})
	job = decodeJob(t, data)
	switch job.Status {
	case service.StatusCanceled:
		if job.StopReason != runstate.Deadline {
			t.Errorf("stop_reason = %q", job.StopReason)
		}
		if job.Check == nil {
			t.Fatal("partial check carries no report")
		}
		if !job.Check.Partial {
			t.Error("report of a deadlined check must be tagged partial")
		}
		if job.Check.Verdict != baseline.VerdictPass {
			t.Errorf("identical partial re-measurement verdict = %q, violations %v",
				job.Check.Verdict, job.Check.Violations)
		}
		if job.Surface == nil || job.Surface.Stopped != runstate.Deadline {
			t.Errorf("partial surface missing its stopped tag: %+v", job.Surface)
		}
	case service.StatusDone:
		// A very fast machine can finish the ladder inside the deadline;
		// the partial path just was not exercised.
		t.Log("check finished inside the deadline; partial path not exercised")
	default:
		t.Fatalf("check job = status %q error %q", job.Status, job.Error)
	}
}

// TestCheckSurfacePass: a full surface re-check on the deterministic
// simulator reproduces the reference exactly, covering the knee, idle
// latency and per-rung families.
func TestCheckSurfacePass(t *testing.T) {
	e := surfEnv(t, service.Options{})
	cfg := smallSurface()
	_, data := e.post(t, "/v1/surface", service.SurfaceRequest{Target: "gpu", Config: &cfg})
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("surface job = %+v", job)
	}
	resp, data := e.post(t, "/v1/baselines", service.BaselineRequest{Name: "gpu-small", FromJob: job.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("record: status %d: %s", resp.StatusCode, data)
	}
	_, data = e.post(t, "/v1/check", service.CheckRequest{Name: "gpu-small"})
	job = decodeJob(t, data)
	if job.Status != service.StatusDone || job.Check == nil {
		t.Fatalf("check job = %+v", job)
	}
	if job.Check.Verdict != baseline.VerdictPass || job.Check.Partial {
		t.Errorf("report = verdict %q partial %v, violations %v",
			job.Check.Verdict, job.Check.Partial, job.Check.Violations)
	}
	families := map[string]bool{}
	for _, m := range job.Check.Metrics {
		name, _, _ := strings.Cut(m.Name, "[")
		families[name] = true
	}
	for _, want := range []string{"knee.gbps", "knee.rate", "idle.ns", "rung.gbps"} {
		if !families[want] {
			t.Errorf("family %s missing from report (got %v)", want, families)
		}
	}
}

// TestCheckEventReplay: a subscriber arriving after a check finished
// still gets the full NDJSON stream, ending in a result event that
// embeds the report.
func TestCheckEventReplay(t *testing.T) {
	e := newEnv(t, service.Options{})
	recordRunBaseline(t, e, "replay", "cpu")
	_, data := e.post(t, "/v1/check", service.CheckRequest{Name: "replay"})
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("check job = %+v", job)
	}

	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []service.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line: %v\n%s", err, sc.Text())
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("replay = %d events, want at least state+point+result", len(events))
	}
	var sawPoint bool
	for _, ev := range events {
		if ev.Type == service.EventPoint && ev.Point != nil && ev.Point.Label == "check:replay" {
			sawPoint = true
		}
	}
	if !sawPoint {
		t.Error("replay missing the check's point event")
	}
	last := events[len(events)-1]
	if last.Type != service.EventResult || last.Result == nil {
		t.Fatalf("last event = %+v, want the result", last)
	}
	if last.Result.Check == nil || last.Result.Check.Verdict != baseline.VerdictPass {
		t.Errorf("result event check = %+v", last.Result.Check)
	}
}

// TestSentinel: with -check-interval the server re-checks registered
// baselines on its own, and the verdicts land in the monitor state.
func TestSentinel(t *testing.T) {
	e := newEnv(t, service.Options{CheckInterval: 20 * time.Millisecond})
	recordRunBaseline(t, e, "watched", "cpu")
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, data := e.get(t, "/v1/baselines/watched")
		var bv service.BaselineResponse
		if err := json.Unmarshal(data, &bv); err != nil {
			t.Fatal(err)
		}
		if lc := bv.Baseline.LastCheck; lc != nil {
			if lc.Verdict != baseline.VerdictPass {
				t.Errorf("sentinel verdict = %q, violations %v", lc.Verdict, lc.Violations)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sentinel never produced a check verdict")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBaselineBadRequests covers the validation surface of the
// recording and check endpoints.
func TestBaselineBadRequests(t *testing.T) {
	e := newEnv(t, service.Options{})
	cases := []struct {
		name string
		body service.BaselineRequest
	}{
		{"no source", service.BaselineRequest{Name: "x", Target: "cpu"}},
		{"bad name", service.BaselineRequest{Name: "no spaces!", FromJob: "j000001"}},
		{"unknown job", service.BaselineRequest{Name: "x", FromJob: "j999999"}},
	}
	for _, tc := range cases {
		resp, _ := e.post(t, "/v1/baselines", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, _ := e.post(t, "/v1/check", service.CheckRequest{Name: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown baseline check: status %d, want 404", resp.StatusCode)
	}
}
