package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/kernel"
	"mpstream/internal/service"
	"mpstream/internal/sim/mem"
	"mpstream/internal/surface"
)

// surfEnv builds a server whose devices expose their memory systems
// (the default counting wrapper hides MemModel behind the Device
// interface).
func surfEnv(t *testing.T, opts service.Options) *testEnv {
	t.Helper()
	opts.NewDevice = targets.ByID
	return newEnv(t, opts)
}

func smallSurface() surface.Config {
	return surface.Config{
		Patterns:   []mem.Pattern{mem.ContiguousPattern()},
		RWRatios:   []float64{1},
		Rates:      []float64{0.25, 1.0},
		ArrayBytes: 4 << 20,
		WindowTxns: 2048,
		ProbeHops:  128,
	}
}

// TestSurfaceSync drives a synchronous surface request end to end and
// checks the result is exactly what a local generation produces — the
// determinism the acceptance criterion demands.
func TestSurfaceSync(t *testing.T) {
	e := surfEnv(t, service.Options{})
	cfg := smallSurface()
	resp, data := e.post(t, "/v1/surface", service.SurfaceRequest{Target: "gpu", Config: &cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Surface == nil {
		t.Fatalf("job = %+v", job)
	}
	if job.Kind != service.KindSurface {
		t.Errorf("kind = %q", job.Kind)
	}
	if job.Fingerprint == "" {
		t.Error("surface job must carry its request fingerprint")
	}

	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	want, err := surface.Generate(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(job.Surface)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("service surface differs from local generation:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestSurfaceCacheHit: the second identical request is served from the
// surface LRU, flagged cached, with an equal payload.
func TestSurfaceCacheHit(t *testing.T) {
	e := surfEnv(t, service.Options{})
	cfg := smallSurface()
	req := service.SurfaceRequest{Target: "cpu", Config: &cfg}
	_, first := e.post(t, "/v1/surface", req)
	j1 := decodeJob(t, first)
	if j1.Status != service.StatusDone || j1.Cached {
		t.Fatalf("first request: %+v", j1)
	}
	_, second := e.post(t, "/v1/surface", req)
	j2 := decodeJob(t, second)
	if !j2.Cached {
		t.Error("second identical surface request must hit the cache")
	}
	a, _ := json.Marshal(j1.Surface)
	b, _ := json.Marshal(j2.Surface)
	if !bytes.Equal(a, b) {
		t.Error("cached surface differs from the original")
	}
	// Default and explicitly-defaulted configurations share one entry.
	_, third := e.post(t, "/v1/surface", service.SurfaceRequest{Target: "cpu"})
	j3 := decodeJob(t, third)
	if j3.Fingerprint == j1.Fingerprint {
		t.Error("default config unexpectedly fingerprints like the small config")
	}
	full := surface.Config{}.WithDefaults()
	_, fourth := e.post(t, "/v1/surface", service.SurfaceRequest{Target: "cpu", Config: &full})
	j4 := decodeJob(t, fourth)
	if j4.Fingerprint != j3.Fingerprint {
		t.Error("explicit defaults must fingerprint like the implicit default")
	}
	if !j4.Cached {
		t.Error("explicit defaults must hit the implicit default's cache entry")
	}
}

// TestSurfaceSingleFlight: concurrent identical requests measure once.
func TestSurfaceSingleFlight(t *testing.T) {
	e := surfEnv(t, service.Options{})
	cfg := smallSurface()
	req := service.SurfaceRequest{Target: "aocl", Config: &cfg}
	const n = 4
	var wg sync.WaitGroup
	jobs := make([]service.View, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, data := e.post(t, "/v1/surface", req)
			jobs[i] = decodeJob(t, data)
		}(i)
	}
	wg.Wait()
	cached := 0
	var payload []byte
	for _, j := range jobs {
		if j.Status != service.StatusDone || j.Surface == nil {
			t.Fatalf("job = %+v", j)
		}
		if j.Cached {
			cached++
		}
		b, _ := json.Marshal(j.Surface)
		if payload == nil {
			payload = b
		} else if !bytes.Equal(payload, b) {
			t.Error("concurrent identical requests returned different surfaces")
		}
	}
	if cached < n-1 {
		t.Errorf("%d of %d concurrent requests were cached, want at least %d", cached, n, n-1)
	}
}

func TestSurfaceBadRequests(t *testing.T) {
	e := surfEnv(t, service.Options{})
	resp, _ := e.post(t, "/v1/surface", service.SurfaceRequest{Target: "tpu"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown target: status %d", resp.StatusCode)
	}
	bad := smallSurface()
	bad.KneeFactor = 0.5
	resp, _ = e.post(t, "/v1/surface", service.SurfaceRequest{Target: "cpu", Config: &bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid knee factor: status %d", resp.StatusCode)
	}
	huge := smallSurface()
	huge.Rates = make([]float64, 1000)
	for i := range huge.Rates {
		huge.Rates[i] = 0.1 + float64(i)*0.001
	}
	resp, data := e.post(t, "/v1/surface", service.SurfaceRequest{Target: "cpu", Config: &huge})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "ladder") {
		t.Errorf("oversized ladder: status %d body %s", resp.StatusCode, data)
	}
	wide := smallSurface()
	wide.WindowTxns = 1 << 22
	resp, _ = e.post(t, "/v1/surface", service.SurfaceRequest{Target: "cpu", Config: &wide})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized window: status %d", resp.StatusCode)
	}
}

// TestSurfaceDeviceWithoutMemorySystem: a factory whose devices hide
// their memory model fails the job cleanly instead of crashing.
func TestSurfaceDeviceWithoutMemorySystem(t *testing.T) {
	e := newEnv(t, service.Options{}) // counting wrapper hides MemModel
	cfg := smallSurface()
	_, data := e.post(t, "/v1/surface", service.SurfaceRequest{Target: "cpu", Config: &cfg})
	job := decodeJob(t, data)
	if job.Status != service.StatusFailed || !strings.Contains(job.Error, "memory system") {
		t.Errorf("job = %+v", job)
	}
}

// TestOptimizeKneeObjective drives /v1/optimize under the knee
// objective and checks the fingerprint behaviour of the objective
// field: gbps canonicalizes onto the legacy default, knee does not.
func TestOptimizeKneeObjective(t *testing.T) {
	e := surfEnv(t, service.Options{})
	base := smallConfig()
	space := dse.Space{VecWidths: []int{1, 4}}
	mk := func(objective string) service.View {
		_, data := e.post(t, "/v1/optimize", service.OptimizeRequest{
			Target: "gpu", Base: &base, Space: space,
			Op: ptr(kernel.Copy), Strategy: "exhaustive", Objective: objective,
		})
		return decodeJob(t, data)
	}
	def, gbps, knee := mk(""), mk("gbps"), mk("knee")
	if def.Fingerprint != gbps.Fingerprint {
		t.Error("explicit gbps objective must fingerprint like the default")
	}
	if !gbps.Cached {
		t.Error("explicit gbps objective must hit the default's cache entry")
	}
	if knee.Fingerprint == def.Fingerprint {
		t.Error("knee objective must fingerprint differently")
	}
	if knee.Status != service.StatusDone || knee.Optimize == nil {
		t.Fatalf("knee job = %+v", knee)
	}
	if knee.Optimize.Objective != "knee" {
		t.Errorf("objective = %q", knee.Optimize.Objective)
	}
	if knee.Optimize.Best == nil || knee.Optimize.Best.KneeGBps <= 0 {
		t.Errorf("knee best = %+v", knee.Optimize.Best)
	}
	resp, _ := e.post(t, "/v1/optimize", service.OptimizeRequest{
		Target: "gpu", Space: space, Objective: "latency",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown objective: status %d", resp.StatusCode)
	}
}

// TestVersion checks the discovery endpoint.
func TestVersion(t *testing.T) {
	e := surfEnv(t, service.Options{})
	resp, data := e.get(t, "/v1/version")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v service.VersionResponse
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.Service != "mpstream" || v.GoVersion == "" {
		t.Errorf("version = %+v", v)
	}
	if len(v.Targets) != 4 {
		t.Errorf("targets = %v", v.Targets)
	}
	if len(v.Strategies) == 0 {
		t.Error("no strategies reported")
	}
	want := map[string]bool{"gbps": false, "knee": false}
	for _, o := range v.Objectives {
		want[o] = true
	}
	for o, seen := range want {
		if !seen {
			t.Errorf("objective %q missing from %v", o, v.Objectives)
		}
	}
}

// TestHealthzSurfaceCache: the new cache shows up in telemetry.
func TestHealthzSurfaceCache(t *testing.T) {
	e := surfEnv(t, service.Options{})
	cfg := smallSurface()
	req := service.SurfaceRequest{Target: "gpu", Config: &cfg}
	e.post(t, "/v1/surface", req)
	e.post(t, "/v1/surface", req)
	_, data := e.get(t, "/v1/healthz")
	var h struct {
		SurfaceCache service.CacheStats `json:"surface_cache"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.SurfaceCache.Entries != 1 || h.SurfaceCache.Hits == 0 {
		t.Errorf("surface cache stats = %+v", h.SurfaceCache)
	}
}

func TestSurfaceProbeHopsBounded(t *testing.T) {
	e := surfEnv(t, service.Options{})
	long := smallSurface()
	long.ProbeHops = 1 << 27
	resp, data := e.post(t, "/v1/surface", service.SurfaceRequest{Target: "cpu", Config: &long})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "probe") {
		t.Errorf("oversized probe: status %d body %s", resp.StatusCode, data)
	}
}
