package service_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/kernel"
	"mpstream/internal/service"
)

// readEvents consumes the NDJSON stream until a result event (or the
// stream ends), returning every decoded event.
func readEvents(t *testing.T, resp *http.Response) []service.Event {
	t.Helper()
	defer resp.Body.Close()
	var events []service.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Text())
		}
		events = append(events, ev)
		if ev.Type == service.EventResult {
			break
		}
	}
	return events
}

// TestJobEventsStream: a sweep's event stream delivers state, point and
// progress events live while the job runs and ends with the terminal
// result event. Run with -race.
func TestJobEventsStream(t *testing.T) {
	gate := make(chan struct{})
	e := newEnv(t, service.Options{
		Workers:      1,
		SweepWorkers: 1,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return gatedDevice{Device: d, gate: gate}, nil
		},
	})
	base := smallConfig()
	op := kernel.Copy
	req := service.SweepRequest{Target: "cpu", Base: &base, Op: &op, Async: true,
		Space: dse.Space{VecWidths: []int{1, 2, 4}}}
	_, data := e.post(t, "/v1/sweep", req)
	job := decodeJob(t, data)

	// Subscribe while the job is gated, then let it run.
	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	close(gate)
	events := readEvents(t, resp)

	byType := map[string]int{}
	var lastSeq uint64
	for _, ev := range events {
		byType[ev.Type]++
		if ev.Job != job.ID {
			t.Errorf("event for job %q on %q's stream", ev.Job, job.ID)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("event seq %d not increasing past %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	if byType[service.EventState] < 1 {
		t.Errorf("no state event: %v", byType)
	}
	if byType[service.EventPoint] != 3 || byType[service.EventProgress] != 3 {
		t.Errorf("point/progress events = %v, want 3 each", byType)
	}
	if byType[service.EventResult] != 1 {
		t.Fatalf("result events = %d, want exactly 1", byType[service.EventResult])
	}
	last := events[len(events)-1]
	if last.Type != service.EventResult || last.Result == nil ||
		last.Result.Status != service.StatusDone || last.Result.Sweep == nil {
		t.Errorf("terminal event = %+v", last)
	}

	// A late subscriber to the finished job replays history and ends
	// with the result event too.
	resp, err = http.Get(e.ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay := readEvents(t, resp)
	if len(replay) == 0 || replay[len(replay)-1].Type != service.EventResult {
		t.Errorf("replayed stream does not end in a result event (%d events)", len(replay))
	}

	resp, err = http.Get(e.ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events status %d", resp.StatusCode)
	}
}

// TestJobEventsBeforeCancel is the acceptance path: a canceled job's
// stream carried live progress before the cancel and terminates with a
// canceled result event.
func TestJobEventsBeforeCancel(t *testing.T) {
	gate := make(chan struct{})
	seen := &atomic.Int64{}
	e := newEnv(t, service.Options{
		Workers:      1,
		SweepWorkers: 1,
		CacheEntries: -1,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return gateAfterDevice{Device: d, seen: seen, n: 2, gate: gate}, nil
		},
	})
	base := smallConfig()
	op := kernel.Copy
	req := service.SweepRequest{Target: "cpu", Base: &base, Op: &op, Async: true,
		Space: dse.Space{VecWidths: []int{1, 2, 4, 8, 16}}}
	_, data := e.post(t, "/v1/sweep", req)
	job := decodeJob(t, data)

	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}

	// Points 0 and 1 complete; point 2 blocks. Cancel, then unblock.
	deadline := time.Now().Add(10 * time.Second)
	for seen.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never reached its third point")
		}
		time.Sleep(time.Millisecond)
	}
	e.cancelJob(t, job.ID)
	close(gate)

	events := readEvents(t, resp)
	progressBeforeEnd := 0
	for _, ev := range events[:len(events)-1] {
		if ev.Type == service.EventProgress {
			progressBeforeEnd++
		}
	}
	if progressBeforeEnd < 2 {
		t.Errorf("only %d progress events streamed before the terminal event, want >= 2", progressBeforeEnd)
	}
	last := events[len(events)-1]
	if last.Type != service.EventResult || last.State != service.StatusCanceled {
		t.Fatalf("terminal event = %+v, want canceled result", last)
	}
	if last.Result == nil || last.Result.Sweep == nil || len(last.Result.Sweep.Ranked) == 0 {
		t.Errorf("canceled result event lost the partial sweep")
	}
}

// TestJobsFilters: GET /v1/jobs honors ?state= and ?limit= and keeps
// stable submit-time order.
func TestJobsFilters(t *testing.T) {
	e := newEnv(t, service.Options{})
	var ids []string
	for _, vec := range []int{1, 2, 4} {
		cfg := smallConfig()
		cfg.VecWidth = vec
		_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
		job := decodeJob(t, data)
		if job.Status != service.StatusDone {
			t.Fatalf("job = %+v", job)
		}
		ids = append(ids, job.ID)
	}

	var jl service.JobsResponse
	_, data := e.get(t, "/v1/jobs?state=done")
	if err := json.Unmarshal(data, &jl); err != nil {
		t.Fatal(err)
	}
	if len(jl.Jobs) != 3 {
		t.Fatalf("state=done returned %d jobs", len(jl.Jobs))
	}
	for i, v := range jl.Jobs {
		if v.ID != ids[i] {
			t.Errorf("job %d = %s, want submit order %s", i, v.ID, ids[i])
		}
	}

	_, data = e.get(t, "/v1/jobs?limit=2")
	if err := json.Unmarshal(data, &jl); err != nil {
		t.Fatal(err)
	}
	if len(jl.Jobs) != 2 || jl.Jobs[0].ID != ids[1] || jl.Jobs[1].ID != ids[2] {
		t.Errorf("limit=2 = %v, want the two most recent in submit order", jobIDs(jl.Jobs))
	}

	_, data = e.get(t, "/v1/jobs?state=canceled")
	if err := json.Unmarshal(data, &jl); err != nil {
		t.Fatal(err)
	}
	if len(jl.Jobs) != 0 {
		t.Errorf("state=canceled returned %d jobs", len(jl.Jobs))
	}

	resp, _ := e.get(t, "/v1/jobs?state=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus state status %d", resp.StatusCode)
	}
	resp, _ = e.get(t, "/v1/jobs?limit=-3")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative limit status %d", resp.StatusCode)
	}
	resp, _ = e.get(t, "/v1/jobs?limit=x")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk limit status %d", resp.StatusCode)
	}
}

func jobIDs(vs []service.View) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.ID
	}
	return out
}

// TestProgressInJobJSON: a finished run's view carries its final
// progress snapshot.
func TestProgressInJobJSON(t *testing.T) {
	e := newEnv(t, service.Options{})
	cfg := smallConfig()
	_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("job = %+v", job)
	}
	if job.Progress == nil || job.Progress.Done != 1 || job.Progress.Total != 1 {
		t.Fatalf("progress = %+v", job.Progress)
	}
	if job.Progress.BestGBps <= 0 || job.Progress.Phase != "run" {
		t.Errorf("progress detail = %+v", job.Progress)
	}
}
