package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"mime"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"mpstream/internal/cluster"
	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
	"mpstream/internal/obs"
	"mpstream/internal/surface"
)

// RunRequest is the POST /v1/run body. A nil config runs the paper's
// baseline configuration.
type RunRequest struct {
	Target string       `json:"target"`
	Config *core.Config `json:"config,omitempty"`
	// Async returns 202 with a job id immediately instead of waiting for
	// the result; poll GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
	// TimeoutMS bounds the job's execution once it starts running,
	// clamped to the server's maximum; 0 means none. An expired deadline
	// lands the job in canceled with stop_reason "deadline", carrying
	// whatever partial results the executor collected.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SweepRequest is the POST /v1/sweep body. A nil base starts from the
// default configuration; op defaults to copy.
type SweepRequest struct {
	Target    string       `json:"target"`
	Base      *core.Config `json:"base,omitempty"`
	Space     dse.Space    `json:"space"`
	Op        *kernel.Op   `json:"op,omitempty"`
	Async     bool         `json:"async,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// OptimizeRequest is the POST /v1/optimize body. A nil base starts
// from the default configuration; op defaults to copy; an empty
// strategy means exhaustive; budget 0 means the full space (subject to
// the server's budget limit); equal seeds reproduce equal searches; an
// empty objective ranks by raw bandwidth, "knee" by the surface knee.
type OptimizeRequest struct {
	Target    string       `json:"target"`
	Base      *core.Config `json:"base,omitempty"`
	Space     dse.Space    `json:"space"`
	Op        *kernel.Op   `json:"op,omitempty"`
	Strategy  string       `json:"strategy,omitempty"`
	Budget    int          `json:"budget,omitempty"`
	Seed      int64        `json:"seed,omitempty"`
	Objective string       `json:"objective,omitempty"`
	Async     bool         `json:"async,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// SurfaceRequest is the POST /v1/surface body. A nil config measures
// the default bandwidth–latency surface (surface.Config zero value).
type SurfaceRequest struct {
	Target    string          `json:"target"`
	Config    *surface.Config `json:"config,omitempty"`
	Async     bool            `json:"async,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// JobResponse wraps every job-bearing response body.
type JobResponse struct {
	Job View `json:"job"`
}

// TargetsResponse is the GET /v1/targets body; device.Info carries the
// wire-format tags (string kind and loop mode).
type TargetsResponse struct {
	Targets []device.Info `json:"targets"`
}

// JobsResponse is the GET /v1/jobs body. Total counts the retained
// jobs before any filter; Filtered counts the jobs matching the
// ?state= filter before the ?limit= truncation — so a truncated
// listing is explicit about what it dropped.
type JobsResponse struct {
	Jobs     []View `json:"jobs"`
	Total    int    `json:"total"`
	Filtered int    `json:"filtered"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; the largest legitimate sweep
// space is well under a megabyte.
const maxBodyBytes = 4 << 20

// decodeBody decodes a JSON request body, bounded to maxBodyBytes and
// gated on the declared Content-Type: anything other than JSON (an
// absent header is accepted for curl ergonomics) is rejected with 415
// before a byte of the body is read, and a body over the bound is cut
// off with 413 by http.MaxBytesReader. The returned status is 0 on
// success.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) (int, error) {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && !strings.HasSuffix(mt, "+json")) {
			return http.StatusUnsupportedMediaType,
				fmt.Errorf("unsupported content type %q (want application/json)", ct)
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	// A typoed knob silently falling back to its default would compute
	// (and cache) a result for the wrong configuration.
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decode request: %w", err)
	}
	return 0, nil
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/run              run one configuration (sync, or async with "async": true)
//	POST   /v1/sweep            explore a parameter grid exhaustively
//	POST   /v1/optimize         search a parameter grid with a budgeted strategy
//	POST   /v1/surface          measure a bandwidth–latency surface
//	GET    /v1/jobs             list jobs (?state=, ?limit=), stable submit-time order
//	GET    /v1/jobs/{id}        poll one job (live progress snapshot included)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events stream NDJSON progress/point/result events
//	GET    /v1/jobs/{id}/trace  span timeline of a job (?format=chrome for Perfetto)
//	POST   /v1/baselines        record a named baseline (from a finished job or an inline result)
//	GET    /v1/baselines        list baselines with their latest check verdicts
//	GET    /v1/baselines/{name} one baseline with its latest check verdict
//	DELETE /v1/baselines/{name} forget a baseline
//	GET    /v1/baselines/alerts NDJSON feed of non-pass check verdicts (?follow=1 to stream)
//	POST   /v1/check            re-measure a baseline and verdict the drift (a first-class job)
//	GET    /v1/targets          list benchmark targets
//	GET    /v1/version          build info, registered targets, strategies, objectives
//	GET    /v1/healthz          liveness, queue, job and cache telemetry (+ worker counts on coordinators)
//	GET    /v1/metrics          Prometheus text exposition (404 when metrics are disabled)
//
// Fleet endpoints (see internal/cluster):
//
//	POST   /v1/cluster/register      worker registration (coordinators only)
//	POST   /v1/cluster/heartbeat     worker liveness refresh (coordinators only)
//	GET    /v1/cluster/workers       registry snapshot (coordinators only)
//	GET    /v1/cluster/metrics       federated fleet metrics, one exposition with a worker label (coordinators only)
//	POST   /v1/cluster/shard/sweep   execute one sweep grid shard [lo, hi)
//	POST   /v1/cluster/shard/surface execute one surface curve shard [lo, hi)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/surface", s.handleSurface)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	// Chrome-trace exports of fleet jobs run to megabytes; gzip is
	// negotiated per request, like the metrics expositions below.
	mux.Handle("GET /v1/jobs/{id}/trace", obs.GzipHandler(http.HandlerFunc(s.handleJobTrace)))
	mux.HandleFunc("POST /v1/baselines", s.handleRecordBaseline)
	mux.HandleFunc("GET /v1/baselines", s.handleBaselines)
	// The literal pattern wins over the {name} wildcard, so "alerts" is
	// never a baseline name from the router's point of view (the name
	// charset forbids nothing here — it is simply shadowed).
	mux.HandleFunc("GET /v1/baselines/alerts", s.handleBaselineAlerts)
	mux.HandleFunc("GET /v1/baselines/{name}", s.handleBaseline)
	mux.HandleFunc("DELETE /v1/baselines/{name}", s.handleDeleteBaseline)
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("GET /v1/targets", s.handleTargets)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	if s.reg != nil {
		// Scrape bodies compress an order of magnitude; gzip is
		// negotiated per request via Accept-Encoding.
		mux.Handle("GET /v1/metrics", obs.GzipHandler(s.reg.Handler()))
	}
	mux.Handle("GET /v1/cluster/metrics", obs.GzipHandler(http.HandlerFunc(s.handleClusterMetrics)))
	mux.HandleFunc("POST /v1/cluster/register", s.handleClusterRegister)
	mux.HandleFunc("POST /v1/cluster/heartbeat", s.handleClusterHeartbeat)
	mux.HandleFunc("GET /v1/cluster/workers", s.handleClusterWorkers)
	mux.HandleFunc("POST /v1/cluster/shard/sweep", s.handleSweepShard)
	mux.HandleFunc("POST /v1/cluster/shard/surface", s.handleSurfaceShard)
	// The middleware mints/propagates trace IDs and measures every
	// route; with metrics disabled it still carries traces through.
	return obs.Middleware(s.reg, s.log, mux)
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// submitCode maps submission failures to HTTP statuses.
func submitCode(err error) int {
	if errors.Is(err, ErrQueueFull) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// writeSubmitError reports a failed submission. Refusals for load
// (queue full → 503) are warned with the request's trace ID so an
// operator can line shed requests up against client-side retries.
func (s *Server) writeSubmitError(w http.ResponseWriter, r *http.Request, err error) {
	code := submitCode(err)
	if code == http.StatusServiceUnavailable {
		s.log.Warn("submission refused",
			"path", r.URL.Path, "code", code, "trace", obs.TraceID(r.Context()), "err", err)
	}
	writeError(w, code, err)
}

// respond waits for a synchronous job (or returns immediately for an
// async one) and writes the job view. If the client goes away while a
// sync job is still running, the job keeps executing — its result stays
// pollable and cached.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, j *Job, async bool) {
	if async {
		writeJSON(w, http.StatusAccepted, JobResponse{Job: j.Snapshot()})
		return
	}
	select {
	case <-j.Done():
		writeJSON(w, http.StatusOK, JobResponse{Job: j.Snapshot()})
	case <-r.Context().Done():
		writeJSON(w, http.StatusAccepted, JobResponse{Job: j.Snapshot()})
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if code, err := decodeBody(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	cfg := core.DefaultConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	j, err := s.SubmitRun(r.Context(), req.Target, cfg, msToDuration(req.TimeoutMS))
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	s.respond(w, r, j, req.Async)
}

// msToDuration converts a request's timeout_ms field; negative values
// pass through negative so submit-time validation rejects them, and
// values beyond the representable Duration range saturate (the
// server-side clamp then shortens them to MaxTimeout) instead of
// overflowing into an arbitrary small deadline.
func msToDuration(ms int64) time.Duration {
	const maxMS = math.MaxInt64 / int64(time.Millisecond)
	if ms > maxMS {
		ms = maxMS
	}
	if ms < -maxMS {
		// Saturate negative overflow too, so a huge negative stays
		// negative and is rejected instead of wrapping positive.
		ms = -maxMS
	}
	return time.Duration(ms) * time.Millisecond
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if code, err := decodeBody(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	base := core.DefaultConfig()
	if req.Base != nil {
		base = *req.Base
	}
	op := kernel.Copy
	if req.Op != nil {
		op = *req.Op
	}
	j, err := s.SubmitSweep(r.Context(), req.Target, base, req.Space, op, msToDuration(req.TimeoutMS))
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	s.respond(w, r, j, req.Async)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if code, err := decodeBody(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	base := core.DefaultConfig()
	if req.Base != nil {
		base = *req.Base
	}
	op := kernel.Copy
	if req.Op != nil {
		op = *req.Op
	}
	opts := search.Options{Strategy: req.Strategy, Budget: req.Budget, Seed: req.Seed, Objective: req.Objective}
	j, err := s.SubmitOptimize(r.Context(), req.Target, base, req.Space, op, opts, msToDuration(req.TimeoutMS))
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	s.respond(w, r, j, req.Async)
}

func (s *Server) handleSurface(w http.ResponseWriter, r *http.Request) {
	var req SurfaceRequest
	if code, err := decodeBody(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	var cfg surface.Config
	if req.Config != nil {
		cfg = *req.Config
	}
	j, err := s.SubmitSurface(r.Context(), req.Target, cfg, msToDuration(req.TimeoutMS))
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	s.respond(w, r, j, req.Async)
}

// VersionResponse is the GET /v1/version body: enough for a client to
// know what it is talking to and what it may ask for.
type VersionResponse struct {
	Service   string `json:"service"`
	GoVersion string `json:"go_version"`
	// ModuleVersion, VCSRevision and VCSTime come from the build info
	// when available (released builds and clean checkouts).
	ModuleVersion string `json:"module_version,omitempty"`
	VCSRevision   string `json:"vcs_revision,omitempty"`
	VCSTime       string `json:"vcs_time,omitempty"`
	// Targets lists the registered benchmark targets, Strategies the
	// optimizer strategies, Objectives the optimizer ranking metrics.
	Targets    []string `json:"targets"`
	Strategies []string `json:"strategies"`
	Objectives []string `json:"objectives"`
}

// Version assembles the build and capability report GET /v1/version
// serves. It is exported so mpserved -version prints the same content
// without standing a server up; targets nil means the default target
// set.
func Version(targets []string) VersionResponse {
	if targets == nil {
		opts := Options{}.withDefaults()
		for _, inf := range opts.TargetInfos() {
			targets = append(targets, inf.ID)
		}
	}
	v := VersionResponse{
		Service:    "mpstream",
		GoVersion:  runtime.Version(),
		Targets:    targets,
		Strategies: search.Strategies(),
		Objectives: search.Objectives(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			v.ModuleVersion = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				v.VCSRevision = kv.Value
			case "vcs.time":
				v.VCSTime = kv.Value
			}
		}
	}
	return v
}

func (s *Server) version() VersionResponse {
	targets := make([]string, 0, len(s.infos))
	for _, inf := range s.infos {
		targets = append(targets, inf.ID)
	}
	return Version(targets)
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.version())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, JobResponse{Job: j.Snapshot()})
}

// handleCancelJob is DELETE /v1/jobs/{id}: cancel a queued or running
// job. The call is idempotent — canceling a finished job is a no-op —
// and always answers with the job's current view, so the client sees
// whether the cancel landed (queued jobs flip to canceled immediately;
// running ones within one evaluation unit).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.CancelJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, JobResponse{Job: j.Snapshot()})
}

// handleJobs is GET /v1/jobs: every job in stable submit-time order,
// optionally filtered with ?state= (queued|running|done|failed|canceled)
// and bounded with ?limit=N (the N most recent matching jobs, still
// oldest first).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := Status(q.Get("state"))
	if state != "" {
		known := false
		for _, st := range Statuses() {
			if state == st {
				known = true
				break
			}
		}
		if !known {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown state %q (want one of %v)", state, Statuses()))
			return
		}
	}
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q (want a non-negative integer)", ls))
			return
		}
		limit = n
	}
	views, total, matched := s.jobs.snapshots(state, limit)
	writeJSON(w, http.StatusOK, JobsResponse{Jobs: views, Total: total, Filtered: matched})
}

// handleJobEvents is GET /v1/jobs/{id}/events: an NDJSON stream of the
// job's state/point/progress events, ending with a result event when
// the job reaches a terminal state. Subscribing to a finished job
// replays its retained history and the final result. The stream is
// telemetry: a slow reader loses intermediate events (visible as seq
// gaps) but always gets the terminal result.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if canFlush {
			flusher.Flush()
		}
	}

	backlog, ch := j.Subscribe()
	defer j.Unsubscribe(ch)
	emitted := uint64(0)
	// emit writes one event; done is true when the stream must end —
	// either the write failed or the terminal result event went out.
	emit := func(ev Event) (done bool) {
		if err := enc.Encode(ev); err != nil {
			return true
		}
		if ev.Seq > emitted {
			emitted = ev.Seq
		}
		flush()
		return ev.Type == EventResult
	}
	for _, ev := range backlog {
		if emit(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-ch:
			if emit(ev) {
				return
			}
		case <-j.Done():
			// Drain whatever the publisher got in before Done closed, then
			// make sure the terminal view went out even if the result event
			// was dropped or raced the subscription.
			for {
				select {
				case ev := <-ch:
					if emit(ev) {
						return
					}
				default:
					final := j.Snapshot()
					emit(Event{Seq: emitted + 1, Job: final.ID, Time: final.Finished,
						Type: EventResult, State: final.Status, Result: &final})
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// BaselineResponse wraps single-baseline response bodies.
type BaselineResponse struct {
	Baseline BaselineView `json:"baseline"`
}

// BaselinesResponse is the GET /v1/baselines body.
type BaselinesResponse struct {
	Baselines []BaselineView `json:"baselines"`
}

// handleRecordBaseline is POST /v1/baselines: register (or re-record)
// a named reference measurement from a finished job or an inline
// payload.
func (s *Server) handleRecordBaseline(w http.ResponseWriter, r *http.Request) {
	var req BaselineRequest
	if code, err := decodeBody(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	e, err := s.RecordBaseline(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, BaselineResponse{Baseline: BaselineView{Entry: e}})
}

func (s *Server) handleBaselines(w http.ResponseWriter, _ *http.Request) {
	views, err := s.Baselines()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if views == nil {
		views = []BaselineView{}
	}
	writeJSON(w, http.StatusOK, BaselinesResponse{Baselines: views})
}

func (s *Server) handleBaseline(w http.ResponseWriter, r *http.Request) {
	v, err := s.Baseline(r.PathValue("name"))
	if err != nil {
		writeError(w, baselineCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, BaselineResponse{Baseline: v})
}

func (s *Server) handleDeleteBaseline(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.DeleteBaseline(name); err != nil {
		writeError(w, baselineCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Deleted string `json:"deleted"`
	}{Deleted: name})
}

// baselineCode maps baseline lookup failures to HTTP statuses.
func baselineCode(err error) int {
	if errors.Is(err, ErrNoBaseline) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// handleCheck is POST /v1/check: submit a re-measurement of a named
// baseline as a first-class job (NDJSON events, spans, cancellation and
// partial verdicts included). The response carries the job view with
// its Check report; a fail verdict is still HTTP 200 — severity rides
// in the report, not the status code.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if code, err := decodeBody(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	j, err := s.SubmitCheck(r.Context(), req.Name, req.Tolerance, msToDuration(req.TimeoutMS))
	if err != nil {
		if errors.Is(err, ErrNoBaseline) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		s.writeSubmitError(w, r, err)
		return
	}
	s.respond(w, r, j, req.Async)
}

// handleBaselineAlerts is GET /v1/baselines/alerts: the NDJSON feed of
// non-pass check verdicts. By default the retained backlog is replayed
// and the stream closes; with ?follow=1 it stays open and streams new
// alerts until the client disconnects or the server shuts down.
func (s *Server) handleBaselineAlerts(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") == "1"
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if canFlush {
			flusher.Flush()
		}
	}
	backlog, ch := s.alerts.subscribe()
	defer s.alerts.unsubscribe(ch)
	for _, a := range backlog {
		if enc.Encode(a) != nil {
			return
		}
	}
	flush()
	if !follow {
		return
	}
	for {
		select {
		case a := <-ch:
			if enc.Encode(a) != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		}
	}
}

func (s *Server) handleTargets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, TargetsResponse{Targets: s.infos})
}

// coordinator returns the attached fleet coordinator, writing a 404
// when this server is not one (registration against a plain server or
// worker is an operator misconfiguration worth a clear message).
func (s *Server) coordinator(w http.ResponseWriter) *cluster.Coordinator {
	if s.opts.Cluster == nil {
		writeError(w, http.StatusNotFound, errors.New("this server is not a cluster coordinator"))
		return nil
	}
	return s.opts.Cluster
}

// handleClusterRegister is POST /v1/cluster/register: a worker
// announces (or refreshes) itself and learns the heartbeat contract.
func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	c := s.coordinator(w)
	if c == nil {
		return
	}
	var info cluster.WorkerInfo
	if code, err := decodeBody(w, r, &info); err != nil {
		writeError(w, code, err)
		return
	}
	if info.ID == "" || info.Addr == "" {
		writeError(w, http.StatusBadRequest, errors.New("worker registration needs id and addr"))
		return
	}
	writeJSON(w, http.StatusOK, c.Register(info))
}

// handleClusterHeartbeat is POST /v1/cluster/heartbeat: a worker
// refreshes its liveness; known false asks it to re-register.
func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	c := s.coordinator(w)
	if c == nil {
		return
	}
	var req cluster.HeartbeatRequest
	if code, err := decodeBody(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.HeartbeatResponse{Known: c.Heartbeat(req.ID)})
}

// WorkersResponse is the GET /v1/cluster/workers body.
type WorkersResponse struct {
	Workers []cluster.WorkerView `json:"workers"`
}

// handleClusterWorkers is GET /v1/cluster/workers: the fleet registry
// snapshot, sorted by worker ID.
func (s *Server) handleClusterWorkers(w http.ResponseWriter, _ *http.Request) {
	c := s.coordinator(w)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, WorkersResponse{Workers: c.Workers()})
}

// handleSweepShard is POST /v1/cluster/shard/sweep: evaluate one
// contiguous flat range of a sweep grid locally — the worker half of a
// distributed sweep. Any server answers it; a shard is never
// re-sharded.
func (s *Server) handleSweepShard(w http.ResponseWriter, r *http.Request) {
	var req cluster.SweepShardRequest
	if code, err := decodeBody(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	base := core.DefaultConfig()
	if req.Base != nil {
		base = *req.Base
	}
	op := kernel.Copy
	if req.Op != nil {
		op = *req.Op
	}
	j, err := s.SubmitSweepShard(r.Context(), req.Target, base, req.Space, op, req.Lo, req.Hi, msToDuration(req.TimeoutMS))
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	s.respond(w, r, j, req.Async)
}

// handleSurfaceShard is POST /v1/cluster/shard/surface: measure the
// curves [lo, hi) of a surface ladder locally — the worker half of a
// distributed surface.
func (s *Server) handleSurfaceShard(w http.ResponseWriter, r *http.Request) {
	var req cluster.SurfaceShardRequest
	if code, err := decodeBody(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	var cfg surface.Config
	if req.Config != nil {
		cfg = *req.Config
	}
	j, err := s.SubmitSurfaceShard(r.Context(), req.Target, cfg, req.Lo, req.Hi, msToDuration(req.TimeoutMS))
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	s.respond(w, r, j, req.Async)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the job's assembled span
// tree — queue wait, run, per-point and per-shard spans, including
// spans ingested from workers — as a TraceView with the critical path
// and coverage, or as Chrome trace-event JSON with ?format=chrome
// (load in Perfetto or chrome://tracing). 404 when telemetry is
// disabled or the span ring has already evicted the job's spans.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled on this server"))
		return
	}
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	snap := j.Snapshot()
	spans := obs.Descendants(s.rec.Spans(snap.Trace), j.rootSpanID())
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no spans retained for job %q (evicted from the span ring)", snap.ID))
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChromeTrace(w, spans)
		return
	}
	writeJSON(w, http.StatusOK, obs.NewTraceView(snap.ID, snap.Trace, spans, j.rootSpanID()))
}

// scrapeTimeout bounds each worker scrape a federated metrics request
// fans out; one stuck worker costs at most this much latency and is
// reported as a failed part rather than stalling the response.
const scrapeTimeout = 2 * time.Second

// handleClusterMetrics is GET /v1/cluster/metrics: the coordinator's
// own exposition merged with a live concurrent scrape of every alive
// worker's /v1/metrics, re-rendered as one exposition in which every
// sample carries a worker label ("coordinator" for local samples). A
// synthesized mpstream_federation_up gauge reports per-worker scrape
// health so a dead scrape is visible rather than silently absent.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.coordinator(w)
	if c == nil {
		return
	}
	self := "coordinator"
	if s.opts.Origin != "" {
		self = s.opts.Origin
	}
	parts := []obs.Exposition{}
	if s.reg != nil {
		var buf strings.Builder
		s.reg.WritePrometheus(&buf)
		parts = append(parts, obs.Exposition{Worker: self, Body: buf.String()})
	}
	parts = append(parts, c.ScrapeWorkers(r.Context(), scrapeTimeout)...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(obs.MergeExpositions(parts)))
}
