package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/kernel"
	"mpstream/internal/service"
)

// countingDevice wraps a real target and counts kernel compilations —
// the unambiguous signal that the simulator actually executed rather
// than the cache answering.
type countingDevice struct {
	device.Device
	compiles *atomic.Int64
}

func (d countingDevice) Compile(k kernel.Kernel) (device.Compiled, error) {
	d.compiles.Add(1)
	return d.Device.Compile(k)
}

// gatedDevice blocks every compilation until the gate closes, to pin a
// job inside a worker deterministically.
type gatedDevice struct {
	device.Device
	gate <-chan struct{}
}

func (d gatedDevice) Compile(k kernel.Kernel) (device.Compiled, error) {
	<-d.gate
	return d.Device.Compile(k)
}

// panickyDevice simulates a crash bug in a backend.
type panickyDevice struct {
	device.Device
}

func (d panickyDevice) Compile(kernel.Kernel) (device.Compiled, error) {
	panic("synthetic simulator crash")
}

// testEnv is one server + HTTP test harness with execution counting.
type testEnv struct {
	srv      *service.Server
	ts       *httptest.Server
	compiles *atomic.Int64
}

func newEnv(t *testing.T, opts service.Options) *testEnv {
	t.Helper()
	compiles := &atomic.Int64{}
	if opts.NewDevice == nil {
		opts.NewDevice = func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return countingDevice{Device: d, compiles: compiles}, nil
		}
	}
	srv := service.New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &testEnv{srv: srv, ts: ts, compiles: compiles}
}

// smallConfig is a fast verified single-kernel run.
func smallConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Copy}
	cfg.ArrayBytes = 1 << 16
	cfg.NTimes = 2
	return cfg
}

func (e *testEnv) post(t *testing.T, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func (e *testEnv) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(e.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeJob(t *testing.T, data []byte) service.View {
	t.Helper()
	var jr service.JobResponse
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatalf("decode job response: %v\n%s", err, data)
	}
	return jr.Job
}

func TestHealthz(t *testing.T) {
	e := newEnv(t, service.Options{})
	resp, data := e.get(t, "/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		Cache   struct {
			Capacity int `json:"capacity"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers < 1 || h.Cache.Capacity < 1 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestTargets(t *testing.T) {
	e := newEnv(t, service.Options{})
	resp, data := e.get(t, "/v1/targets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var tr service.TargetsResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Targets) != 4 {
		t.Fatalf("got %d targets", len(tr.Targets))
	}
	want := targets.IDs()
	for i, tv := range tr.Targets {
		if tv.ID != want[i] {
			t.Errorf("target %d = %q, want %q", i, tv.ID, want[i])
		}
		if tv.PeakMemGBps <= 0 {
			t.Errorf("target %s missing fields: %+v", tv.ID, tv)
		}
	}
	// The wire format spells enums as strings.
	if !strings.Contains(string(data), `"kind": "fpga"`) || !strings.Contains(string(data), `"optimal_loop": "flat"`) {
		t.Errorf("targets body missing string enums: %s", data)
	}
}

func TestRunSync(t *testing.T) {
	e := newEnv(t, service.Options{})
	resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: ptr(smallConfig())})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("status %q, error %q", job.Status, job.Error)
	}
	if job.Cached {
		t.Error("first run must not be cached")
	}
	if job.Fingerprint == "" {
		t.Error("run job must carry its fingerprint")
	}
	if job.Result == nil || len(job.Result.Kernels) != 1 {
		t.Fatalf("result = %+v", job.Result)
	}
	kr := job.Result.Kernels[0]
	if kr.Op != kernel.Copy || !kr.Verified || kr.GBps <= 0 {
		t.Errorf("kernel result = %+v", kr)
	}
}

func TestRunAsyncAndPoll(t *testing.T) {
	e := newEnv(t, service.Options{})
	resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "gpu", Config: ptr(smallConfig()), Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.ID == "" {
		t.Fatal("async response must carry a job id")
	}
	final := e.pollJob(t, job.ID)
	if final.Status != service.StatusDone || final.Result == nil {
		t.Fatalf("job = %+v", final)
	}
}

func (e *testEnv) pollJob(t *testing.T, id string) service.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, data := e.get(t, "/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, data)
		}
		job := decodeJob(t, data)
		if job.Status == service.StatusDone || job.Status == service.StatusFailed || job.Status == service.StatusCanceled {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobsListAndNotFound(t *testing.T) {
	e := newEnv(t, service.Options{})
	_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: ptr(smallConfig())})
	job := decodeJob(t, data)

	resp, data := e.get(t, "/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var jl service.JobsResponse
	if err := json.Unmarshal(data, &jl); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range jl.Jobs {
		if v.ID == job.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("job %s missing from list %+v", job.ID, jl.Jobs)
	}

	resp, _ = e.get(t, "/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	e := newEnv(t, service.Options{})

	resp, _ := e.post(t, "/v1/run", service.RunRequest{Target: "tpu"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown target status %d", resp.StatusCode)
	}

	bad := smallConfig()
	bad.ArrayBytes = -4
	resp, _ = e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid config status %d", resp.StatusCode)
	}

	r, err := http.Post(e.ts.URL+"/v1/run", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", r.StatusCode)
	}

	// A typoed field name must be rejected, not silently defaulted.
	r, err = http.Post(e.ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"target":"cpu","config":{"arraybytes":65536}}`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d, want 400", r.StatusCode)
	}

	huge := service.SweepRequest{Target: "cpu", Space: dse.Space{
		VecWidths: []int{1, 2, 4, 8, 16},
		Unrolls:   make([]int, 1000),
	}}
	resp, _ = e.post(t, "/v1/sweep", huge)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized sweep status %d", resp.StatusCode)
	}

	// Bodies beyond the limit are rejected before decoding completes.
	big := strings.NewReader(`{"target":"cpu","space":{"vec_widths":[` + strings.Repeat("1,", 3<<20) + `1]}}`)
	r, err = http.Post(e.ts.URL+"/v1/sweep", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("giant body status %d, want 413", r.StatusCode)
	}
}

// TestResourceBounds rejects configurations that would exhaust the
// host or pin a worker: empty ops (panic vector), oversized arrays,
// giant repetition counts, and over-limit verified arrays.
func TestResourceBounds(t *testing.T) {
	e := newEnv(t, service.Options{})

	empty := smallConfig()
	empty.Ops = []kernel.Op{}
	resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &empty})
	job := decodeJob(t, data)
	if resp.StatusCode != http.StatusOK || job.Status != service.StatusDone {
		t.Errorf(`"ops":[] must run all four kernels: %d %+v`, resp.StatusCode, job)
	} else if len(job.Result.Kernels) != 4 {
		t.Errorf(`"ops":[] ran %d kernels, want 4`, len(job.Result.Kernels))
	}

	huge := smallConfig()
	huge.ArrayBytes = 1 << 60
	resp, _ = e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &huge})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("array beyond device memory: status %d, want 400", resp.StatusCode)
	}

	spins := smallConfig()
	spins.NTimes = 1 << 30
	resp, _ = e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &spins})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("giant ntimes: status %d, want 400", resp.StatusCode)
	}

	bigVerify := smallConfig()
	bigVerify.ArrayBytes = 1 << 30
	resp, _ = e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &bigVerify})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized verified array: status %d, want 400", resp.StatusCode)
	}
	resp, _ = e.post(t, "/v1/sweep", service.SweepRequest{Target: "cpu", Base: &spins, Space: dse.Space{VecWidths: []int{1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sweep with giant ntimes base: status %d, want 400", resp.StatusCode)
	}
}

// TestWorkerPanicRecovery: a simulator panic fails the job, not the
// server.
func TestWorkerPanicRecovery(t *testing.T) {
	e := newEnv(t, service.Options{
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return panickyDevice{Device: d}, nil
		},
	})
	cfg := smallConfig()
	_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
	job := decodeJob(t, data)
	if job.Status != service.StatusFailed || !strings.Contains(job.Error, "panicked") {
		t.Fatalf("panicking run job = %+v", job)
	}

	op := kernel.Copy
	_, data = e.post(t, "/v1/sweep", service.SweepRequest{Target: "cpu", Base: &cfg, Space: dse.Space{VecWidths: []int{1, 2}}, Op: &op})
	sweep := decodeJob(t, data)
	if sweep.Status != service.StatusDone || sweep.Sweep.Infeasible != 2 {
		t.Fatalf("panicking sweep job = %+v", sweep)
	}

	// The server survived both.
	resp, _ := e.get(t, "/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics: %d", resp.StatusCode)
	}
}

// TestRunCacheHit is the service's core guarantee: a repeated identical
// /v1/run answers from the cache without compiling or simulating again.
func TestRunCacheHit(t *testing.T) {
	e := newEnv(t, service.Options{})
	req := service.RunRequest{Target: "aocl", Config: ptr(smallConfig())}

	_, data := e.post(t, "/v1/run", req)
	first := decodeJob(t, data)
	if first.Status != service.StatusDone || first.Cached {
		t.Fatalf("first run = %+v", first)
	}
	compilesAfterFirst := e.compiles.Load()
	if compilesAfterFirst == 0 {
		t.Fatal("first run must compile")
	}

	_, data = e.post(t, "/v1/run", req)
	second := decodeJob(t, data)
	if second.Status != service.StatusDone {
		t.Fatalf("second run = %+v", second)
	}
	if !second.Cached {
		t.Error("repeated identical run must be served from the cache")
	}
	if got := e.compiles.Load(); got != compilesAfterFirst {
		t.Errorf("repeated run recompiled: %d -> %d compilations", compilesAfterFirst, got)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", first.Fingerprint, second.Fingerprint)
	}

	// An equivalent config spelled with a defaulted field omitted hits
	// too: fingerprints are canonical (zero Scalar means DefaultScalar).
	sparse := smallConfig()
	sparse.Scalar = 0
	_, data = e.post(t, "/v1/run", service.RunRequest{Target: "aocl", Config: &sparse})
	third := decodeJob(t, data)
	if !third.Cached {
		t.Error("canonically equal config must hit the cache")
	}

	var h struct {
		Cache service.CacheStats `json:"cache"`
	}
	_, data = e.get(t, "/v1/healthz")
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Cache.Hits < 2 || h.Cache.Entries == 0 {
		t.Errorf("cache stats = %+v", h.Cache)
	}
}

func TestSweepMatchesExploreAndCaches(t *testing.T) {
	e := newEnv(t, service.Options{})
	base := smallConfig()
	space := dse.Space{VecWidths: []int{1, 2, 4}}
	op := kernel.Copy

	req := service.SweepRequest{Target: "cpu", Base: &base, Space: space, Op: &op}
	resp, data := e.post(t, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Sweep == nil {
		t.Fatalf("job = %+v", job)
	}
	if len(job.Sweep.Ranked) != 3 || job.Sweep.Infeasible != 0 {
		t.Fatalf("sweep = %d ranked, %d infeasible", len(job.Sweep.Ranked), job.Sweep.Infeasible)
	}

	// The service ranking is byte-identical to a local dse.Explore.
	dev, err := targets.ByID("cpu")
	if err != nil {
		t.Fatal(err)
	}
	want := dse.Explore(dev, base, space, op)
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(*job.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("service sweep differs from dse.Explore:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// A repeated sweep serves every grid point from the cache.
	compilesBefore := e.compiles.Load()
	_, data = e.post(t, "/v1/sweep", req)
	again := decodeJob(t, data)
	if again.Status != service.StatusDone {
		t.Fatalf("repeat sweep = %+v", again)
	}
	if again.CachedPoints != 3 {
		t.Errorf("repeat sweep cached %d/3 points", again.CachedPoints)
	}
	if got := e.compiles.Load(); got != compilesBefore {
		t.Errorf("repeat sweep recompiled: %d -> %d", compilesBefore, got)
	}
	againJSON, err := json.Marshal(*again.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, againJSON) {
		t.Error("cached sweep ranking differs from fresh ranking")
	}

	// A /v1/run matching one grid point hits the sweep-primed cache.
	pt := base
	pt.Ops = []kernel.Op{op}
	pt.VecWidth = 2
	_, data = e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &pt})
	run := decodeJob(t, data)
	if !run.Cached {
		t.Error("run matching a sweep grid point must hit the cache")
	}
}

// TestDisabledCache: with CacheEntries < 0, nothing is cached, nothing
// is deduplicated, and the cache telemetry stays silent.
func TestDisabledCache(t *testing.T) {
	e := newEnv(t, service.Options{CacheEntries: -1})
	cfg := smallConfig()
	req := service.RunRequest{Target: "cpu", Config: &cfg}
	for i := 0; i < 2; i++ {
		_, data := e.post(t, "/v1/run", req)
		job := decodeJob(t, data)
		if job.Status != service.StatusDone || job.Cached {
			t.Fatalf("run %d = %+v", i, job)
		}
	}
	op := kernel.Copy
	_, data := e.post(t, "/v1/sweep", service.SweepRequest{Target: "cpu", Base: &cfg, Space: dse.Space{VecWidths: []int{1, 2}}, Op: &op})
	sweep := decodeJob(t, data)
	if sweep.Status != service.StatusDone || sweep.CachedPoints != 0 {
		t.Fatalf("sweep = %+v", sweep)
	}
	stats := e.srv.CacheStats()
	if stats.Hits != 0 || stats.Misses != 0 || stats.Entries != 0 {
		t.Errorf("disabled cache recorded activity: %+v", stats)
	}
}

// TestSweepCachedPointConfigConsistency: a sweep grid point served
// from a cache entry primed under a canonically-equal spelling must
// still read exactly like a fresh evaluation — Point.Config and
// Result.Config agree with the grid, not with the original submitter.
func TestSweepCachedPointConfigConsistency(t *testing.T) {
	e := newEnv(t, service.Options{})
	cfg := smallConfig() // Attrs.Unroll == 0
	_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
	if decodeJob(t, data).Status != service.StatusDone {
		t.Fatal("prime run failed")
	}

	op := kernel.Copy
	// unroll 1 is canonically equal to the primed unroll 0.
	req := service.SweepRequest{Target: "cpu", Base: &cfg, Space: dse.Space{Unrolls: []int{1}}, Op: &op}
	_, data = e.post(t, "/v1/sweep", req)
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.CachedPoints != 1 {
		t.Fatalf("job = %+v", job)
	}
	pt := job.Sweep.Ranked[0]
	if pt.Config.Attrs.Unroll != 1 {
		t.Errorf("point config unroll = %d, want the grid's 1", pt.Config.Attrs.Unroll)
	}
	if pt.Result.Config.Attrs.Unroll != 1 {
		t.Errorf("cached result config unroll = %d, want re-homed to the grid's 1", pt.Result.Config.Attrs.Unroll)
	}

	// And symmetrically: a run hitting the sweep-primed (unroll 1)
	// entry reads like a fresh canonical run (unroll 0).
	_, data = e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
	run := decodeJob(t, data)
	if !run.Cached {
		t.Fatal("run must hit the primed cache")
	}
	if run.Result.Config.Attrs.Unroll != 0 {
		t.Errorf("cached run result unroll = %d, want canonical 0", run.Result.Config.Attrs.Unroll)
	}
}

// TestConcurrentSweepSubmission exercises the queue, pool and cache
// under parallel submitters; run with -race.
func TestConcurrentSweepSubmission(t *testing.T) {
	e := newEnv(t, service.Options{})
	base := smallConfig()
	space := dse.Space{VecWidths: []int{1, 2}, Types: []kernel.DataType{kernel.Int32, kernel.Float64}}
	op := kernel.Triad

	const submitters = 8
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := []string{"cpu", "gpu"}[i%2]
			req := service.SweepRequest{Target: target, Base: &base, Space: space, Op: &op}
			b, _ := json.Marshal(req)
			resp, err := http.Post(e.ts.URL+"/v1/sweep", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("submitter %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			var jr service.JobResponse
			if err := json.Unmarshal(data, &jr); err != nil {
				errs <- err
				return
			}
			if jr.Job.Status != service.StatusDone || jr.Job.Sweep == nil {
				errs <- fmt.Errorf("submitter %d: job %+v", i, jr.Job)
				return
			}
			if got := len(jr.Job.Sweep.Ranked) + jr.Job.Sweep.Infeasible; got != 4 {
				errs <- fmt.Errorf("submitter %d: %d points, want 4", i, got)
			}
		}(i)
	}
	// Concurrent pollers stress the job store while sweeps execute.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				resp, err := http.Get(e.ts.URL + "/v1/jobs")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueueFull pins the single worker on a gated device and fills the
// one-slot queue; the next submission must be rejected with 503.
func TestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	opts := service.Options{
		Workers:    1,
		QueueDepth: 1,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return gatedDevice{Device: d, gate: gate}, nil
		},
	}
	e := newEnv(t, opts)
	cfg := smallConfig()

	// Job A occupies the worker (blocked in Compile).
	_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg, Async: true})
	a := decodeJob(t, data)
	waitStatus(t, e, a.ID, service.StatusRunning)

	// Job B fills the queue. Vary the config so neither hits the cache.
	cfgB := cfg
	cfgB.VecWidth = 2
	resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfgB, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status %d: %s", resp.StatusCode, data)
	}
	b := decodeJob(t, data)

	// Job C overflows.
	cfgC := cfg
	cfgC.VecWidth = 4
	resp, _ = e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfgC, Async: true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overflow submit status %d, want 503", resp.StatusCode)
	}

	// The library surface must not hand back a job that will never run.
	cfgD := cfg
	cfgD.VecWidth = 8
	if j, err := e.srv.SubmitRun(context.Background(), "cpu", cfgD, 0); err == nil || j != nil {
		t.Errorf("overflow SubmitRun = (%v, %v), want (nil, ErrQueueFull)", j, err)
	}

	close(gate)
	if final := e.pollJob(t, a.ID); final.Status != service.StatusDone {
		t.Errorf("job A = %+v", final)
	}
	if final := e.pollJob(t, b.ID); final.Status != service.StatusDone {
		t.Errorf("job B = %+v", final)
	}
}

func waitStatus(t *testing.T, e *testEnv, id string, want service.Status) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := e.srv.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.Snapshot().Status == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (now %s)", id, want, j.Snapshot().Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFailedRunJob drives an infeasible configuration end to end.
func TestFailedRunJob(t *testing.T) {
	e := newEnv(t, service.Options{})
	cfg := smallConfig()
	cfg.OptimalLoop = false
	cfg.Loop = kernel.FlatLoop
	cfg.Attrs.Unroll = 64
	cfg.VecWidth = 16
	cfg.Type = kernel.Float64
	cfg.Ops = []kernel.Op{kernel.Triad}
	resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "aocl", Config: &cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusFailed || job.Error == "" {
		t.Fatalf("infeasible run job = %+v", job)
	}
}

// TestCloseFailsQueuedJobs guarantees no waiter deadlocks across
// shutdown: every submitted job's Done channel closes even if the job
// never ran.
func TestCloseFailsQueuedJobs(t *testing.T) {
	gate := make(chan struct{})
	srv := service.New(service.Options{
		Workers: 1,
		// Room for all three jobs even if the worker has not dequeued the
		// first one yet.
		QueueDepth: 3,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return gatedDevice{Device: d, gate: gate}, nil
		},
	})
	var jobs []*service.Job
	for i, vec := range []int{1, 2, 4} {
		cfg := smallConfig()
		cfg.VecWidth = vec
		j, err := srv.SubmitRun(context.Background(), "cpu", cfg, 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	close(gate)
	srv.Close()
	for i, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %d Done channel still open after Close", i)
		}
		v := j.Snapshot()
		if v.Status != service.StatusDone && v.Status != service.StatusFailed {
			t.Errorf("job %d left in %s after Close", i, v.Status)
		}
	}
}

// TestSweepFactoryFailureFailsJob distinguishes infrastructure errors
// from infeasible design points: a device factory that breaks mid-sweep
// must fail the job, not report an empty successful exploration.
func TestSweepFactoryFailureFailsJob(t *testing.T) {
	e := newEnv(t, service.Options{
		// Submit-time validation is a membership check against
		// TargetInfos, so the broken factory is only hit by sweep workers.
		NewDevice: func(id string) (device.Device, error) {
			return nil, fmt.Errorf("backend exploded")
		},
	})
	base := smallConfig()
	req := service.SweepRequest{Target: "cpu", Base: &base, Space: dse.Space{VecWidths: []int{1, 2}}}
	resp, data := e.post(t, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusFailed || !strings.Contains(job.Error, "backend exploded") {
		t.Fatalf("job = %+v", job)
	}
	if job.Sweep != nil {
		t.Error("failed sweep must not carry an exploration")
	}
}

// TestJobEviction bounds the job index in a long-lived server.
func TestJobEviction(t *testing.T) {
	e := newEnv(t, service.Options{MaxJobsRetained: 2})
	var ids []string
	for _, vec := range []int{1, 2, 4, 8} {
		cfg := smallConfig()
		cfg.VecWidth = vec
		_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
		job := decodeJob(t, data)
		if job.Status != service.StatusDone {
			t.Fatalf("job = %+v", job)
		}
		ids = append(ids, job.ID)
	}
	_, data := e.get(t, "/v1/jobs")
	var jl service.JobsResponse
	if err := json.Unmarshal(data, &jl); err != nil {
		t.Fatal(err)
	}
	if len(jl.Jobs) > 2 {
		t.Errorf("retained %d jobs, want <= 2", len(jl.Jobs))
	}
	resp, _ := e.get(t, "/v1/jobs/"+ids[0])
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job should be evicted, got %d", resp.StatusCode)
	}
	resp, _ = e.get(t, "/v1/jobs/"+ids[len(ids)-1])
	if resp.StatusCode != http.StatusOK {
		t.Errorf("newest job must survive eviction, got %d", resp.StatusCode)
	}
}

// TestConcurrentIdenticalRunsSingleFlight proves overlapping identical
// submissions simulate once: a gated leader holds the simulation open
// while followers pile up, and after release only one compilation has
// happened.
func TestConcurrentIdenticalRunsSingleFlight(t *testing.T) {
	gate := make(chan struct{})
	compiles := &atomic.Int64{}
	e := newEnv(t, service.Options{
		Workers: 4,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return countingDevice{Device: gatedDevice{Device: d, gate: gate}, compiles: compiles}, nil
		},
	})
	cfg := smallConfig()
	const n = 4
	var jobs []string
	for i := 0; i < n; i++ {
		_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg, Async: true})
		jobs = append(jobs, decodeJob(t, data).ID)
	}
	close(gate)
	cached := 0
	for _, id := range jobs {
		v := e.pollJob(t, id)
		if v.Status != service.StatusDone {
			t.Fatalf("job %s = %+v", id, v)
		}
		if v.Cached {
			cached++
		}
	}
	if got := compiles.Load(); got != 1 {
		t.Errorf("identical concurrent runs compiled %d times, want 1", got)
	}
	if cached != n-1 {
		t.Errorf("%d of %d jobs cached, want %d", cached, n, n-1)
	}
}

// TestSubmitAfterClose returns ErrClosed instead of queueing a job no
// worker will ever run.
func TestSubmitAfterClose(t *testing.T) {
	srv := service.New(service.Options{Workers: 1})
	srv.Close()
	j, err := srv.SubmitRun(context.Background(), "cpu", smallConfig(), 0)
	if j != nil || !errors.Is(err, service.ErrClosed) {
		t.Errorf("SubmitRun after Close = (%v, %v), want (nil, ErrClosed)", j, err)
	}
}

func ptr[T any](v T) *T { return &v }
