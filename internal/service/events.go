package service

import (
	"sync"
	"time"

	"mpstream/internal/cluster"
	"mpstream/internal/progress"
)

// Event types, in the order a subscriber typically sees them.
const (
	// EventState marks a lifecycle transition (queued → running).
	EventState = "state"
	// EventPoint reports one finished evaluation unit: a sweep grid
	// point, an optimizer evaluation, or a surface ladder rung.
	EventPoint = "point"
	// EventProgress carries a progress snapshot; one follows every
	// point event.
	EventProgress = "progress"
	// EventShard reports a fleet job's shard scheduling: assignment to a
	// worker, completion, a failed attempt about to retry elsewhere, or
	// a shard lost after its attempts ran out.
	EventShard = "shard"
	// EventResult is the terminal event: the job's final view, including
	// its payload. It is always the last event of a stream.
	EventResult = "result"
)

// Event is one NDJSON record of GET /v1/jobs/{id}/events.
type Event struct {
	// Seq numbers events per job, starting at 1; gaps mean the bounded
	// history (or a slow subscriber's buffer) dropped records.
	Seq  uint64    `json:"seq"`
	Job  string    `json:"job"`
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	// Trace is the job's trace ID, stamped on every event so a
	// subscriber can correlate streams across the fleet.
	Trace string `json:"trace,omitempty"`
	// State rides on state and result events.
	State Status `json:"state,omitempty"`
	// Progress rides on progress events.
	Progress *progress.Snapshot `json:"progress,omitempty"`
	// Point rides on point events.
	Point *PointEvent `json:"point,omitempty"`
	// Shard rides on shard events (fleet jobs only).
	Shard *ShardEvent `json:"shard,omitempty"`
	// Result is the final job view, on result events only.
	Result *View `json:"result,omitempty"`
}

// ShardEvent is the fleet scheduling payload of a shard event; the
// wire shape is owned by the cluster layer.
type ShardEvent = cluster.ShardUpdate

// PointEvent is the compact per-evaluation-unit payload of a point
// event.
type PointEvent struct {
	// Label identifies the unit: a dse.ConfigLabel for sweep and
	// optimize evaluations, "pattern/readfrac@rate" for a surface rung.
	Label string `json:"label"`
	// GBps is the unit's bandwidth: the kernel bandwidth of an evaluated
	// configuration, or the achieved bandwidth of a surface rung.
	GBps float64 `json:"gbps"`
	// Feasible is false when the device rejected the configuration.
	Feasible bool `json:"feasible"`
	// Error carries the infeasibility reason, when any.
	Error string `json:"error,omitempty"`
	// Cached marks units answered by the run-result cache.
	Cached bool `json:"cached,omitempty"`
	// LatencyNs rides on surface rungs: the loaded latency.
	LatencyNs float64 `json:"latency_ns,omitempty"`
}

const (
	// maxEventHistory bounds the per-job replay log; a subscriber
	// arriving later than that sees a Seq gap, not unbounded memory.
	maxEventHistory = 1024
	// subscriberBuffer bounds one live subscriber's channel. The stream
	// is telemetry: a subscriber that cannot keep up loses intermediate
	// events (visible as Seq gaps) but always gets the terminal result,
	// which the handler reads from the job itself.
	subscriberBuffer = 256
)

// eventLog is the per-job bounded publish/subscribe log. The zero value
// is ready to use once job is set.
type eventLog struct {
	mu      sync.Mutex
	job     string
	trace   string
	seq     uint64
	history []Event
	subs    map[chan Event]struct{}
}

// publish stamps and fans an event out: appended to the bounded history
// (for replay to late subscribers) and offered non-blocking to every
// live subscriber.
func (j *Job) publish(ev Event) {
	l := &j.events
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	ev.Job = l.job
	ev.Trace = l.trace
	ev.Time = time.Now().UTC()
	l.history = append(l.history, ev)
	if len(l.history) > maxEventHistory {
		l.history = l.history[len(l.history)-maxEventHistory:]
	}
	for ch := range l.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, the Seq gap tells the story
		}
	}
	l.mu.Unlock()
}

// Subscribe attaches a live event subscriber and returns the replayed
// history alongside it. The backlog copy and the registration happen
// atomically, so no event is lost between them. Always pair with
// Unsubscribe.
func (j *Job) Subscribe() (backlog []Event, ch <-chan Event) {
	l := &j.events
	c := make(chan Event, subscriberBuffer)
	l.mu.Lock()
	backlog = append([]Event(nil), l.history...)
	if l.subs == nil {
		l.subs = make(map[chan Event]struct{})
	}
	l.subs[c] = struct{}{}
	l.mu.Unlock()
	return backlog, c
}

// Unsubscribe detaches a Subscribe channel.
func (j *Job) Unsubscribe(ch <-chan Event) {
	l := &j.events
	l.mu.Lock()
	for c := range l.subs {
		if c == ch {
			delete(l.subs, c)
			break
		}
	}
	l.mu.Unlock()
}

// publishPoint emits the point event and the progress snapshot that
// follows every completed evaluation unit.
func (j *Job) publishPoint(p PointEvent) {
	j.publish(Event{Type: EventPoint, Point: &p})
	ps := j.prog.Snapshot()
	j.publish(Event{Type: EventProgress, Progress: &ps})
}

// publishShard emits a fleet job's shard scheduling update, followed
// by a progress snapshot when the update rewound already-counted
// points (a retry re-runs them).
func (j *Job) publishShard(u ShardEvent) {
	j.publish(Event{Type: EventShard, Shard: &u})
	if u.RewindPoints > 0 {
		ps := j.prog.Snapshot()
		j.publish(Event{Type: EventProgress, Progress: &ps})
	}
}
