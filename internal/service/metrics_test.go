package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mpstream/internal/obs"
	"mpstream/internal/service"
)

// scrape fetches /v1/metrics and returns the exposition body.
func scrape(t *testing.T, e *testEnv) string {
	t.Helper()
	resp, data := e.get(t, "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	return string(data)
}

// metricValueOk extracts one sample's value from an exposition body;
// pattern is a regexp matching the full sample name+labels prefix. The
// second return is false when the family has no such sample yet.
func metricValueOk(body, pattern string) (float64, bool) {
	re := regexp.MustCompile(`(?m)^` + pattern + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func metricValue(t *testing.T, body, pattern string) float64 {
	t.Helper()
	v, ok := metricValueOk(body, pattern)
	if !ok {
		t.Fatalf("no sample matching %q in:\n%s", pattern, body)
	}
	return v
}

// postRun submits one synchronous run and asserts it finished done.
func postRun(t *testing.T, e *testEnv) service.View {
	t.Helper()
	cfg := smallConfig()
	resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("run job = %+v", job)
	}
	return job
}

// TestMetricsEndpoint covers the exposition contract: after one run,
// the scrape is well-formed Prometheus text and carries the http,
// jobs, cache and sim families the issue demands.
func TestMetricsEndpoint(t *testing.T) {
	e := newEnv(t, service.Options{})
	postRun(t, e)
	postRun(t, e) // second submission is a cache hit

	body := scrape(t, e)
	obs.ValidateExposition(t, body)
	for _, want := range []string{
		"# TYPE mpstream_http_requests_total counter",
		`mpstream_http_requests_total{code="200",route="POST /v1/run"} 2`,
		"# TYPE mpstream_http_request_seconds histogram",
		`mpstream_jobs_submitted_total{kind="run"} 2`,
		`mpstream_jobs_finished_total{kind="run",status="done"} 2`,
		"# TYPE mpstream_job_duration_seconds histogram",
		`mpstream_jobs{state="done"} 2`,
		`mpstream_jobs{state="failed"} 0`,
		`mpstream_cache_hits_total{cache="run"} 1`,
		`mpstream_cache_entries{cache="run"} 1`,
		`mpstream_cache_misses_total{cache="optimize"} 0`,
		"mpstream_queue_depth 0",
		"mpstream_sim_evaluations_total",
		"mpstream_sim_dram_requests_total",
		"mpstream_sim_evaluation_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestMetricsDisabled pins the uninstrumented baseline: DisableMetrics
// serves no /v1/metrics route and Server.Metrics is nil.
func TestMetricsDisabled(t *testing.T) {
	e := newEnv(t, service.Options{DisableMetrics: true})
	if e.srv.Metrics() != nil {
		t.Error("Metrics() non-nil with DisableMetrics")
	}
	resp, _ := e.get(t, "/v1/metrics")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("metrics status %d with DisableMetrics, want 404", resp.StatusCode)
	}
	// Traces still flow without metrics.
	resp, _ = e.get(t, "/v1/healthz")
	if resp.Header.Get(obs.TraceHeader) == "" {
		t.Error("no trace header with metrics disabled")
	}
}

// TestMetricsMonotonicUnderConcurrency hammers the server with
// concurrent jobs while scraping, asserting the finished-jobs counter
// never goes backwards between scrapes and lands exactly on the total.
// Meaningful under -race, which CI runs.
func TestMetricsMonotonicUnderConcurrency(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 4})
	const goroutines, runsEach = 4, 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	var lastSeen float64
	var scrapeMu sync.Mutex
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			body := scrape(t, e)
			v, ok := metricValueOk(body, `mpstream_jobs_submitted_total\{kind="run"\}`)
			if !ok {
				continue // family not created until the first submission
			}
			scrapeMu.Lock()
			if v < lastSeen {
				t.Errorf("jobs_submitted_total went backwards: %v -> %v", lastSeen, v)
			}
			lastSeen = v
			scrapeMu.Unlock()
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < runsEach; i++ {
				cfg := smallConfig()
				cfg.ArrayBytes = int64(1<<14) << uint(g) // distinct fingerprints
				cfg.NTimes = 1 + i
				resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("run status %d: %s", resp.StatusCode, data)
				}
			}
		}(g)
	}
	// Stop the scraper only after the submitters are done.
	wg.Wait()
	close(stop)
	<-scraperDone

	body := scrape(t, e)
	obs.ValidateExposition(t, body)
	total := float64(goroutines * runsEach)
	if v := metricValue(t, body, `mpstream_jobs_submitted_total\{kind="run"\}`); v != total {
		t.Errorf("jobs_submitted_total = %v, want %v", v, total)
	}
	if v := metricValue(t, body, `mpstream_jobs_finished_total\{kind="run",status="done"\}`); v != total {
		t.Errorf("jobs_finished_total = %v, want %v", v, total)
	}
	if v := metricValue(t, body, `mpstream_job_duration_seconds_count\{kind="run"\}`); v != total {
		t.Errorf("job_duration_seconds_count = %v, want %v", v, total)
	}
}

// TestTraceSingleServer pins the trace contract on one server: a
// supplied trace is echoed, lands in the job view, and stamps every
// event in the NDJSON stream; an absent trace is minted.
func TestTraceSingleServer(t *testing.T) {
	e := newEnv(t, service.Options{})
	cfg := smallConfig()
	b, err := json.Marshal(service.RunRequest{Target: "cpu", Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, e.ts.URL+"/v1/run", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "trace-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "trace-test-1" {
		t.Errorf("trace echoed as %q", got)
	}
	job := decodeJob(t, data)
	if job.Trace != "trace-test-1" {
		t.Errorf("job trace %q, want trace-test-1", job.Trace)
	}

	// Every event of the job's stream carries the trace.
	sresp, err := http.Get(e.ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sc := bufio.NewScanner(sresp.Body)
	events := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		events++
		if ev.Trace != "trace-test-1" {
			t.Errorf("event %d (%s) trace %q, want trace-test-1", ev.Seq, ev.Type, ev.Trace)
		}
		if ev.Type == service.EventResult {
			break
		}
	}
	if events == 0 {
		t.Fatal("no events streamed")
	}

	// Without a supplied trace, the server mints a well-formed one.
	minted := postRun(t, e)
	if minted.Trace == "" || obs.SanitizeTraceID(minted.Trace) == "" {
		t.Errorf("minted job trace %q invalid", minted.Trace)
	}
}

// TestFleetTracePropagation asserts the coordinator's trace ID reaches
// the worker-side shard jobs via the X-Mpstream-Trace header: every
// shard job on every worker carries the coordinator job's trace.
func TestFleetTracePropagation(t *testing.T) {
	fe := newFleetEnv(t, 2, nil)
	b, err := json.Marshal(sweepReq())
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, fe.ts.URL+"/v1/sweep", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "fleet-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("fleet sweep job = %+v", job)
	}
	if job.Trace != "fleet-trace-7" {
		t.Errorf("coordinator job trace %q, want fleet-trace-7", job.Trace)
	}

	shardJobs := 0
	for i, w := range fe.workers {
		for _, v := range workerJobs(t, w) {
			shardJobs++
			if v.Trace != "fleet-trace-7" {
				t.Errorf("worker %d job %s trace %q, want fleet-trace-7", i, v.ID, v.Trace)
			}
		}
	}
	if shardJobs == 0 {
		t.Fatal("no shard jobs landed on the workers")
	}

	// The coordinator's scrape shows fleet scheduling outcomes.
	body := scrape(t, fe.testEnv)
	obs.ValidateExposition(t, body)
	if v := metricValue(t, body, `mpstream_cluster_shards_total\{state="done"\}`); v < 1 {
		t.Errorf("cluster shards done = %v, want >= 1", v)
	}
	if v := metricValue(t, body, `mpstream_cluster_workers\{state="alive"\}`); v != 2 {
		t.Errorf("cluster workers alive = %v, want 2", v)
	}
	for _, want := range []string{
		`mpstream_cluster_worker_inflight{worker="w0"}`,
		`mpstream_cluster_worker_heartbeat_age_seconds{worker="w1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("coordinator scrape missing %q", want)
		}
	}
}

// TestJobsTotalFiltered pins the /v1/jobs counts satellite: total is
// all retained jobs, filtered the state-matching count before the
// limit truncation.
func TestJobsTotalFiltered(t *testing.T) {
	e := newEnv(t, service.Options{})
	for i := 0; i < 3; i++ {
		cfg := smallConfig()
		cfg.NTimes = 1 + i
		resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d status %d: %s", i, resp.StatusCode, data)
		}
	}
	resp, data := e.get(t, "/v1/jobs?state=done&limit=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs status %d: %s", resp.StatusCode, data)
	}
	var jr service.JobsResponse
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Jobs) != 1 || jr.Total != 3 || jr.Filtered != 3 {
		t.Errorf("jobs = %d listed, total %d, filtered %d; want 1/3/3", len(jr.Jobs), jr.Total, jr.Filtered)
	}
	resp, data = e.get(t, "/v1/jobs?state=failed")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs status %d: %s", resp.StatusCode, data)
	}
	jr = service.JobsResponse{}
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Jobs) != 0 || jr.Total != 3 || jr.Filtered != 0 {
		t.Errorf("failed jobs = %d listed, total %d, filtered %d; want 0/3/0", len(jr.Jobs), jr.Total, jr.Filtered)
	}
}

// TestHealthzJobsSection asserts /v1/healthz reports every lifecycle
// state, zeros included.
func TestHealthzJobsSection(t *testing.T) {
	e := newEnv(t, service.Options{})
	postRun(t, e)
	_, data := e.get(t, "/v1/healthz")
	var h struct {
		Jobs map[string]int `json:"jobs"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	for _, st := range service.Statuses() {
		if _, ok := h.Jobs[string(st)]; !ok {
			t.Errorf("healthz jobs missing state %q: %v", st, h.Jobs)
		}
	}
	if h.Jobs["done"] != 1 {
		t.Errorf("healthz jobs done = %d, want 1", h.Jobs["done"])
	}
}

// TestMetricsHistogramBuckets asserts the request-latency histogram's
// cumulative bucket invariant on a real scrape: counts never decrease
// across increasing bounds and the +Inf bucket equals _count.
func TestMetricsHistogramBuckets(t *testing.T) {
	e := newEnv(t, service.Options{})
	for i := 0; i < 5; i++ {
		e.get(t, "/v1/healthz")
	}
	body := scrape(t, e)
	re := regexp.MustCompile(`(?m)^mpstream_http_request_seconds_bucket\{route="GET /v1/healthz",le="([^"]+)"\} (\d+)$`)
	matches := re.FindAllStringSubmatch(body, -1)
	if len(matches) < 2 {
		t.Fatalf("no healthz buckets in scrape:\n%s", body)
	}
	prev := -1.0
	last := 0.0
	var lastLE string
	for _, m := range matches {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Errorf("bucket le=%q count %v below previous %v", m[1], v, prev)
		}
		prev, last, lastLE = v, v, m[1]
	}
	if lastLE != "+Inf" {
		t.Errorf("last bucket le=%q, want +Inf", lastLE)
	}
	count := metricValue(t, body, `mpstream_http_request_seconds_count\{route="GET /v1/healthz"\}`)
	if last != count || count < 5 {
		t.Errorf("+Inf bucket %v vs count %v (want equal, >= 5)", last, count)
	}
}
