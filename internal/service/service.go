// Package service is the benchmark-as-a-service layer: a long-lived
// server that schedules MP-STREAM runs, design-space sweeps, budgeted
// optimizer searches (dse/search) and bandwidth–latency surface
// measurements (internal/surface) onto a bounded worker pool, caches
// results by canonical fingerprint, and exposes everything over an
// HTTP JSON API (cmd/mpserved). It turns the one-shot CLI workflow
// into the programmatic exploration service the paper's
// design-space-exploration framing calls for.
//
// Concurrency model: Submit places a job on a bounded queue; Workers
// goroutines (GOMAXPROCS by default) pull jobs and execute them. Each
// execution builds its own device instances — devices carry simulator
// state and are never shared across goroutines. Sweep jobs additionally
// fan their grid points out over dse.EvalParallel, and every grid point
// consults the same result cache a /v1/run request does, so sweeps and
// runs share work transparently.
//
// Caching happens at two granularities. The run-result LRU holds
// individual simulations keyed by (target, canonical config) and is
// shared by runs, sweep grid points and optimizer evaluations. The
// optimizer and surface LRUs hold whole request outcomes keyed by the
// full canonical request — sound because seeded searches and surface
// generations over a deterministic simulator reproduce exactly.
// Identical run, optimize and surface requests are single-flighted:
// concurrent duplicates wait for one leader and then read its cached
// result.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpstream/internal/baseline"
	"mpstream/internal/cluster"
	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
	"mpstream/internal/obs"
	"mpstream/internal/runstate"
	"mpstream/internal/sim/mem"
	"mpstream/internal/surface"
)

// Defaults for Options zero values.
const (
	DefaultQueueDepth   = 256
	DefaultCacheEntries = 512
	// DefaultMaxSweepPoints bounds a single sweep's grid so one request
	// cannot monopolize the service.
	DefaultMaxSweepPoints = 4096
	// DefaultMaxOptimizeBudget bounds a single optimize job's unique
	// simulations. The *space* of an optimize job may be far larger
	// than a sweep's (adaptive search is the point), but the work done
	// is capped by the budget.
	DefaultMaxOptimizeBudget = 4096
	// DefaultMaxJobsRetained bounds the job index in a long-lived
	// server; the oldest finished jobs are evicted beyond it.
	DefaultMaxJobsRetained = 1024
	// DefaultMaxNTimes bounds a run's repetition count.
	DefaultMaxNTimes = 100
	// DefaultMaxVerifyArrayBytes bounds arrays materialized for
	// functional verification (three host slices per run); larger
	// sweeps must set verify false, as the experiments layer does.
	DefaultMaxVerifyArrayBytes = 256 << 20
	// DefaultMaxSurfacePoints bounds one surface request's ladder
	// (patterns x ratios x rates).
	DefaultMaxSurfacePoints = 256
	// DefaultMaxSurfaceWindowTxns bounds the transactions simulated per
	// ladder point.
	DefaultMaxSurfaceWindowTxns = 1 << 20
	// DefaultMaxTimeout is the ceiling a request's timeout_ms is clamped
	// to: per-job deadlines exist to stop hopeless work early, not to
	// extend it indefinitely.
	DefaultMaxTimeout = 15 * time.Minute
)

// ErrQueueFull is returned by Submit when the job queue is at capacity.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: server closed")

// Options configures a Server. The zero value is a production-shaped
// default: GOMAXPROCS workers, a 256-deep queue, a 512-entry cache and
// the paper's four simulated targets.
type Options struct {
	// Workers bounds concurrently executing jobs; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds queued-but-not-running jobs; <= 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// CacheEntries bounds the result cache; 0 means DefaultCacheEntries,
	// negative disables caching.
	CacheEntries int
	// SweepWorkers bounds the per-sweep grid fan-out; <= 0 divides
	// GOMAXPROCS across the job workers so concurrent sweeps cannot
	// oversubscribe the CPU to Workers x GOMAXPROCS goroutines.
	SweepWorkers int
	// MaxSweepPoints rejects sweeps whose grid exceeds it; <= 0 means
	// DefaultMaxSweepPoints.
	MaxSweepPoints int
	// MaxOptimizeBudget rejects optimize jobs whose effective
	// evaluation budget exceeds it; <= 0 means
	// DefaultMaxOptimizeBudget.
	MaxOptimizeBudget int
	// MaxJobsRetained bounds the job index: once exceeded, the oldest
	// finished jobs are evicted (queued and running jobs are never
	// evicted). <= 0 means DefaultMaxJobsRetained.
	MaxJobsRetained int
	// MaxNTimes rejects runs repeating more than this many iterations;
	// <= 0 means DefaultMaxNTimes.
	MaxNTimes int
	// MaxVerifyArrayBytes rejects verified runs over arrays larger than
	// this (verification materializes the arrays in host memory);
	// <= 0 means DefaultMaxVerifyArrayBytes.
	MaxVerifyArrayBytes int64
	// MaxSurfacePoints rejects surface requests whose ladder exceeds
	// it; <= 0 means DefaultMaxSurfacePoints.
	MaxSurfacePoints int
	// MaxTimeout clamps per-job deadlines (the requests' timeout_ms
	// field): a requested deadline beyond it is silently shortened to
	// it. <= 0 means DefaultMaxTimeout.
	MaxTimeout time.Duration
	// NewDevice resolves a target id to a fresh device instance; nil
	// means targets.ByID. Tests inject counting or blocking factories
	// here.
	NewDevice func(id string) (device.Device, error)
	// TargetInfos lists the devices /v1/targets reports, resolved once
	// at startup; it is also the submit-time target whitelist, so a
	// custom NewDevice serving extra targets must list them here. Nil
	// derives the list from the paper's four targets.
	TargetInfos func() []device.Info
	// Cluster attaches a fleet coordinator: sweep and surface jobs are
	// sharded across its registered workers (falling back to local
	// execution while the fleet is empty), optimize jobs farm their
	// point evaluations out through its remote-eval pool, and the
	// /v1/cluster/{register,heartbeat,workers} endpoints come alive.
	// Nil means a standalone server. The server does not own the
	// coordinator; the caller Closes it.
	Cluster *cluster.Coordinator
	// Metrics receives the server's telemetry; nil builds a private
	// registry (read it back via Server.Metrics). Ignored when
	// DisableMetrics is set.
	Metrics *obs.Registry
	// Logger receives the server's structured diagnostics; nil discards
	// them.
	Logger *slog.Logger
	// Origin labels this process's spans in merged fleet traces (the
	// worker ID on workers, "coordinator" on a coordinator); "" means
	// the spans carry no origin (standalone server).
	Origin string
	// SpanCapacity bounds the in-memory span ring; <= 0 means
	// obs.DefaultSpanCapacity. Ignored when DisableMetrics is set
	// (span recording rides the same switch as the metrics registry,
	// keeping the uninstrumented benchmark baseline honest).
	SpanCapacity int
	// DisableMetrics turns all metric instrumentation off (Server.
	// Metrics returns nil and /v1/metrics serves 404) — the
	// uninstrumented baseline the overhead benchmark compares against.
	DisableMetrics bool
	// Baselines is the named-reference store behind /v1/baselines and
	// /v1/check; nil means an in-memory store (no durability). Pass a
	// baseline.DirStore (mpserved -data-dir) for baselines that survive
	// restarts. The server does not own the store's directory; it only
	// reads and writes entries.
	Baselines baseline.Store
	// CheckInterval, when positive, starts the drift sentinel: a
	// background loop re-checking every registered baseline on this
	// period (mpserved -check-interval). Checks run through the normal
	// job queue — and through the fleet when a coordinator with alive
	// workers is attached.
	CheckInterval time.Duration
	// CheckPerturb != 0 scales every check's measured metrics
	// (bandwidths x f, latencies / f) before the verdict — a drift-
	// injection drill knob (mpserved -check-perturb) for rehearsing the
	// alerting path on an otherwise deterministic simulator. It touches
	// only check verdicts, never stored results or caches.
	CheckPerturb float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = DefaultCacheEntries
	}
	if o.SweepWorkers <= 0 {
		o.SweepWorkers = runtime.GOMAXPROCS(0) / o.Workers
		if o.SweepWorkers < 1 {
			o.SweepWorkers = 1
		}
	}
	if o.MaxSweepPoints <= 0 {
		o.MaxSweepPoints = DefaultMaxSweepPoints
	}
	if o.MaxOptimizeBudget <= 0 {
		o.MaxOptimizeBudget = DefaultMaxOptimizeBudget
	}
	if o.MaxJobsRetained <= 0 {
		o.MaxJobsRetained = DefaultMaxJobsRetained
	}
	if o.MaxNTimes <= 0 {
		o.MaxNTimes = DefaultMaxNTimes
	}
	if o.MaxVerifyArrayBytes <= 0 {
		o.MaxVerifyArrayBytes = DefaultMaxVerifyArrayBytes
	}
	if o.MaxSurfacePoints <= 0 {
		o.MaxSurfacePoints = DefaultMaxSurfacePoints
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = DefaultMaxTimeout
	}
	if o.NewDevice == nil {
		o.NewDevice = targets.ByID
	}
	if o.Baselines == nil {
		o.Baselines = baseline.NewMemStore()
	}
	if o.TargetInfos == nil {
		o.TargetInfos = func() []device.Info {
			devs := targets.All()
			infos := make([]device.Info, len(devs))
			for i, d := range devs {
				infos[i] = d.Info()
			}
			return infos
		}
	}
	return o
}

// Server schedules benchmark jobs onto a worker pool and caches their
// results. Create with New, serve its Handler, and Close it when done.
type Server struct {
	opts      Options
	infos     []device.Info // target list, resolved once at startup
	jobs      *jobStore
	queue     chan *Job
	cache     *resultCache
	optCache  *optimizeCache
	surfCache *surfaceCache
	start     time.Time
	reg       *obs.Registry // nil when Options.DisableMetrics
	rec       *obs.Recorder // span recorder; nil when Options.DisableMetrics
	log       *slog.Logger  // never nil; NopLogger by default

	// flight deduplicates concurrently executing identical run jobs:
	// fingerprint -> channel closed when the leading execution finishes.
	flightMu sync.Mutex
	flight   map[string]chan struct{}

	// checkMu guards the baseline monitor state: the latest report per
	// baseline (the drift-ratio and last-check-age gauges read it) and
	// the sentinel's in-flight set (one outstanding check per baseline).
	checkMu       sync.Mutex
	checkState    map[string]baseline.Report
	checkInflight map[string]bool
	// alerts is the bounded feed of non-pass verdicts behind
	// GET /v1/baselines/alerts.
	alerts alertLog

	// closeMu orders submissions against Close: enqueue holds the read
	// lock, so once Close holds the write lock and sets closed, nothing
	// can slip into the queue after the drain.
	closeMu   sync.RWMutex
	closed    bool
	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:      opts,
		infos:     opts.TargetInfos(),
		jobs:      newJobStore(opts.MaxJobsRetained),
		queue:     make(chan *Job, opts.QueueDepth),
		cache:     newResultCache(opts.CacheEntries),
		optCache:  newOptimizeCache(opts.CacheEntries),
		surfCache: newSurfaceCache(opts.CacheEntries),
		flight:    make(map[string]chan struct{}),
		start:     time.Now(),
		quit:      make(chan struct{}),

		checkState:    make(map[string]baseline.Report),
		checkInflight: make(map[string]bool),
	}
	s.initObs(opts)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if opts.CheckInterval > 0 {
		s.wg.Add(1)
		go s.sentinel(opts.CheckInterval)
	}
	return s
}

// Close stops the worker pool. Running jobs finish; jobs still queued
// are failed so their Done channels close and no waiter deadlocks.
// Submissions racing Close either land before the drain or get
// ErrClosed. Close is idempotent.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	s.closeOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			j.finish(StatusFailed, func(v *View) { v.Error = "service shut down before the job ran" })
		default:
			return
		}
	}
}

// CacheStats reports result-cache telemetry.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, bool) { return s.jobs.get(id) }

// Jobs lists job views in stable submit-time order, optionally filtered
// to one state ("" = all) and limited to the most recent limit entries
// (<= 0 = all). total counts retained jobs before filtering, matched
// the jobs passing the state filter before the limit.
func (s *Server) Jobs(state Status, limit int) (views []View, total, matched int) {
	return s.jobs.snapshots(state, limit)
}

// CancelJob requests cancellation of a job. A queued job lands in
// canceled immediately; a running one stops at its next evaluation-unit
// boundary (point, search step, ladder rung) and lands in canceled
// carrying its partial results; a terminal job is untouched — the call
// is idempotent. ok is false for an unknown id.
func (s *Server) CancelJob(id string) (*Job, bool) {
	j, ok := s.jobs.get(id)
	if !ok {
		return nil, false
	}
	j.cancelRequest()
	return j, true
}

// clampTimeout validates a requested per-job deadline against the
// server ceiling: negatives are rejected, 0 means none, anything above
// MaxTimeout is clamped down to it.
func (s *Server) clampTimeout(timeout time.Duration) (time.Duration, error) {
	if timeout < 0 {
		return 0, fmt.Errorf("service: timeout %v must be >= 0 (0 means none)", timeout)
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}
	return timeout, nil
}

// traceFor reads the request-scoped trace ID from a submission
// context, minting a fresh one when the caller carried none — every
// job has a trace from birth.
func traceFor(ctx context.Context) string {
	if ctx != nil {
		if trace := obs.SanitizeTraceID(obs.TraceID(ctx)); trace != "" {
			return trace
		}
	}
	return obs.NewTraceID()
}

// spanParentFor reads the upstream parent span ID from a submission
// context — set by the HTTP middleware when a coordinator stamped its
// shard span onto the request. "" for direct submissions.
func spanParentFor(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	return obs.SpanParent(ctx)
}

// SubmitRun validates and enqueues one configuration on one target.
// timeout bounds the job's execution once it starts running (clamped to
// Options.MaxTimeout; 0 means none). ctx scopes the submission itself
// (its trace ID is inherited by the job), not the job's execution.
func (s *Server) SubmitRun(ctx context.Context, target string, cfg core.Config, timeout time.Duration) (*Job, error) {
	info, err := s.checkTarget(target)
	if err != nil {
		return nil, err
	}
	timeout, err = s.clampTimeout(timeout)
	if err != nil {
		return nil, err
	}
	cfg = cfg.Canonical()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := s.checkLimits(info, cfg); err != nil {
		return nil, err
	}
	j := s.jobs.add(KindRun, target, timeout, traceFor(ctx), spanParentFor(ctx))
	j.mu.Lock()
	j.cfg = cfg
	j.view.Fingerprint = cfg.Fingerprint(target)
	j.mu.Unlock()
	if err := s.enqueue(j); err != nil {
		return nil, err
	}
	return j, nil
}

// SubmitSweep validates and enqueues a parameter grid on one target.
// timeout bounds the job's execution once it starts running (clamped to
// Options.MaxTimeout; 0 means none). On a coordinator with alive
// workers the grid is sharded across the fleet.
func (s *Server) SubmitSweep(ctx context.Context, target string, base core.Config, space dse.Space, op kernel.Op, timeout time.Duration) (*Job, error) {
	return s.submitSweep(ctx, target, base, space, op, 0, space.Size(), timeout, true)
}

// SubmitSweepShard validates and enqueues the slice [lo, hi) of a
// parameter grid's flat enumeration — the unit a fleet coordinator
// assigns one worker. Shard jobs always execute locally.
func (s *Server) SubmitSweepShard(ctx context.Context, target string, base core.Config, space dse.Space, op kernel.Op, lo, hi int, timeout time.Duration) (*Job, error) {
	if size := space.Size(); lo < 0 || hi < lo || hi > size {
		return nil, fmt.Errorf("service: sweep shard [%d,%d) out of the %d-point grid", lo, hi, size)
	}
	return s.submitSweep(ctx, target, base, space, op, lo, hi, timeout, false)
}

func (s *Server) submitSweep(ctx context.Context, target string, base core.Config, space dse.Space, op kernel.Op, lo, hi int, timeout time.Duration, fleet bool) (*Job, error) {
	info, err := s.checkTarget(target)
	if err != nil {
		return nil, err
	}
	timeout, err = s.clampTimeout(timeout)
	if err != nil {
		return nil, err
	}
	base.Ops = []kernel.Op{op}
	base = base.Canonical()
	if err := base.Validate(); err != nil {
		return nil, err
	}
	// Grid expansion never changes size, repetitions or verification,
	// so bounding the base bounds every point.
	if err := s.checkLimits(info, base); err != nil {
		return nil, err
	}
	// The points limit bounds the work this server actually performs:
	// a shard is charged its slice, a plain sweep its whole grid.
	if n := hi - lo; n > s.opts.MaxSweepPoints {
		return nil, fmt.Errorf("service: sweep grid has %d points, limit %d", n, s.opts.MaxSweepPoints)
	}
	j := s.jobs.add(KindSweep, target, timeout, traceFor(ctx), spanParentFor(ctx))
	j.mu.Lock()
	j.base, j.space, j.op = base, space, op
	j.lo, j.hi = lo, hi
	j.fleet = fleet
	j.mu.Unlock()
	if err := s.enqueue(j); err != nil {
		return nil, err
	}
	return j, nil
}

// SubmitOptimize validates and enqueues a budgeted strategy search
// over a parameter grid on one target. Unlike SubmitSweep the grid
// itself may be arbitrarily large — adaptive strategies exist exactly
// so the whole grid need not be simulated — but the effective
// evaluation budget is bounded by MaxOptimizeBudget.
func (s *Server) SubmitOptimize(ctx context.Context, target string, base core.Config, space dse.Space, op kernel.Op, opts search.Options, timeout time.Duration) (*Job, error) {
	info, err := s.checkTarget(target)
	if err != nil {
		return nil, err
	}
	timeout, err = s.clampTimeout(timeout)
	if err != nil {
		return nil, err
	}
	base.Ops = []kernel.Op{op}
	base = base.Canonical()
	if err := base.Validate(); err != nil {
		return nil, err
	}
	// The search mutates the base only along grid axes, which never
	// change size, repetitions or verification: bounding the base
	// bounds every evaluated point.
	if err := s.checkLimits(info, base); err != nil {
		return nil, err
	}
	strat, err := search.Lookup(opts.Strategy)
	if err != nil {
		return nil, err
	}
	opts.Strategy = strat.Name()
	// Canonicalize the objective ("gbps" and "" spell the same metric)
	// so equivalent requests fingerprint identically.
	obj, err := search.ParseObjective(opts.Objective)
	if err != nil {
		return nil, err
	}
	opts.Objective = obj
	if opts.Budget < 0 {
		return nil, fmt.Errorf("service: optimize budget %d must be >= 0 (0 means the full space)", opts.Budget)
	}
	// Normalize to the effective budget so "0" and "the exact space
	// size" fingerprint identically.
	if size := space.Size(); opts.Budget == 0 || opts.Budget > size {
		opts.Budget = size
	}
	if opts.Budget > s.opts.MaxOptimizeBudget {
		return nil, fmt.Errorf("service: optimize budget %d exceeds limit %d (pass an explicit budget)",
			opts.Budget, s.opts.MaxOptimizeBudget)
	}
	j := s.jobs.add(KindOptimize, target, timeout, traceFor(ctx), spanParentFor(ctx))
	j.mu.Lock()
	j.base, j.space, j.op, j.sopts = base, space, op, opts
	j.view.Fingerprint = optimizeFingerprint(target, base, space, op, opts)
	j.mu.Unlock()
	if err := s.enqueue(j); err != nil {
		return nil, err
	}
	return j, nil
}

// SubmitSurface validates and enqueues a bandwidth–latency surface
// measurement on one target. The configuration is canonicalized
// (defaults resolved) before fingerprinting so equivalent spellings
// share one cache entry. On a coordinator with alive workers the
// ladder's curves are sharded across the fleet.
func (s *Server) SubmitSurface(ctx context.Context, target string, cfg surface.Config, timeout time.Duration) (*Job, error) {
	return s.submitSurface(ctx, target, cfg, 0, cfg.CurveCount(), timeout, true)
}

// SubmitSurfaceShard validates and enqueues the curves [lo, hi) of a
// surface ladder in pattern-major order — the unit a fleet coordinator
// assigns one worker. Shard jobs always execute locally.
func (s *Server) SubmitSurfaceShard(ctx context.Context, target string, cfg surface.Config, lo, hi int, timeout time.Duration) (*Job, error) {
	if n := cfg.CurveCount(); lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("service: surface shard [%d,%d) out of the %d-curve ladder", lo, hi, n)
	}
	return s.submitSurface(ctx, target, cfg, lo, hi, timeout, false)
}

func (s *Server) submitSurface(ctx context.Context, target string, cfg surface.Config, lo, hi int, timeout time.Duration, fleet bool) (*Job, error) {
	if _, err := s.checkTarget(target); err != nil {
		return nil, err
	}
	timeout, err := s.clampTimeout(timeout)
	if err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n := cfg.Points(); n > s.opts.MaxSurfacePoints {
		return nil, fmt.Errorf("service: surface ladder has %d points, limit %d", n, s.opts.MaxSurfacePoints)
	}
	if cfg.WindowTxns > DefaultMaxSurfaceWindowTxns {
		return nil, fmt.Errorf("service: surface window of %d transactions exceeds limit %d",
			cfg.WindowTxns, DefaultMaxSurfaceWindowTxns)
	}
	// The idle-latency chase is unbounded by the window, so it gets the
	// same ceiling: without it one request could pin a worker on an
	// arbitrarily long serial simulation.
	if cfg.ProbeHops > DefaultMaxSurfaceWindowTxns {
		return nil, fmt.Errorf("service: surface probe of %d hops exceeds limit %d",
			cfg.ProbeHops, DefaultMaxSurfaceWindowTxns)
	}
	j := s.jobs.add(KindSurface, target, timeout, traceFor(ctx), spanParentFor(ctx))
	j.mu.Lock()
	j.scfg = cfg
	j.clo, j.chi = lo, hi
	j.fleet = fleet
	j.view.Fingerprint = surfaceFingerprint(target, cfg, lo, hi)
	j.mu.Unlock()
	if err := s.enqueue(j); err != nil {
		return nil, err
	}
	return j, nil
}

// surfaceFingerprint digests a whole surface request. The generator is
// deterministic, so equal fingerprints reproduce equal surfaces and
// whole-surface caching is sound. A full-ladder request keeps the
// legacy digest; a curve shard folds its range in, so a shard and the
// full surface never collide in the cache.
func surfaceFingerprint(target string, cfg surface.Config, lo, hi int) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		b = []byte(fmt.Sprintf("unmarshalable:%s:%#v", err, cfg))
	}
	h := sha256.New()
	h.Write([]byte("surface"))
	h.Write([]byte{0})
	h.Write([]byte(target))
	h.Write([]byte{0})
	h.Write(b)
	if lo != 0 || hi != cfg.CurveCount() {
		fmt.Fprintf(h, "%cshard:%d-%d", 0, lo, hi)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// optimizeFingerprint digests a whole optimize request. The seeded
// search is deterministic, so equal fingerprints reproduce equal
// results — which makes caching whole optimizer runs as sound as
// caching individual simulations.
func optimizeFingerprint(target string, base core.Config, space dse.Space, op kernel.Op, opts search.Options) string {
	req := struct {
		Base    core.Config    `json:"base"`
		Space   dse.Space      `json:"space"`
		Op      kernel.Op      `json:"op"`
		Options search.Options `json:"options"`
	}{base.Canonical(), space, op, opts}
	b, err := json.Marshal(req)
	if err != nil {
		// Only reachable with an enum outside its range; digest the Go
		// representation so distinct invalid requests never collide.
		b = []byte(fmt.Sprintf("unmarshalable:%s:%#v", err, req))
	}
	h := sha256.New()
	h.Write([]byte("optimize"))
	h.Write([]byte{0})
	h.Write([]byte(target))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// checkTarget validates a target id against the (startup-cached) info
// list — a membership check, not a device construction, so cached runs
// never touch the simulator at all.
func (s *Server) checkTarget(id string) (device.Info, error) {
	for _, inf := range s.infos {
		if inf.ID == id {
			return inf, nil
		}
	}
	return device.Info{}, fmt.Errorf("service: unknown target %q", id)
}

// checkLimits bounds a canonical configuration's resource cost so a
// single request cannot exhaust the host or pin a worker indefinitely.
func (s *Server) checkLimits(info device.Info, cfg core.Config) error {
	if cfg.NTimes > s.opts.MaxNTimes {
		return fmt.Errorf("service: ntimes %d exceeds limit %d", cfg.NTimes, s.opts.MaxNTimes)
	}
	if info.MemBytes > 0 && cfg.ArrayBytes > info.MemBytes {
		return fmt.Errorf("service: array bytes %d exceed %s device memory %d",
			cfg.ArrayBytes, info.ID, info.MemBytes)
	}
	if cfg.Verify && cfg.ArrayBytes > s.opts.MaxVerifyArrayBytes {
		return fmt.Errorf("service: verified arrays are limited to %d bytes (got %d); set verify false for timing-only runs",
			s.opts.MaxVerifyArrayBytes, cfg.ArrayBytes)
	}
	return nil
}

// enqueue pushes a stored job onto the bounded queue, undoing the store
// on overflow or after Close. Holding closeMu.RLock across the push
// guarantees every successfully queued job is visible to Close's drain.
func (s *Server) enqueue(j *Job) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		s.jobs.remove(j.ID())
		return ErrClosed
	}
	select {
	case s.queue <- j:
		s.jobSubmitted(j)
		return nil
	default:
		s.jobs.remove(j.ID())
		return ErrQueueFull
	}
}

// worker pulls jobs until Close. quit is checked with priority first:
// a two-way select with both channels ready picks randomly, which would
// let workers keep draining a full queue long after Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.execute(j)
		}
	}
}

// execute runs one job to a terminal state under the job's context
// (canceled by DELETE /v1/jobs/{id}, expired by its timeout_ms
// deadline). A panic in the simulator (or a hostile configuration that
// slipped past validation) fails the job instead of killing the whole
// server.
func (s *Server) execute(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			j.finish(StatusFailed, func(v *View) {
				v.Error = fmt.Sprintf("job panicked: %v", r)
			})
		}
	}()
	ctx, ok := j.start()
	if !ok {
		// Canceled while queued: already terminal, nothing to run.
		return
	}
	snap := j.Snapshot()
	if s.reg != nil && !snap.Started.Before(snap.Created) {
		s.reg.Histogram("mpstream_job_queue_wait_seconds",
			"Time jobs spent queued before a worker claimed them.",
			obs.DurationBuckets, "kind", string(snap.Kind)).
			Observe(snap.Started.Sub(snap.Created).Seconds())
	}
	switch snap.Kind {
	case KindRun:
		s.executeRun(ctx, j)
	case KindSweep:
		s.executeSweep(ctx, j)
	case KindOptimize:
		s.executeOptimize(ctx, j)
	case KindSurface:
		s.executeSurface(ctx, j)
	case KindCheck:
		s.executeCheck(ctx, j)
	default:
		j.finish(StatusFailed, func(v *View) { v.Error = fmt.Sprintf("unknown job kind %q", v.Kind) })
	}
}

// rehome returns a shallow copy of a cached result with its Config
// replaced by the requesting configuration, so a cache hit reads
// exactly like a fresh evaluation no matter which canonically-equal
// spelling primed the entry. The cached entry stays untouched.
func rehome(res *core.Result, cfg core.Config) *core.Result {
	r := *res
	r.Config = cfg
	return &r
}

// claimFlight registers fp as in-flight. leader is true for the caller
// that should execute; followers get the leader's completion channel.
func (s *Server) claimFlight(fp string) (leader bool, ch chan struct{}) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if ch, ok := s.flight[fp]; ok {
		return false, ch
	}
	ch = make(chan struct{})
	s.flight[fp] = ch
	return true, ch
}

// releaseFlight unregisters fp and wakes the followers.
func (s *Server) releaseFlight(fp string, ch chan struct{}) {
	s.flightMu.Lock()
	delete(s.flight, fp)
	s.flightMu.Unlock()
	close(ch)
}

// awaitFlight blocks a single-flight follower until its leader finishes
// or the follower's own job is canceled. false means the follower must
// stop: detaching a follower never touches the leader, which keeps
// simulating for everyone else. Conversely, a canceled *leader*
// releases its flight without caching, so one woken follower finds the
// cache still cold, claims the flight, and takes over — followers are
// never wedged behind a dead leader.
func awaitFlight(ctx context.Context, ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}

// maxKernelGBps is the best bandwidth across a run's kernels, the
// scalar a run job feeds its progress tracker.
func maxKernelGBps(res *core.Result) float64 {
	best := 0.0
	for _, kr := range res.Kernels {
		if kr.GBps > best {
			best = kr.GBps
		}
	}
	return best
}

// executeRun serves a run job from the cache when possible, otherwise
// simulates and populates the cache. Concurrent identical runs are
// deduplicated: one leader simulates, followers wait and then read the
// cache (if the leader failed — or was canceled — the next follower
// takes over).
func (s *Server) executeRun(ctx context.Context, j *Job) {
	snap := j.Snapshot()
	j.prog.SetTotal(1)
	j.prog.SetPhase("run")
	finishCached := func(res *core.Result) {
		j.prog.Step(1)
		j.prog.Observe(maxKernelGBps(res))
		j.publishPoint(PointEvent{Label: dse.ConfigLabel(j.cfg), GBps: maxKernelGBps(res), Feasible: true, Cached: true})
		j.finish(StatusDone, func(v *View) {
			v.Cached = true
			v.Result = rehome(res, j.cfg)
		})
	}
	// Dedup only pays off when the cache can hand followers the leader's
	// result; with caching disabled, identical runs execute in parallel.
	if s.cache.enabled() {
		for {
			if res, ok := s.cache.get(snap.Fingerprint); ok {
				finishCached(res)
				return
			}
			leader, ch := s.claimFlight(snap.Fingerprint)
			if !leader {
				if !awaitFlight(ctx, ch) {
					j.finishStopped("", nil)
					return
				}
				continue
			}
			// The previous leader may have filled the cache between our
			// miss and the claim; re-check so a promoted follower never
			// re-simulates a cached configuration.
			if res, ok := s.cache.get(snap.Fingerprint); ok {
				s.releaseFlight(snap.Fingerprint, ch)
				finishCached(res)
				return
			}
			defer s.releaseFlight(snap.Fingerprint, ch)
			break
		}
	}
	dev, err := s.opts.NewDevice(snap.Target)
	if err != nil {
		j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
		return
	}
	rctx, sp := obs.StartSpan(ctx, "run.eval", "label", dse.ConfigLabel(j.cfg))
	res, err := core.RunContext(rctx, dev, j.cfg)
	sp.End()
	if err != nil {
		// A canceled or deadline-expired run lands in canceled — a single
		// run is one evaluation unit, so there is no partial payload.
		if st := runstate.FromErr(err); st != "" {
			j.finishStopped(st, nil)
			return
		}
		j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
		return
	}
	s.cache.put(snap.Fingerprint, res)
	j.prog.Step(1)
	j.prog.Observe(maxKernelGBps(res))
	j.publishPoint(PointEvent{Label: dse.ConfigLabel(j.cfg), GBps: maxKernelGBps(res), Feasible: true})
	j.finish(StatusDone, func(v *View) { v.Result = res })
}

// executeSweep evaluates a grid (or one shard of it) with per-point
// cache integration: points already in the result cache are reused,
// the misses fan out over dse.EvalParallelContext, and fresh feasible
// results are inserted back so later runs and sweeps hit. The
// assembled ranking is byte-identical to dse.Explore over the same
// grid. A canceled or deadline-expired sweep ranks the points
// evaluated before the stop and lands in canceled. On a coordinator
// with alive workers, a fleet-eligible sweep is sharded across the
// fleet instead (local execution is the fallback while the fleet is
// empty).
func (s *Server) executeSweep(ctx context.Context, j *Job) {
	if j.fleet && s.opts.Cluster != nil && s.executeFleetSweep(ctx, j) {
		return
	}
	snap := j.Snapshot()
	cfgs := j.space.ConfigsRange(j.base, j.lo, j.hi)
	j.prog.SetTotal(len(cfgs))
	j.prog.SetPhase("sweep")

	pts := make([]dse.Point, len(cfgs))
	fps := make([]string, len(cfgs))
	var missCfgs []core.Config
	var missLabels []string
	var missIdx []int
	cachedPoints := 0
	for i, cfg := range cfgs {
		// With the cache disabled, skip fingerprinting and lookups
		// entirely — same guard executeRun applies.
		if s.cache.enabled() {
			fps[i] = cfg.Fingerprint(snap.Target)
			if res, ok := s.cache.get(fps[i]); ok {
				pts[i] = dse.Point{Label: dse.ConfigLabel(cfg), Config: cfg, Result: rehome(res, cfg)}
				cachedPoints++
				j.prog.Step(1)
				j.prog.Observe(pts[i].GBps(j.op))
				j.publishPoint(PointEvent{Label: pts[i].Label, GBps: pts[i].GBps(j.op), Feasible: true, Cached: true})
				continue
			}
		}
		missCfgs = append(missCfgs, cfg)
		missLabels = append(missLabels, dse.ConfigLabel(cfg))
		missIdx = append(missIdx, i)
	}

	stopped := runstate.FromContext(ctx)
	if len(missCfgs) > 0 && stopped == "" {
		// A factory failure is an infrastructure error, not an infeasible
		// design point: record it and fail the whole job instead of
		// reporting a successful sweep full of phantom infeasibles.
		var factoryErr atomic.Pointer[error]
		factory := func() (device.Device, error) {
			dev, err := s.opts.NewDevice(snap.Target)
			if err != nil {
				factoryErr.CompareAndSwap(nil, &err)
			}
			return dev, err
		}
		// onPoint runs concurrently on the sweep workers; tracker and
		// event log are safe for that.
		onPoint := func(_ int, p dse.Point) {
			j.prog.Step(1)
			g := p.GBps(j.op)
			j.prog.Observe(g)
			pe := PointEvent{Label: p.Label, GBps: g, Feasible: p.Err == nil}
			if p.Err != nil {
				pe.Error = p.Err.Error()
			}
			j.publishPoint(pe)
		}
		var fresh []dse.Point
		// The batch span brackets the whole parallel fan-out; each grid
		// point records its own child span inside the dse workers.
		bctx, bsp := obs.StartSpan(ctx, "sweep.batch",
			"points", fmt.Sprint(len(missCfgs)), "workers", fmt.Sprint(s.opts.SweepWorkers))
		fresh, stopped = dse.EvalParallelContext(bctx, factory, missCfgs, missLabels, s.opts.SweepWorkers, onPoint)
		bsp.End()
		if errp := factoryErr.Load(); errp != nil {
			// EvalParallelContext marks the claimed point whenever the
			// factory fails, so a recorded error always means unevaluated
			// points.
			err := *errp
			j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
			return
		}
		for k, p := range fresh {
			i := missIdx[k]
			pts[i] = p
			// Unevaluated holes (canceled before the point was claimed)
			// must not poison the cache with nil results.
			if p.Evaluated() && p.Err == nil {
				s.cache.put(fps[i], p.Result)
			}
		}
	}

	if stopped != "" {
		ex := dse.Rank(dse.EvaluatedPoints(pts), j.op)
		j.finishStopped(stopped, func(v *View) {
			v.Sweep = &ex
			v.CachedPoints = cachedPoints
		})
		return
	}
	ex := dse.Rank(pts, j.op)
	j.finish(StatusDone, func(v *View) {
		v.Sweep = &ex
		v.CachedPoints = cachedPoints
	})
}

// fleetHooks adapts a fleet job's coordinator callbacks onto the job's
// progress tracker and event log: forwarded worker point events become
// ordinary point/progress events (one merged NDJSON stream), shard
// scheduling updates become shard events, and a retried shard's
// already-streamed points are rewound so aggregate progress never
// counts an evaluation unit twice. Both callbacks arrive concurrently
// from shard goroutines; the tracker and event log are safe for that.
func (s *Server) fleetHooks(j *Job) cluster.FleetHooks {
	return cluster.FleetHooks{
		OnPoint: func(p cluster.PointEvent) {
			j.prog.Step(1)
			j.prog.Observe(p.GBps)
			j.publishPoint(PointEvent(p))
		},
		OnShard: func(u cluster.ShardUpdate) {
			if u.RewindPoints > 0 {
				j.prog.Step(-u.RewindPoints)
			}
			// Shard tail latency: one observation per finished attempt,
			// split by outcome so the tail of retried shards is visible.
			if s.reg != nil && u.ElapsedMS > 0 && u.State != "assigned" {
				s.reg.Histogram("mpstream_cluster_shard_seconds",
					"Wall-clock duration of fleet shard attempts, by outcome.",
					obs.DurationBuckets, "state", string(u.State)).
					Observe(float64(u.ElapsedMS) / 1000)
			}
			j.publishShard(u)
		},
	}
}

// executeFleetSweep shards a sweep across the coordinator's workers.
// false means the fleet could not take the job (no alive workers for
// the target) and the caller must run it locally; any other outcome —
// done, canceled with partial results, failed — is terminal here. The
// merged ranking is byte-identical to a local sweep: shards are
// contiguous grid ranges, each worker ranks with the same stable sort,
// and the coordinator's merge preserves equal-bandwidth order.
func (s *Server) executeFleetSweep(ctx context.Context, j *Job) bool {
	snap := j.Snapshot()
	total := j.space.Size()
	j.prog.SetTotal(total)
	j.prog.SetPhase("sweep:fleet")
	spec := cluster.SweepSpec{Target: snap.Target, Base: j.base, Space: j.space, Op: j.op, TimeoutMS: snap.TimeoutMS}
	ex, cached, stopped, err := s.opts.Cluster.Sweep(ctx, spec, s.fleetHooks(j))
	if err != nil {
		if errors.Is(err, cluster.ErrUnavailable) {
			j.prog.SetPhase("sweep")
			return false
		}
		j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
		return true
	}
	// Workers evaluated the points, but the results are canonical, so
	// priming the coordinator's own run cache makes later runs and local
	// sweeps over the same territory free.
	if s.cache.enabled() {
		for _, p := range ex.Ranked {
			if p.Result != nil {
				s.cache.put(p.Config.Fingerprint(snap.Target), p.Result)
			}
		}
	}
	if stopped != "" {
		j.finishStopped(stopped, func(v *View) {
			v.Sweep = ex
			v.CachedPoints = cached
		})
		return true
	}
	// Reconcile aggregate progress: worker event streams are telemetry
	// (a slow stream drops point events), so the counter can undershoot;
	// a done job always reads done == total.
	j.prog.Step(total - j.prog.Snapshot().Done)
	j.finish(StatusDone, func(v *View) {
		v.Sweep = ex
		v.CachedPoints = cached
	})
	return true
}

// executeFleetSurface shards a surface's curves across the fleet; the
// contract mirrors executeFleetSweep. It runs inside executeSurface's
// single-flight leader, so a merged fleet surface lands in the same
// whole-surface cache a local measurement would.
func (s *Server) executeFleetSurface(ctx context.Context, j *Job) bool {
	snap := j.Snapshot()
	total := j.scfg.Points()
	j.prog.SetTotal(total)
	j.prog.SetPhase("surface:fleet")
	spec := cluster.SurfaceSpec{Target: snap.Target, Config: j.scfg, TimeoutMS: snap.TimeoutMS}
	res, stopped, err := s.opts.Cluster.Surface(ctx, spec, s.fleetHooks(j))
	if err != nil {
		if errors.Is(err, cluster.ErrUnavailable) && stopped == "" {
			j.prog.SetPhase("surface")
			return false
		}
		if stopped != "" {
			// Canceled before any shard landed: terminal, with no payload.
			j.finishStopped(stopped, nil)
			return true
		}
		j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
		return true
	}
	if stopped != "" || res.Stopped != "" {
		// Partial ladders must not prime the whole-surface cache.
		j.finishStopped(stopped, func(v *View) { v.Surface = res })
		return true
	}
	s.surfCache.put(snap.Fingerprint, res)
	j.prog.Step(total - j.prog.Snapshot().Done)
	j.finish(StatusDone, func(v *View) { v.Surface = res })
	return true
}

// executeOptimize runs a budgeted strategy search. Whole-request
// caching mirrors executeRun: identical optimize requests (same
// target, base, space, op, strategy, budget and seed — the search is
// deterministic under that tuple) are served from the optimizer LRU,
// and concurrent identical requests are single-flighted so only the
// leader searches. Below that, every unique evaluation shares the
// per-point run-result cache with /v1/run and /v1/sweep, so an
// optimizer walks for free over territory any earlier job explored.
func (s *Server) executeOptimize(ctx context.Context, j *Job) {
	snap := j.Snapshot()
	j.prog.SetTotal(j.sopts.Budget)
	j.prog.SetPhase("search:" + j.sopts.Strategy)
	finishCached := func(res *search.Result) {
		// A completed strategy may legitimately stop below its budget
		// (attempt caps in nearly-explored spaces); reconcile the total so
		// a done job always reads done == total.
		j.prog.SetTotal(res.Evaluations)
		j.prog.Step(res.Evaluations)
		j.prog.Observe(res.BestGBps)
		j.finish(StatusDone, func(v *View) {
			v.Cached = true
			v.Optimize = res
		})
	}
	if s.optCache.enabled() {
		for {
			if res, ok := s.optCache.get(snap.Fingerprint); ok {
				finishCached(res)
				return
			}
			leader, ch := s.claimFlight(snap.Fingerprint)
			if !leader {
				if !awaitFlight(ctx, ch) {
					j.finishStopped("", nil)
					return
				}
				continue
			}
			if res, ok := s.optCache.get(snap.Fingerprint); ok {
				s.releaseFlight(snap.Fingerprint, ch)
				finishCached(res)
				return
			}
			defer s.releaseFlight(snap.Fingerprint, ch)
			break
		}
	}
	dev, err := s.opts.NewDevice(snap.Target)
	if err != nil {
		j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
		return
	}
	// The search is sequential on one device (strategies are adaptive:
	// the next evaluation depends on the last), so unlike sweeps there
	// is no grid fan-out; parallelism comes from concurrent jobs. The
	// engine calls eval and then the Observe hook synchronously from one
	// goroutine, so lastCached needs no lock.
	cachedPoints := 0
	lastCached := false
	eval := func(cfg core.Config, label, fp string) dse.Point {
		lastCached = false
		ectx, sp := obs.StartSpan(ctx, "optimize.eval", "label", label)
		defer sp.End()
		if s.cache.enabled() {
			if res, ok := s.cache.get(fp); ok {
				cachedPoints++
				lastCached = true
				sp.SetAttr("cached", "true")
				return dse.Point{Label: label, Config: cfg, Result: rehome(res, cfg)}
			}
		}
		// On a coordinator, cache misses are farmed out through the
		// fleet's remote-eval pool — the search stays local (strategies
		// are adaptive and sequential) while simulations spread over the
		// workers, all sharing this per-point run cache. A fleet-level
		// failure (no workers, transport exhausted) falls back to the
		// local device; a worker-reported evaluation error is a real
		// outcome (infeasible design, or this job's context ending).
		if fl := s.opts.Cluster; fl != nil && fl.HasWorkers(snap.Target) {
			sp.SetAttr("remote", "true")
			res, err := fl.Eval(ectx, snap.Target, cfg, 0)
			switch {
			case err == nil:
				s.cache.put(fp, res)
				return dse.Point{Label: label, Config: cfg, Result: rehome(res, cfg)}
			case !errors.Is(err, cluster.ErrUnavailable):
				return dse.Point{Label: label, Config: cfg, Err: err}
			}
			sp.SetAttr("remote", "fallback")
		}
		res, err := core.RunContext(ectx, dev, cfg)
		if err != nil {
			return dse.Point{Label: label, Config: cfg, Err: err}
		}
		s.cache.put(fp, res)
		return dse.Point{Label: label, Config: cfg, Result: res}
	}
	searchEval := search.Evaluator(eval)
	if j.sopts.Objective == search.ObjectiveKnee {
		// Each unique point is scored at its loaded-latency knee ceiling.
		// The knee rides on top of (possibly cached) runs; the wrapper
		// memoizes the cheap, deterministic surface probe per traffic
		// shape within this search, and the whole-search LRU above
		// absorbs repeated requests.
		searchEval = search.WithKneeObjective(dev, searchEval)
	}
	hooks := search.Hooks{
		Context: ctx,
		Observe: func(p dse.Point) {
			j.prog.Step(1)
			g := p.GBps(j.op)
			j.prog.Observe(g)
			pe := PointEvent{Label: p.Label, GBps: g, Feasible: p.Err == nil, Cached: lastCached}
			if p.Err != nil {
				pe.Error = p.Err.Error()
			}
			j.publishPoint(pe)
		},
	}
	res, err := search.RunWithHooks(searchEval, func(c core.Config) string { return c.Fingerprint(snap.Target) },
		j.base, j.space, j.op, j.sopts, hooks)
	if err != nil {
		// Unreachable in practice: strategy and budget were validated at
		// submit time.
		j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
		return
	}
	if res.Stopped != "" {
		// A stopped search still reports the best point found so far,
		// but the partial result must not prime the whole-search cache.
		j.finishStopped(res.Stopped, func(v *View) {
			v.Optimize = res
			v.CachedPoints = cachedPoints
		})
		return
	}
	s.optCache.put(snap.Fingerprint, res)
	// Same reconciliation as the cached path: a strategy that finished
	// under budget still reports a complete done == total.
	j.prog.SetTotal(res.Evaluations)
	j.finish(StatusDone, func(v *View) {
		v.Optimize = res
		v.CachedPoints = cachedPoints
	})
}

// executeSurface measures a bandwidth–latency surface, mirroring
// executeRun's whole-result caching and single-flight dedup: identical
// surface requests (same target and canonical configuration — the
// generator is deterministic) are served from the surface LRU, and
// concurrent identical requests measure once.
func (s *Server) executeSurface(ctx context.Context, j *Job) {
	snap := j.Snapshot()
	j.prog.SetTotal((j.chi - j.clo) * len(j.scfg.Rates))
	j.prog.SetPhase("surface")
	finishCached := func(res *surface.Surface) {
		j.prog.Step(len(res.Curves) * len(res.Config.Rates))
		// Mirror the fresh path's per-rung observations so a cache hit
		// reports the same best_gbps as the measurement that primed it.
		for _, c := range res.Curves {
			for _, p := range c.Points {
				j.prog.Observe(p.AchievedGBps)
			}
		}
		j.finish(StatusDone, func(v *View) {
			v.Cached = true
			v.Surface = res
		})
	}
	if s.surfCache.enabled() {
		for {
			if res, ok := s.surfCache.get(snap.Fingerprint); ok {
				finishCached(res)
				return
			}
			leader, ch := s.claimFlight(snap.Fingerprint)
			if !leader {
				if !awaitFlight(ctx, ch) {
					j.finishStopped("", nil)
					return
				}
				continue
			}
			if res, ok := s.surfCache.get(snap.Fingerprint); ok {
				s.releaseFlight(snap.Fingerprint, ch)
				finishCached(res)
				return
			}
			defer s.releaseFlight(snap.Fingerprint, ch)
			break
		}
	}
	// Fleet distribution happens inside the single-flight leader, so one
	// merged fleet measurement serves every concurrent duplicate and
	// primes the whole-surface cache like a local one.
	if j.fleet && s.opts.Cluster != nil && s.executeFleetSurface(ctx, j) {
		return
	}
	dev, err := s.opts.NewDevice(snap.Target)
	if err != nil {
		j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
		return
	}
	// The observer runs on the measuring goroutine, once per ladder rung.
	observe := func(pat mem.Pattern, readFrac float64, p surface.Point) {
		j.prog.Step(1)
		j.prog.Observe(p.AchievedGBps)
		j.publishPoint(PointEvent{
			Label:     fmt.Sprintf("%s/r%.2g@%.2g", surface.PatternLabel(pat), readFrac, p.Rate),
			GBps:      p.AchievedGBps,
			Feasible:  true,
			LatencyNs: p.LatencyNs,
		})
	}
	res, err := core.RunSurfaceShard(ctx, dev, j.scfg, j.clo, j.chi, observe)
	if err != nil {
		j.finish(StatusFailed, func(v *View) { v.Error = err.Error() })
		return
	}
	if res.Stopped != "" {
		// Partial ladders must not prime the whole-surface cache.
		j.finishStopped(res.Stopped, func(v *View) { v.Surface = res })
		return
	}
	s.surfCache.put(snap.Fingerprint, res)
	j.finish(StatusDone, func(v *View) { v.Surface = res })
}

// clusterHealth is the coordinator block of /v1/healthz: the live
// fleet size at a glance.
type clusterHealth struct {
	WorkersAlive int `json:"workers_alive"`
	WorkersTotal int `json:"workers_total"`
}

// health is the /v1/healthz body.
type health struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	UptimeMS      int64          `json:"uptime_ms"`
	Workers       int            `json:"workers"`
	QueueLength   int            `json:"queue_length"`
	QueueCapacity int            `json:"queue_capacity"`
	Jobs          map[Status]int `json:"jobs"`
	Cache         CacheStats     `json:"cache"`
	OptimizeCache CacheStats     `json:"optimize_cache"`
	SurfaceCache  CacheStats     `json:"surface_cache"`
	// Cluster reports live worker counts on coordinators; absent on
	// standalone servers and plain workers.
	Cluster *clusterHealth `json:"cluster,omitempty"`
}

func (s *Server) health() health {
	h := health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		UptimeMS:      time.Since(s.start).Milliseconds(),
		Workers:       s.opts.Workers,
		QueueLength:   len(s.queue),
		QueueCapacity: cap(s.queue),
		Jobs:          s.jobs.counts(),
		Cache:         s.cache.stats(),
		OptimizeCache: s.optCache.stats(),
		SurfaceCache:  s.surfCache.stats(),
	}
	if c := s.opts.Cluster; c != nil {
		alive, total := c.Counts()
		h.Cluster = &clusterHealth{WorkersAlive: alive, WorkersTotal: total}
	}
	return h
}
