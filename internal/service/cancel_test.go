package service_test

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/kernel"
	"mpstream/internal/runstate"
	"mpstream/internal/service"
)

// gateAfterDevice passes the first n compilations straight through and
// blocks every later one on the gate — it pins a multi-point job at a
// deterministic spot mid-flight.
type gateAfterDevice struct {
	device.Device
	seen *atomic.Int64
	n    int64
	gate <-chan struct{}
}

func (d gateAfterDevice) Compile(k kernel.Kernel) (device.Compiled, error) {
	if d.seen.Add(1) > d.n {
		<-d.gate
	}
	return d.Device.Compile(k)
}

// slowDevice delays every compilation — the deterministic way to make a
// deadline expire mid-search.
type slowDevice struct {
	device.Device
	delay time.Duration
}

func (d slowDevice) Compile(k kernel.Kernel) (device.Compiled, error) {
	time.Sleep(d.delay)
	return d.Device.Compile(k)
}

func (e *testEnv) cancelJob(t *testing.T, id string) service.View {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, e.ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	var jr service.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr.Job
}

// TestCancelRunningSweep: canceling a sweep mid-grid stops evaluation
// within one point, lands the job in canceled with stop_reason
// "canceled", and the partial exploration ranks the points evaluated
// before the stop — no more, no less. Run with -race.
func TestCancelRunningSweep(t *testing.T) {
	gate := make(chan struct{})
	seen := &atomic.Int64{}
	e := newEnv(t, service.Options{
		Workers:      1,
		SweepWorkers: 1,
		CacheEntries: -1, // keep every point a fresh compile
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			// Point 0 completes; point 1 blocks on the gate.
			return gateAfterDevice{Device: d, seen: seen, n: 1, gate: gate}, nil
		},
	})
	base := smallConfig()
	op := kernel.Copy
	req := service.SweepRequest{Target: "cpu", Base: &base, Op: &op, Async: true,
		Space: dse.Space{VecWidths: []int{1, 2, 4, 8}}}
	_, data := e.post(t, "/v1/sweep", req)
	job := decodeJob(t, data)

	// Wait until the sweep is pinned inside point 1.
	deadline := time.Now().Add(10 * time.Second)
	for seen.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never reached its second point")
		}
		time.Sleep(time.Millisecond)
	}
	canceled := e.cancelJob(t, job.ID)
	if canceled.Status == service.StatusDone {
		t.Fatalf("cancel landed after completion: %+v", canceled)
	}
	close(gate)

	final := e.pollJob(t, job.ID)
	if final.Status != service.StatusCanceled {
		t.Fatalf("final status %q, want canceled (error %q)", final.Status, final.Error)
	}
	if final.StopReason != runstate.Canceled {
		t.Errorf("stop_reason %q, want %q", final.StopReason, runstate.Canceled)
	}
	if final.Sweep == nil {
		t.Fatal("canceled sweep must carry its partial exploration")
	}
	got := len(final.Sweep.Ranked) + final.Sweep.Infeasible
	// Point 0 finished before the gate, point 1 was in flight when the
	// cancel landed and is allowed to finish; points 2 and 3 must not
	// have started.
	if got < 1 || got > 2 {
		t.Errorf("partial sweep has %d points, want 1 or 2 of 4", got)
	}
	if final.Progress == nil || final.Progress.Total != 4 || final.Progress.Done != got {
		t.Errorf("progress = %+v, want done=%d total=4", final.Progress, got)
	}
}

// TestCancelQueuedJob: deleting a job that has not started lands it in
// canceled immediately and it never executes.
func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	e := newEnv(t, service.Options{
		Workers:    1,
		QueueDepth: 2,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return gatedDevice{Device: d, gate: gate}, nil
		},
	})
	cfg := smallConfig()
	_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg, Async: true})
	a := decodeJob(t, data)
	waitStatus(t, e, a.ID, service.StatusRunning)

	cfgB := cfg
	cfgB.VecWidth = 2
	_, data = e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfgB, Async: true})
	b := decodeJob(t, data)

	canceled := e.cancelJob(t, b.ID)
	if canceled.Status != service.StatusCanceled || canceled.StopReason != runstate.Canceled {
		t.Fatalf("queued job after cancel = %+v", canceled)
	}

	close(gate)
	if final := e.pollJob(t, a.ID); final.Status != service.StatusDone {
		t.Errorf("job A = %+v", final)
	}
	// B stays canceled and never ran.
	if final := e.pollJob(t, b.ID); final.Status != service.StatusCanceled || !final.Started.IsZero() {
		t.Errorf("job B = %+v, want canceled and never started", final)
	}
	// Canceling a finished job is an idempotent no-op.
	again := e.cancelJob(t, a.ID)
	if again.Status != service.StatusDone {
		t.Errorf("cancel of done job flipped it to %q", again.Status)
	}
}

// TestCancelSingleFlightLeader: canceling the single-flight leader must
// not wedge its followers — one of them takes over the flight and every
// follower still completes. Run with -race.
func TestCancelSingleFlightLeader(t *testing.T) {
	gate := make(chan struct{})
	compiles := &atomic.Int64{}
	e := newEnv(t, service.Options{
		Workers: 4,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return countingDevice{Device: gatedDevice{Device: d, gate: gate}, compiles: compiles}, nil
		},
	})
	cfg := smallConfig()
	submit := func() string {
		_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg, Async: true})
		return decodeJob(t, data).ID
	}
	leader := submit()
	waitStatus(t, e, leader, service.StatusRunning)
	f1, f2 := submit(), submit()
	waitStatus(t, e, f1, service.StatusRunning)
	waitStatus(t, e, f2, service.StatusRunning)

	// Cancel the leader while it is blocked inside Compile; it observes
	// the canceled context after the gate opens and hands the flight off.
	e.cancelJob(t, leader)
	close(gate)

	if v := e.pollJob(t, leader); v.Status != service.StatusCanceled {
		t.Errorf("leader = %+v, want canceled", v)
	}
	for _, id := range []string{f1, f2} {
		if v := e.pollJob(t, id); v.Status != service.StatusDone || v.Result == nil {
			t.Errorf("follower %s = status %q error %q, want done", id, v.Status, v.Error)
		}
	}
	// The canceled leader compiled once (wasted), the promoted follower
	// once; the remaining follower read the cache.
	if got := compiles.Load(); got != 2 {
		t.Errorf("compiles = %d, want 2 (canceled leader + promoted follower)", got)
	}
}

// TestCancelFollowerLeavesLeader: a follower detaching from a
// single-flight must land in canceled promptly (while the leader is
// still simulating) and must not disturb the leader or the other
// followers.
func TestCancelFollowerLeavesLeader(t *testing.T) {
	gate := make(chan struct{})
	e := newEnv(t, service.Options{
		Workers: 4,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return gatedDevice{Device: d, gate: gate}, nil
		},
	})
	cfg := smallConfig()
	submit := func() string {
		_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg, Async: true})
		return decodeJob(t, data).ID
	}
	leader := submit()
	waitStatus(t, e, leader, service.StatusRunning)
	f1, f2 := submit(), submit()
	waitStatus(t, e, f1, service.StatusRunning)
	waitStatus(t, e, f2, service.StatusRunning)

	// The follower detaches while the leader is still gated: it must not
	// wait for the leader to finish.
	e.cancelJob(t, f1)
	if v := e.pollJob(t, f1); v.Status != service.StatusCanceled {
		t.Fatalf("canceled follower = %+v", v)
	}

	close(gate)
	if v := e.pollJob(t, leader); v.Status != service.StatusDone || v.Result == nil {
		t.Errorf("leader after follower cancel = status %q error %q", v.Status, v.Error)
	}
	if v := e.pollJob(t, f2); v.Status != service.StatusDone {
		t.Errorf("surviving follower = status %q", v.Status)
	}
}

// TestDeadlineOptimizePartial: a deadline-expired optimize lands in
// canceled with stop_reason "deadline" and still reports the best point
// found before the clock ran out.
func TestDeadlineOptimizePartial(t *testing.T) {
	e := newEnv(t, service.Options{
		Workers: 1,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return slowDevice{Device: d, delay: 25 * time.Millisecond}, nil
		},
	})
	base := smallConfig()
	op := kernel.Copy
	req := service.OptimizeRequest{
		Target: "cpu", Base: &base, Op: &op,
		Space:     dse.Space{VecWidths: []int{1, 2, 4, 8, 16}, Unrolls: []int{1, 2, 4, 8}},
		Strategy:  "exhaustive",
		TimeoutMS: 250,
	}
	_, data := e.post(t, "/v1/optimize", req)
	job := decodeJob(t, data)
	if job.Status != service.StatusCanceled {
		t.Fatalf("deadline job = status %q error %q, want canceled", job.Status, job.Error)
	}
	if job.StopReason != runstate.Deadline {
		t.Errorf("stop_reason %q, want %q", job.StopReason, runstate.Deadline)
	}
	if job.TimeoutMS != 250 {
		t.Errorf("timeout_ms echoed as %d", job.TimeoutMS)
	}
	if job.Optimize == nil {
		t.Fatal("deadline-expired optimize must carry its partial result")
	}
	if job.Optimize.Stopped != runstate.Deadline {
		t.Errorf("optimize stopped tag %q", job.Optimize.Stopped)
	}
	// At 25 ms per evaluation and a 250 ms budget, at least one and far
	// fewer than all 20 evaluations completed.
	if n := job.Optimize.Evaluations; n < 1 || n >= 20 {
		t.Errorf("evaluations = %d, want mid-search stop", n)
	}
	if job.Optimize.Best == nil || job.Optimize.BestGBps <= 0 {
		t.Errorf("partial search lost its best point: %+v", job.Optimize.Best)
	}
	if job.Progress == nil || job.Progress.Done != job.Optimize.Evaluations {
		t.Errorf("progress = %+v, want done == evaluations", job.Progress)
	}
}

// TestTimeoutClamp: a requested deadline beyond the server maximum is
// clamped down to it — proven by a deadline expiry that the requested
// huge timeout would never have produced.
func TestTimeoutClamp(t *testing.T) {
	e := newEnv(t, service.Options{
		Workers:    1,
		MaxTimeout: 50 * time.Millisecond,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return slowDevice{Device: d, delay: 250 * time.Millisecond}, nil
		},
	})
	cfg := smallConfig()
	_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg, TimeoutMS: 1 << 40})
	job := decodeJob(t, data)
	if job.Status != service.StatusCanceled || job.StopReason != runstate.Deadline {
		t.Fatalf("clamped job = status %q stop_reason %q, want canceled/deadline", job.Status, job.StopReason)
	}
	if job.TimeoutMS != 50 {
		t.Errorf("timeout_ms echoed as %d, want the clamped 50", job.TimeoutMS)
	}

	// Negative timeouts are rejected outright.
	resp, _ := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg, TimeoutMS: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative timeout status %d, want 400", resp.StatusCode)
	}
}

// TestCancelSurfacePartial: canceling a surface mid-ladder keeps the
// rungs measured so far and tags the partial surface.
func TestCancelSurfacePartial(t *testing.T) {
	// A device wrapper would hide the MemorySystem interface surfaces
	// need, so this test runs the real target under a deadline short
	// enough to expire mid-ladder on the real simulator.
	e := newEnv(t, service.Options{Workers: 1, NewDevice: targets.ByID})
	req := service.SurfaceRequest{Target: "gpu", TimeoutMS: 40}
	_, data := e.post(t, "/v1/surface", req)
	job := decodeJob(t, data)
	switch job.Status {
	case service.StatusCanceled:
		if job.StopReason != runstate.Deadline {
			t.Errorf("stop_reason %q", job.StopReason)
		}
		if job.Surface == nil || job.Surface.Stopped != runstate.Deadline {
			t.Errorf("partial surface missing its stopped tag: %+v", job.Surface)
		}
		if job.Progress == nil || job.Progress.Done >= job.Progress.Total {
			t.Errorf("progress = %+v, want a partial ladder", job.Progress)
		}
	case service.StatusDone:
		// A very fast machine can finish the default ladder inside the
		// deadline; that is not a failure of the cancellation machinery.
		t.Log("surface finished inside the deadline; partial path not exercised")
	default:
		t.Fatalf("surface job = status %q error %q", job.Status, job.Error)
	}
}
