package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpstream/internal/cluster"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/service"
)

// benchmarkFleetSweep drives a whole 24-point sweep through a 3-worker
// fleet where one worker compiles 4x slower than the others — the
// heterogeneous-fleet scenario the elastic scheduler exists for. The
// two variants below compare the schedulers through the same code
// path:
//
//   - Static: one coarse shard per worker (ShardUnit = ceil(24/3)),
//     speculation off — exactly the old static partitioning, so the
//     slow worker pins a third of the grid and the wall clock.
//   - Elastic: single-point shards (ShardUnit = 1) with speculation on
//     — fast workers drain the queue and duplicate the straggling tail.
//
// Caches are disabled everywhere so every iteration pays for the full
// distributed execution.
func benchmarkFleetSweep(b *testing.B, shardUnit int, speculation bool) {
	const (
		workers   = 3
		slow      = 2
		fastDelay = 15 * time.Millisecond
		slowDelay = 60 * time.Millisecond
	)
	coord := cluster.New(cluster.Options{
		ShardUnit:          shardUnit,
		DisableSpeculation: !speculation,
		RetryBackoff:       time.Millisecond,
		MaxBackoff:         5 * time.Millisecond,
	})
	defer coord.Close()
	for i := 0; i < workers; i++ {
		delay := fastDelay
		if i == slow {
			delay = slowDelay
		}
		d := delay
		wsrv := service.New(service.Options{
			Workers: 1, SweepWorkers: 1, CacheEntries: -1,
			Origin: fmt.Sprintf("w%d", i),
			NewDevice: func(id string) (device.Device, error) {
				dev, err := targets.ByID(id)
				if err != nil {
					return nil, err
				}
				return delayDevice{Device: dev, delay: d}, nil
			},
		})
		defer wsrv.Close()
		wts := httptest.NewServer(wsrv.Handler())
		defer wts.Close()
		coord.Register(cluster.WorkerInfo{
			ID:       fmt.Sprintf("w%d", i),
			Addr:     wts.URL,
			Targets:  targets.IDs(),
			Capacity: 1,
		})
	}
	csrv := service.New(service.Options{
		Workers: 1, SweepWorkers: 1, CacheEntries: -1,
		Cluster: coord, Origin: "coordinator",
	})
	defer csrv.Close()
	cts := httptest.NewServer(csrv.Handler())
	defer cts.Close()

	body, err := json.Marshal(stragglerSweepReq())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(cts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("sweep status %d: %s", resp.StatusCode, data)
		}
	}
}

// BenchmarkFleetSweepStatic emulates the pre-queue static scheduler:
// the grid is cut into exactly one shard per worker up front and no
// shard ever moves, so the 4x-slow worker's third of the grid bounds
// the wall clock.
func BenchmarkFleetSweepStatic(b *testing.B) {
	benchmarkFleetSweep(b, 8, false)
}

// BenchmarkFleetSweep is the elastic scheduler on the same fleet:
// fine-grained shards pulled from the queue plus speculative tail
// re-execution.
func BenchmarkFleetSweep(b *testing.B) {
	benchmarkFleetSweep(b, 1, true)
}
