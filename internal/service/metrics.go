package service

import (
	"time"

	"mpstream/internal/obs"
)

// initObs wires the server's telemetry: the metrics registry (with
// scrape-time collectors over the queue, jobs, caches, cluster and
// simulator) and the shared logger. Called once from New, before the
// job store serves submissions.
func (s *Server) initObs(opts Options) {
	s.log = opts.Logger
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	if opts.DisableMetrics {
		s.jobs.onFinish = s.jobFinished // log lines still flow
		return
	}
	s.reg = opts.Metrics
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	// Span recording rides the DisableMetrics switch so the overhead
	// benchmark's uninstrumented baseline stays span-free too.
	s.rec = obs.NewRecorder(opts.Origin, opts.SpanCapacity)
	s.jobs.rec = s.rec
	s.jobs.onFinish = s.jobFinished

	s.reg.GaugeFunc("mpstream_queue_depth",
		"Jobs queued but not yet claimed by a worker.",
		func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("mpstream_queue_capacity",
		"Bound of the job queue.",
		func() float64 { return float64(cap(s.queue)) })
	s.reg.GaugeFunc("mpstream_workers",
		"Size of the job worker pool.",
		func() float64 { return float64(s.opts.Workers) })

	// Jobs by state: collected at scrape time from the store so gauges
	// track transitions without per-transition bookkeeping. Every state
	// appears (zeros included) so dashboards see a stable series set.
	s.reg.Collect(func(emit func(obs.Sample)) {
		for st, n := range s.jobs.counts() {
			emit(obs.Sample{
				Name: "mpstream_jobs", Help: "Retained jobs by lifecycle state.",
				Kind: "gauge", Labels: []string{"state", string(st)}, Value: float64(n),
			})
		}
	})

	// The three LRU caches share one family set, split by a cache label.
	s.reg.Collect(func(emit func(obs.Sample)) {
		for _, c := range []struct {
			name  string
			stats CacheStats
		}{
			{"run", s.cache.stats()},
			{"optimize", s.optCache.stats()},
			{"surface", s.surfCache.stats()},
		} {
			l := []string{"cache", c.name}
			emit(obs.Sample{Name: "mpstream_cache_hits_total",
				Help: "Result-cache hits.", Kind: "counter", Labels: l, Value: float64(c.stats.Hits)})
			emit(obs.Sample{Name: "mpstream_cache_misses_total",
				Help: "Result-cache misses.", Kind: "counter", Labels: l, Value: float64(c.stats.Misses)})
			emit(obs.Sample{Name: "mpstream_cache_evictions_total",
				Help: "Result-cache evictions.", Kind: "counter", Labels: l, Value: float64(c.stats.Evictions)})
			emit(obs.Sample{Name: "mpstream_cache_entries",
				Help: "Result-cache resident entries.", Kind: "gauge", Labels: l, Value: float64(c.stats.Entries)})
			emit(obs.Sample{Name: "mpstream_cache_capacity",
				Help: "Result-cache capacity.", Kind: "gauge", Labels: l, Value: float64(c.stats.Capacity)})
		}
	})

	if c := s.opts.Cluster; c != nil {
		s.reg.Collect(func(emit func(obs.Sample)) {
			alive, total := c.Counts()
			emit(obs.Sample{Name: "mpstream_cluster_workers",
				Help: "Registered fleet workers by liveness.", Kind: "gauge",
				Labels: []string{"state", "alive"}, Value: float64(alive)})
			emit(obs.Sample{Name: "mpstream_cluster_workers",
				Kind: "gauge", Labels: []string{"state", "total"}, Value: float64(total)})
			fs := c.Stats()
			for _, sh := range []struct {
				state string
				v     uint64
			}{
				{"assigned", fs.ShardsAssigned},
				{"done", fs.ShardsDone},
				{"retried", fs.ShardsRetried},
				{"waited", fs.ShardsWaited},
				{"lost", fs.ShardsLost},
			} {
				emit(obs.Sample{Name: "mpstream_cluster_shards_total",
					Help: "Fleet shard scheduling outcomes.", Kind: "counter",
					Labels: []string{"state", sh.state}, Value: float64(sh.v)})
			}
			emit(obs.Sample{Name: "mpstream_cluster_shard_queue_depth",
				Help: "Shards queued for dispatch across in-flight fleet jobs.", Kind: "gauge",
				Value: float64(fs.QueueDepth)})
			emit(obs.Sample{Name: "mpstream_cluster_shards_stolen_total",
				Help: "Shards completed by a different worker than first assigned.", Kind: "counter",
				Value: float64(fs.ShardsStolen)})
			emit(obs.Sample{Name: "mpstream_cluster_shards_speculated_total",
				Help: "Speculative duplicate attempts launched for tail stragglers.", Kind: "counter",
				Value: float64(fs.ShardsSpeculated)})
			emit(obs.Sample{Name: "mpstream_cluster_speculation_wins_total",
				Help: "Speculative attempts that finished before their primary.", Kind: "counter",
				Value: float64(fs.SpeculationWins)})
			emit(obs.Sample{Name: "mpstream_cluster_speculation_wasted_total",
				Help: "Speculative attempts that lost the race or failed.", Kind: "counter",
				Value: float64(fs.SpeculationWasted)})
			emit(obs.Sample{Name: "mpstream_cluster_remote_evals_total",
				Help: "Optimizer evaluations served by fleet workers.", Kind: "counter",
				Value: float64(fs.RemoteEvals)})
			for _, w := range c.Workers() {
				l := []string{"worker", w.ID}
				emit(obs.Sample{Name: "mpstream_cluster_worker_inflight",
					Help: "Shards in flight per worker.", Kind: "gauge",
					Labels: l, Value: float64(w.Inflight)})
				emit(obs.Sample{Name: "mpstream_cluster_worker_shards_done_total",
					Help: "Shards completed per worker.", Kind: "counter",
					Labels: l, Value: float64(w.ShardsDone)})
				emit(obs.Sample{Name: "mpstream_cluster_worker_failures_total",
					Help: "Shard failures per worker.", Kind: "counter",
					Labels: l, Value: float64(w.Failures)})
				emit(obs.Sample{Name: "mpstream_cluster_worker_heartbeat_age_seconds",
					Help: "Seconds since each worker was last seen.", Kind: "gauge",
					Labels: l, Value: time.Since(w.LastSeen).Seconds()})
				if age := time.Since(w.FirstSeen).Seconds(); age > 0 && !w.FirstSeen.IsZero() {
					emit(obs.Sample{Name: "mpstream_cluster_worker_shard_rate",
						Help: "Shards completed per second since the worker first registered.",
						Kind: "gauge", Labels: l, Value: float64(w.ShardsDone) / age})
				}
			}
		})
	}

	// Baseline monitor families. The verdict counter is pre-seeded so
	// dashboards and the smoke script can read a zero before the first
	// check (and so rate() works from the first increment).
	for _, v := range []string{"pass", "warn", "fail"} {
		s.reg.Counter("mpstream_baseline_checks_total",
			"Baseline drift checks completed, by verdict.", "verdict", v)
	}
	s.reg.GaugeFunc("mpstream_baselines",
		"Registered baseline entries.",
		func() float64 {
			entries, err := s.opts.Baselines.List()
			if err != nil {
				return 0
			}
			return float64(len(entries))
		})
	s.reg.Collect(func(emit func(obs.Sample)) {
		now := time.Now()
		s.checkMu.Lock()
		defer s.checkMu.Unlock()
		for name, rep := range s.checkState {
			l := []string{"baseline", name}
			emit(obs.Sample{Name: "mpstream_baseline_drift_ratio",
				Help: "Worst |delta|/band of each baseline's latest check (<= 1 is within tolerance).",
				Kind: "gauge", Labels: l, Value: rep.DriftRatio})
			emit(obs.Sample{Name: "mpstream_baseline_last_check_age_seconds",
				Help: "Seconds since each baseline's latest check verdict.",
				Kind: "gauge", Labels: l, Value: now.Sub(rep.Checked).Seconds()})
		}
	})

	// Span-ring visibility: occupancy plus the overwrite counter, so
	// trace truncation (404s on /v1/jobs/{id}/trace for old jobs) is
	// diagnosable instead of silent.
	s.reg.GaugeFunc("mpstream_obs_spans_stored",
		"Spans resident in the trace ring.",
		func() float64 { return float64(s.rec.StoreLen()) })
	s.reg.CounterFunc("mpstream_obs_spans_dropped_total",
		"Spans overwritten by the bounded trace ring.",
		func() float64 { return float64(s.rec.StoreDrops()) })

	obs.RegisterSimMetrics(s.reg)
}

// Metrics exposes the server's registry (nil when metrics are
// disabled); cmd/mpserved mounts extra process-level collectors on it.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Recorder exposes the server's span recorder (nil when telemetry is
// disabled) — the store behind GET /v1/jobs/{id}/trace.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// jobSubmitted records one accepted submission; called after enqueue
// succeeds.
func (s *Server) jobSubmitted(j *Job) {
	snap := j.Snapshot()
	if s.reg != nil {
		s.reg.Counter("mpstream_jobs_submitted_total",
			"Jobs accepted onto the queue.", "kind", string(snap.Kind)).Inc()
	}
	s.log.Debug("job submitted",
		"job", snap.ID, "kind", snap.Kind, "target", snap.Target, "trace", snap.Trace)
}

// jobFinished observes one terminal snapshot: outcome counters, the
// run-duration histogram, and a completion log line (warning for
// failures). Hooked into every job via jobStore.onFinish.
func (s *Server) jobFinished(v View) {
	if s.reg != nil {
		s.reg.Counter("mpstream_jobs_finished_total",
			"Jobs reaching a terminal state.",
			"kind", string(v.Kind), "status", string(v.Status)).Inc()
		if !v.Started.IsZero() && !v.Finished.Before(v.Started) {
			s.reg.Histogram("mpstream_job_duration_seconds",
				"Run duration of finished jobs (queued jobs that never ran are excluded).",
				obs.DurationBuckets, "kind", string(v.Kind)).
				Observe(v.Finished.Sub(v.Started).Seconds())
		}
	}
	if v.Status == StatusFailed {
		s.log.Warn("job failed",
			"job", v.ID, "kind", v.Kind, "target", v.Target, "trace", v.Trace, "err", v.Error)
		return
	}
	s.log.Debug("job finished",
		"job", v.ID, "kind", v.Kind, "target", v.Target, "status", v.Status,
		"trace", v.Trace, "cached", v.Cached)
}
