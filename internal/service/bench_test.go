package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mpstream/internal/service"
)

// benchmarkRun drives the full /v1/run hot path — HTTP round trip,
// middleware, job queue, simulator — with the result cache disabled so
// every iteration pays for a real evaluation. Comparing the two
// variants below measures the telemetry overhead the issue bounds at
// 2%:
//
//	go test -bench 'BenchmarkRun(Un)?[Ii]nstrumented' -count 5 ./internal/service/
func benchmarkRun(b *testing.B, opts service.Options) {
	opts.Workers = 1
	opts.CacheEntries = -1
	srv := service.New(opts)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := smallConfig()
	body, err := json.Marshal(service.RunRequest{Target: "cpu", Config: &cfg})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("run status %d", resp.StatusCode)
		}
	}
}

func BenchmarkRunInstrumented(b *testing.B) {
	benchmarkRun(b, service.Options{})
}

func BenchmarkRunUninstrumented(b *testing.B) {
	benchmarkRun(b, service.Options{DisableMetrics: true})
}
