package service_test

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/obs"
	"mpstream/internal/service"
)

// getTrace fetches and decodes a job's merged span tree.
func getTrace(t *testing.T, e *testEnv, id string) obs.TraceView {
	t.Helper()
	resp, data := e.get(t, "/v1/jobs/"+id+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, data)
	}
	var tv obs.TraceView
	if err := json.Unmarshal(data, &tv); err != nil {
		t.Fatalf("decode trace: %v\n%s", err, data)
	}
	return tv
}

// flattenTrace walks the span tree depth-first into a flat list.
func flattenTrace(tv obs.TraceView) []obs.Span {
	var out []obs.Span
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		out = append(out, n.Span)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tv.Roots {
		walk(r)
	}
	return out
}

// TestJobTraceSingleRun: a plain run job exposes a span tree rooted at
// "job" whose children cover at least 95% of the job's wall clock, a
// nonempty critical path, and a Chrome-trace rendering of the same
// spans.
func TestJobTraceSingleRun(t *testing.T) {
	e := newEnv(t, service.Options{})
	cfg := smallConfig()
	resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("run job = %+v", job)
	}

	tv := getTrace(t, e, job.ID)
	if tv.Job != job.ID || tv.Trace == "" {
		t.Errorf("trace view ids = %q/%q, want job %q", tv.Job, tv.Trace, job.ID)
	}
	if len(tv.Roots) != 1 || tv.Roots[0].Name != "job" {
		t.Fatalf("trace roots = %+v, want a single job root", tv.Roots)
	}
	if tv.SpanCount < 2 {
		t.Errorf("span_count = %d, want >= 2 (job + lifecycle)", tv.SpanCount)
	}
	if tv.Coverage < 0.95 {
		t.Errorf("coverage = %.3f, want >= 0.95 of the job wall clock", tv.Coverage)
	}
	if len(tv.CriticalPath) == 0 {
		t.Error("critical_path empty")
	}
	names := map[string]bool{}
	for _, sp := range flattenTrace(tv) {
		names[sp.Name] = true
	}
	for _, want := range []string{"job", "job.run", "run.eval"} {
		if !names[want] {
			t.Errorf("trace missing %q span (got %v)", want, names)
		}
	}

	// The same tree renders as Chrome trace-event JSON.
	resp, data = e.get(t, "/v1/jobs/"+job.ID+"/trace?format=chrome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace status %d: %s", resp.StatusCode, data)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &chrome); err != nil {
		t.Fatalf("chrome trace does not parse: %v\n%s", err, data)
	}
	complete := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete != tv.SpanCount {
		t.Errorf("chrome export has %d complete events, JSON tree has %d spans", complete, tv.SpanCount)
	}

	// Unknown jobs 404.
	resp, _ = e.get(t, "/v1/jobs/no-such-job/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestJobTraceDisabled: with metrics (and therefore spans) off, the
// trace endpoint reports not-found rather than an empty tree.
func TestJobTraceDisabled(t *testing.T) {
	e := newEnv(t, service.Options{DisableMetrics: true})
	cfg := smallConfig()
	resp, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	resp, _ = e.get(t, "/v1/jobs/"+job.ID+"/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace with tracing disabled = %d, want 404", resp.StatusCode)
	}
}

// TestErrorResponsesEchoTrace: a caller-supplied X-Mpstream-Trace id
// comes back on error responses (4xx included), so failed requests can
// be correlated with server logs.
func TestErrorResponsesEchoTrace(t *testing.T) {
	e := newEnv(t, service.Options{})
	const trace = "deadbeefcafe0001"

	// 404 on an unknown job.
	req, err := http.NewRequest(http.MethodGet, e.ts.URL+"/v1/jobs/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Errorf("404 response trace header = %q, want %q", got, trace)
	}

	// 415 on a refused content type.
	req, err = http.NewRequest(http.MethodPost, e.ts.URL+"/v1/run", strings.NewReader(`{"target":"cpu"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain run = %d, want 415", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Errorf("415 response trace header = %q, want %q", got, trace)
	}
}

// TestFleetSweepTrace: a sweep sharded across two workers assembles
// one tree on the coordinator containing worker-origin spans from both
// workers, covering the job's whole wall clock. Run with -race.
func TestFleetSweepTrace(t *testing.T) {
	fe := newFleetEnv(t, 2, nil)
	resp, data := fe.post(t, "/v1/sweep", sweepReq())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("fleet sweep job = %+v", job)
	}

	tv := getTrace(t, fe.testEnv, job.ID)
	got := map[string]bool{}
	for _, o := range tv.Origins {
		got[o] = true
	}
	for _, want := range []string{"coordinator", "w0", "w1"} {
		if !got[want] {
			t.Errorf("trace origins = %v, missing %q", tv.Origins, want)
		}
	}
	if tv.Coverage < 0.95 {
		t.Errorf("fleet trace coverage = %.3f, want >= 0.95", tv.Coverage)
	}
	shardSpans, pointSpans := 0, 0
	for _, sp := range flattenTrace(tv) {
		switch sp.Name {
		case "shard.execute":
			shardSpans++
			if sp.Attrs["worker"] == "" {
				t.Errorf("shard.execute span without worker attr: %+v", sp)
			}
		case "sweep.point":
			pointSpans++
		}
	}
	if shardSpans == 0 {
		t.Error("no shard.execute spans in the fleet trace")
	}
	if pointSpans == 0 {
		t.Error("no worker-side sweep.point spans made it back to the coordinator")
	}

	// The Chrome export keeps the origins as separate process rows.
	resp, data = fe.get(t, "/v1/jobs/"+job.ID+"/trace?format=chrome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace status %d", resp.StatusCode)
	}
	for _, row := range []string{`"name":"w0"`, `"name":"w1"`} {
		if !strings.Contains(string(data), row) {
			t.Errorf("chrome export missing process row %s", row)
		}
	}
}

// TestFleetTraceKeepsRetriedShardAttempts: killing a worker mid-shard
// leaves both attempts in the merged tree — the lost attempt tagged
// lost=true and the retry that completed elsewhere — and the job root
// still brackets every span. Run with -race.
func TestFleetTraceKeepsRetriedShardAttempts(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	started := make(chan struct{})
	var startOnce sync.Once

	fe := newFleetEnv(t, 2, func(i int) service.Options {
		if i != 1 {
			return service.Options{}
		}
		return service.Options{NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return signalGateDevice{
				Device: d,
				signal: func() { startOnce.Do(func() { close(started) }) },
				gate:   gate,
			}, nil
		}}
	})

	req := sweepReq()
	resp, data := fe.post(t, "/v1/sweep", service.SweepRequest{
		Target: req.Target, Base: req.Base, Op: req.Op, Space: req.Space, Async: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker 1 never started a shard")
	}
	fe.workers[1].ts.Listener.Close()
	fe.workers[1].ts.CloseClientConnections()

	final := fe.pollJob(t, job.ID)
	openGate()
	if final.Status != service.StatusDone {
		t.Fatalf("fleet sweep after worker kill = %s (error %q)", final.Status, final.Error)
	}

	tv := getTrace(t, fe.testEnv, job.ID)
	spans := flattenTrace(tv)

	// Group shard.execute attempts by shard index.
	attempts := map[string][]obs.Span{}
	for _, sp := range spans {
		if sp.Name == "shard.execute" {
			attempts[sp.Attrs["shard"]] = append(attempts[sp.Attrs["shard"]], sp)
		}
	}
	retried := false
	for shard, as := range attempts {
		if len(as) < 2 {
			continue
		}
		lost, done := false, false
		for _, sp := range as {
			if sp.Attrs["lost"] == "true" {
				lost = true
			}
			if sp.Attrs["state"] == "done" {
				done = true
			}
		}
		if lost && done {
			retried = true
		} else {
			t.Errorf("shard %s has %d attempts but states %+v, want one lost and one done", shard, len(as), as)
		}
	}
	if !retried {
		t.Fatalf("no shard kept both its lost attempt and its completed retry; attempts = %+v", attempts)
	}

	// The merged tree spans the whole job interval: the root brackets
	// every span (the clock is shared — workers are in-process).
	if len(tv.Roots) != 1 {
		t.Fatalf("trace roots = %d, want 1", len(tv.Roots))
	}
	root := tv.Roots[0].Span
	for _, sp := range spans {
		if sp.Start.Before(root.Start) || sp.End().After(root.End()) {
			t.Errorf("span %s [%v, %v] escapes the job root [%v, %v]",
				sp.Name, sp.Start, sp.End(), root.Start, root.End())
		}
	}
}

// TestClusterMetricsFederation: the coordinator scrapes live workers
// and re-renders one exposition with per-worker labels, its own series
// included, and a synthesized up gauge. Run with -race.
func TestClusterMetricsFederation(t *testing.T) {
	fe := newFleetEnv(t, 2, nil)
	// Populate worker metrics with real work first.
	resp, data := fe.post(t, "/v1/sweep", sweepReq())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}

	resp, data = fe.get(t, "/v1/cluster/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster metrics status %d: %s", resp.StatusCode, data)
	}
	body := string(data)
	for _, want := range []string{
		`worker="coordinator"`,
		`worker="w0"`,
		`worker="w1"`,
		`mpstream_federation_up{worker="w0"} 1`,
		`mpstream_federation_up{worker="w1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("federated exposition missing %s", want)
		}
	}
	obs.ValidateExposition(t, body)

	// Federation is a coordinator affordance; plain servers 404.
	plain := newEnv(t, service.Options{})
	resp, _ = plain.get(t, "/v1/cluster/metrics")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cluster metrics on plain server = %d, want 404", resp.StatusCode)
	}
}

// TestMetricsGzip: /v1/metrics honors Accept-Encoding: gzip and stays
// identity-encoded for clients that do not ask.
func TestMetricsGzip(t *testing.T) {
	e := newEnv(t, service.Options{})

	// DisableCompression stops the transport from transparently
	// unwrapping the response, so the test sees the wire encoding.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	req, err := http.NewRequest(http.MethodGet, e.ts.URL+"/v1/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", got)
	}
	if !strings.Contains(resp.Header.Get("Vary"), "Accept-Encoding") {
		t.Error("gzip response missing Vary: Accept-Encoding")
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("body is not gzip: %v", err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(plain), "mpstream_") {
		t.Errorf("gunzipped metrics look wrong:\n%s", plain)
	}
	obs.ValidateExposition(t, string(plain))

	// No Accept-Encoding → identity.
	req, err = http.NewRequest(http.MethodGet, e.ts.URL+"/v1/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if got := resp2.Header.Get("Content-Encoding"); got != "" {
		t.Errorf("identity request got Content-Encoding %q", got)
	}
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "mpstream_") {
		t.Error("identity metrics body looks wrong")
	}
}

// TestJobTraceGzip: the span timeline endpoint honours Accept-Encoding
// the same way /v1/metrics does — trace payloads grow with fleet size
// and compress well.
func TestJobTraceGzip(t *testing.T) {
	e := newEnv(t, service.Options{})
	cfg := smallConfig()
	_, data := e.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("run job = %+v", job)
	}

	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	req, err := http.NewRequest(http.MethodGet, e.ts.URL+"/v1/jobs/"+job.ID+"/trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", got)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("body is not gzip: %v", err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var tv obs.TraceView
	if err := json.Unmarshal(plain, &tv); err != nil {
		t.Fatalf("gunzipped trace is not a trace view: %v", err)
	}
	if tv.Job != job.ID || len(tv.Roots) == 0 {
		t.Errorf("trace view = job %q, %d roots", tv.Job, len(tv.Roots))
	}
}
