package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mpstream/internal/core"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
	"mpstream/internal/surface"
)

// Kind distinguishes the job shapes the service executes.
type Kind string

// Job kinds.
const (
	KindRun      Kind = "run"      // one configuration on one target
	KindSweep    Kind = "sweep"    // a parameter grid on one target
	KindOptimize Kind = "optimize" // a budgeted strategy search over a grid
	KindSurface  Kind = "surface"  // a bandwidth–latency surface on one target
)

// Status is the job lifecycle state.
type Status string

// Job states, in lifecycle order.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// View is the externally visible snapshot of a job — the JSON shape
// /v1/jobs/{id} serves and run/sweep responses embed.
type View struct {
	ID       string    `json:"id"`
	Kind     Kind      `json:"kind"`
	Status   Status    `json:"status"`
	Target   string    `json:"target"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Cached reports that the result was served from the LRU cache
	// without re-running the simulator.
	Cached bool `json:"cached,omitempty"`
	// CachedPoints counts sweep grid points (or optimizer evaluations)
	// served from the run-result cache.
	CachedPoints int `json:"cached_points,omitempty"`
	// Fingerprint is the cache key of the job: the canonical (target,
	// config) hash for a run, or the canonical (target, base, space,
	// op, strategy, budget, seed) hash for an optimize.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Result carries a finished run job's measurement.
	Result *core.Result `json:"result,omitempty"`
	// Sweep carries a finished sweep job's ranked exploration.
	Sweep *dse.Exploration `json:"sweep,omitempty"`
	// Optimize carries a finished optimize job's search outcome.
	Optimize *search.Result `json:"optimize,omitempty"`
	// Surface carries a finished surface job's bandwidth–latency
	// characterization.
	Surface *surface.Surface `json:"surface,omitempty"`
	Error   string           `json:"error,omitempty"`
}

// Job is one queued unit of work. All mutation goes through the job's
// mutex; handlers only ever see copies via Snapshot.
type Job struct {
	mu   sync.Mutex
	view View
	seq  uint64 // submission order; immutable after add

	// run parameters
	cfg core.Config

	// sweep and optimize parameters
	base  core.Config
	space dse.Space
	op    kernel.Op
	// optimize parameters (normalized at submit time)
	sopts search.Options
	// surface parameters (defaults resolved at submit time)
	scfg surface.Config

	// done is closed exactly once when the job reaches a terminal state.
	done chan struct{}
}

// Snapshot returns a copy of the job's visible state.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view
}

// Done returns a channel closed when the job finishes (or fails).
func (j *Job) Done() <-chan struct{} { return j.done }

// terminal reports whether the job has reached a final state.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view.Status == StatusDone || j.view.Status == StatusFailed
}

// ID returns the job's identifier.
func (j *Job) ID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view.ID
}

// start transitions the job to running.
func (j *Job) start() {
	j.mu.Lock()
	j.view.Status = StatusRunning
	j.view.Started = time.Now().UTC()
	j.mu.Unlock()
}

// finish records a terminal state and wakes waiters. mutate runs under
// the job lock to fill result fields. Idempotent: only the first call
// takes effect, so a panic-recovery path can finish defensively.
func (j *Job) finish(status Status, mutate func(v *View)) {
	j.mu.Lock()
	if j.view.Status == StatusDone || j.view.Status == StatusFailed {
		j.mu.Unlock()
		return
	}
	j.view.Status = status
	j.view.Finished = time.Now().UTC()
	if mutate != nil {
		mutate(&j.view)
	}
	j.mu.Unlock()
	close(j.done)
}

// jobStore indexes jobs by id, bounded to maxRetained entries: the
// service is long-lived, so finished jobs (and their result payloads)
// must not accumulate forever. Oldest finished jobs are evicted first;
// queued and running jobs are never evicted.
type jobStore struct {
	mu          sync.Mutex
	seq         uint64
	jobs        map[string]*Job
	order       []string // insertion order, oldest first
	maxRetained int
}

func newJobStore(maxRetained int) *jobStore {
	return &jobStore{jobs: make(map[string]*Job), maxRetained: maxRetained}
}

// add registers a new job of the given kind and returns it with an
// assigned id in queued state.
func (s *jobStore) add(kind Kind, target string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		view: View{
			ID:      fmt.Sprintf("j%06d", s.seq),
			Kind:    kind,
			Status:  StatusQueued,
			Target:  target,
			Created: time.Now().UTC(),
		},
		seq:  s.seq,
		done: make(chan struct{}),
	}
	s.jobs[j.view.ID] = j
	s.order = append(s.order, j.view.ID)
	s.evictLocked()
	return j
}

// evictLocked drops the oldest finished jobs while over capacity.
// Requires s.mu held.
func (s *jobStore) evictLocked() {
	if s.maxRetained <= 0 || len(s.jobs) <= s.maxRetained {
		return
	}
	kept := s.order[:0]
	for i, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.maxRetained && j.terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, s.order[i])
	}
	s.order = kept
}

// get looks a job up by id.
func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// remove deletes a job (used when the queue rejects a submission),
// including its order entry — rejections must not grow order forever.
func (s *jobStore) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	// The id is almost always the most recent append; scan from the end.
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// snapshots returns all job views, oldest first (by submission order,
// not lexical id — ids wrap their fixed width past a million jobs).
func (s *jobStore) snapshots() []View {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.Snapshot()
	}
	return views
}

// counts tallies jobs by status without copying full views.
func (s *jobStore) counts() map[Status]int {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make(map[Status]int, 4)
	for _, j := range jobs {
		j.mu.Lock()
		out[j.view.Status]++
		j.mu.Unlock()
	}
	return out
}
