package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mpstream/internal/baseline"
	"mpstream/internal/core"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
	"mpstream/internal/obs"
	"mpstream/internal/progress"
	"mpstream/internal/runstate"
	"mpstream/internal/surface"
)

// Kind distinguishes the job shapes the service executes.
type Kind string

// Job kinds.
const (
	KindRun      Kind = "run"      // one configuration on one target
	KindSweep    Kind = "sweep"    // a parameter grid on one target
	KindOptimize Kind = "optimize" // a budgeted strategy search over a grid
	KindSurface  Kind = "surface"  // a bandwidth–latency surface on one target
	KindCheck    Kind = "check"    // re-measure a baseline and verdict the drift
)

// Status is the job lifecycle state. The machine is
// queued → running → done|failed|canceled; a queued job may go straight
// to canceled (or to failed, on shutdown) without ever running.
type Status string

// Job states, in lifecycle order.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Statuses lists every job state, in lifecycle order — the whitelist
// the ?state= jobs filter validates against.
func Statuses() []Status {
	return []Status{StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled}
}

// View is the externally visible snapshot of a job — the JSON shape
// /v1/jobs/{id} serves and run/sweep responses embed.
type View struct {
	ID     string `json:"id"`
	Kind   Kind   `json:"kind"`
	Status Status `json:"status"`
	Target string `json:"target"`
	// Trace is the request-scoped trace ID the job was submitted under
	// (minted server-side when the submitter sent none). It rides on
	// every job event and log line and propagates to fleet workers via
	// the X-Mpstream-Trace header.
	Trace    string    `json:"trace,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// TimeoutMS echoes the per-job deadline the submitter asked for
	// (after the server-side clamp); 0 means none.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Progress is the live done/total evaluation-unit snapshot while the
	// job runs, and the final snapshot once it finishes.
	Progress *progress.Snapshot `json:"progress,omitempty"`
	// StopReason is the canonical partial-result state
	// (runstate.Canceled or runstate.Deadline) of a canceled job; empty
	// for done and failed jobs.
	StopReason string `json:"stop_reason,omitempty"`
	// Cached reports that the result was served from the LRU cache
	// without re-running the simulator.
	Cached bool `json:"cached,omitempty"`
	// CachedPoints counts sweep grid points (or optimizer evaluations)
	// served from the run-result cache.
	CachedPoints int `json:"cached_points,omitempty"`
	// Fingerprint is the cache key of the job: the canonical (target,
	// config) hash for a run, or the canonical (target, base, space,
	// op, strategy, budget, seed) hash for an optimize.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Result carries a finished run job's measurement.
	Result *core.Result `json:"result,omitempty"`
	// Sweep carries a finished sweep job's ranked exploration — for a
	// canceled sweep, the ranking of the points evaluated before the
	// stop.
	Sweep *dse.Exploration `json:"sweep,omitempty"`
	// Optimize carries a finished optimize job's search outcome — for a
	// canceled or deadline-expired search, the partial result with the
	// best point found so far.
	Optimize *search.Result `json:"optimize,omitempty"`
	// Surface carries a finished surface job's bandwidth–latency
	// characterization — partial (Stopped tagged) for a canceled one.
	Surface *surface.Surface `json:"surface,omitempty"`
	// Check carries a finished check job's drift verdict against its
	// baseline — Partial-tagged for a canceled or deadline-expired
	// check, whose measured subset was still verdicted.
	Check *baseline.Report `json:"check,omitempty"`
	Error string           `json:"error,omitempty"`
	// Timing digests the job's recorded span tree once it finishes:
	// wall/queue/run split, critical path, slowest shard. Absent when
	// tracing is disabled.
	Timing *obs.TraceSummary `json:"timing,omitempty"`
	// Spans piggybacks the job's recorded spans on the final view —
	// only for jobs submitted under a remote parent span (a fleet
	// shard or remote eval), so the coordinator can graft the worker's
	// subtree into its own trace. Plain jobs never ship span payloads.
	Spans []obs.Span `json:"spans,omitempty"`
}

// Job is one queued unit of work. All mutation goes through the job's
// mutex; handlers only ever see copies via Snapshot.
type Job struct {
	mu   sync.Mutex
	view View
	seq  uint64 // submission order; immutable after add

	// run parameters
	cfg core.Config

	// sweep and optimize parameters
	base  core.Config
	space dse.Space
	op    kernel.Op
	// lo and hi bound a sweep job in the grid's flat enumeration order
	// (the whole grid for a plain sweep, one shard for a fleet worker's
	// slice).
	lo, hi int
	// optimize parameters (normalized at submit time)
	sopts search.Options
	// surface parameters (defaults resolved at submit time)
	scfg surface.Config
	// clo and chi bound a surface job's curves in pattern-major order.
	clo, chi int
	// check parameters: the baseline entry snapshot taken at submit
	// time (a concurrent re-record or delete must not change what this
	// check compares against) and the resolved tolerance.
	bentry baseline.Entry
	btol   baseline.Tolerance
	// fleet marks jobs eligible for distribution: plain sweeps and
	// surfaces on a coordinator. Shard jobs are never fleet-eligible —
	// a worker must execute its slice locally, not re-shard it.
	fleet bool

	// timeout is the per-job execution deadline, applied when the job
	// starts running; 0 means none. Immutable after submit.
	timeout time.Duration

	// ctx is canceled when the job is canceled (baseCancel) or its
	// deadline expires (the start()-installed timer). Executors read it
	// through the value start() returns; the field itself is guarded by
	// mu. baseCancel is immutable after add and safe to call anytime.
	ctx         context.Context
	baseCancel  context.CancelFunc
	timerCancel context.CancelFunc // non-nil once start() armed a deadline

	// prog is the executor-maintained progress tracker; its atomic
	// snapshot rides along in every View.
	prog progress.Tracker

	// events is the bounded publish/subscribe log behind
	// GET /v1/jobs/{id}/events.
	events eventLog

	// onFinish — when non-nil — observes the final snapshot exactly
	// once, from finish. The server hooks its telemetry (jobs-finished
	// counters, duration histograms, completion log lines) here.
	// Immutable after add.
	onFinish func(View)

	// Span tracing (all nil when the server records no spans). The job
	// root span covers submit→finish, the queue span submit→start, the
	// run span start→finish; executors hang their own spans under the
	// run span through the context start() returns. remoteParent is
	// the upstream span ID this job was submitted under (a
	// coordinator's shard span) — when set, the final view piggybacks
	// the job's spans back to the submitter. rec is the server's
	// recorder; immutable after add.
	rec          *obs.Recorder
	remoteParent string
	spanJob      *obs.ActiveSpan
	spanQueue    *obs.ActiveSpan
	spanRun      *obs.ActiveSpan

	// done is closed exactly once when the job reaches a terminal state.
	done chan struct{}
}

// Snapshot returns a copy of the job's visible state, with the live
// progress snapshot attached.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	v := j.view
	j.mu.Unlock()
	ps := j.prog.Snapshot()
	v.Progress = &ps
	return v
}

// Done returns a channel closed when the job finishes (or fails).
func (j *Job) Done() <-chan struct{} { return j.done }

// Context returns the job's cancellation context: canceled when the job
// is canceled via Cancel/DELETE or its deadline expires.
func (j *Job) Context() context.Context {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ctx
}

// Progress returns the live progress snapshot.
func (j *Job) Progress() progress.Snapshot { return j.prog.Snapshot() }

// rootSpanID names the job's root span ("" when tracing is off) — the
// anchor the trace endpoint filters the process-wide span store by.
func (j *Job) rootSpanID() string { return j.spanJob.ID() }

// terminal reports whether the job has reached a final state.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return isTerminal(j.view.Status)
}

func isTerminal(s Status) bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// ID returns the job's identifier.
func (j *Job) ID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view.ID
}

// start transitions the job to running and arms its deadline, returning
// the context the executor must run under. ok is false when the job is
// already terminal (canceled while queued) and must not execute.
func (j *Job) start() (context.Context, bool) {
	j.mu.Lock()
	if isTerminal(j.view.Status) {
		j.mu.Unlock()
		return nil, false
	}
	j.view.Status = StatusRunning
	j.view.Started = time.Now().UTC()
	// The queue span ends here; executor work nests under the run span
	// via the context returned below (StartSpan is a no-op without a
	// recorder and leaves j.ctx untouched).
	j.spanQueue.End()
	j.ctx, j.spanRun = obs.StartSpan(j.ctx, "job.run")
	if j.timeout > 0 {
		j.ctx, j.timerCancel = context.WithTimeout(j.ctx, j.timeout)
	}
	ctx := j.ctx
	j.mu.Unlock()
	j.publish(Event{Type: EventState, State: StatusRunning})
	return ctx, true
}

// cancelRequest asks the job to stop. A queued job lands in canceled
// immediately; a running one observes its context at the next
// evaluation-unit boundary; a terminal one is untouched (the request is
// idempotent). The returned status is the state observed at request
// time.
func (j *Job) cancelRequest() Status {
	j.mu.Lock()
	st := j.view.Status
	j.mu.Unlock()
	// Always cancel the context: a running executor stops at its next
	// check, and canceling an already-terminal job's context is a no-op.
	j.baseCancel()
	if st == StatusQueued {
		// The worker that later pops this job sees the terminal state and
		// skips it. If the worker won the race and just started, finish is
		// idempotent and the canceled context ends the run anyway.
		j.finish(StatusCanceled, func(v *View) { v.StopReason = runstate.Canceled })
	}
	return st
}

// finish records a terminal state and wakes waiters. mutate runs under
// the job lock to fill result fields. Idempotent: only the first call
// takes effect, so a panic-recovery path can finish defensively. The
// final snapshot is published as a result event before Done closes, so
// event subscribers always observe the terminal state.
func (j *Job) finish(status Status, mutate func(v *View)) {
	j.mu.Lock()
	if isTerminal(j.view.Status) {
		j.mu.Unlock()
		return
	}
	j.view.Status = status
	j.view.Finished = time.Now().UTC()
	if mutate != nil {
		mutate(&j.view)
	}
	// Close out the lifecycle spans (End is idempotent — a job
	// canceled while queued ends its queue span here instead of in
	// start) and digest the recorded tree into the view.
	j.spanRun.SetAttr("status", string(status))
	j.spanRun.End()
	j.spanQueue.End()
	j.spanJob.SetAttr("status", string(status))
	j.spanJob.End()
	if j.rec != nil {
		spans := obs.Descendants(j.rec.Spans(j.view.Trace), j.spanJob.ID())
		j.view.Timing = obs.Summarize(spans, j.spanJob.ID())
		if j.remoteParent != "" {
			j.view.Spans = spans
		}
	}
	timerCancel := j.timerCancel
	j.mu.Unlock()
	// Release the context resources: the deadline timer (if armed) and
	// the base cancellation.
	if timerCancel != nil {
		timerCancel()
	}
	j.baseCancel()
	final := j.Snapshot()
	j.publish(Event{Type: EventResult, State: status, Result: &final})
	if j.onFinish != nil {
		j.onFinish(final)
	}
	close(j.done)
}

// finishStopped lands the job in canceled carrying whatever partial
// payload mutate attaches, tagging the canonical stop reason read from
// the (ended) job context; reason overrides when non-empty.
func (j *Job) finishStopped(reason string, mutate func(v *View)) {
	if reason == "" {
		reason = runstate.FromContext(j.Context())
	}
	if reason == "" {
		reason = runstate.Canceled
	}
	j.finish(StatusCanceled, func(v *View) {
		v.StopReason = reason
		if mutate != nil {
			mutate(v)
		}
	})
}

// jobStore indexes jobs by id, bounded to maxRetained entries: the
// service is long-lived, so finished jobs (and their result payloads)
// must not accumulate forever. Oldest finished jobs are evicted first;
// queued and running jobs are never evicted.
type jobStore struct {
	mu          sync.Mutex
	seq         uint64
	jobs        map[string]*Job
	order       []string // insertion order, oldest first
	maxRetained int
	// onFinish is copied into every job at add; see Job.onFinish. Set
	// once before the store serves submissions.
	onFinish func(View)
	// rec is the server's span recorder, copied into every job at add;
	// nil (no span recording) when telemetry is disabled. Set once
	// before the store serves submissions.
	rec *obs.Recorder
}

func newJobStore(maxRetained int) *jobStore {
	return &jobStore{jobs: make(map[string]*Job), maxRetained: maxRetained}
}

// add registers a new job of the given kind and returns it with an
// assigned id in queued state. timeout is the per-job deadline, armed
// when the job starts running. trace is the request-scoped trace ID
// the job carries through its lifetime (the job context, every event,
// and fleet fan-out all read it back).
func (s *jobStore) add(kind Kind, target string, timeout time.Duration, trace, parentSpan string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	base := obs.WithTrace(context.Background(), trace)
	if s.rec != nil {
		base = obs.WithRecorder(base, s.rec)
		if parentSpan != "" {
			base = obs.WithSpanParent(base, parentSpan)
		}
	}
	ctx, cancel := context.WithCancel(base)
	// The job root span opens at submit; the queue span nests under it
	// and ends when the job starts running. Both are no-ops when the
	// store records no spans.
	ctx, spanJob := obs.StartSpan(ctx, "job",
		"job", id, "kind", string(kind), "target", target)
	_, spanQueue := obs.StartSpan(ctx, "job.queue")
	j := &Job{
		view: View{
			ID:        id,
			Kind:      kind,
			Status:    StatusQueued,
			Target:    target,
			Trace:     trace,
			Created:   time.Now().UTC(),
			TimeoutMS: timeout.Milliseconds(),
		},
		seq:          s.seq,
		timeout:      timeout,
		ctx:          ctx,
		baseCancel:   cancel,
		onFinish:     s.onFinish,
		rec:          s.rec,
		remoteParent: parentSpan,
		spanJob:      spanJob,
		spanQueue:    spanQueue,
		done:         make(chan struct{}),
	}
	j.events.job = j.view.ID
	j.events.trace = trace
	s.jobs[j.view.ID] = j
	s.order = append(s.order, j.view.ID)
	s.evictLocked()
	return j
}

// evictLocked drops the oldest finished jobs while over capacity.
// Requires s.mu held.
func (s *jobStore) evictLocked() {
	if s.maxRetained <= 0 || len(s.jobs) <= s.maxRetained {
		return
	}
	kept := s.order[:0]
	for i, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.maxRetained && j.terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, s.order[i])
	}
	s.order = kept
}

// get looks a job up by id.
func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// remove deletes a job (used when the queue rejects a submission),
// including its order entry — rejections must not grow order forever.
func (s *jobStore) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	// The id is almost always the most recent append; scan from the end.
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// snapshots returns job views in stable submit-time order (by
// submission sequence, not lexical id — ids wrap their fixed width past
// a million jobs), optionally filtered to one state, optionally limited
// to the most recent limit entries (still oldest first). state "" and
// limit <= 0 disable the respective filter. total is the retained job
// count before filtering; matched the count after the state filter but
// before the limit — the pair lets a truncated listing say what it
// dropped.
func (s *jobStore) snapshots(state Status, limit int) (views []View, total, matched int) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	total = len(jobs)
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	views = make([]View, 0, len(jobs))
	for _, j := range jobs {
		v := j.Snapshot()
		if state != "" && v.Status != state {
			continue
		}
		views = append(views, v)
	}
	matched = len(views)
	if limit > 0 && len(views) > limit {
		views = views[len(views)-limit:]
	}
	return views, total, matched
}

// counts tallies jobs by status without copying full views. Every
// status appears in the map — zeros included — so consumers (healthz,
// the metrics collector) see a stable key set.
func (s *jobStore) counts() map[Status]int {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make(map[Status]int, 5)
	for _, st := range Statuses() {
		out[st] = 0
	}
	for _, j := range jobs {
		j.mu.Lock()
		out[j.view.Status]++
		j.mu.Unlock()
	}
	return out
}
