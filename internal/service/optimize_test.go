package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
	"mpstream/internal/service"
)

func optSpace() dse.Space {
	return dse.Space{VecWidths: []int{1, 2, 4}, Unrolls: []int{1, 2}}
}

// TestOptimizeSync drives a synchronous optimize end to end and checks
// the search outcome agrees with a local search.Run over the same
// (canonicalized) request.
func TestOptimizeSync(t *testing.T) {
	e := newEnv(t, service.Options{})
	base := smallConfig()
	req := service.OptimizeRequest{
		Target: "aocl", Base: &base, Space: optSpace(),
		Op: ptr(kernel.Triad), Strategy: "hillclimb", Budget: 4, Seed: 9,
	}
	resp, data := e.post(t, "/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Optimize == nil {
		t.Fatalf("job = %+v", job)
	}
	if job.Fingerprint == "" {
		t.Error("optimize job must carry its request fingerprint")
	}
	got := job.Optimize
	if got.Strategy != "hillclimb" || got.Evaluations == 0 || got.Evaluations > 4 {
		t.Errorf("optimize = strategy %q, %d evaluations", got.Strategy, got.Evaluations)
	}

	dev, err := targets.ByID("aocl")
	if err != nil {
		t.Fatal(err)
	}
	canon := base
	canon.Ops = []kernel.Op{kernel.Triad}
	want, err := search.Run(dev, canon.Canonical(), optSpace(), kernel.Triad,
		search.Options{Strategy: "hillclimb", Budget: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("service optimize differs from local search.Run:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestOptimizeBadRequests covers the submit-time validation: unknown
// strategy names, negative budgets, budgets beyond the server limit
// (explicit or implied by an unbudgeted huge space), and unknown
// targets.
func TestOptimizeBadRequests(t *testing.T) {
	e := newEnv(t, service.Options{MaxOptimizeBudget: 16})
	base := smallConfig()

	cases := []struct {
		name string
		req  service.OptimizeRequest
		want string
	}{
		{"unknown strategy",
			service.OptimizeRequest{Target: "cpu", Base: &base, Space: optSpace(), Strategy: "gradient-descent"},
			"unknown strategy"},
		{"negative budget",
			service.OptimizeRequest{Target: "cpu", Base: &base, Space: optSpace(), Budget: -3},
			"budget -3"},
		// An explicit budget beyond the server limit is rejected; note a
		// budget above a *small* space clamps to the space size instead,
		// so the oversized space is what makes this case bite.
		{"budget beyond limit",
			service.OptimizeRequest{Target: "cpu", Base: &base, Budget: 17,
				Space: dse.Space{VecWidths: []int{1, 2, 4, 8, 16}, Unrolls: []int{1, 2, 4, 8, 16, 32}}},
			"exceeds limit"},
		{"unbudgeted huge space",
			service.OptimizeRequest{Target: "cpu", Base: &base,
				Space: dse.Space{VecWidths: []int{1, 2, 4, 8, 16}, Unrolls: make([]int, 1000)}},
			"exceeds limit"},
		{"unknown target",
			service.OptimizeRequest{Target: "tpu", Base: &base, Space: optSpace()},
			"unknown target"},
	}
	for _, tc := range cases {
		resp, data := e.post(t, "/v1/optimize", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, data)
			continue
		}
		if !strings.Contains(string(data), tc.want) {
			t.Errorf("%s: body %s does not mention %q", tc.name, data, tc.want)
		}
	}

	// A budget within the limit over the same huge space is fine.
	ok := service.OptimizeRequest{Target: "cpu", Base: &base, Strategy: "random", Budget: 4,
		Space: dse.Space{VecWidths: []int{1, 2, 4, 8, 16}, Unrolls: make([]int, 1000)}}
	// Zero-valued unrolls are canonically identical; give them real values.
	for i := range ok.Space.Unrolls {
		ok.Space.Unrolls[i] = i + 1
	}
	resp, data := e.post(t, "/v1/optimize", ok)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("budgeted search over huge space: status %d: %s", resp.StatusCode, data)
	}
}

// TestOptimizeCacheHit: a repeated identical optimize request is
// served from the optimizer LRU without simulating anything, and a
// request differing only in seed is not.
func TestOptimizeCacheHit(t *testing.T) {
	e := newEnv(t, service.Options{})
	base := smallConfig()
	req := service.OptimizeRequest{
		Target: "cpu", Base: &base, Space: optSpace(),
		Strategy: "anneal", Budget: 5, Seed: 3,
	}

	_, data := e.post(t, "/v1/optimize", req)
	first := decodeJob(t, data)
	if first.Status != service.StatusDone || first.Cached {
		t.Fatalf("first optimize = %+v", first)
	}
	compilesAfterFirst := e.compiles.Load()
	if compilesAfterFirst == 0 {
		t.Fatal("first optimize must simulate")
	}

	_, data = e.post(t, "/v1/optimize", req)
	second := decodeJob(t, data)
	if second.Status != service.StatusDone || !second.Cached {
		t.Fatalf("repeat optimize = %+v, want cached", second)
	}
	if got := e.compiles.Load(); got != compilesAfterFirst {
		t.Errorf("repeat optimize recompiled: %d -> %d", compilesAfterFirst, got)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", first.Fingerprint, second.Fingerprint)
	}
	a, _ := json.Marshal(first.Optimize)
	b, _ := json.Marshal(second.Optimize)
	if !bytes.Equal(a, b) {
		t.Error("cached optimize result differs from the original")
	}

	// A different seed is a different search: no whole-result hit, but
	// its evaluations ride the per-point result cache primed above.
	reseeded := req
	reseeded.Seed = 4
	_, data = e.post(t, "/v1/optimize", reseeded)
	third := decodeJob(t, data)
	if third.Status != service.StatusDone {
		t.Fatalf("reseeded optimize = %+v", third)
	}
	if third.Cached {
		t.Error("different seed must not hit the whole-result cache")
	}
	if third.Fingerprint == first.Fingerprint {
		t.Error("different seed must fingerprint differently")
	}

	var h struct {
		OptimizeCache service.CacheStats `json:"optimize_cache"`
	}
	_, data = e.get(t, "/v1/healthz")
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.OptimizeCache.Hits < 1 || h.OptimizeCache.Entries == 0 {
		t.Errorf("optimize cache stats = %+v", h.OptimizeCache)
	}
}

// TestOptimizeSharesRunCache: optimizer evaluations hit the per-point
// result cache primed by a sweep over the same grid, so the search
// simulates nothing new. The space must be all-feasible: sweeps cache
// only successful results, so infeasible points would re-simulate.
func TestOptimizeSharesRunCache(t *testing.T) {
	e := newEnv(t, service.Options{})
	base := smallConfig()
	op := kernel.Copy
	feasible := dse.Space{VecWidths: []int{1, 2, 4}, Types: []kernel.DataType{kernel.Int32, kernel.Float64}}

	_, data := e.post(t, "/v1/sweep", service.SweepRequest{Target: "cpu", Base: &base, Space: feasible, Op: &op})
	if decodeJob(t, data).Status != service.StatusDone {
		t.Fatal("priming sweep failed")
	}
	compilesAfterSweep := e.compiles.Load()

	_, data = e.post(t, "/v1/optimize", service.OptimizeRequest{
		Target: "cpu", Base: &base, Space: feasible, Op: &op, Strategy: "exhaustive"})
	job := decodeJob(t, data)
	if job.Status != service.StatusDone {
		t.Fatalf("optimize = %+v", job)
	}
	if job.CachedPoints != job.Optimize.Evaluations {
		t.Errorf("optimize cached %d of %d evaluations, want all", job.CachedPoints, job.Optimize.Evaluations)
	}
	if got := e.compiles.Load(); got != compilesAfterSweep {
		t.Errorf("optimize after sweep recompiled: %d -> %d", compilesAfterSweep, got)
	}
}

// TestConcurrentIdenticalOptimizeSingleFlight: overlapping identical
// optimize requests search once. A gated device holds the leader's
// first simulation open while followers pile up; after release exactly
// one search's worth of compilations has happened and the followers
// report cached results.
func TestConcurrentIdenticalOptimizeSingleFlight(t *testing.T) {
	gate := make(chan struct{})
	compiles := &atomic.Int64{}
	e := newEnv(t, service.Options{
		Workers: 4,
		NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return countingDevice{Device: gatedDevice{Device: d, gate: gate}, compiles: compiles}, nil
		},
	})
	base := smallConfig()
	req := service.OptimizeRequest{
		Target: "cpu", Base: &base, Space: optSpace(),
		Strategy: "random", Budget: 3, Seed: 1, Async: true,
	}
	const n = 4
	var jobs []string
	for i := 0; i < n; i++ {
		_, data := e.post(t, "/v1/optimize", req)
		jobs = append(jobs, decodeJob(t, data).ID)
	}
	close(gate)
	cached := 0
	var first *search.Result
	for _, id := range jobs {
		v := e.pollJob(t, id)
		if v.Status != service.StatusDone || v.Optimize == nil {
			t.Fatalf("job %s = %+v", id, v)
		}
		if v.Cached {
			cached++
		}
		if first == nil {
			first = v.Optimize
		} else {
			a, _ := json.Marshal(first)
			b, _ := json.Marshal(v.Optimize)
			if !bytes.Equal(a, b) {
				t.Errorf("job %s result differs from the leader's", id)
			}
		}
	}
	if cached != n-1 {
		t.Errorf("%d of %d optimize jobs cached, want %d", cached, n, n-1)
	}
	// One search simulates each unique point once: the budget bounds
	// compilations to budget x kernels-per-run (1 op here).
	if got := compiles.Load(); got > 3 {
		t.Errorf("identical concurrent optimizes compiled %d kernels, want <= 3", got)
	}
}

// TestOptimizeAsyncAndList: async optimize jobs poll to completion and
// appear in the job list with their kind.
func TestOptimizeAsyncAndList(t *testing.T) {
	e := newEnv(t, service.Options{})
	base := smallConfig()
	resp, data := e.post(t, "/v1/optimize", service.OptimizeRequest{
		Target: "gpu", Base: &base, Space: optSpace(), Strategy: "random", Budget: 2, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	final := e.pollJob(t, job.ID)
	if final.Status != service.StatusDone || final.Optimize == nil {
		t.Fatalf("job = %+v", final)
	}
	if final.Kind != service.KindOptimize {
		t.Errorf("kind = %q, want %q", final.Kind, service.KindOptimize)
	}

	resp, data = e.get(t, "/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	var jl service.JobsResponse
	if err := json.Unmarshal(data, &jl); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range jl.Jobs {
		if v.ID == job.ID && v.Kind == service.KindOptimize {
			found = true
		}
	}
	if !found {
		t.Errorf("optimize job %s missing from list", job.ID)
	}
}

// TestOptimizeDisabledCache: with caching off, identical optimize
// requests both execute and neither reports cached.
func TestOptimizeDisabledCache(t *testing.T) {
	e := newEnv(t, service.Options{CacheEntries: -1})
	base := smallConfig()
	req := service.OptimizeRequest{Target: "cpu", Base: &base, Space: optSpace(), Strategy: "random", Budget: 2, Seed: 8}
	for i := 0; i < 2; i++ {
		_, data := e.post(t, "/v1/optimize", req)
		job := decodeJob(t, data)
		if job.Status != service.StatusDone || job.Cached || job.CachedPoints != 0 {
			t.Fatalf("optimize %d = %+v", i, job)
		}
	}
}
