package service

import (
	"fmt"
	"sync"
	"testing"

	"mpstream/internal/core"
)

// res builds a distinguishable cache value.
func res(tag int) *core.Result {
	return &core.Result{FmaxMHz: float64(tag)}
}

// TestCacheEvictionOrder pins LRU semantics under interleaved get/put:
// a get promotes its entry, so the least *recently used* — not the
// least recently inserted — is the one evicted.
func TestCacheEvictionOrder(t *testing.T) {
	c := newResultCache(3)
	c.put("a", res(1))
	c.put("b", res(2))
	c.put("c", res(3))

	// Touch "a": recency order (most to least) becomes a, c, b.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	// Inserting "d" must evict "b", the least recently used.
	c.put("d", res(4))
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted out of order", k)
		}
	}

	// Refreshing an existing key is an update, not an insert: no
	// eviction, and the value is replaced and promoted.
	c.put("c", res(33))
	c.put("e", res(5)) // evicts "a": recency is c, d, a after the gets above... a was read first
	st := c.stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
	if v, ok := c.get("c"); !ok || v.FmaxMHz != 33 {
		t.Errorf("refreshed value = %+v, %v", v, ok)
	}
}

// TestCacheStatsCounters: hits, misses and evictions are counted
// exactly, and stats snapshots do not disturb them.
func TestCacheStatsCounters(t *testing.T) {
	c := newResultCache(2)
	if _, ok := c.get("x"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("x", res(1))
	c.put("y", res(2))
	if _, ok := c.get("x"); !ok {
		t.Fatal("x missing")
	}
	if _, ok := c.get("x"); !ok {
		t.Fatal("x missing on second read")
	}
	c.put("z", res(3)) // evicts y (x was promoted)
	if _, ok := c.get("y"); ok {
		t.Fatal("y survived")
	}

	st := c.stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want hits 2 misses 2 evictions 1", st)
	}
	if st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats shape = %+v", st)
	}
	if again := c.stats(); again != st {
		t.Errorf("stats snapshot mutated counters: %+v vs %+v", again, st)
	}
}

// TestCacheDisabled: max <= 0 disables the cache entirely — every get
// misses, puts are dropped, and enabled() reports it so callers skip
// fingerprinting and single-flight.
func TestCacheDisabled(t *testing.T) {
	for _, max := range []int{0, -1, -512} {
		c := newResultCache(max)
		if c.enabled() {
			t.Errorf("cache with max %d reports enabled", max)
		}
		c.put("k", res(1))
		if _, ok := c.get("k"); ok {
			t.Errorf("disabled cache (max %d) stored a value", max)
		}
		st := c.stats()
		if st.Entries != 0 || st.Hits != 0 || st.Misses != 1 || st.Evictions != 0 {
			t.Errorf("disabled cache stats = %+v", st)
		}
	}
}

// TestCacheConcurrentAccess hammers one cache from many goroutines —
// meaningful under -race, and the counters must still reconcile:
// every operation is either a hit or a miss, and entries never exceed
// capacity.
func TestCacheConcurrentAccess(t *testing.T) {
	const workers, ops, capacity = 8, 200, 16
	c := newResultCache(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("k%d", (w*7+i)%32)
				if _, ok := c.get(k); !ok {
					c.put(k, res(i))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.stats()
	if st.Entries > capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, capacity)
	}
	if st.Hits+st.Misses != workers*ops {
		t.Errorf("hits %d + misses %d != %d operations", st.Hits, st.Misses, workers*ops)
	}
}
