package service

import (
	"container/list"
	"sync"

	"mpstream/internal/core"
	"mpstream/internal/dse/search"
	"mpstream/internal/surface"
)

// lruCache is a thread-safe LRU keyed by canonical fingerprint,
// parameterized over the cached value. The simulator is deterministic,
// so a cached value is exactly what a re-execution would produce;
// entries are shared read-only between the cache and responses and
// must not be mutated.
//
// Two instantiations exist: the run-result cache (fingerprint of one
// (target, config) pair -> *core.Result, also consulted per grid point
// by sweeps and per evaluation by optimizer jobs) and the optimizer
// cache (fingerprint of a whole (target, base, space, op, strategy,
// budget, seed) request -> *search.Result).
type lruCache[V any] struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry[V any] struct {
	key string
	val V
}

// resultCache caches completed run results.
type resultCache = lruCache[*core.Result]

// optimizeCache caches completed optimizer results.
type optimizeCache = lruCache[*search.Result]

// surfaceCache caches completed bandwidth–latency surfaces.
type surfaceCache = lruCache[*surface.Surface]

// newResultCache builds a run-result cache holding up to max entries;
// max <= 0 disables caching entirely (every lookup misses, puts are
// dropped).
func newResultCache(max int) *resultCache { return newLRU[*core.Result](max) }

// newOptimizeCache builds an optimizer-result cache with the same
// max/disable semantics.
func newOptimizeCache(max int) *optimizeCache { return newLRU[*search.Result](max) }

// newSurfaceCache builds a surface cache with the same max/disable
// semantics.
func newSurfaceCache(max int) *surfaceCache { return newLRU[*surface.Surface](max) }

func newLRU[V any](max int) *lruCache[V] {
	return &lruCache[V]{
		max:   max,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// enabled reports whether the cache stores anything at all.
func (c *lruCache[V]) enabled() bool { return c.max > 0 }

// get returns the cached value for key, promoting it to most recent.
func (c *lruCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).val, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *lruCache[V]) put(key string, val V) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry[V]{key: key, val: val})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry[V]).key)
		c.evictions++
	}
}

// CacheStats is the cache telemetry /v1/healthz reports.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// stats snapshots the counters.
func (c *lruCache[V]) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.order.Len(),
		Capacity:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
