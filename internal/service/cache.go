package service

import (
	"container/list"
	"sync"

	"mpstream/internal/core"
)

// resultCache is a thread-safe LRU over completed runs, keyed by the
// canonical (target, config) fingerprint. The simulator is
// deterministic, so a cached *core.Result is exactly what a re-run
// would produce; entries are shared read-only between the cache and
// responses and must not be mutated.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key string
	res *core.Result
}

// newResultCache builds a cache holding up to max entries; max <= 0
// disables caching entirely (every lookup misses, puts are dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:   max,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// enabled reports whether the cache stores anything at all.
func (c *resultCache) enabled() bool { return c.max > 0 }

// get returns the cached result for key, promoting it to most recent.
func (c *resultCache) get(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *resultCache) put(key string, res *core.Result) {
	if c.max <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is the cache telemetry /v1/healthz reports.
type CacheStats struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// stats snapshots the counters.
func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:  c.order.Len(),
		Capacity: c.max,
		Hits:     c.hits,
		Misses:   c.misses,
	}
}
