package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpstream/internal/cluster"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/kernel"
	"mpstream/internal/runstate"
	"mpstream/internal/service"
	"mpstream/internal/sim/mem"
	"mpstream/internal/surface"
)

// fleetEnv is a coordinator server plus worker servers registered on
// its in-memory fleet — the whole cluster in one process, over real
// HTTP.
type fleetEnv struct {
	*testEnv // the coordinator
	coord    *cluster.Coordinator
	workers  []*testEnv
}

// newFleetEnv builds a coordinator with n workers. workerOpts — when
// non-nil — customizes worker i's service options (e.g. a blocking
// device factory); coordinator and workers otherwise count compiles
// independently, so tests can prove where simulations ran.
func newFleetEnv(t *testing.T, n int, workerOpts func(i int) service.Options) *fleetEnv {
	return newFleetEnvOpts(t, n, nil, workerOpts)
}

// newFleetEnvOpts is newFleetEnv with a hook to tune the coordinator's
// scheduler options (shard unit, speculation) before it is built.
func newFleetEnvOpts(t *testing.T, n int, copts func(*cluster.Options), workerOpts func(i int) service.Options) *fleetEnv {
	t.Helper()
	opts := cluster.Options{
		// Tests register workers once and never heartbeat; a generous TTL
		// keeps them alive for the whole test even under -race. Liveness
		// transitions are driven explicitly (connection kills mark
		// workers down).
		HeartbeatTTL: 5 * time.Minute,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
		// Speculation is timing-triggered; tests that don't opt in keep
		// it off so scheduling stays deterministic under -race load.
		DisableSpeculation: true,
	}
	if copts != nil {
		copts(&opts)
	}
	coord := cluster.New(opts)
	t.Cleanup(coord.Close)
	fe := &fleetEnv{coord: coord}
	for i := 0; i < n; i++ {
		var opts service.Options
		if workerOpts != nil {
			opts = workerOpts(i)
		}
		if opts.Origin == "" {
			opts.Origin = fmt.Sprintf("w%d", i)
		}
		we := newEnv(t, opts)
		fe.workers = append(fe.workers, we)
		coord.Register(cluster.WorkerInfo{
			ID:       fmt.Sprintf("w%d", i),
			Addr:     we.ts.URL,
			Targets:  targets.IDs(),
			Capacity: 2,
		})
	}
	fe.testEnv = newEnv(t, service.Options{Cluster: coord, Origin: "coordinator"})
	return fe
}

// workerCompiles sums kernel compilations across the fleet's workers.
func (fe *fleetEnv) workerCompiles() int64 {
	var n int64
	for _, w := range fe.workers {
		n += w.compiles.Load()
	}
	return n
}

// workerJobs fetches one worker's job list.
func workerJobs(t *testing.T, w *testEnv) []service.View {
	t.Helper()
	_, data := w.get(t, "/v1/jobs")
	var jr service.JobsResponse
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatalf("decode jobs: %v\n%s", err, data)
	}
	return jr.Jobs
}

// sweepReq is the canonical test sweep: 16 points on cpu.
func sweepReq() service.SweepRequest {
	base := smallConfig()
	op := kernel.Copy
	return service.SweepRequest{
		Target: "cpu",
		Base:   &base,
		Op:     &op,
		Space: dse.Space{
			VecWidths: []int{1, 2, 4, 8},
			Unrolls:   []int{1, 2},
			Types:     []kernel.DataType{kernel.Int32, kernel.Float64},
		},
	}
}

// singleNodeSweep runs the reference sweep on a standalone server and
// returns the canonical JSON of its exploration.
func singleNodeSweep(t *testing.T, req service.SweepRequest) []byte {
	t.Helper()
	e := newEnv(t, service.Options{})
	resp, data := e.post(t, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Sweep == nil {
		t.Fatalf("single-node sweep job = %+v", job)
	}
	b, err := json.Marshal(job.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetSweepByteIdentical: a sweep sharded across two in-process
// workers returns a ranking byte-identical (order and content) to a
// single-node sweep of the same request, with every simulation running
// on the workers and none on the coordinator. Run with -race.
func TestFleetSweepByteIdentical(t *testing.T) {
	req := sweepReq()
	want := singleNodeSweep(t, req)

	fe := newFleetEnv(t, 2, nil)
	resp, data := fe.post(t, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Sweep == nil {
		t.Fatalf("fleet sweep job = %+v", job)
	}
	got, err := json.Marshal(job.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet sweep diverges from single node:\n got %s\nwant %s", got, want)
	}
	if n := fe.compiles.Load(); n != 0 {
		t.Errorf("coordinator compiled %d kernels, want 0 (work belongs on the fleet)", n)
	}
	if n := fe.workerCompiles(); n == 0 {
		t.Error("workers compiled nothing — the sweep did not distribute")
	}
	// Both workers took shards (locality + load balance over equal-
	// capacity workers, 4 shards).
	for i, w := range fe.workers {
		if len(workerJobs(t, w)) == 0 {
			t.Errorf("worker %d executed no shard jobs", i)
		}
	}
	// A done fleet job reads complete progress.
	if job.Progress == nil || job.Progress.Done != job.Progress.Total || job.Progress.Total != req.Space.Size() {
		t.Errorf("fleet progress = %+v, want done == total == %d", job.Progress, req.Space.Size())
	}
}

// signalGateDevice signals on every compilation, then blocks until the
// gate closes — it pins a worker's shard mid-point so the test can
// kill the worker at a deterministic moment.
type signalGateDevice struct {
	device.Device
	signal func()
	gate   <-chan struct{}
}

func (d signalGateDevice) Compile(k kernel.Kernel) (device.Compiled, error) {
	d.signal()
	<-d.gate
	return d.Device.Compile(k)
}

// TestFleetSweepWorkerKilledMidJob: killing a worker mid-shard loses
// its connections; the coordinator marks it down, retries the shards
// on the surviving worker, and the merged result is still
// byte-identical to a single node's. Run with -race.
func TestFleetSweepWorkerKilledMidJob(t *testing.T) {
	req := sweepReq()
	want := singleNodeSweep(t, req)

	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	started := make(chan struct{})
	var startOnce sync.Once

	fe := newFleetEnv(t, 2, func(i int) service.Options {
		if i != 1 {
			return service.Options{}
		}
		// Worker 1 blocks inside its first grid point.
		return service.Options{NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return signalGateDevice{
				Device: d,
				signal: func() { startOnce.Do(func() { close(started) }) },
				gate:   gate,
			}, nil
		}}
	})

	resp, data := fe.post(t, "/v1/sweep", service.SweepRequest{
		Target: req.Target, Base: req.Base, Op: req.Op, Space: req.Space, Async: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker 1 never started a shard")
	}
	// Kill worker 1 the way a crashed machine looks from outside:
	// listener first (no new connections), then every established
	// connection (in-flight submissions and event streams break). The
	// service behind it stays up — its blocked job finishes once the
	// gate opens — but the coordinator must not need it anymore.
	fe.workers[1].ts.Listener.Close()
	fe.workers[1].ts.CloseClientConnections()

	final := fe.pollJob(t, job.ID)
	openGate()
	if final.Status != service.StatusDone || final.Sweep == nil {
		t.Fatalf("fleet sweep after worker kill = %s (error %q)", final.Status, final.Error)
	}
	got, err := json.Marshal(final.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-retry fleet sweep diverges from single node:\n got %s\nwant %s", got, want)
	}

	// The merged event stream must show the failover: at least one
	// failed shard attempt followed by a done shard on the survivor.
	resp2, events := fe.get(t, "/v1/jobs/"+job.ID+"/events")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp2.StatusCode)
	}
	failed, done := 0, 0
	for _, line := range bytes.Split(events, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad event %s: %v", line, err)
		}
		if ev.Type == service.EventShard && ev.Shard != nil {
			switch ev.Shard.State {
			case "failed":
				failed++
			case "done":
				done++
			}
		}
	}
	if failed == 0 {
		t.Error("no failed shard attempt in the merged event stream")
	}
	if done == 0 {
		t.Error("no done shard in the merged event stream")
	}
}

// TestFleetCancelPropagates: DELETE on a fleet job cancels every
// worker-side shard job within one evaluation unit. Run with -race.
func TestFleetCancelPropagates(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	var startedN atomic.Int64

	fe := newFleetEnv(t, 2, func(int) service.Options {
		return service.Options{NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return signalGateDevice{Device: d, signal: func() { startedN.Add(1) }, gate: gate}, nil
		}}
	})

	req := sweepReq()
	resp, data := fe.post(t, "/v1/sweep", service.SweepRequest{
		Target: req.Target, Base: req.Base, Op: req.Op, Space: req.Space, Async: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)

	// Wait until work is pinned mid-point and every worker holds at
	// least one shard job, so the later per-worker assertions are not
	// racing the scheduler.
	deadline := time.Now().Add(10 * time.Second)
	for {
		allHaveJobs := true
		for _, w := range fe.workers {
			if len(workerJobs(t, w)) == 0 {
				allHaveJobs = false
			}
		}
		if startedN.Load() >= 2 && allHaveJobs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shards never started on both workers")
		}
		time.Sleep(time.Millisecond)
	}

	canceled := fe.cancelJob(t, job.ID)
	if canceled.Status == service.StatusDone {
		t.Fatalf("cancel landed after completion: %+v", canceled)
	}
	// Open the gate: the pinned points finish, and every worker job must
	// stop at that evaluation-unit boundary instead of running its shard
	// to completion.
	openGate()

	final := fe.pollJob(t, job.ID)
	if final.Status != service.StatusCanceled {
		t.Fatalf("fleet job status %q, want canceled (error %q)", final.Status, final.Error)
	}
	if final.StopReason != runstate.Canceled {
		t.Errorf("stop_reason %q, want %q", final.StopReason, runstate.Canceled)
	}

	// Every worker-side shard job reached a terminal state, and at
	// least one was canceled mid-shard (the fan-out, not shard
	// completion, ended it).
	sawCanceled := false
	for i, w := range fe.workers {
		jobs := workerJobs(t, w)
		if len(jobs) == 0 {
			t.Errorf("worker %d executed no shard jobs", i)
		}
		wDeadline := time.Now().Add(10 * time.Second)
		for _, wj := range jobs {
			for {
				_, jd := w.get(t, "/v1/jobs/"+wj.ID)
				v := decodeJob(t, jd)
				if v.Status == service.StatusDone || v.Status == service.StatusFailed || v.Status == service.StatusCanceled {
					if v.Status == service.StatusCanceled {
						sawCanceled = true
					}
					break
				}
				if time.Now().After(wDeadline) {
					t.Fatalf("worker %d job %s stuck in %s after fleet cancel", i, wj.ID, v.Status)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	if !sawCanceled {
		t.Error("no worker job was canceled — the fan-out never landed")
	}
}

// TestFleetSurfaceMatchesSingleNode: a curve-sharded fleet surface is
// byte-identical to a single-node measurement, and the shards really
// ran on the workers.
func TestFleetSurfaceMatchesSingleNode(t *testing.T) {
	cfg := surface.Config{
		Patterns:   []mem.Pattern{mem.ContiguousPattern(), mem.StridedPattern(16)},
		RWRatios:   []float64{1, 0.5},
		Rates:      []float64{0.25, 0.9},
		ArrayBytes: 4 << 20,
		WindowTxns: 1024,
		ProbeHops:  64,
	}
	req := service.SurfaceRequest{Target: "gpu", Config: &cfg}

	single := surfEnv(t, service.Options{})
	resp, data := single.post(t, "/v1/surface", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node surface status %d: %s", resp.StatusCode, data)
	}
	sj := decodeJob(t, data)
	if sj.Status != service.StatusDone || sj.Surface == nil {
		t.Fatalf("single-node surface job = %+v", sj)
	}
	want, _ := json.Marshal(sj.Surface)

	// Workers need raw devices: the counting wrapper hides the
	// MemorySystem interface surface shards require.
	fe := newFleetEnv(t, 2, func(int) service.Options {
		return service.Options{NewDevice: targets.ByID}
	})
	resp, data = fe.post(t, "/v1/surface", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet surface status %d: %s", resp.StatusCode, data)
	}
	fj := decodeJob(t, data)
	if fj.Status != service.StatusDone || fj.Surface == nil {
		t.Fatalf("fleet surface job = %+v", fj)
	}
	got, _ := json.Marshal(fj.Surface)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet surface diverges from single node:\n got %s\nwant %s", got, want)
	}
	shardJobs := 0
	for _, w := range fe.workers {
		shardJobs += len(workerJobs(t, w))
	}
	if shardJobs < 2 {
		t.Errorf("surface ran as %d shard jobs, want >= 2", shardJobs)
	}
}

// TestFleetOptimizeSharesRunCache: an optimize on the coordinator runs
// the search locally but farms every simulation to the fleet; the
// result equals a single-node search and the coordinator itself never
// compiles a kernel.
func TestFleetOptimizeSharesRunCache(t *testing.T) {
	base := smallConfig()
	op := kernel.Copy
	req := service.OptimizeRequest{
		Target:   "cpu",
		Base:     &base,
		Op:       &op,
		Space:    dse.Space{VecWidths: []int{1, 2, 4, 8}},
		Strategy: "exhaustive",
	}

	single := newEnv(t, service.Options{})
	resp, data := single.post(t, "/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node optimize status %d: %s", resp.StatusCode, data)
	}
	sj := decodeJob(t, data)
	if sj.Status != service.StatusDone || sj.Optimize == nil {
		t.Fatalf("single-node optimize job = %+v", sj)
	}
	want, _ := json.Marshal(sj.Optimize)

	fe := newFleetEnv(t, 2, nil)
	resp, data = fe.post(t, "/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet optimize status %d: %s", resp.StatusCode, data)
	}
	fj := decodeJob(t, data)
	if fj.Status != service.StatusDone || fj.Optimize == nil {
		t.Fatalf("fleet optimize job = %+v", fj)
	}
	got, _ := json.Marshal(fj.Optimize)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet optimize diverges from single node:\n got %s\nwant %s", got, want)
	}
	if n := fe.compiles.Load(); n != 0 {
		t.Errorf("coordinator compiled %d kernels, want 0", n)
	}
	if n := fe.workerCompiles(); n == 0 {
		t.Error("workers compiled nothing — evaluations did not distribute")
	}

	// The remote results primed the coordinator's per-point run cache: a
	// repeat of one grid point is answered locally without any new
	// worker compile.
	before := fe.workerCompiles()
	cfg := smallConfig()
	cfg.VecWidth = 4
	resp, data = fe.post(t, "/v1/run", service.RunRequest{Target: "cpu", Config: &cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, data)
	}
	rj := decodeJob(t, data)
	if rj.Status != service.StatusDone || !rj.Cached {
		t.Errorf("post-optimize run = %+v, want cached hit", rj)
	}
	if after := fe.workerCompiles(); after != before {
		t.Errorf("cache-hit run still compiled on workers (%d -> %d)", before, after)
	}
	if fe.compiles.Load() != 0 {
		t.Errorf("cache-hit run compiled on the coordinator")
	}
}

// TestFleetFallsBackWithoutWorkers: a coordinator whose fleet is empty
// executes sweeps locally instead of failing.
func TestFleetFallsBackWithoutWorkers(t *testing.T) {
	req := sweepReq()
	want := singleNodeSweep(t, req)

	coord := cluster.New(cluster.Options{})
	t.Cleanup(coord.Close)
	e := newEnv(t, service.Options{Cluster: coord})
	resp, data := e.post(t, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Sweep == nil {
		t.Fatalf("job = %+v", job)
	}
	got, _ := json.Marshal(job.Sweep)
	if !bytes.Equal(got, want) {
		t.Fatalf("local-fallback sweep diverges:\n got %s\nwant %s", got, want)
	}
	if e.compiles.Load() == 0 {
		t.Error("empty-fleet coordinator did not execute locally")
	}
}

// TestClusterEndpoints covers the fleet control plane: registration,
// heartbeat, the registry listing, coordinator-only gating, and the
// healthz worker counts.
func TestClusterEndpoints(t *testing.T) {
	coord := cluster.New(cluster.Options{})
	t.Cleanup(coord.Close)
	e := newEnv(t, service.Options{Cluster: coord})

	// Register over HTTP.
	resp, data := e.post(t, "/v1/cluster/register", cluster.WorkerInfo{
		ID: "w0", Addr: "http://127.0.0.1:1", Targets: []string{"cpu"}, Capacity: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d: %s", resp.StatusCode, data)
	}
	var rr cluster.RegisterResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.TTLMS <= 0 || rr.HeartbeatMS <= 0 || rr.HeartbeatMS >= rr.TTLMS {
		t.Errorf("register response = %+v", rr)
	}

	// Heartbeats: known for w0, unknown for a stranger.
	for _, tc := range []struct {
		id   string
		want bool
	}{{"w0", true}, {"ghost", false}} {
		resp, data = e.post(t, "/v1/cluster/heartbeat", cluster.HeartbeatRequest{ID: tc.id})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("heartbeat status %d: %s", resp.StatusCode, data)
		}
		var hr cluster.HeartbeatResponse
		if err := json.Unmarshal(data, &hr); err != nil {
			t.Fatal(err)
		}
		if hr.Known != tc.want {
			t.Errorf("heartbeat(%s).known = %v, want %v", tc.id, hr.Known, tc.want)
		}
	}

	// Registry listing.
	resp, data = e.get(t, "/v1/cluster/workers")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workers status %d: %s", resp.StatusCode, data)
	}
	var wr service.WorkersResponse
	if err := json.Unmarshal(data, &wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Workers) != 1 || wr.Workers[0].ID != "w0" || !wr.Workers[0].Alive {
		t.Errorf("workers = %+v", wr.Workers)
	}

	// Healthz reports the fleet.
	resp, data = e.get(t, "/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h struct {
		UptimeMS *int64 `json:"uptime_ms"`
		Cluster  *struct {
			WorkersAlive int `json:"workers_alive"`
			WorkersTotal int `json:"workers_total"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.UptimeMS == nil {
		t.Error("healthz missing uptime_ms")
	}
	if h.Cluster == nil || h.Cluster.WorkersAlive != 1 || h.Cluster.WorkersTotal != 1 {
		t.Errorf("healthz cluster = %+v", h.Cluster)
	}

	// A plain server is not a coordinator: control-plane endpoints 404,
	// and healthz omits the cluster block.
	plain := newEnv(t, service.Options{})
	resp, _ = plain.post(t, "/v1/cluster/register", cluster.WorkerInfo{ID: "w", Addr: "http://x"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("register on plain server = %d, want 404", resp.StatusCode)
	}
	resp, _ = plain.get(t, "/v1/cluster/workers")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("workers on plain server = %d, want 404", resp.StatusCode)
	}
	_, data = plain.get(t, "/v1/healthz")
	if strings.Contains(string(data), `"cluster"`) {
		t.Error("plain healthz reports a cluster block")
	}
}

// TestShardEndpoints: any server executes shard slices locally, the
// slice points match the corresponding full-grid slice, and malformed
// ranges are request errors.
func TestShardEndpoints(t *testing.T) {
	e := newEnv(t, service.Options{})
	req := sweepReq()

	// A 5-point slice [3, 8) of the 16-point grid.
	resp, data := e.post(t, "/v1/cluster/shard/sweep", cluster.SweepShardRequest{
		Target: req.Target, Base: req.Base, Op: req.Op, Space: req.Space, Lo: 3, Hi: 8,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep shard status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Sweep == nil {
		t.Fatalf("shard job = %+v", job)
	}
	if n := len(job.Sweep.Ranked) + job.Sweep.Infeasible; n != 5 {
		t.Errorf("shard evaluated %d points, want 5", n)
	}
	if job.Progress == nil || job.Progress.Total != 5 {
		t.Errorf("shard progress = %+v, want total 5", job.Progress)
	}

	// Out-of-grid ranges are rejected.
	for _, r := range [][2]int{{-1, 4}, {9, 4}, {0, 17}} {
		resp, _ := e.post(t, "/v1/cluster/shard/sweep", cluster.SweepShardRequest{
			Target: req.Target, Base: req.Base, Op: req.Op, Space: req.Space, Lo: r[0], Hi: r[1],
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("sweep shard [%d,%d) = %d, want 400", r[0], r[1], resp.StatusCode)
		}
	}
	resp, _ = e.post(t, "/v1/cluster/shard/surface", cluster.SurfaceShardRequest{
		Target: "gpu", Lo: 2, Hi: 99,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("surface shard out of range = %d, want 400", resp.StatusCode)
	}
}

// TestContentTypeRejected: POST bodies declaring a non-JSON content
// type are refused with 415 before any decoding; JSON spellings and an
// absent header pass.
func TestContentTypeRejected(t *testing.T) {
	e := newEnv(t, service.Options{})
	body := `{"target":"cpu"}`

	for _, ct := range []string{"text/plain", "application/x-www-form-urlencoded", "application/octet-stream"} {
		resp, err := http.Post(e.ts.URL+"/v1/run", ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("content type %q = %d, want 415", ct, resp.StatusCode)
		}
	}

	for _, ct := range []string{"", "application/json", "application/json; charset=utf-8", "application/hal+json"} {
		req, err := http.NewRequest(http.MethodPost, e.ts.URL+"/v1/run", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// The default config runs fine; anything but 415 means the
		// content-type gate let it through.
		if resp.StatusCode == http.StatusUnsupportedMediaType {
			t.Errorf("content type %q rejected with 415", ct)
		}
	}
}

// delayDevice wraps a real target and sleeps before every kernel
// compilation — an injectable per-worker slowdown that models a
// heterogeneous or overloaded fleet node without changing any result
// bytes.
type delayDevice struct {
	device.Device
	delay time.Duration
}

func (d delayDevice) Compile(k kernel.Kernel) (device.Compiled, error) {
	time.Sleep(d.delay)
	return d.Device.Compile(k)
}

// delayedWorker builds worker options where worker `slow` compiles
// with the given delay and every other worker runs at full speed.
func delayedWorker(slow int, delay time.Duration) func(i int) service.Options {
	return func(i int) service.Options {
		if i != slow {
			return service.Options{}
		}
		return service.Options{NewDevice: func(id string) (device.Device, error) {
			d, err := targets.ByID(id)
			if err != nil {
				return nil, err
			}
			return delayDevice{Device: d, delay: delay}, nil
		}}
	}
}

// stragglerSweepReq is a 24-point cpu sweep — enough shards (at unit
// granularity) for the pull queue's load skew to be unambiguous.
func stragglerSweepReq() service.SweepRequest {
	base := smallConfig()
	op := kernel.Copy
	return service.SweepRequest{
		Target: "cpu",
		Base:   &base,
		Op:     &op,
		Space: dse.Space{
			VecWidths: []int{1, 2, 4, 8},
			Unrolls:   []int{1, 2, 3},
			Types:     []kernel.DataType{kernel.Int32, kernel.Float64},
		},
	}
}

// TestFleetSweepStragglerStealing: with one worker 50ms-per-point slow
// and single-point shards, the pull queue lets the fast workers drain
// almost the whole grid — wall clock stays under what a static
// third-of-the-grid partition would pin on the straggler, the load
// skews to the fast workers, and the merged bytes still match a single
// node. Run with -race.
func TestFleetSweepStragglerStealing(t *testing.T) {
	const delay = 50 * time.Millisecond
	req := stragglerSweepReq()
	want := singleNodeSweep(t, req)

	fe := newFleetEnvOpts(t, 3,
		func(o *cluster.Options) { o.ShardUnit = 1 },
		delayedWorker(2, delay))

	start := time.Now()
	resp, data := fe.post(t, "/v1/sweep", req)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Sweep == nil {
		t.Fatalf("fleet sweep job = %+v", job)
	}
	got, err := json.Marshal(job.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("straggler fleet sweep diverges from single node:\n got %s\nwant %s", got, want)
	}

	// A static 3-way partition would hand the straggler 8 points:
	// >= 400ms of wall clock no matter what the fast workers do. The
	// queue must beat that bound — the fast workers finish the grid
	// while the straggler chews a shard or two.
	if staticBound := 8 * delay; elapsed >= staticBound {
		t.Errorf("sweep took %v, want < %v (static-partition straggler bound)", elapsed, staticBound)
	}
	var slowDone, fastDone uint64
	for _, w := range fe.coord.Workers() {
		if w.ID == "w2" {
			slowDone += w.ShardsDone
		} else {
			fastDone += w.ShardsDone
		}
	}
	if slowDone+fastDone == 0 || fastDone <= slowDone*2 {
		t.Errorf("shard completion skew fast=%d slow=%d, want fast workers absorbing the queue", fastDone, slowDone)
	}

	// The merged stream carries queue depth on shard events.
	_, events := fe.get(t, "/v1/jobs/"+job.ID+"/events")
	queued := 0
	for _, line := range bytes.Split(events, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad event %s: %v", line, err)
		}
		if ev.Type == service.EventShard && ev.Shard != nil && ev.Shard.Queued > 0 {
			queued++
		}
	}
	if queued == 0 {
		t.Error("no shard event carried a queue depth")
	}
}

// TestFleetSweepSpeculationDedup: a worker wedged inside its shards
// never returns; once the queue is empty the dispatcher speculates
// duplicates onto the idle fast worker, the first result settles each
// shard, the wedged attempts are canceled as race losers, and the
// merged bytes still match a single node. Run with -race.
func TestFleetSweepSpeculationDedup(t *testing.T) {
	req := sweepReq()
	want := singleNodeSweep(t, req)

	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()

	fe := newFleetEnvOpts(t, 2,
		func(o *cluster.Options) {
			o.ShardUnit = 1
			o.DisableSpeculation = false
			o.SpecFactor = 1 // the 25ms floor governs; fast shards finish in ~1ms
			o.SpecMinSamples = 3
		},
		func(i int) service.Options {
			if i != 1 {
				return service.Options{}
			}
			// Worker 1 wedges inside every compilation until the gate
			// opens (after the job completes without it).
			return service.Options{NewDevice: func(id string) (device.Device, error) {
				d, err := targets.ByID(id)
				if err != nil {
					return nil, err
				}
				return signalGateDevice{Device: d, signal: func() {}, gate: gate}, nil
			}}
		})

	resp, data := fe.post(t, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.Status != service.StatusDone || job.Sweep == nil {
		t.Fatalf("fleet sweep job = %+v (error %q)", job.Status, job.Error)
	}
	got, err := json.Marshal(job.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("speculated fleet sweep diverges from single node:\n got %s\nwant %s", got, want)
	}

	st := fe.coord.Stats()
	if st.ShardsSpeculated == 0 {
		t.Error("no speculative attempt launched for the wedged shards")
	}
	if st.SpeculationWins == 0 {
		t.Error("no speculative attempt won its race")
	}

	// The merged stream shows the race: speculated launches and the
	// wedged primaries tagged as race losers.
	_, events := fe.get(t, "/v1/jobs/"+job.ID+"/events")
	speculated, lostRace := 0, 0
	for _, line := range bytes.Split(events, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad event %s: %v", line, err)
		}
		if ev.Type == service.EventShard && ev.Shard != nil {
			switch ev.Shard.State {
			case "speculated":
				speculated++
			case "lost-race":
				lostRace++
			}
		}
	}
	if speculated == 0 {
		t.Error("no speculated shard event in the merged stream")
	}
	if lostRace == 0 {
		t.Error("no lost-race shard event in the merged stream")
	}
	openGate()
}

// TestFleetSweepWorkerJoinsMidJob: a worker registered while a fleet
// job is in flight starts pulling queued shards immediately — the
// elastic half of the scheduler — and the merged bytes still match a
// single node. Run with -race.
func TestFleetSweepWorkerJoinsMidJob(t *testing.T) {
	req := stragglerSweepReq()
	want := singleNodeSweep(t, req)

	// The lone starting worker is slow enough (20ms/point) that the
	// job is still mostly queued when the second worker joins.
	fe := newFleetEnvOpts(t, 1,
		func(o *cluster.Options) { o.ShardUnit = 1 },
		delayedWorker(0, 20*time.Millisecond))

	resp, data := fe.post(t, "/v1/sweep", service.SweepRequest{
		Target: req.Target, Base: req.Base, Op: req.Op, Space: req.Space, Async: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)

	// Wait until the job has measurable progress, then join a fast
	// replacement-grade worker mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, jd := fe.get(t, "/v1/jobs/"+job.ID)
		v := decodeJob(t, jd)
		if v.Progress != nil && v.Progress.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress on the slow worker")
		}
		time.Sleep(2 * time.Millisecond)
	}
	joined := newEnv(t, service.Options{Origin: "w1"})
	fe.coord.Register(cluster.WorkerInfo{
		ID: "w1", Addr: joined.ts.URL, Targets: targets.IDs(), Capacity: 2,
	})

	final := fe.pollJob(t, job.ID)
	if final.Status != service.StatusDone || final.Sweep == nil {
		t.Fatalf("fleet sweep after join = %s (error %q)", final.Status, final.Error)
	}
	got, err := json.Marshal(final.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-join fleet sweep diverges from single node:\n got %s\nwant %s", got, want)
	}
	if len(workerJobs(t, joined)) == 0 {
		t.Error("joined worker pulled no shards from the in-flight job")
	}
}
