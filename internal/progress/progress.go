// Package progress is the lock-free in-flight progress accounting of
// the execution pipeline. Every executor (run, sweep, optimize,
// surface) maintains one Tracker per job: evaluation units done versus
// total, the best bandwidth observed so far, and a short phase label.
// Snapshots are cheap and consistent enough for telemetry — readers
// (job JSON, the NDJSON event stream) never block writers.
package progress

import (
	"math"
	"sync/atomic"
)

// Tracker accumulates progress atomically. The zero value is ready to
// use; all methods are safe for concurrent use.
type Tracker struct {
	done  atomic.Int64
	total atomic.Int64
	// best holds math.Float64bits of the highest bandwidth observed;
	// monotonic via CAS.
	best  atomic.Uint64
	phase atomic.Pointer[string]
}

// SetTotal sets the number of evaluation units the job will perform.
func (t *Tracker) SetTotal(n int) { t.total.Store(int64(n)) }

// SetPhase labels what the executor is currently doing.
func (t *Tracker) SetPhase(p string) { t.phase.Store(&p) }

// Step records n more completed evaluation units.
func (t *Tracker) Step(n int) { t.done.Add(int64(n)) }

// Observe folds one measured bandwidth into the best-so-far maximum.
// Non-positive and NaN observations are ignored.
func (t *Tracker) Observe(gbps float64) {
	if !(gbps > 0) { // also rejects NaN
		return
	}
	for {
		old := t.best.Load()
		if math.Float64frombits(old) >= gbps {
			return
		}
		if t.best.CompareAndSwap(old, math.Float64bits(gbps)) {
			return
		}
	}
}

// Snapshot is the externally visible progress state, the shape job
// JSON and progress events embed.
type Snapshot struct {
	// Done and Total count evaluation units: grid points for a sweep,
	// unique simulations for an optimize, ladder rungs for a surface,
	// one unit for a plain run.
	Done  int `json:"done"`
	Total int `json:"total"`
	// BestGBps is the highest bandwidth observed so far (0 before any
	// feasible measurement).
	BestGBps float64 `json:"best_gbps,omitempty"`
	// Phase labels the executor's current stage.
	Phase string `json:"phase,omitempty"`
}

// Snapshot returns a consistent-enough copy of the current state.
func (t *Tracker) Snapshot() Snapshot {
	s := Snapshot{
		Done:     int(t.done.Load()),
		Total:    int(t.total.Load()),
		BestGBps: math.Float64frombits(t.best.Load()),
	}
	if p := t.phase.Load(); p != nil {
		s.Phase = *p
	}
	return s
}
