package progress_test

import (
	"math"
	"sync"
	"testing"

	"mpstream/internal/progress"
)

func TestTrackerBasics(t *testing.T) {
	var tr progress.Tracker
	if s := tr.Snapshot(); s.Done != 0 || s.Total != 0 || s.BestGBps != 0 || s.Phase != "" {
		t.Fatalf("zero tracker snapshot = %+v", s)
	}
	tr.SetTotal(10)
	tr.SetPhase("sweep")
	tr.Step(3)
	tr.Observe(4.5)
	tr.Observe(2.0) // lower: ignored
	s := tr.Snapshot()
	if s.Done != 3 || s.Total != 10 || s.BestGBps != 4.5 || s.Phase != "sweep" {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestObserveRejectsGarbage(t *testing.T) {
	var tr progress.Tracker
	tr.Observe(0)
	tr.Observe(-1)
	tr.Observe(math.NaN())
	if s := tr.Snapshot(); s.BestGBps != 0 {
		t.Errorf("best = %g after garbage observations", s.BestGBps)
	}
}

// TestConcurrent exercises the tracker under parallel writers and a
// reader; run with -race.
func TestConcurrent(t *testing.T) {
	var tr progress.Tracker
	tr.SetTotal(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				tr.Step(1)
				tr.Observe(float64(w*8 + i + 1))
				_ = tr.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.Done != 64 || s.BestGBps != 64 {
		t.Errorf("final snapshot = %+v", s)
	}
}
