package dse

import (
	"math"

	"mpstream/internal/core"
	"mpstream/internal/kernel"
	"mpstream/internal/shard"
)

// Space is a parameter grid for exploration. Nil axes keep the base
// configuration's value. Beyond flat enumeration (Configs), a Space is
// an indexable discrete lattice: every grid point is addressed by an
// index vector with one digit per non-empty axis, which is what the
// neighborhood-based search strategies in dse/search walk.
type Space struct {
	VecWidths []int             `json:"vec_widths,omitempty"`
	Loops     []kernel.LoopMode `json:"loops,omitempty"`
	Unrolls   []int             `json:"unrolls,omitempty"`
	SIMDs     []int             `json:"simds,omitempty"`
	CUs       []int             `json:"cus,omitempty"`
	Types     []kernel.DataType `json:"types,omitempty"`
}

// axis is one non-empty dimension of the grid: its length and the
// mutation that applies value i of the axis to a configuration.
type axis struct {
	n     int
	apply func(*core.Config, int)
}

// axes returns the non-empty dimensions in enumeration order. The
// order fixes both the flat Configs order (first axis most
// significant) and the digit order of index vectors.
func (s Space) axes() []axis {
	var ax []axis
	add := func(n int, apply func(*core.Config, int)) {
		if n > 0 {
			ax = append(ax, axis{n: n, apply: apply})
		}
	}
	add(len(s.VecWidths), func(c *core.Config, i int) { c.VecWidth = s.VecWidths[i] })
	add(len(s.Loops), func(c *core.Config, i int) { c.OptimalLoop = false; c.Loop = s.Loops[i] })
	add(len(s.Unrolls), func(c *core.Config, i int) { c.Attrs.Unroll = s.Unrolls[i] })
	add(len(s.SIMDs), func(c *core.Config, i int) {
		c.Attrs.NumSIMDWorkItems = s.SIMDs[i]
		if s.SIMDs[i] > 1 && c.Attrs.ReqdWorkGroupSize == 0 {
			c.Attrs.ReqdWorkGroupSize = 256
		}
	})
	add(len(s.CUs), func(c *core.Config, i int) { c.Attrs.NumComputeUnits = s.CUs[i] })
	add(len(s.Types), func(c *core.Config, i int) { c.Type = s.Types[i] })
	return ax
}

// Size returns the number of grid points, saturating at MaxInt on
// overflow so size guards cannot be bypassed by wraparound.
func (s Space) Size() int {
	n := 1
	for _, ax := range s.axes() {
		if n > math.MaxInt/ax.n {
			return math.MaxInt
		}
		n *= ax.n
	}
	return n
}

// Dims returns the lengths of the non-empty axes in enumeration order
// — the mixed-radix shape of the grid. An empty Space has no
// dimensions and exactly one point (the base configuration).
func (s Space) Dims() []int {
	ax := s.axes()
	dims := make([]int, len(ax))
	for i, a := range ax {
		dims[i] = a.n
	}
	return dims
}

// At returns the configuration at index vector idx applied over base.
// idx must have one in-range digit per non-empty axis (see Dims);
// anything else is a programmer error and panics like an out-of-range
// slice index.
func (s Space) At(base core.Config, idx []int) core.Config {
	ax := s.axes()
	if len(idx) != len(ax) {
		panic("dse: index vector length does not match space dimensions")
	}
	cfg := base
	for k, a := range ax {
		a.apply(&cfg, idx[k])
	}
	return cfg
}

// Flatten converts an index vector to its flat enumeration position:
// the position the configuration occupies in Configs' output.
func (s Space) Flatten(idx []int) int {
	ax := s.axes()
	if len(idx) != len(ax) {
		panic("dse: index vector length does not match space dimensions")
	}
	flat := 0
	for k, a := range ax {
		flat = flat*a.n + idx[k]
	}
	return flat
}

// Unflatten converts a flat enumeration position to its index vector.
func (s Space) Unflatten(flat int) []int {
	ax := s.axes()
	idx := make([]int, len(ax))
	for k := len(ax) - 1; k >= 0; k-- {
		idx[k] = flat % ax[k].n
		flat /= ax[k].n
	}
	return idx
}

// Neighbors returns the Hamming-distance-1 index vectors around idx:
// every vector that changes exactly one axis to an adjacent value
// (digit ±1, clamped at the axis ends). Axis value lists are walked in
// their declared order, so "adjacent" is whatever the caller's
// ordering means — ascending vector widths give powers-of-two steps.
// The result is deterministic: axis order first, -1 before +1.
func (s Space) Neighbors(idx []int) [][]int {
	ax := s.axes()
	if len(idx) != len(ax) {
		panic("dse: index vector length does not match space dimensions")
	}
	var nbs [][]int
	for k, a := range ax {
		for _, d := range []int{-1, +1} {
			v := idx[k] + d
			if v < 0 || v >= a.n {
				continue
			}
			nb := make([]int, len(idx))
			copy(nb, idx)
			nb[k] = v
			nbs = append(nbs, nb)
		}
	}
	return nbs
}

// Range is a contiguous run [Lo, Hi) of a Space's flat enumeration
// order — the unit a distributed sweep shards the grid into. An empty
// range (Lo == Hi) holds no points.
type Range = shard.Range

// Partition splits the grid's flat order into at most parts contiguous
// ranges of near-equal size (sizes differ by at most one point, larger
// shards first). Concatenating the ranges in order covers [0, Size())
// exactly once, so shard evaluation followed by in-order concatenation
// reproduces the flat enumeration — the property the cluster layer's
// shard merge relies on. parts <= 1, or a grid smaller than parts,
// yields fewer (possibly one) ranges; an empty grid yields one
// single-point range (the base configuration).
func (s Space) Partition(parts int) []Range {
	return shard.Split(s.Size(), parts)
}

// ConfigsRange enumerates the grid points at flat positions [lo, hi)
// over a base configuration, in flat order — exactly
// Configs(base)[lo:hi] without materializing the whole grid. Ranges
// outside [0, Size()] panic like an out-of-range slice index.
func (s Space) ConfigsRange(base core.Config, lo, hi int) []core.Config {
	if lo < 0 || hi < lo || hi > s.Size() {
		panic("dse: configuration range out of bounds")
	}
	out := make([]core.Config, 0, hi-lo)
	for flat := lo; flat < hi; flat++ {
		out = append(out, s.At(base, s.Unflatten(flat)))
	}
	return out
}

// Configs enumerates the grid over a base configuration in flat order:
// the first non-empty axis varies slowest, the last fastest, matching
// Flatten/Unflatten.
func (s Space) Configs(base core.Config) []core.Config {
	cfgs := []core.Config{base}
	for _, a := range s.axes() {
		out := make([]core.Config, 0, len(cfgs)*a.n)
		for _, c := range cfgs {
			for i := 0; i < a.n; i++ {
				cc := c
				a.apply(&cc, i)
				out = append(out, cc)
			}
		}
		cfgs = out
	}
	return cfgs
}
