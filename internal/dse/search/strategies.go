package search

import (
	"fmt"
	"math"
	"sort"
)

var negInf = math.Inf(-1)

// Strategy decides which grid points to evaluate. Search drives the
// engine until the budget is spent (Engine evaluations return ok ==
// false), the space is exhausted, or the strategy has nothing further
// to try. Implementations must take all randomness from Engine.Rand so
// seeded runs reproduce.
type Strategy interface {
	// Name is the registry key and the name reported in Result.
	Name() string
	// Search runs the strategy to completion on e.
	Search(e *Engine)
}

// registry holds the known strategies. Factories (rather than shared
// instances) keep strategies free to carry per-run state.
var registry = map[string]func() Strategy{}

// Register adds a strategy factory under its name. Registering a
// duplicate name panics: strategies are wired at init time and a
// collision is a programming error.
func Register(name string, f func() Strategy) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("search: strategy %q already registered", name))
	}
	registry[name] = f
}

// Lookup resolves a strategy by name; empty selects exhaustive. The
// error lists the known names, so it is directly servable as an HTTP
// 400 body.
func Lookup(name string) (Strategy, error) {
	if name == "" {
		name = "exhaustive"
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("search: unknown strategy %q (want one of %v)", name, Strategies())
	}
	return f(), nil
}

// Strategies lists the registered strategy names, sorted.
func Strategies() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("exhaustive", func() Strategy { return exhaustive{} })
	Register("random", func() Strategy { return random{} })
	Register("hillclimb", func() Strategy { return hillClimb{} })
	Register("anneal", func() Strategy { return anneal{} })
}

// exhaustive walks the grid in flat enumeration order — the dse.Explore
// baseline expressed as a Strategy. At full budget over a space whose
// axis values are canonically distinct its Result.Exploration is
// identical to dse.Explore; under a budget it is a truncated prefix
// scan, useful as a worst-case comparison for the adaptive strategies.
type exhaustive struct{}

func (exhaustive) Name() string { return "exhaustive" }

func (exhaustive) Search(e *Engine) {
	for i := 0; i < e.Size(); i++ {
		if _, ok := e.EvalFlat(i); !ok {
			return
		}
	}
}

// random samples the grid uniformly with replacement. Dedup makes
// repeated draws free, so the budget buys distinct points; the attempt
// cap bounds the tail where a small space is almost fully explored and
// fresh draws mostly collide.
type random struct{}

func (random) Name() string { return "random" }

func (random) Search(e *Engine) {
	maxAttempts := 16*e.Budget() + 64
	for attempts := 0; attempts < maxAttempts && !e.Done(); attempts++ {
		if _, ok := e.EvalFlat(e.Rand().Intn(e.Size())); !ok {
			return
		}
	}
}

// hillClimb is first-improvement hill climbing with random restarts:
// from a random point, move to the first Hamming-1 neighbor that
// strictly improves bandwidth; at a local optimum, restart. Climbs are
// strictly monotone, so each restart terminates; revisited points are
// free, so climbing back through known territory costs no budget.
type hillClimb struct{}

func (hillClimb) Name() string { return "hillclimb" }

func (hillClimb) Search(e *Engine) {
	// Restarts that land on explored territory cost nothing but also
	// find nothing; cap them so a nearly-exhausted space terminates.
	maxRestarts := 4*e.Budget() + 16
	for restart := 0; restart < maxRestarts && !e.Done(); restart++ {
		cur := e.RandomIndex()
		curPt, ok := e.EvalIndex(cur)
		if !ok {
			return
		}
		curScore := e.Score(curPt)
		for improved := true; improved; {
			improved = false
			for _, nb := range e.Space().Neighbors(cur) {
				p, ok := e.EvalIndex(nb)
				if !ok {
					return
				}
				if s := e.Score(p); s > curScore {
					cur, curScore, improved = nb, s, true
					break
				}
			}
		}
	}
}

// anneal is simulated annealing over the Hamming-1 neighborhood:
// uphill moves are always taken, downhill moves with probability
// exp(Δ/(T·ref)) where Δ is the (negative) bandwidth change, ref the
// incumbent best bandwidth (keeping acceptance scale-free across
// devices whose bandwidths differ by orders of magnitude), and T
// cools geometrically over the step schedule. Infeasible proposals are
// never accepted but an infeasible *start* accepts any feasible move.
type anneal struct{}

func (anneal) Name() string { return "anneal" }

const (
	annealT0 = 0.30  // initial relative temperature
	annealT1 = 0.005 // final relative temperature
)

func (anneal) Search(e *Engine) {
	cur := e.RandomIndex()
	curPt, ok := e.EvalIndex(cur)
	if !ok {
		return
	}
	curScore := e.Score(curPt)
	// Proposals revisit freely; the step schedule (not the budget) is
	// what cools and terminates the walk.
	maxSteps := 16*e.Budget() + 64
	for step := 0; step < maxSteps && !e.Done(); step++ {
		nbs := e.Space().Neighbors(cur)
		if len(nbs) == 0 {
			return // zero-dimensional space
		}
		nb := nbs[e.Rand().Intn(len(nbs))]
		p, ok := e.EvalIndex(nb)
		if !ok {
			return
		}
		s := e.Score(p)
		// Infeasible proposals (s == -Inf) are never accepted, even from
		// an infeasible start; they still bill the budget when unique,
		// which is honest — a real FPGA compile that fails to fit costs
		// the same tool time as one that fits.
		accept := s >= curScore && !math.IsInf(s, -1)
		if !accept && !math.IsInf(s, -1) {
			frac := float64(step) / float64(maxSteps)
			t := annealT0 * math.Pow(annealT1/annealT0, frac)
			ref := e.BestScore()
			if ref <= 0 {
				ref = 1
			}
			accept = e.Rand().Float64() < math.Exp((s-curScore)/(ref*t))
		}
		if accept {
			cur, curScore = nb, s
		}
	}
}
