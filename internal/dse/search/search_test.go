package search_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
)

func testBase() core.Config {
	cfg := core.DefaultConfig()
	cfg.ArrayBytes = 1 << 16
	cfg.NTimes = 2
	return cfg
}

func testSpace() dse.Space {
	return dse.Space{
		VecWidths: []int{1, 2, 4, 8},
		Loops:     []kernel.LoopMode{kernel.NDRange, kernel.FlatLoop},
		Types:     []kernel.DataType{kernel.Int32, kernel.Float64},
	}
}

func mustTarget(t *testing.T, id string) device.Device {
	t.Helper()
	dev, err := targets.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestExhaustiveMatchesExplore is the acceptance criterion: the
// exhaustive strategy at full budget returns the same best point — and
// the same full ranking, byte for byte — as dse.Explore.
func TestExhaustiveMatchesExplore(t *testing.T) {
	for _, target := range []string{"cpu", "aocl"} {
		t.Run(target, func(t *testing.T) {
			base, space, op := testBase(), testSpace(), kernel.Triad
			want := dse.Explore(mustTarget(t, target), base, space, op)

			res, err := search.Run(mustTarget(t, target), base, space, op, search.Options{Strategy: "exhaustive"})
			if err != nil {
				t.Fatal(err)
			}
			if res.Evaluations != space.Size() || res.Budget != space.Size() {
				t.Errorf("evaluations = %d, budget = %d, want %d", res.Evaluations, res.Budget, space.Size())
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(res.Exploration)
			if err != nil {
				t.Fatal(err)
			}
			if string(wantJSON) != string(gotJSON) {
				t.Errorf("exhaustive exploration differs from dse.Explore:\n got %s\nwant %s", gotJSON, wantJSON)
			}
			wantBest, ok := want.Best()
			if !ok || res.Best == nil {
				t.Fatalf("no best point: explore ok=%v search best=%v", ok, res.Best)
			}
			if res.Best.Label != wantBest.Label || res.BestGBps != wantBest.GBps(op) {
				t.Errorf("best = %s %.3f, want %s %.3f", res.Best.Label, res.BestGBps, wantBest.Label, wantBest.GBps(op))
			}
		})
	}
}

// TestSeededRunsReproduce: equal (strategy, budget, seed) triples give
// bit-identical results, including the evaluation trace.
func TestSeededRunsReproduce(t *testing.T) {
	base, space, op := testBase(), testSpace(), kernel.Copy
	for _, strat := range []string{"random", "hillclimb", "anneal"} {
		t.Run(strat, func(t *testing.T) {
			opts := search.Options{Strategy: strat, Budget: 8, Seed: 42}
			first, err := search.Run(mustTarget(t, "cpu"), base, space, op, opts)
			if err != nil {
				t.Fatal(err)
			}
			second, err := search.Run(mustTarget(t, "cpu"), base, space, op, opts)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := json.Marshal(first)
			b, _ := json.Marshal(second)
			if string(a) != string(b) {
				t.Errorf("seeded %s runs differ:\n%s\n%s", strat, a, b)
			}
			if first.Evaluations == 0 || first.Evaluations > 8 {
				t.Errorf("evaluations = %d, want 1..8", first.Evaluations)
			}
			if len(first.Trace) != first.Evaluations {
				t.Errorf("trace has %d entries, want %d", len(first.Trace), first.Evaluations)
			}
		})
	}
}

// syntheticEval fabricates results from a score table without any
// device, counting calls per label to prove fingerprint dedup.
func syntheticEval(op kernel.Op, gbps func(cfg core.Config) float64, calls map[string]int) search.Evaluator {
	return func(cfg core.Config, label, _ string) dse.Point {
		calls[label]++
		res := &core.Result{
			Config:  cfg,
			Kernels: []core.KernelResult{{Op: op, GBps: gbps(cfg)}},
		}
		return dse.Point{Label: label, Config: cfg, Result: res}
	}
}

func syntheticFP(cfg core.Config) string { return cfg.Fingerprint("synthetic") }

// TestDedupNeverReevaluates: stochastic strategies revisit points, but
// the evaluator runs at most once per configuration and revisits do
// not bill the budget.
func TestDedupNeverReevaluates(t *testing.T) {
	base, op := testBase(), kernel.Copy
	space := dse.Space{VecWidths: []int{1, 2, 4}, Unrolls: []int{1, 2}}
	for _, strat := range []string{"random", "hillclimb", "anneal"} {
		calls := map[string]int{}
		eval := syntheticEval(op, func(cfg core.Config) float64 { return float64(cfg.VecWidth) }, calls)
		res, err := search.RunWith(eval, syntheticFP, base, space, op,
			search.Options{Strategy: strat, Budget: space.Size(), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for label, n := range calls {
			total++
			if n != 1 {
				t.Errorf("%s evaluated %s %d times, want 1", strat, label, n)
			}
		}
		if total != res.Evaluations {
			t.Errorf("%s: %d evaluator calls vs %d reported evaluations", strat, total, res.Evaluations)
		}
	}
}

// TestBudgetRespected: unique evaluations never exceed the budget, and
// a zero budget defaults to the full space.
func TestBudgetRespected(t *testing.T) {
	base, op := testBase(), kernel.Copy
	space := dse.Space{VecWidths: []int{1, 2, 4, 8, 16}, Unrolls: []int{1, 2, 4}}
	for _, strat := range search.Strategies() {
		for _, budget := range []int{1, 4, 0, space.Size() + 100} {
			calls := map[string]int{}
			eval := syntheticEval(op, func(cfg core.Config) float64 { return float64(cfg.VecWidth * cfg.Attrs.Unroll) }, calls)
			res, err := search.RunWith(eval, syntheticFP, base, space, op,
				search.Options{Strategy: strat, Budget: budget, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			want := budget
			if budget == 0 || budget > space.Size() {
				want = space.Size()
			}
			if res.Budget != want {
				t.Errorf("%s budget %d: effective %d, want %d", strat, budget, res.Budget, want)
			}
			if res.Evaluations > want {
				t.Errorf("%s budget %d: %d evaluations", strat, want, res.Evaluations)
			}
		}
	}
}

// TestStrategiesFindOptimum: on a smooth objective with a full-space
// budget every strategy lands on the global optimum.
func TestStrategiesFindOptimum(t *testing.T) {
	base, op := testBase(), kernel.Copy
	space := dse.Space{VecWidths: []int{1, 2, 4, 8}, Unrolls: []int{1, 2, 4}}
	for _, strat := range search.Strategies() {
		eval := syntheticEval(op, func(cfg core.Config) float64 {
			return float64(cfg.VecWidth) + 0.5*float64(cfg.Attrs.Unroll)
		}, map[string]int{})
		res, err := search.RunWith(eval, syntheticFP, base, space, op,
			search.Options{Strategy: strat, Budget: space.Size(), Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == nil || res.Best.Config.VecWidth != 8 || res.Best.Config.Attrs.Unroll != 4 {
			t.Errorf("%s best = %+v, want v8 u4", strat, res.Best)
		}
		if res.BestGBps != 10 {
			t.Errorf("%s best gbps = %v, want 10", strat, res.BestGBps)
		}
	}
}

// TestErrors: unknown strategies and negative budgets are rejected
// before anything is evaluated.
func TestErrors(t *testing.T) {
	base, space, op := testBase(), testSpace(), kernel.Copy
	eval := syntheticEval(op, func(core.Config) float64 { return 1 }, map[string]int{})
	if _, err := search.RunWith(eval, syntheticFP, base, space, op, search.Options{Strategy: "gradient-descent"}); err == nil {
		t.Error("unknown strategy must error")
	}
	if _, err := search.RunWith(eval, syntheticFP, base, space, op, search.Options{Budget: -1}); err == nil {
		t.Error("negative budget must error")
	}
}

// TestEmptySpace: a space with no axes evaluates exactly the base
// point under every strategy, with no hangs.
func TestEmptySpace(t *testing.T) {
	base, op := testBase(), kernel.Copy
	// RandomIndex over zero dims returns the empty vector — the single
	// point; every strategy must still terminate.
	for _, strat := range search.Strategies() {
		res, err := search.Run(mustTarget(t, "cpu"), base, dse.Space{}, op, search.Options{Strategy: strat, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Evaluations != 1 || res.Best == nil {
			t.Errorf("%s on empty space: %d evaluations, best %v", strat, res.Evaluations, res.Best)
		}
	}
}

// TestAllInfeasible: a search where the device rejects everything
// reports no best point and an empty Pareto front, not a crash.
func TestAllInfeasible(t *testing.T) {
	base, op := testBase(), kernel.Copy
	space := dse.Space{VecWidths: []int{1, 2}}
	eval := func(cfg core.Config, label, _ string) dse.Point {
		return dse.Point{Label: label, Config: cfg, Err: fmt.Errorf("does not fit")}
	}
	for _, strat := range search.Strategies() {
		res, err := search.RunWith(eval, syntheticFP, base, space, op,
			search.Options{Strategy: strat, Budget: 2, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best != nil || res.BestGBps != 0 {
			t.Errorf("%s: best = %+v over all-infeasible space", strat, res.Best)
		}
		if len(res.Pareto) != 0 {
			t.Errorf("%s: pareto = %+v, want empty", strat, res.Pareto)
		}
		if res.Exploration.Infeasible != res.Evaluations {
			t.Errorf("%s: %d infeasible of %d", strat, res.Exploration.Infeasible, res.Evaluations)
		}
	}
}

// TestParetoFront checks dominance filtering on a hand-built set:
// dominated designs drop, trade-offs stay, and the front is sorted by
// bandwidth.
func TestParetoFront(t *testing.T) {
	op := kernel.Copy
	mk := func(label string, gbps float64, logic int) dse.Point {
		return dse.Point{
			Label: label,
			Result: &core.Result{
				Kernels:      []core.KernelResult{{Op: op, GBps: gbps}},
				Resources:    fabric.Resources{Logic: logic},
				HasResources: true,
			},
		}
	}
	pts := []dse.Point{
		mk("fast-big", 30, 100_000),
		mk("slow-small", 10, 10_000),
		mk("dominated", 9, 50_000),  // slower and bigger than slow-small
		mk("mid", 20, 40_000),       // a genuine trade-off
		mk("worse-mid", 19, 40_000), // same size as mid, slower
		{Label: "broken", Err: fmt.Errorf("no fit")},
	}
	front := search.ParetoFront(pts, op)
	var labels []string
	for _, p := range front {
		labels = append(labels, p.Label)
	}
	want := []string{"fast-big", "mid", "slow-small"}
	if fmt.Sprint(labels) != fmt.Sprint(want) {
		t.Errorf("front = %v, want %v", labels, want)
	}
}

// TestParetoNoResources: for targets without resource reports the
// front collapses to the single bandwidth optimum.
func TestParetoNoResources(t *testing.T) {
	op := kernel.Copy
	mk := func(label string, gbps float64) dse.Point {
		return dse.Point{Label: label, Result: &core.Result{Kernels: []core.KernelResult{{Op: op, GBps: gbps}}}}
	}
	front := search.ParetoFront([]dse.Point{mk("a", 5), mk("b", 9), mk("c", 7)}, op)
	if len(front) != 1 || front[0].Label != "b" {
		t.Errorf("front = %+v, want just b", front)
	}
}

// TestFPGASearchProducesTradeoffs: an end-to-end AOCL search yields a
// Pareto front where bandwidth strictly decreases as resources shrink.
func TestFPGASearchProducesTradeoffs(t *testing.T) {
	base, op := testBase(), kernel.Triad
	space := dse.Space{
		VecWidths: []int{1, 2, 4, 8, 16},
		Unrolls:   []int{1, 2, 4},
	}
	res, err := search.Run(mustTarget(t, "aocl"), base, space, op, search.Options{Strategy: "exhaustive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pareto) < 2 {
		t.Fatalf("expected a multi-point front on aocl, got %+v", res.Pareto)
	}
	for i := 1; i < len(res.Pareto); i++ {
		prev, cur := res.Pareto[i-1], res.Pareto[i]
		if cur.GBps > prev.GBps {
			t.Errorf("front not sorted: %v then %v", prev.GBps, cur.GBps)
		}
		if !cur.HasResources {
			t.Errorf("aocl front point %s missing resources", cur.Label)
		}
	}
	if res.Best == nil || res.Pareto[0].GBps != res.BestGBps {
		t.Errorf("front[0] = %+v must agree with best %v", res.Pareto[0], res.BestGBps)
	}
}

// TestObjectiveGBpsParity is the knee-objective acceptance criterion's
// other half: spelling the default objective explicitly ("gbps") must
// reproduce the default search byte for byte — same ranking, same best,
// same trace, same fingerprint-relevant canonical form.
func TestObjectiveGBpsParity(t *testing.T) {
	base, space, op := testBase(), testSpace(), kernel.Triad
	def, err := search.Run(mustTarget(t, "aocl"), base, space, op,
		search.Options{Strategy: "hillclimb", Budget: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := search.Run(mustTarget(t, "aocl"), base, space, op,
		search.Options{Strategy: "hillclimb", Budget: 8, Seed: 3, Objective: search.ObjectiveGBps})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(def)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("explicit gbps objective diverges from the default:\n%s\nvs\n%s", a, b)
	}
	if def.Objective != "" {
		t.Errorf("default objective canonical form = %q, want empty", def.Objective)
	}
}

func TestParseObjective(t *testing.T) {
	for _, s := range []string{"", "gbps"} {
		got, err := search.ParseObjective(s)
		if err != nil || got != "" {
			t.Errorf("ParseObjective(%q) = %q, %v", s, got, err)
		}
	}
	if got, err := search.ParseObjective("knee"); err != nil || got != search.ObjectiveKnee {
		t.Errorf("ParseObjective(knee) = %q, %v", got, err)
	}
	if _, err := search.ParseObjective("latency"); err == nil {
		t.Error("unknown objective must error")
	}
}

// TestKneeObjective checks the alternative ranking metric end to end on
// a small exhaustive search: every feasible point carries its
// latency-bounded bandwidth (raw bandwidth clipped to its surface
// knee), the ranking is ordered by it, and the run is deterministic.
func TestKneeObjective(t *testing.T) {
	base, op := testBase(), kernel.Triad
	space := dse.Space{VecWidths: []int{1, 4, 16}}
	run := func() *search.Result {
		res, err := search.Run(mustTarget(t, "gpu"), base, space, op,
			search.Options{Strategy: "exhaustive", Objective: "knee"})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Objective != search.ObjectiveKnee {
		t.Errorf("objective = %q", res.Objective)
	}
	if res.Best == nil {
		t.Fatal("no feasible point")
	}
	if res.Best.KneeGBps <= 0 {
		t.Errorf("best point has no knee bandwidth: %+v", res.Best)
	}
	ranked := res.Exploration.Ranked
	if len(ranked) != space.Size() {
		t.Fatalf("ranked %d of %d points", len(ranked), space.Size())
	}
	for i := range ranked {
		if ranked[i].KneeGBps <= 0 {
			t.Errorf("ranked point %d (%s) missing knee bandwidth", i, ranked[i].Label)
		}
		// The score is the point's own bandwidth clipped to its knee
		// ceiling, so it can never exceed the raw bandwidth.
		if ranked[i].KneeGBps > ranked[i].GBps(op)+1e-9 {
			t.Errorf("point %s knee score %.3f above its raw bandwidth %.3f",
				ranked[i].Label, ranked[i].KneeGBps, ranked[i].GBps(op))
		}
		if i > 0 && ranked[i].KneeGBps > ranked[i-1].KneeGBps {
			t.Errorf("ranking not ordered by knee: %.2f above %.2f",
				ranked[i].KneeGBps, ranked[i-1].KneeGBps)
		}
	}
	if ranked[0].KneeGBps != res.Best.KneeGBps {
		t.Errorf("best (%.2f) is not the top-ranked knee (%.2f)",
			res.Best.KneeGBps, ranked[0].KneeGBps)
	}
	// Seeded determinism holds for the knee objective too.
	again := run()
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Error("knee-objective search is not deterministic")
	}
}

// TestKneeAgreesWithGBpsBelowTheCeiling: when every point's raw
// bandwidth sits below its knee ceiling (small launch-bound arrays on
// the gpu, far under the DRAM knee), the clipped score equals the raw
// bandwidth, so the knee ranking must reproduce the gbps ranking
// point for point — the parity half of the acceptance criterion.
func TestKneeAgreesWithGBpsBelowTheCeiling(t *testing.T) {
	base, op := testBase(), kernel.Copy
	space := dse.Space{VecWidths: []int{1, 2, 4}, Types: []kernel.DataType{kernel.Int32, kernel.Float64}}
	gbps, err := search.Run(mustTarget(t, "gpu"), base, space, op,
		search.Options{Strategy: "exhaustive"})
	if err != nil {
		t.Fatal(err)
	}
	knee, err := search.Run(mustTarget(t, "gpu"), base, space, op,
		search.Options{Strategy: "exhaustive", Objective: "knee"})
	if err != nil {
		t.Fatal(err)
	}
	if gbps.Best == nil || knee.Best == nil {
		t.Fatal("missing best points")
	}
	for i, p := range knee.Exploration.Ranked {
		if p.KneeGBps != p.GBps(op) {
			t.Fatalf("point %s clipped (%.3f < %.3f) — pick a smaller base for this test",
				p.Label, p.KneeGBps, p.GBps(op))
		}
		if want := gbps.Exploration.Ranked[i].Label; p.Label != want {
			t.Errorf("rank %d: knee ranking has %q, gbps ranking has %q", i, p.Label, want)
		}
	}
	if gbps.Best.Label != knee.Best.Label {
		t.Errorf("knee winner %q differs from bandwidth winner %q below the ceiling",
			knee.Best.Label, gbps.Best.Label)
	}
}

func TestBadObjectiveRejected(t *testing.T) {
	_, err := search.Run(mustTarget(t, "cpu"), testBase(), testSpace(), kernel.Copy,
		search.Options{Objective: "latency"})
	if err == nil {
		t.Error("unknown objective must be rejected")
	}
}
