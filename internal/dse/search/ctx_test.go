package search_test

import (
	"context"
	"testing"

	"mpstream/internal/core"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
	"mpstream/internal/runstate"
)

func ctxBase() core.Config {
	cfg := core.DefaultConfig()
	cfg.ArrayBytes = 1 << 16
	cfg.NTimes = 1
	return cfg
}

// TestRunContextCancelMidSearch: canceling between evaluations stops
// the search at the next step and the partial result keeps the best
// point, ranking and trace of everything evaluated so far.
func TestRunContextCancelMidSearch(t *testing.T) {
	dev, err := targets.ByID("cpu")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evals := 0
	eval := func(cfg core.Config, label, _ string) dse.Point {
		evals++
		if evals == 3 {
			cancel()
		}
		res, err := core.Run(dev, cfg)
		return dse.Point{Label: label, Config: cfg, Result: res, Err: err}
	}
	fp := func(cfg core.Config) string { return cfg.Fingerprint("cpu") }
	space := dse.Space{VecWidths: []int{1, 2, 4, 8, 16}}
	var observed []string
	res, err := search.RunWithHooks(eval, fp, ctxBase(), space, kernel.Copy,
		search.Options{Strategy: "exhaustive"},
		search.Hooks{Context: ctx, Observe: func(p dse.Point) { observed = append(observed, p.Label) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != runstate.Canceled {
		t.Fatalf("stopped = %q, want %q", res.Stopped, runstate.Canceled)
	}
	if res.Evaluations != 3 {
		t.Errorf("evaluations = %d, want 3 (cancel lands before step 4)", res.Evaluations)
	}
	if res.Best == nil || res.BestGBps <= 0 {
		t.Errorf("partial search lost its best: %+v", res.Best)
	}
	if len(res.Trace) != res.Evaluations || len(res.Exploration.Ranked) != res.Evaluations {
		t.Errorf("trace %d / ranked %d, want both %d", len(res.Trace), len(res.Exploration.Ranked), res.Evaluations)
	}
	if len(observed) != res.Evaluations {
		t.Errorf("observer saw %d evaluations, want %d", len(observed), res.Evaluations)
	}
	for i, te := range res.Trace {
		if te.Label != observed[i] {
			t.Errorf("observe order diverged at %d: %q vs %q", i, te.Label, observed[i])
		}
	}
}

// TestRunContextDeadline: an already-expired deadline stops the search
// before its first evaluation and tags the result "deadline".
func TestRunContextDeadline(t *testing.T) {
	dev, err := targets.ByID("cpu")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	res, err := search.RunContext(ctx, dev, ctxBase(), dse.Space{VecWidths: []int{1, 2, 4}},
		kernel.Copy, search.Options{Strategy: "exhaustive"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != runstate.Deadline {
		t.Fatalf("stopped = %q, want %q", res.Stopped, runstate.Deadline)
	}
	if res.Evaluations != 0 || res.Best != nil {
		t.Errorf("expired search still evaluated: %+v", res)
	}
}

// TestRunContextStopErrorNotRecorded: an evaluation the context
// interrupted mid-flight (its error wraps context.Canceled) is not
// recorded as an infeasible point and does not bill the budget.
func TestRunContextStopErrorNotRecorded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evals := 0
	eval := func(cfg core.Config, label, _ string) dse.Point {
		evals++
		if evals == 2 {
			// Simulate core.RunContext observing the cancel mid-run.
			cancel()
			return dse.Point{Label: label, Config: cfg, Err: ctx.Err()}
		}
		return dse.Point{Label: label, Config: cfg, Result: &core.Result{Config: cfg}}
	}
	fp := func(cfg core.Config) string { return cfg.Fingerprint("cpu") }
	res, err := search.RunWithHooks(eval, fp, ctxBase(), dse.Space{VecWidths: []int{1, 2, 4, 8}},
		kernel.Copy, search.Options{Strategy: "exhaustive"}, search.Hooks{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != runstate.Canceled {
		t.Fatalf("stopped = %q", res.Stopped)
	}
	if res.Evaluations != 1 {
		t.Errorf("evaluations = %d, want 1 (the interrupted one is discarded)", res.Evaluations)
	}
	if res.Exploration.Infeasible != 0 {
		t.Errorf("interrupted evaluation recorded as infeasible: %+v", res.Exploration)
	}
}

// TestRunContextCompleteUntagged: a search that finishes before its
// context ends carries no stop tag and matches the context-free run.
func TestRunContextCompleteUntagged(t *testing.T) {
	dev, err := targets.ByID("cpu")
	if err != nil {
		t.Fatal(err)
	}
	space := dse.Space{VecWidths: []int{1, 2, 4}}
	got, err := search.RunContext(context.Background(), dev, ctxBase(), space, kernel.Copy, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stopped != "" {
		t.Errorf("completed search tagged %q", got.Stopped)
	}
	dev2, _ := targets.ByID("cpu")
	want, err := search.Run(dev2, ctxBase(), space, kernel.Copy, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.BestGBps != want.BestGBps || got.Evaluations != want.Evaluations {
		t.Errorf("RunContext diverged from Run: %+v vs %+v", got, want)
	}
}
