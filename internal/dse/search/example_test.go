package search_test

import (
	"fmt"

	"mpstream/internal/core"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
)

// ExampleRun optimizes triad bandwidth on the simulated AOCL FPGA with
// budgeted hill climbing instead of enumerating the full grid. The
// simulator is deterministic and the strategy is seeded, so the output
// is stable.
func ExampleRun() {
	dev, err := targets.ByID("aocl")
	if err != nil {
		panic(err)
	}
	base := core.DefaultConfig()
	base.ArrayBytes = 1 << 16
	base.NTimes = 2

	space := dse.Space{
		VecWidths: []int{1, 2, 4, 8, 16},
		Unrolls:   []int{1, 2, 4},
		Types:     []kernel.DataType{kernel.Int32, kernel.Float64},
	}

	res, err := search.Run(dev, base, space, kernel.Triad, search.Options{
		Strategy: "hillclimb",
		Budget:   12, // the full grid has 30 points; spend 12 simulations
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("strategy %s: %d/%d points simulated\n", res.Strategy, res.Evaluations, res.SpaceSize)
	fmt.Printf("best: %s\n", res.Best.Label)
	fmt.Printf("pareto front holds %d trade-offs\n", len(res.Pareto))
	// Output:
	// strategy hillclimb: 12/30 points simulated
	// best: double-v4-auto
	// pareto front holds 3 trade-offs
}
