package search

import (
	"sort"

	"mpstream/internal/core"
	"mpstream/internal/dse"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
)

// ParetoPoint is one non-dominated point of the bandwidth-versus-
// resources trade-off.
type ParetoPoint struct {
	Label  string      `json:"label"`
	Config core.Config `json:"config"`
	// GBps is the bandwidth objective (maximized).
	GBps float64 `json:"gbps"`
	// Resources is the FPGA footprint objective vector (minimized
	// component-wise). All-zero for targets that report no resources
	// (CPU, GPU), which collapses the front to the bandwidth optimum.
	Resources    fabric.Resources `json:"resources"`
	HasResources bool             `json:"has_resources"`
}

// dominates reports whether a is at least as good as b on every
// objective and strictly better on at least one: higher bandwidth,
// component-wise lower resource usage.
func dominates(a, b ParetoPoint) bool {
	if a.GBps < b.GBps ||
		a.Resources.Logic > b.Resources.Logic ||
		a.Resources.Registers > b.Resources.Registers ||
		a.Resources.BRAM > b.Resources.BRAM ||
		a.Resources.DSP > b.Resources.DSP {
		return false
	}
	return a.GBps > b.GBps ||
		a.Resources.Logic < b.Resources.Logic ||
		a.Resources.Registers < b.Resources.Registers ||
		a.Resources.BRAM < b.Resources.BRAM ||
		a.Resources.DSP < b.Resources.DSP
}

// ParetoFront filters the feasible points down to the non-dominated
// bandwidth/resource trade-offs, the multi-objective view the paper's
// FPGA exploration motivates: the fastest design is rarely the only
// interesting one when it burns most of the part. The front is sorted
// best bandwidth first (stable on input order for ties), so element 0
// always agrees with the bandwidth-only winner.
func ParetoFront(pts []dse.Point, op kernel.Op) []ParetoPoint {
	// Non-nil so an all-infeasible search marshals as [], not null.
	cands := []ParetoPoint{}
	for _, p := range pts {
		if p.Err != nil || p.Result == nil {
			continue
		}
		pp := ParetoPoint{Label: p.Label, Config: p.Config, GBps: p.GBps(op)}
		if p.Result.HasResources {
			pp.Resources, pp.HasResources = p.Result.Resources, true
		}
		cands = append(cands, pp)
	}
	front := []ParetoPoint{}
	for i, c := range cands {
		dominated := false
		for j, o := range cands {
			if i != j && dominates(o, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.SliceStable(front, func(i, j int) bool { return front[i].GBps > front[j].GBps })
	return front
}
