// Package search is the adaptive design-space optimizer of the
// MP-STREAM reproduction: budgeted, strategy-pluggable search over the
// discrete tuning-knob grid a dse.Space describes, looking for the
// configuration that maximizes sustained bandwidth for one kernel on
// one device.
//
// Where dse.Explore enumerates every grid point, this package treats
// the grid as a lattice (dse.Space's Dims/At/Neighbors API) and lets a
// Strategy decide which points to simulate: exhaustive (grid order,
// identical results to Explore), random sampling, hill climbing with
// random restarts, and simulated annealing. All strategies share one
// Engine that
//
//   - enforces an evaluation budget (unique simulations, the expensive
//     operation — on real FPGAs each one is an hours-long compile);
//   - deduplicates by core.Config.Fingerprint, so a neighbor revisited
//     by a random walk is never simulated twice and never bills the
//     budget;
//   - records an evaluation trace (what was tried, in order, and when
//     the incumbent best improved);
//   - ranks everything it saw into a dse.Exploration and a
//     bandwidth-versus-FPGA-resources Pareto front.
//
// Stochastic strategies draw exclusively from a rand.Rand seeded by
// Options.Seed, so a (strategy, budget, seed) triple reproduces its
// run bit-for-bit — which is what lets the service layer cache
// optimizer results by request fingerprint.
package search

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/dse"
	"mpstream/internal/kernel"
	"mpstream/internal/runstate"
)

// Evaluator evaluates one configuration into a Point. The engine calls
// it at most once per canonical configuration; implementations carry
// the device (or, in the service layer, a shared result cache in front
// of one). fingerprint is the dedup key the engine already computed
// for cfg, so cache-backed evaluators need not hash it again.
type Evaluator func(cfg core.Config, label, fingerprint string) dse.Point

// Options selects and parameterizes a search.
type Options struct {
	// Strategy names a registered strategy; empty means "exhaustive".
	Strategy string `json:"strategy,omitempty"`
	// Budget caps unique simulations. 0 means the full space size;
	// values above the space size are clamped to it (there is nothing
	// more to evaluate). Negative budgets are rejected.
	Budget int `json:"budget,omitempty"`
	// Seed seeds the stochastic strategies' RNG. Equal seeds reproduce
	// equal runs; the exhaustive strategy ignores it.
	Seed int64 `json:"seed,omitempty"`
	// Objective selects the ranking metric: "" or "gbps" ranks by raw
	// sustained bandwidth, "knee" by the bandwidth–latency-surface knee
	// (the bandwidth delivered at acceptable loaded latency). Under the
	// knee objective the evaluator must populate dse.Point.KneeGBps —
	// Run wraps its evaluator with WithKneeObjective automatically;
	// RunWith callers do it themselves.
	Objective string `json:"objective,omitempty"`
}

// Objective names.
const (
	ObjectiveGBps = "gbps"
	ObjectiveKnee = "knee"
)

// Objectives lists the selectable objective names.
func Objectives() []string { return []string{ObjectiveGBps, ObjectiveKnee} }

// ParseObjective canonicalizes an objective name. The default
// bandwidth objective canonicalizes to the empty string so that legacy
// requests (which never spelled an objective) and explicit "gbps"
// requests fingerprint — and therefore cache — identically.
func ParseObjective(s string) (string, error) {
	switch s {
	case "", ObjectiveGBps:
		return "", nil
	case ObjectiveKnee:
		return ObjectiveKnee, nil
	default:
		return "", fmt.Errorf("search: unknown objective %q (want %v)", s, Objectives())
	}
}

// TraceEntry is one unique evaluation, in the order the strategy
// performed them. Revisits of already-evaluated points are not traced
// (they cost nothing); Result.Revisits counts them in aggregate.
type TraceEntry struct {
	// Step is the evaluation ordinal, starting at 0.
	Step int `json:"step"`
	// Label is the compact configuration label (dse.ConfigLabel).
	Label string `json:"label"`
	// GBps is the achieved bandwidth; 0 for infeasible points.
	GBps float64 `json:"gbps"`
	// Feasible is false when the device rejected the configuration.
	Feasible bool `json:"feasible"`
	// Best marks the evaluations that improved the incumbent best.
	Best bool `json:"best"`
}

// Result is the outcome of one search run.
type Result struct {
	Strategy string `json:"strategy"`
	// Stopped is the canonical partial-result tag (runstate.Canceled or
	// runstate.Deadline) when the search's context ended before the
	// strategy finished; empty for a complete search. A stopped result
	// still carries everything evaluated before the stop — trace,
	// ranking, Pareto front and the incumbent best.
	Stopped string `json:"stopped,omitempty"`
	// Objective is the canonical ranking metric ("" = raw bandwidth,
	// "knee" = surface-knee bandwidth).
	Objective string `json:"objective,omitempty"`
	// Budget is the effective evaluation budget (after defaulting and
	// clamping to the space size).
	Budget int   `json:"budget"`
	Seed   int64 `json:"seed"`
	// SpaceSize is the full grid size the search drew from.
	SpaceSize int `json:"space_size"`
	// Evaluations is the number of unique configurations simulated.
	Evaluations int `json:"evaluations"`
	// Revisits counts deduplicated re-evaluations (free).
	Revisits int `json:"revisits"`
	// Best is the highest-bandwidth feasible point, nil when every
	// evaluated point was infeasible.
	Best     *dse.Point `json:"best,omitempty"`
	BestGBps float64    `json:"best_gbps"`
	// Exploration ranks every unique evaluated point, best first, with
	// the infeasible count — for the exhaustive strategy at full budget
	// this is identical to dse.Explore over the same space.
	Exploration dse.Exploration `json:"exploration"`
	// Pareto is the bandwidth-versus-resources Pareto front over the
	// evaluated points (see ParetoFront).
	Pareto []ParetoPoint `json:"pareto"`
	// Trace is the unique-evaluation history, in execution order.
	Trace []TraceEntry `json:"trace"`
}

// Engine is the budgeted, deduplicating evaluation core every strategy
// drives. Strategies ask it to evaluate lattice points; it memoizes by
// configuration fingerprint, tracks the incumbent best and writes the
// trace. An Engine is single-goroutine; the parallelism story lives a
// layer up (concurrent jobs in the service, not concurrent evaluations
// within one search).
type Engine struct {
	space   dse.Space
	base    core.Config
	op      kernel.Op
	eval    Evaluator
	fp      func(core.Config) string
	score   func(dse.Point) float64
	rng     *rand.Rand
	ctx     context.Context // cancels the search between evaluations
	observe func(dse.Point) // non-nil: sees every unique evaluation

	dims   []int
	size   int
	budget int

	seen     map[string]int // fingerprint -> index into points
	points   []dse.Point    // unique evaluations, in execution order
	trace    []TraceEntry
	revisits int
	stopped  string // runstate tag once the context ends the search
	bestIdx  int
	bestGBps float64
}

// Space returns the grid under search.
func (e *Engine) Space() dse.Space { return e.space }

// Op returns the kernel operation being optimized.
func (e *Engine) Op() kernel.Op { return e.op }

// Dims returns the lattice shape (cached dse.Space.Dims).
func (e *Engine) Dims() []int { return e.dims }

// Size returns the full grid size.
func (e *Engine) Size() int { return e.size }

// Budget returns the unique-evaluation budget.
func (e *Engine) Budget() int { return e.budget }

// Unique returns the number of unique evaluations performed so far.
func (e *Engine) Unique() int { return len(e.points) }

// Exhausted reports whether the budget is spent.
func (e *Engine) Exhausted() bool { return len(e.points) >= e.budget }

// Stopped reports whether the search's context has ended it, latching
// the canonical stop tag (runstate.Canceled or runstate.Deadline) for
// the Result. The Engine is single-goroutine, so the lazy latch is
// safe.
func (e *Engine) Stopped() bool {
	if e.stopped == "" {
		e.stopped = runstate.FromContext(e.ctx)
	}
	return e.stopped != ""
}

// Done reports whether searching further is pointless: the budget is
// spent, every grid point has been evaluated, or the context ended.
func (e *Engine) Done() bool { return e.Exhausted() || len(e.points) >= e.size || e.Stopped() }

// Rand returns the seeded RNG stochastic strategies must draw from —
// and nothing else, or reproducibility breaks.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// RandomIndex draws a uniform lattice point.
func (e *Engine) RandomIndex() []int {
	idx := make([]int, len(e.dims))
	for k, n := range e.dims {
		idx[k] = e.rng.Intn(n)
	}
	return idx
}

// Score is the optimization objective: the selected metric (bandwidth
// by default, the surface knee under Options.Objective "knee") for
// feasible points, negative infinity for infeasible points so they
// lose every comparison but remain accept-anything starting states.
func (e *Engine) Score(p dse.Point) float64 {
	if p.Err != nil {
		return negInf
	}
	return e.score(p)
}

// BestScore returns the incumbent best bandwidth, 0 before any
// feasible evaluation.
func (e *Engine) BestScore() float64 { return e.bestGBps }

// Best returns the incumbent best point; ok is false while nothing
// feasible has been evaluated.
func (e *Engine) Best() (dse.Point, bool) {
	if e.bestIdx < 0 {
		return dse.Point{}, false
	}
	return e.points[e.bestIdx], true
}

// EvalIndex evaluates the configuration at lattice point idx. Already
// evaluated configurations return their memoized point without
// touching the budget. ok is false — and the strategy should stop —
// when the point is new but the budget is exhausted.
func (e *Engine) EvalIndex(idx []int) (p dse.Point, ok bool) {
	return e.evalConfig(e.space.At(e.base, idx))
}

// EvalFlat evaluates the i-th configuration in flat grid order.
func (e *Engine) EvalFlat(i int) (p dse.Point, ok bool) {
	return e.evalConfig(e.space.At(e.base, e.space.Unflatten(i)))
}

func (e *Engine) evalConfig(cfg core.Config) (dse.Point, bool) {
	key := e.fp(cfg)
	if i, seen := e.seen[key]; seen {
		e.revisits++
		return e.points[i], true
	}
	if e.Exhausted() {
		return dse.Point{}, false
	}
	// The context is checked only before simulating something new:
	// memoized revisits above stay free even after a cancel, and an
	// evaluation in flight finishes — one evaluation unit is the
	// cancellation granularity.
	if st := runstate.FromContext(e.ctx); st != "" {
		e.stopped = st
		return dse.Point{}, false
	}
	p := e.eval(cfg, dse.ConfigLabel(cfg), key)
	// An evaluation the context interrupted mid-flight is not an
	// infeasible design point: stop the search without recording it,
	// billing the budget, or polluting the trace.
	if st := runstate.FromErr(p.Err); st != "" {
		e.stopped = st
		return dse.Point{}, false
	}
	i := len(e.points)
	e.seen[key] = i
	e.points = append(e.points, p)
	improved := false
	if score := e.Score(p); p.Err == nil && (e.bestIdx < 0 || score > e.bestGBps) {
		e.bestIdx, e.bestGBps, improved = i, score, true
	}
	e.trace = append(e.trace, TraceEntry{
		Step:     i,
		Label:    p.Label,
		GBps:     p.GBps(e.op),
		Feasible: p.Err == nil,
		Best:     improved,
	})
	if e.observe != nil {
		e.observe(p)
	}
	return p, true
}

// Run searches space over base for the best op score on dev,
// evaluating through core.Run exactly like dse.Explore does. The
// search is sequential on one device instance (devices carry simulator
// state and are not goroutine-safe). Under the knee objective every
// feasible evaluation additionally measures its loaded-latency surface
// (WithKneeObjective).
func Run(dev device.Device, base core.Config, space dse.Space, op kernel.Op, opts Options) (*Result, error) {
	return RunContext(context.Background(), dev, base, space, op, opts)
}

// RunContext is Run under a context: the search stops between
// evaluations when ctx ends and returns the partial Result tagged via
// Result.Stopped — best-so-far, ranking and trace intact.
func RunContext(ctx context.Context, dev device.Device, base core.Config, space dse.Space, op kernel.Op, opts Options) (*Result, error) {
	target := dev.Info().ID
	eval := func(cfg core.Config, label, _ string) dse.Point {
		// Thread the context into the run itself so a cancel lands within
		// one kernel repetition, not one whole evaluation; the engine
		// discards the interrupted point instead of recording it.
		res, err := core.RunContext(ctx, dev, cfg)
		return dse.Point{Label: label, Config: cfg, Result: res, Err: err}
	}
	obj, err := ParseObjective(opts.Objective)
	if err != nil {
		return nil, err
	}
	if obj == ObjectiveKnee {
		eval = WithKneeObjective(dev, eval)
	}
	fp := func(cfg core.Config) string { return cfg.Fingerprint(target) }
	return RunWithHooks(eval, fp, base, space, op, opts, Hooks{Context: ctx})
}

// WithKneeObjective wraps an evaluator so every feasible point also
// measures its bandwidth–latency surface on dev and records the
// bandwidth it delivers at acceptable loaded latency
// (dse.Point.KneeGBps): the point's own achieved bandwidth, clipped to
// the surface knee of its traffic shape. The clipping is what makes
// the metric discriminate — a configuration whose raw throughput
// exceeds what the memory system sustains at acceptable latency is
// scored at the knee ceiling, while configurations below it rank by
// their own bandwidth. A surface failure makes the point infeasible.
func WithKneeObjective(dev device.Device, eval Evaluator) Evaluator {
	// The ceiling depends only on the probe shape (pattern, read/write
	// mix — see core.Config.SurfaceProbe), which today's grid axes never
	// vary, so memoizing by probe configuration collapses a whole search
	// to one surface measurement while staying correct if a pattern axis
	// ever appears.
	ceilings := make(map[string]float64)
	return func(cfg core.Config, label, fp string) dse.Point {
		p := eval(cfg, label, fp)
		if p.Err != nil {
			return p
		}
		probe := cfg.SurfaceProbe()
		key, err := json.Marshal(probe)
		if err != nil {
			return dse.Point{Label: label, Config: cfg, Err: err}
		}
		ceiling, ok := ceilings[string(key)]
		if !ok {
			ceiling, err = core.KneeGBps(dev, cfg)
			if err != nil {
				return dse.Point{Label: label, Config: cfg, Err: err}
			}
			ceilings[string(key)] = ceiling
		}
		p.KneeGBps = ceiling
		if g := p.GBps(cfg.Ops[0]); g < ceiling {
			p.KneeGBps = g
		}
		return p
	}
}

// Hooks carries the cross-cutting execution concerns of one search —
// everything that shapes how the search runs without changing what it
// computes. The zero value runs to completion unobserved.
type Hooks struct {
	// Context ends the search between evaluations; nil means Background.
	// A stopped search returns its partial Result with Stopped set.
	Context context.Context
	// Observe — when non-nil — is called after every unique evaluation,
	// in execution order, from the searching goroutine.
	Observe func(dse.Point)
}

// RunWith is Run with the evaluation and dedup key injected — the hook
// the service layer uses to put its LRU result cache in front of the
// simulator. fingerprint must map canonically-equal configurations to
// equal keys (core.Config.Fingerprint bound to a target id does).
//
// The base configuration's Ops are forced to the single target op,
// mirroring dse.Explore, so exhaustive results are comparable
// point-for-point.
func RunWith(eval Evaluator, fingerprint func(core.Config) string, base core.Config, space dse.Space, op kernel.Op, opts Options) (*Result, error) {
	return RunWithHooks(eval, fingerprint, base, space, op, opts, Hooks{})
}

// RunWithHooks is RunWith with a context and an evaluation observer
// attached (see Hooks).
func RunWithHooks(eval Evaluator, fingerprint func(core.Config) string, base core.Config, space dse.Space, op kernel.Op, opts Options, h Hooks) (*Result, error) {
	strat, err := Lookup(opts.Strategy)
	if err != nil {
		return nil, err
	}
	obj, err := ParseObjective(opts.Objective)
	if err != nil {
		return nil, err
	}
	if opts.Budget < 0 {
		return nil, fmt.Errorf("search: budget %d must be >= 0 (0 means the full space)", opts.Budget)
	}
	size := space.Size()
	budget := opts.Budget
	if budget == 0 || budget > size {
		budget = size
	}
	base.Ops = []kernel.Op{op}

	score := func(p dse.Point) float64 { return p.GBps(op) }
	if obj == ObjectiveKnee {
		score = func(p dse.Point) float64 { return p.KneeGBps }
	}
	e := &Engine{
		space:   space,
		base:    base,
		op:      op,
		eval:    eval,
		fp:      fingerprint,
		score:   score,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		ctx:     h.Context,
		observe: h.Observe,
		dims:    space.Dims(),
		size:    size,
		budget:  budget,
		seen:    make(map[string]int, budget),
		bestIdx: -1,
	}
	strat.Search(e)

	res := &Result{
		Strategy:    strat.Name(),
		Stopped:     e.stopped,
		Objective:   obj,
		Budget:      budget,
		Seed:        opts.Seed,
		SpaceSize:   size,
		Evaluations: len(e.points),
		Revisits:    e.revisits,
		Exploration: dse.RankBy(e.points, score),
		Pareto:      ParetoFront(e.points, op),
		Trace:       e.trace,
	}
	if best, ok := e.Best(); ok {
		res.Best, res.BestGBps = &best, best.GBps(op)
	}
	return res, nil
}
