package dse_test

import (
	"fmt"

	"mpstream/internal/core"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/kernel"
)

// Explore searches a parameter grid for the best configuration — the
// automated design-space exploration route the paper motivates.
func ExampleExplore() {
	dev, _ := targets.ByID("aocl")
	base := core.DefaultConfig()
	base.ArrayBytes = 1 << 20
	base.NTimes = 1

	space := dse.Space{
		VecWidths: []int{1, 16},
		Loops:     []kernel.LoopMode{kernel.NDRange, kernel.FlatLoop},
	}
	ex := dse.Explore(dev, base, space, kernel.Copy)
	best, _ := ex.Best()
	fmt.Println(best.Config.VecWidth, best.Config.Loop)
	// Output: 16 flat
}
