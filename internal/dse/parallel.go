package dse

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/kernel"
	"mpstream/internal/obs"
	"mpstream/internal/runstate"
)

// DeviceFactory produces a fresh device instance. Parallel evaluation
// needs one instance per worker: devices carry simulator state (caches,
// open DRAM rows) and are not safe for concurrent use. core.Run resets
// the device before every run, so per-worker reuse is deterministic and
// a worker's results are identical to a sequential evaluation.
type DeviceFactory func() (device.Device, error)

// EvalParallel evaluates configurations concurrently on independent
// device instances and returns the points in input order, so output is
// byte-identical to evaluating the slice sequentially. labels may be nil
// (each point then gets its ConfigLabel); otherwise it must be the same
// length as cfgs. workers <= 0 means GOMAXPROCS.
//
// A failing factory marks the points its worker claims with the error
// (retried per point); callers that must distinguish infrastructure
// failure from infeasible designs should wrap newDev and inspect its
// error, as the service layer does.
func EvalParallel(newDev DeviceFactory, cfgs []core.Config, labels []string, workers int) []Point {
	pts, _ := EvalParallelContext(context.Background(), newDev, cfgs, labels, workers, nil)
	return pts
}

// EvalParallelContext is EvalParallel with the cross-cutting execution
// concerns injected. ctx cancels the evaluation between points: no new
// point starts after ctx ends, points already in flight finish, and the
// returned stop tag (runstate.Canceled or runstate.Deadline, "" for a
// complete run) marks the result as partial. Unevaluated grid slots are
// left as zero Points — filter with Point.Evaluated. onPoint — when
// non-nil — sees every finished point as it lands; it is called
// concurrently from the worker goroutines and must be safe for that.
func EvalParallelContext(ctx context.Context, newDev DeviceFactory, cfgs []core.Config, labels []string, workers int, onPoint func(i int, p Point)) ([]Point, string) {
	if ctx == nil {
		ctx = context.Background()
	}
	pts := make([]Point, len(cfgs))
	if len(cfgs) == 0 {
		return pts, runstate.FromContext(ctx)
	}
	label := func(i int) string {
		if labels != nil {
			return labels[i]
		}
		return ConfigLabel(cfgs[i])
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	// evalOne converts a panicking evaluation into an errored point: a
	// hostile grid point must not kill the process hosting the sweep
	// (the service runs these on long-lived workers).
	evalOne := func(dev device.Device, i int) (p Point) {
		defer func() {
			if r := recover(); r != nil {
				p = Point{Label: label(i), Config: cfgs[i], Err: fmt.Errorf("dse: evaluation panicked: %v", r)}
			}
		}()
		return run(dev, cfgs[i], label(i))
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dev device.Device
			for i := range idx {
				// Claimed but not yet started: a canceled run leaves the
				// point as an unevaluated hole rather than half-truth.
				if ctx.Err() != nil {
					continue
				}
				if dev == nil {
					// Retry the factory per claimed point so a transient
					// failure marks as few points as possible; persistent
					// failures surface as per-point errors rather than
					// stalling the sweep.
					var err error
					if dev, err = newDev(); err != nil {
						dev = nil
						pts[i] = Point{Label: label(i), Config: cfgs[i], Err: err}
						if onPoint != nil {
							onPoint(i, pts[i])
						}
						continue
					}
				}
				_, sp := obs.StartSpan(ctx, "sweep.point", "label", label(i))
				pts[i] = evalOne(dev, i)
				if pts[i].Err != nil {
					sp.SetAttr("error", pts[i].Err.Error())
				}
				sp.End()
				if onPoint != nil {
					onPoint(i, pts[i])
				}
			}
		}()
	}
dispatch:
	for i := range cfgs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return pts, runstate.FromContext(ctx)
}

// ExploreParallel is Explore with the grid fanned out over GOMAXPROCS
// workers. It returns byte-identical results to Explore for the same
// base and space: points are produced in grid order before ranking, the
// simulator is deterministic, and Rank's stable sort breaks ties the
// same way.
func ExploreParallel(newDev DeviceFactory, base core.Config, space Space, op kernel.Op) Exploration {
	base.Ops = []kernel.Op{op}
	return Rank(EvalParallel(newDev, space.Configs(base), nil, 0), op)
}

// ExploreParallelContext is ExploreParallel under a context: a canceled
// or deadline-expired exploration ranks only the points evaluated
// before the stop and reports the canonical stop tag alongside
// (runstate.Canceled or runstate.Deadline, "" when complete).
func ExploreParallelContext(ctx context.Context, newDev DeviceFactory, base core.Config, space Space, op kernel.Op) (Exploration, string) {
	base.Ops = []kernel.Op{op}
	pts, stopped := EvalParallelContext(ctx, newDev, space.Configs(base), nil, 0, nil)
	if stopped != "" {
		pts = EvaluatedPoints(pts)
	}
	return Rank(pts, op), stopped
}

// SweepSizesParallel is SweepSizes fanned out over goroutines; points
// come back in sizes order.
func SweepSizesParallel(newDev DeviceFactory, base core.Config, sizes []int64) []Point {
	cfgs := make([]core.Config, len(sizes))
	labels := make([]string, len(sizes))
	for i, s := range sizes {
		cfg := base
		cfg.ArrayBytes = s
		cfgs[i] = cfg
		labels[i] = sizeLabel(s)
	}
	return EvalParallel(newDev, cfgs, labels, 0)
}

// SweepVecWidthsParallel is SweepVecWidths fanned out over goroutines;
// points come back in widths order.
func SweepVecWidthsParallel(newDev DeviceFactory, base core.Config, widths []int) []Point {
	cfgs := make([]core.Config, len(widths))
	labels := make([]string, len(widths))
	for i, v := range widths {
		cfg := base
		cfg.VecWidth = v
		cfgs[i] = cfg
		labels[i] = vecLabel(v)
	}
	return EvalParallel(newDev, cfgs, labels, 0)
}
