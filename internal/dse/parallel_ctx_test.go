package dse

import (
	"context"
	"sync/atomic"
	"testing"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/kernel"
	"mpstream/internal/runstate"
)

func ctxTestConfigs(n int) []core.Config {
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		cfg := core.DefaultConfig()
		cfg.Ops = []kernel.Op{kernel.Copy}
		// Distinct feasible configurations: vary the array size.
		cfg.ArrayBytes = int64(i+1) << 14
		cfg.NTimes = 1
		cfgs[i] = cfg
	}
	return cfgs
}

// TestEvalParallelContextComplete: with a live context the results are
// identical to EvalParallel and the stop tag is empty.
func TestEvalParallelContextComplete(t *testing.T) {
	cfgs := ctxTestConfigs(4)
	newDev := func() (device.Device, error) { return targets.ByID("cpu") }
	var observed atomic.Int64
	pts, stopped := EvalParallelContext(context.Background(), newDev, cfgs, nil, 2,
		func(int, Point) { observed.Add(1) })
	if stopped != "" {
		t.Fatalf("stop tag %q on a completed run", stopped)
	}
	if got := observed.Load(); got != 4 {
		t.Errorf("observer saw %d points, want 4", got)
	}
	for i, p := range pts {
		if !p.Evaluated() || p.Err != nil || p.Result == nil {
			t.Errorf("point %d = %+v", i, p)
		}
	}
}

// TestEvalParallelContextCancel: canceling mid-evaluation stops new
// points, leaves unclaimed slots as unevaluated holes, and tags the
// partial result canceled. The observer cancels after the second point,
// which is a legitimate caller move (the service's cancel can land at
// any moment).
func TestEvalParallelContextCancel(t *testing.T) {
	cfgs := ctxTestConfigs(16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	newDev := func() (device.Device, error) { return targets.ByID("cpu") }
	pts, stopped := EvalParallelContext(ctx, newDev, cfgs, nil, 1, func(int, Point) {
		if done.Add(1) == 2 {
			cancel()
		}
	})
	if stopped != runstate.Canceled {
		t.Fatalf("stop tag %q, want %q", stopped, runstate.Canceled)
	}
	evaluated := EvaluatedPoints(pts)
	// The single worker finishes the point in flight; nothing new starts
	// after the cancel.
	if len(evaluated) < 2 || len(evaluated) >= len(cfgs) {
		t.Fatalf("evaluated %d of %d points, want a strict prefix of >= 2", len(evaluated), len(cfgs))
	}
	for _, p := range evaluated {
		if p.Err != nil || p.Result == nil {
			t.Errorf("evaluated point %+v carries no result", p)
		}
	}
	holes := 0
	for _, p := range pts {
		if !p.Evaluated() {
			holes++
		}
	}
	if holes != len(cfgs)-len(evaluated) {
		t.Errorf("holes = %d, want %d", holes, len(cfgs)-len(evaluated))
	}
}

// TestEvalParallelPreCanceled: a context canceled before the call
// evaluates nothing.
func TestEvalParallelPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	newDev := func() (device.Device, error) { return targets.ByID("cpu") }
	pts, stopped := EvalParallelContext(ctx, newDev, ctxTestConfigs(4), nil, 2, nil)
	if stopped != runstate.Canceled {
		t.Fatalf("stop tag %q", stopped)
	}
	if got := len(EvaluatedPoints(pts)); got != 0 {
		t.Errorf("pre-canceled run evaluated %d points", got)
	}
}

// TestExploreParallelContextPartial ranks only what was evaluated.
func TestExploreParallelContextPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	newDev := func() (device.Device, error) { return targets.ByID("cpu") }
	base := core.DefaultConfig()
	base.ArrayBytes = 1 << 16
	base.NTimes = 1
	ex, stopped := ExploreParallelContext(ctx, newDev, base, Space{VecWidths: []int{1, 2, 4}}, kernel.Copy)
	if stopped != runstate.Canceled {
		t.Fatalf("stop tag %q", stopped)
	}
	if len(ex.Ranked) != 0 || ex.Infeasible != 0 {
		t.Errorf("pre-canceled exploration = %+v", ex)
	}
}
