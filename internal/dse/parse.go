package dse

import (
	"fmt"
	"strconv"
	"strings"

	"mpstream/internal/kernel"
)

// ParseSpace assembles a search grid from comma-separated per-axis
// flag values — the shared CLI vocabulary of mpopt and mpsweep. An
// empty string omits the axis.
func ParseSpace(vecs, loops, unrolls, simds, cus, dtypes string) (Space, error) {
	var s Space
	var err error
	if s.VecWidths, err = parseInts("vec", vecs); err != nil {
		return s, err
	}
	if s.Unrolls, err = parseInts("unrolls", unrolls); err != nil {
		return s, err
	}
	if s.SIMDs, err = parseInts("simds", simds); err != nil {
		return s, err
	}
	if s.CUs, err = parseInts("cus", cus); err != nil {
		return s, err
	}
	for _, f := range splitList(loops) {
		lm, err := kernel.ParseLoopMode(f)
		if err != nil {
			return s, err
		}
		s.Loops = append(s.Loops, lm)
	}
	for _, f := range splitList(dtypes) {
		dt, err := kernel.ParseDataType(f)
		if err != nil {
			return s, err
		}
		s.Types = append(s.Types, dt)
	}
	return s, nil
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(axis, s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad -%s value %q", axis, f)
		}
		out = append(out, n)
	}
	return out, nil
}
