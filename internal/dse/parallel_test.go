package dse

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/kernel"
)

func factory(id string) DeviceFactory {
	return func() (device.Device, error) { return targets.ByID(id) }
}

// TestExploreParallelMatchesExplore is the acceptance criterion: the
// parallel explorer returns byte-identical results to the sequential
// one for the same grid.
func TestExploreParallelMatchesExplore(t *testing.T) {
	space := Space{
		VecWidths: []int{1, 4, 16},
		Loops:     []kernel.LoopMode{kernel.NDRange, kernel.FlatLoop},
	}
	for _, id := range []string{"aocl", "cpu"} {
		seq := Explore(dev(t, id), base(), space, kernel.Copy)
		par := ExploreParallel(factory(id), base(), space, kernel.Copy)

		seqJSON, err := json.Marshal(seq)
		if err != nil {
			t.Fatal(err)
		}
		parJSON, err := json.Marshal(par)
		if err != nil {
			t.Fatal(err)
		}
		if string(seqJSON) != string(parJSON) {
			t.Errorf("%s: parallel exploration differs from sequential\n seq %.200s\n par %.200s",
				id, seqJSON, parJSON)
		}
		if seq.Infeasible != par.Infeasible {
			t.Errorf("%s: infeasible %d vs %d", id, seq.Infeasible, par.Infeasible)
		}
	}
}

func TestEvalParallelPreservesOrder(t *testing.T) {
	sizes := []int64{1 << 18, 1 << 20, 1 << 19, 1 << 16, 1 << 17}
	seq := SweepSizes(dev(t, "gpu"), base(), sizes)
	par := SweepSizesParallel(factory("gpu"), base(), sizes)
	if len(par) != len(sizes) {
		t.Fatalf("got %d points", len(par))
	}
	for i := range par {
		if par[i].Label != seq[i].Label {
			t.Errorf("point %d label %q, want %q", i, par[i].Label, seq[i].Label)
		}
		if par[i].Config.ArrayBytes != sizes[i] {
			t.Errorf("point %d size %d, want %d", i, par[i].Config.ArrayBytes, sizes[i])
		}
		if !reflect.DeepEqual(par[i].Result.Kernels, seq[i].Result.Kernels) {
			t.Errorf("point %d results differ", i)
		}
	}
}

func TestSweepVecWidthsParallelMatchesSequential(t *testing.T) {
	seq := SweepVecWidths(dev(t, "aocl"), base(), kernel.VecWidths())
	par := SweepVecWidthsParallel(factory("aocl"), base(), kernel.VecWidths())
	seqJSON, _ := json.Marshal(seq)
	parJSON, _ := json.Marshal(par)
	if string(seqJSON) != string(parJSON) {
		t.Error("parallel vec-width sweep differs from sequential")
	}
}

func TestEvalParallelFactoryError(t *testing.T) {
	boom := errors.New("no such device")
	bad := func() (device.Device, error) { return nil, boom }
	cfgs := Space{VecWidths: []int{1, 2, 4}}.Configs(base())
	pts := EvalParallel(bad, cfgs, nil, 2)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if !errors.Is(p.Err, boom) {
			t.Errorf("point %d error = %v", i, p.Err)
		}
	}
	ex := Rank(pts, kernel.Copy)
	if ex.Infeasible != 3 || len(ex.Ranked) != 0 {
		t.Errorf("rank = %d infeasible, %d ranked", ex.Infeasible, len(ex.Ranked))
	}
	// All-infeasible explorations marshal ranked as [], not null.
	b, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"ranked":[]`) {
		t.Errorf("empty ranking must encode as []: %s", b)
	}
}

func TestEvalParallelEmpty(t *testing.T) {
	pts := EvalParallel(factory("cpu"), nil, nil, 0)
	if len(pts) != 0 {
		t.Errorf("got %d points for empty grid", len(pts))
	}
}

func TestPointJSONRoundTrip(t *testing.T) {
	cfg := base()
	res, err := core.Run(dev(t, "cpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := Point{Label: "demo", Config: cfg.Canonical(), Result: res}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Point
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("point did not round-trip:\n orig %+v\n back %+v", orig, back)
	}

	failed := Point{Label: "bad", Config: cfg, Err: errors.New("does not fit")}
	b, err = json.Marshal(failed)
	if err != nil {
		t.Fatal(err)
	}
	var backFailed Point
	if err := json.Unmarshal(b, &backFailed); err != nil {
		t.Fatal(err)
	}
	if backFailed.Err == nil || backFailed.Err.Error() != "does not fit" {
		t.Errorf("error did not round-trip: %v", backFailed.Err)
	}
}
