package dse

import (
	"encoding/json"
	"errors"

	"mpstream/internal/core"
)

// pointJSON is the wire form of a Point: the error (an interface value)
// flattens to its message so points round-trip through the service API
// and the CLIs' -json output.
type pointJSON struct {
	Label    string       `json:"label"`
	Config   core.Config  `json:"config"`
	Result   *core.Result `json:"result,omitempty"`
	KneeGBps float64      `json:"knee_gbps,omitempty"`
	Err      string       `json:"error,omitempty"`
}

// MarshalJSON encodes the point with its error as a string message.
func (p Point) MarshalJSON() ([]byte, error) {
	pj := pointJSON{Label: p.Label, Config: p.Config, Result: p.Result, KneeGBps: p.KneeGBps}
	if p.Err != nil {
		pj.Err = p.Err.Error()
	}
	return json.Marshal(pj)
}

// UnmarshalJSON decodes a point; a non-empty error field becomes an
// opaque error value carrying the original message.
func (p *Point) UnmarshalJSON(b []byte) error {
	var pj pointJSON
	if err := json.Unmarshal(b, &pj); err != nil {
		return err
	}
	*p = Point{Label: pj.Label, Config: pj.Config, Result: pj.Result, KneeGBps: pj.KneeGBps}
	if pj.Err != "" {
		p.Err = errors.New(pj.Err)
	}
	return nil
}
