package dse

import (
	"reflect"
	"testing"

	"mpstream/internal/core"
	"mpstream/internal/kernel"
)

func testSpace() Space {
	return Space{
		VecWidths: []int{1, 2, 4},
		Unrolls:   []int{1, 2},
		Types:     []kernel.DataType{kernel.Int32, kernel.Float64},
	}
}

// TestSpaceAtMatchesConfigs pins the lattice API to the flat
// enumeration: At(Unflatten(i)) must be the i-th config of Configs for
// every grid point, and Flatten must invert Unflatten.
func TestSpaceAtMatchesConfigs(t *testing.T) {
	s := testSpace()
	base := core.DefaultConfig()
	cfgs := s.Configs(base)
	if len(cfgs) != s.Size() {
		t.Fatalf("Configs returned %d points, Size says %d", len(cfgs), s.Size())
	}
	if want := []int{3, 2, 2}; !reflect.DeepEqual(s.Dims(), want) {
		t.Fatalf("Dims = %v, want %v", s.Dims(), want)
	}
	for i, want := range cfgs {
		idx := s.Unflatten(i)
		if got := s.At(base, idx); !reflect.DeepEqual(got, want) {
			t.Errorf("At(Unflatten(%d)=%v) = %+v, want %+v", i, idx, got, want)
		}
		if back := s.Flatten(idx); back != i {
			t.Errorf("Flatten(Unflatten(%d)) = %d", i, back)
		}
	}
}

// TestSpaceEmpty: a space with no axes is a single point — the base.
func TestSpaceEmpty(t *testing.T) {
	var s Space
	base := core.DefaultConfig()
	if s.Size() != 1 || len(s.Dims()) != 0 {
		t.Fatalf("empty space: size %d dims %v", s.Size(), s.Dims())
	}
	if got := s.Configs(base); len(got) != 1 || !reflect.DeepEqual(got[0], base) {
		t.Fatalf("empty space configs = %+v", got)
	}
	if got := s.At(base, nil); !reflect.DeepEqual(got, base) {
		t.Fatalf("empty space At = %+v", got)
	}
	if nbs := s.Neighbors(nil); len(nbs) != 0 {
		t.Fatalf("empty space neighbors = %v", nbs)
	}
}

// TestSpaceNeighbors checks Hamming-1 adjacency with clamped ends and
// the deterministic axis-order, -1-before-+1 ordering.
func TestSpaceNeighbors(t *testing.T) {
	s := testSpace() // dims 3,2,2
	got := s.Neighbors([]int{1, 0, 1})
	want := [][]int{
		{0, 0, 1}, // vec -1
		{2, 0, 1}, // vec +1
		{1, 1, 1}, // unroll +1 (unroll -1 clamped)
		{1, 0, 0}, // type -1 (type +1 clamped)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Neighbors = %v, want %v", got, want)
	}

	// Corners lose the out-of-range moves.
	got = s.Neighbors([]int{0, 0, 0})
	want = [][]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("corner Neighbors = %v, want %v", got, want)
	}

	// Every neighbor is a valid grid point one Hamming step away.
	for _, idx := range [][]int{{0, 1, 0}, {2, 1, 1}} {
		for _, nb := range s.Neighbors(idx) {
			diff := 0
			for k := range nb {
				if nb[k] != idx[k] {
					diff++
				}
				if nb[k] < 0 || nb[k] >= s.Dims()[k] {
					t.Errorf("neighbor %v of %v out of range", nb, idx)
				}
			}
			if diff != 1 {
				t.Errorf("neighbor %v of %v differs in %d axes", nb, idx, diff)
			}
		}
	}
}

// TestSpacePartition pins the shard contract: ranges are contiguous,
// cover the flat order exactly once, balance within one point, and
// ConfigsRange over each range reproduces the matching Configs slice.
func TestSpacePartition(t *testing.T) {
	s := testSpace() // 12 points
	base := core.DefaultConfig()
	all := s.Configs(base)
	for _, parts := range []int{1, 2, 3, 5, 12, 40} {
		rs := s.Partition(parts)
		wantShards := parts
		if wantShards > s.Size() {
			wantShards = s.Size()
		}
		if len(rs) != wantShards {
			t.Fatalf("Partition(%d) made %d shards, want %d", parts, len(rs), wantShards)
		}
		lo := 0
		for i, r := range rs {
			if r.Lo != lo {
				t.Fatalf("Partition(%d) shard %d starts at %d, want %d", parts, i, r.Lo, lo)
			}
			if d := r.Size() - rs[len(rs)-1].Size(); d < 0 || d > 1 {
				t.Fatalf("Partition(%d) shard sizes unbalanced: %v", parts, rs)
			}
			if got := s.ConfigsRange(base, r.Lo, r.Hi); !reflect.DeepEqual(got, all[r.Lo:r.Hi]) {
				t.Fatalf("ConfigsRange(%d,%d) diverges from Configs slice", r.Lo, r.Hi)
			}
			lo = r.Hi
		}
		if lo != s.Size() {
			t.Fatalf("Partition(%d) covers %d of %d points", parts, lo, s.Size())
		}
	}
}

// TestSpacePartitionEmpty: an empty space still yields one range with
// its single base point, and degenerate part counts clamp to one shard.
func TestSpacePartitionEmpty(t *testing.T) {
	var s Space
	for _, parts := range []int{-1, 0, 1, 4} {
		rs := s.Partition(parts)
		if len(rs) != 1 || rs[0] != (Range{Lo: 0, Hi: 1}) {
			t.Fatalf("empty space Partition(%d) = %v", parts, rs)
		}
	}
	base := core.DefaultConfig()
	if got := s.ConfigsRange(base, 0, 1); len(got) != 1 || !reflect.DeepEqual(got[0], base) {
		t.Fatalf("empty space ConfigsRange = %+v", got)
	}
}

// TestConfigsRangePanics: out-of-bounds ranges are programmer errors.
func TestConfigsRangePanics(t *testing.T) {
	s := testSpace()
	base := core.DefaultConfig()
	for name, f := range map[string]func(){
		"negative": func() { s.ConfigsRange(base, -1, 2) },
		"inverted": func() { s.ConfigsRange(base, 3, 2) },
		"past-end": func() { s.ConfigsRange(base, 0, s.Size()+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ConfigsRange %s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestSpaceIndexPanics: malformed index vectors are programmer errors.
func TestSpaceIndexPanics(t *testing.T) {
	s := testSpace()
	for name, f := range map[string]func(){
		"At":        func() { s.At(core.DefaultConfig(), []int{0}) },
		"Flatten":   func() { s.Flatten([]int{0, 0}) },
		"Neighbors": func() { s.Neighbors([]int{0, 0, 0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with wrong-length index did not panic", name)
				}
			}()
			f()
		}()
	}
}
