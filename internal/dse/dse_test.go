package dse

import (
	"math"
	"testing"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
)

func base() core.Config {
	cfg := core.DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Copy}
	cfg.ArrayBytes = 1 << 20
	cfg.NTimes = 2
	return cfg
}

func dev(t *testing.T, id string) device.Device {
	t.Helper()
	d, err := targets.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSweepSizes(t *testing.T) {
	sizes := []int64{1 << 18, 1 << 20, 1 << 22}
	pts := SweepSizes(dev(t, "gpu"), base(), sizes)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.Err != nil {
			t.Fatalf("point %d: %v", i, p.Err)
		}
		if p.Config.ArrayBytes != sizes[i] {
			t.Errorf("point %d size = %d", i, p.Config.ArrayBytes)
		}
		if p.GBps(kernel.Copy) <= 0 {
			t.Errorf("point %d has no bandwidth", i)
		}
	}
	// Bandwidth grows with size in the overhead-dominated regime.
	if !(pts[0].GBps(kernel.Copy) < pts[2].GBps(kernel.Copy)) {
		t.Error("size sweep must rise in the latency-bound regime")
	}
}

func TestSweepVecWidths(t *testing.T) {
	pts := SweepVecWidths(dev(t, "aocl"), base(), kernel.VecWidths())
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Label != "v1" || pts[4].Label != "v16" {
		t.Errorf("labels wrong: %s, %s", pts[0].Label, pts[4].Label)
	}
	if !(pts[0].GBps(kernel.Copy) < pts[3].GBps(kernel.Copy)) {
		t.Error("AOCL vectorization must help")
	}
}

func TestSweepLoopModes(t *testing.T) {
	pts := SweepLoopModes(dev(t, "sdaccel"), base())
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	byLabel := map[string]float64{}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatal(p.Err)
		}
		byLabel[p.Label] = p.GBps(kernel.Copy)
	}
	if !(byLabel["nested"] > byLabel["ndrange"] && byLabel["ndrange"] > byLabel["flat"]) {
		t.Errorf("sdaccel loop ordering wrong: %v", byLabel)
	}
}

func TestSweepPatterns(t *testing.T) {
	pts := SweepPatterns(dev(t, "gpu"), base(), map[string]mem.Pattern{
		"contig":   mem.ContiguousPattern(),
		"colmajor": mem.ColMajorPattern(),
	})
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	// Sorted by name: colmajor first.
	if pts[0].Label != "colmajor" || pts[1].Label != "contig" {
		t.Errorf("pattern order: %s, %s", pts[0].Label, pts[1].Label)
	}
	if pts[0].GBps(kernel.Copy) >= pts[1].GBps(kernel.Copy) {
		t.Error("colmajor must be slower")
	}
}

func TestSweepSIMDAndCU(t *testing.T) {
	ns := []int{1, 2, 4}
	simd := SweepSIMD(dev(t, "aocl"), base(), ns)
	cu := SweepCU(dev(t, "aocl"), base(), ns)
	for i := range ns {
		if simd[i].Err != nil {
			t.Fatalf("simd%d: %v", ns[i], simd[i].Err)
		}
		if cu[i].Err != nil {
			t.Fatalf("cu%d: %v", ns[i], cu[i].Err)
		}
	}
	if !(simd[2].GBps(kernel.Copy) > simd[0].GBps(kernel.Copy)) {
		t.Error("SIMD must help at small N")
	}
	if !(cu[2].GBps(kernel.Copy) > cu[0].GBps(kernel.Copy)) {
		t.Error("CU must help at small N")
	}
}

func TestSweepUnrollForcesLoopKernel(t *testing.T) {
	pts := SweepUnroll(dev(t, "cpu"), base(), []int{1, 4})
	for _, p := range pts {
		if p.Err != nil {
			t.Fatalf("%s: %v", p.Label, p.Err)
		}
		if p.Config.OptimalLoop || p.Config.Loop == kernel.NDRange {
			t.Error("unroll sweep must force a loop kernel on NDRange-optimal devices")
		}
	}
}

func TestSweepTypes(t *testing.T) {
	pts := SweepTypes(dev(t, "aocl"), base())
	if len(pts) != 2 || pts[0].Label != "int" || pts[1].Label != "double" {
		t.Fatalf("type sweep wrong: %+v", pts)
	}
	if !(pts[1].GBps(kernel.Copy) > pts[0].GBps(kernel.Copy)) {
		t.Error("doubles must beat ints on AOCL (wider coalesced access)")
	}
}

func TestSpaceSizeAndConfigs(t *testing.T) {
	s := Space{
		VecWidths: []int{1, 4},
		Loops:     []kernel.LoopMode{kernel.FlatLoop, kernel.NestedLoop},
		Unrolls:   []int{1, 2, 4},
	}
	if s.Size() != 12 {
		t.Errorf("Size = %d, want 12", s.Size())
	}
	cfgs := s.Configs(base())
	if len(cfgs) != 12 {
		t.Fatalf("Configs = %d, want 12", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		seen[ConfigLabel(c)] = true
	}
	if len(seen) != 12 {
		t.Errorf("labels not unique: %d distinct", len(seen))
	}
}

func TestSpaceSizeSaturatesOnOverflow(t *testing.T) {
	huge := make([]int, 1<<21)
	s := Space{Unrolls: huge, SIMDs: huge, CUs: huge}
	// 2^63 grid points overflow int on every platform.
	if got := s.Size(); got != math.MaxInt {
		t.Errorf("Size must saturate at MaxInt, got %d", got)
	}
}

func TestEmptySpaceIsBase(t *testing.T) {
	cfgs := Space{}.Configs(base())
	if len(cfgs) != 1 {
		t.Fatalf("empty space must yield the base config, got %d", len(cfgs))
	}
}

func TestExploreFindsVectorizationOnAOCL(t *testing.T) {
	space := Space{
		VecWidths: []int{1, 4, 16},
		Loops:     []kernel.LoopMode{kernel.NDRange, kernel.FlatLoop},
	}
	ex := Explore(dev(t, "aocl"), base(), space, kernel.Copy)
	best, ok := ex.Best()
	if !ok {
		t.Fatal("no feasible point")
	}
	if best.Config.VecWidth != 16 || best.Config.Loop != kernel.FlatLoop {
		t.Errorf("best = %s, want the vec16 flat loop", best.Label)
	}
	if len(ex.Ranked) != 6 {
		t.Errorf("ranked %d points, want 6", len(ex.Ranked))
	}
	// Ranking is descending.
	for i := 1; i < len(ex.Ranked); i++ {
		if ex.Ranked[i].GBps(kernel.Copy) > ex.Ranked[i-1].GBps(kernel.Copy) {
			t.Error("ranking not descending")
		}
	}
}

func TestExploreCountsInfeasible(t *testing.T) {
	// Unrolled wide double triads overflow the Stratix V.
	space := Space{
		VecWidths: []int{16},
		Loops:     []kernel.LoopMode{kernel.FlatLoop},
		Unrolls:   []int{1, 64},
		Types:     []kernel.DataType{kernel.Float64},
	}
	cfg := base()
	ex := Explore(dev(t, "aocl"), cfg, space, kernel.Triad)
	if ex.Infeasible == 0 {
		t.Error("expected infeasible configurations")
	}
	if len(ex.Ranked) == 0 {
		t.Error("expected at least one feasible configuration")
	}
}

func TestPointGBpsNilSafety(t *testing.T) {
	var p Point
	if p.GBps(kernel.Copy) != 0 {
		t.Error("nil result must yield 0")
	}
	p.Result = &core.Result{}
	if p.GBps(kernel.Copy) != 0 {
		t.Error("missing op must yield 0")
	}
}
