// Package dse implements design-space exploration over the MP-STREAM
// parameter space: one-dimensional sweeps for each tuning knob (the
// figures of the paper) and an exhaustive explorer that searches a
// parameter grid for a device's best configuration — the manual and
// automated exploration routes the paper motivates.
package dse

import (
	"fmt"
	"sort"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
)

// Point is one evaluated configuration.
type Point struct {
	Label  string
	Config core.Config
	Result *core.Result
	// KneeGBps is the bandwidth this configuration delivers at
	// acceptable loaded latency: its achieved bandwidth clipped to the
	// bandwidth–latency-surface knee of its own traffic shape. It is
	// populated only when a search runs under the "knee" objective
	// (search.WithKneeObjective) and is 0 otherwise.
	KneeGBps float64
	// Err records infeasible configurations (e.g. FPGA designs that do
	// not fit); Result is nil for them.
	Err error
}

// Evaluated reports whether the point was actually evaluated: a
// canceled parallel evaluation (EvalParallelContext) leaves unclaimed
// grid slots as zero Points, and partial-result consumers filter on
// this before ranking.
func (p Point) Evaluated() bool {
	return p.Label != "" || p.Result != nil || p.Err != nil
}

// EvaluatedPoints filters pts down to the points actually evaluated,
// preserving order — the partial-sweep view a canceled evaluation
// leaves behind.
func EvaluatedPoints(pts []Point) []Point {
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		if p.Evaluated() {
			out = append(out, p)
		}
	}
	return out
}

// GBps returns the bandwidth for op, or 0 when unavailable.
func (p Point) GBps(op kernel.Op) float64 {
	if p.Result == nil {
		return 0
	}
	if kr := p.Result.Kernel(op); kr != nil {
		return kr.GBps
	}
	return 0
}

// run evaluates one labeled configuration.
func run(dev device.Device, cfg core.Config, label string) Point {
	res, err := core.Run(dev, cfg)
	return Point{Label: label, Config: cfg, Result: res, Err: err}
}

func sizeLabel(s int64) string { return fmt.Sprintf("%dB", s) }
func vecLabel(v int) string    { return fmt.Sprintf("v%d", v) }

// SweepSizes varies the array size (Figure 1(a), Figure 2).
func SweepSizes(dev device.Device, base core.Config, sizes []int64) []Point {
	pts := make([]Point, 0, len(sizes))
	for _, s := range sizes {
		cfg := base
		cfg.ArrayBytes = s
		pts = append(pts, run(dev, cfg, sizeLabel(s)))
	}
	return pts
}

// SweepVecWidths varies the vectorization degree (Figure 1(b)).
func SweepVecWidths(dev device.Device, base core.Config, widths []int) []Point {
	pts := make([]Point, 0, len(widths))
	for _, v := range widths {
		cfg := base
		cfg.VecWidth = v
		pts = append(pts, run(dev, cfg, vecLabel(v)))
	}
	return pts
}

// SweepLoopModes varies kernel loop management (Figure 3).
func SweepLoopModes(dev device.Device, base core.Config) []Point {
	pts := make([]Point, 0, 3)
	for _, lm := range kernel.LoopModes() {
		cfg := base
		cfg.OptimalLoop = false
		cfg.Loop = lm
		pts = append(pts, run(dev, cfg, lm.String()))
	}
	return pts
}

// SweepPatterns varies the access pattern (Figure 2's two families).
func SweepPatterns(dev device.Device, base core.Config, patterns map[string]mem.Pattern) []Point {
	names := make([]string, 0, len(patterns))
	for n := range patterns {
		names = append(names, n)
	}
	sort.Strings(names)
	pts := make([]Point, 0, len(names))
	for _, n := range names {
		cfg := base
		cfg.Pattern = patterns[n]
		pts = append(pts, run(dev, cfg, n))
	}
	return pts
}

// SweepSIMD varies AOCL's num_simd_work_items (Figure 4(b)). It forces
// NDRange kernels with a fixed work-group size, as AOCL requires.
func SweepSIMD(dev device.Device, base core.Config, ns []int) []Point {
	pts := make([]Point, 0, len(ns))
	for _, n := range ns {
		cfg := base
		cfg.OptimalLoop = false
		cfg.Loop = kernel.NDRange
		cfg.Attrs.NumSIMDWorkItems = n
		if cfg.Attrs.ReqdWorkGroupSize == 0 {
			cfg.Attrs.ReqdWorkGroupSize = 256
		}
		pts = append(pts, run(dev, cfg, fmt.Sprintf("simd%d", n)))
	}
	return pts
}

// SweepCU varies AOCL's num_compute_units (Figure 4(b)).
func SweepCU(dev device.Device, base core.Config, ns []int) []Point {
	pts := make([]Point, 0, len(ns))
	for _, n := range ns {
		cfg := base
		cfg.OptimalLoop = false
		cfg.Loop = kernel.NDRange
		cfg.Attrs.NumComputeUnits = n
		pts = append(pts, run(dev, cfg, fmt.Sprintf("cu%d", n)))
	}
	return pts
}

// SweepUnroll varies the loop unroll factor on loop kernels.
func SweepUnroll(dev device.Device, base core.Config, factors []int) []Point {
	pts := make([]Point, 0, len(factors))
	for _, u := range factors {
		cfg := base
		if cfg.OptimalLoop && dev.Info().OptimalLoop == kernel.NDRange {
			// Unroll needs a loop kernel.
			cfg.OptimalLoop = false
			cfg.Loop = kernel.FlatLoop
		}
		cfg.Attrs.Unroll = u
		pts = append(pts, run(dev, cfg, fmt.Sprintf("u%d", u)))
	}
	return pts
}

// SweepTypes varies the data type (int vs double).
func SweepTypes(dev device.Device, base core.Config) []Point {
	pts := make([]Point, 0, 2)
	for _, dt := range kernel.DataTypes() {
		cfg := base
		cfg.Type = dt
		pts = append(pts, run(dev, cfg, dt.String()))
	}
	return pts
}

// Exploration is the outcome of an exhaustive search.
type Exploration struct {
	// Ranked holds feasible points, best bandwidth first.
	Ranked []Point `json:"ranked"`
	// Infeasible counts configurations the device rejected (invalid
	// kernels, designs that do not fit).
	Infeasible int `json:"infeasible"`
}

// Best returns the winning point; ok is false when nothing was feasible.
func (e Exploration) Best() (Point, bool) {
	if len(e.Ranked) == 0 {
		return Point{}, false
	}
	return e.Ranked[0], true
}

// Explore evaluates every grid point for op and ranks the feasible ones.
func Explore(dev device.Device, base core.Config, space Space, op kernel.Op) Exploration {
	base.Ops = []kernel.Op{op}
	cfgs := space.Configs(base)
	pts := make([]Point, 0, len(cfgs))
	for _, cfg := range cfgs {
		pts = append(pts, run(dev, cfg, ConfigLabel(cfg)))
	}
	return Rank(pts, op)
}

// Rank filters evaluated points into an Exploration: infeasible points
// are counted, feasible ones ordered best bandwidth first. The sort is
// stable, so equal-bandwidth points keep their grid order and sequential
// and parallel exploration rank identically.
func Rank(pts []Point, op kernel.Op) Exploration {
	return RankBy(pts, func(p Point) float64 { return p.GBps(op) })
}

// RankBy is Rank with the ranking metric injected — the hook the search
// layer uses for alternative objectives (e.g. the surface knee).
func RankBy(pts []Point, score func(Point) float64) Exploration {
	// Ranked starts non-nil so an all-infeasible exploration marshals as
	// an empty JSON array, not null.
	out := Exploration{Ranked: []Point{}}
	for _, p := range pts {
		if p.Err != nil {
			out.Infeasible++
			continue
		}
		out.Ranked = append(out.Ranked, p)
	}
	sort.SliceStable(out.Ranked, func(i, j int) bool {
		return score(out.Ranked[i]) > score(out.Ranked[j])
	})
	return out
}

// ConfigLabel renders the compact label Explore gives a grid point.
func ConfigLabel(c core.Config) string {
	loop := "auto"
	if !c.OptimalLoop {
		loop = c.Loop.String()
	}
	label := fmt.Sprintf("%s-v%d-%s", c.Type, c.VecWidth, loop)
	if c.Attrs.Unroll > 1 {
		label += fmt.Sprintf("-u%d", c.Attrs.Unroll)
	}
	if c.Attrs.NumSIMDWorkItems > 1 {
		label += fmt.Sprintf("-simd%d", c.Attrs.NumSIMDWorkItems)
	}
	if c.Attrs.NumComputeUnits > 1 {
		label += fmt.Sprintf("-cu%d", c.Attrs.NumComputeUnits)
	}
	return label
}
