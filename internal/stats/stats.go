// Package stats provides the small summary-statistics toolkit used by the
// benchmark runner and report generators: min/max/mean, geometric mean,
// standard deviation and relative comparisons.
//
// STREAM-style benchmarks report the best (minimum) time across repetitions
// and the bandwidth derived from it; Summary keeps all the moments so both
// the headline number and its dispersion are available.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by constructors that need at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Summary holds summary statistics over a set of float64 samples.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64 // population standard deviation
	Median float64
	Sum    float64
}

// Summarize computes a Summary over xs. It returns ErrEmpty when xs is empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// GeoMean returns the geometric mean of xs. All samples must be positive;
// it returns ErrEmpty for an empty slice and NaN if any sample is
// non-positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN(), nil
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// HarmonicMean returns the harmonic mean of xs (the right mean for rates
// over equal byte counts). It returns ErrEmpty for an empty slice and NaN
// if any sample is non-positive.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN(), nil
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv, nil
}

// Ratio returns a/b, or 0 when b is 0. It is the "speedup" helper used by
// shape checks (who wins, by what factor).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WithinFactor reports whether got is within a multiplicative factor f of
// want, i.e. want/f <= got <= want*f. It requires f >= 1 and positive
// inputs; otherwise it returns false.
func WithinFactor(got, want, f float64) bool {
	if f < 1 || got <= 0 || want <= 0 {
		return false
	}
	return got >= want/f && got <= want*f
}

// RelErr returns |got-want|/|want|, or +Inf when want is 0 and got is not.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// ArgMax returns the index of the maximum element of xs, or -1 when empty.
// Ties resolve to the earliest index.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element of xs, or -1 when empty.
// Ties resolve to the earliest index.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// IsNondecreasing reports whether xs is sorted in non-decreasing order.
func IsNondecreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// IsNonincreasing reports whether xs is sorted in non-increasing order.
func IsNonincreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1] {
			return false
		}
	}
	return true
}
