package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) error = %v, want ErrEmpty", err)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Stddev-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", s.Stddev)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 3.5 || s.Max != 3.5 || s.Mean != 3.5 || s.Median != 3.5 || s.Stddev != 0 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", g)
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Errorf("GeoMean(nil) error = %v, want ErrEmpty", err)
	}
	g, err = GeoMean([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(g) {
		t.Errorf("GeoMean with non-positive sample = %v, want NaN", g)
	}
}

func TestHarmonicMean(t *testing.T) {
	h, err := HarmonicMean([]float64{1, 1.0 / 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 1e-12 {
		t.Errorf("HarmonicMean = %v, want 0.5", h)
	}
	if _, err := HarmonicMean(nil); err != ErrEmpty {
		t.Errorf("HarmonicMean(nil) error = %v, want ErrEmpty", err)
	}
	h, err = HarmonicMean([]float64{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(h) {
		t.Errorf("HarmonicMean with zero sample = %v, want NaN", h)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 {
		t.Error("Ratio(10,4) != 2.5")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio(_,0) must be 0")
	}
}

func TestWithinFactor(t *testing.T) {
	if !WithinFactor(10, 10, 1) {
		t.Error("exact match within factor 1 must hold")
	}
	if !WithinFactor(5, 10, 2) || !WithinFactor(20, 10, 2) {
		t.Error("boundary cases within factor 2 must hold")
	}
	if WithinFactor(4.9, 10, 2) || WithinFactor(20.1, 10, 2) {
		t.Error("outside factor 2 must fail")
	}
	if WithinFactor(10, 10, 0.5) {
		t.Error("factor < 1 must fail")
	}
	if WithinFactor(-1, 10, 2) || WithinFactor(10, -1, 2) {
		t.Error("non-positive inputs must fail")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Error("RelErr(11,10) != 0.1")
	}
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) != 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) must be +Inf")
	}
}

func TestArgMaxMin(t *testing.T) {
	xs := []float64{3, 9, 1, 9, 0}
	if got := ArgMax(xs); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (earliest tie)", got)
	}
	if got := ArgMin(xs); got != 4 {
		t.Errorf("ArgMin = %d, want 4", got)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("empty slice must yield -1")
	}
}

func TestMonotoneChecks(t *testing.T) {
	if !IsNondecreasing([]float64{1, 1, 2, 3}) {
		t.Error("nondecreasing check failed")
	}
	if IsNondecreasing([]float64{2, 1}) {
		t.Error("decreasing slice accepted")
	}
	if !IsNonincreasing([]float64{3, 3, 1}) {
		t.Error("nonincreasing check failed")
	}
	if IsNonincreasing([]float64{1, 2}) {
		t.Error("increasing slice accepted")
	}
	if !IsNondecreasing(nil) || !IsNonincreasing(nil) {
		t.Error("empty slices are trivially monotone")
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Keep magnitudes sane to avoid float overflow in sums.
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for positive samples, harmonic mean <= geometric mean <= mean.
func TestQuickMeanInequality(t *testing.T) {
	f := func(raw []uint32) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			xs = append(xs, float64(x%100000)+1)
		}
		if len(xs) == 0 {
			return true
		}
		s, _ := Summarize(xs)
		g, _ := GeoMean(xs)
		h, _ := HarmonicMean(xs)
		const eps = 1e-9
		return h <= g*(1+eps) && g <= s.Mean*(1+eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
