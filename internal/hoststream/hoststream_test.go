package hoststream

import (
	"testing"

	"mpstream/internal/kernel"
)

func TestValidate(t *testing.T) {
	if err := (Config{Elems: 1000}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{Elems: 0}).Validate(); err == nil {
		t.Error("zero elems accepted")
	}
	if err := (Config{Elems: 10, NTimes: -1}).Validate(); err == nil {
		t.Error("negative ntimes accepted")
	}
	if err := (Config{Elems: 10, Workers: -1}).Validate(); err == nil {
		t.Error("negative workers accepted")
	}
}

func TestRunSmall(t *testing.T) {
	res, err := Run(Config{Elems: 1 << 16, NTimes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 4 {
		t.Fatalf("got %d kernels", len(res.Kernels))
	}
	for _, kr := range res.Kernels {
		if kr.GBps <= 0 {
			t.Errorf("%v: no bandwidth", kr.Op)
		}
		if len(kr.Times) != 3 {
			t.Errorf("%v: %d times", kr.Op, len(kr.Times))
		}
		if kr.BestSeconds <= 0 || kr.AvgSeconds < kr.BestSeconds {
			t.Errorf("%v: times inconsistent: best %v avg %v", kr.Op, kr.BestSeconds, kr.AvgSeconds)
		}
	}
	// Byte accounting.
	if res.Kernel(kernel.Copy).BytesMoved != 2*(1<<16)*8 {
		t.Error("copy bytes wrong")
	}
	if res.Kernel(kernel.Add).BytesMoved != 3*(1<<16)*8 {
		t.Error("add bytes wrong")
	}
}

func TestKernelLookup(t *testing.T) {
	res, err := Run(Config{Elems: 1024, NTimes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel(kernel.Triad) == nil {
		t.Error("triad missing")
	}
}

func TestSingleWorker(t *testing.T) {
	res, err := Run(Config{Elems: 1 << 14, NTimes: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 1 {
		t.Errorf("workers = %d", res.Workers)
	}
}

func TestMoreWorkersThanElems(t *testing.T) {
	if _, err := Run(Config{Elems: 3, NTimes: 1, Workers: 64}); err != nil {
		t.Fatalf("tiny array with many workers failed: %v", err)
	}
}

// The host is a real machine: bandwidth should be at least in the
// hundreds of MB/s and below any plausible DRAM limit.
func TestPlausibleBandwidth(t *testing.T) {
	res, err := Run(Config{Elems: 1 << 20, NTimes: 3})
	if err != nil {
		t.Fatal(err)
	}
	bw := res.Kernel(kernel.Copy).GBps
	if bw < 0.1 || bw > 2000 {
		t.Errorf("host copy bandwidth %.2f GB/s implausible", bw)
	}
}
