// Package hoststream is a real STREAM benchmark in pure Go: it measures
// the actual sustained memory bandwidth of the machine running this
// process, with wall-clock timing and goroutine-parallel kernels.
//
// It plays the role of the original McCalpin STREAM in the paper's story:
// a reality anchor next to the simulated devices, and a useful library in
// its own right. Conventions match STREAM: three arrays, four kernels,
// NTIMES repetitions, best time excluding the first iteration, bandwidth
// of 2x or 3x the array bytes.
package hoststream

import (
	"fmt"
	"runtime"
	"time"

	"mpstream/internal/kernel"
	"mpstream/internal/stats"
)

// Config sizes the host benchmark.
type Config struct {
	// Elems is the per-array element count (float64 elements). STREAM's
	// guidance: at least 4x the last-level cache.
	Elems int
	// NTimes is the repetition count (default 5).
	NTimes int
	// Workers is the goroutine count (default GOMAXPROCS).
	Workers int
	// Scalar is q (default 3).
	Scalar float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.NTimes == 0 {
		c.NTimes = 5
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Scalar == 0 {
		c.Scalar = 3
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Elems <= 0:
		return fmt.Errorf("hoststream: elems %d must be positive", c.Elems)
	case c.NTimes < 1:
		return fmt.Errorf("hoststream: ntimes %d must be >= 1", c.NTimes)
	case c.Workers < 1:
		return fmt.Errorf("hoststream: workers %d must be >= 1", c.Workers)
	}
	return nil
}

// KernelResult is the host measurement for one kernel.
type KernelResult struct {
	Op          kernel.Op
	BytesMoved  int64
	Times       []float64
	BestSeconds float64
	AvgSeconds  float64
	GBps        float64
}

// Result is a full host STREAM run.
type Result struct {
	Config  Config
	Workers int
	Kernels []KernelResult
}

// Kernel returns the result for op, or nil.
func (r *Result) Kernel(op kernel.Op) *KernelResult {
	for i := range r.Kernels {
		if r.Kernels[i].Op == op {
			return &r.Kernels[i]
		}
	}
	return nil
}

// Run executes host STREAM.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Elems
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range b {
		b[i] = 2
		c[i] = 0.5
	}

	res := &Result{Config: cfg, Workers: cfg.Workers}
	for _, op := range kernel.Ops() {
		kr := KernelResult{Op: op, BytesMoved: op.BytesMoved(int64(n) * 8)}
		for iter := 0; iter < cfg.NTimes; iter++ {
			start := time.Now()
			parallelApply(op, cfg.Scalar, a, b, c, cfg.Workers)
			kr.Times = append(kr.Times, time.Since(start).Seconds())
		}
		considered := kr.Times
		if len(considered) > 1 {
			considered = considered[1:]
		}
		s, err := stats.Summarize(considered)
		if err != nil {
			return nil, err
		}
		kr.BestSeconds = s.Min
		kr.AvgSeconds = s.Mean
		if kr.BestSeconds > 0 {
			kr.GBps = float64(kr.BytesMoved) / kr.BestSeconds / 1e9
		}
		// Verify before moving on (results feed the next op's inputs in
		// classic STREAM; here inputs are fixed, so check a directly).
		want := kernel.Expected(op, cfg.Scalar, 2, 0.5)
		for i := 0; i < n; i += maxInt(1, n/64) {
			if a[i] != want {
				return nil, fmt.Errorf("hoststream: %v validation failed at %d: %v != %v", op, i, a[i], want)
			}
		}
		res.Kernels = append(res.Kernels, kr)
	}
	return res, nil
}

// parallelApply splits the arrays across workers and applies the kernel.
func parallelApply(op kernel.Op, q float64, a, b, c []float64, workers int) {
	n := len(a)
	if workers > n {
		workers = n
	}
	done := make(chan struct{}, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer func() { done <- struct{}{} }()
			if lo >= hi {
				return
			}
			aa, bb, cc := a[lo:hi], b[lo:hi], c[lo:hi]
			switch op {
			case kernel.Copy:
				copy(aa, bb)
			case kernel.Scale:
				for i := range aa {
					aa[i] = q * bb[i]
				}
			case kernel.Add:
				for i := range aa {
					aa[i] = bb[i] + cc[i]
				}
			case kernel.Triad:
				for i := range aa {
					aa[i] = bb[i] + q*cc[i]
				}
			}
		}(lo, hi)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
