package fabric

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testModel() CostModel {
	return CostModel{
		BaseFmaxMHz:       316,
		MinFmaxMHz:        120,
		WidthPenalty:      0.06,
		ReplPenalty:       0.08,
		BasePipelineDepth: 120,
		DepthPerLaneLog2:  12,
		BaseUnit:          Resources{Logic: 4200, Registers: 9000, BRAM: 12},
		PerLane:           Resources{Logic: 650, Registers: 1400, BRAM: 1},
		PerReplLane:       Resources{Logic: 900, Registers: 2100, BRAM: 2},
		PerStream:         Resources{Logic: 2800, Registers: 5600, BRAM: 8},
		MultiplierDSP:     1,
	}
}

func copyShape(lanes, units, repl int) Shape {
	return Shape{LanesPerUnit: lanes, Units: units, Streams: 2, WordBytes: 4, ReplicatedLanes: repl}
}

func TestResourcesAddScale(t *testing.T) {
	a := Resources{Logic: 1, Registers: 2, BRAM: 3, DSP: 4}
	b := Resources{Logic: 10, Registers: 20, BRAM: 30, DSP: 40}
	sum := a.Add(b)
	if sum != (Resources{11, 22, 33, 44}) {
		t.Errorf("Add = %+v", sum)
	}
	if a.Scale(3) != (Resources{3, 6, 9, 12}) {
		t.Errorf("Scale = %+v", a.Scale(3))
	}
}

func TestUtilizationMax(t *testing.T) {
	u := Utilization{Logic: 0.2, Registers: 0.9, BRAM: 0.5, DSP: 0.1}
	if u.Max() != 0.9 {
		t.Errorf("Max = %v, want 0.9", u.Max())
	}
}

func TestPartUtilizationIncludesShell(t *testing.T) {
	u := StratixVD5.Utilization(Resources{})
	if u.Logic <= 0 {
		t.Error("shell must consume logic even for an empty design")
	}
	if u.Logic != float64(StratixVD5.Shell.Logic)/float64(StratixVD5.Capacity.Logic) {
		t.Error("empty-design utilization must equal shell fraction")
	}
}

func TestPartFit(t *testing.T) {
	if err := StratixVD5.Fit(Resources{Logic: 100000}); err != nil {
		t.Errorf("fitting design rejected: %v", err)
	}
	err := StratixVD5.Fit(Resources{Logic: 172600})
	if err == nil {
		t.Fatal("oversized design accepted")
	}
	if !errors.Is(err, ErrDoesNotFit) {
		t.Errorf("error %v must wrap ErrDoesNotFit", err)
	}
	if !strings.Contains(err.Error(), "stratix") {
		t.Errorf("error must name the part: %v", err)
	}
}

func TestShapeValidate(t *testing.T) {
	good := copyShape(4, 1, 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	bad := []Shape{
		{LanesPerUnit: 0, Units: 1, Streams: 1, WordBytes: 4},
		{LanesPerUnit: 1, Units: 0, Streams: 1, WordBytes: 4},
		{LanesPerUnit: 1, Units: 1, Streams: 0, WordBytes: 4},
		{LanesPerUnit: 1, Units: 1, Streams: 1, WordBytes: 0},
		{LanesPerUnit: 2, Units: 1, Streams: 1, WordBytes: 4, ReplicatedLanes: 4},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad shape %d accepted", i)
		}
	}
}

func TestFmaxDegradesWithWidth(t *testing.T) {
	m := testModel()
	var prev float64 = math.Inf(1)
	for _, lanes := range []int{1, 2, 4, 8, 16} {
		syn, err := m.Synthesize(copyShape(lanes, 1, 0))
		if err != nil {
			t.Fatal(err)
		}
		if syn.FmaxMHz >= prev {
			t.Errorf("fmax at %d lanes = %.1f, want < previous %.1f", lanes, syn.FmaxMHz, prev)
		}
		prev = syn.FmaxMHz
	}
	// Scalar pipeline runs at base fmax.
	syn, _ := m.Synthesize(copyShape(1, 1, 0))
	if syn.FmaxMHz != 316 {
		t.Errorf("scalar fmax = %v, want 316", syn.FmaxMHz)
	}
}

func TestFmaxFloor(t *testing.T) {
	m := testModel()
	m.WidthPenalty = 0.3
	syn, err := m.Synthesize(copyShape(16, 16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if syn.FmaxMHz != m.MinFmaxMHz {
		t.Errorf("fmax = %v, want floor %v", syn.FmaxMHz, m.MinFmaxMHz)
	}
}

func TestReplicationCostsMoreFmaxThanWidth(t *testing.T) {
	m := testModel()
	vec, err := m.Synthesize(copyShape(8, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	cu, err := m.Synthesize(copyShape(1, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cu.FmaxMHz >= vec.FmaxMHz {
		t.Errorf("8 CUs fmax %.1f must be below vec8 fmax %.1f (ReplPenalty > WidthPenalty)",
			cu.FmaxMHz, vec.FmaxMHz)
	}
}

func TestResourceOrderingVecSimdCU(t *testing.T) {
	// The paper's Section IV observation: for the same nominal
	// parallelism N, resources(vec N) < resources(SIMD N) < resources(CU N).
	m := testModel()
	for _, n := range []int{2, 4, 8, 16} {
		vec, err := m.Synthesize(copyShape(n, 1, 0))
		if err != nil {
			t.Fatal(err)
		}
		simd, err := m.Synthesize(copyShape(n, 1, n))
		if err != nil {
			t.Fatal(err)
		}
		cu, err := m.Synthesize(copyShape(1, n, 0))
		if err != nil {
			t.Fatal(err)
		}
		if !(vec.Res.Logic < simd.Res.Logic && simd.Res.Logic < cu.Res.Logic) {
			t.Errorf("N=%d logic ordering: vec=%d simd=%d cu=%d, want vec < simd < cu",
				n, vec.Res.Logic, simd.Res.Logic, cu.Res.Logic)
		}
	}
}

func TestMultiplierDSP(t *testing.T) {
	m := testModel()
	s := copyShape(4, 1, 0)
	noMul, _ := m.Synthesize(s)
	s.UsesMultiplier = true
	mul, _ := m.Synthesize(s)
	if noMul.Res.DSP != 0 {
		t.Errorf("copy must use no DSPs, got %d", noMul.Res.DSP)
	}
	if mul.Res.DSP != 4 {
		t.Errorf("4-lane multiply DSPs = %d, want 4", mul.Res.DSP)
	}
	// Doubles cost twice the DSPs.
	s.WordBytes = 8
	mul8, _ := m.Synthesize(s)
	if mul8.Res.DSP != 8 {
		t.Errorf("double multiply DSPs = %d, want 8", mul8.Res.DSP)
	}
}

func TestDepthGrowsWithWidth(t *testing.T) {
	m := testModel()
	narrow, _ := m.Synthesize(copyShape(1, 1, 0))
	wide, _ := m.Synthesize(copyShape(16, 1, 0))
	if wide.Depth <= narrow.Depth {
		t.Errorf("depth must grow with width: %d vs %d", wide.Depth, narrow.Depth)
	}
	if narrow.Depth != 120 {
		t.Errorf("base depth = %d, want 120", narrow.Depth)
	}
}

func TestIssueGBps(t *testing.T) {
	m := testModel()
	s := copyShape(1, 1, 0) // 2 streams x 4 B x 316 MHz
	syn, _ := m.Synthesize(s)
	want := 2 * 4 * 316e6 / 1e9
	if math.Abs(syn.IssueGBps(s)-want) > 1e-9 {
		t.Errorf("IssueGBps = %v, want %v", syn.IssueGBps(s), want)
	}
}

func TestDrainSeconds(t *testing.T) {
	syn := Synthesis{FmaxMHz: 100, Depth: 200}
	// 1000 segments x 200 cycles at 100 MHz = 2 ms.
	if got := syn.DrainSeconds(1000); math.Abs(got-0.002) > 1e-12 {
		t.Errorf("DrainSeconds = %v, want 0.002", got)
	}
	if syn.DrainSeconds(0) != 0 || syn.DrainSeconds(-5) != 0 {
		t.Error("non-positive segments must cost nothing")
	}
	if (Synthesis{FmaxMHz: 0, Depth: 10}).DrainSeconds(5) != 0 {
		t.Error("zero fmax must cost nothing rather than dividing by zero")
	}
}

func TestSynthesizeRejectsBadShape(t *testing.T) {
	m := testModel()
	if _, err := m.Synthesize(Shape{}); err == nil {
		t.Error("invalid shape must error")
	}
}

// Property: resources and issue bandwidth are monotone in lanes and units;
// fmax is antitone.
func TestQuickMonotonicity(t *testing.T) {
	m := testModel()
	f := func(l1, l2, u1, u2 uint8) bool {
		lanesA := int(l1%16) + 1
		lanesB := int(l2%16) + 1
		unitsA := int(u1%8) + 1
		unitsB := int(u2%8) + 1
		if lanesA > lanesB {
			lanesA, lanesB = lanesB, lanesA
		}
		if unitsA > unitsB {
			unitsA, unitsB = unitsB, unitsA
		}
		a, err := m.Synthesize(copyShape(lanesA, unitsA, 0))
		if err != nil {
			return false
		}
		b, err := m.Synthesize(copyShape(lanesB, unitsB, 0))
		if err != nil {
			return false
		}
		return a.Res.Logic <= b.Res.Logic && a.FmaxMHz >= b.FmaxMHz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartsAreSane(t *testing.T) {
	for _, p := range []Part{StratixVD5, Virtex7690T} {
		if p.Capacity.Logic <= p.Shell.Logic {
			t.Errorf("%s: shell exceeds capacity", p.Name)
		}
		if err := p.Fit(Resources{}); err != nil {
			t.Errorf("%s: empty design must fit: %v", p.Name, err)
		}
	}
}
