// Package fabric models the FPGA side of OpenCL-to-hardware compilation:
// how a kernel configuration synthesizes into a pipeline with a clock
// frequency (fmax), a pipeline depth, and a resource footprint on a given
// part.
//
// The paper's FPGA results hinge on three fabric-level effects:
//
//   - fmax degrades as the datapath widens (vectorization, unrolling,
//     SIMD lanes) and as logic is replicated (compute units) because
//     routing pressure grows — this is why doubling vector width does not
//     double bandwidth even before DRAM saturates;
//   - replication-style optimizations (num_simd_work_items,
//     num_compute_units) consume considerably more resources than native
//     vectorization for the same nominal parallelism, the paper's
//     observation in Section IV;
//   - deep pipelines drain at loop boundaries, which is what separates
//     flat from nested single work-item loops.
package fabric

import (
	"fmt"
	"math"
)

// Resources is an FPGA resource vector. Units are part-specific (ALMs for
// Intel/Altera parts, LUTs for Xilinx parts); comparisons are always
// against the same part's capacity.
type Resources struct {
	Logic     int `json:"logic"` // ALMs / LUTs
	Registers int `json:"registers"`
	BRAM      int `json:"bram"` // block RAM primitives (M20K / BRAM36)
	DSP       int `json:"dsp"`
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		Logic:     r.Logic + o.Logic,
		Registers: r.Registers + o.Registers,
		BRAM:      r.BRAM + o.BRAM,
		DSP:       r.DSP + o.DSP,
	}
}

// Scale returns the resource vector multiplied by n.
func (r Resources) Scale(n int) Resources {
	return Resources{
		Logic:     r.Logic * n,
		Registers: r.Registers * n,
		BRAM:      r.BRAM * n,
		DSP:       r.DSP * n,
	}
}

// Utilization is the per-component fraction of a part consumed.
type Utilization struct {
	Logic     float64
	Registers float64
	BRAM      float64
	DSP       float64
}

// Max returns the highest component fraction (the binding constraint).
func (u Utilization) Max() float64 {
	m := u.Logic
	for _, v := range []float64{u.Registers, u.BRAM, u.DSP} {
		if v > m {
			m = v
		}
	}
	return m
}

// Part describes an FPGA device's capacity and shell (board support
// package) overhead, which is consumed before any kernel logic.
type Part struct {
	Name     string
	Capacity Resources
	Shell    Resources
}

// StratixVD5 approximates the Altera Stratix V GS D5 on the Nallatech
// PCIe-385 (the paper's AOCL board).
var StratixVD5 = Part{
	Name:     "stratix-v-gs-d5",
	Capacity: Resources{Logic: 172600, Registers: 690400, BRAM: 2014, DSP: 1590},
	Shell:    Resources{Logic: 28000, Registers: 96000, BRAM: 300, DSP: 0},
}

// Virtex7690T approximates the Xilinx Virtex-7 XC7VX690T on the
// Alpha-Data ADM-PCIE-7V3 (the paper's SDAccel board).
var Virtex7690T = Part{
	Name:     "virtex-7-xc7vx690t",
	Capacity: Resources{Logic: 433200, Registers: 866400, BRAM: 1470, DSP: 3600},
	Shell:    Resources{Logic: 60000, Registers: 120000, BRAM: 220, DSP: 0},
}

// Utilization reports the fraction of the part used by r plus the shell.
func (p Part) Utilization(r Resources) Utilization {
	total := r.Add(p.Shell)
	frac := func(used, cap int) float64 {
		if cap == 0 {
			if used == 0 {
				return 0
			}
			return math.Inf(1)
		}
		return float64(used) / float64(cap)
	}
	return Utilization{
		Logic:     frac(total.Logic, p.Capacity.Logic),
		Registers: frac(total.Registers, p.Capacity.Registers),
		BRAM:      frac(total.BRAM, p.Capacity.BRAM),
		DSP:       frac(total.DSP, p.Capacity.DSP),
	}
}

// ErrDoesNotFit is wrapped by Fit errors.
var ErrDoesNotFit = fmt.Errorf("fabric: design does not fit")

// Fit returns an error when the design plus shell exceeds the part.
func (p Part) Fit(r Resources) error {
	u := p.Utilization(r)
	if u.Max() > 1.0 {
		return fmt.Errorf("%w on %s: utilization logic=%.0f%% regs=%.0f%% bram=%.0f%% dsp=%.0f%%",
			ErrDoesNotFit, p.Name, u.Logic*100, u.Registers*100, u.BRAM*100, u.DSP*100)
	}
	return nil
}

// Shape is the hardware-relevant summary of a kernel configuration, as
// produced by a back-end's lowering: how wide each pipeline is, how many
// times it is replicated, and how many memory streams it touches.
type Shape struct {
	// LanesPerUnit is the datapath width in words per compute unit:
	// vector width x unroll factor x SIMD work-items.
	LanesPerUnit int
	// Units is the number of replicated compute units.
	Units int
	// Streams is the number of array streams (load/store units per unit).
	Streams int
	// WordBytes is the element word size.
	WordBytes int
	// UsesMultiplier marks ops with a scalar multiply (scale, triad).
	UsesMultiplier bool
	// Replicated marks SIMD/CU-style replication (control logic cloned),
	// which costs more than pure datapath widening.
	ReplicatedLanes int
}

// Validate reports shape errors.
func (s Shape) Validate() error {
	switch {
	case s.LanesPerUnit < 1:
		return fmt.Errorf("fabric: lanes per unit %d must be >= 1", s.LanesPerUnit)
	case s.Units < 1:
		return fmt.Errorf("fabric: units %d must be >= 1", s.Units)
	case s.Streams < 1:
		return fmt.Errorf("fabric: streams %d must be >= 1", s.Streams)
	case s.WordBytes < 1:
		return fmt.Errorf("fabric: word bytes %d must be >= 1", s.WordBytes)
	case s.ReplicatedLanes < 0 || s.ReplicatedLanes > s.LanesPerUnit:
		return fmt.Errorf("fabric: replicated lanes %d out of [0,%d]", s.ReplicatedLanes, s.LanesPerUnit)
	}
	return nil
}

// CostModel holds a toolchain's synthesis cost parameters. Device
// back-ends embed one with constants calibrated to their toolchain
// generation (AOCL 15.1 on Stratix V runs much faster pipelines than
// SDAccel 2015.1 on Virtex-7).
type CostModel struct {
	BaseFmaxMHz float64
	MinFmaxMHz  float64
	// WidthPenalty is the fractional fmax loss per doubling of the
	// per-unit datapath width.
	WidthPenalty float64
	// ReplPenalty is the fractional fmax loss per doubling of total
	// replication (units and SIMD lanes), on top of WidthPenalty.
	ReplPenalty float64

	BasePipelineDepth int
	DepthPerLaneLog2  int

	// Resource costs.
	BaseUnit      Resources // control, iteration logic per compute unit
	PerLane       Resources // pure datapath widening per word lane
	PerReplLane   Resources // extra cost when a lane is replicated (SIMD)
	PerStream     Resources // LSU per array stream (per unit)
	MultiplierDSP int       // DSPs per multiplying lane
}

// Synthesis is the outcome of compiling a shape.
type Synthesis struct {
	FmaxMHz float64
	Depth   int // pipeline depth in stages
	Res     Resources
}

// Synthesize estimates timing closure and resources for a shape.
func (c CostModel) Synthesize(s Shape) (Synthesis, error) {
	if err := s.Validate(); err != nil {
		return Synthesis{}, err
	}
	widthLog := math.Log2(float64(s.LanesPerUnit))
	replLog := math.Log2(float64(s.Units))
	if s.ReplicatedLanes > 1 {
		replLog += math.Log2(float64(s.ReplicatedLanes))
	}
	fmax := c.BaseFmaxMHz * (1 - c.WidthPenalty*widthLog) * (1 - c.ReplPenalty*replLog)
	if fmax < c.MinFmaxMHz {
		fmax = c.MinFmaxMHz
	}

	depth := c.BasePipelineDepth + c.DepthPerLaneLog2*int(widthLog)

	// Every lane pays the datapath cost; replicated lanes (SIMD) also pay
	// the control-replication cost, which is why SIMD is dearer than pure
	// vectorization at equal nominal parallelism.
	perUnit := c.BaseUnit.
		Add(c.PerLane.Scale(s.LanesPerUnit)).
		Add(c.PerReplLane.Scale(s.ReplicatedLanes)).
		Add(c.PerStream.Scale(s.Streams))
	if s.UsesMultiplier {
		perUnit.DSP += c.MultiplierDSP * s.LanesPerUnit * s.WordBytes / 4
	}
	res := perUnit.Scale(s.Units)
	return Synthesis{FmaxMHz: fmax, Depth: depth, Res: res}, nil
}

// IssueGBps returns the raw issue bandwidth of the synthesized pipelines
// for a shape: words issued per cycle per stream across all units, times
// word size, times fmax. The memory system decides what fraction is
// sustainable.
func (s Synthesis) IssueGBps(shape Shape) float64 {
	bytesPerCycle := float64(shape.LanesPerUnit*shape.WordBytes) *
		float64(shape.Streams) * float64(shape.Units)
	return bytesPerCycle * s.FmaxMHz * 1e6 / 1e9
}

// DrainSeconds is the pipeline-drain cost paid once per loop segment: a
// nested loop with R outer iterations drains R times.
func (s Synthesis) DrainSeconds(segments int64) float64 {
	if segments <= 0 || s.FmaxMHz <= 0 {
		return 0
	}
	return float64(segments) * float64(s.Depth) / (s.FmaxMHz * 1e6)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
