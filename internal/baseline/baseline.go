// Package baseline turns the service from an evaluator into a
// monitor: named reference measurements ("baselines") persisted per
// canonical configuration fingerprint, re-measured on demand or on a
// schedule, and verdicted against tolerance bands in the style of the
// ReFrame STREAM harness — named machines, stored reference
// bandwidths, loud failure on drift. Surfaces are compared the way the
// Mess methodology frames them: the bandwidth–latency surface is the
// artifact, so drift is detected per curve (knee bandwidth, knee-rate
// shift) and per ladder rung, not just on a headline GB/s.
//
// The package deliberately does not import internal/service: the
// service layer owns job scheduling and HTTP; this package owns the
// reference shape, the verdict math (compare.go) and the persistent
// store (store.go).
package baseline

import (
	"fmt"
	"regexp"
	"time"

	"mpstream/internal/core"
	"mpstream/internal/surface"
)

// Baseline kinds: what a stored reference measures.
const (
	// KindRun references one core run (per-kernel ns and GB/s).
	KindRun = "run"
	// KindSurface references a bandwidth–latency surface (per-curve
	// knees and per-rung achieved bandwidth).
	KindSurface = "surface"
)

// nameRE bounds baseline names: they become file names in the on-disk
// store and label values in the metrics exposition.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidateName rejects names unusable as store file names or metric
// label values.
func ValidateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("baseline: bad name %q (want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric)", name)
	}
	return nil
}

// Entry is one named baseline: the configuration it pins, the
// reference metrics recorded when it was captured, and the tolerance
// bands a re-measurement is verdicted against. Entries are the
// JSON-per-file unit of the on-disk store.
type Entry struct {
	// Name is the operator-facing identity ("cpu-nightly"); unique
	// within a store.
	Name string `json:"name"`
	// Target is the device the baseline was measured on.
	Target string `json:"target"`
	// Kind is KindRun or KindSurface.
	Kind string `json:"kind"`
	// Fingerprint is the canonical request digest — Config.Fingerprint
	// for runs, the service's surface digest for surfaces — and the
	// store's primary key: one baseline per measured configuration.
	Fingerprint string `json:"fingerprint"`
	// Config is the canonical run configuration (KindRun only).
	Config *core.Config `json:"config,omitempty"`
	// SurfaceConfig is the canonical ladder (KindSurface only).
	SurfaceConfig *surface.Config `json:"surface_config,omitempty"`
	// Tolerance is stored fully resolved (WithDefaults applied at
	// record time) so the entry on disk self-describes its bands.
	Tolerance Tolerance `json:"tolerance"`
	// Reference holds the recorded metrics a check compares against.
	Reference Reference `json:"reference"`
	Created   time.Time `json:"created"`
	Updated   time.Time `json:"updated"`
}

// Validate checks the entry is internally consistent enough to store
// and later check.
func (e Entry) Validate() error {
	if err := ValidateName(e.Name); err != nil {
		return err
	}
	if e.Target == "" {
		return fmt.Errorf("baseline %q: empty target", e.Name)
	}
	if e.Fingerprint == "" {
		return fmt.Errorf("baseline %q: empty fingerprint", e.Name)
	}
	switch e.Kind {
	case KindRun:
		if e.Config == nil {
			return fmt.Errorf("baseline %q: run kind needs a config", e.Name)
		}
		if len(e.Reference.Kernels) == 0 {
			return fmt.Errorf("baseline %q: run reference has no kernels", e.Name)
		}
	case KindSurface:
		if e.SurfaceConfig == nil {
			return fmt.Errorf("baseline %q: surface kind needs a surface config", e.Name)
		}
		if len(e.Reference.Curves) == 0 {
			return fmt.Errorf("baseline %q: surface reference has no curves", e.Name)
		}
	default:
		return fmt.Errorf("baseline %q: unknown kind %q (want %q or %q)", e.Name, e.Kind, KindRun, KindSurface)
	}
	return nil
}

// KernelRef is the per-kernel slice of a run reference.
type KernelRef struct {
	Op string `json:"op"`
	// GBps is the best-iteration bandwidth.
	GBps float64 `json:"gbps"`
	// NsPerIter is the best iteration time in nanoseconds.
	NsPerIter float64 `json:"ns_per_iter"`
}

// RungRef is one injection-ladder point of a surface reference.
type RungRef struct {
	Rate      float64 `json:"rate"`
	GBps      float64 `json:"gbps"`
	LatencyNs float64 `json:"latency_ns"`
}

// CurveRef is one (pattern, read-fraction) curve of a surface
// reference: the knee operating point plus every measured rung.
type CurveRef struct {
	Pattern  string  `json:"pattern"`
	ReadFrac float64 `json:"read_frac"`
	// KneeRate and KneeGBps identify the knee; a knee-rate shift in a
	// re-measurement is drift even when the knee bandwidth holds.
	KneeRate      float64   `json:"knee_rate"`
	KneeGBps      float64   `json:"knee_gbps"`
	IdleLatencyNs float64   `json:"idle_latency_ns"`
	Rungs         []RungRef `json:"rungs"`
}

// Reference is the metric set a check compares: kernels for run
// baselines, curves for surface baselines.
type Reference struct {
	Kernels  []KernelRef `json:"kernels,omitempty"`
	BestGBps float64     `json:"best_gbps,omitempty"`
	Curves   []CurveRef  `json:"curves,omitempty"`
	// MinKneeGBps is the surface's conservative headline: the worst
	// knee across curves.
	MinKneeGBps float64 `json:"min_knee_gbps,omitempty"`
}

// FromResult digests one core run into a reference.
func FromResult(res *core.Result) Reference {
	var ref Reference
	for _, kr := range res.Kernels {
		ref.Kernels = append(ref.Kernels, KernelRef{
			Op:        kr.Op.String(),
			GBps:      kr.GBps,
			NsPerIter: kr.BestSeconds * 1e9,
		})
		if kr.GBps > ref.BestGBps {
			ref.BestGBps = kr.GBps
		}
	}
	return ref
}

// FromSurface digests a surface into a reference. A partial (stopped)
// surface digests the measured subset — the caller decides whether a
// partial comparison is meaningful.
func FromSurface(s *surface.Surface) Reference {
	var ref Reference
	for _, c := range s.Curves {
		cr := CurveRef{
			Pattern:       surface.PatternLabel(c.Pattern),
			ReadFrac:      c.ReadFrac,
			KneeRate:      c.Knee.Rate,
			KneeGBps:      c.Knee.GBps,
			IdleLatencyNs: c.IdleLatencyNs,
		}
		for _, p := range c.Points {
			cr.Rungs = append(cr.Rungs, RungRef{Rate: p.Rate, GBps: p.AchievedGBps, LatencyNs: p.LatencyNs})
		}
		ref.Curves = append(ref.Curves, cr)
	}
	ref.MinKneeGBps = s.MinKneeGBps()
	return ref
}

// Scale returns the reference with every bandwidth multiplied by f and
// every latency divided by f — a uniform calibration-drift transform.
// The service's drift-injection drill knob (mpserved -check-perturb)
// applies it to the *measured* side of a check so operators can
// rehearse the alerting path against a known skew. f <= 0 or 1 returns
// the reference unchanged.
func (r Reference) Scale(f float64) Reference {
	if f <= 0 || f == 1 {
		return r
	}
	out := r
	out.BestGBps *= f
	out.MinKneeGBps *= f
	out.Kernels = append([]KernelRef(nil), r.Kernels...)
	for i := range out.Kernels {
		out.Kernels[i].GBps *= f
		out.Kernels[i].NsPerIter /= f
	}
	out.Curves = append([]CurveRef(nil), r.Curves...)
	for i := range out.Curves {
		out.Curves[i].KneeGBps *= f
		out.Curves[i].IdleLatencyNs /= f
		out.Curves[i].Rungs = append([]RungRef(nil), r.Curves[i].Rungs...)
		for k := range out.Curves[i].Rungs {
			out.Curves[i].Rungs[k].GBps *= f
			out.Curves[i].Rungs[k].LatencyNs /= f
		}
	}
	return out
}

// Default tolerance bands, as two-sided relative fractions (the
// ReFrame STREAM exemplar's "reference ±5%" shape).
const (
	DefaultGBpsFrac = 0.05
	DefaultNsFrac   = 0.05
	DefaultKneeFrac = 0.10
	DefaultRungFrac = 0.15
)

// Tolerance is the per-metric-family band set a check verdicts
// against. All bands are two-sided relative fractions: a measurement
// within reference*(1±band) passes, exactly at the boundary included.
// Zero fields resolve to the defaults; a negative band disables that
// family's checks entirely.
type Tolerance struct {
	// GBpsFrac bounds per-kernel (and best) bandwidth drift.
	GBpsFrac float64 `json:"gbps_frac,omitempty"`
	// NsFrac bounds per-kernel iteration-time and idle-latency drift.
	NsFrac float64 `json:"ns_frac,omitempty"`
	// KneeFrac bounds per-curve knee-bandwidth drift.
	KneeFrac float64 `json:"knee_frac,omitempty"`
	// RungFrac bounds per-rung achieved-bandwidth drift (rungs are
	// noisier than knees, hence the wider default).
	RungFrac float64 `json:"rung_frac,omitempty"`
	// WarnFrac turns the inner fraction of each band into a warning
	// zone: |drift| > WarnFrac*band (but still within the band) yields
	// a warn verdict instead of a pass. 0 disables warnings; must be
	// < 1 otherwise (a warn threshold at or beyond the band would be
	// unreachable).
	WarnFrac float64 `json:"warn_frac,omitempty"`
}

// WithDefaults resolves zero bands to the package defaults — the form
// entries store on disk.
func (t Tolerance) WithDefaults() Tolerance {
	if t.GBpsFrac == 0 {
		t.GBpsFrac = DefaultGBpsFrac
	}
	if t.NsFrac == 0 {
		t.NsFrac = DefaultNsFrac
	}
	if t.KneeFrac == 0 {
		t.KneeFrac = DefaultKneeFrac
	}
	if t.RungFrac == 0 {
		t.RungFrac = DefaultRungFrac
	}
	return t
}

// Validate rejects tolerance shapes the verdict math cannot honor.
func (t Tolerance) Validate() error {
	if t.WarnFrac < 0 || t.WarnFrac >= 1 {
		return fmt.Errorf("baseline: warn_frac %v must be in [0, 1)", t.WarnFrac)
	}
	for _, b := range []struct {
		name string
		v    float64
	}{
		{"gbps_frac", t.GBpsFrac}, {"ns_frac", t.NsFrac},
		{"knee_frac", t.KneeFrac}, {"rung_frac", t.RungFrac},
	} {
		if b.v > 10 {
			return fmt.Errorf("baseline: %s %v is not a sane relative band (want a fraction like 0.05)", b.name, b.v)
		}
	}
	return nil
}
