package baseline

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the pluggable persistence interface for baseline entries.
// Names are unique; so are fingerprints (one baseline per measured
// configuration) — Put evicts any prior entry sharing either key.
type Store interface {
	// Put stores e, replacing any entry with the same Name or the same
	// Fingerprint.
	Put(e Entry) error
	// Get returns the entry registered under name.
	Get(name string) (Entry, bool, error)
	// Delete removes the entry registered under name, reporting
	// whether it existed.
	Delete(name string) (bool, error)
	// List returns all entries sorted by name.
	List() ([]Entry, error)
}

// MemStore is the in-memory Store used when no -data-dir is
// configured: same semantics as DirStore, no durability.
type MemStore struct {
	mu     sync.Mutex
	byName map[string]Entry
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{byName: make(map[string]Entry)}
}

func (s *MemStore) Put(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, old := range s.byName {
		if name != e.Name && old.Fingerprint == e.Fingerprint {
			delete(s.byName, name)
		}
	}
	s.byName[e.Name] = e
	return nil
}

func (s *MemStore) Get(name string) (Entry, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byName[name]
	return e, ok, nil
}

func (s *MemStore) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byName[name]
	delete(s.byName, name)
	return ok, nil
}

func (s *MemStore) List() ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedEntries(s.byName), nil
}

// DirStore persists one JSON file per entry under a directory — the
// system's first durable state. Files are named by fingerprint
// (`<fingerprint>.json`): the canonical config digest is the primary
// key, so re-recording the same configuration under any name
// overwrites one file, and a directory listing maps one-to-one onto
// measured configurations. Writes are atomic (temp file + rename) so
// a crash mid-Put never leaves a torn entry for the next Open to
// trip over.
type DirStore struct {
	dir    string
	mu     sync.Mutex
	byName map[string]Entry
}

// OpenDirStore loads (creating if needed) the baseline directory.
// Unreadable or corrupt entry files are skipped with an error list the
// caller may log — one bad file must not take down the store.
func OpenDirStore(dir string) (*DirStore, []error, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("baseline: create store dir: %w", err)
	}
	s := &DirStore{dir: dir, byName: make(map[string]Entry)}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: scan store dir: %w", err)
	}
	var warns []error
	for _, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			warns = append(warns, fmt.Errorf("read %s: %w", filepath.Base(path), err))
			continue
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			warns = append(warns, fmt.Errorf("decode %s: %w", filepath.Base(path), err))
			continue
		}
		if err := e.Validate(); err != nil {
			warns = append(warns, fmt.Errorf("validate %s: %w", filepath.Base(path), err))
			continue
		}
		if old, ok := s.byName[e.Name]; ok {
			// Duplicate name across files (hand-edited store); keep
			// the lexically later file, flag the clash.
			warns = append(warns, fmt.Errorf("%s: name %q already loaded from %s.json; keeping %s",
				filepath.Base(path), e.Name, old.Fingerprint, filepath.Base(path)))
		}
		s.byName[e.Name] = e
	}
	return s, warns, nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(fingerprint string) string {
	// Fingerprints are hex digests, but sanitize defensively: the name
	// must stay inside the store directory.
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, fingerprint)
	return filepath.Join(s.dir, safe+".json")
}

func (s *DirStore) Put(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("baseline: encode %q: %w", e.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("baseline: stage %q: %w", e.Name, err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("baseline: stage %q: %w", e.Name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("baseline: stage %q: %w", e.Name, err)
	}
	if err := os.Rename(tmp.Name(), s.path(e.Fingerprint)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("baseline: commit %q: %w", e.Name, err)
	}
	// Evict stale files: a rename under the same name to a new
	// fingerprint leaves the old fingerprint's file behind; another
	// name claiming this fingerprint loses its index slot (its file
	// was just overwritten).
	if old, ok := s.byName[e.Name]; ok && old.Fingerprint != e.Fingerprint {
		os.Remove(s.path(old.Fingerprint))
	}
	for name, old := range s.byName {
		if name != e.Name && old.Fingerprint == e.Fingerprint {
			delete(s.byName, name)
		}
	}
	s.byName[e.Name] = e
	return nil
}

func (s *DirStore) Get(name string) (Entry, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byName[name]
	return e, ok, nil
}

func (s *DirStore) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byName[name]
	if !ok {
		return false, nil
	}
	if err := os.Remove(s.path(e.Fingerprint)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return false, fmt.Errorf("baseline: delete %q: %w", name, err)
	}
	delete(s.byName, name)
	return true, nil
}

func (s *DirStore) List() ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedEntries(s.byName), nil
}

func sortedEntries(m map[string]Entry) []Entry {
	out := make([]Entry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
