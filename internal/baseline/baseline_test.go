package baseline

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpstream/internal/core"
	"mpstream/internal/kernel"
)

func runEntry(t *testing.T, tol Tolerance) Entry {
	t.Helper()
	e := Entry{
		Name:        "cpu-nightly",
		Target:      "cpu",
		Kind:        KindRun,
		Fingerprint: "fp-run-1",
		Config:      &core.Config{},
		Tolerance:   tol.WithDefaults(),
		Reference: Reference{
			Kernels: []KernelRef{
				{Op: "copy", GBps: 100, NsPerIter: 2000},
				{Op: "triad", GBps: 80, NsPerIter: 2500},
			},
			BestGBps: 100,
		},
		Created: time.Now().UTC(),
		Updated: time.Now().UTC(),
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("entry: %v", err)
	}
	return e
}

func measuredRun(copyGBps float64) Reference {
	return Reference{
		Kernels: []KernelRef{
			{Op: "copy", GBps: copyGBps, NsPerIter: 2000},
			{Op: "triad", GBps: 80, NsPerIter: 2500},
		},
		BestGBps: copyGBps,
	}
}

func metricByName(t *testing.T, rep Report, name string) Metric {
	t.Helper()
	for _, m := range rep.Metrics {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("metric %q not in report (have %d metrics)", name, len(rep.Metrics))
	return Metric{}
}

func TestCompareExactlyAtBandPasses(t *testing.T) {
	e := runEntry(t, Tolerance{})
	// 5% band; measured exactly at reference*(1-band). The band is
	// inclusive: landing exactly on the edge is a pass, only strictly
	// beyond it fails.
	rep := Compare(e, measuredRun(95), e.Tolerance, false)
	if rep.Verdict != VerdictPass {
		t.Fatalf("verdict = %q, want pass: %v", rep.Verdict, rep.Violations)
	}
	m := metricByName(t, rep, "gbps[copy]")
	if m.Margin > 0 {
		t.Fatalf("margin = %v, want <= 0 at the band edge", m.Margin)
	}
	if rep.DriftRatio > 1 {
		t.Fatalf("drift ratio = %v, want <= 1 at the band edge", rep.DriftRatio)
	}

	// One epsilon beyond the edge must fail, naming metric and margin.
	rep = Compare(e, measuredRun(94.9), e.Tolerance, false)
	if rep.Verdict != VerdictFail {
		t.Fatalf("verdict = %q, want fail", rep.Verdict)
	}
	if len(rep.Violations) != 1 || !strings.Contains(rep.Violations[0], "gbps[copy]") ||
		!strings.Contains(rep.Violations[0], "margin") {
		t.Fatalf("violations = %v, want one line naming gbps[copy] and its margin", rep.Violations)
	}
	if rep.DriftRatio <= 1 {
		t.Fatalf("drift ratio = %v, want > 1 on violation", rep.DriftRatio)
	}
	// The upper side of the band is enforced too: a too-good result is
	// still drift (the reference no longer describes the machine).
	rep = Compare(e, measuredRun(106), e.Tolerance, false)
	if rep.Verdict != VerdictFail {
		t.Fatalf("verdict on +6%% = %q, want fail (two-sided band)", rep.Verdict)
	}
}

func TestCompareWarnZone(t *testing.T) {
	e := runEntry(t, Tolerance{WarnFrac: 0.5})
	// 5% band, warn above 50% of it: a 4% dip warns, a 2% dip passes.
	rep := Compare(e, measuredRun(96), e.Tolerance, false)
	if rep.Verdict != VerdictWarn {
		t.Fatalf("verdict at -4%% = %q, want warn", rep.Verdict)
	}
	rep = Compare(e, measuredRun(98), e.Tolerance, false)
	if rep.Verdict != VerdictPass {
		t.Fatalf("verdict at -2%% = %q, want pass", rep.Verdict)
	}
}

func TestCompareMissingKernel(t *testing.T) {
	e := runEntry(t, Tolerance{})
	measured := Reference{Kernels: []KernelRef{{Op: "copy", GBps: 100, NsPerIter: 2000}}}
	rep := Compare(e, measured, e.Tolerance, false)
	if rep.Verdict != VerdictFail {
		t.Fatalf("verdict = %q, want fail when a reference kernel is unmeasured", rep.Verdict)
	}
	if !metricByName(t, rep, "gbps[triad]").Missing {
		t.Fatal("gbps[triad] not marked missing")
	}
	// The same gap in a partial measurement is skipped, not failed.
	rep = Compare(e, measured, e.Tolerance, true)
	if rep.Verdict != VerdictPass || !rep.Partial {
		t.Fatalf("partial verdict = %q (partial=%v), want pass/true", rep.Verdict, rep.Partial)
	}
}

func surfEntry(t *testing.T) Entry {
	t.Helper()
	e := Entry{
		Name:        "gpu-surface",
		Target:      "gpu",
		Kind:        KindSurface,
		Fingerprint: "fp-surf-1",
		Tolerance:   Tolerance{}.WithDefaults(),
		Reference: Reference{
			Curves: []CurveRef{{
				Pattern: "contiguous", ReadFrac: 1,
				KneeRate: 0.5, KneeGBps: 40, IdleLatencyNs: 90,
				Rungs: []RungRef{
					{Rate: 0.25, GBps: 20, LatencyNs: 100},
					{Rate: 0.5, GBps: 40, LatencyNs: 120},
					{Rate: 1.0, GBps: 42, LatencyNs: 400},
				},
			}},
			MinKneeGBps: 40,
		},
	}
	return e
}

func TestCompareKneeShiftWarns(t *testing.T) {
	e := surfEntry(t)
	measured := e.Reference
	// Same knee bandwidth, knee found one rung later: drift worth
	// flagging, but warn-only — bandwidth is still in band.
	measured.Curves = append([]CurveRef(nil), e.Reference.Curves...)
	measured.Curves[0].KneeRate = 1.0
	rep := Compare(e, measured, e.Tolerance, false)
	if rep.Verdict != VerdictWarn {
		t.Fatalf("verdict = %q, want warn on knee-rate shift alone: %+v", rep.Verdict, rep.Violations)
	}
	m := metricByName(t, rep, "knee.rate[contiguous/r1]")
	if m.Verdict != VerdictWarn {
		t.Fatalf("knee.rate verdict = %q, want warn", m.Verdict)
	}
}

func TestCompareRungDelta(t *testing.T) {
	e := surfEntry(t)
	measured := e.Reference
	measured.Curves = append([]CurveRef(nil), e.Reference.Curves...)
	measured.Curves[0].Rungs = append([]RungRef(nil), e.Reference.Curves[0].Rungs...)
	// 15% rung band: a 20% sag on one rung fails and names the rung.
	measured.Curves[0].Rungs[1].GBps = 32
	rep := Compare(e, measured, e.Tolerance, false)
	if rep.Verdict != VerdictFail {
		t.Fatalf("verdict = %q, want fail", rep.Verdict)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "rung.gbps[contiguous/r1@0.5]") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v do not name the sagging rung", rep.Violations)
	}
}

func TestComparePartialTruncatedLadderSkipsKnee(t *testing.T) {
	e := surfEntry(t)
	measured := e.Reference
	measured.Curves = append([]CurveRef(nil), e.Reference.Curves...)
	// A deadline mid-ladder: only the first rung measured, and the knee
	// detector ran over that truncated curve — its "knee" reflects where
	// the ladder stopped, not drift.
	measured.Curves[0].Rungs = measured.Curves[0].Rungs[:1]
	measured.Curves[0].KneeRate = 0.25
	measured.Curves[0].KneeGBps = 20
	rep := Compare(e, measured, e.Tolerance, true)
	if rep.Verdict != VerdictPass {
		t.Fatalf("partial truncated-ladder verdict = %q, want pass: %v", rep.Verdict, rep.Violations)
	}
	for _, m := range rep.Metrics {
		if strings.HasPrefix(m.Name, "knee.") {
			t.Fatalf("truncated curve judged %s; knees must be skipped on partial ladders", m.Name)
		}
	}
	// A complete (non-partial) comparison of the same measurement still
	// fails: there the truncated ladder is real missing data.
	if rep := Compare(e, measured, e.Tolerance, false); rep.Verdict != VerdictFail {
		t.Fatalf("full verdict = %q, want fail", rep.Verdict)
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	e := surfEntry(t)
	rep := Compare(e, e.Reference, e.Tolerance, false)
	if rep.Verdict != VerdictPass || rep.DriftRatio != 0 {
		t.Fatalf("identical re-measurement: verdict=%q drift=%v, want pass/0", rep.Verdict, rep.DriftRatio)
	}
}

func TestScaleInjectsDetectableDrift(t *testing.T) {
	e := surfEntry(t)
	rep := Compare(e, e.Reference.Scale(0.8), e.Tolerance, false)
	if rep.Verdict != VerdictFail {
		t.Fatalf("verdict after 0.8x scale = %q, want fail", rep.Verdict)
	}
	// Scale must not mutate the receiver.
	if e.Reference.Curves[0].KneeGBps != 40 {
		t.Fatalf("Scale mutated its receiver: knee %v", e.Reference.Curves[0].KneeGBps)
	}
}

func TestFromResultOpNames(t *testing.T) {
	res := &core.Result{Kernels: []core.KernelResult{
		{Op: kernel.Copy, GBps: 12, BestSeconds: 3e-6},
		{Op: kernel.Triad, GBps: 10, BestSeconds: 4e-6},
	}}
	ref := FromResult(res)
	if len(ref.Kernels) != 2 || ref.Kernels[0].Op != "copy" || ref.Kernels[1].Op != "triad" {
		t.Fatalf("ops = %+v, want copy/triad", ref.Kernels)
	}
	if ref.Kernels[0].NsPerIter != 3000 {
		t.Fatalf("ns/iter = %v, want 3000", ref.Kernels[0].NsPerIter)
	}
	if ref.BestGBps != 12 {
		t.Fatalf("best = %v, want 12", ref.BestGBps)
	}
}

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"a", "cpu-nightly", "A.b_c-9", strings.Repeat("x", 64)} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", ".hidden", "-lead", "has space", "slash/y", strings.Repeat("x", 65)} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", bad)
		}
	}
}

func TestDirStorePersistence(t *testing.T) {
	dir := t.TempDir()
	st, warns, err := OpenDirStore(dir)
	if err != nil || len(warns) != 0 {
		t.Fatalf("open: %v (warns %v)", err, warns)
	}
	e := runEntry(t, Tolerance{})
	if err := st.Put(e); err != nil {
		t.Fatalf("put: %v", err)
	}

	// A fresh store over the same directory sees the entry — the
	// restart-survival property the sentinel depends on.
	st2, warns, err := OpenDirStore(dir)
	if err != nil || len(warns) != 0 {
		t.Fatalf("reopen: %v (warns %v)", err, warns)
	}
	got, ok, err := st2.Get(e.Name)
	if err != nil || !ok {
		t.Fatalf("get after reopen: ok=%v err=%v", ok, err)
	}
	if got.Fingerprint != e.Fingerprint || len(got.Reference.Kernels) != 2 {
		t.Fatalf("round-trip mangled entry: %+v", got)
	}
	if got.Tolerance.GBpsFrac != DefaultGBpsFrac {
		t.Fatalf("tolerance not persisted resolved: %+v", got.Tolerance)
	}

	// Re-recording the same name under a new fingerprint replaces the
	// old file; same fingerprint under a new name evicts the old name.
	e2 := e
	e2.Fingerprint = "fp-run-2"
	if err := st2.Put(e2); err != nil {
		t.Fatalf("re-put: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fp-run-1.json")); !os.IsNotExist(err) {
		t.Fatalf("stale fingerprint file survived re-put: %v", err)
	}
	e3 := e2
	e3.Name = "cpu-nightly-v2"
	if err := st2.Put(e3); err != nil {
		t.Fatalf("rename-put: %v", err)
	}
	if _, ok, _ := st2.Get("cpu-nightly"); ok {
		t.Fatal("old name survived a same-fingerprint re-record")
	}
	list, err := st2.List()
	if err != nil || len(list) != 1 || list[0].Name != "cpu-nightly-v2" {
		t.Fatalf("list = %+v (err %v), want single cpu-nightly-v2", list, err)
	}

	// Delete removes the file.
	if ok, err := st2.Delete("cpu-nightly-v2"); err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fp-run-2.json")); !os.IsNotExist(err) {
		t.Fatalf("entry file survived delete: %v", err)
	}
}

func TestDirStoreSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenDirStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := st.Put(runEntry(t, Tolerance{})); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz-corrupt.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, warns, err := OpenDirStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(warns) != 1 {
		t.Fatalf("warns = %v, want exactly the corrupt file flagged", warns)
	}
	if list, _ := st2.List(); len(list) != 1 {
		t.Fatalf("list = %+v, want the one good entry", list)
	}
}

func TestMemStoreFingerprintUniqueness(t *testing.T) {
	st := NewMemStore()
	e := runEntry(t, Tolerance{})
	if err := st.Put(e); err != nil {
		t.Fatalf("put: %v", err)
	}
	e2 := e
	e2.Name = "other-name"
	if err := st.Put(e2); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	if _, ok, _ := st.Get(e.Name); ok {
		t.Fatal("two names share one fingerprint")
	}
	list, _ := st.List()
	if len(list) != 1 {
		t.Fatalf("list = %d entries, want 1", len(list))
	}
}
