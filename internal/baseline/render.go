package baseline

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// WriteText renders a check report for a terminal: a verdict headline,
// the per-metric comparison table, and the violation lines operators
// read first.
func (r *Report) WriteText(w io.Writer) error {
	head := fmt.Sprintf("check %s — baseline %q (%s on %s): %s",
		strings.ToUpper(r.Verdict), r.Baseline, r.Kind, r.Target, verdictNote(r))
	if _, err := fmt.Fprintln(w, head); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  metric\treference\tmeasured\tdelta\tband\tverdict")
	for _, m := range r.Metrics {
		if m.Missing {
			fmt.Fprintf(tw, "  %s\t%.4g\t—\tmissing\t±%.1f%%\t%s\n",
				m.Name, m.Reference, m.Band*100, m.Verdict)
			continue
		}
		band := "—"
		if m.Band > 0 {
			band = fmt.Sprintf("±%.1f%%", m.Band*100)
		}
		fmt.Fprintf(tw, "  %s\t%.4g\t%.4g\t%+.2f%%\t%s\t%s\n",
			m.Name, m.Reference, m.Measured, m.Delta*100, band, m.Verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, v := range r.Violations {
		if _, err := fmt.Fprintln(w, "violation:", v); err != nil {
			return err
		}
	}
	return nil
}

func verdictNote(r *Report) string {
	note := fmt.Sprintf("drift ratio %.2f over %d metrics", r.DriftRatio, len(r.Metrics))
	if r.Partial {
		note += ", partial re-measurement"
	}
	return note
}
