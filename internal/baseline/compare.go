package baseline

import (
	"fmt"
	"math"
	"time"
)

// Verdicts, ordered by severity.
const (
	VerdictPass = "pass"
	VerdictWarn = "warn"
	VerdictFail = "fail"
)

// severity orders verdicts so the report verdict is the worst metric.
func severity(v string) int {
	switch v {
	case VerdictFail:
		return 2
	case VerdictWarn:
		return 1
	default:
		return 0
	}
}

// WorseVerdict returns the more severe of two verdicts.
func WorseVerdict(a, b string) string {
	if severity(b) > severity(a) {
		return b
	}
	return a
}

// Metric is one compared quantity: reference vs measured, the relative
// delta, the tolerance band it was judged against, and the margin by
// which it cleared (negative) or violated (positive) that band.
type Metric struct {
	// Name identifies the quantity: "gbps[copy]", "ns[triad]",
	// "knee.gbps[contiguous/r1]", "knee.rate[strided/r0.5]",
	// "idle.ns[contiguous/r1]", "rung.gbps[contiguous/r1@0.5]".
	Name      string  `json:"name"`
	Reference float64 `json:"reference"`
	Measured  float64 `json:"measured"`
	// Delta is (measured-reference)/reference; negative means slower
	// or lower-bandwidth than the reference.
	Delta float64 `json:"delta"`
	// Band is the two-sided relative tolerance this metric was judged
	// against.
	Band float64 `json:"band"`
	// Margin is |Delta|-Band: how far past the band (positive, a
	// violation) or inside it (negative, headroom) the measurement
	// landed. Exactly 0 — measured exactly at the band edge — passes.
	Margin  float64 `json:"margin"`
	Verdict string  `json:"verdict"`
	// Missing marks a reference metric the re-measurement did not
	// produce at all (fail unless the comparison is partial).
	Missing bool `json:"missing,omitempty"`
}

// Report is the structured verdict of one check: the overall verdict,
// every compared metric, and human-readable violation lines naming
// metric and margin for each failure.
type Report struct {
	Baseline    string `json:"baseline"`
	Target      string `json:"target"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	// Verdict is the worst per-metric verdict: pass, warn or fail.
	Verdict string   `json:"verdict"`
	Metrics []Metric `json:"metrics"`
	// Violations names each failed metric with its margin — the lines
	// an operator reads first.
	Violations []string `json:"violations,omitempty"`
	// DriftRatio is max(|delta|/band) over all banded metrics: <= 1
	// means everything within tolerance, > 1 quantifies the worst
	// violation. Exported per baseline as a gauge.
	DriftRatio float64 `json:"drift_ratio"`
	// Partial marks a verdict computed from an incomplete
	// re-measurement (check canceled or deadlined mid-surface):
	// reference metrics without a measured counterpart are skipped
	// rather than failed.
	Partial bool      `json:"partial,omitempty"`
	Checked time.Time `json:"checked"`
}

// cmp accumulates metrics into a report.
type cmp struct {
	rep  *Report
	warn float64
}

// add judges one banded metric. A non-positive band disables the
// family: the metric is skipped entirely.
func (c *cmp) add(name string, ref, got, band float64) {
	if band <= 0 {
		return
	}
	var delta float64
	switch {
	case ref != 0:
		delta = (got - ref) / ref
	case got != 0:
		// A zero reference with a nonzero measurement has no relative
		// delta; treat it as 100% drift rather than emitting Inf
		// (which JSON cannot carry).
		delta = 1
	}
	m := Metric{Name: name, Reference: ref, Measured: got, Delta: delta, Band: band}
	abs := math.Abs(delta)
	m.Margin = abs - band
	switch {
	case m.Margin > 0:
		m.Verdict = VerdictFail
	case c.warn > 0 && abs > c.warn*band:
		m.Verdict = VerdictWarn
	default:
		m.Verdict = VerdictPass
	}
	if ratio := abs / band; ratio > c.rep.DriftRatio {
		c.rep.DriftRatio = ratio
	}
	c.push(m)
}

// addShift judges a warn-only identity metric (the knee rate): any
// difference is drift worth flagging, but a shifted knee alone — with
// knee bandwidth still in band — is a warning, never a failure.
func (c *cmp) addShift(name string, ref, got float64) {
	m := Metric{Name: name, Reference: ref, Measured: got}
	if ref != 0 {
		m.Delta = (got - ref) / ref
	} else if got != 0 {
		m.Delta = 1
	}
	if math.Abs(m.Delta) > 1e-9 {
		m.Verdict = VerdictWarn
	} else {
		m.Verdict = VerdictPass
	}
	c.push(m)
}

// addMissing records a reference metric absent from the
// re-measurement.
func (c *cmp) addMissing(name string, ref, band float64) {
	if band <= 0 {
		return
	}
	if c.rep.Partial {
		// An incomplete measurement legitimately lacks the tail of the
		// reference; skip rather than fail.
		return
	}
	c.push(Metric{
		Name: name, Reference: ref, Delta: -1, Band: band, Margin: 1,
		Verdict: VerdictFail, Missing: true,
	})
}

func (c *cmp) push(m Metric) {
	c.rep.Metrics = append(c.rep.Metrics, m)
	c.rep.Verdict = WorseVerdict(c.rep.Verdict, m.Verdict)
	if m.Verdict == VerdictFail {
		line := fmt.Sprintf("%s: measured %.4g vs reference %.4g (delta %+.2f%%, band ±%.2f%%, margin %.2f%%)",
			m.Name, m.Measured, m.Reference, m.Delta*100, m.Band*100, m.Margin*100)
		if m.Missing {
			line = fmt.Sprintf("%s: reference %.4g missing from re-measurement", m.Name, m.Reference)
		}
		c.rep.Violations = append(c.rep.Violations, line)
	}
}

// Compare verdicts a re-measurement against a baseline entry.
// measured is the digest of the fresh result (FromResult/FromSurface);
// tol is the resolved tolerance (an override or the entry's own);
// partial marks an incomplete measurement, whose missing metrics are
// skipped instead of failed and whose report is tagged Partial.
//
// Bands are two-sided and inclusive: |delta| == band passes, only
// |delta| strictly greater than the band fails.
func Compare(e Entry, measured Reference, tol Tolerance, partial bool) Report {
	rep := &Report{
		Baseline:    e.Name,
		Target:      e.Target,
		Kind:        e.Kind,
		Fingerprint: e.Fingerprint,
		Verdict:     VerdictPass,
		Partial:     partial,
		Checked:     time.Now().UTC(),
	}
	c := &cmp{rep: rep, warn: tol.WarnFrac}

	// Run metrics: kernels matched by op.
	got := make(map[string]KernelRef, len(measured.Kernels))
	for _, k := range measured.Kernels {
		got[k.Op] = k
	}
	for _, ref := range e.Reference.Kernels {
		k, ok := got[ref.Op]
		if !ok {
			c.addMissing("gbps["+ref.Op+"]", ref.GBps, tol.GBpsFrac)
			c.addMissing("ns["+ref.Op+"]", ref.NsPerIter, tol.NsFrac)
			continue
		}
		c.add("gbps["+ref.Op+"]", ref.GBps, k.GBps, tol.GBpsFrac)
		c.add("ns["+ref.Op+"]", ref.NsPerIter, k.NsPerIter, tol.NsFrac)
	}

	// Surface metrics: curves matched by (pattern, read fraction),
	// rungs by ladder rate.
	for _, refCurve := range e.Reference.Curves {
		cname := curveLabel(refCurve.Pattern, refCurve.ReadFrac)
		mc, ok := findCurve(measured.Curves, refCurve)
		if !ok {
			c.addMissing("knee.gbps["+cname+"]", refCurve.KneeGBps, tol.KneeFrac)
			continue
		}
		// A knee detected on a rung-truncated ladder is an artifact of
		// where the deadline landed, not a drift signal: judge the knee
		// only when every reference rung was re-measured.
		if !partial || len(mc.Rungs) >= len(refCurve.Rungs) {
			c.add("knee.gbps["+cname+"]", refCurve.KneeGBps, mc.KneeGBps, tol.KneeFrac)
			c.addShift("knee.rate["+cname+"]", refCurve.KneeRate, mc.KneeRate)
		}
		c.add("idle.ns["+cname+"]", refCurve.IdleLatencyNs, mc.IdleLatencyNs, tol.NsFrac)
		rungs := make(map[float64]RungRef, len(mc.Rungs))
		for _, r := range mc.Rungs {
			rungs[r.Rate] = r
		}
		for _, rr := range refCurve.Rungs {
			rname := fmt.Sprintf("rung.gbps[%s@%g]", cname, rr.Rate)
			mr, ok := rungs[rr.Rate]
			if !ok {
				c.addMissing(rname, rr.GBps, tol.RungFrac)
				continue
			}
			c.add(rname, rr.GBps, mr.GBps, tol.RungFrac)
		}
	}
	if len(e.Reference.Curves) > 0 && !partial {
		c.add("knee.gbps[min]", e.Reference.MinKneeGBps, measured.MinKneeGBps, tol.KneeFrac)
	}
	return *rep
}

func curveLabel(pattern string, readFrac float64) string {
	return fmt.Sprintf("%s/r%g", pattern, readFrac)
}

func findCurve(curves []CurveRef, want CurveRef) (CurveRef, bool) {
	for _, c := range curves {
		if c.Pattern == want.Pattern && c.ReadFrac == want.ReadFrac {
			return c, true
		}
	}
	return CurveRef{}, false
}
