// Package link models host-device interconnects (PCIe-style) with the
// standard latency + bandwidth + per-transfer setup model.
//
// MP-STREAM uses the link twice: explicitly, when the stream source or
// destination is host memory (the benchmark's "source/destination of
// streams" parameter), and implicitly, because every kernel launch and
// completion crosses the link — the overhead that dominates small-array
// bandwidth in Figure 1(a).
package link

import (
	"fmt"
	"time"
)

// Config describes one direction-symmetric link.
type Config struct {
	Name string
	// GBps is the effective per-direction data bandwidth in GB/s (1e9).
	GBps float64
	// LatencyUs is the one-way message latency in microseconds.
	LatencyUs float64
	// SetupUs is the per-transfer software/DMA setup cost in microseconds
	// (driver call, descriptor ring, doorbell).
	SetupUs float64
	// MaxPayloadBytes caps a single DMA transfer; larger transfers split
	// and pay the setup once per chunk. Zero means unlimited.
	MaxPayloadBytes uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.GBps <= 0:
		return fmt.Errorf("link %q: bandwidth must be positive", c.Name)
	case c.LatencyUs < 0 || c.SetupUs < 0:
		return fmt.Errorf("link %q: latencies must be non-negative", c.Name)
	}
	return nil
}

// Link is a configured interconnect. The zero value is not usable; use New.
type Link struct {
	cfg Config
}

// New builds a link, panicking on invalid configuration (configurations
// are compile-time constants of the device packages).
func New(cfg Config) *Link {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Link{cfg: cfg}
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// TransferSeconds returns the time to move n bytes one way: latency +
// per-chunk setup + n/bandwidth.
func (l *Link) TransferSeconds(n uint64) float64 {
	if n == 0 {
		return 0
	}
	chunks := uint64(1)
	if l.cfg.MaxPayloadBytes > 0 {
		chunks = (n + l.cfg.MaxPayloadBytes - 1) / l.cfg.MaxPayloadBytes
	}
	return l.cfg.LatencyUs*1e-6 +
		float64(chunks)*l.cfg.SetupUs*1e-6 +
		float64(n)/(l.cfg.GBps*1e9)
}

// Transfer returns TransferSeconds as a time.Duration.
func (l *Link) Transfer(n uint64) time.Duration {
	return time.Duration(l.TransferSeconds(n) * float64(time.Second))
}

// RoundTripSeconds returns the time for a minimal command round trip
// (doorbell + completion), the floor for any launch/synchronize pair.
func (l *Link) RoundTripSeconds() float64 {
	return 2 * (l.cfg.LatencyUs + l.cfg.SetupUs) * 1e-6
}

// EffectiveGBps reports the achieved bandwidth for a transfer of n bytes,
// exposing the latency wall at small sizes.
func (l *Link) EffectiveGBps(n uint64) float64 {
	s := l.TransferSeconds(n)
	if s <= 0 {
		return 0
	}
	return float64(n) / s / 1e9
}
