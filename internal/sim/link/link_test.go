package link

import (
	"math"
	"testing"
	"testing/quick"
)

func gen3x8() Config {
	return Config{Name: "gen3x8", GBps: 6.0, LatencyUs: 1.5, SetupUs: 8, MaxPayloadBytes: 4 << 20}
}

func TestValidate(t *testing.T) {
	if err := gen3x8().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "nobw", GBps: 0},
		{Name: "neglat", GBps: 1, LatencyUs: -1},
		{Name: "negsetup", GBps: 1, SetupUs: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %q accepted", c.Name)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config must panic")
		}
	}()
	New(Config{})
}

func TestZeroBytesFree(t *testing.T) {
	l := New(gen3x8())
	if l.TransferSeconds(0) != 0 {
		t.Error("zero-byte transfer must take zero time")
	}
	if l.EffectiveGBps(0) != 0 {
		t.Error("zero-byte effective bandwidth must be 0")
	}
}

func TestLargeTransferApproachesPeak(t *testing.T) {
	l := New(gen3x8())
	eff := l.EffectiveGBps(1 << 30)
	// Chunk setup costs keep it a bit under peak.
	if eff < 0.98*6.0 || eff > 6.0 {
		t.Errorf("1 GiB effective = %.3f GB/s, want ~6", eff)
	}
}

func TestSmallTransferLatencyBound(t *testing.T) {
	l := New(gen3x8())
	eff := l.EffectiveGBps(4096)
	// 4 KB over ~9.5us setup+latency: well under 1 GB/s.
	if eff > 0.5 {
		t.Errorf("4 KB effective = %.3f GB/s, want latency-dominated (<0.5)", eff)
	}
}

func TestChunking(t *testing.T) {
	cfg := gen3x8()
	cfg.MaxPayloadBytes = 1 << 20
	l := New(cfg)
	// 4 MB = 4 chunks: pays setup 4x.
	want := 1.5e-6 + 4*8e-6 + float64(4<<20)/6e9
	got := l.TransferSeconds(4 << 20)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("chunked transfer = %v, want %v", got, want)
	}
	// Unlimited payload pays setup once.
	cfg.MaxPayloadBytes = 0
	l2 := New(cfg)
	want2 := 1.5e-6 + 8e-6 + float64(4<<20)/6e9
	if got2 := l2.TransferSeconds(4 << 20); math.Abs(got2-want2) > 1e-12 {
		t.Errorf("unchunked transfer = %v, want %v", got2, want2)
	}
}

func TestRoundTrip(t *testing.T) {
	l := New(gen3x8())
	want := 2 * (1.5 + 8) * 1e-6
	if got := l.RoundTripSeconds(); math.Abs(got-want) > 1e-15 {
		t.Errorf("round trip = %v, want %v", got, want)
	}
}

func TestTransferDuration(t *testing.T) {
	l := New(gen3x8())
	d := l.Transfer(6_000_000_000) // 1 second of payload at 6 GB/s
	if d.Seconds() < 1.0 || d.Seconds() > 1.02 {
		t.Errorf("duration = %v, want ~1s plus chunk setup", d)
	}
}

// Property: transfer time is monotone in size and effective bandwidth
// never exceeds the configured peak.
func TestQuickMonotoneAndBounded(t *testing.T) {
	l := New(gen3x8())
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		if l.TransferSeconds(x) > l.TransferSeconds(y) {
			return false
		}
		return l.EffectiveGBps(y) <= l.Config().GBps+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
