// Package dram implements a transaction-level DRAM and memory-controller
// timing model.
//
// The model is deliberately mechanical rather than curve-fit: the
// behaviours MP-STREAM measures — burst-granularity waste for narrow
// accesses, row-buffer locality for contiguous streams, row thrash for
// large strides, read/write turnaround on shared buses, limited
// memory-level parallelism — all emerge from the standard DRAM structure:
//
//   - addresses map to (channel, bank, row) with rows interleaved across
//     banks so contiguous streams overlap activations with transfers;
//   - the data bus moves BurstBytes per burst, so a 4-byte request still
//     occupies a full burst (the FPGA no-vectorization penalty);
//   - a row hit transfers back-to-back (CAS pipelining); a row miss busies
//     its bank for RowMissNs before data can move;
//   - the controller batches reads and writes (write buffering) and pays
//     TurnaroundNs when the bus changes direction between batches;
//   - at most MaxOutstanding transactions per channel are in flight
//     (controller queue / MSHR limit), bounding latency overlap;
//   - refresh steals RefreshOverhead of wall time.
//
// Timing uses float64 seconds internally; a Service run is single-threaded
// and deterministic.
package dram

import (
	"fmt"
	"sort"

	"mpstream/internal/obs"
	"mpstream/internal/sim/mem"
)

// Config describes one DRAM subsystem (all channels identical).
type Config struct {
	Name string

	Channels        int     // independent channels
	BanksPerChannel int     // banks per channel
	RowBytes        uint32  // row-buffer size per bank
	BurstBytes      uint32  // minimum bus transfer granularity
	BusGBps         float64 // per-channel peak data-bus bandwidth, GB/s (1e9)

	RowMissNs    float64 // precharge+activate+CAS before data on a row miss
	TurnaroundNs float64 // bus read<->write turnaround penalty
	BatchSize    int     // same-direction batch length per channel
	ReorderWin   int     // controller reorder-buffer depth (requests)

	// ActWindowNs / ActsPerWindow model the tFAW constraint: at most
	// ActsPerWindow row activations may start in any ActWindowNs window
	// per channel. Zero ActWindowNs disables the limit. This is the
	// mechanism that caps row-miss-storm bandwidth on large strides.
	ActWindowNs   float64
	ActsPerWindow int

	MaxOutstanding int     // in-flight transactions per channel
	RefreshLoss    float64 // fraction of time lost to refresh, e.g. 0.03

	// InterleaveBytes is the channel-interleave granularity. Zero selects
	// per-stream placement: a request's Stream tag picks its channel,
	// modelling FPGA boards whose DDR banks hold whole buffers.
	InterleaveBytes uint32

	// HashChannels XOR-folds the block address when picking a channel,
	// the standard defence against power-of-two strides camping on one
	// channel. CPUs and GPUs hash; simple FPGA shells do not.
	HashChannels bool

	// HashBanks XOR-folds the row index when picking a bank, so
	// power-of-two strides spread across banks (GPU memory controllers
	// hash banks; simple FPGA shells map them linearly).
	HashBanks bool

	// InitialLatencyNs is the cold-start latency before the first data
	// beat (command path, first activation).
	InitialLatencyNs float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram %q: channels must be positive", c.Name)
	case c.BanksPerChannel <= 0:
		return fmt.Errorf("dram %q: banks must be positive", c.Name)
	case !mem.CheckPow2(c.RowBytes):
		return fmt.Errorf("dram %q: row bytes %d must be a power of two", c.Name, c.RowBytes)
	case !mem.CheckPow2(c.BurstBytes):
		return fmt.Errorf("dram %q: burst bytes %d must be a power of two", c.Name, c.BurstBytes)
	case c.RowBytes < c.BurstBytes:
		return fmt.Errorf("dram %q: row smaller than burst", c.Name)
	case c.BusGBps <= 0:
		return fmt.Errorf("dram %q: bus bandwidth must be positive", c.Name)
	case c.RowMissNs < 0 || c.TurnaroundNs < 0 || c.InitialLatencyNs < 0:
		return fmt.Errorf("dram %q: latencies must be non-negative", c.Name)
	case c.ActWindowNs < 0:
		return fmt.Errorf("dram %q: activate window must be non-negative", c.Name)
	case c.RefreshLoss < 0 || c.RefreshLoss >= 1:
		return fmt.Errorf("dram %q: refresh loss %v out of [0,1)", c.Name, c.RefreshLoss)
	case c.InterleaveBytes != 0 && !mem.CheckPow2(c.InterleaveBytes):
		return fmt.Errorf("dram %q: interleave bytes %d must be a power of two", c.Name, c.InterleaveBytes)
	}
	return nil
}

// PeakGBps returns the aggregate peak data-bus bandwidth in GB/s.
func (c Config) PeakGBps() float64 {
	return float64(c.Channels) * c.BusGBps
}

// withDefaults fills unset tunables.
func (c Config) withDefaults() Config {
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.ReorderWin == 0 {
		c.ReorderWin = 2 * c.BatchSize * c.Channels
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 16
	}
	if c.ActWindowNs > 0 && c.ActsPerWindow == 0 {
		c.ActsPerWindow = 4
	}
	return c
}

// ChannelOf reports which channel the given request address and stream tag
// map to. It is exported so placement behaviour (interleaving, hashing,
// per-stream banking) is directly testable and reportable.
func (c Config) ChannelOf(addr uint64, stream uint8) int {
	ch, _ := c.route(addr, stream)
	return ch
}

// route resolves a request to (channel index, channel-local address).
func (c Config) route(addr uint64, stream uint8) (int, uint64) {
	if c.InterleaveBytes == 0 {
		return int(stream) % c.Channels, addr
	}
	block := addr / uint64(c.InterleaveBytes)
	sel := block
	if c.HashChannels {
		sel = hashBlock(block)
	}
	chIdx := int(sel % uint64(c.Channels))
	chAddr := (block/uint64(c.Channels))*uint64(c.InterleaveBytes) +
		addr%uint64(c.InterleaveBytes)
	return chIdx, chAddr
}

// Result summarizes one Service run.
type Result struct {
	Seconds     float64 // elapsed simulated time
	Txns        uint64  // transactions serviced
	Bytes       uint64  // requested bytes (what the kernel asked for)
	BusBytes    uint64  // bytes actually moved on the bus (burst granularity)
	RowHits     uint64
	RowMisses   uint64
	Turnarounds uint64
	Drained     bool // source fully consumed (false when bounded)
}

// RequestedGBps is the bandwidth the benchmark observes: requested bytes
// over elapsed time, in GB/s.
func (r Result) RequestedGBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Seconds / 1e9
}

// BusGBps is the raw bus traffic rate, including burst-granularity waste.
func (r Result) BusGBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.BusBytes) / r.Seconds / 1e9
}

// RowHitRate returns the fraction of transactions that hit an open row.
func (r Result) RowHitRate() float64 {
	total := r.RowHits + r.RowMisses
	if total == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(total)
}

// Model is a DRAM subsystem ready to service request streams. Each Service
// call runs on fresh state; a Model is safe for sequential reuse.
type Model struct {
	cfg Config
}

// New builds a model, panicking on invalid configuration (configurations
// are compile-time constants of the device packages; an invalid one is a
// programming error).
func New(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Model{cfg: cfg.withDefaults()}
}

// Config returns the model's configuration (with defaults applied).
func (m *Model) Config() Config { return m.cfg }

type bankState struct {
	openRow int64 // -1 when closed
	freeAt  float64
}

type chanState struct {
	busFree float64
	lastOp  mem.Op
	hasOp   bool
	banks   []bankState
	// completion ring for the outstanding-transaction window
	ring []float64
	head int
	// activation ring for the tFAW window (nil when disabled)
	actRing []float64
	actHead int
}

func (cs *chanState) gate() float64 {
	return cs.ring[cs.head]
}

func (cs *chanState) complete(t float64) {
	cs.ring[cs.head] = t
	cs.head = (cs.head + 1) % len(cs.ring)
}

// activate enforces the tFAW limit: the new activation may not start
// before the ActsPerWindow-th previous activation plus the window. It
// returns the actual activation time and records it.
func (cs *chanState) activate(at, windowNs float64) float64 {
	if cs.actRing == nil {
		return at
	}
	if g := cs.actRing[cs.actHead] + windowNs; at < g {
		at = g
	}
	cs.actRing[cs.actHead] = at
	cs.actHead = (cs.actHead + 1) % len(cs.actRing)
	return at
}

// Service drains src through the memory system and returns the timing
// result. It is equivalent to ServiceBounded(src, 0).
func (m *Model) Service(src mem.Source) Result {
	return m.ServiceBounded(src, 0)
}

// newChanStates builds cold per-channel controller state.
func (m *Model) newChanStates() []chanState {
	cfg := m.cfg
	chans := make([]chanState, cfg.Channels)
	for i := range chans {
		chans[i] = chanState{
			banks: make([]bankState, cfg.BanksPerChannel),
			ring:  make([]float64, cfg.MaxOutstanding),
		}
		if cfg.ActWindowNs > 0 {
			chans[i].actRing = make([]float64, cfg.ActsPerWindow)
			for a := range chans[i].actRing {
				chans[i].actRing[a] = -cfg.ActWindowNs
			}
		}
		for b := range chans[i].banks {
			chans[i].banks[b].openRow = -1
		}
	}
	return chans
}

// LoadedOptions parameterizes an open-loop ServiceLoaded run.
type LoadedOptions struct {
	// InterArrivalNs spaces background arrivals: background request i
	// arrives at i * InterArrivalNs, so it sets the offered injection
	// rate (request size / InterArrivalNs bytes per ns). It must be
	// positive when a background source is given.
	InterArrivalNs float64
	// MaxTxns bounds the run; 0 services both sources fully.
	MaxTxns uint64
	// WarmupTxns excludes the first transactions from the latency
	// statistics (they still run and occupy the system): the measurement
	// should see the steady state, not the cold ramp.
	WarmupTxns uint64
}

// LoadedResult extends Result with the open-loop latency accounting a
// bandwidth–latency surface needs: per-request latency (completion
// minus arrival) over all requests and over the probe chain alone.
type LoadedResult struct {
	Result
	// MeasuredTxns counts the requests included in the latency
	// statistics (serviced transactions past the warmup), and
	// MeasuredSpanNs the simulated time they cover.
	MeasuredTxns   uint64
	MeasuredSpanNs float64
	// TotalLatencyNs and MaxLatencyNs aggregate completion-minus-arrival
	// over the measured requests.
	TotalLatencyNs float64
	MaxLatencyNs   float64
	// Probe accounting: the dependent-chain requests only.
	ProbeTxns    uint64
	ProbeTotalNs float64
	ProbeMaxNs   float64
}

// AvgLatencyNs returns the mean measured request latency.
func (r LoadedResult) AvgLatencyNs() float64 {
	if r.MeasuredTxns == 0 {
		return 0
	}
	return r.TotalLatencyNs / float64(r.MeasuredTxns)
}

// ProbeAvgNs returns the mean probe-hop latency — the loaded latency a
// pointer chase observes under the run's background traffic.
func (r LoadedResult) ProbeAvgNs() float64 {
	if r.ProbeTxns == 0 {
		return 0
	}
	return r.ProbeTotalNs / float64(r.ProbeTxns)
}

// AvgOccupancy returns the time-averaged number of in-flight
// transactions over the measured span (Little's law: total latency
// over the elapsed time the measured requests cover, so a warmup does
// not dilute it).
func (r LoadedResult) AvgOccupancy() float64 {
	if r.MeasuredSpanNs <= 0 {
		return 0
	}
	return r.TotalLatencyNs / r.MeasuredSpanNs
}

// ServiceLoaded measures loaded latency: it services an open-loop
// background stream (request i arrives at i*InterArrivalNs, setting
// the offered injection rate) merged by arrival time with a dependent
// probe chain (a pointer chase: hop n+1 arrives only when hop n's data
// returned). Requests are serviced first-come first-served in arrival
// order, and every latency is completion minus arrival.
//
// The probe's average latency is the loaded latency of the
// bandwidth–latency surface methodology: offered background load well
// below capacity leaves it near the idle round trip; as offered load
// approaches the sustainable bandwidth, each probe round trip spans
// more and more background service time and the latency follows the
// queueing-theory hockey stick, diverging past saturation.
//
// Either source may be nil: a nil background measures the idle chase
// latency, a nil probe measures pure open-loop background service.
// The open-loop path deliberately skips the closed-loop reorder/batch
// machinery of Service: a latency probe measures the controller as the
// traffic presents itself.
func (m *Model) ServiceLoaded(bg, probe mem.Source, opts LoadedOptions) LoadedResult {
	cfg := m.cfg
	chans := m.newChanStates()

	var res LoadedResult
	burstNs := float64(cfg.BurstBytes) / cfg.BusGBps
	start := cfg.InitialLatencyNs
	inter := opts.InterArrivalNs
	if inter <= 0 {
		inter = burstNs // back-to-back at bus speed when unset
	}

	// Head-of-stream state for the arrival-order merge.
	var (
		bgReq, probeReq         mem.Request
		bgOK, probeOK           bool
		bgArrival, probeArrival float64
		slot                    int
	)
	pullBg := func() {
		if bg == nil {
			bgOK = false
			return
		}
		if bgReq, bgOK = bg.Next(); bgOK {
			bgArrival = start + float64(slot)*inter
			slot++
		}
	}
	pullProbe := func(after float64) {
		if probe == nil {
			probeOK = false
			return
		}
		if probeReq, probeOK = probe.Next(); probeOK {
			probeArrival = after
		}
	}
	pullBg()
	pullProbe(start)

	// maxEnd tracks the simulated frontier; measureStart marks it when
	// the warmup completes, bounding the measured span for occupancy.
	maxEnd, measureStart := start, start
	for bgOK || probeOK {
		if opts.MaxTxns > 0 && res.Txns >= opts.MaxTxns {
			break
		}
		// Background goes first on ties: the probe joins the queue behind
		// traffic already in flight.
		warm := res.Txns >= opts.WarmupTxns
		if warm && res.MeasuredTxns == 0 {
			measureStart = maxEnd
		}
		var end float64
		if bgOK && (!probeOK || bgArrival <= probeArrival) {
			end = m.issue(&res.Result, chans, bgReq, burstNs, bgArrival)
			if warm {
				record(&res, end-bgArrival, false)
			}
			pullBg()
		} else {
			end = m.issue(&res.Result, chans, probeReq, burstNs, probeArrival)
			if warm {
				record(&res, end-probeArrival, true)
			}
			pullProbe(end)
		}
		if end > maxEnd {
			maxEnd = end
		}
	}
	res.MeasuredSpanNs = maxEnd - measureStart
	finish(&res.Result, chans, start, cfg, !bgOK && !probeOK)
	return res
}

// record accumulates one serviced request's latency.
func record(res *LoadedResult, lat float64, isProbe bool) {
	res.MeasuredTxns++
	res.TotalLatencyNs += lat
	if lat > res.MaxLatencyNs {
		res.MaxLatencyNs = lat
	}
	if isProbe {
		res.ProbeTxns++
		res.ProbeTotalNs += lat
		if lat > res.ProbeMaxNs {
			res.ProbeMaxNs = lat
		}
	}
}

// ServiceBounded services at most maxTxns transactions (0 = unlimited).
// Bounded runs are the basis of sampled simulation for very large arrays.
func (m *Model) ServiceBounded(src mem.Source, maxTxns uint64) Result {
	cfg := m.cfg
	chans := m.newChanStates()

	var res Result
	burstNs := float64(cfg.BurstBytes) / cfg.BusGBps // ns per burst (GB/s == B/ns)
	start := cfg.InitialLatencyNs

	// Reorder buffer: the controller looks ReorderWin requests ahead and
	// issues same-direction batches of up to BatchSize.
	buf := make([]mem.Request, 0, cfg.ReorderWin)
	fill := func() {
		for len(buf) < cfg.ReorderWin {
			r, ok := src.Next()
			if !ok {
				return
			}
			buf = append(buf, r)
		}
	}
	fill()

	curOp := mem.Read
	if len(buf) > 0 {
		curOp = buf[0].Op
	}

	// BatchSize is per channel; the controller issues a global batch
	// sized so each channel sees a full same-direction run.
	globalBatch := cfg.BatchSize * cfg.Channels
	batch := make([]mem.Request, 0, globalBatch)

	for len(buf) > 0 {
		if maxTxns > 0 && res.Txns >= maxTxns {
			finish(&res, chans, start, cfg, false)
			return res
		}
		// Collect one batch of the current direction, then issue it in
		// address order (first-ready first-served approximation: row hits
		// group together instead of ping-ponging between arrays).
		batch = batch[:0]
		for i := 0; i < len(buf) && len(batch) < globalBatch; {
			if buf[i].Op != curOp {
				i++
				continue
			}
			batch = append(batch, buf[i])
			buf = append(buf[:i], buf[i+1:]...)
		}
		issued := len(batch)
		sort.Slice(batch, func(i, j int) bool { return batch[i].Addr < batch[j].Addr })
		for _, r := range batch {
			m.issue(&res, chans, r, burstNs, start)
			if maxTxns > 0 && res.Txns >= maxTxns {
				finish(&res, chans, start, cfg, false)
				return res
			}
		}
		fill()
		if issued == 0 {
			// Nothing of the current direction pending: switch.
			curOp = otherOp(curOp)
			continue
		}
		// Prefer staying in direction while work remains; switch when the
		// batch filled or the direction drained.
		if hasOp(buf, otherOp(curOp)) {
			curOp = otherOp(curOp)
		}
	}
	finish(&res, chans, start, cfg, true)
	return res
}

// hashBlock XOR-folds the upper address bits into the low bits so that
// any fixed power-of-two stride still spreads across channels.
func hashBlock(b uint64) uint64 {
	h := b
	h ^= b >> 7
	h ^= b >> 13
	h ^= b >> 21
	return h
}

func otherOp(o mem.Op) mem.Op {
	if o == mem.Read {
		return mem.Write
	}
	return mem.Read
}

func hasOp(buf []mem.Request, op mem.Op) bool {
	for _, r := range buf {
		if r.Op == op {
			return true
		}
	}
	return false
}

// issue times a single transaction, returning its completion time. All
// times are nanoseconds; earliest is the first instant the transaction
// may begin (the run start for closed-loop service, the request's
// arrival for open-loop service).
func (m *Model) issue(res *Result, chans []chanState, r mem.Request, burstNs, earliest float64) float64 {
	cfg := m.cfg

	chIdx, chAddr := cfg.route(r.Addr, r.Stream)
	ch := &chans[chIdx]

	// Rows interleave across banks: consecutive rows live in consecutive
	// banks, so streaming overlaps the next bank's activation. The open
	// row is identified by the full row index, which is unique whatever
	// the bank mapping.
	rowIdx := chAddr / uint64(cfg.RowBytes)
	bankSel := rowIdx
	if cfg.HashBanks {
		bankSel = hashBlock(rowIdx)
	}
	bankIdx := int(bankSel % uint64(cfg.BanksPerChannel))
	row := int64(rowIdx)
	bank := &ch.banks[bankIdx]

	// Direction turnaround applies when the bus flips direction.
	if ch.hasOp && ch.lastOp != r.Op {
		ch.busFree += cfg.TurnaroundNs
		res.Turnarounds++
	}
	ch.lastOp, ch.hasOp = r.Op, true

	bursts := mem.LinesTouched(r, cfg.BurstBytes)
	transfer := float64(bursts) * burstNs

	var ready float64
	if bank.openRow == row {
		// Row hit: CAS pipelines with the previous transfer.
		ready = earliest
		res.RowHits++
	} else {
		// Row miss: the bank precharges/activates after its previous use,
		// subject to the channel's tFAW activation-rate limit.
		base := bank.freeAt
		if base < earliest {
			base = earliest
		}
		act := ch.activate(base, cfg.ActWindowNs)
		ready = act + cfg.RowMissNs
		bank.openRow = row
		res.RowMisses++
	}

	issueAt := ch.busFree
	if issueAt < ready {
		issueAt = ready
	}
	if g := ch.gate(); issueAt < g {
		issueAt = g // outstanding-window limit
	}
	if issueAt < earliest {
		issueAt = earliest
	}
	end := issueAt + transfer

	ch.busFree = end
	bank.freeAt = end
	ch.complete(end)

	res.Txns++
	res.Bytes += uint64(r.Size)
	res.BusBytes += uint64(bursts) * uint64(cfg.BurstBytes)
	return end
}

func finish(res *Result, chans []chanState, start float64, cfg Config, drained bool) {
	endNs := start
	for i := range chans {
		if chans[i].busFree > endNs {
			endNs = chans[i].busFree
		}
	}
	elapsedNs := endNs
	if res.Txns == 0 {
		elapsedNs = 0
	}
	// Refresh steals a fraction of wall time.
	if cfg.RefreshLoss > 0 {
		elapsedNs /= 1 - cfg.RefreshLoss
	}
	res.Seconds = elapsedNs * 1e-9
	res.Drained = drained
	// Every Service* completion path funnels through finish exactly
	// once, so this is the single telemetry hook for serviced traffic.
	obs.AddDRAMRequests(res.Txns)
}
