// Package dram implements a transaction-level DRAM and memory-controller
// timing model.
//
// The model is deliberately mechanical rather than curve-fit: the
// behaviours MP-STREAM measures — burst-granularity waste for narrow
// accesses, row-buffer locality for contiguous streams, row thrash for
// large strides, read/write turnaround on shared buses, limited
// memory-level parallelism — all emerge from the standard DRAM structure:
//
//   - addresses map to (channel, bank, row) with rows interleaved across
//     banks so contiguous streams overlap activations with transfers;
//   - the data bus moves BurstBytes per burst, so a 4-byte request still
//     occupies a full burst (the FPGA no-vectorization penalty);
//   - a row hit transfers back-to-back (CAS pipelining); a row miss busies
//     its bank for RowMissNs before data can move;
//   - the controller batches reads and writes (write buffering) and pays
//     TurnaroundNs when the bus changes direction between batches;
//   - at most MaxOutstanding transactions per channel are in flight
//     (controller queue / MSHR limit), bounding latency overlap;
//   - refresh steals RefreshOverhead of wall time.
//
// Timing uses float64 seconds internally; a Service run is single-threaded
// and deterministic.
package dram

import (
	"fmt"
	"math/bits"
	"slices"
	"sync/atomic"

	"mpstream/internal/obs"
	"mpstream/internal/sim/mem"
)

// Config describes one DRAM subsystem (all channels identical).
type Config struct {
	Name string

	Channels        int     // independent channels
	BanksPerChannel int     // banks per channel
	RowBytes        uint32  // row-buffer size per bank
	BurstBytes      uint32  // minimum bus transfer granularity
	BusGBps         float64 // per-channel peak data-bus bandwidth, GB/s (1e9)

	RowMissNs    float64 // precharge+activate+CAS before data on a row miss
	TurnaroundNs float64 // bus read<->write turnaround penalty
	BatchSize    int     // same-direction batch length per channel
	ReorderWin   int     // controller reorder-buffer depth (requests)

	// ActWindowNs / ActsPerWindow model the tFAW constraint: at most
	// ActsPerWindow row activations may start in any ActWindowNs window
	// per channel. Zero ActWindowNs disables the limit. This is the
	// mechanism that caps row-miss-storm bandwidth on large strides.
	ActWindowNs   float64
	ActsPerWindow int

	MaxOutstanding int     // in-flight transactions per channel
	RefreshLoss    float64 // fraction of time lost to refresh, e.g. 0.03

	// InterleaveBytes is the channel-interleave granularity. Zero selects
	// per-stream placement: a request's Stream tag picks its channel,
	// modelling FPGA boards whose DDR banks hold whole buffers.
	InterleaveBytes uint32

	// HashChannels XOR-folds the block address when picking a channel,
	// the standard defence against power-of-two strides camping on one
	// channel. CPUs and GPUs hash; simple FPGA shells do not.
	HashChannels bool

	// HashBanks XOR-folds the row index when picking a bank, so
	// power-of-two strides spread across banks (GPU memory controllers
	// hash banks; simple FPGA shells map them linearly).
	HashBanks bool

	// InitialLatencyNs is the cold-start latency before the first data
	// beat (command path, first activation).
	InitialLatencyNs float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram %q: channels must be positive", c.Name)
	case c.BanksPerChannel <= 0:
		return fmt.Errorf("dram %q: banks must be positive", c.Name)
	case !mem.CheckPow2(c.RowBytes):
		return fmt.Errorf("dram %q: row bytes %d must be a power of two", c.Name, c.RowBytes)
	case !mem.CheckPow2(c.BurstBytes):
		return fmt.Errorf("dram %q: burst bytes %d must be a power of two", c.Name, c.BurstBytes)
	case c.RowBytes < c.BurstBytes:
		return fmt.Errorf("dram %q: row smaller than burst", c.Name)
	case c.BusGBps <= 0:
		return fmt.Errorf("dram %q: bus bandwidth must be positive", c.Name)
	case c.RowMissNs < 0 || c.TurnaroundNs < 0 || c.InitialLatencyNs < 0:
		return fmt.Errorf("dram %q: latencies must be non-negative", c.Name)
	case c.ActWindowNs < 0:
		return fmt.Errorf("dram %q: activate window must be non-negative", c.Name)
	case c.RefreshLoss < 0 || c.RefreshLoss >= 1:
		return fmt.Errorf("dram %q: refresh loss %v out of [0,1)", c.Name, c.RefreshLoss)
	case c.InterleaveBytes != 0 && !mem.CheckPow2(c.InterleaveBytes):
		return fmt.Errorf("dram %q: interleave bytes %d must be a power of two", c.Name, c.InterleaveBytes)
	}
	return nil
}

// PeakGBps returns the aggregate peak data-bus bandwidth in GB/s.
func (c Config) PeakGBps() float64 {
	return float64(c.Channels) * c.BusGBps
}

// withDefaults fills unset tunables.
func (c Config) withDefaults() Config {
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.ReorderWin == 0 {
		c.ReorderWin = 2 * c.BatchSize * c.Channels
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 16
	}
	if c.ActWindowNs > 0 && c.ActsPerWindow == 0 {
		c.ActsPerWindow = 4
	}
	return c
}

// ChannelOf reports which channel the given request address and stream tag
// map to. It is exported so placement behaviour (interleaving, hashing,
// per-stream banking) is directly testable and reportable.
func (c Config) ChannelOf(addr uint64, stream uint8) int {
	ch, _ := c.route(addr, stream)
	return ch
}

// route resolves a request to (channel index, channel-local address).
func (c Config) route(addr uint64, stream uint8) (int, uint64) {
	if c.InterleaveBytes == 0 {
		return int(stream) % c.Channels, addr
	}
	block := addr / uint64(c.InterleaveBytes)
	sel := block
	if c.HashChannels {
		sel = hashBlock(block)
	}
	chIdx := int(sel % uint64(c.Channels))
	chAddr := (block/uint64(c.Channels))*uint64(c.InterleaveBytes) +
		addr%uint64(c.InterleaveBytes)
	return chIdx, chAddr
}

// Result summarizes one Service run.
type Result struct {
	Seconds     float64 // elapsed simulated time
	Txns        uint64  // transactions serviced
	Bytes       uint64  // requested bytes (what the kernel asked for)
	BusBytes    uint64  // bytes actually moved on the bus (burst granularity)
	RowHits     uint64
	RowMisses   uint64
	Turnarounds uint64
	Drained     bool // source fully consumed (false when bounded)
}

// RequestedGBps is the bandwidth the benchmark observes: requested bytes
// over elapsed time, in GB/s.
func (r Result) RequestedGBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Seconds / 1e9
}

// BusGBps is the raw bus traffic rate, including burst-granularity waste.
func (r Result) BusGBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.BusBytes) / r.Seconds / 1e9
}

// RowHitRate returns the fraction of transactions that hit an open row.
func (r Result) RowHitRate() float64 {
	total := r.RowHits + r.RowMisses
	if total == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(total)
}

// Model is a DRAM subsystem ready to service request streams. Each Service
// call runs on fresh state.
//
// A Model is safe for concurrent use: every Service* call owns its
// controller state for the duration of the call. Sequential calls reuse
// a cached arena (controller state plus request buffers) so steady-state
// service allocates nothing; when calls overlap, the late arrivals fall
// back to fresh per-call state, which costs allocation but never
// correctness. Sustained parallel workloads should give each goroutine
// its own Clone so every worker keeps the allocation-free fast path.
type Model struct {
	cfg Config

	// Hot-path precomputation (set by New/Clone from the validated,
	// power-of-two-checked configuration).
	rowShift   uint
	burstShift uint
	ilShift    uint
	ilMask     uint64
	chanDiv    divisor
	bankDiv    divisor

	// The reusable arena, guarded by busy: CAS in acquire, Store(false)
	// in release. The pointer itself is written only by the CAS winner.
	busy  atomic.Bool
	arena *svcState
}

// New builds a model, panicking on invalid configuration (configurations
// are compile-time constants of the device packages; an invalid one is a
// programming error).
func New(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Model{cfg: cfg.withDefaults()}
	m.precompute()
	return m
}

// precompute derives the shift/mask forms of the power-of-two geometry,
// replacing per-request divisions on the issue path.
func (m *Model) precompute() {
	m.rowShift = mem.Log2(uint64(m.cfg.RowBytes))
	m.burstShift = mem.Log2(uint64(m.cfg.BurstBytes))
	if m.cfg.InterleaveBytes != 0 {
		m.ilShift = mem.Log2(uint64(m.cfg.InterleaveBytes))
		m.ilMask = uint64(m.cfg.InterleaveBytes) - 1
	}
	m.chanDiv = newDivisor(uint64(m.cfg.Channels))
	m.bankDiv = newDivisor(uint64(m.cfg.BanksPerChannel))
}

// divisor is a strength-reduced unsigned divisor. Channel and bank
// counts need not be powers of two (the bench GPU has 6 channels), so
// the issue path cannot always shift/mask — but it must not pay a
// hardware divide per transaction either. Powers of two reduce to a
// shift/mask; everything else to a multiply-high by the precomputed
// reciprocal floor(2^64/d) plus one conditional fix-up.
type divisor struct {
	d     uint64
	recip uint64 // floor(2^64/d); 0 when d is a power of two
	shift uint   // power of two: log2(d)
	mask  uint64 // power of two: d-1
}

func newDivisor(d uint64) divisor {
	v := divisor{d: d, mask: d - 1}
	if d&(d-1) == 0 {
		v.shift = mem.Log2(d)
		return v
	}
	// floor(2^64/d): Div64 needs its high word below d, and d >= 3 here
	// (1 and 2 are powers of two).
	v.recip, _ = bits.Div64(1, 0, d)
	return v
}

// divmod returns n/d and n%d.
//
// Exactness of the reciprocal path: recip = (2^64-e)/d with
// e = 2^64 mod d < d, so n*recip/2^64 = n/d - n*e/(d*2^64) and the
// error term is below 1 for any n < 2^64 — the estimated quotient is
// floor(n/d) or one less, and a single conditional subtract corrects
// it. The divisor parity test exercises this against the hardware
// divide.
func (v divisor) divmod(n uint64) (uint64, uint64) {
	if v.recip == 0 {
		return n >> v.shift, n & v.mask
	}
	q, _ := bits.Mul64(n, v.recip)
	r := n - q*v.d
	if r >= v.d {
		r -= v.d
		q++
	}
	return q, r
}

// mod returns n%d.
func (v divisor) mod(n uint64) uint64 {
	if v.recip == 0 {
		return n & v.mask
	}
	q, _ := bits.Mul64(n, v.recip)
	r := n - q*v.d
	if r >= v.d {
		r -= v.d
	}
	return r
}

// Clone returns an independent model with the same configuration and its
// own arena — the cheap way to hand each worker goroutine a model that
// keeps the allocation-free service path.
func (m *Model) Clone() *Model {
	c := &Model{cfg: m.cfg}
	c.precompute()
	return c
}

// Config returns the model's configuration (with defaults applied).
func (m *Model) Config() Config { return m.cfg }

// svcState is one service run's controller state plus the reusable
// request buffers (reorder buffer, sorted batch, background prefetch).
// The model caches one instance across sequential runs.
//
// The per-channel state is flattened: banks and the completion and
// activation rings live in single arrays indexed by channel, not in
// per-channel slices. Channel and bank selection are data-dependent
// loads on the issue path, so every slice header removed is one fewer
// chained indirection per transaction.
type svcState struct {
	chans   []chanState
	banks   []bankState // Channels x BanksPerChannel
	actRing []float64   // Channels x ActsPerWindow tFAW ring; nil when disabled
	buf     []mem.Request
	batch   []mem.Request
	owned   bool // this is the model's cached arena; release clears busy
}

// acquire returns run-ready (cold) controller state, reusing the cached
// arena when the model is not already mid-service on another goroutine.
func (m *Model) acquire() *svcState {
	if m.busy.CompareAndSwap(false, true) {
		st := m.arena
		if st == nil {
			st = m.newState()
			st.owned = true
			m.arena = st
		} else {
			m.resetState(st)
		}
		return st
	}
	// Concurrent call: private fresh state for this run only.
	return m.newState()
}

func (m *Model) release(st *svcState) {
	if st.owned {
		m.busy.Store(false)
	}
}

// grow returns s with length n, reallocating only when capacity lacks.
func grow(s []mem.Request, n int) []mem.Request {
	if cap(s) < n {
		return make([]mem.Request, n)
	}
	return s[:n]
}

type bankState struct {
	openRow int64 // -1 when closed
	freeAt  float64
}

// chanState is the per-channel hot state; its banks and rings live in
// the svcState flat arrays (see svcState), indexed by channel.
type chanState struct {
	busFree float64
	last    int32 // last op on the bus, -1 before the first (one compare on the hot path)
	actHead int32 // activation-ring cursor
}

// Service drains src through the memory system and returns the timing
// result. It is equivalent to ServiceBounded(src, 0).
func (m *Model) Service(src mem.Source) Result {
	return m.ServiceBounded(src, 0)
}

// newState builds cold controller state.
func (m *Model) newState() *svcState {
	cfg := m.cfg
	st := &svcState{
		chans: make([]chanState, cfg.Channels),
		banks: make([]bankState, cfg.Channels*cfg.BanksPerChannel),
	}
	for c := range st.chans {
		st.chans[c].last = -1
	}
	for b := range st.banks {
		st.banks[b].openRow = -1
	}
	if cfg.ActWindowNs > 0 {
		st.actRing = make([]float64, cfg.Channels*cfg.ActsPerWindow)
		for a := range st.actRing {
			st.actRing[a] = -cfg.ActWindowNs
		}
	}
	return st
}

// resetState restores cached controller state to cold, preserving the
// backing arrays — the in-place equivalent of newState.
func (m *Model) resetState(st *svcState) {
	for i := range st.chans {
		st.chans[i] = chanState{last: -1}
	}
	for b := range st.banks {
		st.banks[b] = bankState{openRow: -1}
	}
	for a := range st.actRing {
		st.actRing[a] = -m.cfg.ActWindowNs
	}
}

// LoadedOptions parameterizes an open-loop ServiceLoaded run.
type LoadedOptions struct {
	// InterArrivalNs spaces background arrivals: background request i
	// arrives at i * InterArrivalNs, so it sets the offered injection
	// rate (request size / InterArrivalNs bytes per ns). It must be
	// positive when a background source is given.
	InterArrivalNs float64
	// MaxTxns bounds the run; 0 services both sources fully.
	MaxTxns uint64
	// WarmupTxns excludes the first transactions from the latency
	// statistics (they still run and occupy the system): the measurement
	// should see the steady state, not the cold ramp.
	WarmupTxns uint64
}

// LoadedResult extends Result with the open-loop latency accounting a
// bandwidth–latency surface needs: per-request latency (completion
// minus arrival) over all requests and over the probe chain alone.
type LoadedResult struct {
	Result
	// MeasuredTxns counts the requests included in the latency
	// statistics (serviced transactions past the warmup), and
	// MeasuredSpanNs the simulated time they cover.
	MeasuredTxns   uint64
	MeasuredSpanNs float64
	// TotalLatencyNs and MaxLatencyNs aggregate completion-minus-arrival
	// over the measured requests.
	TotalLatencyNs float64
	MaxLatencyNs   float64
	// Probe accounting: the dependent-chain requests only.
	ProbeTxns    uint64
	ProbeTotalNs float64
	ProbeMaxNs   float64
}

// AvgLatencyNs returns the mean measured request latency.
func (r LoadedResult) AvgLatencyNs() float64 {
	if r.MeasuredTxns == 0 {
		return 0
	}
	return r.TotalLatencyNs / float64(r.MeasuredTxns)
}

// ProbeAvgNs returns the mean probe-hop latency — the loaded latency a
// pointer chase observes under the run's background traffic.
func (r LoadedResult) ProbeAvgNs() float64 {
	if r.ProbeTxns == 0 {
		return 0
	}
	return r.ProbeTotalNs / float64(r.ProbeTxns)
}

// AvgOccupancy returns the time-averaged number of in-flight
// transactions over the measured span (Little's law: total latency
// over the elapsed time the measured requests cover, so a warmup does
// not dilute it).
func (r LoadedResult) AvgOccupancy() float64 {
	if r.MeasuredSpanNs <= 0 {
		return 0
	}
	return r.TotalLatencyNs / r.MeasuredSpanNs
}

// ServiceLoaded measures loaded latency: it services an open-loop
// background stream (request i arrives at i*InterArrivalNs, setting
// the offered injection rate) merged by arrival time with a dependent
// probe chain (a pointer chase: hop n+1 arrives only when hop n's data
// returned). Requests are serviced first-come first-served in arrival
// order, and every latency is completion minus arrival.
//
// The probe's average latency is the loaded latency of the
// bandwidth–latency surface methodology: offered background load well
// below capacity leaves it near the idle round trip; as offered load
// approaches the sustainable bandwidth, each probe round trip spans
// more and more background service time and the latency follows the
// queueing-theory hockey stick, diverging past saturation.
//
// Either source may be nil: a nil background measures the idle chase
// latency, a nil probe measures pure open-loop background service.
// The open-loop path deliberately skips the closed-loop reorder/batch
// machinery of Service: a latency probe measures the controller as the
// traffic presents itself.
func (m *Model) ServiceLoaded(bg, probe mem.Source, opts LoadedOptions) LoadedResult {
	st := m.acquire()
	defer m.release(st)
	cfg := &m.cfg
	chans := st.chans

	var res LoadedResult
	burstNs := float64(cfg.BurstBytes) / cfg.BusGBps
	start := cfg.InitialLatencyNs
	inter := opts.InterArrivalNs
	if inter <= 0 {
		inter = burstNs // back-to-back at bus speed when unset
	}

	// Head-of-stream state for the arrival-order merge. Background
	// arrivals are position-determined (slot * inter), so the stream
	// prefetches in chunks through the arena — the probe stays strictly
	// serial, each hop's pull gated on the previous completion.
	const bgChunk = 256
	var bgBuf []mem.Request
	bgPos := 0
	if bg != nil {
		st.buf = grow(st.buf, bgChunk)
		bgBuf = st.buf[:0]
	}
	var (
		bgReq, probeReq         mem.Request
		bgOK, probeOK           bool
		bgArrival, probeArrival float64
		slot                    int
	)
	pullBg := func() {
		if bg == nil {
			bgOK = false
			return
		}
		if bgPos >= len(bgBuf) {
			bgBuf = st.buf[:mem.Fill(bg, st.buf[:bgChunk])]
			bgPos = 0
			if len(bgBuf) == 0 {
				bgOK = false
				return
			}
		}
		bgReq, bgOK = bgBuf[bgPos], true
		bgPos++
		bgArrival = start + float64(slot)*inter
		slot++
	}
	pullProbe := func(after float64) {
		if probe == nil {
			probeOK = false
			return
		}
		if probeReq, probeOK = probe.Next(); probeOK {
			probeArrival = after
		}
	}
	pullBg()
	pullProbe(start)

	// maxEnd tracks the simulated frontier; measureStart marks it when
	// the warmup completes, bounding the measured span for occupancy.
	maxEnd, measureStart := start, start
	for bgOK || probeOK {
		if opts.MaxTxns > 0 && res.Txns >= opts.MaxTxns {
			break
		}
		// Background goes first on ties: the probe joins the queue behind
		// traffic already in flight.
		warm := res.Txns >= opts.WarmupTxns
		if warm && res.MeasuredTxns == 0 {
			measureStart = maxEnd
		}
		var end float64
		if bgOK && (!probeOK || bgArrival <= probeArrival) {
			end = m.issue(&res.Result, st, bgReq, burstNs, bgArrival)
			if warm {
				record(&res, end-bgArrival, false)
			}
			pullBg()
		} else {
			end = m.issue(&res.Result, st, probeReq, burstNs, probeArrival)
			if warm {
				record(&res, end-probeArrival, true)
			}
			pullProbe(end)
		}
		if end > maxEnd {
			maxEnd = end
		}
	}
	res.MeasuredSpanNs = maxEnd - measureStart
	finish(&res.Result, chans, start, cfg, !bgOK && !probeOK)
	return res
}

// Prerouted is an address-decoded request stream: the output of
// Preroute, consumable by ServiceLoadedRouted. Because decode is
// timing-independent, one Prerouted stream can be rewound (Reset) and
// replayed under any number of arrival schedules — the surface
// generator decodes each curve's background walk once and sweeps the
// whole injection ladder over it.
//
// A Prerouted stream is bound to the geometry of the model that built
// it; replaying it on a differently-configured model is a programming
// error.
type Prerouted struct {
	reqs []routedReq
	pos  int
}

// Len returns the number of decoded requests in the stream.
func (p *Prerouted) Len() int { return len(p.reqs) }

// Reset rewinds the stream to its first request.
func (p *Prerouted) Reset() { p.pos = 0 }

// Preroute drains up to max requests from src and address-decodes them
// into a replayable stream. A short stream (fewer than max requests)
// means src was exhausted, exactly as a Source reporting ok == false.
func (m *Model) Preroute(src mem.Source, max int) *Prerouted {
	return m.PrerouteInto(nil, src, max)
}

// PrerouteInto is Preroute recycling p's backing array when its
// capacity allows, for callers that redecode streams in a loop (the
// surface sweep redecodes one background walk per curve). A nil p
// allocates a fresh stream; either way the result is rewound and holds
// only the newly decoded requests.
func (m *Model) PrerouteInto(p *Prerouted, src mem.Source, max int) *Prerouted {
	if p == nil || cap(p.reqs) < max {
		p = &Prerouted{reqs: make([]routedReq, 0, max)}
	} else {
		p.pos = 0
	}
	burstNs := float64(m.cfg.BurstBytes) / m.cfg.BusGBps
	var buf [256]mem.Request
	reqs := p.reqs[:max]
	n := 0
	for n < max {
		want := max - n
		if want > len(buf) {
			want = len(buf)
		}
		k := mem.Fill(src, buf[:want])
		if k == 0 {
			break
		}
		for i := 0; i < k; i++ {
			reqs[n+i] = m.decode(buf[i], burstNs)
		}
		n += k
	}
	p.reqs = reqs[:n]
	return p
}

// ServiceLoadedRouted is ServiceLoaded over address-decoded streams:
// the same open-loop arrival-order merge, minus the per-transaction
// address decode and source dispatch. Either stream may be nil. It
// produces float-for-float identical results to ServiceLoaded over the
// equivalent sources (the routed-parity test holds it to that); the
// surface generator uses it to sweep an injection ladder over streams
// decoded once per curve.
//
// The transaction loop is the timing half of issue fused in, with the
// configuration scalars, controller arrays, and result counters all in
// locals: the compiler cannot prove the per-transaction stores leave
// m.cfg and res untouched, so the factored-out form reloads every hot
// field once per transaction. The fused body must mirror issueRouted
// exactly; the routed-parity and frozen-reference tests in
// parity_test.go hold the two to float-for-float identical results.
func (m *Model) ServiceLoadedRouted(bg, probe *Prerouted, opts LoadedOptions) LoadedResult {
	st := m.acquire()
	defer m.release(st)
	cfg := &m.cfg

	var res LoadedResult
	burstNs := float64(cfg.BurstBytes) / cfg.BusGBps
	start := cfg.InitialLatencyNs
	inter := opts.InterArrivalNs
	if inter <= 0 {
		inter = burstNs // back-to-back at bus speed when unset
	}

	var bgList, prList []routedReq
	bgPos, prPos := 0, 0
	if bg != nil {
		bgList, bgPos = bg.reqs, bg.pos
	}
	if probe != nil {
		prList, prPos = probe.reqs, probe.pos
	}
	bgOK := bgPos < len(bgList)
	prOK := prPos < len(prList)

	// Hoisted invariants and state arrays.
	turnNs, rowMissNs, actWinNs := cfg.TurnaroundNs, cfg.RowMissNs, cfg.ActWindowNs
	actsPer := cfg.ActsPerWindow
	chans, banks, actRing := st.chans, st.banks, st.actRing

	// Local result accumulators, folded into res after the loop.
	var txns, bytes, busBytes, rowHits, rowMisses, turnarounds uint64
	var measuredTxns, probeTxns uint64
	var totalLat, maxLat, probeTotal, probeMax float64

	// Arrival bookkeeping mirrors ServiceLoaded: background request i
	// arrives at start + i*inter (fslot carries i as a float — integer
	// increments of a float64 are exact far past any stream length, and
	// keeping it float spares an int conversion per transaction), the
	// probe's next hop arrives when the previous one completed.
	fslot := 0.0
	bgArrival, probeArrival := start, start
	maxTxns, warmupTxns := opts.MaxTxns, opts.WarmupTxns
	if maxTxns == 0 {
		maxTxns = ^uint64(0) // unlimited: fold the cap into one compare
	}

	// The merge runs probe-transaction-at-a-time on the outside with a
	// tight inner loop over the background run before the probe's next
	// arrival — the same per-transaction choice ServiceLoaded makes
	// (background goes first on ties: the probe joins the queue behind
	// traffic already in flight), but the stream-selection branch
	// becomes an almost-always-taken inner-loop bound. The two
	// specialized copies of the issue body must mirror issueRouted
	// exactly; the routed-parity tests pin all three to identical floats.
	maxEnd, measureStart := start, start
	for (bgOK || prOK) && txns < maxTxns {
		if prOK && (!bgOK || probeArrival < bgArrival) {
			// One probe transaction.
			warm := txns >= warmupTxns
			if warm && measuredTxns == 0 {
				measureStart = maxEnd
			}
			rr := &prList[prPos]
			arrival := probeArrival

			ch := &chans[rr.chIdx]
			bank := &banks[rr.bankFlat]
			if op := int32(rr.op); ch.last != op {
				if ch.last >= 0 {
					ch.busFree += turnNs
					turnarounds++
				}
				ch.last = op
			}
			var ready float64
			if bank.openRow == rr.row {
				ready = arrival
				rowHits++
			} else {
				act := bank.freeAt
				if act < arrival {
					act = arrival
				}
				if actRing != nil {
					ai := int(rr.chIdx)*actsPer + int(ch.actHead)
					if g := actRing[ai] + actWinNs; act < g {
						act = g
					}
					actRing[ai] = act
					if ch.actHead++; int(ch.actHead) == actsPer {
						ch.actHead = 0
					}
				}
				ready = act + rowMissNs
				bank.openRow = rr.row
				rowMisses++
			}
			issueAt := ch.busFree
			if issueAt < ready {
				issueAt = ready
			}
			end := issueAt + rr.transfer
			ch.busFree = end
			bank.freeAt = end
			txns++
			bytes += uint64(rr.size)
			busBytes += uint64(rr.busBytes)

			if warm {
				measuredTxns++
				lat := end - arrival
				totalLat += lat
				if lat > maxLat {
					maxLat = lat
				}
				probeTxns++
				probeTotal += lat
				if lat > probeMax {
					probeMax = lat
				}
			}
			prPos++
			if prPos < len(prList) {
				probeArrival = end
			} else {
				prOK = false
			}
			if end > maxEnd {
				maxEnd = end
			}
			continue
		}
		// The background run up to (and tying with) the probe's arrival.
		for bgOK && txns < maxTxns && (!prOK || bgArrival <= probeArrival) {
			warm := txns >= warmupTxns
			if warm && measuredTxns == 0 {
				measureStart = maxEnd
			}
			rr := &bgList[bgPos]
			arrival := bgArrival

			ch := &chans[rr.chIdx]
			bank := &banks[rr.bankFlat]
			if op := int32(rr.op); ch.last != op {
				if ch.last >= 0 {
					ch.busFree += turnNs
					turnarounds++
				}
				ch.last = op
			}
			var ready float64
			if bank.openRow == rr.row {
				ready = arrival
				rowHits++
			} else {
				act := bank.freeAt
				if act < arrival {
					act = arrival
				}
				if actRing != nil {
					ai := int(rr.chIdx)*actsPer + int(ch.actHead)
					if g := actRing[ai] + actWinNs; act < g {
						act = g
					}
					actRing[ai] = act
					if ch.actHead++; int(ch.actHead) == actsPer {
						ch.actHead = 0
					}
				}
				ready = act + rowMissNs
				bank.openRow = rr.row
				rowMisses++
			}
			issueAt := ch.busFree
			if issueAt < ready {
				issueAt = ready
			}
			end := issueAt + rr.transfer
			ch.busFree = end
			bank.freeAt = end
			txns++
			bytes += uint64(rr.size)
			busBytes += uint64(rr.busBytes)

			if warm {
				measuredTxns++
				lat := end - arrival
				totalLat += lat
				if lat > maxLat {
					maxLat = lat
				}
			}
			bgPos++
			fslot++
			if bgPos < len(bgList) {
				bgArrival = start + fslot*inter
			} else {
				bgOK = false
			}
			if end > maxEnd {
				maxEnd = end
			}
		}
	}
	if bg != nil {
		bg.pos = bgPos
	}
	if probe != nil {
		probe.pos = prPos
	}
	res.Txns, res.Bytes, res.BusBytes = txns, bytes, busBytes
	res.RowHits, res.RowMisses, res.Turnarounds = rowHits, rowMisses, turnarounds
	res.MeasuredTxns, res.TotalLatencyNs, res.MaxLatencyNs = measuredTxns, totalLat, maxLat
	res.ProbeTxns, res.ProbeTotalNs, res.ProbeMaxNs = probeTxns, probeTotal, probeMax
	res.MeasuredSpanNs = maxEnd - measureStart
	finish(&res.Result, st.chans, start, cfg, !bgOK && !prOK)
	return res
}

// record accumulates one serviced request's latency.
func record(res *LoadedResult, lat float64, isProbe bool) {
	res.MeasuredTxns++
	res.TotalLatencyNs += lat
	if lat > res.MaxLatencyNs {
		res.MaxLatencyNs = lat
	}
	if isProbe {
		res.ProbeTxns++
		res.ProbeTotalNs += lat
		if lat > res.ProbeMaxNs {
			res.ProbeMaxNs = lat
		}
	}
}

// ServiceBounded services at most maxTxns transactions (0 = unlimited).
// Bounded runs are the basis of sampled simulation for very large arrays.
func (m *Model) ServiceBounded(src mem.Source, maxTxns uint64) Result {
	st := m.acquire()
	defer m.release(st)
	cfg := &m.cfg
	chans := st.chans

	var res Result
	burstNs := float64(cfg.BurstBytes) / cfg.BusGBps // ns per burst (GB/s == B/ns)
	start := cfg.InitialLatencyNs

	// Reorder buffer: the controller looks ReorderWin requests ahead and
	// issues same-direction batches of up to BatchSize. The buffer lives
	// in the arena and refills in batches; pendRead/pendWrite track its
	// per-direction population so direction switching never rescans it.
	win := cfg.ReorderWin
	st.buf = grow(st.buf, win)
	buf := st.buf[:0]
	var pendRead, pendWrite int
	fill := func() {
		for len(buf) < win {
			n := mem.Fill(src, buf[len(buf):win])
			if n == 0 {
				return
			}
			for _, r := range buf[len(buf) : len(buf)+n] {
				if r.Op == mem.Read {
					pendRead++
				} else {
					pendWrite++
				}
			}
			buf = buf[:len(buf)+n]
		}
	}
	fill()

	curOp := mem.Read
	if len(buf) > 0 {
		curOp = buf[0].Op
	}

	// BatchSize is per channel; the controller issues a global batch
	// sized so each channel sees a full same-direction run.
	globalBatch := cfg.BatchSize * cfg.Channels
	st.batch = grow(st.batch, globalBatch)
	batch := st.batch[:0]

	for len(buf) > 0 {
		if maxTxns > 0 && res.Txns >= maxTxns {
			finish(&res, chans, start, cfg, false)
			return res
		}
		// Collect one batch of the current direction in a single pass,
		// compacting the keepers in place, then issue it in address order
		// (first-ready first-served approximation: row hits group together
		// instead of ping-ponging between arrays).
		batch = batch[:0]
		keep, scan := 0, 0
		for ; scan < len(buf) && len(batch) < globalBatch; scan++ {
			if buf[scan].Op == curOp {
				batch = append(batch, buf[scan])
			} else {
				buf[keep] = buf[scan]
				keep++
			}
		}
		keep += copy(buf[keep:], buf[scan:])
		buf = buf[:keep]
		issued := len(batch)
		if curOp == mem.Read {
			pendRead -= issued
		} else {
			pendWrite -= issued
		}
		slices.SortFunc(batch, cmpByAddr)
		for _, r := range batch {
			m.issue(&res, st, r, burstNs, start)
			if maxTxns > 0 && res.Txns >= maxTxns {
				finish(&res, chans, start, cfg, false)
				return res
			}
		}
		fill()
		if issued == 0 {
			// Nothing of the current direction pending: switch.
			curOp = otherOp(curOp)
			continue
		}
		// Prefer staying in direction while work remains; switch when the
		// batch filled or the direction drained.
		other := pendWrite
		if curOp == mem.Write {
			other = pendRead
		}
		if other > 0 {
			curOp = otherOp(curOp)
		}
	}
	finish(&res, chans, start, cfg, true)
	return res
}

// cmpByAddr orders a same-direction batch by address. The tie-breaks
// (batch entries never differ in Op) make the order total, so the
// unstable sort is deterministic; requests equal under it are fully
// interchangeable on the issue path.
func cmpByAddr(a, b mem.Request) int {
	switch {
	case a.Addr != b.Addr:
		if a.Addr < b.Addr {
			return -1
		}
		return 1
	case a.Stream != b.Stream:
		return int(a.Stream) - int(b.Stream)
	default:
		return int(a.Size) - int(b.Size)
	}
}

// hashBlock XOR-folds the upper address bits into the low bits so that
// any fixed power-of-two stride still spreads across channels.
func hashBlock(b uint64) uint64 {
	h := b
	h ^= b >> 7
	h ^= b >> 13
	h ^= b >> 21
	return h
}

func otherOp(o mem.Op) mem.Op {
	if o == mem.Read {
		return mem.Write
	}
	return mem.Read
}

// routedReq is a request after address decode: the timing-independent
// half of issuing a transaction (channel/bank routing, row index,
// burst count) resolved once, leaving only the clock arithmetic for
// the issue loop. Decoding commutes with timing, so a stream can be
// decoded ahead of service — or once, and then replayed under many
// different arrival schedules (the surface's injection ladder).
type routedReq struct {
	row      int64   // full row index (unique across banks)
	transfer float64 // bus occupancy: bursts x ns-per-burst
	chIdx    int32   // channel index
	bankFlat int32   // chIdx*BanksPerChannel + bank index
	size     uint32  // requested bytes
	busBytes uint32  // bytes moved on the bus (burst granularity)
	op       mem.Op
}

// decode resolves the timing-independent half of a transaction. burstNs
// is the per-burst bus occupancy the service loop derived from the
// configuration.
func (m *Model) decode(r mem.Request, burstNs float64) routedReq {
	cfg := &m.cfg

	// Route: channel interleave via shift/mask, or per-stream placement.
	var chIdx int
	chAddr := r.Addr
	if cfg.InterleaveBytes == 0 {
		chIdx = int(r.Stream) % cfg.Channels
	} else {
		block := r.Addr >> m.ilShift
		blockQ, blockR := m.chanDiv.divmod(block)
		if cfg.HashChannels {
			chIdx = int(m.chanDiv.mod(hashBlock(block)))
		} else {
			chIdx = int(blockR)
		}
		chAddr = blockQ<<m.ilShift + r.Addr&m.ilMask
	}

	// Rows interleave across banks: consecutive rows live in consecutive
	// banks, so streaming overlaps the next bank's activation. The open
	// row is identified by the full row index, which is unique whatever
	// the bank mapping.
	rowIdx := chAddr >> m.rowShift
	bankSel := rowIdx
	if cfg.HashBanks {
		bankSel = hashBlock(rowIdx)
	}
	bankIdx := int(m.bankDiv.mod(bankSel))

	var bursts int
	if r.Size > 0 {
		bursts = int(((r.Addr+uint64(r.Size)-1)>>m.burstShift)-(r.Addr>>m.burstShift)) + 1
	}
	return routedReq{
		row:      int64(rowIdx),
		transfer: float64(bursts) * burstNs,
		chIdx:    int32(chIdx),
		bankFlat: int32(chIdx*cfg.BanksPerChannel + bankIdx),
		size:     r.Size,
		busBytes: uint32(bursts) * cfg.BurstBytes,
		op:       r.Op,
	}
}

// issue times a single transaction, returning its completion time. All
// times are nanoseconds; earliest is the first instant the transaction
// may begin (the run start for closed-loop service, the request's
// arrival for open-loop service).
func (m *Model) issue(res *Result, st *svcState, r mem.Request, burstNs, earliest float64) float64 {
	rr := m.decode(r, burstNs)
	return m.issueRouted(res, st, &rr, earliest)
}

// issueRouted is the timing half of issue: pure clock arithmetic over
// the controller state, one transaction per call.
func (m *Model) issueRouted(res *Result, st *svcState, rr *routedReq, earliest float64) float64 {
	cfg := &m.cfg
	ch := &st.chans[rr.chIdx]
	bank := &st.banks[rr.bankFlat]

	// Direction turnaround applies when the bus flips direction.
	if op := int32(rr.op); ch.last != op {
		if ch.last >= 0 {
			ch.busFree += cfg.TurnaroundNs
			res.Turnarounds++
		}
		ch.last = op
	}

	var ready float64
	if bank.openRow == rr.row {
		// Row hit: CAS pipelines with the previous transfer.
		ready = earliest
		res.RowHits++
	} else {
		// Row miss: the bank precharges/activates after its previous use,
		// subject to the channel's tFAW activation-rate limit — the new
		// activation may not start before the ActsPerWindow-th previous
		// one plus the window.
		act := bank.freeAt
		if act < earliest {
			act = earliest
		}
		if st.actRing != nil {
			ai := int(rr.chIdx)*cfg.ActsPerWindow + int(ch.actHead)
			if g := st.actRing[ai] + cfg.ActWindowNs; act < g {
				act = g
			}
			st.actRing[ai] = act
			if ch.actHead++; int(ch.actHead) == cfg.ActsPerWindow {
				ch.actHead = 0
			}
		}
		ready = act + cfg.RowMissNs
		bank.openRow = rr.row
		res.RowMisses++
	}

	// Two gates the earlier controller carried are provably vacuous and
	// are reduced away here (the frozen reference in reference_test.go
	// still simulates both; the parity suite pins bit-identity):
	//
	//   - The MaxOutstanding completion ring. Issue is in-order per
	//     channel and issueAt >= ch.busFree, so per-channel completion
	//     times are monotone non-decreasing; a completion recorded
	//     MaxOutstanding transactions ago can never exceed ch.busFree
	//     and the window never binds.
	//   - The earliest clamp. ready >= earliest on both the hit path
	//     (ready == earliest) and the miss path (act >= earliest), so
	//     max(busFree, ready) already dominates it.
	issueAt := ch.busFree
	if issueAt < ready {
		issueAt = ready
	}
	end := issueAt + rr.transfer

	ch.busFree = end
	bank.freeAt = end

	res.Txns++
	res.Bytes += uint64(rr.size)
	res.BusBytes += uint64(rr.busBytes)
	return end
}

func finish(res *Result, chans []chanState, start float64, cfg *Config, drained bool) {
	endNs := start
	for i := range chans {
		if chans[i].busFree > endNs {
			endNs = chans[i].busFree
		}
	}
	elapsedNs := endNs
	if res.Txns == 0 {
		elapsedNs = 0
	}
	// Refresh steals a fraction of wall time.
	if cfg.RefreshLoss > 0 {
		elapsedNs /= 1 - cfg.RefreshLoss
	}
	res.Seconds = elapsedNs * 1e-9
	res.Drained = drained
	// Every Service* completion path funnels through finish exactly
	// once, so this is the single telemetry hook for serviced traffic.
	obs.AddDRAMRequests(res.Txns)
}
