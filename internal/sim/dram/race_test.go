package dram

// Concurrency tests, meant to run under -race: a Model may be shared
// across goroutines — acquire hands the cached arena to the first comer
// and fresh cold state to everyone else — so concurrent service calls
// must be data-race free AND return exactly what a lone call returns.

import (
	"math/rand"
	"sync"
	"testing"

	"mpstream/internal/sim/mem"
)

func TestConcurrentServiceSharedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := randomConfig(rng)
	m := New(cfg)
	build := randomStream(rng, cfg.BurstBytes)
	want := m.Service(build())

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for run := 0; run < 4; run++ {
				if got := m.Service(build()); got != want {
					t.Errorf("worker %d run %d diverged on shared model:\n got  %+v\n want %+v",
						w, run, got, want)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestConcurrentServiceLoadedRoutedSharedModel(t *testing.T) {
	// The model is shared; each goroutine owns its streams (a Prerouted
	// carries a read cursor and is single-goroutine by contract).
	rng := rand.New(rand.NewSource(29))
	cfg := randomConfig(rng)
	m := New(cfg)
	bgBuild := randomStream(rng, cfg.BurstBytes)
	probeBuild := func() mem.Source {
		c, _ := mem.NewChaseIter(3<<31, 256, cfg.BurstBytes, 128, 3)
		return c
	}
	opts := LoadedOptions{InterArrivalNs: 2.5, MaxTxns: 512, WarmupTxns: 64}
	const drain = 1 << 16
	want := m.ServiceLoadedRouted(m.Preroute(bgBuild(), drain), m.Preroute(probeBuild(), drain), opts)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bg := m.Preroute(bgBuild(), drain)
			pr := m.Preroute(probeBuild(), drain)
			for run := 0; run < 4; run++ {
				bg.Reset()
				pr.Reset()
				if got := m.ServiceLoadedRouted(bg, pr, opts); got != want {
					t.Errorf("worker %d run %d diverged on shared model:\n got  %+v\n want %+v",
						w, run, got, want)
				}
			}
		}(w)
	}
	wg.Wait()
}
