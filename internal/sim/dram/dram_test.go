package dram

import (
	"testing"
	"testing/quick"

	"mpstream/internal/sim/mem"
)

// testConfig is a 2-channel DDR3-1600-like subsystem: 2 x 12.8 GB/s.
func testConfig() Config {
	return Config{
		Name:            "test-ddr3",
		Channels:        2,
		BanksPerChannel: 8,
		RowBytes:        8192,
		BurstBytes:      64,
		BusGBps:         12.8,
		RowMissNs:       45,
		TurnaroundNs:    7.5,
		BatchSize:       16,
		MaxOutstanding:  16,
		ActWindowNs:     40,
		ActsPerWindow:   4,
		RefreshLoss:     0.03,
		InterleaveBytes: 1024,
		HashChannels:    true,
	}
}

func contigReads(t testing.TB, elems int, elemBytes uint32) mem.Source {
	t.Helper()
	it, err := mem.NewIter(mem.ContiguousPattern(), 0, elems, elemBytes, mem.Read, 0)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.BanksPerChannel = -1 },
		func(c *Config) { c.RowBytes = 1000 },
		func(c *Config) { c.BurstBytes = 48 },
		func(c *Config) { c.RowBytes = 32 },
		func(c *Config) { c.BusGBps = 0 },
		func(c *Config) { c.RowMissNs = -1 },
		func(c *Config) { c.RefreshLoss = 1.5 },
		func(c *Config) { c.InterleaveBytes = 100 },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config must panic")
		}
	}()
	New(Config{})
}

func TestPeakGBps(t *testing.T) {
	if got := testConfig().PeakGBps(); got != 25.6 {
		t.Errorf("PeakGBps = %v, want 25.6", got)
	}
}

func TestContiguousStreamNearPeak(t *testing.T) {
	m := New(testConfig())
	// 64 MB of 64-byte reads: a pure streaming load.
	res := m.Service(contigReads(t, 1<<20, 64))
	if !res.Drained {
		t.Fatal("source must drain")
	}
	bw := res.RequestedGBps()
	peak := testConfig().PeakGBps()
	if bw < 0.88*peak || bw > peak {
		t.Errorf("streaming bandwidth = %.2f GB/s, want within [%.2f, %.2f]",
			bw, 0.88*peak, peak)
	}
	if hr := res.RowHitRate(); hr < 0.98 {
		t.Errorf("contiguous row hit rate = %.3f, want >= 0.98", hr)
	}
}

func TestNarrowRequestsWasteBurst(t *testing.T) {
	m := New(testConfig())
	res := m.Service(contigReads(t, 1<<20, 4)) // 4 MB of 4-byte reads
	// Each 4-byte request occupies a full 64-byte burst.
	if res.BusBytes != res.Bytes*16 {
		t.Errorf("bus bytes = %d, want 16x requested %d", res.BusBytes, res.Bytes)
	}
	ratio := res.RequestedGBps() / res.BusGBps()
	if ratio < 0.0624 || ratio > 0.0626 {
		t.Errorf("requested/bus ratio = %v, want 1/16", ratio)
	}
}

func TestStridedSlowerThanContiguous(t *testing.T) {
	// At line granularity (64 B transactions, what caches and coalescing
	// LSUs emit) a column-major walk must be strongly slower than a
	// contiguous one: every access opens a new row and banks serialize.
	m := New(testConfig())
	elems := 1 << 18 // 16 MB of 64-byte lines
	contig := m.Service(contigReads(t, elems, 64))

	it, err := mem.NewIter(mem.ColMajorPattern(), 0, elems, 64, mem.Read, 0)
	if err != nil {
		t.Fatal(err)
	}
	strided := m.Service(it)

	if strided.Seconds <= contig.Seconds {
		t.Errorf("column-major (%.3g s) must be slower than contiguous (%.3g s)",
			strided.Seconds, contig.Seconds)
	}
	if strided.RowHitRate() > 0.5 {
		t.Errorf("large-stride row hit rate = %.3f, want low", strided.RowHitRate())
	}
	slowdown := strided.Seconds / contig.Seconds
	if slowdown < 1.8 {
		t.Errorf("stride slowdown = %.2fx, want >= 1.8x", slowdown)
	}
}

func TestActivateWindowThrottlesMissStorms(t *testing.T) {
	// A row-miss storm must run strictly slower with the tFAW limit than
	// without it.
	run := func(faw float64) float64 {
		cfg := testConfig()
		cfg.ActWindowNs = faw
		m := New(cfg)
		it, err := mem.NewIter(mem.ColMajorPattern(), 0, 1<<18, 64, mem.Read, 0)
		if err != nil {
			t.Fatal(err)
		}
		return m.Service(it).Seconds
	}
	limited := run(40)
	free := run(0)
	if limited <= free {
		t.Errorf("tFAW-limited run (%.3g s) must be slower than unlimited (%.3g s)",
			limited, free)
	}
}

func TestTurnaroundBatching(t *testing.T) {
	mk := func(batch int) Result {
		cfg := testConfig()
		cfg.BatchSize = batch
		cfg.ReorderWin = 2 * batch
		m := New(cfg)
		rd, err := mem.NewIter(mem.ContiguousPattern(), 0, 1<<16, 64, mem.Read, 0)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := mem.NewIter(mem.ContiguousPattern(), 1<<30, 1<<16, 64, mem.Write, 1)
		if err != nil {
			t.Fatal(err)
		}
		return m.Service(mem.NewInterleave(rd, wr))
	}
	batched := mk(16)
	unbatched := mk(1)
	if batched.Turnarounds >= unbatched.Turnarounds {
		t.Errorf("batching must reduce turnarounds: %d (batch16) vs %d (batch1)",
			batched.Turnarounds, unbatched.Turnarounds)
	}
	if batched.Seconds >= unbatched.Seconds {
		t.Errorf("batching must reduce time: %v vs %v", batched.Seconds, unbatched.Seconds)
	}
}

func TestPerStreamPlacementAvoidsTurnaround(t *testing.T) {
	cfg := testConfig()
	cfg.InterleaveBytes = 0 // stream tag picks the channel
	m := New(cfg)
	rd, err := mem.NewIter(mem.ContiguousPattern(), 0, 1<<16, 64, mem.Read, 0)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := mem.NewIter(mem.ContiguousPattern(), 0, 1<<16, 64, mem.Write, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Service(mem.NewInterleave(rd, wr))
	if res.Turnarounds != 0 {
		t.Errorf("per-stream placement saw %d turnarounds, want 0", res.Turnarounds)
	}
}

func TestChannelScaling(t *testing.T) {
	run := func(channels int) float64 {
		cfg := testConfig()
		cfg.Channels = channels
		m := New(cfg)
		return m.Service(contigReads(t, 1<<19, 64)).RequestedGBps()
	}
	one := run(1)
	two := run(2)
	if two < 1.8*one {
		t.Errorf("2 channels = %.2f GB/s, want ~2x 1 channel (%.2f GB/s)", two, one)
	}
}

func TestBoundedService(t *testing.T) {
	m := New(testConfig())
	res := m.ServiceBounded(contigReads(t, 1<<16, 64), 100)
	if res.Drained {
		t.Error("bounded run must not report drained")
	}
	if res.Txns != 100 {
		t.Errorf("bounded txns = %d, want 100", res.Txns)
	}
	full := m.Service(contigReads(t, 1<<16, 64))
	if !full.Drained || full.Txns != 1<<16 {
		t.Errorf("full run: drained=%v txns=%d", full.Drained, full.Txns)
	}
}

func TestRefreshLossSlowsDown(t *testing.T) {
	base := testConfig()
	base.RefreshLoss = 0
	withLoss := testConfig()
	withLoss.RefreshLoss = 0.10

	t0 := New(base).Service(contigReads(t, 1<<16, 64)).Seconds
	t1 := New(withLoss).Service(contigReads(t, 1<<16, 64)).Seconds
	ratio := t1 / t0
	if ratio < 1.09 || ratio > 1.13 {
		t.Errorf("10%% refresh loss ratio = %.4f, want ~1.111", ratio)
	}
}

func TestInitialLatency(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLatencyNs = 1000
	m := New(cfg)
	res := m.Service(contigReads(t, 16, 64))
	if res.Seconds < 1000e-9 {
		t.Errorf("elapsed %.3g s, must include 1000 ns initial latency", res.Seconds)
	}
}

func TestEmptySource(t *testing.T) {
	m := New(testConfig())
	it, err := mem.NewIter(mem.ContiguousPattern(), 0, 1, 4, mem.Read, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drain it first so the source is empty.
	it.Next()
	res := m.Service(it)
	if res.Txns != 0 || res.Seconds != 0 {
		t.Errorf("empty source result: %+v", res)
	}
	if res.RequestedGBps() != 0 || res.BusGBps() != 0 || res.RowHitRate() != 0 {
		t.Error("empty-source rates must be 0")
	}
}

func TestChannelRouting(t *testing.T) {
	cfg := testConfig()
	cfg.HashChannels = false

	// Without hashing, a 4 KB stride (4 interleave blocks, even) camps on
	// one channel.
	camped := map[int]bool{}
	for i := 0; i < 64; i++ {
		camped[cfg.ChannelOf(uint64(i)*4096, 0)] = true
	}
	if len(camped) != 1 {
		t.Errorf("unhashed pow2 stride used %d channels, want 1", len(camped))
	}

	// With hashing the same stride spreads over both channels.
	cfg.HashChannels = true
	spread := map[int]bool{}
	for i := 0; i < 4096; i++ {
		spread[cfg.ChannelOf(uint64(i)*4096, 0)] = true
	}
	if len(spread) != 2 {
		t.Errorf("hashed pow2 stride used %d channels, want 2", len(spread))
	}
}

func TestChannelRoutingPerStream(t *testing.T) {
	cfg := testConfig()
	cfg.InterleaveBytes = 0
	for stream := uint8(0); stream < 4; stream++ {
		want := int(stream) % cfg.Channels
		if got := cfg.ChannelOf(0xdeadbeef, stream); got != want {
			t.Errorf("stream %d -> channel %d, want %d", stream, got, want)
		}
	}
}

func TestChannelRoutingContiguousAlternates(t *testing.T) {
	cfg := testConfig()
	cfg.HashChannels = false
	// Contiguous blocks alternate channels at InterleaveBytes granularity.
	counts := map[int]int{}
	for i := 0; i < 128; i++ {
		counts[cfg.ChannelOf(uint64(i)*1024, 0)]++
	}
	if counts[0] != 64 || counts[1] != 64 {
		t.Errorf("contiguous interleave uneven: %v", counts)
	}
}

// Property: servicing more elements never takes less time, and byte
// accounting matches the source exactly.
func TestQuickMonotoneInSize(t *testing.T) {
	m := New(testConfig())
	f := func(a, b uint16) bool {
		na, nb := int(a%4096)+1, int(b%4096)+1
		if na > nb {
			na, nb = nb, na
		}
		ra := m.Service(contigReads(t, na, 64))
		rb := m.Service(contigReads(t, nb, 64))
		return ra.Seconds <= rb.Seconds+1e-15 &&
			ra.Bytes == uint64(na)*64 && rb.Bytes == uint64(nb)*64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: determinism — the same source replayed gives identical results.
func TestQuickDeterministic(t *testing.T) {
	m := New(testConfig())
	f := func(n uint16, strided bool) bool {
		elems := int(n%2048) + 1
		p := mem.ContiguousPattern()
		if strided {
			p = mem.StridedPattern(17)
		}
		mk := func() mem.Source {
			it, err := mem.NewIter(p, 4096, elems, 4, mem.Read, 0)
			if err != nil {
				t.Fatal(err)
			}
			return it
		}
		r1 := m.Service(mk())
		r2 := m.Service(mk())
		return r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHashBanksSpreadsPow2RowStrides(t *testing.T) {
	// A stride of exactly banks*rowBytes camps on one bank without
	// hashing; hashing spreads the activations and must run faster.
	run := func(hash bool) float64 {
		cfg := testConfig()
		cfg.HashBanks = hash
		cfg.Channels = 1
		cfg.InterleaveBytes = 0
		m := New(cfg)
		// 64 KB stride = 8 rows: bank index constant when unhashed.
		it, err := mem.NewIter(mem.StridedPattern(1024), 0, 1<<16, 64, mem.Read, 0)
		if err != nil {
			t.Fatal(err)
		}
		return m.Service(it).Seconds
	}
	hashed := run(true)
	unhashed := run(false)
	if hashed >= unhashed {
		t.Errorf("bank hashing must help pow2 row strides: hashed %.3gs vs unhashed %.3gs",
			hashed, unhashed)
	}
}

// loadedChase builds a probe chase over elems burst-sized elements.
func loadedChase(t testing.TB, elems, hops int) mem.Source {
	t.Helper()
	ch, err := mem.NewChaseIter(1<<32, elems, 64, hops, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestServiceLoadedIdleProbeLatency(t *testing.T) {
	m := New(testConfig())
	res := m.ServiceLoaded(nil, loadedChase(t, 1<<16, 200), LoadedOptions{})
	if res.ProbeTxns != 200 {
		t.Fatalf("probe txns = %d, want 200", res.ProbeTxns)
	}
	// A scattered serial chase misses rows nearly every hop: the idle
	// loaded latency must sit near RowMissNs + burst transfer, far above
	// the pure transfer time and far below a congested latency.
	avg := res.ProbeAvgNs()
	if avg < 40 || avg > 120 {
		t.Errorf("idle probe latency %.1f ns outside the plausible [40,120] window", avg)
	}
	if res.MaxLatencyNs < avg {
		t.Errorf("max latency %.1f below the average %.1f", res.MaxLatencyNs, avg)
	}
}

func TestServiceLoadedLatencyRisesWithInjectionRate(t *testing.T) {
	cfg := testConfig()
	peakGBps := cfg.PeakGBps()
	lat := func(frac float64) float64 {
		m := New(cfg)
		bg := contigReads(t, 1<<16, 64)
		probe := loadedChase(t, 1<<16, 1<<20)
		inter := float64(cfg.BurstBytes) / (frac * peakGBps)
		res := m.ServiceLoaded(bg, probe, LoadedOptions{
			InterArrivalNs: inter,
			MaxTxns:        1 << 14,
		})
		if res.ProbeTxns == 0 {
			t.Fatal("no probe hops serviced")
		}
		return res.ProbeAvgNs()
	}
	low, mid, high := lat(0.1), lat(0.6), lat(1.2)
	if !(low < mid && mid < high) {
		t.Errorf("loaded latency not monotone with injection rate: %.1f, %.1f, %.1f ns",
			low, mid, high)
	}
	// Over-saturation must visibly blow the latency up.
	if high < 3*low {
		t.Errorf("saturated latency %.1f ns not clearly above idle %.1f ns", high, low)
	}
}

func TestServiceLoadedAchievedBandwidthSaturates(t *testing.T) {
	cfg := testConfig()
	peak := cfg.PeakGBps()
	achieved := func(frac float64) float64 {
		m := New(cfg)
		bg := contigReads(t, 1<<16, 64)
		inter := float64(cfg.BurstBytes) / (frac * peak)
		res := m.ServiceLoaded(bg, nil, LoadedOptions{InterArrivalNs: inter, MaxTxns: 1 << 14})
		return res.RequestedGBps()
	}
	low := achieved(0.2)
	want := 0.2 * peak
	if low < 0.8*want || low > 1.05*want {
		t.Errorf("under low load achieved %.2f GB/s, want about the offered %.2f", low, want)
	}
	over := achieved(2.0)
	if over > peak {
		t.Errorf("achieved %.2f GB/s exceeds the %.2f GB/s peak", over, peak)
	}
	if over < low {
		t.Errorf("saturated bandwidth %.2f below low-load bandwidth %.2f", over, low)
	}
}

func TestServiceLoadedOccupancyAndDeterminism(t *testing.T) {
	cfg := testConfig()
	run := func() LoadedResult {
		m := New(cfg)
		bg := contigReads(t, 1<<13, 64)
		probe := loadedChase(t, 1<<16, 256)
		return m.ServiceLoaded(bg, probe, LoadedOptions{InterArrivalNs: 8})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("ServiceLoaded is not deterministic: %+v vs %+v", a, b)
	}
	if a.AvgOccupancy() <= 0 {
		t.Errorf("occupancy %.3f must be positive", a.AvgOccupancy())
	}
	if !a.Drained {
		t.Error("unbounded run must drain both sources")
	}
	if a.Txns != 1<<13+256 || a.Bytes == 0 {
		t.Errorf("unexpected result: %+v", a.Result)
	}
	if a.AvgLatencyNs() <= 0 || a.ProbeAvgNs() <= 0 {
		t.Errorf("latencies must be positive: %+v", a)
	}
}

func TestServiceLoadedMaxTxnsBounds(t *testing.T) {
	m := New(testConfig())
	res := m.ServiceLoaded(contigReads(t, 1<<14, 64), nil, LoadedOptions{
		InterArrivalNs: 4, MaxTxns: 100,
	})
	if res.Txns != 100 {
		t.Errorf("serviced %d txns, want 100", res.Txns)
	}
	if res.Drained {
		t.Error("bounded run must not report drained")
	}
}

func TestServiceLoadedEmpty(t *testing.T) {
	m := New(testConfig())
	res := m.ServiceLoaded(nil, nil, LoadedOptions{})
	if res.Txns != 0 || res.Seconds != 0 {
		t.Errorf("empty run produced %+v", res.Result)
	}
}

func TestServiceLoadedWarmupExcludedFromOccupancy(t *testing.T) {
	cfg := testConfig()
	run := func(warmup uint64) LoadedResult {
		m := New(cfg)
		return m.ServiceLoaded(contigReads(t, 1<<14, 64), nil, LoadedOptions{
			InterArrivalNs: 3,
			MaxTxns:        8192,
			WarmupTxns:     warmup,
		})
	}
	warm := run(2048)
	if warm.MeasuredTxns != 8192-2048 {
		t.Errorf("measured %d txns, want %d", warm.MeasuredTxns, 8192-2048)
	}
	if warm.MeasuredSpanNs <= 0 || warm.MeasuredSpanNs >= warm.Seconds*1e9 {
		t.Errorf("measured span %.1f ns must be positive and below the full run %.1f ns",
			warm.MeasuredSpanNs, warm.Seconds*1e9)
	}
	// Occupancy over the measured span must agree with the steady state
	// a warmup-free run reports, not be diluted by the excluded quarter.
	cold := run(0)
	ratio := warm.AvgOccupancy() / cold.AvgOccupancy()
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("warmup skews occupancy: %.3f vs %.3f (ratio %.2f)",
			warm.AvgOccupancy(), cold.AvgOccupancy(), ratio)
	}
}
