package dram

// Frozen pre-optimization reference implementations of the service
// paths, copied verbatim (modulo ref* renames) from the code as it
// stood before the hot-path rework. The parity tests drive the live,
// optimized paths and these references over identical configurations
// and request streams and demand exactly equal Results — float-for-
// float, counter-for-counter. The references are deliberately naive
// (per-call allocation, O(n^2) buffer removal, reflection sort) so any
// behavioural shortcut taken by the optimized code shows up as a diff.

import (
	"sort"

	"mpstream/internal/sim/mem"
)

// refChanState is the pre-optimization per-channel state: banks and
// rings held in per-channel slices, ring cursors advanced by modulo.
type refChanState struct {
	busFree float64
	lastOp  mem.Op
	hasOp   bool
	banks   []bankState
	ring    []float64
	head    int
	actRing []float64
	actHead int
}

func (cs *refChanState) gate() float64 {
	return cs.ring[cs.head]
}

func (cs *refChanState) complete(t float64) {
	cs.ring[cs.head] = t
	cs.head = (cs.head + 1) % len(cs.ring)
}

func (cs *refChanState) activate(at, windowNs float64) float64 {
	if cs.actRing == nil {
		return at
	}
	if g := cs.actRing[cs.actHead] + windowNs; at < g {
		at = g
	}
	cs.actRing[cs.actHead] = at
	cs.actHead = (cs.actHead + 1) % len(cs.actRing)
	return at
}

func refNewChanStates(cfg Config) []refChanState {
	chans := make([]refChanState, cfg.Channels)
	for i := range chans {
		chans[i] = refChanState{
			banks: make([]bankState, cfg.BanksPerChannel),
			ring:  make([]float64, cfg.MaxOutstanding),
		}
		if cfg.ActWindowNs > 0 {
			chans[i].actRing = make([]float64, cfg.ActsPerWindow)
			for a := range chans[i].actRing {
				chans[i].actRing[a] = -cfg.ActWindowNs
			}
		}
		for b := range chans[i].banks {
			chans[i].banks[b].openRow = -1
		}
	}
	return chans
}

func refIssue(cfg Config, res *Result, chans []refChanState, r mem.Request, burstNs, earliest float64) float64 {
	chIdx, chAddr := cfg.route(r.Addr, r.Stream)
	ch := &chans[chIdx]

	rowIdx := chAddr / uint64(cfg.RowBytes)
	bankSel := rowIdx
	if cfg.HashBanks {
		bankSel = hashBlock(rowIdx)
	}
	bankIdx := int(bankSel % uint64(cfg.BanksPerChannel))
	row := int64(rowIdx)
	bank := &ch.banks[bankIdx]

	if ch.hasOp && ch.lastOp != r.Op {
		ch.busFree += cfg.TurnaroundNs
		res.Turnarounds++
	}
	ch.lastOp, ch.hasOp = r.Op, true

	bursts := mem.LinesTouched(r, cfg.BurstBytes)
	transfer := float64(bursts) * burstNs

	var ready float64
	if bank.openRow == row {
		ready = earliest
		res.RowHits++
	} else {
		base := bank.freeAt
		if base < earliest {
			base = earliest
		}
		act := ch.activate(base, cfg.ActWindowNs)
		ready = act + cfg.RowMissNs
		bank.openRow = row
		res.RowMisses++
	}

	issueAt := ch.busFree
	if issueAt < ready {
		issueAt = ready
	}
	if g := ch.gate(); issueAt < g {
		issueAt = g
	}
	if issueAt < earliest {
		issueAt = earliest
	}
	end := issueAt + transfer

	ch.busFree = end
	bank.freeAt = end
	ch.complete(end)

	res.Txns++
	res.Bytes += uint64(r.Size)
	res.BusBytes += uint64(bursts) * uint64(cfg.BurstBytes)
	return end
}

// refFinish is finish without the telemetry hook (the references must
// not perturb live observability counters).
func refFinish(res *Result, chans []refChanState, start float64, cfg Config, drained bool) {
	endNs := start
	for i := range chans {
		if chans[i].busFree > endNs {
			endNs = chans[i].busFree
		}
	}
	elapsedNs := endNs
	if res.Txns == 0 {
		elapsedNs = 0
	}
	if cfg.RefreshLoss > 0 {
		elapsedNs /= 1 - cfg.RefreshLoss
	}
	res.Seconds = elapsedNs * 1e-9
	res.Drained = drained
}

func refHasOp(buf []mem.Request, op mem.Op) bool {
	for _, r := range buf {
		if r.Op == op {
			return true
		}
	}
	return false
}

// refServiceBounded is the pre-optimization closed-loop service path.
func refServiceBounded(m *Model, src mem.Source, maxTxns uint64) Result {
	cfg := m.cfg
	chans := refNewChanStates(cfg)

	var res Result
	burstNs := float64(cfg.BurstBytes) / cfg.BusGBps
	start := cfg.InitialLatencyNs

	buf := make([]mem.Request, 0, cfg.ReorderWin)
	fill := func() {
		for len(buf) < cfg.ReorderWin {
			r, ok := src.Next()
			if !ok {
				return
			}
			buf = append(buf, r)
		}
	}
	fill()

	curOp := mem.Read
	if len(buf) > 0 {
		curOp = buf[0].Op
	}

	globalBatch := cfg.BatchSize * cfg.Channels
	batch := make([]mem.Request, 0, globalBatch)

	for len(buf) > 0 {
		if maxTxns > 0 && res.Txns >= maxTxns {
			refFinish(&res, chans, start, cfg, false)
			return res
		}
		batch = batch[:0]
		for i := 0; i < len(buf) && len(batch) < globalBatch; {
			if buf[i].Op != curOp {
				i++
				continue
			}
			batch = append(batch, buf[i])
			buf = append(buf[:i], buf[i+1:]...)
		}
		issued := len(batch)
		sort.Slice(batch, func(i, j int) bool { return batch[i].Addr < batch[j].Addr })
		for _, r := range batch {
			refIssue(cfg, &res, chans, r, burstNs, start)
			if maxTxns > 0 && res.Txns >= maxTxns {
				refFinish(&res, chans, start, cfg, false)
				return res
			}
		}
		fill()
		if issued == 0 {
			curOp = otherOp(curOp)
			continue
		}
		if refHasOp(buf, otherOp(curOp)) {
			curOp = otherOp(curOp)
		}
	}
	refFinish(&res, chans, start, cfg, true)
	return res
}

// refServiceLoaded is the pre-optimization open-loop service path.
func refServiceLoaded(m *Model, bg, probe mem.Source, opts LoadedOptions) LoadedResult {
	cfg := m.cfg
	chans := refNewChanStates(cfg)

	var res LoadedResult
	burstNs := float64(cfg.BurstBytes) / cfg.BusGBps
	start := cfg.InitialLatencyNs
	inter := opts.InterArrivalNs
	if inter <= 0 {
		inter = burstNs
	}

	var (
		bgReq, probeReq         mem.Request
		bgOK, probeOK           bool
		bgArrival, probeArrival float64
		slot                    int
	)
	pullBg := func() {
		if bg == nil {
			bgOK = false
			return
		}
		if bgReq, bgOK = bg.Next(); bgOK {
			bgArrival = start + float64(slot)*inter
			slot++
		}
	}
	pullProbe := func(after float64) {
		if probe == nil {
			probeOK = false
			return
		}
		if probeReq, probeOK = probe.Next(); probeOK {
			probeArrival = after
		}
	}
	pullBg()
	pullProbe(start)

	maxEnd, measureStart := start, start
	for bgOK || probeOK {
		if opts.MaxTxns > 0 && res.Txns >= opts.MaxTxns {
			break
		}
		warm := res.Txns >= opts.WarmupTxns
		if warm && res.MeasuredTxns == 0 {
			measureStart = maxEnd
		}
		var end float64
		if bgOK && (!probeOK || bgArrival <= probeArrival) {
			end = refIssue(cfg, &res.Result, chans, bgReq, burstNs, bgArrival)
			if warm {
				record(&res, end-bgArrival, false)
			}
			pullBg()
		} else {
			end = refIssue(cfg, &res.Result, chans, probeReq, burstNs, probeArrival)
			if warm {
				record(&res, end-probeArrival, true)
			}
			pullProbe(end)
		}
		if end > maxEnd {
			maxEnd = end
		}
	}
	res.MeasuredSpanNs = maxEnd - measureStart
	refFinish(&res.Result, chans, start, cfg, !bgOK && !probeOK)
	return res
}
