package dram

// Parity tests: the optimized service paths must reproduce the frozen
// reference implementations (reference_test.go) exactly — every float
// and every counter — across a randomized sweep of configurations and
// request streams. This is the per-package proof backing the repo-level
// golden digests: the goldens pin whole results, these tests pin the
// service paths in isolation with far denser configuration coverage.

import (
	"math/rand"
	"testing"

	"mpstream/internal/sim/mem"
)

// randomConfig draws a valid configuration exercising the model's
// geometry and policy space.
func randomConfig(rng *rand.Rand) Config {
	pow2 := func(lo, hi int) uint32 { return 1 << (lo + rng.Intn(hi-lo+1)) }
	cfg := Config{
		Name:            "parity",
		Channels:        1 + rng.Intn(4),
		BanksPerChannel: 1 << rng.Intn(4),
		RowBytes:        pow2(9, 12), // 512 B .. 4 KiB
		BurstBytes:      pow2(4, 7),  // 16 B .. 128 B
		BusGBps:         1 + 30*rng.Float64(),
		RowMissNs:       20 * rng.Float64(),
		TurnaroundNs:    10 * rng.Float64(),
		BatchSize:       1 << rng.Intn(5),
		MaxOutstanding:  1 + rng.Intn(32),
		RefreshLoss:     0.05 * rng.Float64(),
	}
	if rng.Intn(2) == 0 {
		cfg.InterleaveBytes = pow2(6, 10)
		cfg.HashChannels = rng.Intn(2) == 0
	}
	cfg.HashBanks = rng.Intn(2) == 0
	if rng.Intn(2) == 0 {
		cfg.ActWindowNs = 10 + 30*rng.Float64()
		cfg.ActsPerWindow = 1 + rng.Intn(4)
	}
	if rng.Intn(2) == 0 {
		cfg.InitialLatencyNs = 100 * rng.Float64()
	}
	return cfg
}

// randomStream builds a request source mixing the real generator types;
// build returns a fresh identical stream on every call so the live and
// reference paths each consume their own.
func randomStream(rng *rand.Rand, burst uint32) func() mem.Source {
	kind := rng.Intn(4)
	elems := 64 + rng.Intn(2048)
	stride := 1 + rng.Intn(32)
	readFrac := rng.Float64()
	hops := 32 + rng.Intn(512)
	seedElems := elems // captured: identical streams per call
	switch kind {
	case 0: // interleaved contiguous read/write pair (copy-shaped)
		return func() mem.Source {
			r, _ := mem.NewIter(mem.ContiguousPattern(), 0, seedElems, burst, mem.Read, 1)
			w, _ := mem.NewIter(mem.ContiguousPattern(), 1<<31, seedElems, burst, mem.Write, 0)
			return mem.NewInterleave(r, w)
		}
	case 1: // strided reads through a coalescer
		return func() mem.Source {
			it, _ := mem.NewIter(mem.StridedPattern(stride), 0, seedElems, 4, mem.Read, 1)
			return mem.NewCoalescer(it, burst)
		}
	case 2: // error-diffusion read/write mix
		return func() mem.Source {
			r, _ := mem.NewIter(mem.ContiguousPattern(), 0, seedElems, burst, mem.Read, 1)
			w, _ := mem.NewIter(mem.ContiguousPattern(), 1<<31, seedElems, burst, mem.Write, 0)
			return mem.NewMix(r, w, readFrac, 0)
		}
	default: // pointer chase
		return func() mem.Source {
			c, _ := mem.NewChaseIter(3<<31, seedElems, burst, hops, 3)
			return c
		}
	}
}

func TestServiceBoundedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		cfg := randomConfig(rng)
		build := randomStream(rng, cfg.BurstBytes)
		var maxTxns uint64
		if rng.Intn(2) == 0 {
			maxTxns = uint64(1 + rng.Intn(512))
		}
		m := New(cfg)
		got := m.ServiceBounded(build(), maxTxns)
		want := refServiceBounded(m, build(), maxTxns)
		if got != want {
			t.Fatalf("trial %d (cfg %+v, maxTxns %d):\n got  %+v\n want %+v",
				trial, m.Config(), maxTxns, got, want)
		}
	}
}

func TestServiceBoundedArenaReuseMatchesReference(t *testing.T) {
	// Back-to-back runs on one model reuse the arena; every run must
	// still start cold.
	rng := rand.New(rand.NewSource(11))
	cfg := randomConfig(rng)
	m := New(cfg)
	build := randomStream(rng, cfg.BurstBytes)
	want := refServiceBounded(m, build(), 0)
	for run := 0; run < 3; run++ {
		if got := m.ServiceBounded(build(), 0); got != want {
			t.Fatalf("run %d diverged after arena reuse:\n got  %+v\n want %+v", run, got, want)
		}
	}
}

func TestServiceLoadedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		cfg := randomConfig(rng)
		bgBuild := randomStream(rng, cfg.BurstBytes)
		hops := 32 + rng.Intn(256)
		elems := 64 + rng.Intn(1024)
		probeBuild := func() mem.Source {
			c, _ := mem.NewChaseIter(3<<31, elems, cfg.BurstBytes, hops, 3)
			return c
		}
		opts := LoadedOptions{
			InterArrivalNs: 5 * rng.Float64(),
			MaxTxns:        uint64(rng.Intn(1024)),
			WarmupTxns:     uint64(rng.Intn(64)),
		}
		var bg1, bg2, pr1, pr2 mem.Source
		switch rng.Intn(3) {
		case 0: // background only
			bg1, bg2 = bgBuild(), bgBuild()
		case 1: // probe only
			pr1, pr2 = probeBuild(), probeBuild()
		default: // both
			bg1, bg2 = bgBuild(), bgBuild()
			pr1, pr2 = probeBuild(), probeBuild()
		}
		m := New(cfg)
		got := m.ServiceLoaded(bg1, pr1, opts)
		want := refServiceLoaded(m, bg2, pr2, opts)
		if got != want {
			t.Fatalf("trial %d (cfg %+v, opts %+v):\n got  %+v\n want %+v",
				trial, m.Config(), opts, got, want)
		}
	}
}

// TestServiceLoadedRoutedMatchesReference is the routed-parity test:
// Preroute + ServiceLoadedRouted must reproduce the frozen reference —
// and therefore ServiceLoaded — float for float, and a rewound or
// recycled stream must replay identically. The surface sweep leans on
// exactly these three properties.
func TestServiceLoadedRoutedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var scratch *Prerouted // recycled across trials, like the surface sweep's
	for trial := 0; trial < 200; trial++ {
		cfg := randomConfig(rng)
		bgBuild := randomStream(rng, cfg.BurstBytes)
		hops := 32 + rng.Intn(256)
		elems := 64 + rng.Intn(1024)
		probeBuild := func() mem.Source {
			c, _ := mem.NewChaseIter(3<<31, elems, cfg.BurstBytes, hops, 3)
			return c
		}
		opts := LoadedOptions{
			InterArrivalNs: 5 * rng.Float64(),
			MaxTxns:        uint64(rng.Intn(1024)),
			WarmupTxns:     uint64(rng.Intn(64)),
		}
		const drain = 1 << 16 // larger than any stream above
		m := New(cfg)
		var bg, pr *Prerouted
		var bgRef, prRef mem.Source
		switch rng.Intn(3) {
		case 0: // background only
			bg, bgRef = m.Preroute(bgBuild(), drain), bgBuild()
		case 1: // probe only
			pr, prRef = m.Preroute(probeBuild(), drain), probeBuild()
		default: // both
			bg, bgRef = m.Preroute(bgBuild(), drain), bgBuild()
			pr, prRef = m.Preroute(probeBuild(), drain), probeBuild()
		}
		got := m.ServiceLoadedRouted(bg, pr, opts)
		want := refServiceLoaded(m, bgRef, prRef, opts)
		if got != want {
			t.Fatalf("trial %d (cfg %+v, opts %+v):\n got  %+v\n want %+v",
				trial, m.Config(), opts, got, want)
		}
		// A rewound stream must replay the run exactly, and a stream
		// decoded into a recycled backing array must match a fresh one.
		if bg != nil {
			bg.Reset()
			scratch = m.PrerouteInto(scratch, bgBuild(), drain)
			if len(scratch.reqs) != len(bg.reqs) {
				t.Fatalf("trial %d: recycled preroute length %d, fresh %d",
					trial, len(scratch.reqs), len(bg.reqs))
			}
			for i := range scratch.reqs {
				if scratch.reqs[i] != bg.reqs[i] {
					t.Fatalf("trial %d: recycled preroute diverges at %d: %+v vs %+v",
						trial, i, scratch.reqs[i], bg.reqs[i])
				}
			}
		}
		if pr != nil {
			pr.Reset()
		}
		if again := m.ServiceLoadedRouted(bg, pr, opts); again != got {
			t.Fatalf("trial %d: rewound replay diverged:\n got  %+v\n want %+v",
				trial, again, got)
		}
	}
}
