// Package event implements a small discrete-event scheduler used by the
// memory-system models.
//
// The scheduler is a calendar of (time, sequence, action) entries kept in a
// binary heap. Events scheduled for the same instant fire in scheduling
// order, which keeps simulations deterministic. Actions may schedule
// further events; Run drains the calendar until it is empty, a horizon is
// reached, or an event budget is exhausted.
package event

import (
	"container/heap"
	"errors"

	"mpstream/internal/sim/clock"
)

// Action is the work performed when an event fires. It receives the
// scheduler so it can schedule follow-up events, and the current simulated
// time.
type Action func(s *Scheduler, now clock.Time)

type entry struct {
	at     clock.Time
	seq    uint64
	action Action
}

type calendar []entry

func (c calendar) Len() int { return len(c) }

func (c calendar) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	return c[i].seq < c[j].seq
}

func (c calendar) Swap(i, j int) { c[i], c[j] = c[j], c[i] }

func (c *calendar) Push(x any) { *c = append(*c, x.(entry)) }

func (c *calendar) Pop() any {
	old := *c
	n := len(old)
	e := old[n-1]
	*c = old[:n-1]
	return e
}

// ErrBudget is returned by Run when the event budget is exhausted before
// the calendar drains. It usually indicates a runaway model.
var ErrBudget = errors.New("event: event budget exhausted")

// Scheduler is a discrete-event simulator clock plus pending-event calendar.
// The zero value is ready to use.
type Scheduler struct {
	cal  calendar
	now  clock.Time
	seq  uint64
	nRun uint64
}

// Now returns the current simulated time.
func (s *Scheduler) Now() clock.Time { return s.now }

// Pending returns the number of events waiting in the calendar.
func (s *Scheduler) Pending() int { return len(s.cal) }

// Processed returns the number of events fired so far.
func (s *Scheduler) Processed() uint64 { return s.nRun }

// At schedules a to fire at absolute simulated time t. Scheduling in the
// past clamps to the present: models only move forward.
func (s *Scheduler) At(t clock.Time, a Action) {
	if t < s.now {
		t = s.now
	}
	heap.Push(&s.cal, entry{at: t, seq: s.seq, action: a})
	s.seq++
}

// After schedules a to fire delta seconds from now.
func (s *Scheduler) After(delta float64, a Action) {
	if delta < 0 {
		delta = 0
	}
	s.At(s.now.AddSeconds(delta), a)
}

// Run fires events in time order until the calendar is empty or maxEvents
// have fired. A maxEvents of 0 means no budget. It returns the final
// simulated time and ErrBudget if the budget ran out first.
func (s *Scheduler) Run(maxEvents uint64) (clock.Time, error) {
	var fired uint64
	for len(s.cal) > 0 {
		if maxEvents > 0 && fired >= maxEvents {
			return s.now, ErrBudget
		}
		e := heap.Pop(&s.cal).(entry)
		s.now = e.at
		s.nRun++
		fired++
		e.action(s, s.now)
	}
	return s.now, nil
}

// RunUntil fires events in time order while their timestamps are <= horizon.
// Events beyond the horizon remain pending. It returns the simulated time
// after the last fired event (or the horizon if nothing fired beyond it).
func (s *Scheduler) RunUntil(horizon clock.Time, maxEvents uint64) (clock.Time, error) {
	var fired uint64
	for len(s.cal) > 0 && s.cal[0].at <= horizon {
		if maxEvents > 0 && fired >= maxEvents {
			return s.now, ErrBudget
		}
		e := heap.Pop(&s.cal).(entry)
		s.now = e.at
		s.nRun++
		fired++
		e.action(s, s.now)
	}
	if s.now < horizon {
		s.now = horizon
	}
	return s.now, nil
}
