package event

import (
	"testing"
	"testing/quick"

	"mpstream/internal/sim/clock"
)

func TestZeroValueReady(t *testing.T) {
	var s Scheduler
	if s.Now() != 0 || s.Pending() != 0 || s.Processed() != 0 {
		t.Fatal("zero Scheduler must start at epoch with empty calendar")
	}
	if _, err := s.Run(0); err != nil {
		t.Fatalf("Run on empty calendar: %v", err)
	}
}

func TestFiringOrder(t *testing.T) {
	var s Scheduler
	var order []int
	s.At(3, func(*Scheduler, clock.Time) { order = append(order, 3) })
	s.At(1, func(*Scheduler, clock.Time) { order = append(order, 1) })
	s.At(2, func(*Scheduler, clock.Time) { order = append(order, 2) })
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 3 {
		t.Errorf("final time = %v, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("firing order = %v, want [1 2 3]", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	var s Scheduler
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func(*Scheduler, clock.Time) { order = append(order, i) })
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var s Scheduler
	var firedAt clock.Time
	s.At(10, func(s *Scheduler, now clock.Time) {
		s.At(1, func(_ *Scheduler, inner clock.Time) { firedAt = inner })
	})
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if firedAt != 10 {
		t.Errorf("past event fired at %v, want clamped to 10", firedAt)
	}
	if end != 10 {
		t.Errorf("end = %v, want 10", end)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	var s Scheduler
	fired := false
	s.After(-5, func(*Scheduler, clock.Time) { fired = true })
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !fired || end != 0 {
		t.Errorf("negative After must fire immediately at now: fired=%v end=%v", fired, end)
	}
}

func TestCascade(t *testing.T) {
	var s Scheduler
	count := 0
	var spawn Action
	spawn = func(s *Scheduler, now clock.Time) {
		count++
		if count < 100 {
			s.After(1, spawn)
		}
	}
	s.After(1, spawn)
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("cascade fired %d times, want 100", count)
	}
	if end != 100 {
		t.Errorf("end = %v, want 100", end)
	}
	if s.Processed() != 100 {
		t.Errorf("Processed = %d, want 100", s.Processed())
	}
}

func TestBudget(t *testing.T) {
	var s Scheduler
	var spawn Action
	spawn = func(s *Scheduler, now clock.Time) { s.After(1, spawn) }
	s.After(1, spawn)
	if _, err := s.Run(50); err != ErrBudget {
		t.Fatalf("Run error = %v, want ErrBudget", err)
	}
	if s.Processed() != 50 {
		t.Errorf("Processed = %d, want 50", s.Processed())
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	var fired []clock.Time
	for _, at := range []clock.Time{1, 2, 3, 10, 20} {
		at := at
		s.At(at, func(_ *Scheduler, now clock.Time) { fired = append(fired, now) })
	}
	now, err := s.RunUntil(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events before horizon, want 3", len(fired))
	}
	if now != 5 {
		t.Errorf("now = %v, want horizon 5", now)
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	// Continue past the horizon.
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 20 || len(fired) != 5 {
		t.Errorf("after full Run: end=%v fired=%d", end, len(fired))
	}
}

func TestRunUntilBudget(t *testing.T) {
	var s Scheduler
	for i := 0; i < 10; i++ {
		s.At(clock.Time(i), func(*Scheduler, clock.Time) {})
	}
	if _, err := s.RunUntil(100, 3); err != ErrBudget {
		t.Fatalf("RunUntil error = %v, want ErrBudget", err)
	}
}

// Property: events always fire in non-decreasing time order, whatever the
// insertion order.
func TestQuickTimeOrdered(t *testing.T) {
	f := func(times []uint16) bool {
		var s Scheduler
		var fired []clock.Time
		for _, raw := range times {
			at := clock.Time(raw)
			s.At(at, func(_ *Scheduler, now clock.Time) { fired = append(fired, now) })
		}
		if _, err := s.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
