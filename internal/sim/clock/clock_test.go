package clock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHzString(t *testing.T) {
	cases := []struct {
		f    Hz
		want string
	}{
		{300 * MHz, "300 MHz"},
		{2.5 * GHz, "2.5 GHz"},
		{800 * KHz, "800 kHz"},
		{50, "50 Hz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("Hz(%v).String() = %q, want %q", float64(c.f), got, c.want)
		}
	}
}

func TestPeriod(t *testing.T) {
	if got := (1 * GHz).Period(); got != time.Nanosecond {
		t.Errorf("1 GHz period = %v, want 1ns", got)
	}
	if got := Hz(0).Period(); got != 0 {
		t.Errorf("0 Hz period = %v, want 0", got)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	f := 250 * MHz
	n := Cycle(1_000_000)
	d := f.Duration(n)
	if got := f.Cycles(d); got != n {
		t.Errorf("round trip %d cycles -> %v -> %d cycles", n, d, got)
	}
}

func TestCyclesRoundsUp(t *testing.T) {
	f := 1 * GHz
	// 3 ns at 1 GHz is exactly 3 cycles; 3ns at 400 MHz (period 2.5ns) is
	// 1.2 cycles and must round up to 2.
	if got := f.Cycles(3 * time.Nanosecond); got != 3 {
		t.Errorf("Cycles(3ns @ 1GHz) = %d, want 3", got)
	}
	if got := (400 * MHz).Cycles(3 * time.Nanosecond); got != 2 {
		t.Errorf("Cycles(3ns @ 400MHz) = %d, want 2", got)
	}
	if got := f.Cycles(-time.Second); got != 0 {
		t.Errorf("Cycles(negative) = %d, want 0", got)
	}
}

func TestSeconds(t *testing.T) {
	f := 100 * MHz
	if got := f.Seconds(100_000_000); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Seconds = %v, want 1.0", got)
	}
	if got := Hz(0).Seconds(5); got != 0 {
		t.Errorf("Seconds at 0 Hz = %v, want 0", got)
	}
}

func TestCyclesForBytes(t *testing.T) {
	cases := []struct {
		n    int64
		bpc  float64
		want Cycle
	}{
		{64, 8, 8},
		{65, 8, 9},
		{1, 64, 1},
		{0, 8, 0},
		{-5, 8, 0},
		{100, 0, 0},
	}
	for _, c := range cases {
		if got := CyclesForBytes(c.n, c.bpc); got != c.want {
			t.Errorf("CyclesForBytes(%d, %g) = %d, want %d", c.n, c.bpc, got, c.want)
		}
	}
}

func TestBytesPerSecond(t *testing.T) {
	got := BytesPerSecond(8, 200*MHz)
	if math.Abs(got-1.6e9) > 1 {
		t.Errorf("BytesPerSecond(8, 200MHz) = %v, want 1.6e9", got)
	}
	if BytesPerSecond(-1, GHz) != 0 || BytesPerSecond(8, -GHz) != 0 {
		t.Error("non-positive inputs must yield 0")
	}
}

func TestTimeArithmetic(t *testing.T) {
	var epoch Time
	t1 := epoch.Add(time.Millisecond)
	if math.Abs(t1.Seconds()-0.001) > 1e-12 {
		t.Errorf("Add(1ms) = %v s, want 0.001", t1.Seconds())
	}
	t2 := t1.AddSeconds(0.5)
	if math.Abs(t2.Seconds()-0.501) > 1e-12 {
		t.Errorf("AddSeconds = %v s, want 0.501", t2.Seconds())
	}
	if t2.Max(t1) != t2 || t1.Max(t2) != t2 {
		t.Error("Max must return the later time")
	}
	if got := t1.Duration(); got != time.Millisecond {
		t.Errorf("Duration = %v, want 1ms", got)
	}
}

func TestGBpsKBps(t *testing.T) {
	if got := GBps(2e9, 1.0); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("GBps = %v, want 2", got)
	}
	if got := KBps(2e6, 1.0); math.Abs(got-2000) > 1e-9 {
		t.Errorf("KBps = %v, want 2000", got)
	}
	if GBps(100, 0) != 0 || KBps(100, -1) != 0 {
		t.Error("non-positive time must yield 0 rate")
	}
}

// Property: converting cycles to a duration and back loses at most the
// cycles that fit in one nanosecond (time.Duration granularity) plus one
// cycle of round-up slack.
func TestQuickCycleDurationMonotone(t *testing.T) {
	f := func(n uint32, mhz uint16) bool {
		freq := Hz(float64(mhz%4000)+1) * MHz
		c := Cycle(n)
		d := freq.Duration(c)
		back := freq.Cycles(d)
		slack := Cycle(float64(freq)/1e9) + 1
		lo := Cycle(0)
		if c > slack {
			lo = c - slack
		}
		return back >= lo && back <= c+slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CyclesForBytes is monotone in n.
func TestQuickCyclesForBytesMonotone(t *testing.T) {
	f := func(a, b uint32, w uint8) bool {
		bpc := float64(w%64) + 1
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return CyclesForBytes(x, bpc) <= CyclesForBytes(y, bpc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
