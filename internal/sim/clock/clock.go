// Package clock provides cycle and frequency arithmetic shared by all
// device timing models.
//
// Device models count time in integer cycles of some clock domain and
// convert to wall-clock durations only at reporting boundaries. Keeping
// cycle counts integral makes simulations deterministic and immune to
// floating-point drift over long runs.
package clock

import (
	"fmt"
	"math"
	"time"
)

// Cycle is a count of clock cycles in some clock domain.
type Cycle uint64

// Hz is a clock frequency in cycles per second.
type Hz float64

// Common frequency units.
const (
	KHz Hz = 1e3
	MHz Hz = 1e6
	GHz Hz = 1e9
)

// String formats the frequency with a human unit, e.g. "300 MHz".
func (f Hz) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.3g GHz", float64(f/GHz))
	case f >= MHz:
		return fmt.Sprintf("%.3g MHz", float64(f/MHz))
	case f >= KHz:
		return fmt.Sprintf("%.3g kHz", float64(f/KHz))
	default:
		return fmt.Sprintf("%g Hz", float64(f))
	}
}

// Period returns the duration of a single cycle.
func (f Hz) Period() time.Duration {
	if f <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / float64(f))
}

// Duration converts n cycles in this clock domain to a wall-clock duration.
func (f Hz) Duration(n Cycle) time.Duration {
	if f <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(f) * float64(time.Second))
}

// Seconds converts n cycles in this clock domain to seconds.
func (f Hz) Seconds(n Cycle) float64 {
	if f <= 0 {
		return 0
	}
	return float64(n) / float64(f)
}

// Cycles returns the number of whole cycles covering d, rounding up: any
// fraction of a cycle occupies the full cycle. A non-positive duration is
// zero cycles.
func (f Hz) Cycles(d time.Duration) Cycle {
	if d <= 0 || f <= 0 {
		return 0
	}
	c := float64(d) / float64(time.Second) * float64(f)
	return Cycle(math.Ceil(c))
}

// CyclesForBytes returns the whole cycles needed to move n bytes over a
// datapath carrying bytesPerCycle bytes each cycle, rounding up.
func CyclesForBytes(n int64, bytesPerCycle float64) Cycle {
	if n <= 0 || bytesPerCycle <= 0 {
		return 0
	}
	return Cycle(math.Ceil(float64(n) / bytesPerCycle))
}

// BytesPerSecond converts a per-cycle byte width at frequency f into a
// bandwidth in bytes per second.
func BytesPerSecond(bytesPerCycle float64, f Hz) float64 {
	if bytesPerCycle <= 0 || f <= 0 {
		return 0
	}
	return bytesPerCycle * float64(f)
}

// Time is a point on a simulated timeline, measured from the start of a
// simulation. The zero Time is the simulation epoch.
type Time float64

// TimeFromDuration converts a wall-clock duration into simulated time.
func TimeFromDuration(d time.Duration) Time {
	return Time(d.Seconds())
}

// Duration converts simulated time (from epoch) to a wall-clock duration.
func (t Time) Duration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

// Seconds reports the simulated time in seconds from the epoch.
func (t Time) Seconds() float64 { return float64(t) }

// Add advances the time by d.
func (t Time) Add(d time.Duration) Time {
	return t + TimeFromDuration(d)
}

// AddSeconds advances the time by s seconds.
func (t Time) AddSeconds(s float64) Time { return t + Time(s) }

// Max returns the later of t and u.
func (t Time) Max(u Time) Time {
	if t > u {
		return t
	}
	return u
}

// GBps expresses a byte rate in the paper's GB/s (1e9 bytes per second).
func GBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e9
}

// KBps expresses a byte rate in the paper's KB/s (1e3 bytes per second),
// the unit used by Figures 3 and 4(a).
func KBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e3
}
