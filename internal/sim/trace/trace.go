// Package trace records and replays memory request streams.
//
// A trace decouples workload capture from timing: record the transaction
// stream one kernel configuration generates (after coalescing, caches,
// or any other stage), then replay it later through a different memory
// model, compare controllers, or archive it alongside results. The
// format is a line-oriented text format, one request per line:
//
//	# optional comments
//	R addr size stream
//	W addr size stream
//
// with addr in hex and size/stream in decimal. Text keeps traces
// diff-able and greppable; they compress well when archived.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mpstream/internal/sim/mem"
)

// Writer records requests to an underlying io.Writer.
type Writer struct {
	w     *bufio.Writer
	count int
	err   error
}

// NewWriter starts a trace, emitting a format header comment.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	tw := &Writer{w: bw}
	_, tw.err = fmt.Fprintln(bw, "# mpstream trace v1: <R|W> <hex addr> <size> <stream>")
	return tw
}

// Write records one request.
func (t *Writer) Write(r mem.Request) error {
	if t.err != nil {
		return t.err
	}
	op := "R"
	if r.Op == mem.Write {
		op = "W"
	}
	_, t.err = fmt.Fprintf(t.w, "%s %x %d %d\n", op, r.Addr, r.Size, r.Stream)
	if t.err == nil {
		t.count++
	}
	return t.err
}

// Drain records every request from a source, returning the count.
func (t *Writer) Drain(src mem.Source) (int, error) {
	n := 0
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if err := t.Write(r); err != nil {
			return n, err
		}
		n++
	}
	return n, t.Flush()
}

// Count returns the number of requests recorded.
func (t *Writer) Count() int { return t.count }

// Flush flushes the underlying buffer.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader replays a trace as a mem.Source.
type Reader struct {
	sc   *bufio.Scanner
	next mem.Request
	have bool
	line int
	err  error
}

// NewReader opens a trace for replay.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	return &Reader{sc: sc}
}

// Err returns the first parse error encountered (replay stops there).
func (t *Reader) Err() error { return t.err }

// Remaining is unknown for a stream; it returns 1 while requests may
// remain and 0 at end, satisfying mem.Source's contract loosely.
func (t *Reader) Remaining() int {
	if t.peek() {
		return 1
	}
	return 0
}

// Next yields the next request in the trace.
func (t *Reader) Next() (mem.Request, bool) {
	if !t.peek() {
		return mem.Request{}, false
	}
	t.have = false
	return t.next, true
}

// peek parses ahead to the next data line.
func (t *Reader) peek() bool {
	if t.have {
		return true
	}
	if t.err != nil {
		return false
	}
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var opStr string
		var addr uint64
		var size uint32
		var stream uint8
		if _, err := fmt.Sscanf(line, "%s %x %d %d", &opStr, &addr, &size, &stream); err != nil {
			t.err = fmt.Errorf("trace: line %d: %q: %w", t.line, line, err)
			return false
		}
		var op mem.Op
		switch opStr {
		case "R":
			op = mem.Read
		case "W":
			op = mem.Write
		default:
			t.err = fmt.Errorf("trace: line %d: unknown op %q", t.line, opStr)
			return false
		}
		t.next = mem.Request{Addr: addr, Size: size, Op: op, Stream: stream}
		t.have = true
		return true
	}
	if err := t.sc.Err(); err != nil {
		t.err = fmt.Errorf("trace: %w", err)
	}
	return false
}

// Summary aggregates a trace's shape without materializing it.
type Summary struct {
	Requests   int
	Bytes      uint64
	Reads      int
	Writes     int
	MinAddr    uint64
	MaxAddr    uint64 // highest end address
	Streams    int
	streamSeen [256]bool
}

// Summarize drains a source into a Summary.
func Summarize(src mem.Source) Summary {
	s := Summary{MinAddr: ^uint64(0)}
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		s.Requests++
		s.Bytes += uint64(r.Size)
		if r.Op == mem.Read {
			s.Reads++
		} else {
			s.Writes++
		}
		if r.Addr < s.MinAddr {
			s.MinAddr = r.Addr
		}
		if r.End() > s.MaxAddr {
			s.MaxAddr = r.End()
		}
		if !s.streamSeen[r.Stream] {
			s.streamSeen[r.Stream] = true
			s.Streams++
		}
	}
	if s.Requests == 0 {
		s.MinAddr = 0
	}
	return s
}
