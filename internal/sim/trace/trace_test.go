package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"mpstream/internal/device"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/dram"
	"mpstream/internal/sim/mem"
)

func TestRoundTrip(t *testing.T) {
	src, err := device.KernelSource(kernel.Triad, 64, 4, mem.ColMajorPattern(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var orig []mem.Request
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		orig = append(orig, r)
	}

	var sb strings.Builder
	w := NewWriter(&sb)
	for _, r := range orig {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(orig) {
		t.Errorf("Count = %d, want %d", w.Count(), len(orig))
	}

	rd := NewReader(strings.NewReader(sb.String()))
	var back []mem.Request
	for {
		r, ok := rd.Next()
		if !ok {
			break
		}
		back = append(back, r)
	}
	if rd.Err() != nil {
		t.Fatal(rd.Err())
	}
	if len(back) != len(orig) {
		t.Fatalf("replayed %d of %d requests", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("request %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestDrain(t *testing.T) {
	it, err := mem.NewIter(mem.ContiguousPattern(), 0x1000, 32, 8, mem.Write, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w := NewWriter(&sb)
	n, err := w.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Errorf("drained %d, want 32", n)
	}
	if !strings.Contains(sb.String(), "W 1000 8 2") {
		t.Errorf("trace content wrong:\n%s", sb.String())
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nR 10 4 0\n# middle\nW 20 4 1\n\n"
	rd := NewReader(strings.NewReader(in))
	var got []mem.Request
	for {
		r, ok := rd.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if len(got) != 2 || got[0].Op != mem.Read || got[1].Op != mem.Write {
		t.Fatalf("parsed %+v", got)
	}
	if got[0].Addr != 0x10 || got[1].Stream != 1 {
		t.Errorf("fields wrong: %+v", got)
	}
}

func TestReaderErrors(t *testing.T) {
	rd := NewReader(strings.NewReader("X 10 4 0\n"))
	if _, ok := rd.Next(); ok {
		t.Error("bad op accepted")
	}
	if rd.Err() == nil {
		t.Error("error not reported")
	}
	rd = NewReader(strings.NewReader("R zz\n"))
	if _, ok := rd.Next(); ok {
		t.Error("malformed line accepted")
	}
	if rd.Err() == nil || !strings.Contains(rd.Err().Error(), "line 1") {
		t.Errorf("error must cite the line: %v", rd.Err())
	}
}

func TestReaderRemaining(t *testing.T) {
	rd := NewReader(strings.NewReader("R 0 4 0\n"))
	if rd.Remaining() != 1 {
		t.Error("Remaining must be 1 while data is pending")
	}
	rd.Next()
	if rd.Remaining() != 0 {
		t.Error("Remaining must be 0 at end")
	}
}

// A replayed trace times identically to the live stream — the property
// that makes traces useful for controller comparisons.
func TestReplayTimesIdentically(t *testing.T) {
	cfg := dram.Config{
		Name: "t", Channels: 2, BanksPerChannel: 8, RowBytes: 8192,
		BurstBytes: 64, BusGBps: 12.8, RowMissNs: 45, TurnaroundNs: 7.5,
		ActWindowNs: 40, InterleaveBytes: 1024,
	}
	m := dram.New(cfg)
	mk := func() mem.Source {
		src, err := device.KernelSource(kernel.Copy, 4096, 4, mem.ColMajorPattern(), 64)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	live := m.Service(mk())

	var sb strings.Builder
	w := NewWriter(&sb)
	if _, err := w.Drain(mk()); err != nil {
		t.Fatal(err)
	}
	replayed := m.Service(NewReader(strings.NewReader(sb.String())))
	if live != replayed {
		t.Errorf("live %+v != replayed %+v", live, replayed)
	}
}

func TestSummarize(t *testing.T) {
	src, err := device.KernelSource(kernel.Add, 16, 4, mem.ContiguousPattern(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(src)
	if s.Requests != 48 || s.Reads != 32 || s.Writes != 16 {
		t.Errorf("summary counts wrong: %+v", s)
	}
	if s.Bytes != 192 {
		t.Errorf("bytes = %d, want 192", s.Bytes)
	}
	if s.Streams != 3 {
		t.Errorf("streams = %d, want 3", s.Streams)
	}
	if s.MinAddr != 0 {
		t.Errorf("min addr = %d", s.MinAddr)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	it, err := mem.NewIter(mem.ContiguousPattern(), 0, 1, 4, mem.Read, 0)
	if err != nil {
		t.Fatal(err)
	}
	it.Next()
	s := Summarize(it)
	if s.Requests != 0 || s.MinAddr != 0 || s.Bytes != 0 {
		t.Errorf("empty summary wrong: %+v", s)
	}
}

// Property: any generated request stream round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(addrs []uint32, sizes []uint8, writeBits []bool) bool {
		n := len(addrs)
		if len(sizes) < n {
			n = len(sizes)
		}
		if len(writeBits) < n {
			n = len(writeBits)
		}
		reqs := make([]mem.Request, n)
		for i := 0; i < n; i++ {
			op := mem.Read
			if writeBits[i] {
				op = mem.Write
			}
			reqs[i] = mem.Request{
				Addr: uint64(addrs[i]), Size: uint32(sizes[i]) + 1,
				Op: op, Stream: uint8(i % 4),
			}
		}
		var sb strings.Builder
		w := NewWriter(&sb)
		for _, r := range reqs {
			if w.Write(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		rd := NewReader(strings.NewReader(sb.String()))
		for i := 0; i < n; i++ {
			r, ok := rd.Next()
			if !ok || r != reqs[i] {
				return false
			}
		}
		_, ok := rd.Next()
		return !ok && rd.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
