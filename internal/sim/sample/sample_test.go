package sample

import (
	"math"
	"testing"

	"mpstream/internal/sim/dram"
	"mpstream/internal/sim/mem"
)

// affineRunner simulates T(n) = ramp + n/rate exactly.
func affineRunner(total uint64, ramp, rate float64) Runner {
	return func(maxTxns uint64) Measurement {
		n := total
		if maxTxns > 0 && maxTxns < n {
			n = maxTxns
		}
		return Measurement{Txns: n, Seconds: ramp + float64(n)/rate}
	}
}

func TestExactWhenSmall(t *testing.T) {
	run := affineRunner(100, 1e-6, 1e9)
	est, err := Run(run, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sampled {
		t.Error("small run must be exact")
	}
	want := 1e-6 + 100/1e9
	if math.Abs(est.Seconds-want) > 1e-15 {
		t.Errorf("exact seconds = %v, want %v", est.Seconds, want)
	}
}

func TestSampledAffineIsExact(t *testing.T) {
	const total = 10_000_000
	run := affineRunner(total, 5e-6, 2e8)
	est, err := Run(run, total, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Sampled {
		t.Fatal("large run must be sampled")
	}
	want := 5e-6 + float64(total)/2e8
	if math.Abs(est.Seconds-want)/want > 1e-9 {
		t.Errorf("sampled seconds = %v, want %v (affine must extrapolate exactly)", est.Seconds, want)
	}
	if math.Abs(est.Rate-2e8)/2e8 > 1e-9 {
		t.Errorf("fitted rate = %v, want 2e8", est.Rate)
	}
}

func TestZeroWindowRunsExactly(t *testing.T) {
	run := affineRunner(1000, 0, 1e9)
	est, err := Run(run, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sampled {
		t.Error("zero window must run exactly")
	}
}

func TestDegenerateWindows(t *testing.T) {
	// A runner that ignores maxTxns and always reports the same thing.
	bad := func(maxTxns uint64) Measurement { return Measurement{Txns: 10, Seconds: 1} }
	if _, err := Run(bad, 1_000_000, 100); err == nil {
		t.Error("degenerate windows must error")
	}
	// Non-increasing time.
	weird := func(maxTxns uint64) Measurement {
		if maxTxns == 100 {
			return Measurement{Txns: 100, Seconds: 2}
		}
		return Measurement{Txns: 200, Seconds: 2}
	}
	if _, err := Run(weird, 1_000_000, 100); err == nil {
		t.Error("non-increasing time must error")
	}
}

func TestNeverBelowSimulated(t *testing.T) {
	// Even for a sub-linear (concave) runner, the sampled estimate must
	// not fall below the time already simulated in the longest window.
	run := func(maxTxns uint64) Measurement {
		n := maxTxns
		if n == 0 || n > 40000 {
			n = 40000
		}
		return Measurement{Txns: n, Seconds: math.Sqrt(float64(n))}
	}
	est, err := Run(run, 40000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Sampled {
		t.Fatal("expected sampled run")
	}
	if est.Seconds < math.Sqrt(2000) {
		t.Errorf("estimate %.3f below simulated window %.3f", est.Seconds, math.Sqrt(2000))
	}
}

// Sampled estimates of the DRAM model must track exact simulation closely
// on streaming and strided workloads.
func TestSampledVsExactDRAM(t *testing.T) {
	cfg := dram.Config{
		Name:            "sdd",
		Channels:        2,
		BanksPerChannel: 8,
		RowBytes:        8192,
		BurstBytes:      64,
		BusGBps:         12.8,
		RowMissNs:       45,
		TurnaroundNs:    7.5,
		ActWindowNs:     40,
		RefreshLoss:     0.03,
		InterleaveBytes: 1024,
		HashChannels:    true,
	}
	m := dram.New(cfg)

	cases := []struct {
		name    string
		pattern mem.Pattern
		elems   int
		size    uint32
	}{
		{"contig64", mem.ContiguousPattern(), 1 << 19, 64},
		{"colmajor64", mem.ColMajorPattern(), 1 << 18, 64},
		{"strided17", mem.StridedPattern(17), 1 << 18, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mkSrc := func() mem.Source {
				it, err := mem.NewIter(tc.pattern, 0, tc.elems, tc.size, mem.Read, 0)
				if err != nil {
					t.Fatal(err)
				}
				return it
			}
			runner := func(maxTxns uint64) Measurement {
				res := m.ServiceBounded(mkSrc(), maxTxns)
				return Measurement{Txns: res.Txns, Seconds: res.Seconds}
			}
			exact := m.Service(mkSrc()).Seconds
			est, err := Run(runner, uint64(tc.elems), 1<<14)
			if err != nil {
				t.Fatal(err)
			}
			if !est.Sampled {
				t.Fatal("expected a sampled run")
			}
			relErr := math.Abs(est.Seconds-exact) / exact
			if relErr > 0.05 {
				t.Errorf("sampled %.4g s vs exact %.4g s: rel err %.3f > 5%%",
					est.Seconds, exact, relErr)
			}
		})
	}
}
