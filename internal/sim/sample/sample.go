// Package sample implements sampled simulation for very large runs.
//
// Transaction-level simulation of a 1 GB STREAM pass is exact but slow
// when swept over many configurations. For steady-state streaming
// workloads, elapsed time is affine in the transaction count after a
// short ramp: T(n) = ramp + n/rate. Sampling measures two bounded windows
// of the simulation, fits that line, and extrapolates — the classic
// SMARTS-style trick specialized to monotone streaming request streams.
//
// Callers choose a window large enough to cover several pattern periods
// (column-major walks wrap at row boundaries); the package tests pin
// sampled-vs-exact error on mid-size runs.
package sample

import "fmt"

// Measurement is one bounded simulation observation.
type Measurement struct {
	Txns    uint64
	Seconds float64
}

// Runner runs a bounded simulation of at most maxTxns transactions and
// reports how many transactions actually ran and the simulated time. A
// maxTxns of 0 means run to completion.
type Runner func(maxTxns uint64) Measurement

// Estimate predicts the full-run time for totalTxns transactions.
//
// If totalTxns <= 2*window the simulation is run exactly. Otherwise two
// windows (window and 2*window transactions) are simulated, the affine
// model T(n) = a + b*n is fitted through them, and T(totalTxns) is
// returned along with Sampled=true.
type Estimate struct {
	Seconds float64
	Sampled bool
	// Rate is the fitted steady-state transaction rate (txns/second);
	// zero for exact runs.
	Rate float64
}

// Run produces an estimate of the full-run time. window must be positive
// for sampled runs; totalTxns of 0 runs exactly.
func Run(run Runner, totalTxns, window uint64) (Estimate, error) {
	if totalTxns == 0 || window == 0 || totalTxns <= 2*window {
		m := run(0)
		return Estimate{Seconds: m.Seconds}, nil
	}
	m1 := run(window)
	m2 := run(2 * window)
	if m1.Txns == 0 || m2.Txns <= m1.Txns {
		return Estimate{}, fmt.Errorf("sample: degenerate windows (%d, %d txns)", m1.Txns, m2.Txns)
	}
	if m2.Seconds <= m1.Seconds {
		return Estimate{}, fmt.Errorf("sample: non-increasing time (%g, %g)", m1.Seconds, m2.Seconds)
	}
	slope := (m2.Seconds - m1.Seconds) / float64(m2.Txns-m1.Txns)
	intercept := m1.Seconds - slope*float64(m1.Txns)
	sec := intercept + slope*float64(totalTxns)
	if sec < m2.Seconds {
		// Extrapolation must never predict less than what was simulated.
		sec = m2.Seconds
	}
	return Estimate{Seconds: sec, Sampled: true, Rate: 1 / slope}, nil
}
