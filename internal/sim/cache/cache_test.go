package cache

import (
	"testing"
	"testing/quick"

	"mpstream/internal/sim/mem"
)

// tiny cache: 4 sets x 2 ways x 64B lines = 512 B.
func tinyConfig() Config {
	return Config{Name: "tiny", CapacityBytes: 512, LineBytes: 64, Ways: 2}
}

// llcConfig is a 1 MB 16-way model for streaming tests.
func llcConfig() Config {
	return Config{Name: "llc", CapacityBytes: 1 << 20, LineBytes: 64, Ways: 16}
}

func access(c *Cache, addr uint64, size uint32, op mem.Op, stream uint8) []mem.Request {
	return c.Access(mem.Request{Addr: addr, Size: size, Op: op, Stream: stream}, nil)
}

func TestValidate(t *testing.T) {
	if err := tinyConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "line0", CapacityBytes: 512, LineBytes: 0, Ways: 2},
		{Name: "line48", CapacityBytes: 512, LineBytes: 48, Ways: 2},
		{Name: "ways0", CapacityBytes: 512, LineBytes: 64, Ways: 0},
		{Name: "cap0", CapacityBytes: 0, LineBytes: 64, Ways: 2},
		{Name: "capodd", CapacityBytes: 500, LineBytes: 64, Ways: 2},
		{Name: "sets3", CapacityBytes: 3 * 128, LineBytes: 64, Ways: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %q accepted", c.Name)
		}
	}
}

func TestSets(t *testing.T) {
	if got := tinyConfig().Sets(); got != 4 {
		t.Errorf("Sets = %d, want 4", got)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config must panic")
		}
	}()
	New(Config{})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(tinyConfig())
	outs := access(c, 0, 4, mem.Read, 0)
	if len(outs) != 1 || outs[0].Op != mem.Read || outs[0].Size != 64 || outs[0].Addr != 0 {
		t.Fatalf("cold miss traffic = %+v, want one 64B line read", outs)
	}
	// Different line, then back: the probe path must hit.
	access(c, 128, 4, mem.Read, 0)
	outs = access(c, 8, 4, mem.Read, 0)
	if len(outs) != 0 {
		t.Fatalf("warm hit produced traffic: %+v", outs)
	}
	st := c.Stats()
	if st.Fills != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 fills 1 hit", st)
	}
}

func TestSameLineShortcut(t *testing.T) {
	c := New(tinyConfig())
	access(c, 0, 4, mem.Read, 0)
	for i := uint64(1); i < 16; i++ {
		outs := access(c, i*4, 4, mem.Read, 0)
		if len(outs) != 0 {
			t.Fatalf("same-line access %d produced traffic", i)
		}
	}
	st := c.Stats()
	if st.L1Transfers != 1 {
		t.Errorf("L1 transfers = %d, want 1 (one line moved for 16 word reads)", st.L1Transfers)
	}
	if st.Hits != 15 {
		t.Errorf("hits = %d, want 15", st.Hits)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(tinyConfig()) // 4 sets, 2 ways
	// Three lines in the same set (set stride = 4 lines = 256 B).
	a, b, d := uint64(0), uint64(256), uint64(512)
	access(c, a, 4, mem.Read, 0)
	access(c, b, 4, mem.Read, 1)
	access(c, d, 4, mem.Read, 2) // evicts a (LRU)
	// b must still be resident.
	if outs := access(c, b, 4, mem.Read, 3); len(outs) != 0 {
		t.Errorf("b evicted but should be resident (LRU was a)")
	}
	// a must have been evicted.
	if outs := access(c, a, 4, mem.Read, 4); len(outs) != 1 {
		t.Errorf("a still resident, want evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(tinyConfig())
	access(c, 0, 4, mem.Write, 0) // fill + dirty
	access(c, 256, 4, mem.Read, 1)
	outs := access(c, 512, 4, mem.Read, 2) // evicts dirty line 0
	var sawWB bool
	for _, r := range outs {
		if r.Op == mem.Write && r.Addr == 0 && r.Size == 64 {
			sawWB = true
		}
	}
	if !sawWB {
		t.Errorf("dirty eviction traffic = %+v, want writeback of line 0", outs)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteAllocateReadForOwnership(t *testing.T) {
	c := New(tinyConfig())
	outs := access(c, 0, 4, mem.Write, 0)
	if len(outs) != 1 || outs[0].Op != mem.Read {
		t.Fatalf("write miss traffic = %+v, want RFO line read", outs)
	}
}

func TestNonTemporalWritesBypass(t *testing.T) {
	cfg := tinyConfig()
	cfg.NonTemporalWrites = true
	c := New(cfg)
	// The store buffers in a write-combining slot until the line changes.
	outs := access(c, 0, 64, mem.Write, 0)
	if len(outs) != 0 {
		t.Fatalf("NT write must buffer, got %+v", outs)
	}
	if c.Stats().Fills != 0 {
		t.Error("NT write must not allocate")
	}
	outs = c.FlushWC(nil)
	if len(outs) != 1 || outs[0].Op != mem.Write || outs[0].Size != 64 {
		t.Fatalf("flushed NT traffic = %+v, want one 64B write", outs)
	}
	// A partial NT write flushes exactly its byte count (at line base:
	// masked writes are modelled at line granularity).
	access(c, 100, 8, mem.Write, 0)
	outs = c.FlushWC(nil)
	if len(outs) != 1 || outs[0].Addr != 64 || outs[0].Size != 8 {
		t.Fatalf("partial NT flush = %+v, want 8B at line base 64", outs)
	}
}

func TestNonTemporalWriteInvalidates(t *testing.T) {
	cfg := tinyConfig()
	cfg.NonTemporalWrites = true
	c := New(cfg)
	access(c, 0, 4, mem.Read, 0)   // line cached
	access(c, 0, 64, mem.Write, 1) // NT write invalidates
	outs := access(c, 0, 4, mem.Read, 2)
	if len(outs) != 1 {
		t.Errorf("read after NT write must miss (line invalidated), traffic %+v", outs)
	}
}

func TestNTWriteSpanningLines(t *testing.T) {
	cfg := tinyConfig()
	cfg.NonTemporalWrites = true
	c := New(cfg)
	// 128B write spanning three lines starting mid-line: the first two
	// pieces flush as the store crosses line boundaries, the tail stays
	// buffered until FlushWC.
	outs := access(c, 32, 128, mem.Write, 0)
	outs = c.FlushWC(outs)
	var total uint32
	for _, r := range outs {
		if r.Op != mem.Write {
			t.Fatalf("unexpected op in %+v", r)
		}
		total += r.Size
	}
	if total != 128 {
		t.Errorf("NT write bytes = %d, want 128", total)
	}
	if len(outs) != 3 { // 32B tail of line 0, line 1, 32B head of line 2
		t.Errorf("NT write pieces = %d, want 3", len(outs))
	}
}

func TestRequestSpanningLines(t *testing.T) {
	c := New(tinyConfig())
	outs := access(c, 60, 8, mem.Read, 0) // straddles lines 0 and 1
	if len(outs) != 2 {
		t.Fatalf("straddling read fills = %d, want 2", len(outs))
	}
}

func TestZeroSizeRequest(t *testing.T) {
	c := New(tinyConfig())
	outs := access(c, 60, 0, mem.Read, 0)
	if len(outs) != 0 || c.Stats().Accesses != 0 {
		t.Error("zero-size request must be a no-op")
	}
}

func TestResetRestoresColdState(t *testing.T) {
	c := New(tinyConfig())
	access(c, 0, 4, mem.Read, 0)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Error("Reset must clear stats")
	}
	outs := access(c, 0, 4, mem.Read, 0)
	if len(outs) != 1 {
		t.Error("Reset must clear contents (expected cold miss)")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := New(tinyConfig())
	access(c, 0, 4, mem.Read, 0)
	c.ResetStats()
	access(c, 128, 4, mem.Read, 0) // move lastLine away
	outs := access(c, 0, 4, mem.Read, 0)
	if len(outs) != 0 {
		t.Error("contents must stay warm across ResetStats")
	}
}

func TestCapacityResidentSecondPassAllHits(t *testing.T) {
	c := New(llcConfig())
	// 256 KB footprint in a 1 MB cache.
	walk := func() uint64 {
		var fills uint64
		before := c.Stats().Fills
		for addr := uint64(0); addr < 256<<10; addr += 64 {
			c.Access(mem.Request{Addr: addr, Size: 64, Op: mem.Read, Stream: 0}, nil)
		}
		fills = c.Stats().Fills - before
		return fills
	}
	cold := walk()
	warm := walk()
	if cold != 4096 {
		t.Errorf("cold fills = %d, want 4096", cold)
	}
	if warm != 0 {
		t.Errorf("warm fills = %d, want 0 (capacity resident)", warm)
	}
}

func TestStreamingLargerThanCapacityAlwaysMisses(t *testing.T) {
	c := New(llcConfig())
	// 4 MB footprint in a 1 MB cache: second pass must still miss.
	walk := func() uint64 {
		before := c.Stats().Fills
		for addr := uint64(0); addr < 4<<20; addr += 64 {
			c.Access(mem.Request{Addr: addr, Size: 64, Op: mem.Read, Stream: 0}, nil)
		}
		return c.Stats().Fills - before
	}
	walk()
	warm := walk()
	if warm != 65536 {
		t.Errorf("second-pass fills = %d, want 65536 (LRU streaming evicts everything)", warm)
	}
}

func TestMissFilter(t *testing.T) {
	c := New(llcConfig())
	it, err := mem.NewIter(mem.ContiguousPattern(), 0, 1024, 4, mem.Read, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := NewMissFilter(c, it)
	var fills int
	var bytes uint64
	for {
		r, ok := f.Next()
		if !ok {
			break
		}
		if r.Op != mem.Read || r.Size != 64 {
			t.Fatalf("unexpected memory-side request %+v", r)
		}
		fills++
		bytes += uint64(r.Size)
	}
	// 1024 x 4B contiguous = 4 KB = 64 lines.
	if fills != 64 || bytes != 4096 {
		t.Errorf("fills = %d bytes = %d, want 64 fills / 4096 bytes", fills, bytes)
	}
}

func TestMissFilterRemaining(t *testing.T) {
	c := New(llcConfig())
	it, err := mem.NewIter(mem.ContiguousPattern(), 0, 16, 4, mem.Read, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := NewMissFilter(c, it)
	if f.Remaining() != 16 {
		t.Errorf("initial Remaining = %d, want 16", f.Remaining())
	}
	f.Next()
	if f.Remaining() > 15 {
		t.Errorf("Remaining after one fill = %d, want <= 15", f.Remaining())
	}
}

// Property: fills never exceed line probes, and every fill is a full line.
func TestQuickFillInvariants(t *testing.T) {
	f := func(addrs []uint32, write bool) bool {
		c := New(llcConfig())
		op := mem.Read
		if write {
			op = mem.Write
		}
		var traffic []mem.Request
		for _, a := range addrs {
			traffic = c.Access(mem.Request{Addr: uint64(a), Size: 4, Op: op, Stream: 0}, traffic)
		}
		st := c.Stats()
		if st.Fills > st.LineProbes {
			return false
		}
		for _, r := range traffic {
			if r.Op == mem.Read && r.Size != 64 {
				return false
			}
		}
		return st.Hits+st.Misses == st.LineProbes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for non-overlapping stores, a non-temporal configuration
// conserves written bytes exactly once write-combining buffers flush.
func TestQuickNTByteConservation(t *testing.T) {
	cfg := llcConfig()
	cfg.NonTemporalWrites = true
	f := func(gaps []uint16, sz uint8) bool {
		c := New(cfg)
		size := uint32(sz%64) + 1
		var want, got uint64
		var traffic []mem.Request
		addr := uint64(0)
		for _, g := range gaps {
			want += uint64(size)
			traffic = c.Access(mem.Request{Addr: addr, Size: size, Op: mem.Write, Stream: 0}, traffic)
			addr += uint64(size) + uint64(g%512)
		}
		traffic = c.FlushWC(traffic)
		for _, r := range traffic {
			if r.Op == mem.Write {
				got += uint64(r.Size)
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteValidateFullLine(t *testing.T) {
	cfg := tinyConfig()
	cfg.WriteValidate = true
	c := New(cfg)
	// Full-line write: no fill, line allocated dirty.
	outs := access(c, 0, 64, mem.Write, 0)
	if len(outs) != 0 {
		t.Fatalf("full-line validated write produced traffic: %+v", outs)
	}
	if c.Stats().Validates != 1 || c.Stats().Fills != 0 {
		t.Errorf("stats = %+v, want 1 validate 0 fills", c.Stats())
	}
	// The dirty line writes back on eviction.
	access(c, 256, 4, mem.Read, 1)
	outs = access(c, 512, 4, mem.Read, 2)
	var sawWB bool
	for _, r := range outs {
		if r.Op == mem.Write && r.Addr == 0 {
			sawWB = true
		}
	}
	if !sawWB {
		t.Errorf("validated dirty line must write back on eviction: %+v", outs)
	}
}

func TestWriteValidatePartialLine(t *testing.T) {
	// Masked writes need no fetch: even a partial write miss validates.
	cfg := tinyConfig()
	cfg.WriteValidate = true
	c := New(cfg)
	outs := access(c, 0, 4, mem.Write, 0)
	if len(outs) != 0 {
		t.Fatalf("partial validated write produced traffic: %+v", outs)
	}
	if c.Stats().Validates != 1 {
		t.Error("partial write must validate")
	}
	// Eviction writes the whole line back (byte-enable granularity is
	// below this model's resolution; bus time is per line anyway).
	access(c, 256, 4, mem.Read, 1)
	outs = access(c, 512, 4, mem.Read, 2)
	var wb bool
	for _, r := range outs {
		if r.Op == mem.Write && r.Addr == 0 {
			wb = true
		}
	}
	if !wb {
		t.Error("validated partial line must write back on eviction")
	}
}

func TestWriteValidateIgnoredUnderNT(t *testing.T) {
	cfg := tinyConfig()
	cfg.WriteValidate = true
	cfg.NonTemporalWrites = true
	c := New(cfg)
	access(c, 0, 64, mem.Write, 0)
	outs := c.FlushWC(nil)
	if len(outs) != 1 || outs[0].Op != mem.Write {
		t.Fatalf("NT must dominate WriteValidate: %+v", outs)
	}
	if c.Stats().Validates != 0 {
		t.Error("NT store must not count as a validate")
	}
}

func TestNTWriteCombining(t *testing.T) {
	cfg := tinyConfig()
	cfg.NonTemporalWrites = true
	c := New(cfg)
	// Eight stride-2 word stores into one line combine into one flush.
	var traffic []mem.Request
	for i := 0; i < 8; i++ {
		traffic = c.Access(mem.Request{Addr: uint64(i * 8), Size: 4, Op: mem.Write, Stream: 0}, traffic)
	}
	if len(traffic) != 0 {
		t.Fatalf("stores within one line must stay buffered: %+v", traffic)
	}
	// Moving to the next line flushes the previous buffer.
	traffic = c.Access(mem.Request{Addr: 64, Size: 4, Op: mem.Write, Stream: 0}, traffic)
	if len(traffic) != 1 {
		t.Fatalf("expected one flushed WC write, got %+v", traffic)
	}
	if traffic[0].Addr != 0 || traffic[0].Size != 32 || traffic[0].Op != mem.Write {
		t.Errorf("flushed write = %+v, want 32 bytes at line 0", traffic[0])
	}
}

func TestFlushWC(t *testing.T) {
	cfg := tinyConfig()
	cfg.NonTemporalWrites = true
	c := New(cfg)
	c.Access(mem.Request{Addr: 0, Size: 4, Op: mem.Write, Stream: 0}, nil)
	c.Access(mem.Request{Addr: 128, Size: 8, Op: mem.Write, Stream: 1}, nil)
	out := c.FlushWC(nil)
	if len(out) != 2 {
		t.Fatalf("FlushWC emitted %d, want 2", len(out))
	}
	// Flushing twice is a no-op.
	if again := c.FlushWC(nil); len(again) != 0 {
		t.Errorf("second flush emitted %+v", again)
	}
}

func TestMissFilterFlushesTrailingWC(t *testing.T) {
	cfg := llcConfig()
	cfg.NonTemporalWrites = true
	c := New(cfg)
	it, err := mem.NewIter(mem.ContiguousPattern(), 0, 32, 4, mem.Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := NewMissFilter(c, it)
	var bytes uint64
	for {
		r, ok := f.Next()
		if !ok {
			break
		}
		bytes += uint64(r.Size)
	}
	// 32 x 4B contiguous stores = 128 bytes, including the trailing line.
	if bytes != 128 {
		t.Errorf("memory-side write bytes = %d, want 128", bytes)
	}
}
