package cache

// Parity: the structure-of-arrays Cache must reproduce the frozen
// array-of-structs reference (reference_test.go) exactly — every emitted
// memory-side request and every statistic — across randomized
// configurations and request streams.

import (
	"math/rand"
	"testing"

	"mpstream/internal/sim/mem"
)

func randomCacheConfig(rng *rand.Rand) Config {
	ways := 1 + rng.Intn(24)
	sets := uint64(1) << (2 + rng.Intn(6))
	line := uint32(1) << (4 + rng.Intn(3))
	cfg := Config{
		Name:          "parity",
		LineBytes:     line,
		Ways:          ways,
		CapacityBytes: sets * uint64(ways) * uint64(line),
		HashSets:      rng.Intn(2) == 0,
	}
	switch rng.Intn(3) {
	case 0:
		cfg.NonTemporalWrites = true
	case 1:
		cfg.WriteValidate = true
	}
	return cfg
}

// randomRequests draws a stream mixing contiguous runs, strides, random
// scatter, line-straddling sizes, and both ops across a few streams.
func randomRequests(rng *rand.Rand, line uint32, n int) []mem.Request {
	reqs := make([]mem.Request, 0, n)
	for len(reqs) < n {
		stream := uint8(rng.Intn(3))
		op := mem.Read
		if rng.Intn(2) == 0 {
			op = mem.Write
		}
		base := uint64(stream)<<31 + uint64(rng.Intn(1<<20))
		switch rng.Intn(4) {
		case 0: // contiguous word run
			size := uint32(4 << rng.Intn(2))
			for i := 0; i < 32 && len(reqs) < n; i++ {
				reqs = append(reqs, mem.Request{Addr: base + uint64(i)*uint64(size), Size: size, Op: op, Stream: stream})
			}
		case 1: // strided walk
			stride := uint64(line) * uint64(1+rng.Intn(8))
			for i := 0; i < 32 && len(reqs) < n; i++ {
				reqs = append(reqs, mem.Request{Addr: base + uint64(i)*stride, Size: 8, Op: op, Stream: stream})
			}
		case 2: // scatter
			reqs = append(reqs, mem.Request{Addr: base, Size: 8, Op: op, Stream: stream})
		default: // multi-line request, possibly line-straddling
			reqs = append(reqs, mem.Request{
				Addr: base, Size: line * uint32(1+rng.Intn(4)), Op: op, Stream: stream,
			})
		}
	}
	return reqs
}

func TestAccessMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		cfg := randomCacheConfig(rng)
		live, ref := New(cfg), newRefCache(cfg)
		reqs := randomRequests(rng, cfg.LineBytes, 2000)
		var gotOut, wantOut []mem.Request
		for i, r := range reqs {
			gotOut = live.Access(r, gotOut[:0])
			wantOut = ref.access(r, wantOut[:0])
			if len(gotOut) != len(wantOut) {
				t.Fatalf("trial %d (cfg %+v) request %d %+v: live emitted %d requests, reference %d",
					trial, cfg, i, r, len(gotOut), len(wantOut))
			}
			for j := range wantOut {
				if gotOut[j] != wantOut[j] {
					t.Fatalf("trial %d (cfg %+v) request %d %+v: output %d diverged: live %+v reference %+v",
						trial, cfg, i, r, j, gotOut[j], wantOut[j])
				}
			}
		}
		gotOut = live.FlushWC(gotOut[:0])
		wantOut = ref.flushWC(wantOut[:0])
		if len(gotOut) != len(wantOut) {
			t.Fatalf("trial %d: flush emitted %d vs %d", trial, len(gotOut), len(wantOut))
		}
		for j := range wantOut {
			if gotOut[j] != wantOut[j] {
				t.Fatalf("trial %d: flush output %d diverged: live %+v reference %+v",
					trial, j, gotOut[j], wantOut[j])
			}
		}
		if live.Stats() != ref.stats {
			t.Fatalf("trial %d (cfg %+v): stats diverged:\n live %+v\n ref  %+v",
				trial, cfg, live.Stats(), ref.stats)
		}
	}
}

// TestAccessMatchesReferenceAfterReset checks Reset really restores the
// cold state: a post-Reset replay must equal a fresh pair.
func TestAccessMatchesReferenceAfterReset(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cfg := randomCacheConfig(rng)
	live, ref := New(cfg), newRefCache(cfg)
	reqs := randomRequests(rng, cfg.LineBytes, 3000)
	var got, want []mem.Request
	for _, r := range reqs {
		got = live.Access(r, got[:0])
	}
	live.Reset()
	for i, r := range reqs {
		got = live.Access(r, got[:0])
		want = ref.access(r, want[:0])
		if len(got) != len(want) {
			t.Fatalf("request %d after Reset: live emitted %d, fresh reference %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("request %d after Reset: output %d diverged: %+v vs %+v", i, j, got[j], want[j])
			}
		}
	}
	if live.Stats() != ref.stats {
		t.Fatalf("stats after Reset diverged:\n live %+v\n ref  %+v", live.Stats(), ref.stats)
	}
}
