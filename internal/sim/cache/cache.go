// Package cache models a set-associative, write-back, write-allocate
// last-level cache with LRU replacement, plus the inner-level (L1) line
// traffic that determines cache-resident streaming bandwidth.
//
// The CPU device drives its word-granularity request stream through a
// Cache; the cache absorbs hits and emits line-granularity fills and
// writebacks that the DRAM model then times. Two refinements matter for
// STREAM-style workloads:
//
//   - consecutive accesses to the same line (per stream) are L1-resident
//     and cost no inner-level line transfer, so a contiguous walk moves
//     one line per 16 words while a large-stride walk moves one line per
//     word — that asymmetry is the cache-resident strided penalty;
//   - optionally, writes bypass allocation (non-temporal/streaming
//     stores), which is how OpenCL CPU runtimes avoid the
//     read-for-ownership traffic that would otherwise make STREAM copy
//     move 3x bytes.
package cache

import (
	"fmt"
	"math/bits"

	"mpstream/internal/sim/mem"
)

// Config describes a last-level cache.
type Config struct {
	Name          string
	CapacityBytes uint64
	LineBytes     uint32
	Ways          int
	// NonTemporalWrites makes write misses bypass allocation entirely:
	// the write goes straight to memory and no line is filled or dirtied.
	NonTemporalWrites bool
	// WriteValidate makes write misses allocate the line dirty without
	// fetching it first (GPU sectored caches over memories with masked
	// writes: byte enables make the fetch unnecessary). Ignored when
	// NonTemporalWrites is set.
	WriteValidate bool
	// HashSets XOR-folds the line address into the set index so
	// power-of-two strides spread over all sets instead of thrashing a
	// few (GPU caches hash; classic CPU LLCs index linearly).
	HashSets bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case !mem.CheckPow2(c.LineBytes) || c.LineBytes == 0:
		return fmt.Errorf("cache %q: line bytes %d must be a power of two", c.Name, c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache %q: ways must be positive", c.Name)
	case c.Ways > 64:
		return fmt.Errorf("cache %q: %d ways exceed the model's limit of 64", c.Name, c.Ways)
	case c.CapacityBytes == 0 || c.CapacityBytes%(uint64(c.LineBytes)*uint64(c.Ways)) != 0:
		return fmt.Errorf("cache %q: capacity %d not divisible into %d ways of %d-byte lines",
			c.Name, c.CapacityBytes, c.Ways, c.LineBytes)
	}
	sets := c.CapacityBytes / (uint64(c.LineBytes) * uint64(c.Ways))
	if !mem.CheckPow2(uint32(sets)) {
		return fmt.Errorf("cache %q: set count %d must be a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() uint64 {
	return c.CapacityBytes / (uint64(c.LineBytes) * uint64(c.Ways))
}

// Stats accumulates cache activity across accesses.
type Stats struct {
	Accesses    uint64 // requests presented
	LineProbes  uint64 // line-granularity lookups
	Hits        uint64
	Misses      uint64
	Fills       uint64 // lines read from memory
	Writebacks  uint64 // dirty lines written back
	Bypasses    uint64 // non-temporal writes sent straight to memory
	BypassBytes uint64 // bytes carried by non-temporal writes
	Validates   uint64 // write misses allocated without a fill
	L1Transfers uint64 // lines moved between inner level and this cache
}

// Delta returns the difference s - prev, field-wise; use it to isolate
// the activity of one run on a long-lived cache.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Accesses:    s.Accesses - prev.Accesses,
		LineProbes:  s.LineProbes - prev.LineProbes,
		Hits:        s.Hits - prev.Hits,
		Misses:      s.Misses - prev.Misses,
		Fills:       s.Fills - prev.Fills,
		Writebacks:  s.Writebacks - prev.Writebacks,
		Bypasses:    s.Bypasses - prev.Bypasses,
		BypassBytes: s.BypassBytes - prev.BypassBytes,
		Validates:   s.Validates - prev.Validates,
		L1Transfers: s.L1Transfers - prev.L1Transfers,
	}
}

// HitRate returns Hits / LineProbes.
func (s Stats) HitRate() float64 {
	if s.LineProbes == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.LineProbes)
}

// L1TransferBytes returns the inner-level line traffic in bytes.
func (s Stats) L1TransferBytes(lineBytes uint32) uint64 {
	return s.L1Transfers * uint64(lineBytes)
}

// Cache is a set-associative cache with persistent state, so repeated
// kernel invocations see warm caches exactly as hardware does. Reset
// restores the cold state.
//
// Way state is stored structure-of-arrays: a probe scans the set's slice
// of the contiguous tag array (plus one validity word) instead of a
// strided walk over 24-byte way structs, so the per-request scans that
// dominate strided DRAM-resident workloads touch a third of the memory.
// Invalid ways keep tag and LRU stamp zero, which the victim selection
// relies on.
type Cache struct {
	cfg   Config
	sets  uint64
	ways  int
	tick  uint64
	stats Stats

	tags  []uint64 // sets x ways line tags
	used  []uint64 // sets x ways LRU timestamps (0 = never / invalid)
	valid []uint64 // per-set validity bitmask (Ways <= 64, enforced by Validate)
	dirty []uint64 // per-set dirty bitmask

	// Power-of-two geometry in shift/mask form: lineShift replaces the
	// per-line division by LineBytes, setsMask the modulo by the set
	// count. Both are hot once per probed line.
	lineShift uint
	setsMask  uint64

	// lastLine tracks the most recently touched line per stream tag (the
	// L1-residency approximation). Indexed by stream&(len-1); a benchmark
	// touches at most three streams so collisions do not occur in
	// practice, and a collision only costs a spurious L1 transfer.
	lastLine  [8]uint64
	lastValid [8]bool

	// Write-combining buffers for non-temporal stores: one open line per
	// stream accumulating store bytes; it flushes as a single (masked)
	// memory write when the stream moves to another line.
	wcLine  [8]uint64
	wcBytes [8]uint32
	wcValid [8]bool
}

// New builds a cache, panicking on invalid configuration (configurations
// are compile-time constants of the device packages).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, sets: cfg.Sets(), ways: cfg.Ways}
	c.lineShift = mem.Log2(uint64(cfg.LineBytes))
	c.setsMask = c.sets - 1
	c.tags = make([]uint64, c.sets*uint64(cfg.Ways))
	c.used = make([]uint64, c.sets*uint64(cfg.Ways))
	c.valid = make([]uint64, c.sets)
	c.dirty = make([]uint64, c.sets)
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset restores cold state and clears statistics.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.used)
	clear(c.valid)
	clear(c.dirty)
	c.tick = 0
	c.stats = Stats{}
	c.lastLine = [8]uint64{}
	c.lastValid = [8]bool{}
	c.wcLine = [8]uint64{}
	c.wcBytes = [8]uint32{}
	c.wcValid = [8]bool{}
}

// ResetStats clears statistics but keeps cache contents warm.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
}

// Access presents one request. It appends to out (and returns the extended
// slice) the memory-side requests the access generates: line fills as
// reads, writebacks and bypassed stores as writes. Reusing out across
// calls avoids per-access allocation.
func (c *Cache) Access(r mem.Request, out []mem.Request) []mem.Request {
	if r.Size == 0 {
		return out
	}
	c.stats.Accesses++
	line := uint64(c.cfg.LineBytes)
	first := mem.Align(r.Addr, c.cfg.LineBytes)
	end := r.Addr + uint64(r.Size)

	for addr := first; addr < end; addr += line {
		c.stats.LineProbes++
		lineID := addr >> c.lineShift

		slot := r.Stream & 7

		if r.Op == mem.Write && c.cfg.NonTemporalWrites {
			// Streaming store: bypass the hierarchy. Invalidate a matching
			// line so later reads see memory, then accumulate the bytes in
			// the stream's write-combining buffer; the buffer flushes as
			// one masked write when the stream leaves the line.
			c.invalidate(lineID)
			c.stats.Bypasses++
			c.lastLine[slot], c.lastValid[slot] = lineID, true
			lo, hi := addr, addr+line
			if lo < r.Addr {
				lo = r.Addr
			}
			if hi > end {
				hi = end
			}
			bytes := uint32(hi - lo)
			c.stats.BypassBytes += uint64(bytes)
			if c.wcValid[slot] && c.wcLine[slot] == lineID {
				c.wcBytes[slot] += bytes
				if c.wcBytes[slot] > uint32(line) {
					c.wcBytes[slot] = uint32(line)
				}
				continue
			}
			out = c.flushWCSlot(int(slot), slot, out)
			c.wcLine[slot], c.wcBytes[slot], c.wcValid[slot] = lineID, bytes, true
			continue
		}

		// L1 residency: repeated touches of the same line by the same
		// stream cost no inner-level transfer.
		if c.lastValid[slot] && c.lastLine[slot] == lineID {
			c.stats.Hits++
			continue
		}
		c.lastLine[slot], c.lastValid[slot] = lineID, true

		set := c.setIndex(lineID)
		base := set * uint64(c.ways)
		tags := c.tags[base : base+uint64(c.ways)]
		vmask := c.valid[set]
		c.tick++

		// Probe the valid ways' tags (a line occupies at most one way).
		hitIdx := -1
		for m := vmask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if tags[i] == lineID {
				hitIdx = i
				break
			}
		}
		if hitIdx >= 0 {
			c.stats.Hits++
			c.stats.L1Transfers++
			c.used[base+uint64(hitIdx)] = c.tick
			if r.Op == mem.Write {
				c.dirty[set] |= 1 << uint(hitIdx)
			}
			continue
		}

		// Miss: pick the victim. The first invalid way past index 0 wins
		// outright; otherwise the earliest least-recently-used way —
		// invalid ways keep a zero LRU stamp, so an invalid way 0 loses
		// only to another invalid way, exactly the replacement order of
		// the reference implementation.
		c.stats.Misses++
		victim := 0
		if inv := ^vmask & (^uint64(0) >> (64 - uint(c.ways))); inv>>1 != 0 {
			victim = bits.TrailingZeros64(inv >> 1)
			victim++
		} else {
			used := c.used[base : base+uint64(c.ways)]
			for i := 1; i < len(used); i++ {
				if used[i] < used[victim] {
					victim = i
				}
			}
		}
		vbit := uint64(1) << uint(victim)
		if vmask&vbit != 0 && c.dirty[set]&vbit != 0 {
			c.stats.Writebacks++
			out = append(out, mem.Request{
				Addr:   tags[victim] << c.lineShift,
				Size:   uint32(line),
				Op:     mem.Write,
				Stream: r.Stream,
			})
		}
		// Fill (write-allocate), unless a write validates the line
		// without fetching it.
		if c.cfg.WriteValidate && r.Op == mem.Write {
			c.stats.Validates++
			c.stats.L1Transfers++
		} else {
			c.stats.Fills++
			c.stats.L1Transfers++
			out = append(out, mem.Request{
				Addr:   addr,
				Size:   uint32(line),
				Op:     mem.Read,
				Stream: r.Stream,
			})
		}
		tags[victim] = lineID
		c.used[base+uint64(victim)] = c.tick
		c.valid[set] |= vbit
		if r.Op == mem.Write {
			c.dirty[set] |= vbit
		} else {
			c.dirty[set] &^= vbit
		}
	}
	return out
}

// setIndex maps a line to its set, optionally hashing to break up
// power-of-two stride conflicts.
func (c *Cache) setIndex(lineID uint64) uint64 {
	if c.cfg.HashSets {
		h := lineID ^ lineID>>11 ^ lineID>>23
		return h & c.setsMask
	}
	return lineID & c.setsMask
}

// flushWCSlot emits the slot's pending write-combining buffer, if any.
func (c *Cache) flushWCSlot(slot int, stream uint8, out []mem.Request) []mem.Request {
	if !c.wcValid[slot] {
		return out
	}
	c.wcValid[slot] = false
	return append(out, mem.Request{
		Addr:   c.wcLine[slot] << c.lineShift,
		Size:   c.wcBytes[slot],
		Op:     mem.Write,
		Stream: stream,
	})
}

// FlushWC emits every pending write-combining buffer; call it when a
// request stream ends so trailing store bytes reach memory.
func (c *Cache) FlushWC(out []mem.Request) []mem.Request {
	for slot := range c.wcLine {
		out = c.flushWCSlot(slot, uint8(slot), out)
	}
	return out
}

// invalidate drops a line if present (without writeback: used by
// non-temporal stores which overwrite the whole line). The dropped way
// returns to the never-used state: zero tag and LRU stamp.
func (c *Cache) invalidate(lineID uint64) {
	set := c.setIndex(lineID)
	base := set * uint64(c.ways)
	tags := c.tags[base : base+uint64(c.ways)]
	for m := c.valid[set]; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if tags[i] == lineID {
			bit := uint64(1) << uint(i)
			c.valid[set] &^= bit
			c.dirty[set] &^= bit
			tags[i] = 0
			c.used[base+uint64(i)] = 0
			return
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// MissFilter adapts a Cache into a mem.Source transformer: it pulls from
// an upstream source, services each request against the cache, and yields
// only the memory-side traffic. Feed it to a dram.Model to time the
// hierarchy below the cache.
type MissFilter struct {
	cache   *Cache
	src     mem.Source
	queue   []mem.Request
	qHead   int
	flushed bool

	// Upstream prefetch buffer (created on the first NextBatch call):
	// requests are pulled a batch at a time through mem.Fill so the
	// generator chain above runs its own batched paths. Next drains it
	// first, so mixed Next/NextBatch use keeps the exact sequence.
	in    []mem.Request
	inPos int
	inLen int
}

// missFilterBatch is the upstream prefetch depth.
const missFilterBatch = 128

// NewMissFilter wraps src with the cache.
func NewMissFilter(c *Cache, src mem.Source) *MissFilter {
	return &MissFilter{cache: c, src: src}
}

// Remaining is an upper bound on pending memory-side requests: queued
// traffic plus one potential request per upstream element (a fill and a
// writeback can momentarily exceed this, so treat it as approximate).
func (f *MissFilter) Remaining() int {
	return len(f.queue) - f.qHead + (f.inLen - f.inPos) + f.src.Remaining()
}

// NextBatch bulk-yields memory-side requests (mem.Batcher): queued
// traffic drains with one copy, upstream requests arrive in batches, and
// the cache is probed inline instead of through an interface call per
// upstream request. The emitted sequence is exactly what repeated Next
// calls would produce.
func (f *MissFilter) NextBatch(dst []mem.Request) int {
	n := 0
	for n < len(dst) {
		if f.qHead < len(f.queue) {
			k := copy(dst[n:], f.queue[f.qHead:])
			f.qHead += k
			n += k
			continue
		}
		f.queue = f.queue[:0]
		f.qHead = 0
		if f.inPos >= f.inLen {
			if f.in == nil {
				f.in = make([]mem.Request, missFilterBatch)
			}
			f.inLen = mem.Fill(f.src, f.in)
			f.inPos = 0
			if f.inLen == 0 {
				if !f.flushed {
					f.flushed = true
					f.queue = f.cache.FlushWC(f.queue)
					if len(f.queue) > 0 {
						continue
					}
				}
				break
			}
		}
		for f.inPos < f.inLen {
			f.queue = f.cache.Access(f.in[f.inPos], f.queue)
			f.inPos++
		}
	}
	return n
}

// Next yields the next memory-side request.
func (f *MissFilter) Next() (mem.Request, bool) {
	for {
		if f.qHead < len(f.queue) {
			r := f.queue[f.qHead]
			f.qHead++
			return r, true
		}
		f.queue = f.queue[:0]
		f.qHead = 0
		if f.inPos < f.inLen {
			f.queue = f.cache.Access(f.in[f.inPos], f.queue)
			f.inPos++
			continue
		}
		r, ok := f.src.Next()
		if !ok {
			if !f.flushed {
				f.flushed = true
				f.queue = f.cache.FlushWC(f.queue)
				if len(f.queue) > 0 {
					continue
				}
			}
			return mem.Request{}, false
		}
		f.queue = f.cache.Access(r, f.queue)
	}
}
