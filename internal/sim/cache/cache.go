// Package cache models a set-associative, write-back, write-allocate
// last-level cache with LRU replacement, plus the inner-level (L1) line
// traffic that determines cache-resident streaming bandwidth.
//
// The CPU device drives its word-granularity request stream through a
// Cache; the cache absorbs hits and emits line-granularity fills and
// writebacks that the DRAM model then times. Two refinements matter for
// STREAM-style workloads:
//
//   - consecutive accesses to the same line (per stream) are L1-resident
//     and cost no inner-level line transfer, so a contiguous walk moves
//     one line per 16 words while a large-stride walk moves one line per
//     word — that asymmetry is the cache-resident strided penalty;
//   - optionally, writes bypass allocation (non-temporal/streaming
//     stores), which is how OpenCL CPU runtimes avoid the
//     read-for-ownership traffic that would otherwise make STREAM copy
//     move 3x bytes.
package cache

import (
	"fmt"

	"mpstream/internal/sim/mem"
)

// Config describes a last-level cache.
type Config struct {
	Name          string
	CapacityBytes uint64
	LineBytes     uint32
	Ways          int
	// NonTemporalWrites makes write misses bypass allocation entirely:
	// the write goes straight to memory and no line is filled or dirtied.
	NonTemporalWrites bool
	// WriteValidate makes write misses allocate the line dirty without
	// fetching it first (GPU sectored caches over memories with masked
	// writes: byte enables make the fetch unnecessary). Ignored when
	// NonTemporalWrites is set.
	WriteValidate bool
	// HashSets XOR-folds the line address into the set index so
	// power-of-two strides spread over all sets instead of thrashing a
	// few (GPU caches hash; classic CPU LLCs index linearly).
	HashSets bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case !mem.CheckPow2(c.LineBytes) || c.LineBytes == 0:
		return fmt.Errorf("cache %q: line bytes %d must be a power of two", c.Name, c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache %q: ways must be positive", c.Name)
	case c.CapacityBytes == 0 || c.CapacityBytes%(uint64(c.LineBytes)*uint64(c.Ways)) != 0:
		return fmt.Errorf("cache %q: capacity %d not divisible into %d ways of %d-byte lines",
			c.Name, c.CapacityBytes, c.Ways, c.LineBytes)
	}
	sets := c.CapacityBytes / (uint64(c.LineBytes) * uint64(c.Ways))
	if !mem.CheckPow2(uint32(sets)) {
		return fmt.Errorf("cache %q: set count %d must be a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() uint64 {
	return c.CapacityBytes / (uint64(c.LineBytes) * uint64(c.Ways))
}

// Stats accumulates cache activity across accesses.
type Stats struct {
	Accesses    uint64 // requests presented
	LineProbes  uint64 // line-granularity lookups
	Hits        uint64
	Misses      uint64
	Fills       uint64 // lines read from memory
	Writebacks  uint64 // dirty lines written back
	Bypasses    uint64 // non-temporal writes sent straight to memory
	BypassBytes uint64 // bytes carried by non-temporal writes
	Validates   uint64 // write misses allocated without a fill
	L1Transfers uint64 // lines moved between inner level and this cache
}

// Delta returns the difference s - prev, field-wise; use it to isolate
// the activity of one run on a long-lived cache.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Accesses:    s.Accesses - prev.Accesses,
		LineProbes:  s.LineProbes - prev.LineProbes,
		Hits:        s.Hits - prev.Hits,
		Misses:      s.Misses - prev.Misses,
		Fills:       s.Fills - prev.Fills,
		Writebacks:  s.Writebacks - prev.Writebacks,
		Bypasses:    s.Bypasses - prev.Bypasses,
		BypassBytes: s.BypassBytes - prev.BypassBytes,
		Validates:   s.Validates - prev.Validates,
		L1Transfers: s.L1Transfers - prev.L1Transfers,
	}
}

// HitRate returns Hits / LineProbes.
func (s Stats) HitRate() float64 {
	if s.LineProbes == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.LineProbes)
}

// L1TransferBytes returns the inner-level line traffic in bytes.
func (s Stats) L1TransferBytes(lineBytes uint32) uint64 {
	return s.L1Transfers * uint64(lineBytes)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative cache with persistent state, so repeated
// kernel invocations see warm caches exactly as hardware does. Reset
// restores the cold state.
type Cache struct {
	cfg   Config
	sets  uint64
	ways  [][]way
	tick  uint64
	stats Stats

	// lastLine tracks the most recently touched line per stream tag (the
	// L1-residency approximation). Indexed by stream&(len-1); a benchmark
	// touches at most three streams so collisions do not occur in
	// practice, and a collision only costs a spurious L1 transfer.
	lastLine  [8]uint64
	lastValid [8]bool

	// Write-combining buffers for non-temporal stores: one open line per
	// stream accumulating store bytes; it flushes as a single (masked)
	// memory write when the stream moves to another line.
	wcLine  [8]uint64
	wcBytes [8]uint32
	wcValid [8]bool
}

// New builds a cache, panicking on invalid configuration (configurations
// are compile-time constants of the device packages).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, sets: cfg.Sets()}
	c.ways = make([][]way, c.sets)
	for i := range c.ways {
		c.ways[i] = make([]way, cfg.Ways)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset restores cold state and clears statistics.
func (c *Cache) Reset() {
	for i := range c.ways {
		for j := range c.ways[i] {
			c.ways[i][j] = way{}
		}
	}
	c.tick = 0
	c.stats = Stats{}
	c.lastLine = [8]uint64{}
	c.lastValid = [8]bool{}
	c.wcLine = [8]uint64{}
	c.wcBytes = [8]uint32{}
	c.wcValid = [8]bool{}
}

// ResetStats clears statistics but keeps cache contents warm.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
}

// Access presents one request. It appends to out (and returns the extended
// slice) the memory-side requests the access generates: line fills as
// reads, writebacks and bypassed stores as writes. Reusing out across
// calls avoids per-access allocation.
func (c *Cache) Access(r mem.Request, out []mem.Request) []mem.Request {
	if r.Size == 0 {
		return out
	}
	c.stats.Accesses++
	line := uint64(c.cfg.LineBytes)
	first := mem.Align(r.Addr, c.cfg.LineBytes)
	end := r.Addr + uint64(r.Size)

	for addr := first; addr < end; addr += line {
		c.stats.LineProbes++
		lineID := addr / line

		slot := r.Stream & 7

		if r.Op == mem.Write && c.cfg.NonTemporalWrites {
			// Streaming store: bypass the hierarchy. Invalidate a matching
			// line so later reads see memory, then accumulate the bytes in
			// the stream's write-combining buffer; the buffer flushes as
			// one masked write when the stream leaves the line.
			c.invalidate(lineID)
			c.stats.Bypasses++
			c.lastLine[slot], c.lastValid[slot] = lineID, true
			lo, hi := addr, addr+line
			if lo < r.Addr {
				lo = r.Addr
			}
			if hi > end {
				hi = end
			}
			bytes := uint32(hi - lo)
			c.stats.BypassBytes += uint64(bytes)
			if c.wcValid[slot] && c.wcLine[slot] == lineID {
				c.wcBytes[slot] += bytes
				if c.wcBytes[slot] > uint32(line) {
					c.wcBytes[slot] = uint32(line)
				}
				continue
			}
			out = c.flushWCSlot(int(slot), slot, out)
			c.wcLine[slot], c.wcBytes[slot], c.wcValid[slot] = lineID, bytes, true
			continue
		}

		// L1 residency: repeated touches of the same line by the same
		// stream cost no inner-level transfer.
		if c.lastValid[slot] && c.lastLine[slot] == lineID {
			c.stats.Hits++
			continue
		}
		c.lastLine[slot], c.lastValid[slot] = lineID, true

		set := c.setIndex(lineID)
		ws := c.ways[set]
		c.tick++

		// Probe.
		hitIdx := -1
		for i := range ws {
			if ws[i].valid && ws[i].tag == lineID {
				hitIdx = i
				break
			}
		}
		if hitIdx >= 0 {
			c.stats.Hits++
			c.stats.L1Transfers++
			ws[hitIdx].used = c.tick
			if r.Op == mem.Write {
				ws[hitIdx].dirty = true
			}
			continue
		}

		// Miss: pick the LRU victim.
		c.stats.Misses++
		victim := 0
		for i := 1; i < len(ws); i++ {
			if !ws[i].valid {
				victim = i
				break
			}
			if ws[i].used < ws[victim].used {
				victim = i
			}
		}
		if ws[victim].valid && ws[victim].dirty {
			c.stats.Writebacks++
			out = append(out, mem.Request{
				Addr:   ws[victim].tag * line,
				Size:   uint32(line),
				Op:     mem.Write,
				Stream: r.Stream,
			})
		}
		// Fill (write-allocate), unless a write validates the line
		// without fetching it.
		if c.cfg.WriteValidate && r.Op == mem.Write {
			c.stats.Validates++
			c.stats.L1Transfers++
		} else {
			c.stats.Fills++
			c.stats.L1Transfers++
			out = append(out, mem.Request{
				Addr:   addr,
				Size:   uint32(line),
				Op:     mem.Read,
				Stream: r.Stream,
			})
		}
		ws[victim] = way{tag: lineID, valid: true, dirty: r.Op == mem.Write, used: c.tick}
	}
	return out
}

// setIndex maps a line to its set, optionally hashing to break up
// power-of-two stride conflicts.
func (c *Cache) setIndex(lineID uint64) uint64 {
	if c.cfg.HashSets {
		h := lineID ^ lineID>>11 ^ lineID>>23
		return h % c.sets
	}
	return lineID % c.sets
}

// flushWCSlot emits the slot's pending write-combining buffer, if any.
func (c *Cache) flushWCSlot(slot int, stream uint8, out []mem.Request) []mem.Request {
	if !c.wcValid[slot] {
		return out
	}
	c.wcValid[slot] = false
	return append(out, mem.Request{
		Addr:   c.wcLine[slot] * uint64(c.cfg.LineBytes),
		Size:   c.wcBytes[slot],
		Op:     mem.Write,
		Stream: stream,
	})
}

// FlushWC emits every pending write-combining buffer; call it when a
// request stream ends so trailing store bytes reach memory.
func (c *Cache) FlushWC(out []mem.Request) []mem.Request {
	for slot := range c.wcLine {
		out = c.flushWCSlot(slot, uint8(slot), out)
	}
	return out
}

// invalidate drops a line if present (without writeback: used by
// non-temporal stores which overwrite the whole line).
func (c *Cache) invalidate(lineID uint64) {
	set := c.setIndex(lineID)
	ws := c.ways[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == lineID {
			ws[i] = way{}
			return
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// MissFilter adapts a Cache into a mem.Source transformer: it pulls from
// an upstream source, services each request against the cache, and yields
// only the memory-side traffic. Feed it to a dram.Model to time the
// hierarchy below the cache.
type MissFilter struct {
	cache   *Cache
	src     mem.Source
	queue   []mem.Request
	qHead   int
	flushed bool
}

// NewMissFilter wraps src with the cache.
func NewMissFilter(c *Cache, src mem.Source) *MissFilter {
	return &MissFilter{cache: c, src: src}
}

// Remaining is an upper bound on pending memory-side requests: queued
// traffic plus one potential request per upstream element (a fill and a
// writeback can momentarily exceed this, so treat it as approximate).
func (f *MissFilter) Remaining() int {
	return len(f.queue) - f.qHead + f.src.Remaining()
}

// Next yields the next memory-side request.
func (f *MissFilter) Next() (mem.Request, bool) {
	for {
		if f.qHead < len(f.queue) {
			r := f.queue[f.qHead]
			f.qHead++
			return r, true
		}
		f.queue = f.queue[:0]
		f.qHead = 0
		r, ok := f.src.Next()
		if !ok {
			if !f.flushed {
				f.flushed = true
				f.queue = f.cache.FlushWC(f.queue)
				if len(f.queue) > 0 {
					continue
				}
			}
			return mem.Request{}, false
		}
		f.queue = f.cache.Access(r, f.queue)
	}
}
