package cache

// refCache is the frozen pre-optimization cache: array-of-structs ways,
// two-pass probe/victim scans. The live Cache reorganized this state
// into tag/LRU arrays with validity bitmasks for scan locality; the
// parity tests in parity_test.go hold the two implementations to
// identical emitted traffic and statistics, request for request.

import (
	"mpstream/internal/sim/mem"
)

type refWay struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64
}

type refCache struct {
	cfg   Config
	sets  uint64
	ways  [][]refWay
	tick  uint64
	stats Stats

	lineShift uint
	setsMask  uint64

	lastLine  [8]uint64
	lastValid [8]bool

	wcLine  [8]uint64
	wcBytes [8]uint32
	wcValid [8]bool
}

func newRefCache(cfg Config) *refCache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &refCache{cfg: cfg, sets: cfg.Sets()}
	c.lineShift = mem.Log2(uint64(cfg.LineBytes))
	c.setsMask = c.sets - 1
	c.ways = make([][]refWay, c.sets)
	for i := range c.ways {
		c.ways[i] = make([]refWay, cfg.Ways)
	}
	return c
}

func (c *refCache) setIndex(lineID uint64) uint64 {
	if c.cfg.HashSets {
		h := lineID ^ lineID>>11 ^ lineID>>23
		return h & c.setsMask
	}
	return lineID & c.setsMask
}

func (c *refCache) access(r mem.Request, out []mem.Request) []mem.Request {
	if r.Size == 0 {
		return out
	}
	c.stats.Accesses++
	line := uint64(c.cfg.LineBytes)
	first := mem.Align(r.Addr, c.cfg.LineBytes)
	end := r.Addr + uint64(r.Size)

	for addr := first; addr < end; addr += line {
		c.stats.LineProbes++
		lineID := addr >> c.lineShift
		slot := r.Stream & 7

		if r.Op == mem.Write && c.cfg.NonTemporalWrites {
			c.invalidate(lineID)
			c.stats.Bypasses++
			c.lastLine[slot], c.lastValid[slot] = lineID, true
			lo, hi := addr, addr+line
			if lo < r.Addr {
				lo = r.Addr
			}
			if hi > end {
				hi = end
			}
			bytes := uint32(hi - lo)
			c.stats.BypassBytes += uint64(bytes)
			if c.wcValid[slot] && c.wcLine[slot] == lineID {
				c.wcBytes[slot] += bytes
				if c.wcBytes[slot] > uint32(line) {
					c.wcBytes[slot] = uint32(line)
				}
				continue
			}
			out = c.flushWCSlot(int(slot), slot, out)
			c.wcLine[slot], c.wcBytes[slot], c.wcValid[slot] = lineID, bytes, true
			continue
		}

		if c.lastValid[slot] && c.lastLine[slot] == lineID {
			c.stats.Hits++
			continue
		}
		c.lastLine[slot], c.lastValid[slot] = lineID, true

		set := c.setIndex(lineID)
		ws := c.ways[set]
		c.tick++

		hitIdx := -1
		for i := range ws {
			if ws[i].valid && ws[i].tag == lineID {
				hitIdx = i
				break
			}
		}
		if hitIdx >= 0 {
			c.stats.Hits++
			c.stats.L1Transfers++
			ws[hitIdx].used = c.tick
			if r.Op == mem.Write {
				ws[hitIdx].dirty = true
			}
			continue
		}

		c.stats.Misses++
		victim := 0
		for i := 1; i < len(ws); i++ {
			if !ws[i].valid {
				victim = i
				break
			}
			if ws[i].used < ws[victim].used {
				victim = i
			}
		}
		if ws[victim].valid && ws[victim].dirty {
			c.stats.Writebacks++
			out = append(out, mem.Request{
				Addr:   ws[victim].tag << c.lineShift,
				Size:   uint32(line),
				Op:     mem.Write,
				Stream: r.Stream,
			})
		}
		if c.cfg.WriteValidate && r.Op == mem.Write {
			c.stats.Validates++
			c.stats.L1Transfers++
		} else {
			c.stats.Fills++
			c.stats.L1Transfers++
			out = append(out, mem.Request{
				Addr:   addr,
				Size:   uint32(line),
				Op:     mem.Read,
				Stream: r.Stream,
			})
		}
		ws[victim] = refWay{tag: lineID, valid: true, dirty: r.Op == mem.Write, used: c.tick}
	}
	return out
}

func (c *refCache) flushWCSlot(slot int, stream uint8, out []mem.Request) []mem.Request {
	if !c.wcValid[slot] {
		return out
	}
	c.wcValid[slot] = false
	return append(out, mem.Request{
		Addr:   c.wcLine[slot] << c.lineShift,
		Size:   c.wcBytes[slot],
		Op:     mem.Write,
		Stream: stream,
	})
}

func (c *refCache) flushWC(out []mem.Request) []mem.Request {
	for slot := range c.wcLine {
		out = c.flushWCSlot(slot, uint8(slot), out)
	}
	return out
}

func (c *refCache) invalidate(lineID uint64) {
	set := c.setIndex(lineID)
	ws := c.ways[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == lineID {
			ws[i] = refWay{}
			return
		}
	}
}
