package mem

import (
	"testing"
	"testing/quick"
)

func collect(t *testing.T, it Source) []Request {
	t.Helper()
	var out []Request
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func mustIter(t *testing.T, p Pattern, base uint64, elems int, elemBytes uint32, op Op, stream uint8) *Iter {
	t.Helper()
	it, err := NewIter(p, base, elems, elemBytes, op, stream)
	if err != nil {
		t.Fatalf("NewIter: %v", err)
	}
	return it
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Op.String wrong")
	}
}

func TestPatternKindString(t *testing.T) {
	if Contiguous.String() != "contiguous" ||
		Strided.String() != "strided" ||
		ColMajor2D.String() != "colmajor2d" {
		t.Error("PatternKind.String wrong")
	}
	if PatternKind(99).String() != "PatternKind(99)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestContiguousWalk(t *testing.T) {
	it := mustIter(t, ContiguousPattern(), 0x1000, 4, 8, Read, 1)
	got := collect(t, it)
	if len(got) != 4 {
		t.Fatalf("got %d requests, want 4", len(got))
	}
	for i, r := range got {
		wantAddr := uint64(0x1000 + 8*i)
		if r.Addr != wantAddr || r.Size != 8 || r.Op != Read || r.Stream != 1 {
			t.Errorf("req %d = %+v, want addr %#x size 8 read stream 1", i, r, wantAddr)
		}
	}
}

func TestStridedWalkOrder(t *testing.T) {
	// 6 elements, stride 2: passes [0 2 4] then [1 3 5].
	it := mustIter(t, StridedPattern(2), 0, 6, 4, Write, 0)
	got := collect(t, it)
	wantIdx := []uint64{0, 2, 4, 1, 3, 5}
	if len(got) != len(wantIdx) {
		t.Fatalf("got %d requests, want %d", len(got), len(wantIdx))
	}
	for i, r := range got {
		if r.Addr != wantIdx[i]*4 {
			t.Errorf("req %d addr = %d, want %d", i, r.Addr/4, wantIdx[i])
		}
		if r.Op != Write {
			t.Errorf("req %d op = %v, want write", i, r.Op)
		}
	}
}

func TestStridedStrideLargerThanArray(t *testing.T) {
	it := mustIter(t, StridedPattern(5), 0, 3, 4, Read, 0)
	got := collect(t, it)
	wantIdx := []uint64{0, 1, 2}
	if len(got) != 3 {
		t.Fatalf("got %d requests, want 3", len(got))
	}
	for i, r := range got {
		if r.Addr != wantIdx[i]*4 {
			t.Errorf("req %d addr/4 = %d, want %d", i, r.Addr/4, wantIdx[i])
		}
	}
}

func TestColMajorWalkOrder(t *testing.T) {
	// 6 elements as 3x2: row-major [0 1; 2 3; 4 5], column-major visit
	// order is 0,2,4 then 1,3,5.
	it := mustIter(t, Pattern{Kind: ColMajor2D, Rows: 3, Cols: 2}, 0, 6, 4, Read, 0)
	got := collect(t, it)
	wantIdx := []uint64{0, 2, 4, 1, 3, 5}
	if len(got) != len(wantIdx) {
		t.Fatalf("got %d requests, want %d", len(got), len(wantIdx))
	}
	for i, r := range got {
		if r.Addr != wantIdx[i]*4 {
			t.Errorf("req %d addr/4 = %d, want %d", i, r.Addr/4, wantIdx[i])
		}
	}
}

func TestColMajorAutoShape(t *testing.T) {
	it := mustIter(t, ColMajorPattern(), 0, 64, 4, Read, 0)
	got := collect(t, it)
	if len(got) != 64 {
		t.Fatalf("got %d requests, want 64", len(got))
	}
	// 64 elements -> 8x8; consecutive accesses stride one row = 8 elems.
	if got[1].Addr-got[0].Addr != 8*4 {
		t.Errorf("colmajor stride = %d bytes, want 32", got[1].Addr-got[0].Addr)
	}
}

func TestShape2D(t *testing.T) {
	cases := []struct {
		n          int
		rows, cols int
	}{
		{64, 8, 8},
		{128, 16, 8},
		{1, 1, 1},
		{2, 2, 1},
		{12, 6, 2},
		{1 << 20, 1 << 10, 1 << 10},
		{0, 0, 0},
	}
	for _, c := range cases {
		r, co := Shape2D(c.n)
		if r != c.rows || co != c.cols {
			t.Errorf("Shape2D(%d) = %dx%d, want %dx%d", c.n, r, co, c.rows, c.cols)
		}
		if c.n > 0 && r*co != c.n {
			t.Errorf("Shape2D(%d) does not cover: %d*%d", c.n, r, co)
		}
	}
}

func TestEffectiveStride(t *testing.T) {
	if got := ContiguousPattern().EffectiveStrideElems(100); got != 1 {
		t.Errorf("contiguous stride = %d, want 1", got)
	}
	if got := StridedPattern(7).EffectiveStrideElems(100); got != 7 {
		t.Errorf("strided stride = %d, want 7", got)
	}
	if got := ColMajorPattern().EffectiveStrideElems(1 << 20); got != 1<<10 {
		t.Errorf("colmajor stride = %d, want 1024", got)
	}
}

func TestValidate(t *testing.T) {
	if err := ContiguousPattern().Validate(0); err == nil {
		t.Error("zero elements must fail validation")
	}
	if err := StridedPattern(0).Validate(10); err == nil {
		t.Error("stride 0 must fail validation")
	}
	if err := (Pattern{Kind: ColMajor2D, Rows: 3, Cols: 3}).Validate(10); err == nil {
		t.Error("mismatched shape must fail validation")
	}
	if err := (Pattern{Kind: PatternKind(42)}).Validate(10); err == nil {
		t.Error("unknown kind must fail validation")
	}
	if _, err := NewIter(ContiguousPattern(), 0, 10, 0, Read, 0); err == nil {
		t.Error("zero element size must fail")
	}
}

func TestIterReset(t *testing.T) {
	it := mustIter(t, StridedPattern(3), 0, 9, 4, Read, 0)
	first := append([]Request(nil), collect(t, it)...)
	it.Reset()
	second := collect(t, it)
	if len(first) != len(second) {
		t.Fatalf("reset changed count: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reset changed sequence at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestIterRemaining(t *testing.T) {
	it := mustIter(t, ContiguousPattern(), 0, 5, 4, Read, 0)
	if it.Remaining() != 5 || it.Total() != 5 {
		t.Fatal("initial Remaining/Total wrong")
	}
	it.Next()
	it.Next()
	if it.Remaining() != 3 {
		t.Errorf("Remaining after 2 = %d, want 3", it.Remaining())
	}
}

func TestInterleave(t *testing.T) {
	a := mustIter(t, ContiguousPattern(), 0, 3, 4, Read, 0)
	b := mustIter(t, ContiguousPattern(), 0x1000, 3, 4, Write, 1)
	in := NewInterleave(a, b)
	if in.Remaining() != 6 {
		t.Fatalf("Remaining = %d, want 6", in.Remaining())
	}
	got := collect(t, in)
	if len(got) != 6 {
		t.Fatalf("got %d, want 6", len(got))
	}
	for i, r := range got {
		wantStream := uint8(i % 2)
		if r.Stream != wantStream {
			t.Errorf("req %d stream = %d, want %d (round-robin)", i, r.Stream, wantStream)
		}
	}
}

func TestInterleaveUneven(t *testing.T) {
	a := mustIter(t, ContiguousPattern(), 0, 1, 4, Read, 0)
	b := mustIter(t, ContiguousPattern(), 0x1000, 4, 4, Write, 1)
	got := collect(t, NewInterleave(a, b))
	if len(got) != 5 {
		t.Fatalf("got %d, want 5", len(got))
	}
	// After a drains, the rest must all come from b.
	for _, r := range got[2:] {
		if r.Stream != 1 {
			t.Errorf("tail request from stream %d, want 1", r.Stream)
		}
	}
}

func TestCoalescerMergesContiguous(t *testing.T) {
	it := mustIter(t, ContiguousPattern(), 0, 64, 4, Read, 0)
	co := NewCoalescer(it, 64)
	got := collect(t, co)
	if len(got) != 4 {
		t.Fatalf("coalesced to %d transactions, want 4 (64x4B into 64B)", len(got))
	}
	var bytes uint64
	for i, r := range got {
		if r.Size != 64 {
			t.Errorf("txn %d size = %d, want 64", i, r.Size)
		}
		bytes += uint64(r.Size)
	}
	if bytes != 256 {
		t.Errorf("total bytes = %d, want 256", bytes)
	}
}

func TestCoalescerDoesNotMergeStrided(t *testing.T) {
	it := mustIter(t, StridedPattern(16), 0, 64, 4, Read, 0)
	co := NewCoalescer(it, 64)
	got := collect(t, co)
	if len(got) != 64 {
		t.Fatalf("strided coalesced to %d transactions, want 64 (no merging)", len(got))
	}
}

func TestCoalescerRespectsOpBoundary(t *testing.T) {
	// Interleaved read/write to adjacent addresses must not merge.
	a := mustIter(t, ContiguousPattern(), 0, 4, 4, Read, 0)
	b := mustIter(t, ContiguousPattern(), 16, 4, 4, Write, 0)
	co := NewCoalescer(NewInterleave(a, b), 64)
	got := collect(t, co)
	if len(got) != 8 {
		t.Fatalf("mixed-op stream coalesced to %d, want 8", len(got))
	}
}

func TestCoalescerPreservesBytes(t *testing.T) {
	it := mustIter(t, ContiguousPattern(), 12, 100, 4, Read, 0)
	n1, b1 := TotalBytes(it)
	it.Reset()
	n2, b2 := TotalBytes(NewCoalescer(it, 32))
	if b1 != b2 {
		t.Errorf("coalescer changed bytes: %d vs %d", b1, b2)
	}
	if n2 >= n1 {
		t.Errorf("coalescer did not reduce transactions: %d vs %d", n2, n1)
	}
	if n2 != 13 { // 400 bytes into 32B txns: 12 full + 1 of 16B
		t.Errorf("coalesced count = %d, want 13", n2)
	}
}

func TestCoalescerZeroWindow(t *testing.T) {
	it := mustIter(t, ContiguousPattern(), 0, 4, 4, Read, 0)
	co := NewCoalescer(it, 0) // clamps to 1: nothing merges
	got := collect(t, co)
	if len(got) != 4 {
		t.Fatalf("got %d, want 4", len(got))
	}
}

func TestAlign(t *testing.T) {
	if Align(0x1234, 64) != 0x1200 {
		t.Errorf("Align(0x1234, 64) = %#x", Align(0x1234, 64))
	}
	if Align(0x1200, 64) != 0x1200 {
		t.Error("aligned address must be unchanged")
	}
}

func TestLinesTouched(t *testing.T) {
	cases := []struct {
		r    Request
		line uint32
		want int
	}{
		{Request{Addr: 0, Size: 64}, 64, 1},
		{Request{Addr: 1, Size: 64}, 64, 2},
		{Request{Addr: 0, Size: 0}, 64, 0},
		{Request{Addr: 60, Size: 8}, 64, 2},
		{Request{Addr: 0, Size: 256}, 64, 4},
	}
	for _, c := range cases {
		if got := LinesTouched(c.r, c.line); got != c.want {
			t.Errorf("LinesTouched(%+v, %d) = %d, want %d", c.r, c.line, got, c.want)
		}
	}
}

func TestCheckPow2(t *testing.T) {
	for _, v := range []uint32{1, 2, 4, 1024, 1 << 30} {
		if !CheckPow2(v) {
			t.Errorf("CheckPow2(%d) = false", v)
		}
	}
	for _, v := range []uint32{0, 3, 6, 1000} {
		if CheckPow2(v) {
			t.Errorf("CheckPow2(%d) = true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	if Log2(1) != 0 || Log2(2) != 1 || Log2(1024) != 10 || Log2(1025) != 10 {
		t.Error("Log2 wrong")
	}
}

// Property: every pattern visits each element exactly once.
func TestQuickPatternsArePermutations(t *testing.T) {
	f := func(rawElems uint16, rawStride uint8, kindSel uint8) bool {
		elems := int(rawElems%512) + 1
		var p Pattern
		switch kindSel % 3 {
		case 0:
			p = ContiguousPattern()
		case 1:
			p = StridedPattern(int(rawStride%32) + 1)
		case 2:
			p = ColMajorPattern()
		}
		it, err := NewIter(p, 0, elems, 4, Read, 0)
		if err != nil {
			return false
		}
		seen := make([]bool, elems)
		count := 0
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			idx := int(r.Addr / 4)
			if idx < 0 || idx >= elems || seen[idx] {
				return false
			}
			seen[idx] = true
			count++
		}
		return count == elems
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: coalescing never changes the byte total and never increases
// the transaction count.
func TestQuickCoalescerConserves(t *testing.T) {
	f := func(rawElems uint16, rawWindow uint8, strided bool) bool {
		elems := int(rawElems%1024) + 1
		window := uint32(rawWindow%128) + 1
		p := ContiguousPattern()
		if strided {
			p = StridedPattern(3)
		}
		it, err := NewIter(p, 64, elems, 4, Read, 0)
		if err != nil {
			return false
		}
		nRaw, bRaw := TotalBytes(it)
		it.Reset()
		nCo, bCo := TotalBytes(NewCoalescer(it, window))
		return bRaw == bCo && nCo <= nRaw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLimit(t *testing.T) {
	it := mustIter(t, ContiguousPattern(), 0, 10, 4, Read, 0)
	lim := NewLimit(it, 3)
	if lim.Remaining() != 3 {
		t.Errorf("Remaining = %d, want 3", lim.Remaining())
	}
	got := collect(t, lim)
	if len(got) != 3 {
		t.Fatalf("Limit yielded %d, want 3", len(got))
	}
	// Budget larger than the source.
	it.Reset()
	lim = NewLimit(it, 100)
	if lim.Remaining() != 10 {
		t.Errorf("Remaining = %d, want 10", lim.Remaining())
	}
	if got := collect(t, lim); len(got) != 10 {
		t.Errorf("yielded %d, want 10", len(got))
	}
	// Negative budget clamps to zero.
	it.Reset()
	if got := collect(t, NewLimit(it, -1)); len(got) != 0 {
		t.Errorf("negative budget yielded %d", len(got))
	}
}

func TestChaseIter(t *testing.T) {
	ch, err := NewChaseIter(1<<20, 256, 64, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Remaining() != 100 {
		t.Errorf("Remaining = %d, want 100", ch.Remaining())
	}
	got := collect(t, ch)
	if len(got) != 100 {
		t.Fatalf("chase yielded %d hops, want 100", len(got))
	}
	distinct := make(map[uint64]bool)
	for _, r := range got {
		if r.Op != Read {
			t.Fatalf("chase emitted a %v", r.Op)
		}
		if r.Stream != 7 {
			t.Fatalf("chase stream = %d, want 7", r.Stream)
		}
		if r.Size != 64 {
			t.Fatalf("chase size = %d, want 64", r.Size)
		}
		if r.Addr < 1<<20 || r.Addr >= 1<<20+256*64 {
			t.Fatalf("chase address %#x outside the array", r.Addr)
		}
		distinct[r.Addr] = true
	}
	// A pointer chase must scatter, not stream.
	if len(distinct) < 50 {
		t.Errorf("chase visited only %d distinct addresses in 100 hops", len(distinct))
	}
	// Deterministic: a fresh iterator replays the same walk.
	ch2, _ := NewChaseIter(1<<20, 256, 64, 100, 7)
	for i, r := range collect(t, ch2) {
		if r != got[i] {
			t.Fatalf("hop %d differs between identical chases", i)
		}
	}
}

func TestChaseIterErrors(t *testing.T) {
	if _, err := NewChaseIter(0, 0, 64, 10, 0); err == nil {
		t.Error("zero elems must error")
	}
	if _, err := NewChaseIter(0, 8, 0, 10, 0); err == nil {
		t.Error("zero element size must error")
	}
	ch, err := NewChaseIter(0, 8, 4, -5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, ch); len(got) != 0 {
		t.Errorf("negative count yielded %d hops", len(got))
	}
}

func TestMixRatio(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 2.0 / 3, 1} {
		reads := mustIter(t, ContiguousPattern(), 0, 1000, 4, Read, 1)
		writes := mustIter(t, ContiguousPattern(), 1<<31, 1000, 4, Write, 0)
		m := NewMix(reads, writes, frac, 4)
		nr, total := 0, 0
		for total < 600 {
			r, ok := m.Next()
			if !ok {
				t.Fatal("mix ran dry early")
			}
			total++
			if r.Op == Read {
				nr++
			}
		}
		got := float64(nr) / float64(total)
		if diff := got - frac; diff > 0.01 || diff < -0.01 {
			t.Errorf("readFrac %.3f: emitted %.3f reads", frac, got)
		}
	}
}

func TestMixDrainsBothSides(t *testing.T) {
	reads := mustIter(t, ContiguousPattern(), 0, 5, 4, Read, 1)
	writes := mustIter(t, ContiguousPattern(), 1<<31, 5, 4, Write, 0)
	m := NewMix(reads, writes, 0.9, 0) // reads exhaust first
	if m.Remaining() != 10 {
		t.Errorf("Remaining = %d, want 10", m.Remaining())
	}
	got := collect(t, m)
	if len(got) != 10 {
		t.Errorf("mix yielded %d, want 10", len(got))
	}
}

// infiniteSource reports an effectively unbounded count.
type infiniteSource struct{ Source }

func (infiniteSource) Remaining() int { return int(^uint(0) >> 1) }

func TestMixRemainingSaturates(t *testing.T) {
	a := infiniteSource{mustIter(t, ContiguousPattern(), 0, 4, 4, Read, 1)}
	b := infiniteSource{mustIter(t, ContiguousPattern(), 1<<31, 4, 4, Write, 0)}
	if got := NewMix(a, b, 0.5, 0).Remaining(); got <= 0 {
		t.Errorf("Remaining overflowed to %d", got)
	}
}
