package mem

// Fuzz coverage for the surface's background and probe generators. The
// properties fuzzed here are the ones the bandwidth–latency methodology
// leans on: Mix holds its read/write ratio to within one scheduling
// granule by error diffusion, ChaseIter's LCG walk never leaves its
// array, and both are bit-deterministic for a fixed seed (the whole
// caching and fleet-merge story rests on that).
//
// Run with: go test -fuzz FuzzMix ./internal/sim/mem (etc.); the f.Add
// seeds below run on every plain `go test`.

import (
	"testing"
)

// fuzzSource is an endless generator with recognizable reads/writes.
type fuzzSource struct {
	op   Op
	next uint64
}

func (s *fuzzSource) Remaining() int { return 1 << 30 }
func (s *fuzzSource) Next() (Request, bool) {
	r := Request{Addr: s.next, Size: 64, Op: s.op}
	s.next += 64
	return r, true
}

func FuzzMix(f *testing.F) {
	f.Add(0.5, 16, uint16(1000))
	f.Add(1.0, 16, uint16(100))
	f.Add(0.0, 16, uint16(100))
	f.Add(2.0/3, 4, uint16(999))
	f.Add(0.123456, 64, uint16(5000))
	f.Add(-1.5, 0, uint16(300))
	f.Add(0.9999, 1, uint16(777))
	f.Fuzz(func(t *testing.T, readFrac float64, group int, n16 uint16) {
		if readFrac != readFrac { // NaN clamps to 0 via the < 0 branch? No: NaN fails both clamps.
			t.Skip("NaN ratio is not a meaningful input")
		}
		if group > 1<<20 {
			t.Skip("absurd group size")
		}
		n := int(n16)
		if n == 0 {
			return
		}
		mix := NewMix(&fuzzSource{op: Read}, &fuzzSource{op: Write}, readFrac, group)

		wantFrac := readFrac
		if wantFrac < 0 {
			wantFrac = 0
		}
		if wantFrac > 1 {
			wantFrac = 1
		}
		g := group
		if g <= 0 {
			g = DefaultMixGroup
		}

		reads := 0
		var firstSeq []Request
		for i := 0; i < n; i++ {
			r, ok := mix.Next()
			if !ok {
				t.Fatalf("mix of endless sources ran dry at %d", i)
			}
			if r.Op == Read {
				reads++
			}
			firstSeq = append(firstSeq, r)

			// Ratio property: error diffusion keeps the emitted read count
			// within one scheduling granule of the exact quota at every
			// group boundary (mid-group the run structure allows a full
			// group of drift).
			if (i+1)%g == 0 {
				want := wantFrac * float64(i+1)
				if diff := float64(reads) - want; diff > float64(g) || diff < -float64(g) {
					t.Fatalf("after %d requests: %d reads, want %.2f ± %d (frac %g group %d)",
						i+1, reads, want, g, wantFrac, g)
				}
			}
		}

		// Determinism: an identical mix replays the identical sequence.
		mix2 := NewMix(&fuzzSource{op: Read}, &fuzzSource{op: Write}, readFrac, group)
		for i, want := range firstSeq {
			got, ok := mix2.Next()
			if !ok || got != want {
				t.Fatalf("replay diverged at %d: got %+v ok=%v want %+v", i, got, ok, want)
			}
		}

		// Batch parity: NextBatch must emit the same sequence as Next.
		mix3 := NewMix(&fuzzSource{op: Read}, &fuzzSource{op: Write}, readFrac, group)
		buf := make([]Request, n)
		got := 0
		for got < n {
			k := mix3.NextBatch(buf[got : got+min(n-got, 37)]) // odd chunk crosses group bounds
			if k == 0 {
				t.Fatalf("batch replay ran dry at %d", got)
			}
			got += k
		}
		for i := range firstSeq {
			if buf[i] != firstSeq[i] {
				t.Fatalf("batch replay diverged at %d: got %+v want %+v", i, buf[i], firstSeq[i])
			}
		}
	})
}

func FuzzChase(f *testing.F) {
	f.Add(uint64(0), 1024, uint32(64), uint16(512))
	f.Add(uint64(3)<<31, 1, uint32(64), uint16(64))
	f.Add(uint64(1<<40), 7777, uint32(16), uint16(2000))
	f.Add(uint64(64), 65536, uint32(128), uint16(100))
	f.Fuzz(func(t *testing.T, base uint64, elems int, elemBytes uint32, hops16 uint16) {
		hops := int(hops16)
		if elems <= 0 || elems > 1<<24 || elemBytes == 0 || elemBytes > 1<<12 {
			t.Skip("out of model range")
		}
		if base > 1<<48 {
			t.Skip("address overflow territory is not meaningful")
		}
		c, err := NewChaseIter(base, elems, elemBytes, hops, 3)
		if err != nil {
			t.Fatal(err)
		}
		limit := base + uint64(elems)*uint64(elemBytes)
		var firstSeq []Request
		for i := 0; i < hops; i++ {
			r, ok := c.Next()
			if !ok {
				t.Fatalf("chase of %d hops ran dry at %d", hops, i)
			}
			// In-range: every hop lands on an element inside the array.
			if r.Addr < base || r.Addr+uint64(r.Size) > limit {
				t.Fatalf("hop %d at %#x (+%d) escapes [%#x, %#x)", i, r.Addr, r.Size, base, limit)
			}
			if (r.Addr-base)%uint64(elemBytes) != 0 {
				t.Fatalf("hop %d at %#x not element-aligned", i, r.Addr)
			}
			// The probe is read-only: a chase that wrote would turn the
			// latency measurement into bandwidth traffic.
			if r.Op != Read {
				t.Fatalf("hop %d is a %v; the chase must only read", i, r.Op)
			}
			firstSeq = append(firstSeq, r)
		}
		if r, ok := c.Next(); ok {
			t.Fatalf("chase emitted extra hop %+v past its count", r)
		}

		// Determinism: same geometry, same walk.
		c2, _ := NewChaseIter(base, elems, elemBytes, hops, 3)
		for i, want := range firstSeq {
			got, ok := c2.Next()
			if !ok || got != want {
				t.Fatalf("replay diverged at hop %d: got %+v ok=%v want %+v", i, got, ok, want)
			}
		}

		// Batch parity: NextBatch emits the identical walk.
		c3, _ := NewChaseIter(base, elems, elemBytes, hops, 3)
		buf := make([]Request, hops)
		got := 0
		for got < hops {
			k := c3.NextBatch(buf[got:min(hops, got+17)])
			if k == 0 {
				break
			}
			got += k
		}
		if got != hops {
			t.Fatalf("batch walk emitted %d of %d hops", got, hops)
		}
		for i := range firstSeq {
			if buf[i] != firstSeq[i] {
				t.Fatalf("batch walk diverged at hop %d: got %+v want %+v", i, buf[i], firstSeq[i])
			}
		}
	})
}
