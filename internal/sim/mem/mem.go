// Package mem defines memory transactions and the access-pattern
// generators that device models replay against their memory systems.
//
// A kernel walking an array produces a stream of Requests. The walk order
// is the benchmark's "data access pattern" parameter: contiguous, fixed
// stride, or a row-major 2D array visited column-major (the pattern the
// paper uses for its strided experiments, where the stride grows with the
// array because rows get longer).
//
// Generators are pull iterators so device models can interleave several
// array streams (COPY reads one array while writing another; TRIAD reads
// two) without materializing billions of requests.
package mem

import (
	"fmt"
	"math"
	"strings"
)

// Op distinguishes reads from writes.
type Op uint8

// Request operations.
const (
	Read Op = iota
	Write
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Request is one memory transaction presented to a memory system model.
type Request struct {
	Addr   uint64 // byte address
	Size   uint32 // bytes
	Op     Op
	Stream uint8 // logical array stream the request belongs to
}

// End returns the first byte address past the request.
func (r Request) End() uint64 { return r.Addr + uint64(r.Size) }

// PatternKind enumerates supported walk orders.
type PatternKind uint8

// Walk orders.
const (
	// Contiguous visits elements in ascending address order.
	Contiguous PatternKind = iota
	// Strided visits every StrideElems-th element, wrapping through the
	// array in passes so every element is visited exactly once.
	Strided
	// ColMajor2D views the array as a row-major Rows x Cols matrix and
	// visits it column-major (stride of one row, Cols passes).
	ColMajor2D
)

// String names the pattern kind.
func (k PatternKind) String() string {
	switch k {
	case Contiguous:
		return "contiguous"
	case Strided:
		return "strided"
	case ColMajor2D:
		return "colmajor2d"
	default:
		return fmt.Sprintf("PatternKind(%d)", uint8(k))
	}
}

// ParsePatternKind resolves a pattern-kind name (case-insensitive).
func ParsePatternKind(s string) (PatternKind, error) {
	switch strings.ToLower(s) {
	case "contiguous", "contig":
		return Contiguous, nil
	case "strided", "stride":
		return Strided, nil
	case "colmajor2d", "colmajor":
		return ColMajor2D, nil
	default:
		return 0, fmt.Errorf("mem: unknown pattern kind %q (want contiguous|strided|colmajor2d)", s)
	}
}

// MarshalText encodes the pattern kind as its name, for the JSON wire
// format of the service layer.
func (k PatternKind) MarshalText() ([]byte, error) {
	if k > ColMajor2D {
		return nil, fmt.Errorf("mem: unknown pattern kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText decodes a pattern-kind name.
func (k *PatternKind) UnmarshalText(b []byte) error {
	v, err := ParsePatternKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Pattern describes a walk order over an array of elements.
type Pattern struct {
	Kind PatternKind `json:"kind"`
	// StrideElems is the element stride for Strided patterns; must be >= 1.
	StrideElems int `json:"stride_elems,omitempty"`
	// Rows, Cols give the matrix shape for ColMajor2D. Zero means derive a
	// near-square shape from the element count (Shape2D).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
}

// ContiguousPattern returns the contiguous walk.
func ContiguousPattern() Pattern { return Pattern{Kind: Contiguous} }

// StridedPattern returns a fixed-stride walk.
func StridedPattern(strideElems int) Pattern {
	return Pattern{Kind: Strided, StrideElems: strideElems}
}

// ColMajorPattern returns a column-major walk over an automatically shaped
// near-square matrix.
func ColMajorPattern() Pattern { return Pattern{Kind: ColMajor2D} }

// Validate checks the pattern against an element count.
func (p Pattern) Validate(elems int) error {
	if elems <= 0 {
		return fmt.Errorf("mem: element count %d must be positive", elems)
	}
	switch p.Kind {
	case Contiguous:
		return nil
	case Strided:
		if p.StrideElems < 1 {
			return fmt.Errorf("mem: stride %d must be >= 1", p.StrideElems)
		}
		return nil
	case ColMajor2D:
		rows, cols := p.shape(elems)
		if rows*cols != elems {
			return fmt.Errorf("mem: shape %dx%d does not cover %d elements", rows, cols, elems)
		}
		return nil
	default:
		return fmt.Errorf("mem: unknown pattern kind %d", p.Kind)
	}
}

// shape resolves the matrix shape for ColMajor2D.
func (p Pattern) shape(elems int) (rows, cols int) {
	if p.Rows > 0 && p.Cols > 0 {
		return p.Rows, p.Cols
	}
	return Shape2D(elems)
}

// Shape2D derives a near-square row-major shape for n elements: the column
// count is the largest power of two not exceeding sqrt(n) that divides n.
// For power-of-two n this gives cols = 2^floor(log2(n)/2).
func Shape2D(n int) (rows, cols int) {
	if n <= 0 {
		return 0, 0
	}
	c := 1
	for c*c <= n/4 {
		c *= 2
	}
	// Shrink until it divides n (always terminates at c=1).
	for n%c != 0 {
		c /= 2
	}
	return n / c, c
}

// EffectiveStrideElems reports the element distance between consecutive
// accesses of the pattern over n elements: 1 for contiguous, StrideElems
// for strided, and the row length (cols) for column-major.
func (p Pattern) EffectiveStrideElems(n int) int {
	switch p.Kind {
	case Strided:
		if p.StrideElems < 1 {
			return 1
		}
		return p.StrideElems
	case ColMajor2D:
		_, cols := p.shape(n)
		return cols
	default:
		return 1
	}
}

// Iter generates the request stream for one array walked with pattern p.
//
// base is the array's first byte address, elems the number of elements,
// elemBytes the access granularity (word size x vector width), op the
// request direction and stream the logical stream tag. Every element is
// visited exactly once.
type Iter struct {
	pattern   Pattern
	base      uint64
	elems     int
	elemBytes uint32
	op        Op
	stream    uint8

	// walk state
	emitted int
	idx     int // current element index
	lane    int // pass number for strided / column number for colmajor
	rows    int
	cols    int
}

// NewIter builds an iterator after validating the pattern.
func NewIter(p Pattern, base uint64, elems int, elemBytes uint32, op Op, stream uint8) (*Iter, error) {
	if err := p.Validate(elems); err != nil {
		return nil, err
	}
	if elemBytes == 0 {
		return nil, fmt.Errorf("mem: element size must be positive")
	}
	it := &Iter{
		pattern:   p,
		base:      base,
		elems:     elems,
		elemBytes: elemBytes,
		op:        op,
		stream:    stream,
	}
	if p.Kind == ColMajor2D {
		it.rows, it.cols = p.shape(elems)
	}
	return it, nil
}

// Remaining returns the number of requests not yet emitted.
func (it *Iter) Remaining() int { return it.elems - it.emitted }

// Total returns the total number of requests the iterator will emit.
func (it *Iter) Total() int { return it.elems }

// Next emits the next request. ok is false once the walk is complete.
func (it *Iter) Next() (r Request, ok bool) {
	if it.emitted >= it.elems {
		return Request{}, false
	}
	var index int
	switch it.pattern.Kind {
	case Contiguous:
		index = it.emitted
	case Strided:
		stride := it.pattern.StrideElems
		index = it.idx
		// Advance: next element in this pass, or start the next pass.
		it.idx += stride
		if it.idx >= it.elems {
			it.lane++
			it.idx = it.lane
			// lane can reach stride only when the walk is complete.
		}
	case ColMajor2D:
		index = it.idx*it.cols + it.lane
		it.idx++ // next row
		if it.idx >= it.rows {
			it.idx = 0
			it.lane++ // next column
		}
	}
	it.emitted++
	return Request{
		Addr:   it.base + uint64(index)*uint64(it.elemBytes),
		Size:   it.elemBytes,
		Op:     it.op,
		Stream: it.stream,
	}, true
}

// Reset rewinds the iterator to the start of the walk.
func (it *Iter) Reset() {
	it.emitted, it.idx, it.lane = 0, 0, 0
}

// Source is the pull interface shared by iterators and combinators.
type Source interface {
	Next() (Request, bool)
	Remaining() int
}

// Interleave produces requests from several sources round-robin, one from
// each per turn, skipping exhausted sources. It models a kernel iteration
// touching each of its array streams once per loop trip (e.g. TRIAD reads
// b[i], reads c[i], writes a[i]).
type Interleave struct {
	srcs []Source
	next int

	// Batch state, created on the first NextBatch call: per-source
	// prefetch buffers so round-robin emission reads arrays instead of
	// making an interface call per request. A source whose refill comes
	// back empty is permanently done (the Source contract: once Next
	// reports false it keeps reporting false).
	bufs [][]Request
	pos  []int
	lens []int
	done []bool
}

// interleaveBatch is the per-source prefetch depth for batched pulls.
const interleaveBatch = 64

// NewInterleave builds a round-robin combinator over srcs.
func NewInterleave(srcs ...Source) *Interleave {
	return &Interleave{srcs: srcs}
}

// Remaining sums the remaining requests over all sources, plus anything
// already prefetched into the batch buffers.
func (in *Interleave) Remaining() int {
	n := 0
	for _, s := range in.srcs {
		n += s.Remaining()
	}
	for i := range in.bufs {
		n += in.lens[i] - in.pos[i]
	}
	return n
}

// Next emits from the next non-exhausted source in round-robin order.
func (in *Interleave) Next() (Request, bool) {
	if in.bufs != nil {
		// Batch mode was engaged; stay on the buffered path so already
		// prefetched requests keep their place in the rotation.
		var one [1]Request
		if in.NextBatch(one[:]) == 1 {
			return one[0], true
		}
		return Request{}, false
	}
	for tries := 0; tries < len(in.srcs); tries++ {
		s := in.srcs[in.next]
		in.next = (in.next + 1) % len(in.srcs)
		if r, ok := s.Next(); ok {
			return r, ok
		}
	}
	return Request{}, false
}

// NextBatch bulk-emits the round-robin stream (Batcher). The sequence is
// exactly what repeated Next calls produce; sources are merely pulled a
// batch at a time.
func (in *Interleave) NextBatch(dst []Request) int {
	if in.bufs == nil {
		in.bufs = make([][]Request, len(in.srcs))
		for i := range in.bufs {
			in.bufs[i] = make([]Request, interleaveBatch)
		}
		in.pos = make([]int, len(in.srcs))
		in.lens = make([]int, len(in.srcs))
		in.done = make([]bool, len(in.srcs))
	}
	n := 0
	for n < len(dst) {
		emitted := false
		for tries := 0; tries < len(in.srcs); tries++ {
			i := in.next
			if in.next++; in.next == len(in.srcs) {
				in.next = 0
			}
			if in.done[i] {
				continue
			}
			if in.pos[i] >= in.lens[i] {
				k := Fill(in.srcs[i], in.bufs[i])
				in.pos[i], in.lens[i] = 0, k
				if k == 0 {
					in.done[i] = true
					continue
				}
			}
			dst[n] = in.bufs[i][in.pos[i]]
			in.pos[i]++
			n++
			emitted = true
			break
		}
		if !emitted {
			break
		}
	}
	return n
}

// Coalescer merges physically consecutive same-op same-stream requests
// into transactions of up to MaxBytes. It models burst-coalescing
// load/store units (AOCL LSUs, GPU warp coalescers): a contiguous walk
// turns into full-width bursts, a large-stride walk does not coalesce at
// all.
type Coalescer struct {
	src      Source
	maxBytes uint32

	pending  Request
	havePend bool
	done     bool

	// Upstream prefetch buffer, created on the first NextBatch call; the
	// merge loop then runs over an array instead of an interface call per
	// upstream request. Next drains it first so mixed use stays exact.
	buf    []Request
	bufPos int
	bufLen int
}

// coalesceBatch is the upstream prefetch depth for batched pulls.
const coalesceBatch = 128

// NewCoalescer wraps src with a coalescing window of maxBytes.
func NewCoalescer(src Source, maxBytes uint32) *Coalescer {
	if maxBytes == 0 {
		maxBytes = 1
	}
	return &Coalescer{src: src, maxBytes: maxBytes}
}

// Remaining is an upper bound: the source's remaining plus any pending
// merged transaction and prefetched upstream requests.
func (c *Coalescer) Remaining() int {
	n := c.src.Remaining() + (c.bufLen - c.bufPos)
	if c.havePend {
		n++
	}
	return n
}

// pull takes the next upstream request, draining the prefetch buffer
// before going back to the source.
func (c *Coalescer) pull() (Request, bool) {
	if c.bufPos < c.bufLen {
		r := c.buf[c.bufPos]
		c.bufPos++
		return r, true
	}
	return c.src.Next()
}

// NextBatch bulk-emits merged transactions (Batcher), identical in
// sequence to repeated Next calls.
func (c *Coalescer) NextBatch(dst []Request) int {
	if c.done && !c.havePend {
		return 0
	}
	if it, ok := c.src.(*Iter); ok && it.pattern.Kind == Contiguous {
		if n, handled := c.contigBatch(it, dst); handled {
			return n
		}
	}
	if c.buf == nil {
		c.buf = make([]Request, coalesceBatch)
	}
	n := 0
	pending, have := c.pending, c.havePend
	for n < len(dst) {
		if c.bufPos >= c.bufLen {
			if c.done {
				break
			}
			c.bufLen = Fill(c.src, c.buf)
			c.bufPos = 0
			if c.bufLen == 0 {
				c.done = true
				break
			}
		}
		maxBytes := c.maxBytes
		for c.bufPos < c.bufLen && n < len(dst) {
			r := c.buf[c.bufPos]
			c.bufPos++
			if !have {
				pending, have = r, true
				continue
			}
			if pending.Op == r.Op &&
				pending.Stream == r.Stream &&
				pending.End() == r.Addr &&
				pending.Size+r.Size <= maxBytes {
				pending.Size += r.Size
				continue
			}
			dst[n] = pending
			n++
			pending = r
		}
	}
	if c.done && have && n < len(dst) {
		dst[n] = pending
		n++
		have = false
	}
	c.pending, c.havePend = pending, have
	return n
}

// contigBatch is the fast path for a contiguous iterator upstream: the
// merge of elemBytes-sized requests into maxBytes windows is pure
// address arithmetic, so transactions are synthesized directly — one
// loop iteration per emitted transaction instead of one per element.
// The emitted sequence (including the held-back pending tail, flushed
// only once the walk is known to be complete) is identical to the
// generic path's. Returns handled=false when the state doesn't fit the
// fast path (buffered slow-path input, a foreign pending transaction, or
// a window smaller than one element).
func (c *Coalescer) contigBatch(it *Iter, dst []Request) (int, bool) {
	per := int(c.maxBytes / it.elemBytes)
	if per < 1 || c.bufPos < c.bufLen || c.done {
		return 0, false
	}
	pendElems := 0
	if c.havePend {
		if c.pending.Op != it.op || c.pending.Stream != it.stream ||
			c.pending.Size%it.elemBytes != 0 ||
			c.pending.End() != it.base+uint64(it.emitted)*uint64(it.elemBytes) {
			return 0, false
		}
		pendElems = int(c.pending.Size / it.elemBytes)
		if pendElems >= per {
			return 0, false
		}
	}
	eb := uint64(it.elemBytes)
	n := 0
	for n < len(dst) {
		rem := it.elems - it.emitted
		if rem == 0 {
			// Source dry: flush the tail exactly as the generic path does.
			c.done = true
			if c.havePend {
				c.havePend = false
				dst[n] = c.pending
				n++
			}
			return n, true
		}
		take := per - pendElems
		if take > rem {
			take = rem
		}
		if pendElems == 0 {
			c.pending = Request{
				Addr:   it.base + uint64(it.emitted)*eb,
				Size:   uint32(take) * it.elemBytes,
				Op:     it.op,
				Stream: it.stream,
			}
			c.havePend = true
		} else {
			c.pending.Size += uint32(take) * it.elemBytes
		}
		pendElems += take
		it.emitted += take
		if pendElems == per && it.emitted < it.elems {
			// Full window with a successor that cannot merge: emit.
			dst[n] = c.pending
			n++
			c.havePend = false
			pendElems = 0
		}
	}
	return n, true
}

// Next emits the next (possibly merged) transaction.
func (c *Coalescer) Next() (Request, bool) {
	if c.done && !c.havePend {
		return Request{}, false
	}
	for {
		r, ok := c.pull()
		if !ok {
			c.done = true
			if c.havePend {
				c.havePend = false
				return c.pending, true
			}
			return Request{}, false
		}
		if !c.havePend {
			c.pending, c.havePend = r, true
			continue
		}
		mergeable := c.pending.Op == r.Op &&
			c.pending.Stream == r.Stream &&
			c.pending.End() == r.Addr &&
			c.pending.Size+r.Size <= c.maxBytes
		if mergeable {
			c.pending.Size += r.Size
			continue
		}
		out := c.pending
		c.pending = r
		return out, true
	}
}

// Limit yields at most n requests from src, for bounded (sampled)
// simulation windows.
type Limit struct {
	src  Source
	left int
}

// NewLimit wraps src with a request budget of n.
func NewLimit(src Source, n int) *Limit {
	if n < 0 {
		n = 0
	}
	return &Limit{src: src, left: n}
}

// Remaining returns the smaller of the budget and the source's remaining.
func (l *Limit) Remaining() int {
	if r := l.src.Remaining(); r < l.left {
		return r
	}
	return l.left
}

// Next yields the next request while the budget lasts.
func (l *Limit) Next() (Request, bool) {
	if l.left <= 0 {
		return Request{}, false
	}
	r, ok := l.src.Next()
	if ok {
		l.left--
	}
	return r, ok
}

// ChaseIter is the loaded-latency probe's request generator: a
// pointer-chase walk over an array, visiting pseudo-random elements in a
// deterministic sequence. Each request models one hop of the chase —
// the address of hop n+1 depends on the data returned by hop n, so a
// memory model servicing the stream must serialize the hops (the dram
// package's ServiceLoaded does, via its probe stream tag). That
// serialization is what turns the request stream into a latency
// measurement instead of a bandwidth one.
//
// The address sequence comes from a 64-bit LCG rather than from real
// chain data: the simulator times addresses, not values, and the LCG
// gives the scattered, cache- and row-buffer-hostile walk a properly
// initialized chase array would.
type ChaseIter struct {
	base      uint64
	elems     int
	elemBytes uint32
	stream    uint8

	count   int
	emitted int
	state   uint64
	mask    uint64 // elems-1 when elems is a power of two (the common case), else 0
}

// chase LCG constants (Knuth's MMIX).
const (
	chaseMul = 6364136223846793005
	chaseInc = 1442695040888963407
)

// NewChaseIter builds a chase of count hops over an array of elems
// elements at base, tagging every request with stream.
func NewChaseIter(base uint64, elems int, elemBytes uint32, count int, stream uint8) (*ChaseIter, error) {
	if elems <= 0 {
		return nil, fmt.Errorf("mem: chase element count %d must be positive", elems)
	}
	if elemBytes == 0 {
		return nil, fmt.Errorf("mem: chase element size must be positive")
	}
	if count < 0 {
		count = 0
	}
	c := &ChaseIter{
		base:      base,
		elems:     elems,
		elemBytes: elemBytes,
		stream:    stream,
		count:     count,
		state:     uint64(elems) ^ chaseInc,
	}
	if elems > 1 && elems&(elems-1) == 0 {
		c.mask = uint64(elems) - 1
	}
	return c, nil
}

// Reset rewinds the chase to its first hop; the replayed walk is
// identical to a freshly built one.
func (c *ChaseIter) Reset() {
	c.emitted = 0
	c.state = uint64(c.elems) ^ chaseInc
}

// Remaining returns the hops not yet emitted.
func (c *ChaseIter) Remaining() int { return c.count - c.emitted }

// Next emits the next hop of the chase.
func (c *ChaseIter) Next() (Request, bool) {
	if c.emitted >= c.count {
		return Request{}, false
	}
	c.state = c.state*chaseMul + chaseInc
	var idx int
	if c.mask != 0 {
		idx = int((c.state >> 33) & c.mask)
	} else {
		idx = int((c.state >> 33) % uint64(c.elems))
	}
	c.emitted++
	return Request{
		Addr:   c.base + uint64(idx)*uint64(c.elemBytes),
		Size:   c.elemBytes,
		Op:     Read,
		Stream: c.stream,
	}, true
}

// Mix emits requests from a read source and a write source in a fixed
// ratio, deterministically (error diffusion, no RNG): readFrac of the
// emitted requests are reads. It is the background-traffic generator of
// the bandwidth–latency surface: the read/write axis of the surface is
// exactly this ratio.
//
// Requests are scheduled in same-direction groups of group requests
// (default 16), the way a write-buffering controller drains its queues:
// strict per-request alternation would charge a bus turnaround on every
// transaction, which no real memory system pays. The read share of each
// group error-diffuses so the global ratio is exact over time. When one
// side runs dry the other continues alone.
type Mix struct {
	reads, writes Source
	readFrac      float64
	group         int

	acc       float64 // diffused read quota carried between groups
	readLeft  int     // reads left in the current group
	writeLeft int     // writes left in the current group
}

// DefaultMixGroup is the same-direction scheduling run length.
const DefaultMixGroup = 16

// NewMix builds a ratio mixer; readFrac is clamped to [0, 1] and
// group <= 0 means DefaultMixGroup.
func NewMix(reads, writes Source, readFrac float64, group int) *Mix {
	if readFrac < 0 {
		readFrac = 0
	}
	if readFrac > 1 {
		readFrac = 1
	}
	if group <= 0 {
		group = DefaultMixGroup
	}
	return &Mix{reads: reads, writes: writes, readFrac: readFrac, group: group}
}

// Remaining sums both sides, saturating instead of overflowing when a
// side reports an effectively infinite count (a wrapping walk).
func (m *Mix) Remaining() int {
	r, w := m.reads.Remaining(), m.writes.Remaining()
	if sum := r + w; sum >= r && sum >= w {
		return sum
	}
	return math.MaxInt
}

// Reset restores the mixer to its initial schedule and rewinds both
// sides, so the replayed mix is identical to a freshly built one.
// Sides that cannot rewind are left untouched.
func (m *Mix) Reset() {
	m.acc, m.readLeft, m.writeLeft = 0, 0, 0
	if r, ok := m.reads.(interface{ Reset() }); ok {
		r.Reset()
	}
	if w, ok := m.writes.(interface{ Reset() }); ok {
		w.Reset()
	}
}

// Next emits the next request of the scheduled direction.
func (m *Mix) Next() (Request, bool) {
	if m.readLeft == 0 && m.writeLeft == 0 {
		// Plan the next group: diffuse the fractional read quota.
		m.acc += m.readFrac * float64(m.group)
		m.readLeft = int(m.acc)
		if m.readLeft > m.group {
			m.readLeft = m.group
		}
		m.acc -= float64(m.readLeft)
		m.writeLeft = m.group - m.readLeft
	}
	if m.readLeft > 0 {
		if r, ok := m.reads.Next(); ok {
			m.readLeft--
			return r, ok
		}
		m.readLeft = 0
		return m.writes.Next()
	}
	if r, ok := m.writes.Next(); ok {
		m.writeLeft--
		return r, ok
	}
	m.writeLeft = 0
	return m.reads.Next()
}

// TotalBytes drains a source, returning the transaction count and byte sum.
// It is a test and sizing helper; draining a large source is O(elements).
func TotalBytes(s Source) (n int, bytes uint64) {
	for {
		r, ok := s.Next()
		if !ok {
			return n, bytes
		}
		n++
		bytes += uint64(r.Size)
	}
}

// Align rounds addr down to a multiple of unit (unit must be a power of 2).
func Align(addr uint64, unit uint32) uint64 {
	return addr &^ (uint64(unit) - 1)
}

// LinesTouched returns how many aligned lines of lineBytes a request
// spans. It is the cache/DRAM granularity helper.
func LinesTouched(r Request, lineBytes uint32) int {
	if r.Size == 0 {
		return 0
	}
	first := Align(r.Addr, lineBytes)
	last := Align(r.Addr+uint64(r.Size)-1, lineBytes)
	return int((last-first)/uint64(lineBytes)) + 1
}

// CheckPow2 reports whether v is a positive power of two.
func CheckPow2(v uint32) bool {
	return v != 0 && v&(v-1) == 0
}

// Log2 returns floor(log2(v)) for v >= 1.
func Log2(v uint64) uint {
	return uint(math.Ilogb(float64(v)))
}
