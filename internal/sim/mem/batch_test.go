package mem

// Batch-vs-Next parity: every Batcher must emit exactly the sequence its
// Next method produces, across the combinator chains the device models
// actually build (interleave over coalescers over iterators, limits,
// mixes, chases). The dst sizes deliberately include awkward chunk
// lengths so batch boundaries land mid-merge and mid-rotation.

import (
	"math/rand"
	"testing"
)

// drainNext pulls src dry via Next.
func drainNext(s Source) []Request {
	var out []Request
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// drainBatch pulls src dry via Fill with varying chunk sizes.
func drainBatch(s Source, rng *rand.Rand) []Request {
	var out []Request
	buf := make([]Request, 97)
	for {
		dst := buf[:1+rng.Intn(len(buf))]
		n := Fill(s, dst)
		out = append(out, dst[:n]...)
		if n < len(dst) {
			return out
		}
	}
}

// chainBuilders returns named constructors producing two identical
// fresh sources per call, covering every Batcher implementation.
func chainBuilders(rng *rand.Rand) map[string]func() Source {
	elems := 64 + rng.Intn(1500)
	stride := 1 + rng.Intn(24)
	mixFrac := rng.Float64()
	mixGroup := 1 + rng.Intn(32)
	chaseHops := 200 + rng.Intn(800)
	iter := func(p Pattern, base uint64, eb uint32, op Op, st uint8) Source {
		it, err := NewIter(p, base, elems, eb, op, st)
		if err != nil {
			panic(err)
		}
		return it
	}
	return map[string]func() Source{
		"iter-contig": func() Source {
			return iter(ContiguousPattern(), 0, 8, Read, 1)
		},
		"iter-strided": func() Source {
			return iter(StridedPattern(stride), 0, 4, Write, 0)
		},
		"iter-colmajor": func() Source {
			return iter(ColMajorPattern(), 1<<20, 8, Read, 2)
		},
		"coalescer-contig": func() Source {
			return NewCoalescer(iter(ContiguousPattern(), 0, 4, Read, 1), 64)
		},
		"coalescer-strided": func() Source {
			return NewCoalescer(iter(StridedPattern(stride), 0, 4, Read, 1), 64)
		},
		"interleave-coalesced": func() Source {
			return NewInterleave(
				NewCoalescer(iter(ContiguousPattern(), 1<<31, 8, Read, 1), 64),
				NewCoalescer(iter(ContiguousPattern(), 2<<31, 8, Read, 2), 64),
				NewCoalescer(iter(ContiguousPattern(), 0, 8, Write, 0), 64),
			)
		},
		"interleave-uneven": func() Source {
			short, err := NewIter(ContiguousPattern(), 0, elems/3+1, 8, Read, 1)
			if err != nil {
				panic(err)
			}
			return NewInterleave(short, iter(StridedPattern(stride), 1<<31, 8, Write, 0))
		},
		"limit-interleave": func() Source {
			return NewLimit(NewInterleave(
				iter(ContiguousPattern(), 0, 8, Read, 1),
				iter(ContiguousPattern(), 1<<31, 8, Write, 0),
			), elems/2+3)
		},
		"mix": func() Source {
			r := iter(ContiguousPattern(), 0, 8, Read, 1)
			w := iter(ContiguousPattern(), 1<<31, 8, Write, 0)
			return NewMix(r, w, mixFrac, mixGroup)
		},
		"chase": func() Source {
			c, err := NewChaseIter(3<<31, elems, 64, chaseHops, 3)
			if err != nil {
				panic(err)
			}
			return c
		},
	}
}

func TestNextBatchMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		for name, build := range chainBuilders(rng) {
			want := drainNext(build())
			got := drainBatch(build(), rng)
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: batch drained %d requests, Next drained %d",
					trial, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s: request %d diverged: batch %+v next %+v",
						trial, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMixedNextAndBatch interleaves single pulls with batch pulls on one
// source; the combined stream must still match the pure-Next stream.
func TestMixedNextAndBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		for name, build := range chainBuilders(rng) {
			want := drainNext(build())
			s := build()
			var got []Request
			buf := make([]Request, 41)
			for {
				if rng.Intn(2) == 0 {
					r, ok := s.Next()
					if !ok {
						break
					}
					got = append(got, r)
					continue
				}
				dst := buf[:1+rng.Intn(len(buf))]
				n := Fill(s, dst)
				got = append(got, dst[:n]...)
				if n < len(dst) {
					break
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: mixed drained %d requests, Next drained %d",
					trial, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s: request %d diverged: mixed %+v next %+v",
						trial, name, i, got[i], want[i])
				}
			}
		}
	}
}
