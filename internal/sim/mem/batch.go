package mem

// Batch generation: the allocation-free fast path the simulator hot
// loop drains requests through. A Source's Next is one interface call
// plus one walk-state switch per request; on streams of millions of
// requests that dispatch dominates. Batcher lets a generator fill a
// caller-owned arena slice with a single call, with the per-kind walk
// loop monomorphized, and Fill routes through it when available.
//
// Every NextBatch must emit exactly the sequence repeated Next calls
// would: the two paths are interchangeable mid-stream and the parity
// tests hold each implementation to that.

// Batcher is the optional bulk-generation extension of Source.
type Batcher interface {
	Source
	// NextBatch fills dst from the stream and returns the count filled.
	// A short count (< len(dst)) means the stream is exhausted for now,
	// exactly as Next returning ok == false.
	NextBatch(dst []Request) int
}

// Fill pulls up to len(dst) requests from s, using the bulk path when s
// provides one. A short count means the source is exhausted.
func Fill(s Source, dst []Request) int {
	if b, ok := s.(Batcher); ok {
		return b.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		r, ok := s.Next()
		if !ok {
			break
		}
		dst[n] = r
		n++
	}
	return n
}

// NextBatch bulk-emits the walk with one monomorphic loop per pattern
// kind (see Batcher).
func (it *Iter) NextBatch(dst []Request) int {
	n := 0
	switch it.pattern.Kind {
	case Contiguous:
		eb := uint64(it.elemBytes)
		for n < len(dst) && it.emitted < it.elems {
			dst[n] = Request{
				Addr:   it.base + uint64(it.emitted)*eb,
				Size:   it.elemBytes,
				Op:     it.op,
				Stream: it.stream,
			}
			it.emitted++
			n++
		}
	case Strided:
		eb := uint64(it.elemBytes)
		stride := it.pattern.StrideElems
		for n < len(dst) && it.emitted < it.elems {
			dst[n] = Request{
				Addr:   it.base + uint64(it.idx)*eb,
				Size:   it.elemBytes,
				Op:     it.op,
				Stream: it.stream,
			}
			it.idx += stride
			if it.idx >= it.elems {
				it.lane++
				it.idx = it.lane
			}
			it.emitted++
			n++
		}
	case ColMajor2D:
		eb := uint64(it.elemBytes)
		for n < len(dst) && it.emitted < it.elems {
			dst[n] = Request{
				Addr:   it.base + uint64(it.idx*it.cols+it.lane)*eb,
				Size:   it.elemBytes,
				Op:     it.op,
				Stream: it.stream,
			}
			it.idx++
			if it.idx >= it.rows {
				it.idx = 0
				it.lane++
			}
			it.emitted++
			n++
		}
	}
	return n
}

// NextBatch bulk-emits chase hops: one LCG step per request, no
// dispatch (see Batcher).
func (c *ChaseIter) NextBatch(dst []Request) int {
	n := 0
	state, elems, eb := c.state, uint64(c.elems), uint64(c.elemBytes)
	mask := c.mask
	for n < len(dst) && c.emitted < c.count {
		state = state*chaseMul + chaseInc
		var idx uint64
		if mask != 0 {
			idx = (state >> 33) & mask
		} else {
			idx = (state >> 33) % elems
		}
		dst[n] = Request{
			Addr:   c.base + idx*eb,
			Size:   c.elemBytes,
			Op:     Read,
			Stream: c.stream,
		}
		c.emitted++
		n++
	}
	c.state = state
	return n
}

// NextBatch bulk-emits within the budget (see Batcher).
func (l *Limit) NextBatch(dst []Request) int {
	if l.left < len(dst) {
		dst = dst[:l.left]
	}
	n := Fill(l.src, dst)
	l.left -= n
	return n
}

// NextBatch bulk-emits the scheduled same-direction groups: each group
// run is one Fill into the destination instead of per-request dispatch.
// The dry-side fallbacks reproduce Next's exact behaviour, including
// its quirk of not charging the substitute request against the
// stand-in side's group quota (see Batcher).
func (m *Mix) NextBatch(dst []Request) int {
	n := 0
	for n < len(dst) {
		if m.readLeft == 0 && m.writeLeft == 0 {
			m.acc += m.readFrac * float64(m.group)
			m.readLeft = int(m.acc)
			if m.readLeft > m.group {
				m.readLeft = m.group
			}
			m.acc -= float64(m.readLeft)
			m.writeLeft = m.group - m.readLeft
		}
		if m.readLeft > 0 {
			want := m.readLeft
			if room := len(dst) - n; want > room {
				want = room
			}
			got := Fill(m.reads, dst[n:n+want])
			n += got
			m.readLeft -= got
			if got < want {
				m.readLeft = 0
				r, ok := m.writes.Next()
				if !ok {
					return n
				}
				dst[n] = r
				n++
			}
			continue
		}
		want := m.writeLeft
		if room := len(dst) - n; want > room {
			want = room
		}
		got := Fill(m.writes, dst[n:n+want])
		n += got
		m.writeLeft -= got
		if got < want {
			m.writeLeft = 0
			r, ok := m.reads.Next()
			if !ok {
				return n
			}
			dst[n] = r
			n++
		}
	}
	return n
}
