package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceHeader carries a job's trace ID across HTTP hops: client →
// gateway, coordinator → worker shard. The service middleware echoes
// it on every response and mints one when the request has none, so a
// fleet sweep is reconstructable end to end from logs and events.
const TraceHeader = "X-Mpstream-Trace"

// maxTraceLen bounds accepted trace IDs so a hostile header cannot
// bloat every event record and log line.
const maxTraceLen = 64

type traceKey struct{}

// traceFallback distinguishes IDs minted if crypto/rand ever fails.
var traceFallback atomic.Uint64

// NewTraceID mints a 16-byte random hex trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("fallback-%016x", traceFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithTrace attaches a trace ID to ctx; an empty id returns ctx
// unchanged.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID reads the trace ID from ctx ("" when absent).
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// SanitizeTraceID validates an externally supplied trace ID: bounded
// length, restricted to [0-9A-Za-z._-]. Anything else returns "" and
// the caller mints a fresh ID instead of propagating hostile input
// into logs and headers.
func SanitizeTraceID(id string) string {
	if id == "" || len(id) > maxTraceLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}
