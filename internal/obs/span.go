package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing.
//
// A Span is one timed step of a job: queue wait, a sweep point, a
// surface rung, a shard attempt on a remote worker. Spans share the
// job's trace ID and form a tree through parent span IDs; the tree
// crosses process boundaries because the coordinator stamps its
// current span ID onto outgoing shard requests (SpanHeader) and
// workers ship their recorded spans back piggybacked on the job view,
// so `GET /v1/jobs/{id}/trace` can render one merged timeline.
//
// Like the metrics instruments, everything here is nil-safe: a nil
// *Recorder (telemetry disabled) makes StartSpan and every ActiveSpan
// method a no-op, so instrumented code paths never branch on whether
// tracing is on.

// SpanHeader carries the parent span ID across HTTP hops
// (coordinator → worker), linking the worker's job spans under the
// coordinator's shard span. Validated like trace IDs.
const SpanHeader = "X-Mpstream-Span"

// DefaultSpanCapacity bounds the per-process span ring when no
// explicit capacity is configured.
const DefaultSpanCapacity = 16384

// Span is one recorded timed step. Start is wall-clock (UTC) for
// cross-process alignment; the duration is measured on the monotonic
// clock of the recording process, so individual spans never go
// negative even when the wall clock steps.
type Span struct {
	Trace    string            `json:"trace"`
	ID       string            `json:"id"`
	Parent   string            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Origin   string            `json:"origin,omitempty"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// End returns the span's wall-clock end time.
func (s Span) End() time.Time { return s.Start.Add(s.Duration) }

// spanSeed randomizes span IDs across processes; the per-span cost is
// one atomic increment, not a crypto/rand read.
var spanSeed = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var spanSeq atomic.Uint64

// newSpanID mints a process-unique span ID. Multiplying the sequence
// by an odd constant is a bijection mod 2^64, so IDs never collide
// within a process; the random seed keeps processes apart.
func newSpanID() string {
	return fmt.Sprintf("%016x", spanSeed^(spanSeq.Add(1)*0x9e3779b97f4a7c15))
}

// SpanStore is a bounded ring of finished spans. When full, the
// oldest span is overwritten — tracing is a diagnostic window, not an
// archive, and the bound keeps a busy fleet from growing memory
// without limit.
type SpanStore struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	drops uint64
}

// NewSpanStore builds a ring holding at most capacity spans
// (DefaultSpanCapacity when capacity <= 0).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanStore{buf: make([]Span, 0, capacity)}
}

func (s *SpanStore) add(sp Span) {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, sp)
	} else {
		s.buf[s.next] = sp
		s.full = true
		s.drops++
	}
	s.next = (s.next + 1) % cap(s.buf)
	s.mu.Unlock()
}

// Trace returns every stored span with the given trace ID, in
// recording order.
func (s *SpanStore) Trace(trace string) []Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Span
	scan := func(sp Span) {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	if s.full {
		for _, sp := range s.buf[s.next:] {
			scan(sp)
		}
		for _, sp := range s.buf[:s.next] {
			scan(sp)
		}
	} else {
		for _, sp := range s.buf {
			scan(sp)
		}
	}
	return out
}

// Len reports the number of spans currently held.
func (s *SpanStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Drops reports how many spans the ring has overwritten since
// creation — nonzero means Trace results are truncated.
func (s *SpanStore) Drops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Recorder hands spans to a store, stamping each with the process's
// origin label (worker ID or "coordinator"). A nil Recorder is valid
// and records nothing.
type Recorder struct {
	store  *SpanStore
	origin string
}

// NewRecorder builds a recorder with its own bounded store.
func NewRecorder(origin string, capacity int) *Recorder {
	return &Recorder{store: NewSpanStore(capacity), origin: origin}
}

// Origin returns the recorder's origin label ("" on nil).
func (r *Recorder) Origin() string {
	if r == nil {
		return ""
	}
	return r.origin
}

// Ingest stores externally recorded spans (a worker's, shipped back
// on a shard result) verbatim — their origin identifies the worker.
func (r *Recorder) Ingest(spans ...Span) {
	if r == nil {
		return
	}
	for _, sp := range spans {
		if sp.Trace == "" || sp.ID == "" {
			continue
		}
		r.store.add(sp)
	}
}

// StoreLen reports the recorder's ring occupancy (0 on nil).
func (r *Recorder) StoreLen() int {
	if r == nil {
		return 0
	}
	return r.store.Len()
}

// StoreDrops reports how many spans the recorder's ring has
// overwritten (0 on nil).
func (r *Recorder) StoreDrops() uint64 {
	if r == nil {
		return 0
	}
	return r.store.Drops()
}

// Spans returns all recorded spans for a trace.
func (r *Recorder) Spans(trace string) []Span {
	if r == nil || trace == "" {
		return nil
	}
	return r.store.Trace(trace)
}

type (
	recorderKey   struct{}
	spanParentKey struct{}
)

// WithRecorder attaches a recorder to ctx so instrumented layers
// (dse, surface, cluster) can record spans without signature changes.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// RecorderFrom reads the recorder from ctx (nil when absent).
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

// WithSpanParent sets the span ID that new child spans — and
// downstream HTTP hops via SpanHeader — should parent to.
func WithSpanParent(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, spanParentKey{}, id)
}

// SpanParent reads the current parent span ID from ctx ("" if none).
func SpanParent(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(spanParentKey{}).(string)
	return id
}

// ActiveSpan is an in-flight span; End records it. All methods are
// nil-safe so callers never branch on whether tracing is enabled.
type ActiveSpan struct {
	rec   *Recorder
	span  Span
	mu    sync.Mutex
	ended bool
}

// StartSpan begins a span under the recorder and parent carried by
// ctx. The returned context carries the new span as parent for
// children; when ctx has no recorder the span is nil (no-op) and ctx
// is returned unchanged. attrs are alternating key/value pairs.
func StartSpan(ctx context.Context, name string, attrs ...string) (context.Context, *ActiveSpan) {
	rec := RecorderFrom(ctx)
	if rec == nil {
		return ctx, nil
	}
	sp := &ActiveSpan{
		rec: rec,
		span: Span{
			Trace:  TraceID(ctx),
			ID:     newSpanID(),
			Parent: SpanParent(ctx),
			Name:   name,
			Origin: rec.origin,
			Start:  time.Now(),
		},
	}
	for i := 0; i+1 < len(attrs); i += 2 {
		sp.setAttr(attrs[i], attrs[i+1])
	}
	return WithSpanParent(ctx, sp.span.ID), sp
}

// ID returns the span's ID ("" on nil).
func (s *ActiveSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.span.ID
}

func (s *ActiveSpan) setAttr(k, v string) {
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[k] = v
}

// SetAttr annotates the span; a no-op after End and on nil.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.setAttr(k, v)
	}
	s.mu.Unlock()
}

// End stamps the duration (monotonic) and records the span.
// Idempotent: only the first call records.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.span.Duration = time.Since(s.span.Start)
	s.span.Start = s.span.Start.UTC()
	sp := s.span
	s.mu.Unlock()
	s.rec.store.add(sp)
}

// --- tree assembly -------------------------------------------------

// TraceNode is a span plus its children, sorted by start time.
type TraceNode struct {
	Span
	Children []*TraceNode `json:"children,omitempty"`
}

// Descendants filters spans to the subtree rooted at rootID: the root
// span itself (when present) plus every span whose parent chain
// reaches rootID. Spans whose chain dead-ends elsewhere are dropped,
// so one process-wide store can serve per-job trees.
func Descendants(spans []Span, rootID string) []Span {
	if rootID == "" {
		return spans
	}
	parent := make(map[string]string, len(spans))
	for _, sp := range spans {
		parent[sp.ID] = sp.Parent
	}
	memo := make(map[string]bool, len(spans))
	var reaches func(id string, depth int) bool
	reaches = func(id string, depth int) bool {
		if id == rootID {
			return true
		}
		if v, ok := memo[id]; ok {
			return v
		}
		if depth > len(spans)+1 { // cycle guard on hostile ingested spans
			return false
		}
		p, ok := parent[id]
		v := false
		if ok && p != "" {
			v = reaches(p, depth+1)
		} else if !ok {
			v = false
		}
		memo[id] = v
		return v
	}
	var out []Span
	for _, sp := range spans {
		if reaches(sp.ID, 0) {
			out = append(out, sp)
		}
	}
	return out
}

// BuildTree links spans into trees. Spans whose parent is absent from
// the set become roots (a still-running ancestor has not recorded
// yet). Roots and children sort by start time, ties by ID.
func BuildTree(spans []Span) []*TraceNode {
	nodes := make(map[string]*TraceNode, len(spans))
	order := make([]*TraceNode, 0, len(spans))
	for _, sp := range spans {
		if _, dup := nodes[sp.ID]; dup {
			continue
		}
		n := &TraceNode{Span: sp}
		nodes[sp.ID] = n
		order = append(order, n)
	}
	var roots []*TraceNode
	for _, n := range order {
		if p, ok := nodes[n.Parent]; ok && n.Parent != n.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range order {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*TraceNode) {
	sort.SliceStable(ns, func(i, j int) bool {
		if !ns[i].Start.Equal(ns[j].Start) {
			return ns[i].Start.Before(ns[j].Start)
		}
		return ns[i].ID < ns[j].ID
	})
}

// CriticalStep is one hop of a critical path (or the slowest-shard
// summary): a span reduced to name, origin, offset and duration.
type CriticalStep struct {
	Name     string            `json:"name"`
	Origin   string            `json:"origin,omitempty"`
	OffsetMS float64           `json:"offset_ms"`
	DurMS    float64           `json:"dur_ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

func toStep(n *TraceNode, t0 time.Time) CriticalStep {
	return CriticalStep{
		Name:     n.Name,
		Origin:   n.Origin,
		OffsetMS: float64(n.Start.Sub(t0)) / float64(time.Millisecond),
		DurMS:    float64(n.Duration) / float64(time.Millisecond),
		Attrs:    n.Attrs,
	}
}

// CriticalPath walks from root to leaf, at each level descending into
// the child whose end time is latest — the chain of steps that bound
// the job's wall clock.
func CriticalPath(root *TraceNode) []CriticalStep {
	if root == nil {
		return nil
	}
	t0 := root.Start
	var path []CriticalStep
	n := root
	for steps := 0; n != nil && steps <= 1<<16; steps++ {
		path = append(path, toStep(n, t0))
		var last *TraceNode
		for _, c := range n.Children {
			if last == nil || c.Span.End().After(last.Span.End()) {
				last = c
			}
		}
		n = last
	}
	return path
}

// TraceSummary is the compact timing digest attached to a finished
// job view: wall/queue/run split, critical path, slowest shard.
type TraceSummary struct {
	WallMS       float64        `json:"wall_ms"`
	QueueMS      float64        `json:"queue_ms,omitempty"`
	RunMS        float64        `json:"run_ms,omitempty"`
	Spans        int            `json:"spans"`
	CriticalPath []CriticalStep `json:"critical_path,omitempty"`
	SlowestShard *CriticalStep  `json:"slowest_shard,omitempty"`
}

// slowestShard returns the longest completed shard attempt, if any.
func slowestShard(spans []Span, t0 time.Time) *CriticalStep {
	var best *Span
	for i := range spans {
		sp := &spans[i]
		if sp.Name != "shard.execute" || sp.Attrs["state"] != "done" {
			continue
		}
		if best == nil || sp.Duration > best.Duration {
			best = sp
		}
	}
	if best == nil {
		return nil
	}
	st := toStep(&TraceNode{Span: *best}, t0)
	return &st
}

// Summarize digests a job's span subtree (from Descendants) into the
// view-level timing summary. rootID names the job's root span.
func Summarize(spans []Span, rootID string) *TraceSummary {
	if len(spans) == 0 {
		return nil
	}
	roots := BuildTree(spans)
	var root *TraceNode
	for _, r := range roots {
		if r.Span.ID == rootID {
			root = r
			break
		}
	}
	if root == nil && len(roots) > 0 {
		root = roots[0]
	}
	if root == nil {
		return nil
	}
	sum := &TraceSummary{
		WallMS:       float64(root.Duration) / float64(time.Millisecond),
		Spans:        len(spans),
		CriticalPath: CriticalPath(root),
		SlowestShard: slowestShard(spans, root.Start),
	}
	for _, c := range root.Children {
		switch c.Name {
		case "job.queue":
			sum.QueueMS = float64(c.Duration) / float64(time.Millisecond)
		case "job.run":
			sum.RunMS = float64(c.Duration) / float64(time.Millisecond)
		}
	}
	return sum
}

// TraceView is the JSON payload of GET /v1/jobs/{id}/trace: the
// merged span tree plus derived summaries.
type TraceView struct {
	Job          string         `json:"job,omitempty"`
	Trace        string         `json:"trace"`
	SpanCount    int            `json:"span_count"`
	WallMS       float64        `json:"wall_ms"`
	Coverage     float64        `json:"coverage"`
	Origins      []string       `json:"origins,omitempty"`
	Roots        []*TraceNode   `json:"roots"`
	CriticalPath []CriticalStep `json:"critical_path,omitempty"`
	SlowestShard *CriticalStep  `json:"slowest_shard,omitempty"`
}

// NewTraceView assembles the endpoint payload from a job's span
// subtree. Coverage is the fraction of the root span's wall clock
// covered by the union of its direct children — with queue and run
// spans abutting, a healthy trace reads ~1.0.
func NewTraceView(job, trace string, spans []Span, rootID string) *TraceView {
	tv := &TraceView{Job: job, Trace: trace, SpanCount: len(spans)}
	tv.Roots = BuildTree(spans)
	origins := make(map[string]bool)
	for _, sp := range spans {
		if sp.Origin != "" {
			origins[sp.Origin] = true
		}
	}
	for o := range origins {
		tv.Origins = append(tv.Origins, o)
	}
	sort.Strings(tv.Origins)
	var root *TraceNode
	for _, r := range tv.Roots {
		if r.Span.ID == rootID {
			root = r
			break
		}
	}
	if root == nil && len(tv.Roots) > 0 {
		root = tv.Roots[0]
	}
	if root == nil {
		return tv
	}
	tv.WallMS = float64(root.Duration) / float64(time.Millisecond)
	tv.Coverage = coverage(root)
	tv.CriticalPath = CriticalPath(root)
	tv.SlowestShard = slowestShard(spans, root.Start)
	return tv
}

// coverage computes the union of root's direct children intervals as
// a fraction of root's own interval.
func coverage(root *TraceNode) float64 {
	if root.Duration <= 0 || len(root.Children) == 0 {
		return 0
	}
	type iv struct{ a, b time.Time }
	ivs := make([]iv, 0, len(root.Children))
	for _, c := range root.Children {
		a, b := c.Start, c.Span.End()
		if a.Before(root.Start) {
			a = root.Start
		}
		if b.After(root.Span.End()) {
			b = root.Span.End()
		}
		if b.After(a) {
			ivs = append(ivs, iv{a, b})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a.Before(ivs[j].a) })
	var covered time.Duration
	var curA, curB time.Time
	for i, v := range ivs {
		if i == 0 || v.a.After(curB) {
			covered += curB.Sub(curA)
			curA, curB = v.a, v.b
			continue
		}
		if v.b.After(curB) {
			curB = v.b
		}
	}
	covered += curB.Sub(curA)
	return float64(covered) / float64(root.Duration)
}
