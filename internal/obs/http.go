package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the response status for the request metrics
// and log line. It implements http.Flusher unconditionally (no-op when
// the underlying writer cannot flush) so streaming handlers behind the
// middleware keep flushing NDJSON events.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps an API mux with the telemetry front door:
//
//   - trace propagation: an incoming X-Mpstream-Trace header (when
//     well-formed) or a freshly minted ID lands in the request context
//     and echoes on the response, so every hop of a fleet job shares
//     one trace;
//   - request metrics: per-route/status counters, per-route latency
//     histograms, and an in-flight gauge;
//   - request logging at debug level.
//
// reg and log may each be nil to disable that half; trace propagation
// always runs (it is cheap and correctness-relevant, not telemetry).
func Middleware(reg *Registry, log *slog.Logger, mux *http.ServeMux) http.Handler {
	inflight := reg.Gauge("mpstream_http_inflight_requests",
		"HTTP requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := SanitizeTraceID(r.Header.Get(TraceHeader))
		if trace == "" {
			trace = NewTraceID()
		}
		ctx := WithTrace(r.Context(), trace)
		// An upstream hop (coordinator shard submit) may name the span
		// this request's work should parent under; validated like
		// trace IDs before it can reach logs or span payloads.
		if parent := SanitizeTraceID(r.Header.Get(SpanHeader)); parent != "" {
			ctx = WithSpanParent(ctx, parent)
		}
		r = r.WithContext(ctx)
		// Set before the mux runs so every response — including 4xx/5xx
		// error payloads — echoes the trace.
		w.Header().Set(TraceHeader, trace)

		if reg == nil && log == nil {
			mux.ServeHTTP(w, r)
			return
		}
		// The route label must be the registered pattern, not the raw
		// URL: per-job paths would otherwise explode the label space.
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		mux.ServeHTTP(sw, r)
		dur := time.Since(start)
		inflight.Add(-1)

		if reg != nil {
			reg.Counter("mpstream_http_requests_total",
				"HTTP requests served, by route pattern and status code.",
				"route", route, "code", strconv.Itoa(sw.code)).Inc()
			reg.Histogram("mpstream_http_request_seconds",
				"HTTP request latency in seconds, by route pattern.",
				DurationBuckets, "route", route).Observe(dur.Seconds())
		}
		if log != nil {
			log.LogAttrs(r.Context(), slog.LevelDebug, "http request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("code", sw.code),
				slog.Duration("duration", dur),
				slog.String("trace", trace),
			)
		}
	})
}
