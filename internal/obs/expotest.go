package obs

import (
	"regexp"
	"strings"
	"testing"
)

// expositionLine matches one Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+]?[0-9].*)$`)

// ValidateExposition fails t on any line that is neither a comment nor
// a well-formed sample, and checks HELP/TYPE precede their family's
// samples. It lives outside the _test files so service-level tests in
// other packages can validate their scrapes against the same contract.
func ValidateExposition(t *testing.T, body string) {
	t.Helper()
	seenSamples := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Errorf("blank line in exposition")
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 3 {
				t.Errorf("malformed comment line %q", line)
				continue
			}
			if seenSamples[fields[2]] {
				t.Errorf("%s after samples of %s", fields[1], fields[2])
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		seenSamples[name] = true
	}
}
