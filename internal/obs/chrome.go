package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Chrome trace-event export: `GET /v1/jobs/{id}/trace?format=chrome`
// emits the classic trace-event JSON (ph:"X" complete events) that
// Perfetto and chrome://tracing load directly. Each span origin
// (coordinator, worker) becomes a process row; overlapping sibling
// spans are packed into lanes (threads) greedily so parallel sweep
// points and shards render side by side instead of stacked.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`            // µs, relative to trace start
	Dur  int64          `json:"dur,omitempty"` // µs
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	if len(spans) == 0 {
		return json.NewEncoder(w).Encode(map[string]any{"traceEvents": []chromeEvent{}})
	}
	// Origins → pids, sorted for stable output; the local process
	// (empty origin) renders as "local".
	originName := func(o string) string {
		if o == "" {
			return "local"
		}
		return o
	}
	pids := make(map[string]int)
	var names []string
	for _, sp := range spans {
		n := originName(sp.Origin)
		if _, ok := pids[n]; !ok {
			pids[n] = 0
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		pids[n] = i + 1
	}

	t0 := spans[0].Start
	for _, sp := range spans {
		if sp.Start.Before(t0) {
			t0 = sp.Start
		}
	}

	events := make([]chromeEvent, 0, len(spans)+len(names))
	for _, n := range names {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pids[n],
			Args: map[string]any{"name": n},
		})
	}

	// Lane packing per process: sort by start, assign each span the
	// first lane whose previous occupant has ended.
	byPID := make(map[int][]Span)
	for _, sp := range spans {
		pid := pids[originName(sp.Origin)]
		byPID[pid] = append(byPID[pid], sp)
	}
	for pid, ss := range byPID {
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].Start.Before(ss[j].Start) })
		var laneEnd []time.Time
		for _, sp := range ss {
			lane := -1
			for i, end := range laneEnd {
				if !sp.Start.Before(end) {
					lane = i
					break
				}
			}
			if lane == -1 {
				lane = len(laneEnd)
				laneEnd = append(laneEnd, time.Time{})
			}
			laneEnd[lane] = sp.End()
			args := map[string]any{"span": sp.ID}
			if sp.Parent != "" {
				args["parent"] = sp.Parent
			}
			for k, v := range sp.Attrs {
				args[k] = v
			}
			events = append(events, chromeEvent{
				Name: sp.Name,
				Cat:  spanCategory(sp.Name),
				Ph:   "X",
				TS:   sp.Start.Sub(t0).Microseconds(),
				Dur:  sp.Duration.Microseconds(),
				PID:  pid,
				TID:  lane + 1,
				Args: args,
			})
		}
	}
	return json.NewEncoder(w).Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// spanCategory groups spans by their name prefix (job, sweep,
// surface, shard, fleet, cluster) for Perfetto filtering.
func spanCategory(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}
