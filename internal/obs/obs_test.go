package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help", "k", "v")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if again := r.Counter("test_total", "ignored", "k", "v"); again != c {
		t.Fatal("get-or-create returned a different counter for the same labels")
	}
	if other := r.Counter("test_total", "", "k", "w"); other == c {
		t.Fatal("distinct label sets share an instrument")
	}

	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilRegistryAndInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "").Inc()
	r.Gauge("x", "").Set(1)
	r.Histogram("x_seconds", "", DurationBuckets).Observe(1)
	r.GaugeFunc("y", "", func() float64 { return 1 })
	r.Collect(func(emit func(Sample)) { emit(Sample{Name: "z"}) })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil registry rendered %q", sb.String())
	}
}

// TestHistogramBuckets pins the cumulative bucket semantics: each
// observation lands in the first bucket whose upper bound is >= the
// value, counts are cumulative, and the +Inf tail equals the total.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	// 0.05 and 0.1 -> le 0.1; 0.5 -> le 1; 5 -> le 10; 50 -> +Inf.
	want := []uint64{2, 3, 4, 5}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if sum := h.Sum(); sum != 0.05+0.1+0.5+5+50 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.5, 2}, "route", "/x")
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(100)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{route="/x",le="0.5"} 1`,
		`lat_seconds_bucket{route="/x",le="2"} 2`,
		`lat_seconds_bucket{route="/x",le="+Inf"} 3`,
		`lat_seconds_count{route="/x"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionFormatValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a", "k", `quote " slash \ done`).Add(7)
	r.Gauge("b", "gauge b").Set(-2.25)
	r.Histogram("c_seconds", "hist c", DurationBuckets).Observe(0.3)
	r.GaugeFunc("d", "func d", func() float64 { return 9 })
	r.Collect(func(emit func(Sample)) {
		emit(Sample{Name: "e", Help: "collected e", Kind: "gauge",
			Labels: []string{"w", "x1"}, Value: 4})
		emit(Sample{Name: "e", Kind: "gauge", Labels: []string{"w", "x2"}, Value: 5})
	})
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	ValidateExposition(t, out)
	for _, want := range []string{
		`a_total{k="quote \" slash \\ done"} 7`,
		"b -2.25",
		"# HELP e collected e",
		`e{w="x1"} 4`,
		`e{w="x2"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must come out name-sorted.
	idx := func(s string) int { return strings.Index(out, "# TYPE "+s) }
	if !(idx("a_total") < idx("b") && idx("b") < idx("c_seconds") && idx("c_seconds") < idx("d")) {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 500; n++ {
				r.Counter("cc_total", "").Inc()
				r.Gauge("cg", "").Add(1)
				r.Histogram("ch_seconds", "", DurationBuckets).Observe(0.01)
			}
		}()
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 50; n++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	if got := r.Counter("cc_total", "").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := r.Gauge("cg", "").Value(); got != 4000 {
		t.Fatalf("gauge = %v, want 4000", got)
	}
	if got := r.Histogram("ch_seconds", "", DurationBuckets).Count(); got != 4000 {
		t.Fatalf("histogram count = %d, want 4000", got)
	}
}

func TestTraceHelpers(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("trace IDs collide")
	}
	if len(a) != 32 {
		t.Fatalf("trace ID %q not 32 hex chars", a)
	}
	if SanitizeTraceID(a) != a {
		t.Fatalf("minted ID %q rejected by sanitizer", a)
	}
	for _, bad := range []string{`x"y`, "a b", strings.Repeat("z", 65), "new\nline"} {
		if got := SanitizeTraceID(bad); got != "" {
			t.Errorf("SanitizeTraceID(%q) = %q, want rejection", bad, got)
		}
	}
	ctx := WithTrace(context.Background(), a)
	if got := TraceID(ctx); got != a {
		t.Fatalf("TraceID = %q, want %q", got, a)
	}
	if got := TraceID(context.Background()); got != "" {
		t.Fatalf("TraceID of bare ctx = %q", got)
	}
}

func TestParseLevelAndLogger(t *testing.T) {
	if _, err := ParseLevel("nope"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
	var sb strings.Builder
	log, err := NewLogger(&sb, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	out := sb.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, `"shown"`) {
		t.Fatalf("leveled logging wrong: %q", out)
	}
	if _, err := NewLogger(&sb, "info", "yaml"); err == nil {
		t.Error("NewLogger accepted unknown format")
	}
	NopLogger().Error("goes nowhere")
}

func TestSimMetrics(t *testing.T) {
	d0, e0 := SimStats()
	AddDRAMRequests(10)
	for i := 0; i < 20; i++ {
		EvalDone(EvalStart())
	}
	d1, e1 := SimStats()
	if d1-d0 != 10 {
		t.Errorf("dram requests advanced %d, want 10", d1-d0)
	}
	if e1-e0 != 20 {
		t.Errorf("evals advanced %d, want 20", e1-e0)
	}
	r := NewRegistry()
	RegisterSimMetrics(r)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"mpstream_sim_dram_requests_total",
		"mpstream_sim_evaluations_total",
		"mpstream_sim_evaluation_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sim exposition missing %q:\n%s", want, out)
		}
	}
	ValidateExposition(t, out)
}
