package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the shared structured logger: format "text" or
// "json", leveled per ParseLevel.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}

// NopLogger discards everything — the default for embedded servers and
// tests that did not ask for logs.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
